// Benchmarks regenerating the paper's figures (deterministic simulator,
// virtual-cycle throughput reported as the custom metric "ops/Mcycle") plus
// wall-clock micro-benchmarks of the substrate on the real backend.
//
// Full-scale reproductions with the paper's exact parameters are run by
// cmd/hcfbench; these benches use reduced horizons so `go test -bench=.`
// stays fast while still exhibiting every figure's shape.
package hcf_test

import (
	"fmt"
	"testing"

	"hcf"
	"hcf/internal/harness"
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// benchCfg is the reduced configuration for figure benches.
func benchCfg() harness.Config {
	return harness.Config{Horizon: 40_000, Seed: 1}
}

// runFigurePoint runs one figure data point b.N times and reports its
// virtual-time throughput.
func runFigurePoint(b *testing.B, figID, engine string, threads int) {
	b.Helper()
	fig, err := harness.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	if fig.Cost.Sockets != 0 {
		cfg.Cost = fig.Cost
	}
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last, err = harness.RunPoint(fig.Scenario, engine, threads, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if last.InvariantViolation != "" {
		b.Fatalf("invariants violated: %s", last.InvariantViolation)
	}
	b.ReportMetric(last.Throughput, "ops/Mcycle")
	b.ReportMetric(float64(last.Ops), "ops")
}

// figureBench sweeps a figure's engines at representative thread counts.
func figureBench(b *testing.B, figID string, engines []string, threads []int) {
	b.Helper()
	for _, t := range threads {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/t=%d", e, t), func(b *testing.B) {
				runFigurePoint(b, figID, e, t)
			})
		}
	}
}

var benchEngines = []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"}

// BenchmarkFig2a: hash table, 100% Find (paper Figure 2(a)).
func BenchmarkFig2a(b *testing.B) { figureBench(b, "2a", benchEngines, []int{1, 18}) }

// BenchmarkFig2b: hash table, 80% Find, 2-socket NUMA (paper Figure 2(b)).
func BenchmarkFig2b(b *testing.B) { figureBench(b, "2b", benchEngines, []int{18, 72}) }

// BenchmarkFig2c: hash table, 40% Find (paper Figure 2(c)).
func BenchmarkFig2c(b *testing.B) { figureBench(b, "2c", benchEngines, []int{18, 36}) }

// BenchmarkFig3: HCF phase breakdown source run (paper Figure 3).
func BenchmarkFig3(b *testing.B) { figureBench(b, "3", []string{"HCF"}, []int{8, 36}) }

// BenchmarkFig4: behavioural statistics run (paper §3.3 statistics).
func BenchmarkFig4(b *testing.B) {
	figureBench(b, "4", []string{"TLE", "FC", "TLE+FC", "HCF"}, []int{18})
}

// BenchmarkFig5a: AVL set, Zipf 0.9, 0% Find (paper Figure 5(a)).
func BenchmarkFig5a(b *testing.B) { figureBench(b, "5a", benchEngines, []int{18, 36}) }

// BenchmarkFig5b: AVL set, Zipf 0.9, 40% Find (paper Figure 5(b)).
func BenchmarkFig5b(b *testing.B) { figureBench(b, "5b", benchEngines, []int{18, 36}) }

// BenchmarkFig5c: AVL set, Zipf 0.9, 80% Find (paper Figure 5(c)).
func BenchmarkFig5c(b *testing.B) { figureBench(b, "5c", benchEngines, []int{18, 36}) }

// BenchmarkAblationAVL: §3.4's HCF variant ablations.
func BenchmarkAblationAVL(b *testing.B) {
	for _, variant := range []struct {
		name string
		v    harness.AVLVariant
	}{{"combining", harness.AVLCombining}, {"nocombine", harness.AVLNoCombine}, {"twoarrays", harness.AVLTwoArrays}} {
		b.Run(variant.name, func(b *testing.B) {
			sc := harness.AVLScenario(0, 1024, 0.9, variant.v)
			var last harness.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = harness.RunPoint(sc, "HCF", 18, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "ops/Mcycle")
		})
	}
}

// BenchmarkPQueue: the introduction's priority-queue scenario.
func BenchmarkPQueue(b *testing.B) {
	figureBench(b, "pqueue", []string{"TLE", "FC", "HCF"}, []int{8, 27})
}

// BenchmarkStack: §3.1's no-parallelism stack.
func BenchmarkStack(b *testing.B) {
	figureBench(b, "stack", []string{"Lock", "TLE", "FC", "HCF"}, []int{18})
}

// BenchmarkSkipSet: ordered skip-list set under Zipfian skew (§3.1 names
// skip lists among HCF's target structures).
func BenchmarkSkipSet(b *testing.B) {
	figureBench(b, "skipset", []string{"TLE", "FC", "HCF"}, []int{18, 36})
}

// BenchmarkQueue: FIFO queue with per-end combiners.
func BenchmarkQueue(b *testing.B) {
	figureBench(b, "queue", []string{"Lock", "TLE", "FC", "HCF"}, []int{18})
}

// BenchmarkBudgetSweep: sensitivity of HCF to the Insert trial split
// (§3.3's "works reasonably well" claim).
func BenchmarkBudgetSweep(b *testing.B) {
	for _, budget := range [][3]int{{2, 3, 5}, {10, 0, 0}, {0, 0, 10}} {
		b.Run(fmt.Sprintf("p%d-v%d-c%d", budget[0], budget[1], budget[2]), func(b *testing.B) {
			sc := harness.HashTableBudgetScenario(40, 4096, budget[0], budget[1], budget[2])
			var last harness.Result
			var err error
			for i := 0; i < b.N; i++ {
				last, err = harness.RunPoint(sc, "HCF", 18, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "ops/Mcycle")
		})
	}
}

// BenchmarkAdaptive: the §2.4 future-work controller on a shifting
// workload, static vs adaptive budgets.
func BenchmarkAdaptive(b *testing.B) {
	var res []harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunAdaptiveComparison(18, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		if r.Scenario == "hashtable/shifting" {
			b.ReportMetric(r.Throughput, r.Engine+"_ops/Mcycle")
		}
	}
}

// BenchmarkDeque: §2.4's two-ends deque with the specialized variant.
func BenchmarkDeque(b *testing.B) {
	figureBench(b, "deque", []string{"Lock", "TLE", "FC", "HCF"}, []int{16})
}

// --- Wall-clock substrate micro-benchmarks (real backend) ---

// BenchmarkRealDirectLoad measures a coherent direct load.
func BenchmarkRealDirectLoad(b *testing.B) {
	env := hcf.NewRealEnv(1)
	boot := env.Boot()
	a := env.Alloc(1)
	boot.Store(a, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boot.Load(a)
	}
}

// BenchmarkRealDirectStore measures a coherent direct store (line lock +
// version bump).
func BenchmarkRealDirectStore(b *testing.B) {
	env := hcf.NewRealEnv(1)
	boot := env.Boot()
	a := env.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boot.Store(a, uint64(i))
	}
}

// BenchmarkRealTxCommit measures an uncontended read-modify-write
// transaction end to end.
func BenchmarkRealTxCommit(b *testing.B) {
	env := hcf.NewRealEnv(1)
	eng := htm.New(env, htm.Config{})
	boot := env.Boot()
	a := env.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _ := eng.Run(boot, func(tx *htm.Tx) {
			tx.Store(a, tx.Load(a)+1)
		})
		if !ok {
			b.Fatal("uncontended tx aborted")
		}
	}
}

// BenchmarkRealTxReadSet measures transactions with growing read sets.
func BenchmarkRealTxReadSet(b *testing.B) {
	for _, lines := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			env := hcf.NewRealEnv(1)
			eng := htm.New(env, htm.Config{})
			boot := env.Boot()
			addrs := make([]hcf.Addr, lines)
			for i := range addrs {
				addrs[i] = env.Alloc(memsim.WordsPerLine)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(boot, func(tx *htm.Tx) {
					for _, a := range addrs {
						tx.Load(a)
					}
				})
			}
		})
	}
}

// BenchmarkRealHCFExecute measures the HCF fast path (TryPrivate commit) on
// the real backend, uncontended.
func BenchmarkRealHCFExecute(b *testing.B) {
	env := hcf.NewRealEnv(1)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
	}}})
	if err != nil {
		b.Fatal(err)
	}
	boot := env.Boot()
	a := env.Alloc(1)
	op := benchIncOp{addr: a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Execute(boot, op)
	}
}

type benchIncOp struct {
	addr hcf.Addr
}

func (o benchIncOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o benchIncOp) Class() int { return 0 }

// BenchmarkRealContendedCounter compares engines on a hot counter with real
// goroutine concurrency.
func BenchmarkRealContendedCounter(b *testing.B) {
	const threads = 4
	for _, name := range []string{"Lock", "TLE", "HCF"} {
		b.Run(name, func(b *testing.B) {
			env := hcf.NewRealEnv(threads)
			var eng hcf.Engine
			switch name {
			case "Lock":
				eng = hcf.NewLockEngine(env, hcf.BaselineOptions{})
			case "TLE":
				eng = hcf.NewTLE(env, hcf.BaselineOptions{})
			case "HCF":
				fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
					TryPrivateTrials:   2,
					TryVisibleTrials:   3,
					TryCombiningTrials: 5,
				}}})
				if err != nil {
					b.Fatal(err)
				}
				eng = fw
			}
			a := env.Alloc(1)
			perThread := b.N/threads + 1
			op := benchIncOp{addr: a}
			b.ResetTimer()
			env.Run(func(th *hcf.Thread) {
				for i := 0; i < perThread; i++ {
					eng.Execute(th, op)
				}
			})
		})
	}
}
