// Command hcfbench regenerates the paper's figures on the deterministic
// simulator.
//
// Usage:
//
//	hcfbench -list                 # show all reproducible experiments
//	hcfbench -fig 2c               # reproduce one figure
//	hcfbench -fig all              # reproduce everything
//	hcfbench -fig 5a -csv          # emit CSV for external plotting
//	hcfbench -fig 5a -json         # emit JSON Lines (one record per cell)
//	hcfbench -fig 2a -threads 1,8,36 -horizon 500000 -seed 7
//
// The open-loop figure has its own pipeline — offered-load sweep with
// coordinated-omission-safe sojourn tails, SLO verdicts, JSONL output and
// a p99 regression gate:
//
//	hcfbench -fig openloop                            # table to stdout
//	hcfbench -fig openloop -json                      # JSONL to stdout
//	hcfbench -fig openloop -out bench/OPENLOOP_sweep.jsonl
//	hcfbench -fig openloop -openloop-baseline bench/OPENLOOP_sweep.jsonl
//	hcfbench -fig openloop -serve 127.0.0.1:7070      # live /debug endpoints
//
// So does the native backend's wall-clock sweep — the direct-atomics
// HCF engine against sync.Mutex, sync.RWMutex and sync.Map:
//
//	hcfbench -fig native                              # table to stdout
//	hcfbench -fig native -out bench/BENCH_native.json # record for the CI gate
//	hcfbench -fig native -native-baseline bench/BENCH_native.json
//	hcfbench -fig native -threads 1,2,4,8 -native-dur 300
//
// And the KV storage engine's durability sweep — open-loop Zipfian
// get/put/delete mixes against hcf.NewKV with fsync-backed group commit
// and a crash-recovery replay check per point:
//
//	hcfbench -fig kv                                  # table to stdout
//	hcfbench -fig kv -out bench/KV_sweep.jsonl        # record for the CI gate
//	hcfbench -fig kv -kv-baseline bench/KV_sweep.jsonl
//	hcfbench -fig kv -threads 8 -kv-dur 100           # quick smoke
//
// And the elastic-sharding hot-shard healing figure — the same drifting
// 90%-skewed workload run with the topology frozen and with the
// rebalancer splitting hot shards online:
//
//	hcfbench -fig elastic                             # table to stdout
//	hcfbench -fig elastic -out bench/ELASTIC_sweep.jsonl
//	hcfbench -fig elastic -elastic-gate 0.8           # CI: healed >= 0.8x balanced
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"hcf/internal/harness"
	"hcf/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcfbench:", err)
		os.Exit(1)
	}
}

// startCPUProfile begins CPU profiling to path ("" = disabled) and returns a
// stop function.
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps an allocation profile to path ("" = disabled).
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final heap state
	return pprof.WriteHeapProfile(f)
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcfbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available figures and exit")
		adaptFlg = fs.Bool("adaptive", false, "run the policy-autotuner comparison on the drifting workload (§2.4 future work; same data as -fig autotune)")
		realFlg  = fs.Bool("real", false, "run the figure's scenario on the real-concurrency backend (wall clock; meaningful on multicore hosts)")
		realOps  = fs.Int("real-ops", 2000, "operations per thread in -real mode")
		figID    = fs.String("fig", "", "figure id to reproduce, or 'all'")
		horizon  = fs.Int64("horizon", 200_000, "virtual cycles per measurement")
		seed     = fs.Uint64("seed", 1, "workload seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables")
		jsonFlg  = fs.Bool("json", false, "emit JSON Lines (one record per scenario/engine/threads cell) instead of tables")
		threads  = fs.String("threads", "", "comma-separated thread counts (override)")
		engs     = fs.String("engines", "", "comma-separated engine names (override)")
		parallel = fs.Int("parallel", 0, "max concurrently measured sweep points (0 = all host cores, 1 = serial)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof allocation profile to this file")
		benchFlg = fs.Bool("bench", false, "measure host throughput of the reference sweep and emit a BENCH_sim.json record")
		benchOut = fs.String("bench-out", "", "write the -bench record to this file instead of stdout")
		baseline = fs.String("baseline", "", "compare the -bench record against this BENCH_sim.json; exit non-zero on >25% host-throughput regression")
		rates    = fs.String("rates", "", "comma-separated offered loads in ops/Mcycle (-fig openloop only; default 2000,8000,20000,45000,90000)")
		outPath  = fs.String("out", "", "write the -fig openloop sweep as JSONL to this file (in addition to stdout rendering)")
		olBase   = fs.String("openloop-baseline", "", "compare the -fig openloop sweep against this JSONL baseline; exit non-zero if any matching point's sojourn p99 regressed by more than 25%")
		serveAt  = fs.String("serve", "", "host:port for live introspection endpoints during the -fig openloop run (forces serial point order)")
		natDur   = fs.Int("native-dur", 150, "measured window per point in milliseconds (-fig native only)")
		natBase  = fs.String("native-baseline", "", "compare the -fig native sweep against this BENCH_native.json; exit non-zero when any point regresses more than 2x below the median fresh/baseline ratio")
		kvDur    = fs.Int64("kv-dur", 400, "arrival window per point in milliseconds (-fig kv only)")
		kvBase   = fs.String("kv-baseline", "", "compare the -fig kv sweep against this JSONL baseline; median-normalized sojourn-p99 gate plus an unconditional recovery-replay check")
		elGate   = fs.Float64("elastic-gate", 0, "-fig elastic only: fail unless the healed run's post-phase throughput is at least this fraction of the balanced run's (0 = report, don't gate)")
		elRate   = fs.Float64("elastic-rate", 0, "-fig elastic only: offered load in ops/Mcycle (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startCPUProfile(*cpuProf)
	if err != nil {
		return err
	}
	defer stopProf()
	defer func() {
		if err := writeMemProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "hcfbench: memprofile:", err)
		}
	}()
	if *jsonFlg && *realFlg {
		return fmt.Errorf("-json is not supported with -real")
	}
	if *engs != "" {
		if err := harness.ValidateEngineNames(strings.Split(*engs, ",")); err != nil {
			return err
		}
	}
	if *benchFlg {
		fig := *figID
		if fig == "" {
			fig = "2c" // the reference sweep: hashtable 40% finds, all engines
		}
		return runBench(fig, *threads, *engs, *horizon, *seed, *parallel, *benchOut, *baseline)
	}
	if *list {
		for _, f := range harness.Figures() {
			fmt.Printf("%-14s %-18s %s\n", f.ID, f.Ref, f.Title)
		}
		return nil
	}
	if *adaptFlg {
		ts := []int{36}
		if *threads != "" {
			var err error
			if ts, err = parseInts(*threads); err != nil {
				return err
			}
		}
		fmt.Println("== autotune (§2.4 future work): drifting workload, static vs autotuned policies")
		for _, t := range ts {
			results, err := harness.RunAdaptiveComparison(t, harness.Config{Horizon: *horizon, Seed: *seed, Parallel: *parallel})
			if err != nil {
				return err
			}
			switch {
			case *jsonFlg:
				out, err := harness.FormatJSONL(results)
				if err != nil {
					return err
				}
				fmt.Print(out)
			case *csv:
				fmt.Print(harness.FormatCSV(results))
			default:
				fmt.Print(harness.FormatThroughputTable(results))
			}
		}
		return nil
	}
	if *figID == "" {
		fs.Usage()
		return fmt.Errorf("missing -fig (or -list)")
	}
	if *figID == "native" {
		return runNative(*threads, *natDur, *jsonFlg, *outPath, *natBase)
	}
	if *figID == "kv" {
		return runKV(*threads, *kvDur, *jsonFlg, *outPath, *kvBase)
	}
	if *figID == "openloop" && !*realFlg {
		return runOpenLoop(*threads, *engs, *rates, *horizon, *seed, *parallel,
			*csv, *jsonFlg, *outPath, *olBase, *serveAt)
	}
	if *figID == "elastic" && !*realFlg {
		// The elastic figure has its own (longer) default horizon: only
		// forward -horizon when the user actually set it.
		h := int64(0)
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "horizon" {
				h = *horizon
			}
		})
		return runElastic(*threads, h, *seed, *parallel, *jsonFlg, *outPath, *elRate, *elGate)
	}
	var figs []harness.Figure
	if *figID == "all" {
		figs = harness.Figures()
	} else {
		f, err := harness.FigureByID(*figID)
		if err != nil {
			return err
		}
		figs = []harness.Figure{f}
	}
	cfg := harness.Config{Horizon: *horizon, Seed: *seed, Parallel: *parallel}
	for i := range figs {
		if *threads != "" {
			ts, err := parseInts(*threads)
			if err != nil {
				return err
			}
			figs[i].Threads = ts
		}
		if *engs != "" {
			figs[i].Engines = strings.Split(*engs, ",")
		}
		if *realFlg {
			fmt.Printf("== %s on the real backend (wall clock, %d ops/thread)\n",
				figs[i].ID, *realOps)
			for _, t := range figs[i].Threads {
				for _, e := range figs[i].Engines {
					r, err := harness.RunPointReal(figs[i].Scenario, e, t, *realOps, cfg)
					if err != nil {
						return err
					}
					status := ""
					if r.InvariantViolation != "" {
						status = "  !! " + r.InvariantViolation
					}
					fmt.Printf("threads=%-3d %-8s %10.1f ops/ms (%v)%s\n",
						t, e, r.Throughput, r.Elapsed.Round(time.Millisecond), status)
				}
			}
			continue
		}
		results, err := harness.RunFigure(figs[i], cfg)
		if err != nil {
			return err
		}
		switch {
		case *jsonFlg:
			out, err := harness.FormatJSONL(results)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case *csv:
			fmt.Print(harness.FormatCSV(results))
		default:
			fmt.Println(harness.FormatFigure(figs[i], results))
		}
	}
	return nil
}

// benchRecord is the machine-readable host-throughput record emitted by
// -bench (BENCH_sim.json). Throughput is simulated work done per host
// second, so the number is meaningful across horizon choices; regressions
// are judged on sim_mcycles_per_host_sec.
type benchRecord struct {
	Kind       string   `json:"kind"` // "hcf-host-bench"
	Figure     string   `json:"figure"`
	Threads    []int    `json:"threads"`
	Engines    []string `json:"engines"`
	Horizon    int64    `json:"horizon"`
	Seed       uint64   `json:"seed"`
	Parallel   int      `json:"parallel"`
	GoMaxProcs int      `json:"gomaxprocs"`
	WallSec    float64  `json:"wall_seconds"`
	Points     int      `json:"points"`
	TotalOps   uint64   `json:"total_ops"`
	// SimMcyclesPerHostSec is the headline metric: simulated megacycles
	// executed per second of host wall-clock time.
	SimMcyclesPerHostSec float64 `json:"sim_mcycles_per_host_sec"`
	OpsPerHostSec        float64 `json:"ops_per_host_sec"`
	// Baseline is filled when -baseline is given: the reference record's
	// throughput and the measured speedup over it.
	Baseline *benchBaseline `json:"baseline,omitempty"`
}

type benchBaseline struct {
	Path                 string  `json:"path"`
	SimMcyclesPerHostSec float64 `json:"sim_mcycles_per_host_sec"`
	Speedup              float64 `json:"speedup"`
}

// runBench measures the host wall-clock cost of one reference sweep and
// emits a benchRecord, optionally enforcing a regression threshold against
// a checked-in baseline record.
func runBench(figID, threadsCSV, engsCSV string, horizon int64, seed uint64, parallel int, outPath, basePath string) error {
	fig, err := harness.FigureByID(figID)
	if err != nil {
		return err
	}
	if threadsCSV != "" {
		if fig.Threads, err = parseInts(threadsCSV); err != nil {
			return err
		}
	}
	if engsCSV != "" {
		fig.Engines = strings.Split(engsCSV, ",")
	}
	cfg := harness.Config{Horizon: horizon, Seed: seed, Parallel: parallel}
	start := time.Now()
	results, err := harness.RunFigure(fig, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	rec := benchRecord{
		Kind:       "hcf-host-bench",
		Figure:     fig.ID,
		Threads:    fig.Threads,
		Engines:    fig.Engines,
		Horizon:    horizon,
		Seed:       seed,
		Parallel:   parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WallSec:    wall,
		Points:     len(results),
	}
	var simCycles int64
	for _, r := range results {
		rec.TotalOps += r.Ops
		simCycles += r.Cycles
	}
	if wall > 0 {
		rec.SimMcyclesPerHostSec = float64(simCycles) / 1e6 / wall
		rec.OpsPerHostSec = float64(rec.TotalOps) / wall
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base benchRecord
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", basePath, err)
		}
		if base.SimMcyclesPerHostSec > 0 {
			rec.Baseline = &benchBaseline{
				Path:                 basePath,
				SimMcyclesPerHostSec: base.SimMcyclesPerHostSec,
				Speedup:              rec.SimMcyclesPerHostSec / base.SimMcyclesPerHostSec,
			}
		}
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: %s in %.2fs (%.1f sim Mcycles/s) -> %s\n",
			fig.ID, wall, rec.SimMcyclesPerHostSec, outPath)
	} else {
		fmt.Print(string(out))
	}
	if rec.Baseline != nil {
		fmt.Fprintf(os.Stderr, "bench: %.2fx the baseline's host throughput (%s)\n",
			rec.Baseline.Speedup, basePath)
		if rec.Baseline.Speedup < 0.75 {
			return fmt.Errorf("host-throughput regression: %.1f sim Mcycles/s is %.0f%% of baseline %.1f",
				rec.SimMcyclesPerHostSec, 100*rec.Baseline.Speedup, rec.Baseline.SimMcyclesPerHostSec)
		}
	}
	return nil
}

// runNative is the -fig native pipeline: a wall-clock sweep of the
// native (direct-atomics) HCF backend against sync.Mutex, sync.RWMutex
// and sync.Map across goroutine counts and read/write mixes. With -out
// the record (bench/BENCH_native.json) is written for the CI smoke gate;
// with -native-baseline the fresh sweep is compared against a checked-in
// record using median-normalized point ratios, so the gate survives the
// baseline having been recorded on different hardware.
func runNative(threadsCSV string, durMS int, jsonFlg bool, outPath, basePath string) error {
	opts := harness.NativeOptions{Duration: time.Duration(durMS) * time.Millisecond}
	if threadsCSV != "" {
		gs, err := parseInts(threadsCSV)
		if err != nil {
			return err
		}
		opts.Goroutines = gs
	}
	rep, err := harness.RunNativeSweep(opts)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("native: %d points in %.1fs -> %s\n", len(rep.Points), rep.WallSec, outPath)
	}
	if jsonFlg {
		fmt.Print(string(out))
	} else {
		fmt.Print(harness.FormatNativeReport(rep))
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("native baseline: %w", err)
		}
		base, err := harness.ParseNativeReport(data)
		if err != nil {
			return fmt.Errorf("native baseline %s: %w", basePath, err)
		}
		matched, err := harness.CompareNativeBaseline(rep, base, 2)
		if err != nil {
			return fmt.Errorf("native baseline %s: %w", basePath, err)
		}
		fmt.Fprintf(os.Stderr, "native: %d points within 2x of the median ratio vs %s\n", matched, basePath)
	}
	return nil
}

// runKV is the -fig kv pipeline: an open-loop sweep of the HCF-backed
// KV engine (hcf.NewKV) across simulated-user populations and get/put/
// delete mixes, with fsync-backed group commit, sojourn tails, SLO
// verdicts and an inline crash-recovery replay check per point. With
// -out the JSONL record (bench/KV_sweep.jsonl) is written for the CI
// smoke gate; with -kv-baseline the fresh sweep is compared against a
// checked-in record using median-normalized p99 ratios (hardware- and
// disk-speed-tolerant), and any point whose recovery replay diverged
// from its witness dump fails unconditionally.
func runKV(threadsCSV string, durMS int64, jsonFlg bool, outPath, basePath string) error {
	opts := harness.KVSweepOptions{DurationMS: durMS}
	if threadsCSV != "" {
		gs, err := parseInts(threadsCSV)
		if err != nil {
			return err
		}
		if len(gs) != 1 {
			return fmt.Errorf("-fig kv takes a single -threads value (worker count), got %q", threadsCSV)
		}
		opts.Workers = gs[0]
	}
	rep, err := harness.RunKVSweep(opts)
	if err != nil {
		return err
	}
	out, err := rep.JSONL()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("kv: %d points -> %s\n", len(rep.Points), outPath)
	}
	if jsonFlg {
		fmt.Print(string(out))
	} else {
		fmt.Print(rep.Text())
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("kv baseline: %w", err)
		}
		base, err := harness.ParseKVJSONL(data)
		if err != nil {
			return fmt.Errorf("kv baseline %s: %w", basePath, err)
		}
		matched, err := harness.CompareKVBaseline(rep, base, 2)
		if err != nil {
			return fmt.Errorf("kv baseline %s: %w", basePath, err)
		}
		fmt.Fprintf(os.Stderr, "kv: %d points within 2x of the median p99 ratio vs %s, recovery replay clean\n", matched, basePath)
	}
	return nil
}

// openLoopP99Ratio is the regression gate for -openloop-baseline: a
// matching point fails if its sojourn p99 exceeds 1.25x the baseline's.
const openLoopP99Ratio = 1.25

// runOpenLoop is the -fig openloop pipeline: an offered-load sweep with
// coordinated-omission-safe sojourn latency, optional live introspection
// endpoints during the run, JSONL output for the checked-in baseline, and
// a p99 regression gate against a prior sweep.
func runOpenLoop(threadsCSV, engsCSV, ratesCSV string, horizon int64, seed uint64, parallel int, csv, jsonFlg bool, outPath, basePath, serveAt string) error {
	threads := 36
	if threadsCSV != "" {
		ts, err := parseInts(threadsCSV)
		if err != nil {
			return err
		}
		if len(ts) != 1 {
			return fmt.Errorf("-fig openloop takes exactly one thread count, got %v", ts)
		}
		threads = ts[0]
	}
	engines := harness.OpenLoopDefaultEngines
	if engsCSV != "" {
		engines = strings.Split(engsCSV, ",")
	}
	rates := harness.OpenLoopDefaultRates
	if ratesCSV != "" {
		rates = rates[:0:0]
		for _, p := range strings.Split(ratesCSV, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("bad rate %q", p)
			}
			rates = append(rates, r)
		}
	}
	sc := harness.OpenLoopScenario()
	cfg := harness.Config{Horizon: horizon, Seed: seed, Parallel: parallel}
	ol := harness.OpenLoopConfig{Interval: max(horizon/20, 1)}

	var rep *harness.OpenLoopReport
	if serveAt != "" {
		// Live introspection: points run serially so the single observer
		// always describes the point in flight. Results are bit-identical
		// to the unserved sweep.
		srv := serve.New()
		addr, err := srv.Start(serveAt)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hcfbench: live introspection at http://%s/debug\n", addr)
		rep = &harness.OpenLoopReport{
			Figure: "openloop", Scenario: sc.Name, Threads: threads,
			Seed: cfg.Seed, Horizon: cfg.Horizon, Interval: ol.Interval, Rates: rates,
		}
		for _, r := range rates {
			for _, name := range engines {
				olp := ol
				olp.Rate = r
				olp.Observer = srv
				p, _, err := harness.RunPointOpenLoop(sc, name, threads, cfg, olp)
				if err != nil {
					return err
				}
				rep.Points = append(rep.Points, p)
			}
		}
	} else {
		var err error
		rep, err = harness.RunOpenLoopSweep(sc, engines, rates, threads, cfg, ol)
		if err != nil {
			return err
		}
	}

	switch {
	case jsonFlg:
		data, err := rep.JSONL()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	case csv:
		return fmt.Errorf("-csv is not supported with -fig openloop (use -json for JSONL)")
	default:
		fmt.Print(rep.Text())
	}
	if outPath != "" {
		data, err := rep.JSONL()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hcfbench: wrote %d open-loop points to %s\n", len(rep.Points), outPath)
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("openloop-baseline: %w", err)
		}
		base, err := harness.ParseOpenLoopJSONL(data)
		if err != nil {
			return fmt.Errorf("openloop-baseline %s: %w", basePath, err)
		}
		if err := harness.CompareOpenLoopBaseline(rep, base, openLoopP99Ratio); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hcfbench: open-loop sojourn p99 within %.0f%% of baseline %s\n",
			100*(openLoopP99Ratio-1), basePath)
	}
	return nil
}

// runElastic is the -fig elastic pipeline: the three-mode hot-shard
// healing comparison (balanced / static skew / rebalanced), rendered as
// a table or JSONL (bench/ELASTIC_sweep.jsonl) and optionally gated on
// the healing story itself (-elastic-gate).
func runElastic(threadsCSV string, horizon int64, seed uint64, parallel int, jsonFlg bool, outPath string, rate, gate float64) error {
	threads := 36
	if threadsCSV != "" {
		ts, err := parseInts(threadsCSV)
		if err != nil {
			return err
		}
		if len(ts) != 1 {
			return fmt.Errorf("-fig elastic takes exactly one thread count, got %v", ts)
		}
		threads = ts[0]
	}
	cfg := harness.Config{Horizon: horizon, Seed: seed, Parallel: parallel}
	rep, err := harness.RunElasticFigure(threads, cfg, harness.ElasticRunConfig{Rate: rate, Gate: gate})
	if err != nil {
		return err
	}
	if jsonFlg {
		data, err := rep.JSONL()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	} else {
		fmt.Print(rep.Text())
	}
	if outPath != "" {
		data, err := rep.JSONL()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hcfbench: wrote %d elastic points to %s\n", len(rep.Points), outPath)
	}
	if gate > 0 {
		if err := harness.CheckElasticGate(rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hcfbench: elastic gate ok (post-heal throughput >= %.2fx balanced, verdict recovered)\n", rep.Gate)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q: %w", p, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
