// Command hcfbench regenerates the paper's figures on the deterministic
// simulator.
//
// Usage:
//
//	hcfbench -list                 # show all reproducible experiments
//	hcfbench -fig 2c               # reproduce one figure
//	hcfbench -fig all              # reproduce everything
//	hcfbench -fig 5a -csv          # emit CSV for external plotting
//	hcfbench -fig 5a -json         # emit JSON Lines (one record per cell)
//	hcfbench -fig 2a -threads 1,8,36 -horizon 500000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hcf/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcfbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available figures and exit")
		adaptFlg = fs.Bool("adaptive", false, "run the adaptive-controller comparison (§2.4 future work)")
		realFlg  = fs.Bool("real", false, "run the figure's scenario on the real-concurrency backend (wall clock; meaningful on multicore hosts)")
		realOps  = fs.Int("real-ops", 2000, "operations per thread in -real mode")
		figID    = fs.String("fig", "", "figure id to reproduce, or 'all'")
		horizon  = fs.Int64("horizon", 200_000, "virtual cycles per measurement")
		seed     = fs.Uint64("seed", 1, "workload seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables")
		jsonFlg  = fs.Bool("json", false, "emit JSON Lines (one record per scenario/engine/threads cell) instead of tables")
		threads  = fs.String("threads", "", "comma-separated thread counts (override)")
		engs     = fs.String("engines", "", "comma-separated engine names (override)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonFlg && *realFlg {
		return fmt.Errorf("-json is not supported with -real")
	}
	if *list {
		for _, f := range harness.Figures() {
			fmt.Printf("%-14s %-18s %s\n", f.ID, f.Ref, f.Title)
		}
		return nil
	}
	if *adaptFlg {
		ts := []int{18}
		if *threads != "" {
			var err error
			if ts, err = parseInts(*threads); err != nil {
				return err
			}
		}
		fmt.Println("== adaptive (§2.4 future work): shifting workload, static vs adaptive budgets")
		for _, t := range ts {
			results, err := harness.RunAdaptiveComparison(t, harness.Config{Horizon: *horizon, Seed: *seed})
			if err != nil {
				return err
			}
			switch {
			case *jsonFlg:
				out, err := harness.FormatJSONL(results)
				if err != nil {
					return err
				}
				fmt.Print(out)
			case *csv:
				fmt.Print(harness.FormatCSV(results))
			default:
				fmt.Print(harness.FormatThroughputTable(results))
			}
		}
		return nil
	}
	if *figID == "" {
		fs.Usage()
		return fmt.Errorf("missing -fig (or -list)")
	}
	var figs []harness.Figure
	if *figID == "all" {
		figs = harness.Figures()
	} else {
		f, err := harness.FigureByID(*figID)
		if err != nil {
			return err
		}
		figs = []harness.Figure{f}
	}
	cfg := harness.Config{Horizon: *horizon, Seed: *seed}
	for i := range figs {
		if *threads != "" {
			ts, err := parseInts(*threads)
			if err != nil {
				return err
			}
			figs[i].Threads = ts
		}
		if *engs != "" {
			figs[i].Engines = strings.Split(*engs, ",")
		}
		if *realFlg {
			fmt.Printf("== %s on the real backend (wall clock, %d ops/thread)\n",
				figs[i].ID, *realOps)
			for _, t := range figs[i].Threads {
				for _, e := range figs[i].Engines {
					r, err := harness.RunPointReal(figs[i].Scenario, e, t, *realOps, cfg)
					if err != nil {
						return err
					}
					status := ""
					if r.InvariantViolation != "" {
						status = "  !! " + r.InvariantViolation
					}
					fmt.Printf("threads=%-3d %-8s %10.1f ops/ms (%v)%s\n",
						t, e, r.Throughput, r.Elapsed.Round(time.Millisecond), status)
				}
			}
			continue
		}
		results, err := harness.RunFigure(figs[i], cfg)
		if err != nil {
			return err
		}
		switch {
		case *jsonFlg:
			out, err := harness.FormatJSONL(results)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case *csv:
			fmt.Print(harness.FormatCSV(results))
		default:
			fmt.Println(harness.FormatFigure(figs[i], results))
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q: %w", p, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
