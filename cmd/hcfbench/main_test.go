package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 8,36")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 36 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Error("zero accepted")
	}
	if _, err := parseInts("-3"); err == nil {
		t.Error("negative accepted")
	}
}

func TestRunListAndErrors(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	if err := run([]string{}); err == nil {
		t.Error("missing -fig accepted")
	}
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "2a", "-threads", "bad"}); err == nil {
		t.Error("bad thread list accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	err := run([]string{"-fig", "stack", "-threads", "2", "-horizon", "5000",
		"-engines", "Lock,HCF", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunJSONL checks -json emits one parseable record per
// (scenario, engine, threads) cell.
func TestRunJSONL(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-fig", "stack", "-threads", "2,3", "-horizon", "5000",
		"-engines", "Lock,HCF", "-json"})
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 4 { // 2 thread counts x 2 engines
		t.Fatalf("got %d JSONL records, want 4:\n%s", len(lines), out)
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record does not parse: %v\n%s", err, line)
		}
		for _, key := range []string{"scenario", "engine", "threads", "ops", "throughput"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("record missing %q: %s", key, line)
			}
		}
	}
}

func TestJSONRejectedWithReal(t *testing.T) {
	if err := run([]string{"-fig", "stack", "-real", "-json"}); err == nil {
		t.Error("-json with -real accepted")
	}
}
