package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 8,36")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 36 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseInts("0"); err == nil {
		t.Error("zero accepted")
	}
	if _, err := parseInts("-3"); err == nil {
		t.Error("negative accepted")
	}
}

func TestRunListAndErrors(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	if err := run([]string{}); err == nil {
		t.Error("missing -fig accepted")
	}
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "2a", "-threads", "bad"}); err == nil {
		t.Error("bad thread list accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	err := run([]string{"-fig", "stack", "-threads", "2", "-horizon", "5000",
		"-engines", "Lock,HCF", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}
