// Command hcffuzz runs the serialization-witness linearizability checker
// over many perturbed deterministic schedules. Each seed produces a
// different — but exactly reproducible — interleaving via cost-model
// jitter; every engine must produce a valid linearization witness under
// every schedule.
//
// Usage:
//
//	hcffuzz -seeds 50                       # fuzz all engines, default workload
//	hcffuzz -seeds 200 -engines HCF -threads 9 -jitter 60
//	hcffuzz -seeds 25 -scenario hashtable   # counter | hashtable
//
// A failure prints the seed; rerunning with -seeds-from <seed> -seeds 1
// reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
	"hcf/internal/trace"
	"hcf/internal/witness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcffuzz:", err)
		os.Exit(1)
	}
}

type fuzzCfg struct {
	threads   int
	perThread int
	jitterPct int64
	scenario  string
	flight    int
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcffuzz", flag.ContinueOnError)
	var (
		seeds     = fs.Int("seeds", 20, "number of schedules to explore")
		seedsFrom = fs.Uint64("seeds-from", 0, "first seed")
		threads   = fs.Int("threads", 7, "simulated threads")
		perThread = fs.Int("ops", 40, "operations per thread")
		jitter    = fs.Int64("jitter", 40, "cost jitter percent")
		engs      = fs.String("engines", "Lock,TLE,FC,SCM,TLE+FC,HCF", "engines to fuzz")
		scenario  = fs.String("scenario", "hashtable", "counter | hashtable")
		flight    = fs.Int("flight", 256, "flight-recorder ring size per thread (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fuzzCfg{
		threads:   *threads,
		perThread: *perThread,
		jitterPct: *jitter,
		scenario:  *scenario,
		flight:    *flight,
	}
	names := strings.Split(*engs, ",")
	checked := 0
	for s := 0; s < *seeds; s++ {
		seed := *seedsFrom + uint64(s)
		for _, name := range names {
			if err := fuzzOne(cfg, name, seed); err != nil {
				return fmt.Errorf("engine %s, seed %d: %w", name, seed, err)
			}
			checked++
		}
	}
	fmt.Printf("ok: %d schedule×engine combinations produced valid linearizations\n", checked)
	return nil
}

// incOp is the counter workload's operation.
type incOp struct{ addr memsim.Addr }

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

// counterModel replays incOps.
type counterModel struct{ v uint64 }

func (m *counterModel) Apply(op engine.Op) uint64 {
	m.v++
	return m.v - 1
}

// mapModel replays hash-table ops.
type mapModel struct{ m map[uint64]uint64 }

func (mm *mapModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case hashtable.FindOp:
		v, ok := mm.m[o.Key]
		return engine.Pack(v, ok)
	case hashtable.InsertOp:
		_, existed := mm.m[o.Key]
		mm.m[o.Key] = o.Val
		return engine.PackBool(!existed)
	case hashtable.RemoveOp:
		_, existed := mm.m[o.Key]
		delete(mm.m, o.Key)
		return engine.PackBool(existed)
	}
	return 0
}

func insertsLast(op engine.Op) int {
	if _, ok := op.(hashtable.InsertOp); ok {
		return 1
	}
	return 0
}

func fuzzOne(cfg fuzzCfg, engineName string, seed uint64) error {
	cost := memsim.DefaultCostParams()
	cost.JitterPct = cfg.jitterPct
	env := memsim.NewDet(memsim.DetConfig{Threads: cfg.threads, Cost: cost, Seed: seed})
	rec := &witness.Recorder{}

	var (
		policies []core.Policy
		combine  engine.CombineFunc
		nextOp   func(r *rand.Rand) engine.Op
		model    witness.Model
		rank     func(op engine.Op) int
	)
	switch cfg.scenario {
	case "counter":
		counter := env.Alloc(1)
		combine = func(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
			v := ctx.Load(counter)
			for i := range ops {
				if !done[i] {
					res[i] = v
					v++
					done[i] = true
				}
			}
			ctx.Store(counter, v)
		}
		policies = []core.Policy{{
			TryPrivateTrials: 2, TryVisibleTrials: 2, TryCombiningTrials: 4,
			RunMulti: combine,
		}}
		nextOp = func(r *rand.Rand) engine.Op { return incOp{addr: counter} }
		model = &counterModel{}
	case "hashtable":
		tbl := hashtable.New(env.Boot(), 32)
		policies = hashtable.Policies()
		combine = hashtable.CombineMixed
		nextOp = func(r *rand.Rand) engine.Op {
			key := r.Uint64N(48)
			switch r.IntN(3) {
			case 0:
				return hashtable.InsertOp{T: tbl, Key: key, Val: key ^ seed}
			case 1:
				return hashtable.FindOp{T: tbl, Key: key}
			default:
				return hashtable.RemoveOp{T: tbl, Key: key}
			}
		}
		model = &mapModel{m: map[uint64]uint64{}}
		rank = insertsLast
	default:
		return fmt.Errorf("unknown scenario %q", cfg.scenario)
	}

	var eng engine.Engine
	opts := engines.Options{Combine: combine}
	switch engineName {
	case "Lock":
		eng = engines.NewLock(env, opts)
	case "TLE":
		eng = engines.NewTLE(env, opts)
	case "FC":
		eng = engines.NewFC(env, opts)
	case "SCM":
		eng = engines.NewSCM(env, opts)
	case "TLE+FC":
		eng = engines.NewTLEFC(env, opts)
	case "HCF":
		fw, err := core.New(env, core.Config{Policies: policies})
		if err != nil {
			return err
		}
		eng = fw
	default:
		return fmt.Errorf("unknown engine %q", engineName)
	}
	we, ok := eng.(engine.WitnessedEngine)
	if !ok {
		return fmt.Errorf("engine %s is not witnessable", engineName)
	}
	we.SetWitness(rec.Func())
	// Always-on flight recorder: per-thread rings of the most recent
	// lifecycle events, dumped with the error when the checker fails.
	var flight *trace.Collector
	if cfg.flight > 0 {
		if te, ok := eng.(core.TracedEngine); ok {
			flight = &trace.Collector{Limit: cfg.flight}
			te.SetTracer(flight)
		}
	}
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), seed))
		for i := 0; i < cfg.perThread; i++ {
			eng.Execute(th, nextOp(rng))
		}
	})
	var fr witness.FlightSource
	if flight != nil {
		fr = flight
	}
	return witness.CheckDump(rec, model, cfg.threads*cfg.perThread, rank, fr, 120)
}
