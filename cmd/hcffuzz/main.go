// Command hcffuzz runs the serialization-witness linearizability checker
// over many perturbed deterministic schedules. Each seed produces a
// different — but exactly reproducible — interleaving via cost-model
// jitter and, with -explore, adversarial schedule exploration (randomized
// thread priorities plus bounded forced-preemption injection; see
// memsim.ExploreConfig). Every engine must produce a valid linearization
// witness under every schedule.
//
// Usage:
//
//	hcffuzz -seeds 50                       # fuzz all engines, default workload
//	hcffuzz -seeds 200 -engines HCF -threads 9 -jitter 60
//	hcffuzz -seeds 25 -scenario hashtable   # counter | hashtable | avl | sharded | elastic
//	hcffuzz -explore -seeds 200 -scenario hashtable,avl
//	hcffuzz -explore -seeds 200 -scenario sharded -engines HCF-S
//	hcffuzz -explore -seeds 200 -scenario elastic -engines HCF-E
//
// Without -explore a failure aborts the run and prints the seed; rerunning
// with -seeds-from <seed> -seeds 1 reproduces it exactly. With -explore the
// sweep keeps going: failures are aggregated, each one prints a single-line
// `go run ./cmd/hcffuzz ...` repro command plus the flight-recorder dump
// and a minimized span trace, and the process exits non-zero at the end.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strings"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/seq/avl"
	"hcf/internal/seq/hashtable"
	"hcf/internal/shard"
	"hcf/internal/trace"
	"hcf/internal/witness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcffuzz:", err)
		os.Exit(1)
	}
}

type fuzzCfg struct {
	threads   int
	perThread int
	jitterPct int64
	flight    int
	explore   memsim.ExploreConfig // Seed filled in per run
}

func (c fuzzCfg) exploring() bool {
	return c.explore.PreemptBudget > 0 || c.explore.JitterClass > 0
}

// reproCommand renders the exact single-line command that replays one
// (engine, scenario, seed) combination.
func (c fuzzCfg) reproCommand(engineName, scenario string, seed uint64) string {
	cmd := fmt.Sprintf("go run ./cmd/hcffuzz -seeds 1 -seeds-from %d -engines %s -scenario %s -threads %d -ops %d -jitter %d -flight %d",
		seed, engineName, scenario, c.threads, c.perThread, c.jitterPct, c.flight)
	if c.exploring() {
		cmd += fmt.Sprintf(" -explore -preempt-budget %d -jitter-class %d",
			c.explore.PreemptBudget, c.explore.JitterClass)
	}
	return cmd
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcffuzz", flag.ContinueOnError)
	var (
		seeds     = fs.Int("seeds", 20, "number of schedules to explore")
		seedsFrom = fs.Uint64("seeds-from", 0, "first seed")
		threads   = fs.Int("threads", 7, "simulated threads")
		perThread = fs.Int("ops", 40, "operations per thread")
		jitter    = fs.Int64("jitter", 40, "cost jitter percent")
		engs      = fs.String("engines", "Lock,TLE,FC,SCM,TLE+FC,HCF", "engines to fuzz")
		scenario  = fs.String("scenario", "hashtable", "comma-separated workloads: counter | hashtable | avl | sharded | elastic")
		flight    = fs.Int("flight", 256, "flight-recorder ring size per thread (0 disables)")
		explore   = fs.Bool("explore", false, "adversarial schedule exploration: sweep mode, aggregate failures")
		budget    = fs.Int("preempt-budget", 48, "forced preemptions injected per explored run")
		jclass    = fs.Int("jitter-class", 2, "priority-perturbation intensity 0..3 for explored runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fuzzCfg{
		threads:   *threads,
		perThread: *perThread,
		jitterPct: *jitter,
		flight:    *flight,
	}
	if *explore {
		cfg.explore = memsim.ExploreConfig{PreemptBudget: *budget, JitterClass: *jclass}
		if !cfg.exploring() {
			return fmt.Errorf("-explore needs -preempt-budget or -jitter-class > 0")
		}
	}
	names := strings.Split(*engs, ",")
	scens := strings.Split(*scenario, ",")
	checked, failed := 0, 0
	for s := 0; s < *seeds; s++ {
		seed := *seedsFrom + uint64(s)
		for _, scen := range scens {
			for _, name := range names {
				_, err := fuzzOne(cfg, name, scen, seed)
				checked++
				if err == nil {
					continue
				}
				if !*explore {
					return fmt.Errorf("engine %s, scenario %s, seed %d: %w", name, scen, seed, err)
				}
				failed++
				fmt.Printf("FAIL engine=%s scenario=%s seed=%d\n", name, scen, seed)
				fmt.Printf("repro: %s\n", cfg.reproCommand(name, scen, seed))
				fmt.Printf("%v\n", err)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d schedule×engine×workload combinations failed the witness", failed, checked)
	}
	mode := "schedules"
	if *explore {
		mode = "explored schedules"
	}
	fmt.Printf("ok: %d %s×engine×workload combinations produced valid linearizations\n", checked, mode)
	return nil
}

// incOp is the counter workload's operation.
type incOp struct{ addr memsim.Addr }

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

// counterModel replays incOps.
type counterModel struct{ v uint64 }

func (m *counterModel) Apply(op engine.Op) uint64 {
	m.v++
	return m.v - 1
}

// mapModel replays hash-table ops.
type mapModel struct{ m map[uint64]uint64 }

func (mm *mapModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case hashtable.FindOp:
		v, ok := mm.m[o.Key]
		return engine.Pack(v, ok)
	case hashtable.InsertOp:
		_, existed := mm.m[o.Key]
		mm.m[o.Key] = o.Val
		return engine.PackBool(!existed)
	case hashtable.RemoveOp:
		_, existed := mm.m[o.Key]
		delete(mm.m, o.Key)
		return engine.PackBool(existed)
	case hashtable.SumAllOp:
		var sum uint64
		for _, v := range mm.m {
			sum += v
		}
		return engine.Pack(sum&((1<<63)-1), true)
	}
	return 0
}

// setModel replays AVL set ops.
type setModel struct{ m map[uint64]bool }

func (sm *setModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case avl.FindOp:
		return engine.PackBool(sm.m[o.K])
	case avl.InsertOp:
		existed := sm.m[o.K]
		sm.m[o.K] = true
		return engine.PackBool(!existed)
	case avl.RemoveOp:
		existed := sm.m[o.K]
		delete(sm.m, o.K)
		return engine.PackBool(existed)
	}
	return 0
}

func insertsLast(op engine.Op) int {
	if _, ok := op.(hashtable.InsertOp); ok {
		return 1
	}
	return 0
}

// avlBatchOrder mirrors avl.CombineOps' in-batch application order — sorted
// by (key, kind) — so the witness replay follows the combiner.
func avlBatchOrder(op engine.Op) int {
	switch o := op.(type) {
	case avl.FindOp:
		return int(o.K * 3)
	case avl.InsertOp:
		return int(o.K*3) + 1
	case avl.RemoveOp:
		return int(o.K*3) + 2
	}
	return 0
}

// opString renders an operation without pointer identities, for the
// byte-comparable witness artifact.
func opString(op engine.Op) string {
	switch o := op.(type) {
	case incOp:
		return "inc"
	case hashtable.FindOp:
		return fmt.Sprintf("ht.find(%d)", o.Key)
	case hashtable.InsertOp:
		return fmt.Sprintf("ht.insert(%d,%d)", o.Key, o.Val)
	case hashtable.RemoveOp:
		return fmt.Sprintf("ht.remove(%d)", o.Key)
	case hashtable.SumAllOp:
		return "ht.sumall"
	case avl.FindOp:
		return fmt.Sprintf("avl.find(%d)", o.K)
	case avl.InsertOp:
		return fmt.Sprintf("avl.insert(%d)", o.K)
	case avl.RemoveOp:
		return fmt.Sprintf("avl.remove(%d)", o.K)
	}
	return fmt.Sprintf("%T", op)
}

// fuzzScenario is one constructed workload over a fresh environment.
type fuzzScenario struct {
	policies []core.Policy
	combine  engine.CombineFunc
	nextOp   func(r *rand.Rand) engine.Op
	model    witness.Model
	rank     func(op engine.Op) int
	// shards/router describe the sharded variant (HCF-S); shards == 0
	// means the scenario has no sharding plan.
	shards int
	router shard.Router
	// The elastic variant (HCF-E): maxShards == 0 means no elastic plan.
	// reshard, when non-nil, is called from thread 0 before each of its
	// operations so splits and merges land mid-schedule, racing the
	// witnessed traffic.
	maxShards int
	initial   int
	slots     int
	key       shard.KeyFunc
	bind      func(op engine.Op, si int) engine.Op
	migrate   shard.MigrateFunc
	reshard   func(th *memsim.Thread, e *shard.Elastic, i, perThread int)
}

func buildScenario(name string, env memsim.Env, seed uint64) (*fuzzScenario, error) {
	switch name {
	case "counter":
		counter := env.Alloc(1)
		combine := func(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
			v := ctx.Load(counter)
			for i := range ops {
				if !done[i] {
					res[i] = v
					v++
					done[i] = true
				}
			}
			ctx.Store(counter, v)
		}
		return &fuzzScenario{
			policies: []core.Policy{{
				TryPrivateTrials: 2, TryVisibleTrials: 2, TryCombiningTrials: 4,
				RunMulti: combine,
			}},
			combine: combine,
			nextOp:  func(r *rand.Rand) engine.Op { return incOp{addr: counter} },
			model:   &counterModel{},
		}, nil
	case "hashtable":
		tbl := hashtable.New(env.Boot(), 32)
		return &fuzzScenario{
			policies: hashtable.Policies(),
			combine:  hashtable.CombineMixed,
			nextOp: func(r *rand.Rand) engine.Op {
				key := r.Uint64N(48)
				switch r.IntN(3) {
				case 0:
					return hashtable.InsertOp{T: tbl, Key: key, Val: key ^ seed}
				case 1:
					return hashtable.FindOp{T: tbl, Key: key}
				default:
					return hashtable.RemoveOp{T: tbl, Key: key}
				}
			},
			model: &mapModel{m: map[uint64]uint64{}},
			rank:  insertsLast,
		}, nil
	case "sharded":
		// The §3.3 workload partitioned over three sub-tables by the
		// shared consistent-hash ring (internal/route), insert-heavy so
		// combiners on different shards run concurrently, with occasional
		// whole-structure scans forcing the cross-shard all-locks path.
		const shards = 3
		ring, err := route.NewUniform(shards, 0, shards)
		if err != nil {
			return nil, err
		}
		boot := env.Boot()
		tables := make([]*hashtable.Table, shards)
		for i := range tables {
			tables[i] = hashtable.New(boot, 16)
		}
		model := &mapModel{m: map[uint64]uint64{}}
		pre := rand.New(rand.NewPCG(seed, 0x5AD))
		for i := 0; i < 16; i++ {
			k := pre.Uint64N(48)
			if tables[ring.Owner(k)].Insert(boot, k, k) {
				model.m[k] = k
			}
		}
		return &fuzzScenario{
			policies: hashtable.Policies(),
			combine:  hashtable.CombineMixed,
			nextOp: func(r *rand.Rand) engine.Op {
				if r.Uint64N(100) < 4 {
					return hashtable.SumAllOp{Tables: tables}
				}
				key := r.Uint64N(48)
				tbl := tables[ring.Owner(key)]
				switch r.IntN(4) {
				case 0, 1:
					return hashtable.InsertOp{T: tbl, Key: key, Val: key ^ seed}
				case 2:
					return hashtable.FindOp{T: tbl, Key: key}
				default:
					return hashtable.RemoveOp{T: tbl, Key: key}
				}
			},
			model:  model,
			rank:   insertsLast,
			shards: shards,
			router: func(op engine.Op) int {
				if k, ok := hashtable.RouteKey(op); ok {
					return ring.Owner(k)
				}
				return shard.CrossShard
			},
		}, nil
	case "elastic":
		// The sharded workload over a LIVE topology: 4 provisioned tables
		// with 2 initially active, operations submitted unbound (the
		// engine's Bind hook attaches the owning table at apply time), and
		// thread 0 injecting a Split a third of the way through its
		// schedule and a Merge two thirds through — both racing the
		// witnessed shard-local and cross-shard traffic. HCF-E only.
		const (
			maxShards = 4
			initial   = 2
			slots     = 8
		)
		ring, err := route.NewUniform(initial, slots, maxShards)
		if err != nil {
			return nil, err
		}
		boot := env.Boot()
		tables := make([]*hashtable.Table, maxShards)
		for i := range tables {
			tables[i] = hashtable.New(boot, 16)
		}
		model := &mapModel{m: map[uint64]uint64{}}
		pre := rand.New(rand.NewPCG(seed, 0xE1A))
		for i := 0; i < 16; i++ {
			k := pre.Uint64N(48)
			if tables[ring.Owner(k)].Insert(boot, k, k) {
				model.m[k] = k
			}
		}
		return &fuzzScenario{
			policies: hashtable.Policies(),
			combine:  hashtable.CombineMixed,
			nextOp: func(r *rand.Rand) engine.Op {
				if r.Uint64N(100) < 4 {
					return hashtable.SumAllOp{Tables: tables}
				}
				key := r.Uint64N(48)
				switch r.IntN(4) {
				case 0, 1:
					return hashtable.InsertOp{Key: key, Val: key ^ seed}
				case 2:
					return hashtable.FindOp{Key: key}
				default:
					return hashtable.RemoveOp{Key: key}
				}
			},
			model:     model,
			rank:      insertsLast,
			maxShards: maxShards,
			initial:   initial,
			slots:     slots,
			key:       hashtable.RouteKey,
			bind: func(op engine.Op, si int) engine.Op {
				return hashtable.BindTable(op, tables[si])
			},
			migrate: func(ctx memsim.Ctx, from, to int, old, next *route.Ring) int {
				return hashtable.MigrateTables(ctx, tables, from, next)
			},
			reshard: func(th *memsim.Thread, e *shard.Elastic, i, perThread int) {
				switch i {
				case perThread / 3:
					// Split the first active shard; tiny budgets may leave
					// no spare, which is a legal no-op for the witness.
					_, _, _ = e.Split(th, 0)
				case 2 * perThread / 3:
					// Fold the highest-numbered active shard back into 0.
					r := e.Table().Load()
					for s := r.NumShards() - 1; s > 0; s-- {
						if r.SlotCount(s) > 0 {
							_, _ = e.Merge(th, s, 0)
							break
						}
					}
				}
			},
		}, nil
	case "avl":
		boot := env.Boot()
		tree := avl.New(boot)
		model := &setModel{m: map[uint64]bool{}}
		pre := rand.New(rand.NewPCG(seed, 0xAB1))
		for i := 0; i < 24; i++ {
			k := pre.Uint64N(48)
			tree.Insert(boot, k)
			model.m[k] = true
		}
		return &fuzzScenario{
			policies: avl.Policies(1),
			combine:  avl.CombineOps,
			nextOp: func(r *rand.Rand) engine.Op {
				key := r.Uint64N(48)
				switch r.IntN(3) {
				case 0:
					return avl.InsertOp{T: tree, K: key}
				case 1:
					return avl.FindOp{T: tree, K: key}
				default:
					return avl.RemoveOp{T: tree, K: key}
				}
			},
			model: model,
			rank:  avlBatchOrder,
		}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
}

// minimizedSpanTrace reduces the flight recorder's events to the last few
// complete operation spans — the causal neighborhood of a failure — one
// line per span.
func minimizedSpanTrace(col *trace.Collector, n int) string {
	spans := trace.BuildSpans(col.Events())
	if len(spans) == 0 {
		return ""
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].End < spans[j].End })
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	var b strings.Builder
	for i := range spans {
		sp := &spans[i]
		fmt.Fprintf(&b, "span t%d/#%d class=%d [%d..%d] done=%s attempts=%d aborts=%d",
			sp.Thread, sp.ID&0xFFFFFFFF, sp.Class, sp.Start, sp.End, sp.DonePhase, sp.Attempts, sp.Aborts)
		if sp.Helped {
			fmt.Fprintf(&b, " helped-by=t%d", sp.Helper)
		}
		for _, h := range sp.Helps {
			fmt.Fprintf(&b, " helps=t%d@%d", h.Peer, h.At)
		}
		if !sp.Complete {
			b.WriteString(" (truncated)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// artifact renders the witness recording (arrival order) plus the flight
// dump as a byte-comparable string: deterministic replays must reproduce it
// exactly.
func artifact(rec *witness.Recorder, flight *trace.Collector) string {
	var b strings.Builder
	for _, e := range rec.Entries() {
		fmt.Fprintf(&b, "%d %d %s = %d\n", e.Stamp, e.Intra, opString(e.Op), e.Result)
	}
	if flight != nil {
		b.WriteString("-- flight --\n")
		b.WriteString(flight.FlightDump(0))
	}
	return b.String()
}

// fuzzOne checks one (engine, scenario, seed) combination and returns the
// run's witness/flight artifact. On a witness violation the error carries
// the flight-recorder dump (via witness.CheckDump) and, in explore mode, a
// minimized span trace of the failure's causal neighborhood.
func fuzzOne(cfg fuzzCfg, engineName, scenario string, seed uint64) (string, error) {
	cost := memsim.DefaultCostParams()
	cost.JitterPct = cfg.jitterPct
	det := memsim.DetConfig{Threads: cfg.threads, Cost: cost, Seed: seed}
	if cfg.exploring() {
		det.Explore = cfg.explore
		det.Explore.Seed = seed
	}
	env := memsim.NewDet(det)
	rec := &witness.Recorder{}

	sc, err := buildScenario(scenario, env, seed)
	if err != nil {
		return "", err
	}

	var eng engine.Engine
	var elastic *shard.Elastic
	opts := engines.Options{Combine: sc.combine}
	switch engineName {
	case "Lock":
		eng = engines.NewLock(env, opts)
	case "TLE":
		eng = engines.NewTLE(env, opts)
	case "FC":
		eng = engines.NewFC(env, opts)
	case "SCM":
		eng = engines.NewSCM(env, opts)
	case "TLE+FC":
		eng = engines.NewTLEFC(env, opts)
	case "HCF":
		fw, err := core.New(env, core.Config{Policies: sc.policies})
		if err != nil {
			return "", err
		}
		eng = fw
	case "HCF-S":
		if sc.shards == 0 {
			return "", fmt.Errorf("engine HCF-S needs a sharded scenario (use -scenario sharded)")
		}
		se, err := shard.New(env, shard.Config{
			Shards:   sc.shards,
			Router:   sc.router,
			Policies: sc.policies,
		})
		if err != nil {
			return "", err
		}
		eng = se
	case "HCF-E":
		if sc.maxShards == 0 {
			return "", fmt.Errorf("engine HCF-E needs an elastic scenario (use -scenario elastic)")
		}
		ee, err := shard.NewElastic(env, shard.ElasticConfig{
			MaxShards: sc.maxShards,
			Initial:   sc.initial,
			Slots:     sc.slots,
			Key:       sc.key,
			Bind:      sc.bind,
			Migrate:   sc.migrate,
			Policies:  sc.policies,
		})
		if err != nil {
			return "", err
		}
		elastic = ee
		eng = ee
	default:
		return "", fmt.Errorf("unknown engine %q", engineName)
	}
	we, ok := eng.(engine.WitnessedEngine)
	if !ok {
		return "", fmt.Errorf("engine %s is not witnessable", engineName)
	}
	we.SetWitness(rec.Func())
	// Always-on flight recorder: per-thread rings of the most recent
	// lifecycle events, dumped with the error when the checker fails.
	var flight *trace.Collector
	if cfg.flight > 0 {
		if te, ok := eng.(core.TracedEngine); ok {
			flight = &trace.Collector{Limit: cfg.flight}
			te.SetTracer(flight)
		}
	}
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), seed))
		for i := 0; i < cfg.perThread; i++ {
			// Elastic scenarios reshape the topology from thread 0
			// mid-schedule so splits and merges race witnessed traffic.
			if th.ID() == 0 && elastic != nil && sc.reshard != nil {
				sc.reshard(th, elastic, i, cfg.perThread)
			}
			eng.Execute(th, sc.nextOp(rng))
		}
	})
	var fr witness.FlightSource
	if flight != nil {
		fr = flight
	}
	err = witness.CheckDump(rec, sc.model, cfg.threads*cfg.perThread, sc.rank, fr, 120)
	if err != nil && flight != nil && cfg.exploring() {
		if mt := minimizedSpanTrace(flight, 12); mt != "" {
			err = fmt.Errorf("%w\nminimized span trace (last operations):\n%s", err, mt)
		}
	}
	return artifact(rec, flight), err
}
