package main

import "testing"

func TestFuzzSmall(t *testing.T) {
	if err := run([]string{"-seeds", "2", "-ops", "15", "-threads", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzCounterScenario(t *testing.T) {
	if err := run([]string{"-seeds", "2", "-ops", "15", "-threads", "4",
		"-scenario", "counter", "-engines", "HCF,FC"}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope", "-seeds", "1"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engines", "nope", "-seeds", "1"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
