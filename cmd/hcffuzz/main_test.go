package main

import (
	"strings"
	"testing"

	"hcf/internal/memsim"
)

func TestFuzzSmall(t *testing.T) {
	if err := run([]string{"-seeds", "2", "-ops", "15", "-threads", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzExploreSweep(t *testing.T) {
	if err := run([]string{"-explore", "-seeds", "3", "-ops", "15", "-threads", "4",
		"-scenario", "counter,hashtable,avl"}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzExploreNeedsPerturbation(t *testing.T) {
	err := run([]string{"-explore", "-preempt-budget", "0", "-jitter-class", "0", "-seeds", "1"})
	if err == nil || !strings.Contains(err.Error(), "-explore needs") {
		t.Errorf("explore with no perturbation accepted: %v", err)
	}
}

// TestExploredArtifactByteIdentical pins the acceptance criterion that
// replaying any (config, seed) combination twice yields byte-identical
// witness recordings and flight-recorder dumps — the property that makes
// every sweep failure exactly reproducible from its printed repro line.
func TestExploredArtifactByteIdentical(t *testing.T) {
	for _, scen := range []string{"counter", "hashtable", "avl"} {
		for _, explore := range []bool{false, true} {
			cfg := fuzzCfg{threads: 5, perThread: 20, jitterPct: 40, flight: 64}
			if explore {
				cfg.explore = memsim.ExploreConfig{PreemptBudget: 32, JitterClass: 2}
			}
			for seed := uint64(0); seed < 3; seed++ {
				a, err := fuzzOne(cfg, "HCF", scen, seed)
				if err != nil {
					t.Fatalf("%s seed %d explore=%v: %v", scen, seed, explore, err)
				}
				b, err := fuzzOne(cfg, "HCF", scen, seed)
				if err != nil {
					t.Fatalf("%s seed %d explore=%v (replay): %v", scen, seed, explore, err)
				}
				if a == "" {
					t.Fatalf("%s seed %d: empty witness artifact", scen, seed)
				}
				if a != b {
					t.Fatalf("%s seed %d explore=%v: replay artifact diverged;\nfirst:\n%s\nsecond:\n%s",
						scen, seed, explore, a, b)
				}
			}
		}
	}
}

func TestReproCommandRoundTrips(t *testing.T) {
	cfg := fuzzCfg{threads: 5, perThread: 20, jitterPct: 40, flight: 64,
		explore: memsim.ExploreConfig{PreemptBudget: 32, JitterClass: 2}}
	line := cfg.reproCommand("HCF", "avl", 17)
	args := strings.Fields(line)
	if args[0] != "go" || args[1] != "run" || args[2] != "./cmd/hcffuzz" {
		t.Fatalf("repro line is not a go run command: %s", line)
	}
	// The printed line, fed back through the flag parser, must replay the
	// exact failing combination (and pass, since head is clean).
	if err := run(args[3:]); err != nil {
		t.Fatalf("repro line failed to replay: %s\n%v", line, err)
	}
}

// TestFuzzShardedScenario runs the sharded workload under every engine that
// can execute it, including the sharded HCF variant whose combiners run
// concurrently on different shards, with explored (adversarial) schedules.
func TestFuzzShardedScenario(t *testing.T) {
	if err := run([]string{"-seeds", "3", "-ops", "15", "-threads", "4",
		"-scenario", "sharded", "-engines", "Lock,HCF,HCF-S"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-explore", "-seeds", "3", "-ops", "15", "-threads", "4",
		"-scenario", "sharded", "-engines", "HCF-S"}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzShardedNeedsPlan pins the error when HCF-S is asked to run a
// scenario without a sharding plan.
func TestFuzzShardedNeedsPlan(t *testing.T) {
	err := run([]string{"-seeds", "1", "-scenario", "hashtable", "-engines", "HCF-S"})
	if err == nil || !strings.Contains(err.Error(), "sharded scenario") {
		t.Errorf("HCF-S over unsharded scenario accepted: %v", err)
	}
}

// TestFuzzElasticScenario runs the live-topology workload: thread 0
// splits a shard a third of the way through its schedule and merges one
// back two thirds through, racing the witnessed traffic, with the
// witness checking linearizability across both topology changes — under
// plain and explored (adversarial) schedules. Enough operations per
// thread that both reshape points land mid-traffic.
func TestFuzzElasticScenario(t *testing.T) {
	if err := run([]string{"-seeds", "4", "-ops", "30", "-threads", "4",
		"-scenario", "elastic", "-engines", "HCF-E"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-explore", "-seeds", "4", "-ops", "30", "-threads", "4",
		"-scenario", "elastic", "-engines", "HCF-E"}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzElasticNeedsPlan pins the error when HCF-E is asked to run a
// scenario without an elastic plan.
func TestFuzzElasticNeedsPlan(t *testing.T) {
	err := run([]string{"-seeds", "1", "-scenario", "sharded", "-engines", "HCF-E"})
	if err == nil || !strings.Contains(err.Error(), "elastic scenario") {
		t.Errorf("HCF-E over non-elastic scenario accepted: %v", err)
	}
}

// TestElasticArtifactByteIdentical extends the byte-identity pin to the
// resharding scenario: splits and merges injected mid-schedule must not
// break exact replay of any (config, seed) combination.
func TestElasticArtifactByteIdentical(t *testing.T) {
	for _, explore := range []bool{false, true} {
		cfg := fuzzCfg{threads: 4, perThread: 30, jitterPct: 40, flight: 64}
		if explore {
			cfg.explore = memsim.ExploreConfig{PreemptBudget: 32, JitterClass: 2}
		}
		for seed := uint64(0); seed < 3; seed++ {
			a, err := fuzzOne(cfg, "HCF-E", "elastic", seed)
			if err != nil {
				t.Fatalf("elastic seed %d explore=%v: %v", seed, explore, err)
			}
			b, err := fuzzOne(cfg, "HCF-E", "elastic", seed)
			if err != nil {
				t.Fatalf("elastic seed %d explore=%v (replay): %v", seed, explore, err)
			}
			if a == "" || a != b {
				t.Fatalf("elastic seed %d explore=%v: replay artifact diverged", seed, explore)
			}
		}
	}
}

func TestFuzzCounterScenario(t *testing.T) {
	if err := run([]string{"-seeds", "2", "-ops", "15", "-threads", "4",
		"-scenario", "counter", "-engines", "HCF,FC"}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope", "-seeds", "1"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engines", "nope", "-seeds", "1"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
