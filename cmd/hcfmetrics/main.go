// Command hcfmetrics runs one (scenario, engine, threads) configuration
// with the metrics subsystem enabled and prints the time-resolved picture
// the aggregate counters of hcfstat cannot show: a per-interval series of
// throughput, abort taxonomy and combining degree, plus latency percentile
// tables (p50/p90/p99/max) per operation class and completion path.
//
// Usage:
//
//	hcfmetrics -scenario hashtable -engine HCF -threads 18 -interval 10000
//	hcfmetrics -scenario avl -engine TLE -threads 36 -format json
//	hcfmetrics -scenario hashtable -engine HCF -format csv > run.csv
//	hcfmetrics -scenario hashtable -engine HCF -format prom
//	hcfmetrics -scenario sharded -shards 4 -engine HCF-S -threads 36
//	hcfmetrics -scenario stack -engine FC -real -real-ops 5000
//	hcfmetrics -tune -threads 36 -format prom   # autotuner decision journal
//
// Formats: text (default, human tables), json (one indented object), csv
// (two tables: intervals, then latencies), prom (Prometheus text
// exposition). Latencies and interval timestamps are virtual cycles on the
// default deterministic backend and wall nanoseconds with -real.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hcf/internal/adaptive"
	"hcf/internal/harness"
	"hcf/internal/metrics"
	"hcf/internal/trace"
	"hcf/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcfmetrics:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcfmetrics", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "hashtable", "hashtable | sharded | avl | pqueue | stack | deque")
		engName  = fs.String("engine", "HCF", "Lock | TLE | FC | SCM | TLE+FC | HCF | HCF-S")
		threads  = fs.Int("threads", 18, "worker threads")
		find     = fs.Int("find", 40, "find percentage (hashtable, sharded, avl)")
		shards   = fs.Int("shards", 4, "shard count (sharded)")
		cross    = fs.Int("cross", 0, "cross-shard scan percentage (sharded)")
		hot      = fs.Int("hot", 0, "percentage of keys skewed onto shard 0 (sharded)")
		theta    = fs.Float64("theta", 0.9, "zipf skew (avl)")
		horizon  = fs.Int64("horizon", 200_000, "virtual cycles")
		seed     = fs.Uint64("seed", 1, "workload seed")
		interval = fs.Int64("interval", 10_000, "sampling interval (virtual cycles, or ns with -real)")
		format   = fs.String("format", "text", "text | json | csv | prom")
		tuneFlg  = fs.Bool("tune", false, "run the policy autotuner on the drifting priority-queue workload and export its decision journal instead of a metered point")
		realFlg  = fs.Bool("real", false, "run on the real-concurrency backend (wall-clock nanoseconds)")
		realOps  = fs.Int("real-ops", 2000, "operations per thread in -real mode")
		traceLim = fs.Int("trace-limit", 0, "attach a flight recorder retaining this many events per thread (0 = off); trace health lands in the report, hot lines on the -serve endpoints")
		serveAt  = fs.String("serve", "", "after the run, serve the report on host:port (/debug endpoints, including Prometheus via ?format=prom) until interrupted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tuneFlg {
		return runTune(*threads, *horizon, *seed, *format)
	}
	var sc harness.Scenario
	switch *scenario {
	case "hashtable":
		sc = harness.HashTableScenario(*find, 16384)
	case "sharded":
		sc = harness.ShardedHashTableScenario(*find, 16384, *shards, *cross, *hot)
	case "avl":
		sc = harness.AVLScenario(*find, 1024, *theta, harness.AVLCombining)
	case "pqueue":
		sc = harness.PQScenario(50, 1<<20, 4096)
	case "stack":
		sc = harness.StackScenario(1024)
	case "deque":
		sc = harness.DequeScenario(2048, true)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	cfg := harness.Config{Horizon: *horizon, Seed: *seed}

	var report *metrics.Report
	var col *trace.Collector
	if *realFlg {
		if *traceLim > 0 {
			return fmt.Errorf("-trace-limit is not supported with -real")
		}
		res, rep, err := harness.RunPointRealMetered(sc, *engName, *threads, *realOps, cfg, *interval)
		if err != nil {
			return err
		}
		if res.InvariantViolation != "" {
			fmt.Fprintf(os.Stderr, "!! INVARIANT VIOLATION: %s\n", res.InvariantViolation)
		}
		report = rep
	} else {
		res, rep, c, err := harness.RunPointMeteredTraced(sc, *engName, *threads, cfg, *interval, *traceLim)
		if err != nil {
			return err
		}
		if res.InvariantViolation != "" {
			fmt.Fprintf(os.Stderr, "!! INVARIANT VIOLATION: %s\n", res.InvariantViolation)
		}
		report, col = rep, c
	}

	switch *format {
	case "text":
		fmt.Print(report.Text())
	case "json":
		out, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	case "csv":
		fmt.Print(report.CSV())
	case "prom":
		fmt.Print(report.Prometheus())
	default:
		return fmt.Errorf("unknown format %q (want text, json, csv or prom)", *format)
	}
	if *serveAt != "" {
		return serveReport(*serveAt, report, col)
	}
	return nil
}

// serveReport exposes the finished report (and, when the run was traced,
// its hot lines and health) on the introspection endpoints and blocks
// until the process is interrupted — a scrape target for Prometheus
// (/debug/metrics?format=prom) or a browse target for curl/hcftop.
func serveReport(addr string, report *metrics.Report, col *trace.Collector) error {
	srv := serve.New()
	srv.SetMeta(report.Scenario, report.Engine, report.Threads)
	srv.SetReport(func() *metrics.Report { return report })
	srv.SetShards(func() []metrics.GroupCounters { return report.Totals.ByGroup })
	if report.SLO != nil {
		srv.SetSLO(func() *metrics.SLOSnapshot { return report.SLO })
	}
	if col != nil {
		srv.SetTraceHealth(func() *metrics.TraceHealth { return report.Trace })
		srv.PublishHotLines(col.HotLines(32))
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "hcfmetrics: serving the report at http://%s/debug (ctrl-c to stop)\n", bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

// runTune runs the autotuner comparison and exports the decision journal in
// the requested exposition format (csv has no journal mapping).
func runTune(threads int, horizon int64, seed uint64, format string) error {
	rep, err := harness.RunAutotune(threads, harness.Config{Horizon: horizon, Seed: seed})
	if err != nil {
		return err
	}
	switch format {
	case "text":
		fmt.Print(rep.Text())
		fmt.Printf("\ndecision journal (%d entries):\n%s", rep.Journal.Len(), rep.Journal.Text())
	case "json":
		out, err := json.MarshalIndent(struct {
			*harness.AutotuneReport
			Journal []adaptive.Decision `json:"journal"`
		}{rep, rep.Journal.Decisions()}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	case "prom":
		fmt.Print(rep.Journal.Prometheus(rep.Scenario, "HCF-tuned"))
	default:
		return fmt.Errorf("format %q does not support -tune (want text, json or prom)", format)
	}
	return nil
}
