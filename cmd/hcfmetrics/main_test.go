package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"hcf/internal/metrics"
)

// captureRun executes run(args) with stdout captured.
func captureRun(t *testing.T, args ...string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return string(out)
}

// TestAcceptanceInvocation runs the exact command the subsystem is specified
// against and checks for the per-interval series and the percentile table.
func TestAcceptanceInvocation(t *testing.T) {
	out := captureRun(t, "-scenario", "hashtable", "-engine", "HCF",
		"-threads", "18", "-interval", "10000")
	for _, want := range []string{
		"interval series (every 10000 cycles):",
		"thrpt", "commits", "aborts", "degree",
		"operation latency by class (cycles):",
		"p50", "p90", "p99",
		"find", "insert", "remove",
		"transaction duration by outcome (cycles):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The default 200k-cycle horizon sampled every 10k must produce a
	// substantial series, one line per interval.
	if n := strings.Count(out, "\n"); n < 25 {
		t.Errorf("only %d output lines, want a full interval series + tables:\n%s", n, out)
	}
}

func TestAllScenariosAllEngines(t *testing.T) {
	for _, sc := range []string{"hashtable", "avl", "pqueue", "stack", "deque"} {
		for _, eng := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
			out := captureRun(t, "-scenario", sc, "-engine", eng,
				"-threads", "3", "-horizon", "6000", "-interval", "2000")
			if !strings.Contains(out, "unit      cycles") {
				t.Errorf("%s/%s: unexpected output:\n%s", sc, eng, out)
			}
		}
	}
}

func TestJSONFormatRoundTrips(t *testing.T) {
	out := captureRun(t, "-scenario", "hashtable", "-engine", "HCF",
		"-threads", "4", "-horizon", "20000", "-interval", "5000", "-format", "json")
	var rep metrics.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if rep.Scenario == "" || rep.Engine != "HCF" || rep.Threads != 4 {
		t.Errorf("identity fields: %+v", rep)
	}
	if rep.Totals.Ops == 0 || len(rep.Intervals) == 0 || len(rep.ClassLatency) == 0 {
		t.Errorf("empty report sections: ops %d, intervals %d, classes %d",
			rep.Totals.Ops, len(rep.Intervals), len(rep.ClassLatency))
	}
}

func TestCSVFormatParses(t *testing.T) {
	out := captureRun(t, "-scenario", "hashtable", "-engine", "TLE",
		"-threads", "4", "-horizon", "20000", "-interval", "5000", "-format", "csv")
	tables := strings.Split(out, "\n\n")
	if len(tables) != 2 {
		t.Fatalf("want 2 CSV tables, got %d", len(tables))
	}
	for i, table := range tables {
		rows, err := csv.NewReader(strings.NewReader(table)).ReadAll()
		if err != nil {
			t.Fatalf("table %d does not parse: %v\n%s", i, err, table)
		}
		if len(rows) < 2 {
			t.Errorf("table %d has no data rows:\n%s", i, table)
		}
	}
}

func TestPromFormatParses(t *testing.T) {
	out := captureRun(t, "-scenario", "stack", "-engine", "FC",
		"-threads", "4", "-horizon", "20000", "-format", "prom")
	samples := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.Contains(fields[0], "{") {
			t.Errorf("malformed sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Error("no samples in prom output")
	}
	if !strings.Contains(out, `hcf_ops_total{scenario="stack/push=50%",engine="FC",`) {
		t.Errorf("missing base labels:\n%s", out)
	}
}

func TestRealBackend(t *testing.T) {
	out := captureRun(t, "-scenario", "hashtable", "-engine", "HCF",
		"-threads", "2", "-real", "-real-ops", "300", "-interval", "0")
	if !strings.Contains(out, "unit      ns") {
		t.Errorf("real backend must report nanoseconds:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engine", "nope", "-threads", "2", "-horizon", "5000"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"-format", "xml", "-threads", "2", "-horizon", "5000"}); err == nil {
		t.Error("unknown format accepted")
	}
}
