// Command hcfstat runs one (scenario, engine, threads) configuration and
// prints a deep behavioural report: throughput, HTM abort taxonomy, lock
// and combining statistics, memory-system behaviour, and (for HCF) the
// per-class phase breakdown.
//
// Usage:
//
//	hcfstat -scenario hashtable -find 40 -engine HCF -threads 18
//	hcfstat -scenario sharded -shards 4 -engine HCF-S -threads 36
//	hcfstat -scenario avl -find 0 -theta 0.9 -engine TLE -threads 36
//	hcfstat -scenario pqueue|stack|deque -engine FC -threads 8
//	hcfstat -scenario hashtable -engine HCF -json   # machine-readable output
//	hcfstat -tune -threads 36                       # autotuner report + journal
//	hcfstat -scenario elastic -hot 90 -threads 36 -decisions 5
//
// The elastic scenario always runs the HCF-E engine with its rebalancer
// attached and reports the final ring topology plus the tail of the
// rebalancer's decision journal (-decisions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"hcf/internal/core"
	"hcf/internal/harness"
	"hcf/internal/htm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcfstat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcfstat", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "hashtable", "hashtable | sharded | elastic | avl | pqueue | stack | deque")
		engName  = fs.String("engine", "HCF", "Lock | TLE | FC | SCM | TLE+FC | HCF | HCF-S (elastic always runs HCF-E)")
		threads  = fs.Int("threads", 18, "worker threads")
		find     = fs.Int("find", 40, "find percentage (hashtable, sharded, avl)")
		shards   = fs.Int("shards", 4, "shard count (sharded)")
		cross    = fs.Int("cross", 0, "cross-shard scan percentage (sharded)")
		hot      = fs.Int("hot", 0, "percentage of keys skewed onto shard 0 (sharded); drifting hot-set percentage (elastic)")
		decs     = fs.Int("decisions", 8, "elastic: print the last N rebalancer decisions")
		theta    = fs.Float64("theta", 0.9, "zipf skew (avl)")
		horizon  = fs.Int64("horizon", 200_000, "virtual cycles")
		seed     = fs.Uint64("seed", 1, "workload seed")
		jsonFlg  = fs.Bool("json", false, "emit one machine-readable JSON object instead of the text report")
		tuneFlg  = fs.Bool("tune", false, "run the policy-autotuner comparison on the drifting priority-queue workload and print its report and decision journal")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tuneFlg {
		rep, err := harness.RunAutotune(*threads, harness.Config{Horizon: *horizon, Seed: *seed})
		if err != nil {
			return err
		}
		if *jsonFlg {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", out)
			return nil
		}
		fmt.Print(rep.Text())
		fmt.Printf("\ndecision journal (%d entries):\n%s", rep.Journal.Len(), rep.Journal.Text())
		return nil
	}
	if *scenario == "elastic" {
		// The elastic report has its own runner (open-loop point with the
		// rebalancer stepped from thread 0) and its own longer default
		// horizon: only forward -horizon when the user actually set it.
		h := int64(0)
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "horizon" {
				h = *horizon
			}
		})
		return runElastic(*find, *hot, *threads, h, *seed, *decs, *jsonFlg)
	}
	if err := harness.ValidateEngineNames([]string{*engName}); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var sc harness.Scenario
	switch *scenario {
	case "hashtable":
		sc = harness.HashTableScenario(*find, 16384)
	case "sharded":
		sc = harness.ShardedHashTableScenario(*find, 16384, *shards, *cross, *hot)
	case "avl":
		sc = harness.AVLScenario(*find, 1024, *theta, harness.AVLCombining)
	case "pqueue":
		sc = harness.PQScenario(50, 1<<20, 4096)
	case "stack":
		sc = harness.StackScenario(1024)
	case "deque":
		sc = harness.DequeScenario(2048, true)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	res, err := harness.RunPoint(sc, *engName, *threads, harness.Config{
		Horizon: *horizon,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	if *jsonFlg {
		out, err := harness.FormatJSON(res)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	report(res)
	return nil
}

// runElastic runs the elastic scenario under HCF-E with the rebalancer
// attached and reports the ring topology and the journal tail.
func runElastic(find, hot, threads int, horizon int64, seed uint64, lastN int, jsonFlg bool) error {
	if horizon <= 0 {
		horizon = harness.ElasticDefaultHorizon
	}
	sc := harness.ElasticScenario(find, harness.ElasticBuckets,
		harness.ElasticMaxShards, harness.ElasticInitialShards, hot, horizon)
	p, err := harness.RunPointElastic(sc, "elastic", true, threads,
		harness.Config{Horizon: horizon, Seed: seed}, harness.ElasticRunConfig{})
	if err != nil {
		return err
	}
	if jsonFlg {
		out, err := json.MarshalIndent(&p, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
		return nil
	}
	fmt.Printf("scenario    %s\n", p.Scenario)
	fmt.Printf("engine      %s (rebalancer attached)\n", p.Engine)
	fmt.Printf("threads     %d\n", p.Threads)
	fmt.Printf("ops         %d of %d arrivals in %d cycles\n", p.Completed, p.Arrivals, p.Makespan)
	fmt.Printf("throughput  %.1f ops/Mcycle (post-phase %.1f), sojourn p99 %d\n",
		p.Throughput, p.PostThroughput, p.Sojourn.P99)
	fmt.Printf("windows     %d bad of %d; healed=%v\n\n", p.BadWindows, len(p.Windows), p.Healed)

	if t := p.Topology; t != nil {
		fmt.Printf("topology    epoch=%d active=%d/%d slots=%d\n",
			t.Ring.Epoch, t.Ring.Active, t.Provisioned, t.Ring.Slots)
		fmt.Printf("            splits=%d merges=%d moved_keys=%d reroutes=%d cross_ops=%d\n",
			t.Splits, t.Merges, t.MovedKeys, t.Reroutes, t.CrossOps)
		fmt.Printf("            shard_ops=%v slot_counts=%v\n\n", t.ShardOps, t.Ring.Counts)
	}
	ds := p.Decisions
	if lastN > 0 && len(ds) > lastN {
		ds = ds[len(ds)-lastN:]
	}
	fmt.Printf("rebalancer decisions (last %d of %d):\n", len(ds), len(p.Decisions))
	for _, d := range ds {
		fmt.Printf("  w%03d t=%-8d %-5s %-13s", d.Window, d.Now, d.Action, d.Reason)
		if d.Action != "hold" {
			fmt.Printf(" %d→%d moved=%d", d.From, d.To, d.MovedKeys)
		}
		fmt.Printf("  hottest=%.0f%% fair=%.0f%% ops=%d\n",
			100*d.HottestShare, 100*d.FairShare, d.TotalOps)
	}
	if p.InvariantViolation != "" {
		fmt.Printf("!! INVARIANT VIOLATION: %s\n", p.InvariantViolation)
	}
	return nil
}

func report(r harness.Result) {
	fmt.Printf("scenario    %s\n", r.Scenario)
	fmt.Printf("engine      %s\n", r.Engine)
	fmt.Printf("threads     %d\n", r.Threads)
	fmt.Printf("ops         %d in %d cycles\n", r.Ops, r.Cycles)
	fmt.Printf("throughput  %.1f ops/Mcycle\n\n", r.Throughput)

	m := &r.Metrics
	fmt.Printf("locks       L acquisitions: %d (%.4f/op), selection/aux: %d\n",
		m.LockAcquisitions, perOp(m.LockAcquisitions, r.Ops), m.AuxAcquisitions)
	fmt.Printf("combining   %d ops in %d sessions (degree %.2f)\n",
		m.CombinedOps, m.CombinerSessions, m.CombiningDegree())

	h := &m.HTM
	fmt.Printf("htm         started %d, committed %d (%.1f%%)\n",
		h.Started, h.Commits, pct(h.Commits, h.Started))
	fmt.Printf("  aborts    total %d", h.TotalAborts())
	for reason := htm.ReasonConflict; reason < htm.NumReasons; reason++ {
		if h.Aborts[reason] > 0 {
			fmt.Printf("  %s=%d", reason, h.Aborts[reason])
		}
	}
	fmt.Println()

	fmt.Printf("memory      loads %d, stores %d, L1 miss %.2f%% (coherence %d, cross-socket %d)\n\n",
		r.Mem.Loads, r.Mem.Stores, 100*r.Mem.MissRate(),
		r.Mem.CoherenceMisses, r.Mem.RemoteMisses)

	if r.PhaseByClass != nil {
		fmt.Println("phase completions by class:")
		for c, phases := range r.PhaseByClass {
			var total uint64
			for _, p := range phases {
				total += p
			}
			if total == 0 {
				continue
			}
			fmt.Printf("  class %d:", c)
			for p := 0; p < core.NumPhases; p++ {
				fmt.Printf("  %s=%.1f%%", core.Phase(p), pct(phases[p], total))
			}
			fmt.Println()
		}
	}
	if r.InvariantViolation != "" {
		fmt.Printf("!! INVARIANT VIOLATION: %s\n", r.InvariantViolation)
	}
}

func perOp(n, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(n) / float64(ops)
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
