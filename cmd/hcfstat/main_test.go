package main

import "testing"

func TestRunAllScenarios(t *testing.T) {
	for _, sc := range []string{"hashtable", "avl", "pqueue", "stack", "deque"} {
		if err := run([]string{"-scenario", sc, "-engine", "HCF", "-threads", "3",
			"-horizon", "5000"}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engine", "nope", "-threads", "2", "-horizon", "5000"}); err == nil {
		t.Error("unknown engine accepted")
	}
}
