package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"
)

func TestRunAllScenarios(t *testing.T) {
	for _, sc := range []string{"hashtable", "avl", "pqueue", "stack", "deque"} {
		if err := run([]string{"-scenario", sc, "-engine", "HCF", "-threads", "3",
			"-horizon", "5000"}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestRunJSON(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-scenario", "hashtable", "-engine", "HCF",
		"-threads", "4", "-horizon", "20000", "-json"})
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	var rec map[string]any
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	for _, key := range []string{"scenario", "engine", "threads", "ops", "throughput",
		"htm_started", "phase_by_class"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("record missing %q", key)
		}
	}
	if rec["engine"] != "HCF" || rec["threads"] != float64(4) {
		t.Errorf("identity fields wrong: %v", rec)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engine", "nope", "-threads", "2", "-horizon", "5000"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestRunElastic runs the elastic report on a small horizon: the
// decision journal, topology block and JSON shape must all come out.
func TestRunElastic(t *testing.T) {
	if err := run([]string{"-scenario", "elastic", "-hot", "90", "-threads", "4",
		"-horizon", "100000", "-decisions", "3"}); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-scenario", "elastic", "-hot", "90", "-threads", "4",
		"-horizon", "100000", "-json"})
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	var rec map[string]any
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	for _, key := range []string{"scenario", "engine", "mode", "topology", "decisions"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("record missing %q", key)
		}
	}
	if rec["engine"] != "HCF-E" {
		t.Errorf("identity fields wrong: %v", rec["engine"])
	}
}
