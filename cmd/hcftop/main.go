// Command hcftop is a terminal dashboard over the live introspection
// server (hcf/serve): it polls the /debug endpoints and renders the run's
// vital signs — sojourn latency per class through the deep tail, SLO
// burn-rate state, queue backlog, and per-shard activity — refreshing in
// place like top(1).
//
// Usage:
//
//	hcftop                              # watch http://127.0.0.1:7070
//	hcftop -addr 127.0.0.1:7654         # watch an hcfbench -serve run
//	hcftop -once                        # one snapshot, no screen control
//	hcftop -plain -interval 5s          # log-friendly append-only output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hcf/internal/metrics"
	"hcf/internal/shard"
	"hcf/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hcftop:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hcftop", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7070", "introspection server host:port")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		once     = fs.Bool("once", false, "print one snapshot and exit")
		plain    = fs.Bool("plain", false, "no screen clearing; append snapshots (implies by -once)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		snap, err := fetch(client, base)
		if err != nil {
			return err
		}
		if !*plain && !*once {
			fmt.Fprint(w, "\033[2J\033[H") // clear screen, home cursor
		}
		fmt.Fprint(w, render(snap))
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

// snapshot is one poll of the introspection endpoints. Endpoints that are
// not configured on the server (404) leave their field nil.
type snapshot struct {
	Vars     *serve.Vars
	Sojourn  []serve.ClassLatency
	SLO      *metrics.SLOSnapshot
	Shards   []metrics.GroupCounters
	Topology *shard.Topology
	When     time.Time
}

// decodeShards accepts both /debug/shards payload shapes: the bare
// counters array a static sharded engine serves, and the
// {"topology": ..., "counters": [...]} object an elastic engine serves.
func (s *snapshot) decodeShards(raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	if raw[0] == '[' {
		return json.Unmarshal(raw, &s.Shards)
	}
	var obj struct {
		Topology *shard.Topology         `json:"topology"`
		Counters []metrics.GroupCounters `json:"counters"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil {
		return err
	}
	s.Topology, s.Shards = obj.Topology, obj.Counters
	return nil
}

// getJSON decodes endpoint ep into out; a 404 is not an error (the
// provider simply is not configured), anything else is.
func getJSON(client *http.Client, base, ep string, out any) error {
	resp, err := client.Get(base + ep)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", ep, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fetch(client *http.Client, base string) (*snapshot, error) {
	s := &snapshot{When: time.Now()}
	var v serve.Vars
	if err := getJSON(client, base, "/debug/vars", &v); err != nil {
		return nil, err
	}
	s.Vars = &v
	if err := getJSON(client, base, "/debug/sojourn", &s.Sojourn); err != nil {
		return nil, err
	}
	var slo metrics.SLOSnapshot
	if err := getJSON(client, base, "/debug/slo", &slo); err != nil {
		return nil, err
	}
	if len(slo.Objectives) > 0 {
		s.SLO = &slo
	}
	var rawShards json.RawMessage
	if err := getJSON(client, base, "/debug/shards", &rawShards); err != nil {
		return nil, err
	}
	if err := s.decodeShards(rawShards); err != nil {
		return nil, err
	}
	return s, nil
}

// render lays the snapshot out as the dashboard text.
func render(s *snapshot) string {
	var b strings.Builder
	v := s.Vars
	fmt.Fprintf(&b, "hcftop  %s", s.When.Format("15:04:05"))
	if v != nil {
		if v.Scenario != "" {
			fmt.Fprintf(&b, "  %s", v.Scenario)
		}
		if v.Engine != "" {
			fmt.Fprintf(&b, "  engine=%s threads=%d", v.Engine, v.Threads)
		}
		fmt.Fprintf(&b, "  now=%d backlog=%d", v.Now, v.Backlog)
		if v.Trace != nil {
			fmt.Fprintf(&b, "  trace=%d/%d dropped=%d", v.Trace.Retained, v.Trace.Starts, v.Trace.Dropped)
		}
	}
	b.WriteByte('\n')

	if s.SLO != nil {
		b.WriteString("\nSLO:\n")
		fmt.Fprintf(&b, "  %-10s %10s %12s %10s %10s %10s  %s\n",
			"class", "threshold", "compliance", "budget", "fast", "slow", "state")
		for _, o := range s.SLO.Objectives {
			class := o.Class
			if class == "" {
				class = "(all)"
			}
			fmt.Fprintf(&b, "  %-10s %10d %11.4f%% %9.1f%% %10.2f %10.2f  %s\n",
				class, o.Threshold, 100*o.Compliance, 100*o.BudgetUsed,
				o.FastBurn, o.SlowBurn, strings.ToUpper(o.State))
		}
		if n := len(s.SLO.Verdicts); n > 0 {
			last := s.SLO.Verdicts[n-1]
			fmt.Fprintf(&b, "  last verdict: @%d %s -> %s (%s)\n", last.Time, last.From, last.To, last.Reason)
		}
	}

	if len(s.Sojourn) > 0 {
		b.WriteString("\nsojourn latency:\n")
		fmt.Fprintf(&b, "  %-10s %10s %8s %8s %8s %8s %8s %8s\n",
			"class", "count", "mean", "p50", "p99", "p999", "p9999", "max")
		for _, row := range s.Sojourn {
			fmt.Fprintf(&b, "  %-10s %10d %8.0f %8d %8d %8d %8d %8d\n",
				row.Class, row.Count, row.Mean, row.P50, row.P99, row.P999, row.P9999, row.Max)
		}
	}

	if len(s.Shards) > 0 || s.Topology != nil {
		b.WriteString("\nshards:\n")
		if t := s.Topology; t != nil {
			fmt.Fprintf(&b, "  topology: epoch=%d active=%d/%d splits=%d merges=%d moved=%d reroutes=%d\n",
				t.Ring.Epoch, t.Ring.Active, t.Provisioned, t.Splits, t.Merges, t.MovedKeys, t.Reroutes)
		}
		if len(s.Shards) > 0 {
			fmt.Fprintf(&b, "  %-8s %10s %10s %10s %10s %10s\n",
				"shard", "ops", "commits", "aborts", "sessions", "combined")
			for _, g := range s.Shards {
				fmt.Fprintf(&b, "  %-8s %10d %10d %10d %10d %10d\n",
					g.Group, g.Ops, g.Commits, g.Aborts, g.CombinerSessions, g.CombinedOps)
			}
		}
	}
	return b.String()
}
