package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hcf/internal/metrics"
	"hcf/internal/route"
	"hcf/internal/shard"
	"hcf/serve"
)

// liveServer builds a serve.Server with canned providers and returns an
// httptest wrapper around its handler.
func liveServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New()
	s.SetMeta("hashtable", "HCF-S", 12)
	s.SetBacklog(func() int64 { return 17 })
	s.SetTraceHealth(func() *metrics.TraceHealth {
		return &metrics.TraceHealth{Starts: 100, Retained: 64, Dropped: 36}
	})
	s.SetSojourn(func() []serve.ClassLatency {
		return []serve.ClassLatency{
			{Class: "insert", Count: 500, Mean: 310.5, P50: 290, P99: 900, P999: 1800, P9999: 2400, Max: 2500},
			{Class: "find", Count: 700, Mean: 120.0, P50: 100, P99: 300, P999: 500, P9999: 600, Max: 650},
		}
	})
	s.SetShards(func() []metrics.GroupCounters {
		return []metrics.GroupCounters{
			{Group: "shard0", Ops: 600, Commits: 580, Aborts: 20, CombinerSessions: 40, CombinedOps: 200},
			{Group: "cross", Ops: 12},
		}
	})
	rec, err := metrics.New(metrics.Config{Shards: 2, TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec.RecordOp(0, 0, 0, 100)
	}
	rec.RecordOp(1, 0, 0, 90_000)
	tr, err := metrics.NewSLOTracker(rec, metrics.SLOConfig{
		Objectives: []metrics.Objective{{Threshold: 1000, Target: 0.999}},
		FastWindow: 1, SlowWindow: 2, WarnBurn: 1, PageBurn: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Step(1000) // the bad op blows the 0.1% budget: state pages immediately
	s.SetSLO(func() *metrics.SLOSnapshot {
		snap := tr.Snapshot()
		return &snap
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchAndRender(t *testing.T) {
	ts := liveServer(t)
	client := &http.Client{Timeout: time.Second}
	snap, err := fetch(client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Vars == nil || snap.Vars.Engine != "HCF-S" || snap.Vars.Backlog != 17 {
		t.Fatalf("vars: %+v", snap.Vars)
	}
	if len(snap.Sojourn) != 2 || len(snap.Shards) != 2 || snap.SLO == nil {
		t.Fatalf("snapshot incomplete: sojourn=%d shards=%d slo=%v",
			len(snap.Sojourn), len(snap.Shards), snap.SLO != nil)
	}
	out := render(snap)
	for _, want := range []string{
		"engine=HCF-S", "backlog=17", "trace=64/100 dropped=36",
		"p999", "p9999", "insert", "find", "shard0", "cross",
		"SLO:", "PAGE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFetchToleratesMissingEndpoints(t *testing.T) {
	s := serve.New() // no providers at all
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: time.Second}
	snap, err := fetch(client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SLO != nil || len(snap.Sojourn) != 0 || len(snap.Shards) != 0 {
		t.Fatalf("expected empty snapshot, got %+v", snap)
	}
	if out := render(snap); !strings.Contains(out, "hcftop") {
		t.Fatalf("render on empty snapshot:\n%s", out)
	}
}

func TestRunOnce(t *testing.T) {
	ts := liveServer(t)
	var buf strings.Builder
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := run([]string{"-addr", addr, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "engine=HCF-S") {
		t.Fatalf("run -once output:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "\033[2J") {
		t.Fatal("-once must not emit screen-control sequences")
	}
}

// TestFetchElasticTopology pins the object-shaped /debug/shards payload
// an elastic engine serves: the dashboard decodes both topology and
// counters and renders the topology line.
func TestFetchElasticTopology(t *testing.T) {
	s := serve.New()
	s.SetMeta("hashtable-elastic", "HCF-E", 12)
	s.SetShards(func() []metrics.GroupCounters {
		return []metrics.GroupCounters{{Group: "shard0", Ops: 600}}
	})
	s.SetTopology(func() *shard.Topology {
		return &shard.Topology{
			Name:        "HCF-E",
			Provisioned: 8,
			Splits:      2,
			MovedKeys:   495,
			Reroutes:    28,
			Ring:        route.Snapshot{Epoch: 2, Slots: 64, Active: 6},
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: time.Second}
	snap, err := fetch(client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Topology == nil || snap.Topology.Splits != 2 || len(snap.Shards) != 1 {
		t.Fatalf("elastic snapshot: topology=%+v shards=%d", snap.Topology, len(snap.Shards))
	}
	out := render(snap)
	for _, want := range []string{
		"topology: epoch=2 active=6/8 splits=2 merges=0 moved=495 reroutes=28",
		"shard0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
