// Command hcftrace runs a workload under any of the six engines with
// lifecycle tracing and reports where operations went: per-phase attempt
// outcomes with abort attribution (conflicting cache line + writer
// thread, lock holders), self vs helped completions with latency and
// time-in-phase breakdowns, combiner selection sizes, the hottest
// conflicting cache lines, and (optionally) a raw event timeline.
//
// Output formats:
//
//	-format text    human-readable summary + span stats (default)
//	-format json    machine-readable summary + span stats (also: -json)
//	-format chrome  Chrome trace-event JSON — load the file in Perfetto
//	                (ui.perfetto.dev) or chrome://tracing; threads are
//	                tracks, operations are slices with nested phase
//	                sub-slices, combining shows as flow arrows
//
// Usage:
//
//	hcftrace -scenario hashtable -threads 18
//	hcftrace -scenario pqueue -engine TLE+FC -threads 12 -timeline 60
//	hcftrace -scenario hashtable -format chrome -out trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hcf/internal/harness"
	"hcf/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcftrace:", err)
		os.Exit(1)
	}
}

// report is the -format json document: run identity and results alongside
// the aggregate trace summary and span statistics, field-compatible in
// style with hcfbench/hcfstat output.
type report struct {
	Scenario   string            `json:"scenario"`
	Engine     string            `json:"engine"`
	Threads    int               `json:"threads"`
	Horizon    int64             `json:"horizon"`
	Seed       uint64            `json:"seed"`
	Ops        uint64            `json:"ops"`
	Cycles     int64             `json:"cycles"`
	Throughput float64           `json:"throughput_ops_per_mcycle"`
	Summary    trace.SummaryData `json:"summary"`
	Spans      trace.SpanStats   `json:"spans"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcftrace", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "hashtable", "hashtable | avl | pqueue | stack | deque | sortedlist")
		engine   = fs.String("engine", "HCF", "Lock | TLE | FC | SCM | TLE+FC | HCF")
		threads  = fs.Int("threads", 18, "worker threads")
		find     = fs.Int("find", 40, "find percentage (hashtable, avl, sortedlist)")
		horizon  = fs.Int64("horizon", 100_000, "virtual cycles")
		seed     = fs.Uint64("seed", 1, "workload seed")
		limit    = fs.Int("limit", 0, "flight-recorder ring size per thread (0 = retain all events)")
		timeline = fs.Int("timeline", 0, "also print the first N raw events (text format)")
		format   = fs.String("format", "text", "text | json | chrome")
		jsonFlag = fs.Bool("json", false, "shorthand for -format json")
		out      = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonFlag {
		*format = "json"
	}
	switch *format {
	case "text", "json", "chrome":
	default:
		return fmt.Errorf("unknown format %q (want text, json, or chrome)", *format)
	}
	var sc harness.Scenario
	switch *scenario {
	case "hashtable":
		sc = harness.HashTableScenario(*find, 4096)
	case "avl":
		sc = harness.AVLScenario(*find, 1024, 0.9, harness.AVLCombining)
	case "pqueue":
		sc = harness.PQScenario(50, 1<<20, 4096)
	case "stack":
		sc = harness.StackScenario(1024)
	case "deque":
		sc = harness.DequeScenario(2048, true)
	case "sortedlist":
		sc = harness.SortedListScenario(*find, 512)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	cfg := harness.Config{Horizon: *horizon, Seed: *seed}
	res, col, err := harness.RunPointTraced(sc, *engine, *threads, cfg, *limit)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "chrome":
		if err := trace.WriteChrome(w, col.Events(), *engine); err != nil {
			return err
		}
	case "json":
		doc := report{
			Scenario:   res.Scenario,
			Engine:     res.Engine,
			Threads:    res.Threads,
			Horizon:    *horizon,
			Seed:       *seed,
			Ops:        res.Ops,
			Cycles:     res.Cycles,
			Throughput: res.Throughput,
			Summary:    col.SummaryData(),
			Spans:      trace.ComputeSpanStats(trace.BuildSpans(col.Events())),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	default:
		fmt.Fprintf(w, "scenario %s, engine %s, %d threads, horizon %d cycles\n\n",
			sc.Name, *engine, *threads, *horizon)
		fmt.Fprint(w, col.Summary())
		fmt.Fprintf(w, "\n")
		fmt.Fprint(w, trace.FormatSpanStats(trace.ComputeSpanStats(trace.BuildSpans(col.Events()))))
		if *timeline > 0 {
			fmt.Fprintf(w, "\nfirst %d events:\n%s", *timeline, col.FormatTimeline(*timeline))
		}
	}
	if res.InvariantViolation != "" {
		return fmt.Errorf("invariant violation: %s", res.InvariantViolation)
	}
	return nil
}
