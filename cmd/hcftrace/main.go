// Command hcftrace runs a workload under HCF with lifecycle tracing and
// prints where operations went: per-phase attempt outcomes with abort
// reasons, self vs helped completions, combiner selection sizes, and
// (optionally) a raw event timeline.
//
// Usage:
//
//	hcftrace -scenario hashtable -threads 18
//	hcftrace -scenario pqueue -threads 12 -timeline 60
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"hcf/internal/core"
	"hcf/internal/harness"
	"hcf/internal/memsim"
	"hcf/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcftrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcftrace", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "hashtable", "hashtable | avl | pqueue | stack | deque | sortedlist")
		threads  = fs.Int("threads", 18, "worker threads")
		find     = fs.Int("find", 40, "find percentage (hashtable, avl, sortedlist)")
		horizon  = fs.Int64("horizon", 100_000, "virtual cycles")
		seed     = fs.Uint64("seed", 1, "workload seed")
		timeline = fs.Int("timeline", 0, "also print the first N raw events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sc harness.Scenario
	switch *scenario {
	case "hashtable":
		sc = harness.HashTableScenario(*find, 4096)
	case "avl":
		sc = harness.AVLScenario(*find, 1024, 0.9, harness.AVLCombining)
	case "pqueue":
		sc = harness.PQScenario(50, 1<<20, 4096)
	case "stack":
		sc = harness.StackScenario(1024)
	case "deque":
		sc = harness.DequeScenario(2048, true)
	case "sortedlist":
		sc = harness.SortedListScenario(*find, 512)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	env := memsim.NewDet(memsim.DetConfig{Threads: *threads})
	inst := sc.Setup(env, *seed)
	fw, err := core.New(env, core.Config{
		Policies:          inst.Policies,
		HoldSelectionLock: inst.HoldSelectionLock,
	})
	if err != nil {
		return err
	}
	col := &trace.Collector{Limit: 100_000}
	fw.SetTracer(col)
	env.ResetStats()
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(*seed, uint64(th.ID())+1))
		for th.Now() < *horizon {
			fw.Execute(th, inst.NextOp(rng))
		}
	})
	fmt.Printf("scenario %s, %d threads, horizon %d cycles\n\n", sc.Name, *threads, *horizon)
	fmt.Print(col.Summary())
	if *timeline > 0 {
		fmt.Printf("\nfirst %d events:\n%s", *timeline, col.FormatTimeline(*timeline))
	}
	if inst.Check != nil {
		if msg := inst.Check(env.Boot()); msg != "" {
			return fmt.Errorf("invariant violation: %s", msg)
		}
	}
	return nil
}
