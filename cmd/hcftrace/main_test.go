package main

import "testing"

func TestRunScenarios(t *testing.T) {
	for _, sc := range []string{"hashtable", "avl", "pqueue", "stack", "deque", "sortedlist"} {
		if err := run([]string{"-scenario", sc, "-threads", "3", "-horizon", "5000"}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestRunTimelineAndErrors(t *testing.T) {
	if err := run([]string{"-scenario", "pqueue", "-threads", "2", "-horizon", "4000",
		"-timeline", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}
