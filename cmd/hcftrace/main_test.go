package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	for _, sc := range []string{"hashtable", "avl", "pqueue", "stack", "deque", "sortedlist"} {
		if err := run([]string{"-scenario", sc, "-threads", "3", "-horizon", "5000"}); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestRunAllEngines(t *testing.T) {
	for _, eng := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		if err := run([]string{"-scenario", "hashtable", "-engine", eng,
			"-threads", "3", "-horizon", "4000"}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
}

func TestRunTimelineAndErrors(t *testing.T) {
	if err := run([]string{"-scenario", "pqueue", "-threads", "2", "-horizon", "4000",
		"-timeline", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-engine", "nope"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"-format", "nope"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "summary.json")
	if err := run([]string{"-scenario", "hashtable", "-threads", "3",
		"-horizon", "5000", "-json", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Engine  string `json:"engine"`
		Ops     uint64 `json:"ops"`
		Summary struct {
			Starts uint64 `json:"starts"`
		} `json:"summary"`
		Spans struct {
			Spans uint64 `json:"spans"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Engine != "HCF" || doc.Ops == 0 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Summary.Starts != doc.Ops || doc.Spans.Spans != doc.Ops {
		t.Errorf("starts %d / spans %d / ops %d disagree",
			doc.Summary.Starts, doc.Spans.Spans, doc.Ops)
	}
}

func TestChromeOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-scenario", "hashtable", "-threads", "4",
		"-horizon", "8000", "-format", "chrome", "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if cat, ok := ev["cat"].(string); ok {
			kinds[cat] = true
		}
	}
	for _, want := range []string{"op", "phase"} {
		if !kinds[want] {
			t.Errorf("chrome trace has no %q slices", want)
		}
	}
}

func TestFlightRecorderLimit(t *testing.T) {
	if err := run([]string{"-scenario", "hashtable", "-threads", "3",
		"-horizon", "6000", "-limit", "32"}); err != nil {
		t.Fatal(err)
	}
}
