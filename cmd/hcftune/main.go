// Command hcftune runs the evidence-driven policy autotuner on the
// drifting priority-queue workload and renders the resulting comparison —
// every hand-picked static policy, the tuned run, and the clairvoyant
// per-segment oracle — together with the tuner's decision journal, where
// every policy change carries the evidence that triggered it.
//
// Usage:
//
//	hcftune                            # text comparison + decision journal
//	hcftune -threads 36 -horizon 900000 -seed 1
//	hcftune -format json               # one JSON object: report + journal
//	hcftune -format jsonl              # sweep rows (bench/AUTOTUNE_sweep.jsonl)
//	hcftune -format prom               # journal as Prometheus exposition
//	hcftune -journal-out tuner.json    # also write the journal as JSON
//	hcftune -sweep-out sweep.jsonl     # also write the sweep rows
//	hcftune -gate 0.9                  # fail if tuned < 0.9x the paper baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hcf/internal/adaptive"
	"hcf/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hcftune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hcftune", flag.ContinueOnError)
	var (
		threads    = fs.Int("threads", 36, "worker threads")
		horizon    = fs.Int64("horizon", 900_000, "virtual cycles (drift points at 1/3 and 2/3)")
		seed       = fs.Uint64("seed", 1, "workload seed")
		format     = fs.String("format", "text", "text | json | jsonl | prom")
		journalOut = fs.String("journal-out", "", "write the decision journal (JSON) to this file")
		sweepOut   = fs.String("sweep-out", "", "write the sweep rows (JSON Lines) to this file")
		gate       = fs.Float64("gate", 0, "fail unless tuned throughput >= gate x the HCF-paper baseline (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := harness.RunAutotune(*threads, harness.Config{Horizon: *horizon, Seed: *seed})
	if err != nil {
		return err
	}

	switch *format {
	case "text":
		fmt.Print(rep.Text())
		fmt.Printf("\ndecision journal (%d entries):\n%s", rep.Journal.Len(), rep.Journal.Text())
	case "json":
		out, err := json.MarshalIndent(struct {
			*harness.AutotuneReport
			Journal []adaptive.Decision `json:"journal"`
		}{rep, rep.Journal.Decisions()}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	case "jsonl":
		out, err := rep.JSONL()
		if err != nil {
			return err
		}
		os.Stdout.Write(out)
	case "prom":
		fmt.Print(rep.Journal.Prometheus(rep.Scenario, "HCF-tuned"))
	default:
		return fmt.Errorf("unknown format %q (want text, json, jsonl or prom)", *format)
	}

	if *journalOut != "" {
		out, err := rep.Journal.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*journalOut, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *sweepOut != "" {
		out, err := rep.JSONL()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*sweepOut, out, 0o644); err != nil {
			return err
		}
	}

	for _, v := range rep.Variants {
		if v.InvariantViolation != "" {
			return fmt.Errorf("%s: invariant violation: %s", v.Name, v.InvariantViolation)
		}
	}
	if *gate > 0 {
		tuned, base := rep.Tuned(), rep.Variant("HCF-paper")
		if tuned == nil || base == nil {
			return fmt.Errorf("gate: missing tuned or baseline variant")
		}
		ratio := tuned.Throughput / base.Throughput
		fmt.Fprintf(os.Stderr, "gate: tuned %.1f vs paper baseline %.1f (%.2fx, need >= %.2fx)\n",
			tuned.Throughput, base.Throughput, ratio, *gate)
		if ratio < *gate {
			return fmt.Errorf("autotuned throughput %.1f fell below %.2fx the paper baseline %.1f",
				tuned.Throughput, *gate, base.Throughput)
		}
	}
	return nil
}
