package hcf_test

import (
	"fmt"

	"hcf"
)

// counterOp is a minimal operation: sequential code over simulated memory.
type counterOp struct{ addr hcf.Addr }

func (o counterOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o counterOp) Class() int { return 0 }

// Example shows the minimal HCF workflow: write sequential code, wrap it
// in an Op, pick policies, execute concurrently.
func Example() {
	env := hcf.NewDetEnv(8)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
	}}})
	if err != nil {
		panic(err)
	}
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 100; i++ {
			fw.Execute(th, counterOp{addr: counter}) // exactly once, linearizable
		}
	})
	fmt.Println(env.Boot().Load(counter))
	// Output: 800
}

// ExampleNew_combining configures a combining RunMulti: eight hundred
// contended increments execute, many of them batched by combiners.
func ExampleNew_combining() {
	env := hcf.NewDetEnv(12)
	combine := func(ctx hcf.Ctx, ops []hcf.Op, res []uint64, done []bool) {
		addr := ops[0].(counterOp).addr
		v := ctx.Load(addr)
		for i := range ops {
			if !done[i] {
				res[i] = v
				v++
				done[i] = true
			}
		}
		ctx.Store(addr, v)
	}
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   1,
		TryVisibleTrials:   1,
		TryCombiningTrials: 5,
		RunMulti:           combine,
	}}})
	if err != nil {
		panic(err)
	}
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 50; i++ {
			fw.Execute(th, counterOp{addr: counter})
		}
	})
	m := fw.Metrics()
	fmt.Println(env.Boot().Load(counter), m.CombiningDegree() > 1)
	// Output: 600 true
}

// ExampleNewTLE runs the same operation under the TLE baseline.
func ExampleNewTLE() {
	env := hcf.NewDetEnv(4)
	tle := hcf.NewTLE(env, hcf.BaselineOptions{})
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 25; i++ {
			tle.Execute(th, counterOp{addr: counter})
		}
	})
	fmt.Println(env.Boot().Load(counter))
	// Output: 100
}

// ExampleFramework_SetTrials retunes speculation budgets on the fly — the
// paper's dynamic reconfiguration, safe because budgets never affect
// correctness.
func ExampleFramework_SetTrials() {
	env := hcf.NewDetEnv(2)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{TryPrivateTrials: 5}}})
	if err != nil {
		panic(err)
	}
	fw.SetTrials(0, 0, 0, 3) // stop speculating, go straight to combining
	p, v, c := fw.Trials(0)
	fmt.Println(p, v, c)
	// Output: 0 0 3
}
