// Adaptive example: the paper's §2.4 future-work mechanism in action.
//
// A cache server starts read-dominated, then a bulk-load kicks in and the
// workload turns write-heavy. The HCF configuration that was right for the
// read phase (lots of private speculation for inserts, no combining) turns
// wasteful. An AdaptiveController watches each class's phase-completion
// profile and re-tunes the speculation budgets every epoch — shrinking
// failing speculation toward a floor and growing the combining budget.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand/v2"

	"hcf"
	"hcf/internal/seq/hashtable"
)

const (
	threads  = 18
	keyRange = 512
	horizon  = 300_000
)

func run(useAdaptive bool) (phase2Ops uint64, budgets string) {
	env := hcf.NewDetEnv(threads)
	boot := env.Boot()
	tbl := hashtable.New(boot, keyRange)
	for k := uint64(0); k < keyRange; k += 2 {
		tbl.Insert(boot, k, k)
	}
	// Read-phase tuning: inserts speculate hard and never combine.
	pols := hashtable.Policies()
	pols[hashtable.ClassInsert].TryPrivateTrials = 8
	pols[hashtable.ClassInsert].TryVisibleTrials = 2
	pols[hashtable.ClassInsert].TryCombiningTrials = 0
	fw, err := hcf.New(env, hcf.Config{Policies: pols})
	if err != nil {
		panic(err)
	}
	var ctl *hcf.AdaptiveController
	if useAdaptive {
		ctl = hcf.NewAdaptive(fw, hcf.AdaptiveConfig{
			MinOpsPerEpoch: 48,
			LowPrivate:     0.85,
			HighPrivate:    0.97,
		})
	}
	var phase2 [threads]uint64
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 404))
		n := 0
		for th.Now() < horizon {
			key := rng.Uint64N(keyRange)
			bulkLoad := th.Now() >= horizon/2
			if !bulkLoad && rng.IntN(20) != 0 {
				fw.Execute(th, hashtable.FindOp{T: tbl, Key: key})
			} else if rng.IntN(2) == 0 {
				fw.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key})
			} else {
				fw.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
			}
			if bulkLoad {
				phase2[th.ID()]++
			}
			n++
			if ctl != nil && th.ID() == 0 && n%16 == 0 {
				ctl.Step()
			}
		}
	})
	var total uint64
	for _, c := range phase2 {
		total += c
	}
	p, v, c := fw.Trials(hashtable.ClassInsert)
	return total, fmt.Sprintf("insert budgets end at private=%d visible=%d combining=%d", p, v, c)
}

func main() {
	staticOps, staticB := run(false)
	adaptiveOps, adaptiveB := run(true)
	fmt.Printf("bulk-load phase ops  static:   %6d   (%s)\n", staticOps, staticB)
	fmt.Printf("bulk-load phase ops  adaptive: %6d   (%s)\n", adaptiveOps, adaptiveB)
	delta := 100 * (float64(adaptiveOps) - float64(staticOps)) / float64(staticOps)
	fmt.Printf("adaptation changed bulk-load throughput by %+.1f%%\n", delta)
	fmt.Println("\nThe controller noticed Insert speculation failing during the bulk",
		"\nload and re-tuned toward combining — no reconfiguration, no restart,",
		"\nand (by the paper's §2.1 argument) no correctness risk.")
}
