// Deque example: the paper's §2.4 two-ends scenario.
//
// A job pipeline where feeders push work on the left end and drainers pop
// from the right (with occasional steals from the same side). Operations on
// the same end always conflict; operations on opposite ends almost never
// do. The HCF configuration uses one publication array per end — and the
// specialized framework variant (the combiner holds the selection lock for
// its whole pass), which §2.4 introduces for exactly this shape.
//
// Run with: go run ./examples/deque
package main

import (
	"fmt"
	"math/rand/v2"

	"hcf"
	"hcf/internal/seq/deque"
)

func main() {
	const threads = 16
	const perThread = 400

	for _, specialized := range []bool{false, true} {
		env := hcf.NewDetEnv(threads)
		boot := env.Boot()
		d := deque.New(boot)
		for i := 0; i < 512; i++ {
			d.PushRight(boot, uint64(i))
		}
		fw, err := hcf.New(env, hcf.Config{
			Policies:          deque.Policies(),
			HoldSelectionLock: specialized,
		})
		if err != nil {
			panic(err)
		}
		var pushed, popped [threads]uint64
		env.Run(func(th *hcf.Thread) {
			rng := rand.New(rand.NewPCG(uint64(th.ID()), 11))
			feeder := th.ID()%2 == 0
			for i := 0; i < perThread; i++ {
				switch {
				case feeder && rng.IntN(10) < 8: // feeders mostly push left
					fw.Execute(th, deque.PushLeftOp{D: d, Val: rng.Uint64() >> 1})
					pushed[th.ID()]++
				case feeder:
					if _, ok := hcf.Unpack(fw.Execute(th, deque.PopLeftOp{D: d})); ok {
						popped[th.ID()]++
					}
				case rng.IntN(10) < 8: // drainers mostly pop right
					if _, ok := hcf.Unpack(fw.Execute(th, deque.PopRightOp{D: d})); ok {
						popped[th.ID()]++
					}
				default:
					fw.Execute(th, deque.PushRightOp{D: d, Val: rng.Uint64() >> 1})
					pushed[th.ID()]++
				}
			}
		})
		if msg := d.CheckInvariants(boot); msg != "" {
			panic("deque corrupted: " + msg)
		}
		var p, q uint64
		for t := 0; t < threads; t++ {
			p += pushed[t]
			q += popped[t]
		}
		remaining := uint64(d.Len(boot))
		if 512+p-q != remaining {
			panic(fmt.Sprintf("conservation violated: 512+%d-%d != %d", p, q, remaining))
		}
		m := fw.Metrics()
		variant := "generic    "
		if specialized {
			variant = "specialized"
		}
		var maxNow int64
		for t := 0; t < threads; t++ {
			if now := env.Now(t); now > maxNow {
				maxNow = now
			}
		}
		fmt.Printf("%s variant: %5d ops in %8d cycles (%8.1f ops/Mcycle), degree %.1f, lockAcqs %d\n",
			variant, m.Ops, maxNow, float64(m.Ops)*1e6/float64(maxNow),
			m.CombiningDegree(), m.LockAcquisitions)
	}
	fmt.Println("\nTwo per-end combiners run concurrently with each other and with",
		"\nspeculating threads; the specialized variant trades TryVisible",
		"\nparallelism for simpler, contention-free combining.")
}
