// Hash-table example: the paper's §3.3 scenario as a session store.
//
// A web-tier session cache: lookups and expirations (Find/Remove) touch
// random table positions and almost never conflict, while session creation
// (Insert) always prepends to the table's iteration list — a built-in
// conflict hot spot. HCF gives each behaviour its own policy: Find/Remove
// run TLE-style, Inserts get announced and combined through Insert-n, which
// chains all new sessions into the list with a single head update.
//
// Run with: go run ./examples/hashtable
package main

import (
	"fmt"
	"math/rand/v2"

	"hcf"
	"hcf/internal/seq/hashtable"
)

const (
	buckets = 4096
	threads = 18
	horizon = 120_000
)

func runEngine(name string) (ops uint64, thr float64, m hcf.Metrics) {
	env := hcf.NewDetEnv(threads)
	boot := env.Boot()
	tbl := hashtable.New(boot, buckets)
	pre := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < buckets/2; i++ {
		k := pre.Uint64N(buckets)
		tbl.Insert(boot, k, k)
	}
	var eng hcf.Engine
	switch name {
	case "Lock":
		eng = hcf.NewLockEngine(env, hcf.BaselineOptions{})
	case "TLE":
		eng = hcf.NewTLE(env, hcf.BaselineOptions{})
	case "HCF":
		fw, err := hcf.New(env, hcf.Config{Policies: hashtable.Policies()})
		if err != nil {
			panic(err)
		}
		eng = fw
	}
	env.ResetStats()
	var counts [threads]uint64
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 3))
		for th.Now() < horizon {
			key := rng.Uint64N(buckets)
			switch rng.IntN(10) {
			case 0, 1, 2: // 30% session creation
				eng.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key})
			case 3, 4, 5: // 30% expiration
				eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
			default: // 40% lookup
				eng.Execute(th, hashtable.FindOp{T: tbl, Key: key})
			}
			counts[th.ID()]++
		}
	})
	if msg := tbl.CheckInvariants(boot); msg != "" {
		panic("table corrupted: " + msg)
	}
	var total uint64
	var maxNow int64
	for t := 0; t < threads; t++ {
		total += counts[t]
		if now := env.Now(t); now > maxNow {
			maxNow = now
		}
	}
	return total, float64(total) * 1e6 / float64(maxNow), eng.Metrics()
}

func main() {
	fmt.Printf("session store, %d threads, 40%% Find / 30%% Insert / 30%% Remove\n\n", threads)
	fmt.Printf("%-5s %10s %12s %10s %12s\n", "eng", "ops", "ops/Mcycle", "lockAcqs", "comb.degree")
	for _, name := range []string{"Lock", "TLE", "HCF"} {
		ops, thr, m := runEngine(name)
		fmt.Printf("%-5s %10d %12.1f %10d %12.1f\n",
			name, ops, thr, m.LockAcquisitions, m.CombiningDegree())
	}
	fmt.Println("\nHCF keeps lookups/expirations on the speculative fast path while",
		"\nsession creations combine their list splices instead of taking the lock.")
}
