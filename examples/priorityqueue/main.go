// Priority-queue example: the paper's §1 motivating scenario.
//
// A task scheduler where producers insert jobs with random priorities and
// workers repeatedly extract the most urgent job. Inserts on a skip list
// rarely conflict (they land at random positions) and run speculatively;
// RemoveMins always conflict (they all want the head), so their HCF policy
// skips speculation and goes straight to combining — one combiner extracts
// a batch of minima in a single pass and distributes them.
//
// The example runs the same workload under TLE, FC and HCF at two thread
// counts: with few threads TLE's optimism is enough, but as contention
// grows TLE collapses into lock convoys while HCF keeps combining.
//
// Run with: go run ./examples/priorityqueue
package main

import (
	"fmt"
	"math/rand/v2"

	"hcf"
	"hcf/internal/seq/skiplist"
)

type outcome struct {
	name       string
	threads    int
	ops        uint64
	throughput float64
	degree     float64
	lockAcqs   uint64
}

func runOne(engineName string, threads int) outcome {
	const horizon = 150_000 // virtual cycles
	env := hcf.NewDetEnv(threads)
	boot := env.Boot()
	q := skiplist.New(boot)
	pre := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 4096; i++ {
		q.Insert(boot, pre.Uint64N(1<<20), skiplist.RandomLevel(pre))
	}
	var eng hcf.Engine
	switch engineName {
	case "TLE":
		eng = hcf.NewTLE(env, hcf.BaselineOptions{})
	case "FC":
		eng = hcf.NewFC(env, hcf.BaselineOptions{Combine: skiplist.CombineMixed})
	case "HCF":
		fw, err := hcf.New(env, hcf.Config{Policies: skiplist.Policies()})
		if err != nil {
			panic(err)
		}
		eng = fw
	}
	env.ResetStats()
	eng.ResetMetrics()
	ops := make([]uint64, threads)
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 99))
		for th.Now() < horizon {
			if rng.IntN(2) == 0 {
				eng.Execute(th, skiplist.InsertOp{
					Q:     q,
					Key:   rng.Uint64N(1 << 20),
					Level: skiplist.RandomLevel(rng),
				})
			} else {
				eng.Execute(th, skiplist.RemoveMinOp{Q: q})
			}
			ops[th.ID()]++
		}
	})
	if msg := q.CheckInvariants(boot); msg != "" {
		panic("queue corrupted: " + msg)
	}
	var total uint64
	var maxNow int64
	for t := 0; t < threads; t++ {
		total += ops[t]
		if now := env.Now(t); now > maxNow {
			maxNow = now
		}
	}
	m := eng.Metrics()
	return outcome{
		name:       engineName,
		threads:    threads,
		ops:        total,
		throughput: float64(total) * 1e6 / float64(maxNow),
		degree:     m.CombiningDegree(),
		lockAcqs:   m.LockAcquisitions,
	}
}

func main() {
	fmt.Println("task scheduler: 50% Insert / 50% RemoveMin on a prefilled skip list")
	fmt.Printf("\n%-8s %-6s %12s %14s %14s %10s\n",
		"threads", "engine", "ops", "ops/Mcycle", "comb.degree", "lockAcqs")
	for _, threads := range []int{8, 27} {
		for _, name := range []string{"TLE", "FC", "HCF"} {
			o := runOne(name, threads)
			fmt.Printf("%-8d %-6s %12d %14.1f %14.1f %10d\n",
				o.threads, o.name, o.ops, o.throughput, o.degree, o.lockAcqs)
		}
	}
	fmt.Println("\nHCF batches conflicting RemoveMins through one combiner while",
		"\nInserts keep running speculatively — as contention grows, TLE",
		"\ncollapses into lock convoys while HCF keeps its throughput.")
}
