// Quickstart: wrap your own sequential data structure with HCF.
//
// This example builds a tiny bank — an array of accounts in simulated
// memory — and exposes two operations written as ordinary sequential code:
// Deposit (hits one random account; rarely conflicts) and Sweep (moves
// every account's balance to account 0; conflicts with everything, but many
// Sweeps combine into one pass). It then runs a mixed workload under HCF
// and under plain locking and prints what happened, illustrating the
// framework's phase machinery without any data-structure package.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"

	"hcf"
)

const accounts = 64

// bank is a fixed array of account balances, one per cache line.
type bank struct {
	base hcf.Addr
}

func newBank(ctx hcf.Ctx) *bank {
	b := &bank{base: ctx.Alloc(accounts * hcf.WordsPerLine)}
	for i := 0; i < accounts; i++ {
		ctx.Store(b.addr(i), 0)
	}
	return b
}

func (b *bank) addr(i int) hcf.Addr { return b.base + hcf.Addr(i*hcf.WordsPerLine) }

// deposit adds amount to one account and returns its new balance.
func (b *bank) deposit(ctx hcf.Ctx, acct int, amount uint64) uint64 {
	v := ctx.Load(b.addr(acct)) + amount
	ctx.Store(b.addr(acct), v)
	return v
}

// sweep moves every balance into account 0 and returns the total.
func (b *bank) sweep(ctx hcf.Ctx) uint64 {
	total := ctx.Load(b.addr(0))
	for i := 1; i < accounts; i++ {
		v := ctx.Load(b.addr(i))
		if v != 0 {
			total += v
			ctx.Store(b.addr(i), 0)
		}
	}
	ctx.Store(b.addr(0), total)
	return total
}

// Operation classes: deposits speculate well; sweeps go to combining.
const (
	classDeposit = iota
	classSweep
)

type depositOp struct {
	b    *bank
	acct int
	amt  uint64
}

func (o depositOp) Apply(ctx hcf.Ctx) uint64 { return o.b.deposit(ctx, o.acct, o.amt) }
func (o depositOp) Class() int               { return classDeposit }

type sweepOp struct {
	b *bank
}

func (o sweepOp) Apply(ctx hcf.Ctx) uint64 { return o.b.sweep(ctx) }
func (o sweepOp) Class() int               { return classSweep }

// combineSweeps: n concurrent sweeps are one physical sweep — every sweep
// after the first sees the same total (classic combining + elimination).
func combineSweeps(ctx hcf.Ctx, ops []hcf.Op, res []uint64, done []bool) {
	var b *bank
	idx := []int{}
	for i, op := range ops {
		if done[i] {
			continue
		}
		if s, ok := op.(sweepOp); ok {
			b = s.b
			idx = append(idx, i)
			continue
		}
		res[i] = op.Apply(ctx)
		done[i] = true
	}
	if b == nil {
		return
	}
	total := b.sweep(ctx)
	for _, i := range idx {
		res[i] = total
		done[i] = true
	}
}

func main() {
	const threads = 12
	run := func(useHCF bool) (deposited uint64, metrics hcf.Metrics, name string) {
		env := hcf.NewDetEnv(threads)
		b := newBank(env.Boot())
		var eng hcf.Engine
		if useHCF {
			fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{
				classDeposit: {
					Name:             "deposit",
					PubArray:         0,
					TryPrivateTrials: 6, // almost always commits privately
					ShouldHelp:       hcf.HelpNone,
				},
				classSweep: {
					Name:               "sweep",
					PubArray:           1,
					TryPrivateTrials:   1, // sweeps conflict: announce early
					TryVisibleTrials:   1,
					TryCombiningTrials: 5,
					RunMulti:           combineSweeps,
				},
			}})
			if err != nil {
				panic(err)
			}
			eng = fw
		} else {
			eng = hcf.NewLockEngine(env, hcf.BaselineOptions{})
		}
		var total [threads]uint64
		env.Run(func(th *hcf.Thread) {
			rng := rand.New(rand.NewPCG(uint64(th.ID()), 2026))
			for i := 0; i < 300; i++ {
				if rng.IntN(10) == 0 { // 10% sweeps
					eng.Execute(th, sweepOp{b: b})
				} else {
					amt := rng.Uint64N(100)
					eng.Execute(th, depositOp{b: b, acct: rng.IntN(accounts), amt: amt})
					total[th.ID()] += amt
				}
			}
		})
		// Verify conservation: after a final sweep, account 0 holds
		// everything ever deposited.
		finalTotal := b.sweep(env.Boot())
		var want uint64
		for _, v := range total {
			want += v
		}
		if finalTotal != want {
			panic(fmt.Sprintf("money not conserved: %d vs %d", finalTotal, want))
		}
		return want, eng.Metrics(), eng.Name()
	}

	for _, useHCF := range []bool{false, true} {
		total, m, name := run(useHCF)
		fmt.Printf("%-5s deposited=%-8d ops=%-5d lockAcqs=%-5d combined=%d ops in %d sessions (degree %.1f)\n",
			name, total, m.Ops, m.LockAcquisitions, m.CombinedOps, m.CombinerSessions, m.CombiningDegree())
		if useHCF {
			fmt.Printf("      phase completions: private=%d visible=%d combining=%d underlock=%d\n",
				m.PhaseCompleted[hcf.PhaseTryPrivate], m.PhaseCompleted[hcf.PhaseTryVisible],
				m.PhaseCompleted[hcf.PhaseTryCombining], m.PhaseCompleted[hcf.PhaseCombineUnderLock])
		}
	}
	fmt.Println("ok: balances conserved under both engines")
}
