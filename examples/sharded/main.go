// Sharded hash-table example: scaling past one combiner with hcf.Sharded.
//
// One hcf.Framework has one data-structure lock and, per publication array,
// one combiner at a time — an inherent ceiling once every speculation path
// is saturated. hcf.Sharded lifts it by partitioning the structure: N
// frameworks over the same environment, a Router mapping each operation to
// the shard that owns its key, and independent combiners running in
// parallel on disjoint shards. Operations that span shards (here: a
// whole-store scan) declare CrossShard and run under every shard's lock,
// acquired in canonical order.
//
// The demo partitions a session store by key mod N and compares a single
// framework against 2, 4 and 8 shards on the identical workload, then runs
// one cross-shard scan to show the pessimistic path returning an exact
// whole-structure result.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"hcf"
	"hcf/internal/seq/hashtable"
)

const (
	buckets = 4096
	threads = 24
	horizon = 120_000
)

// buildStore creates the partitioned table and prefills half the key space
// (value == key, so scan sums are predictable).
func buildStore(env hcf.Env, shards int) []*hashtable.Table {
	boot := env.Boot()
	tables := make([]*hashtable.Table, shards)
	for i := range tables {
		tables[i] = hashtable.New(boot, buckets/shards)
	}
	pre := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < buckets/2; i++ {
		k := pre.Uint64N(buckets)
		tables[k%uint64(shards)].Insert(boot, k, k)
	}
	return tables
}

// router confines single-key operations to key mod shards and sends
// everything else over the cross-shard path.
func router(shards int) hcf.Router {
	return func(op hcf.Op) int {
		switch o := op.(type) {
		case hashtable.FindOp:
			return int(o.Key % uint64(shards))
		case hashtable.InsertOp:
			return int(o.Key % uint64(shards))
		case hashtable.RemoveOp:
			return int(o.Key % uint64(shards))
		default:
			return hcf.CrossShard
		}
	}
}

func runShards(shards int) (ops uint64, thr float64) {
	env := hcf.NewDetEnv(threads)
	tables := buildStore(env, shards)
	var eng hcf.Engine
	if shards == 1 {
		fw, err := hcf.New(env, hcf.Config{Policies: hashtable.Policies()})
		if err != nil {
			panic(err)
		}
		eng = fw
	} else {
		se, err := hcf.NewSharded(env, hcf.ShardedConfig{
			Shards:   shards,
			Router:   router(shards),
			Policies: hashtable.Policies(),
		})
		if err != nil {
			panic(err)
		}
		eng = se
	}
	env.ResetStats()
	var counts [threads]uint64
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 3))
		for th.Now() < horizon {
			key := rng.Uint64N(buckets)
			tbl := tables[key%uint64(shards)]
			switch rng.IntN(10) {
			case 0, 1, 2: // 30% session creation
				eng.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key})
			case 3, 4, 5: // 30% expiration
				eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
			default: // 40% lookup
				eng.Execute(th, hashtable.FindOp{T: tbl, Key: key})
			}
			counts[th.ID()]++
		}
	})
	boot := env.Boot()
	for i, t := range tables {
		if msg := t.CheckInvariants(boot); msg != "" {
			panic(fmt.Sprintf("shard %d corrupted: %s", i, msg))
		}
	}
	var total uint64
	var maxNow int64
	for t := 0; t < threads; t++ {
		total += counts[t]
		if now := env.Now(t); now > maxNow {
			maxNow = now
		}
	}
	return total, float64(total) * 1e6 / float64(maxNow)
}

// crossShardScan demonstrates the all-locks path: a whole-store sum routed
// CrossShard must equal a direct sequential sum over every shard.
func crossShardScan() error {
	const shards = 4
	env := hcf.NewDetEnv(8)
	tables := buildStore(env, shards)
	se, err := hcf.NewSharded(env, hcf.ShardedConfig{
		Shards:   shards,
		Router:   router(shards),
		Policies: hashtable.Policies(),
	})
	if err != nil {
		return err
	}
	var got uint64
	env.Run(func(th *hcf.Thread) {
		if th.ID() == 0 {
			got = se.Execute(th, hashtable.SumAllOp{Tables: tables})
		}
	})
	var want uint64
	boot := env.Boot()
	for _, t := range tables {
		t.Iterate(boot, func(k, v uint64) bool {
			want += v
			return true
		})
	}
	sum, ok := hcf.Unpack(got)
	if !ok || sum != want&((1<<63)-1) {
		return fmt.Errorf("cross-shard scan returned %d, direct sum is %d", sum, want)
	}
	fmt.Printf("\ncross-shard scan (all %d shard locks, canonical order): sum=%d ok\n", shards, sum)
	return nil
}

func main() {
	fmt.Printf("sharded session store, %d threads, 40%% Find / 30%% Insert / 30%% Remove\n\n", threads)
	fmt.Printf("%-8s %10s %12s\n", "shards", "ops", "ops/Mcycle")
	base := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		ops, thr := runShards(shards)
		label := fmt.Sprintf("%d", shards)
		if shards == 1 {
			label += " (HCF)"
			base = thr
		}
		fmt.Printf("%-8s %10d %12.1f\n", label, ops, thr)
		if shards == 8 && thr < base {
			fmt.Println("!! expected 8 shards to beat the single framework")
			os.Exit(1)
		}
	}
	if err := crossShardScan(); err != nil {
		fmt.Println("!!", err)
		os.Exit(1)
	}
	fmt.Println("\nEach shard runs its own combiners; disjoint shards combine in",
		"\nparallel, which is what lifts the single-framework ceiling.")
}
