// Sharded hash-table example: scaling past one combiner with hcf.Sharded,
// and healing a hot shard online with hcf.NewElastic.
//
// One hcf.Framework has one data-structure lock and, per publication array,
// one combiner at a time — an inherent ceiling once every speculation path
// is saturated. hcf.Sharded lifts it by partitioning the structure: N
// frameworks over the same environment, keyed operations routed through a
// shared consistent-hash ring (internal/route), and independent combiners
// running in parallel on disjoint shards. Operations that span shards
// (here: a whole-store scan) take the pessimistic path and run under every
// shard's lock, acquired in canonical order.
//
// The demo partitions a session store over the ring and compares a single
// framework against 2, 4 and 8 shards on the identical workload, runs one
// cross-shard scan to show the all-locks path returning an exact
// whole-structure result, and finally builds an *elastic* store (2 active
// of 4 provisioned shards) whose rebalancer detects a skewed key
// population and splits the hot shard online — traffic keeps flowing
// through the split, re-validating ownership at each operation's
// linearization point.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"hcf"
	"hcf/internal/seq/hashtable"
)

const (
	buckets = 4096
	threads = 24
	horizon = 120_000
)

// buildStore creates the partitioned table and prefills half the key space
// (value == key, so scan sums are predictable). Placement follows the same
// ring the engine routes with, so every key starts on the shard that owns
// it.
func buildStore(env hcf.Env, ring *hcf.Ring, shards int) []*hashtable.Table {
	boot := env.Boot()
	tables := make([]*hashtable.Table, shards)
	for i := range tables {
		tables[i] = hashtable.New(boot, buckets/shards)
	}
	pre := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < buckets/2; i++ {
		k := pre.Uint64N(buckets)
		tables[ring.Owner(k)].Insert(boot, k, k)
	}
	return tables
}

func runShards(shards int) (ops uint64, thr float64) {
	env := hcf.NewDetEnv(threads)
	ring, err := hcf.NewRing(shards, 0, shards)
	if err != nil {
		panic(err)
	}
	tables := buildStore(env, ring, shards)
	var eng hcf.Engine
	if shards == 1 {
		fw, err := hcf.New(env, hcf.Config{Policies: hashtable.Policies()})
		if err != nil {
			panic(err)
		}
		eng = fw
	} else {
		// Key + Ring routing: hashtable.RouteKey extracts the key from
		// single-key operations; everything else (SumAllOp) reports
		// ok=false and takes the cross-shard path.
		se, err := hcf.NewSharded(env, hcf.ShardedConfig{
			Shards:   shards,
			Key:      hashtable.RouteKey,
			Ring:     ring,
			Policies: hashtable.Policies(),
		})
		if err != nil {
			panic(err)
		}
		eng = se
	}
	env.ResetStats()
	var counts [threads]uint64
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 3))
		for th.Now() < horizon {
			key := rng.Uint64N(buckets)
			tbl := tables[ring.Owner(key)]
			switch rng.IntN(10) {
			case 0, 1, 2: // 30% session creation
				eng.Execute(th, hashtable.InsertOp{T: tbl, Key: key, Val: key})
			case 3, 4, 5: // 30% expiration
				eng.Execute(th, hashtable.RemoveOp{T: tbl, Key: key})
			default: // 40% lookup
				eng.Execute(th, hashtable.FindOp{T: tbl, Key: key})
			}
			counts[th.ID()]++
		}
	})
	boot := env.Boot()
	for i, t := range tables {
		if msg := t.CheckInvariants(boot); msg != "" {
			panic(fmt.Sprintf("shard %d corrupted: %s", i, msg))
		}
	}
	var total uint64
	var maxNow int64
	for t := 0; t < threads; t++ {
		total += counts[t]
		if now := env.Now(t); now > maxNow {
			maxNow = now
		}
	}
	return total, float64(total) * 1e6 / float64(maxNow)
}

// crossShardScan demonstrates the all-locks path: a whole-store sum routed
// cross-shard must equal a direct sequential sum over every shard.
func crossShardScan() error {
	const shards = 4
	env := hcf.NewDetEnv(8)
	ring, err := hcf.NewRing(shards, 0, shards)
	if err != nil {
		return err
	}
	tables := buildStore(env, ring, shards)
	se, err := hcf.NewSharded(env, hcf.ShardedConfig{
		Shards:   shards,
		Key:      hashtable.RouteKey,
		Ring:     ring,
		Policies: hashtable.Policies(),
	})
	if err != nil {
		return err
	}
	var got uint64
	env.Run(func(th *hcf.Thread) {
		if th.ID() == 0 {
			got = se.Execute(th, hashtable.SumAllOp{Tables: tables})
		}
	})
	var want uint64
	boot := env.Boot()
	for _, t := range tables {
		t.Iterate(boot, func(k, v uint64) bool {
			want += v
			return true
		})
	}
	sum, ok := hcf.Unpack(got)
	if !ok || sum != want&((1<<63)-1) {
		return fmt.Errorf("cross-shard scan returned %d, direct sum is %d", sum, want)
	}
	fmt.Printf("\ncross-shard scan (all %d shard locks, canonical order): sum=%d ok\n", shards, sum)
	return nil
}

// elasticDemo builds a live-topology store — 2 active shards of 4
// provisioned — and drives a workload where 90% of operations hit keys
// owned by shard 0. Thread 0 steps the rebalancer at a fixed cadence;
// when the hot shard's share of the evidence window crosses the split
// threshold, half its ring slots (and the keys they own) move to a spare
// shard under all locks, and subsequent operations re-route.
func elasticDemo() error {
	const (
		maxShards     = 4
		initialShards = 2
		elasticH      = 400_000
		window        = 50_000
	)
	env := hcf.NewDetEnv(threads)
	boot := env.Boot()
	tables := make([]*hashtable.Table, maxShards)
	for i := range tables {
		tables[i] = hashtable.New(boot, buckets/maxShards)
	}
	e, err := hcf.NewElastic(env, hcf.ElasticConfig{
		MaxShards: maxShards,
		Initial:   initialShards,
		Key:       hashtable.RouteKey,
		Bind: func(op hcf.Op, si int) hcf.Op {
			return hashtable.BindTable(op, tables[si])
		},
		Migrate: func(ctx hcf.Ctx, from, to int, old, next *hcf.Ring) int {
			return hashtable.MigrateTables(ctx, tables, from, next)
		},
		Policies: hashtable.Policies(),
	})
	if err != nil {
		return err
	}
	ring := e.Table().Load()
	pre := rand.New(rand.NewPCG(1, 2))
	var hot []uint64 // keys shard 0 owns under the initial topology
	for i := 0; i < buckets/2; i++ {
		k := pre.Uint64N(buckets)
		tables[ring.Owner(k)].Insert(boot, k, k)
		if ring.Owner(k) == 0 {
			hot = append(hot, k)
		}
	}
	// SplitRatio 1.5: with only 2 active shards the fair share is 0.5,
	// and the default ratio of 2 would demand an impossible >100% share.
	rb := hcf.NewRebalancer(e, hcf.RebalanceConfig{SplitRatio: 1.5, MinOps: 64})
	env.Run(func(th *hcf.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 7))
		next := int64(window)
		for th.Now() < elasticH {
			var key uint64
			if rng.Uint64N(100) < 90 {
				key = hot[rng.IntN(len(hot))] // hot: shard 0's initial keys
			} else {
				key = rng.Uint64N(buckets)
			}
			// Operations are submitted UNBOUND (no table pointer): the
			// engine routes through the current ring and binds the owning
			// shard's table at the operation's linearization point, so a
			// concurrent split can never strand an op on a stale table.
			switch rng.IntN(10) {
			case 0, 1, 2:
				e.Execute(th, hashtable.InsertOp{Key: key, Val: key})
			case 3, 4, 5:
				e.Execute(th, hashtable.RemoveOp{Key: key})
			default:
				e.Execute(th, hashtable.FindOp{Key: key})
			}
			if th.ID() == 0 && th.Now() >= next {
				rb.Step(th)
				next = (th.Now()/window + 1) * window
			}
		}
	})
	for i, t := range tables {
		if msg := t.CheckInvariants(boot); msg != "" {
			return fmt.Errorf("elastic shard %d corrupted after split: %s", i, msg)
		}
	}
	topo := e.Topology()
	if topo.Splits == 0 {
		return fmt.Errorf("rebalancer never split the hot shard")
	}
	fmt.Printf("\nelastic store, %d of %d shards active, 90%% of traffic on shard 0's keys:\n",
		initialShards, maxShards)
	fmt.Print(rb.Text())
	fmt.Printf("topology: epoch=%d active=%d splits=%d moved=%d reroutes=%d shard_ops=%v\n",
		topo.Ring.Epoch, topo.Ring.Active, topo.Splits, topo.MovedKeys, topo.Reroutes, topo.ShardOps)
	return nil
}

func main() {
	fmt.Printf("sharded session store, %d threads, 40%% Find / 30%% Insert / 30%% Remove\n\n", threads)
	fmt.Printf("%-8s %10s %12s\n", "shards", "ops", "ops/Mcycle")
	base := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		ops, thr := runShards(shards)
		label := fmt.Sprintf("%d", shards)
		if shards == 1 {
			label += " (HCF)"
			base = thr
		}
		fmt.Printf("%-8s %10d %12.1f\n", label, ops, thr)
		if shards == 8 && thr < base {
			fmt.Println("!! expected 8 shards to beat the single framework")
			os.Exit(1)
		}
	}
	if err := crossShardScan(); err != nil {
		fmt.Println("!!", err)
		os.Exit(1)
	}
	if err := elasticDemo(); err != nil {
		fmt.Println("!!", err)
		os.Exit(1)
	}
	fmt.Println("\nEach shard runs its own combiners; disjoint shards combine in",
		"\nparallel, which is what lifts the single-framework ceiling — and the",
		"\nelastic topology moves that partitioning decision online.")
}
