package hcf_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"hcf"
	"hcf/internal/memsim"
	"hcf/tracing"
)

func TestPublicAPICustomCostEnv(t *testing.T) {
	cost := memsim.TwoSocketCostParams()
	env := hcf.NewDetEnvWithCost(72, cost)
	if env.NumThreads() != 72 {
		t.Fatalf("threads = %d", env.NumThreads())
	}
	a := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		if th.ID() == 0 {
			th.Store(a, 1)
		}
	})
	if got := env.Boot().Load(a); got != 1 {
		t.Fatalf("value = %d", got)
	}
}

func TestPublicAPIAdaptiveController(t *testing.T) {
	env := hcf.NewDetEnv(8)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   4,
		TryVisibleTrials:   2,
		TryCombiningTrials: 2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ctl := hcf.NewAdaptive(fw, hcf.AdaptiveConfig{MinOpsPerEpoch: 16, LowPrivate: 0.95, HighPrivate: 0.99})
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 60; i++ {
			fw.Execute(th, registerOp{addr: counter})
			if th.ID() == 0 && i%10 == 9 {
				ctl.Step()
			}
		}
	})
	if ctl.Steps == 0 {
		t.Fatal("controller never stepped")
	}
	if got := env.Boot().Load(counter); got != 8*60 {
		t.Fatalf("counter = %d", got)
	}
	p, v, c := fw.Trials(0)
	if p < 0 || v < 0 || c < 0 {
		t.Fatal("invalid budgets")
	}
}

func TestPublicAPITunerJournal(t *testing.T) {
	env := hcf.NewDetEnv(8)
	fw, err := hcf.New(env, hcf.Config{Policies: []hcf.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   2,
		TryCombiningTrials: 2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	col := &tracing.Collector{Limit: 1}
	fw.SetTracer(col)
	tun := hcf.NewTuner(fw, nil, col, hcf.TunerConfig{
		MinOpsPerEpoch: 16, Hysteresis: 1, Cooldown: 1,
	})
	addrs := make([]hcf.Addr, 8)
	for i := range addrs {
		addrs[i] = env.Alloc(8)
	}
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 300; i++ {
			fw.Execute(th, registerOp{addr: addrs[th.ID()]})
			if th.ID() == 0 && i%10 == 9 {
				tun.Step(th.Now())
			}
		}
	})
	if tun.Journal().Len() == 0 {
		t.Fatal("tuner journaled no decisions on conflict-free work")
	}
	var ds []hcf.TunerDecision = tun.Journal().Decisions()
	if ds[0].Rule != "grow-private" {
		t.Fatalf("first decision = %s, want grow-private", ds[0].Rule)
	}
	if p, _, _ := fw.Trials(0); p <= 2 {
		t.Fatalf("private trials = %d, never grew", p)
	}
}

func TestPublicAPIHelpersAndPhases(t *testing.T) {
	env := hcf.NewDetEnv(1)
	boot := env.Boot()
	ops := []hcf.Op{registerOp{addr: env.Alloc(1)}}
	res := make([]uint64, 1)
	done := make([]bool, 1)
	hcf.ApplyEach(boot, ops, res, done)
	if !done[0] {
		t.Fatal("ApplyEach skipped the op")
	}
	if !hcf.HelpAll(boot, ops[0], ops[0]) || hcf.HelpNone(boot, ops[0], ops[0]) {
		t.Fatal("help helpers broken")
	}
	if hcf.PhaseTryPrivate.String() != "TryPrivate" ||
		hcf.PhaseCombineUnderLock.String() != "CombineUnderLock" {
		t.Fatal("phase names broken")
	}
	if hcf.NilAddr != 0 || hcf.WordsPerLine != 8 {
		t.Fatal("constants broken")
	}
}

func TestPublicAPISpecializedVariantAndWitness(t *testing.T) {
	env := hcf.NewDetEnv(6)
	fw, err := hcf.New(env, hcf.Config{
		Policies:          []hcf.Policy{{TryPrivateTrials: 1, TryCombiningTrials: 4}},
		HoldSelectionLock: true,
		Lock:              hcf.NewTicket(env),
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	fw.SetWitness(func(stamp uint64, intra int, op hcf.Op, result uint64) { seen++ })
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 20; i++ {
			fw.Execute(th, registerOp{addr: counter})
		}
	})
	if seen != 6*20 {
		t.Fatalf("witnessed %d applications, want %d", seen, 6*20)
	}
}

func TestPublicAPIServe(t *testing.T) {
	srv, addr, err := hcf.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("vars status %d", resp.StatusCode)
	}
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("vars JSON: %v (%q)", err, body)
	}
	var _ *hcf.IntrospectionServer = srv
}

func TestPublicAPIKV(t *testing.T) {
	dir := t.TempDir()
	kv, err := hcf.NewKV(dir, hcf.KVConfig{Shards: 2, DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	h := kv.MustHandle()
	if _, err := h.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := h.Get(7)
	if err != nil || !ok || string(v) != "seven" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	h.Release()
	var st hcf.KVStats = kv.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(st.Shards))
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: durability through the façade.
	kv2, err := hcf.NewKV(dir, hcf.KVConfig{Shards: 2, DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	h2 := kv2.MustHandle()
	defer h2.Release()
	v, ok, err = h2.Get(7)
	if err != nil || !ok || string(v) != "seven" {
		t.Fatalf("after reopen Get = (%q,%v,%v)", v, ok, err)
	}
}
