module hcf

go 1.23
