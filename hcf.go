// Package hcf is a Go implementation of the HTM-assisted Combining
// Framework from "Transactional Lock Elision Meets Combining" (Kogan & Lev,
// PODC 2017), together with the substrate it needs — a simulated-HTM
// transactional engine over a deterministic multicore memory simulator —
// and the five baseline synchronization engines the paper compares against
// (Lock, TLE, FC, SCM and naive TLE+FC).
//
// # Programming model
//
// You write your data structure as ordinary sequential code against the
// small Ctx interface (Load/Store/Alloc/Free over simulated memory), wrap
// each operation in an Op, and pick an engine. HCF runs every operation
// through up to four phases — speculative private attempts, announced
// speculative attempts, speculative combining of announced operations, and
// a pessimistic combining pass under the data-structure lock — without
// requiring you to reason about concurrency. Per-operation-class policies
// decide how many speculation attempts each phase gets, which publication
// array announces the class, which announced operations a combiner adopts
// (ShouldHelp), and how batches are combined or eliminated (RunMulti).
//
// # Quick start
//
//	env := hcf.NewDetEnv(8)                     // 8 simulated threads
//	fw, err := hcf.New(env, hcf.Config{
//		Policies: []hcf.Policy{{
//			TryPrivateTrials:   2,
//			TryVisibleTrials:   3,
//			TryCombiningTrials: 5,
//		}},
//	})
//	...
//	env.Run(func(th *hcf.Thread) {
//		res := fw.Execute(th, myOp)             // linearizable, exactly once
//		...
//	})
//
// See examples/ for complete programs and internal/harness for the
// experiment suite that regenerates the paper's figures.
package hcf

import (
	"hcf/internal/adaptive"
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/htm"
	"hcf/internal/kvstore"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/shard"
	"hcf/metrics"
	"hcf/native"
	"hcf/serve"
	"hcf/tracing"
)

// Core memory-model types.
type (
	// Addr is a word address in simulated memory; 0 is the nil pointer.
	Addr = memsim.Addr
	// Ctx is the access interface sequential data-structure code uses. It
	// is implemented by *Thread (direct access) and by transactions.
	Ctx = memsim.Ctx
	// Env is a simulated execution environment (deterministic or real).
	Env = memsim.Env
	// Thread is a per-thread handle on an Env.
	Thread = memsim.Thread
	// CostParams configures the deterministic simulator's cycle model.
	CostParams = memsim.CostParams
	// ThreadStats counts a thread's memory behaviour.
	ThreadStats = memsim.ThreadStats
)

// NilAddr is the simulated null pointer.
const NilAddr = memsim.NilAddr

// WordsPerLine is the number of 64-bit words per simulated cache line.
const WordsPerLine = memsim.WordsPerLine

// NewDetEnv creates a deterministic simulated environment with the given
// number of worker threads and the default one-socket machine model.
func NewDetEnv(threads int) *memsim.DetEnv {
	return memsim.NewDet(memsim.DetConfig{Threads: threads})
}

// NewDetEnvWithCost creates a deterministic environment with a custom cycle
// cost model (e.g. memsim.TwoSocketCostParams for NUMA experiments).
func NewDetEnvWithCost(threads int, cost CostParams) *memsim.DetEnv {
	return memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cost})
}

// NewRealEnv creates a real-concurrency environment (goroutines + atomics)
// for wall-clock benchmarking and race-detector stress testing.
func NewRealEnv(threads int) *memsim.RealEnv {
	return memsim.NewReal(memsim.RealConfig{Threads: threads})
}

// Framework types.
type (
	// Op is one data-structure operation (sequential code + class).
	Op = engine.Op
	// Engine applies operations with some synchronization discipline; all
	// six engines in this module implement it.
	Engine = engine.Engine
	// Metrics aggregates engine activity counters.
	Metrics = engine.Metrics
	// CombineFunc combines/eliminates a batch of operations (runMulti).
	CombineFunc = engine.CombineFunc
	// ShouldHelpFunc selects which announced operations a combiner adopts.
	ShouldHelpFunc = engine.ShouldHelpFunc

	// Policy configures HCF's handling of one operation class.
	Policy = core.Policy
	// Config configures a Framework.
	Config = core.Config
	// Framework is the HCF engine itself.
	Framework = core.Framework
	// Phase identifies where an operation completed.
	Phase = core.Phase

	// HTMConfig tunes the simulated hardware transactional memory.
	HTMConfig = htm.Config
	// AbortReason classifies transaction aborts.
	AbortReason = htm.Reason

	// Lock is a mutual-exclusion lock over simulated memory whose state
	// transactions can subscribe to.
	Lock = locks.Lock

	// BaselineOptions configures the baseline engines.
	BaselineOptions = engines.Options
)

// The four HCF phases (paper §2.1).
const (
	PhaseTryPrivate       = core.PhaseTryPrivate
	PhaseTryVisible       = core.PhaseTryVisible
	PhaseTryCombining     = core.PhaseTryCombining
	PhaseCombineUnderLock = core.PhaseCombineUnderLock
)

// New builds an HCF framework over env.
func New(env Env, cfg Config) (*Framework, error) { return core.New(env, cfg) }

// Sharded scaling layer: N independent frameworks over one Env with a
// user-supplied operation router. Independent combiners run in parallel on
// disjoint shards; operations spanning shards take a pessimistic path that
// acquires all shard locks in canonical order (see internal/shard).
type (
	// Sharded is N Frameworks behind one Engine.
	Sharded = shard.Sharded
	// ShardedConfig configures a Sharded engine.
	ShardedConfig = shard.Config
	// Router maps an operation to its shard (or CrossShard).
	Router = shard.Router
)

// CrossShard is the Router return value for operations that span shards.
const CrossShard = shard.CrossShard

// NewSharded builds a sharded HCF engine over env.
func NewSharded(env Env, cfg ShardedConfig) (*Sharded, error) { return shard.New(env, cfg) }

// Elastic sharding: the same scaling layer with a live consistent-hash
// topology instead of a fixed router. Keyed operations route through an
// epoch-published ring (internal/route); shards split and merge online
// via the all-locks cross-shard path, with in-flight operations
// re-validating ownership at their linearization point; a Rebalancer
// closes the loop from per-shard load evidence to Split/Merge decisions
// with a deterministic journal. See DESIGN.md ("Elastic sharding").
type (
	// Elastic is a Sharded engine with an online-resharding topology.
	Elastic = shard.Elastic
	// ElasticConfig configures an Elastic engine.
	ElasticConfig = shard.ElasticConfig
	// KeyFunc extracts an operation's routing key (ok=false routes the
	// operation down the all-locks cross-shard path).
	KeyFunc = shard.KeyFunc
	// MigrateFunc moves re-owned keys between shard structures during a
	// split or merge, under every shard's lock.
	MigrateFunc = shard.MigrateFunc
	// Rebalancer is the hot-shard feedback loop over an Elastic engine.
	Rebalancer = shard.Rebalancer
	// RebalanceConfig tunes the rebalancer's evidence thresholds.
	RebalanceConfig = shard.RebalanceConfig
	// RebalanceDecision is one journaled rebalancer decision.
	RebalanceDecision = shard.RebalanceDecision
	// Topology is a point-in-time view of an Elastic engine's routing.
	Topology = shard.Topology
	// Ring is an immutable consistent-hash slot table.
	Ring = route.Ring
	// RingSnapshot is a Ring's plain-data (JSON-friendly) view.
	RingSnapshot = route.Snapshot
)

// NewElastic builds an elastic sharded HCF engine over env.
func NewElastic(env Env, cfg ElasticConfig) (*Elastic, error) { return shard.NewElastic(env, cfg) }

// NewRing builds a consistent-hash ring with the first `shards` of
// `maxShards` provisioned shards active, spread over `slots` virtual
// slots (0 = route.DefaultSlots). Use it to place data consistently
// with a Key-routed Sharded engine or an Elastic engine's initial
// topology.
func NewRing(shards, slots, maxShards int) (*Ring, error) {
	return route.NewUniform(shards, slots, maxShards)
}

// NewRebalancer attaches a hot-shard feedback loop to an Elastic
// engine. Drive Step from one thread at fixed simulated instants; the
// decision journal is then byte-identical per seed.
func NewRebalancer(e *Elastic, cfg RebalanceConfig) *Rebalancer { return shard.NewRebalancer(e, cfg) }

// Native wall-clock backend: the same speculation-then-combining pipeline
// re-targeted at direct Go atomics — a seqlock-validated optimistic read
// path standing in for HTM, budgeted CAS-acquire write speculation, and
// flat combining through cache-padded publication slots with parked
// waiters. Policies carry the same per-class knobs as the simulated
// framework (TryPrivate budget, MaxBatch, ShouldHelp, RunMulti). See the
// hcf/native package and docs/PERFORMANCE.md ("Native backend").
type (
	// NativeFramework is the native HCF engine.
	NativeFramework = native.Framework
	// NativeHandle is a per-goroutine participant handle.
	NativeHandle = native.Handle
	// NativeOp is one native data-structure operation.
	NativeOp = native.Op
	// NativePolicy configures one native operation class.
	NativePolicy = native.Policy
	// NativeConfig configures a NativeFramework.
	NativeConfig = native.Config
	// NativeMetrics aggregates native framework counters.
	NativeMetrics = native.Metrics
	// NativeMap is the ready-made native concurrent uint64->uint64 map.
	NativeMap = native.Map
	// NativePQueue is the ready-made native concurrent priority queue.
	NativePQueue = native.PQueue
)

// NewNative builds a native (wall-clock, direct-atomics) HCF framework.
func NewNative(cfg NativeConfig) (*NativeFramework, error) { return native.New(cfg) }

// NewNativeMap builds a native combining hash map with at least capacity
// slots.
func NewNativeMap(capacity int) (*NativeMap, error) { return native.NewMap(capacity) }

// NewNativePQueue builds a native combining priority queue holding at
// most capacity keys.
func NewNativePQueue(capacity int) (*NativePQueue, error) { return native.NewPQueue(capacity) }

// Persistent KV engine: a Bitcask-style store where a sharded native
// HCF hash index maps keys to offsets in per-shard append-only logs,
// and the combiner's batch boundary doubles as the write-ahead log's
// group-commit boundary — one append + one fsync per combined batch.
// Combining batches conflicting operations behind one lock holder;
// group commit batches appends behind one fsync: the same amortization,
// which is the source paper's claim applied to durability. Acknowledged
// writes are durable; crash recovery replays the logs and truncates a
// torn tail (see internal/kvstore's package comment for the model).
type (
	// KV is the persistent key/value engine.
	KV = kvstore.Store
	// KVHandle is a per-goroutine participant handle on a KV.
	KVHandle = kvstore.Handle
	// KVConfig configures a KV (shards, index capacity, commit delay).
	KVConfig = kvstore.Config
	// KVStats snapshots a KV's group-commit and occupancy metrics.
	KVStats = kvstore.Stats
)

// NewKV opens (creating or recovering) a persistent KV store rooted at
// dir. Take one KVHandle per goroutine with its Handle method.
func NewKV(dir string, cfg KVConfig) (*KV, error) { return kvstore.Open(dir, cfg) }

// Adaptive-tuning types (the paper's §2.4 future-work mechanism): an
// AdaptiveController periodically re-tunes a Framework's per-class
// speculation budgets from its observed phase-completion profile.
type (
	// AdaptiveController adjusts a Framework's budgets in epochs.
	AdaptiveController = adaptive.Controller
	// AdaptiveConfig tunes the controller's thresholds.
	AdaptiveConfig = adaptive.Config
)

// NewAdaptive builds a budget controller for fw; call its Step method
// periodically from one thread.
func NewAdaptive(fw *Framework, cfg AdaptiveConfig) *AdaptiveController {
	return adaptive.New(fw, cfg)
}

// Evidence-driven autotuning (closing the observability loop): a Tuner
// subsumes the AdaptiveController by learning full per-class phase
// policies — skipping TryPrivate for always-conflicting classes, promoting
// conflict-free classes out of combining, reviving parked speculation via
// scheduled probes, spreading classes across publication arrays and
// resizing batch bounds — from the metrics recorder's latency/outcome
// evidence and the trace collector's per-class abort attribution. Every
// change is appended to a lock-free decision Journal together with the
// evidence that triggered it (see cmd/hcftune).
type (
	// Tuner rewrites a Framework's per-class policies in epochs.
	Tuner = adaptive.Tuner
	// TunerConfig sets the tuner's thresholds and caps.
	TunerConfig = adaptive.TunerConfig
	// TunerJournal is the append-only decision log.
	TunerJournal = adaptive.Journal
	// TunerDecision is one journaled policy change.
	TunerDecision = adaptive.Decision
	// TunerEvidence is the observation window a decision cites.
	TunerEvidence = adaptive.Evidence
)

// NewTuner builds an evidence-driven policy autotuner for fw. rec (a
// *metrics.Recorder, see the hcf/metrics package) supplies per-class
// latency histograms and outcome counters; col (a *tracing.Collector)
// supplies per-class abort attribution. Either may be nil — the tuner
// degrades to phase-completion evidence. Call Step periodically from one
// thread (or a dedicated tuner thread).
func NewTuner(fw *Framework, rec *metrics.Recorder, col *tracing.Collector, cfg TunerConfig) *Tuner {
	return adaptive.NewTuner(fw, rec, col, cfg)
}

// Baseline engine constructors (§3's comparison points).
var (
	// NewLockEngine runs every operation under the lock.
	NewLockEngine = engines.NewLock
	// NewTLE builds transactional lock elision.
	NewTLE = engines.NewTLE
	// NewFC builds classic flat combining.
	NewFC = engines.NewFC
	// NewSCM builds TLE with auxiliary-lock conflict management.
	NewSCM = engines.NewSCM
	// NewTLEFC builds the naive TLE-then-FC combination.
	NewTLEFC = engines.NewTLEFC
)

// Lock constructors.
var (
	// NewTATAS allocates a test-and-test-and-set lock.
	NewTATAS = locks.NewTATAS
	// NewTicket allocates a starvation-free FIFO ticket lock.
	NewTicket = locks.NewTicket
)

// Combining helpers.
var (
	// ApplyEach runs each operation's own code (no combining).
	ApplyEach = engine.ApplyEach
	// HelpAll makes a combiner adopt every announced operation.
	HelpAll = engine.HelpAll
	// HelpNone makes a combiner apply only its own operation.
	HelpNone = engine.HelpNone
)

// IntrospectionServer is the live HTTP introspection server (see the
// hcf/serve package): JSON endpoints under /debug for metrics snapshots,
// interval series, SLO burn-rate state, per-shard counters, sojourn tails,
// trace hot lines and the tuner journal, plus the standard pprof set.
// Attach one to an open-loop run via OpenLoopConfig.Observer, or install
// providers explicitly with its Set* methods.
type IntrospectionServer = serve.Server

// Serve starts a live introspection server on addr ("host:port"; port 0
// picks a free one) and returns it with the bound address. Handlers read
// only host-side atomics and published snapshots, so attaching the server
// to a deterministic run never changes results — enabled or disabled, the
// output is bit-identical.
func Serve(addr string) (*IntrospectionServer, string, error) {
	s := serve.New()
	bound, err := s.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return s, bound, nil
}

// Result packing helpers for Op.Apply return values.
var (
	// Pack encodes (63-bit value, ok) into a result word.
	Pack = engine.Pack
	// Unpack decodes a result word.
	Unpack = engine.Unpack
	// PackBool encodes a bare boolean result.
	PackBool = engine.PackBool
	// UnpackBool decodes a bare boolean result.
	UnpackBool = engine.UnpackBool
)
