package hcf_test

import (
	"sort"
	"testing"

	"hcf"
)

// registerOp atomically increments a simulated-memory counter and returns
// the previous value — written exactly as a library user would write it,
// against the public API only.
type registerOp struct {
	addr hcf.Addr
}

func (o registerOp) Apply(ctx hcf.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o registerOp) Class() int { return 0 }

func TestPublicAPIQuickstartFlow(t *testing.T) {
	env := hcf.NewDetEnv(8)
	fw, err := hcf.New(env, hcf.Config{
		Policies: []hcf.Policy{{
			TryPrivateTrials:   2,
			TryVisibleTrials:   3,
			TryCombiningTrials: 5,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := env.Alloc(1)
	const perThread = 50
	results := make([][]uint64, env.NumThreads())
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < perThread; i++ {
			results[th.ID()] = append(results[th.ID()], fw.Execute(th, registerOp{addr: counter}))
		}
	})
	var all []uint64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("not exactly-once: position %d has %d", i, v)
		}
	}
	if got := env.Boot().Load(counter); got != uint64(8*perThread) {
		t.Fatalf("counter = %d", got)
	}
	m := fw.Metrics()
	if m.Ops != 8*perThread {
		t.Fatalf("metrics.Ops = %d", m.Ops)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	env := hcf.NewDetEnv(4)
	counter := env.Alloc(1)
	baselines := []hcf.Engine{
		hcf.NewLockEngine(env, hcf.BaselineOptions{}),
		hcf.NewTLE(env, hcf.BaselineOptions{}),
		hcf.NewFC(env, hcf.BaselineOptions{}),
		hcf.NewSCM(env, hcf.BaselineOptions{}),
		hcf.NewTLEFC(env, hcf.BaselineOptions{}),
	}
	for _, eng := range baselines {
		env.Boot().Store(counter, 0)
		env.Run(func(th *hcf.Thread) {
			for i := 0; i < 25; i++ {
				eng.Execute(th, registerOp{addr: counter})
			}
		})
		if got := env.Boot().Load(counter); got != 100 {
			t.Fatalf("%s: counter = %d, want 100", eng.Name(), got)
		}
	}
}

func TestPublicAPILocksAndPacking(t *testing.T) {
	env := hcf.NewDetEnv(1)
	boot := env.Boot()
	for _, l := range []hcf.Lock{hcf.NewTATAS(env), hcf.NewTicket(env)} {
		l.Lock(boot)
		if !l.Locked(boot) {
			t.Fatal("lock not held")
		}
		l.Unlock(boot)
	}
	v, ok := hcf.Unpack(hcf.Pack(123, true))
	if v != 123 || !ok {
		t.Fatal("pack round trip failed")
	}
	if hcf.UnpackBool(hcf.PackBool(false)) {
		t.Fatal("bool round trip failed")
	}
}

func TestPublicAPIRealEnv(t *testing.T) {
	env := hcf.NewRealEnv(4)
	fw, err := hcf.New(env, hcf.Config{
		Policies: []hcf.Policy{{TryPrivateTrials: 4, TryCombiningTrials: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := env.Alloc(1)
	env.Run(func(th *hcf.Thread) {
		for i := 0; i < 50; i++ {
			fw.Execute(th, registerOp{addr: counter})
		}
	})
	if got := env.Boot().Load(counter); got != 200 {
		t.Fatalf("counter = %d", got)
	}
}
