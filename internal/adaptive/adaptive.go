// Package adaptive implements the runtime tuning mechanism the paper
// leaves as future work (§2.4): "It is fair to assume that no single
// configuration of HCF fits all data structures and workloads, calling for
// an adaptive runtime mechanism to tune the HCF performance."
//
// The controller watches each operation class's phase-completion profile
// in epochs and shifts its speculation budgets: classes that keep
// succeeding privately earn more private attempts (up to a cap), while
// classes whose speculation keeps failing stop burning attempts and reach
// the combining phases sooner. Because HCF's budgets affect performance
// only — never correctness (§2.1) — adaptation is safe while operations
// are in flight.
package adaptive

import (
	"fmt"

	"hcf/internal/core"
)

// Config tunes the controller. Zero fields take defaults.
type Config struct {
	// MinOpsPerEpoch is the number of completions a class needs in an
	// epoch before its budgets are adjusted (default 64).
	MinOpsPerEpoch uint64
	// HighPrivate is the private-success fraction above which a class's
	// private budget grows (default 0.90).
	HighPrivate float64
	// LowPrivate is the fraction below which speculation budgets shrink in
	// favour of combining (default 0.40).
	LowPrivate float64
	// MaxPrivate caps the private budget (default 8).
	MaxPrivate int
	// MaxCombining caps the combining budget (default 8).
	MaxCombining int
	// PrivateFloor is the minimum private budget adaptation will not cut
	// below (default 2): even at high conflict rates a little speculation
	// is cheap, while cutting to zero forfeits all parallelism — a cliff
	// in the configuration landscape.
	PrivateFloor int
}

func (c *Config) normalize() {
	if c.MinOpsPerEpoch == 0 {
		c.MinOpsPerEpoch = 64
	}
	if c.HighPrivate == 0 {
		c.HighPrivate = 0.90
	}
	if c.LowPrivate == 0 {
		c.LowPrivate = 0.40
	}
	if c.MaxPrivate == 0 {
		c.MaxPrivate = 8
	}
	if c.MaxCombining == 0 {
		c.MaxCombining = 8
	}
	if c.PrivateFloor == 0 {
		c.PrivateFloor = 2
	}
}

// Controller adapts one Framework's per-class budgets.
type Controller struct {
	fw   *core.Framework
	cfg  Config
	prev [][core.NumPhases]uint64
	// Steps counts applied adjustment rounds (for tests/diagnostics).
	Steps int
}

// New builds a controller for fw.
func New(fw *core.Framework, cfg Config) *Controller {
	cfg.normalize()
	return &Controller{
		fw:   fw,
		cfg:  cfg,
		prev: fw.PhaseBreakdown(),
	}
}

// Step closes the current epoch: it reads each class's phase-completion
// deltas since the previous Step and adjusts budgets. Call it periodically
// from any single thread (e.g. every few hundred operations); concurrent
// Steps are not supported.
func (c *Controller) Step() {
	cur := c.fw.PhaseBreakdown()
	for class := range cur {
		var delta [core.NumPhases]uint64
		var total uint64
		for p := 0; p < core.NumPhases; p++ {
			delta[p] = cur[class][p] - c.prev[class][p]
			total += delta[p]
		}
		if total < c.cfg.MinOpsPerEpoch {
			continue // not enough signal this epoch
		}
		c.adjust(class, delta, total)
		c.prev[class] = cur[class]
	}
	c.Steps++
}

// adjust applies the budget rule for one class.
//
// Trials→SetTrials is a read-modify-write over budgets that users may set
// concurrently (Framework.SetTrials is a public runtime knob), so adjust
// only writes when it actually has an adjustment to make, and clamps the
// values it writes: a user SetTrials landing mid-epoch must not be echoed
// back outside [PrivateFloor, MaxPrivate] / [0, MaxCombining] by the
// controller's next adjustment.
func (c *Controller) adjust(class int, delta [core.NumPhases]uint64, total uint64) {
	private, visible, combining := c.fw.Trials(class)
	privFrac := float64(delta[core.PhaseTryPrivate]) / float64(total)
	switch {
	case privFrac >= c.cfg.HighPrivate:
		// Speculation is winning: make sure it has budget to keep winning
		// and stop paying for combining machinery it doesn't use.
		private++
	case privFrac <= c.cfg.LowPrivate:
		// Speculation keeps failing often: give the combining phase more
		// budget and trim the less valuable announced attempts, but keep
		// a private floor — some cheap speculation always pays, and
		// cutting it to zero forfeits all parallelism.
		private--
		if visible > 0 {
			visible--
		}
		combining++
	default:
		// No adjustment: don't write the stale read back, it would silently
		// revert a concurrent user SetTrials.
		return
	}
	private = min(max(private, c.cfg.PrivateFloor), c.cfg.MaxPrivate)
	combining = min(combining, c.cfg.MaxCombining)
	c.fw.SetTrials(class, private, visible, combining)
}

// ClassSnapshot is one class's entry in a Snapshot: its name and the
// current runtime policy knobs.
type ClassSnapshot struct {
	// Class is the class index; Name its policy name ("" if unnamed).
	Class int    `json:"class"`
	Name  string `json:"name,omitempty"`
	// Policy is the class's current runtime policy state (budgets, batch
	// bound, publication array).
	Policy core.PolicyState `json:"policy"`
}

// Snapshot is a JSON-marshalable picture of a framework's current per-class
// budgets and policies. Its String method renders the legacy log form.
type Snapshot struct {
	Classes []ClassSnapshot `json:"classes"`
}

// String renders the snapshot in the free-form log format earlier versions
// of Snapshot returned directly.
func (s Snapshot) String() string {
	out := ""
	for _, c := range s.Classes {
		out += fmt.Sprintf("class %d: private=%d visible=%d combining=%d\n",
			c.Class, c.Policy.Private, c.Policy.Visible, c.Policy.Combining)
	}
	return out
}

// snapshotOf assembles the per-class policy snapshot of fw.
func snapshotOf(fw *core.Framework) Snapshot {
	var s Snapshot
	for class := 0; class < fw.NumClasses(); class++ {
		s.Classes = append(s.Classes, ClassSnapshot{
			Class:  class,
			Name:   fw.ClassName(class),
			Policy: fw.PolicyState(class),
		})
	}
	return s
}

// Snapshot reports the current budgets and policy per class, for logging
// (via String) or structured export (JSON).
func (c *Controller) Snapshot() Snapshot { return snapshotOf(c.fw) }
