package adaptive

import (
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// hotOp increments a single shared counter — speculation almost always
// conflicts under many threads.
type hotOp struct{ addr memsim.Addr }

func (o hotOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o hotOp) Class() int { return 0 }

// coldOp touches a thread-private cell — speculation always succeeds.
type coldOp struct{ addr memsim.Addr }

func (o coldOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o coldOp) Class() int { return 1 }

func twoClassFramework(t *testing.T, env memsim.Env) *core.Framework {
	t.Helper()
	fw, err := core.New(env, core.Config{Policies: []core.Policy{
		{Name: "hot", PubArray: 0, TryPrivateTrials: 4, TryVisibleTrials: 3, TryCombiningTrials: 2},
		{Name: "cold", PubArray: 1, TryPrivateTrials: 4, TryVisibleTrials: 3, TryCombiningTrials: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestAdaptationShiftsBudgetsByConflictProfile(t *testing.T) {
	const threads = 12
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := twoClassFramework(t, env)
	ctl := New(fw, Config{MinOpsPerEpoch: 32, LowPrivate: 0.8, HighPrivate: 0.97})
	hot := env.Alloc(1)
	cold := make([]memsim.Addr, threads)
	for i := range cold {
		cold[i] = env.Alloc(memsim.WordsPerLine)
	}
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 400; i++ {
			fw.Execute(th, hotOp{addr: hot})
			fw.Execute(th, coldOp{addr: cold[th.ID()]})
			if th.ID() == 0 && i%50 == 49 {
				ctl.Step()
			}
		}
	})
	if ctl.Steps == 0 {
		t.Fatal("controller never stepped")
	}
	hotP, _, hotC := fw.Trials(0)
	coldP, _, _ := fw.Trials(1)
	if hotP >= 4 {
		t.Errorf("hot class private budget did not shrink: %d", hotP)
	}
	if hotC <= 2 {
		t.Errorf("hot class combining budget did not grow: %d", hotC)
	}
	if coldP < 4 {
		t.Errorf("cold class private budget shrank: %d", coldP)
	}
	snap := ctl.Snapshot()
	if len(snap.Classes) != 2 || snap.String() == "" {
		t.Errorf("bad snapshot: %+v", snap)
	}
}

func TestAdaptationPreservesExactlyOnce(t *testing.T) {
	// Budgets change mid-run; the permutation witness must still hold.
	const threads, perThread = 8, 120
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := twoClassFramework(t, env)
	ctl := New(fw, Config{MinOpsPerEpoch: 16})
	counter := env.Alloc(1)
	results := make([][]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		mine := make([]uint64, 0, perThread)
		for i := 0; i < perThread; i++ {
			mine = append(mine, fw.Execute(th, hotOp{addr: counter}))
			if th.ID() == 1 && i%20 == 19 {
				ctl.Step()
			}
		}
		results[th.ID()] = mine
	})
	var all []uint64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("permutation broken at %d: %d", i, v)
		}
	}
}

func TestBudgetsNeverGoNegativeOrExplode(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 4})
	fw := twoClassFramework(t, env)
	cfg := Config{MinOpsPerEpoch: 1, MaxPrivate: 5, MaxCombining: 5}
	ctl := New(fw, cfg)
	hot := env.Alloc(1)
	for round := 0; round < 30; round++ {
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 20; i++ {
				fw.Execute(th, hotOp{addr: hot})
			}
		})
		ctl.Step()
		for class := 0; class < fw.NumClasses(); class++ {
			p, v, c := fw.Trials(class)
			if p < 0 || v < 0 || c < 0 {
				t.Fatalf("negative budget: %d %d %d", p, v, c)
			}
			if p > cfg.MaxPrivate || c > cfg.MaxCombining {
				t.Fatalf("budget exceeded cap: %d %d", p, c)
			}
		}
	}
}

func TestSetTrialsClampsNegatives(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	fw := twoClassFramework(t, env)
	fw.SetTrials(0, -3, -1, -2)
	p, v, c := fw.Trials(0)
	if p != 0 || v != 0 || c != 0 {
		t.Fatalf("negatives not clamped: %d %d %d", p, v, c)
	}
}

func TestZeroBudgetClassStillCompletes(t *testing.T) {
	// Adaptation can drive every speculative budget to zero; operations
	// must still complete via the combining phases.
	env := memsim.NewDet(memsim.DetConfig{Threads: 4})
	fw := twoClassFramework(t, env)
	fw.SetTrials(0, 0, 0, 0)
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 30; i++ {
			fw.Execute(th, hotOp{addr: counter})
		}
	})
	if got := env.Boot().Load(counter); got != 120 {
		t.Fatalf("counter = %d, want 120", got)
	}
	m := fw.Metrics()
	if m.PhaseCompleted[core.PhaseTryPrivate] != 0 {
		t.Fatal("zero private budget still completed privately")
	}
}

func TestEpochRequiresMinimumSignal(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	fw := twoClassFramework(t, env)
	ctl := New(fw, Config{MinOpsPerEpoch: 1000})
	hot := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 20; i++ {
			fw.Execute(th, hotOp{addr: hot})
		}
	})
	ctl.Step()
	p, v, c := fw.Trials(0)
	if p != 4 || v != 3 || c != 2 {
		t.Fatalf("budgets changed without enough signal: %d %d %d", p, v, c)
	}
}

// TestConcurrentSetTrialsRespectsClamps drives the controller from thread 0
// while another thread keeps installing out-of-bounds budgets via the public
// SetTrials knob, under schedule exploration so the user writes land in
// different epochs on every seed. Whenever the controller adjusts after a
// hostile write, the values it writes back must respect the configured
// clamps — adjust's read-modify-write must not echo the user's 100/50 back
// out, nor push past the caps from a value already above them.
func TestConcurrentSetTrialsRespectsClamps(t *testing.T) {
	// private=0 forces every completion through combining, so privFrac is 0
	// and the controller's shrink path fires on the epoch after the hostile
	// write — where the unclamped read-modify-write used to emit budgets
	// below PrivateFloor and above MaxCombining.
	const (
		threads      = 6
		hostileP     = 0
		hostileV     = 1
		hostileC     = 50
		maxPrivate   = 5
		maxCombining = 5
		floor        = 2
	)
	for seed := uint64(0); seed < 12; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 32, JitterClass: 2},
		})
		fw := twoClassFramework(t, env)
		ctl := New(fw, Config{
			MinOpsPerEpoch: 16,
			MaxPrivate:     maxPrivate,
			MaxCombining:   maxCombining,
			PrivateFloor:   floor,
		})
		hot := env.Alloc(1)
		adjusted := 0
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 300; i++ {
				fw.Execute(th, hotOp{addr: hot})
				switch {
				case th.ID() == 0 && i%25 == 24:
					before := ctl.Steps
					ctl.Step()
					p, v, c := fw.Trials(0)
					if p == hostileP && v == hostileV && c == hostileC {
						// The controller skipped this class (not enough
						// signal, or no adjustment direction): the user's
						// values must survive untouched, which they did.
						continue
					}
					if before != ctl.Steps {
						adjusted++
					}
					if p > maxPrivate || p < floor || c > maxCombining || v < 0 {
						t.Fatalf("seed %d: budgets violate clamps after Step: private=%d visible=%d combining=%d",
							seed, p, v, c)
					}
				case th.ID() == 1 && i%40 == 10:
					fw.SetTrials(0, hostileP, hostileV, hostileC)
				}
			}
		})
		if adjusted == 0 {
			t.Fatalf("seed %d: controller never adjusted; test exercised nothing", seed)
		}
	}
}

var _ engine.Op = hotOp{}
var _ engine.Op = coldOp{}
