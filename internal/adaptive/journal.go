package adaptive

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"hcf/internal/core"
	"hcf/internal/trace"
)

// Tuning rules. Every journal entry names the rule that fired, so a policy
// change is always traceable to the condition (and evidence) behind it.
const (
	// RuleSkipPrivate cuts TryPrivate to zero trials for a class whose
	// speculation keeps dying on conflicts — the hot-line attribution shows
	// the class is inherently conflicting, so private attempts only burn
	// cycles before combining does the work.
	RuleSkipPrivate = "skip-private"
	// RuleGrowPrivate gives a class whose operations keep committing
	// privately more speculation budget.
	RuleGrowPrivate = "grow-private"
	// RulePromote moves a conflict-free class out of the combining phases:
	// speculation wins essentially always, so combining budget is dead
	// weight that only delays the (rare) fallback.
	RulePromote = "promote-out-of-combining"
	// RuleShrinkPrivate shifts budget from failing speculation toward the
	// combining phases.
	RuleShrinkPrivate = "shrink-private"
	// RuleRevivePrivate re-grants speculation to a class parked in the
	// combining phases — immediately when its selections stay near one
	// operation (combining without batching is pure overhead), and
	// periodically as an exploration probe: a parked class produces no
	// speculative evidence, so the loop must occasionally buy some. The
	// epochs after the revival decide whether the trials stay.
	RuleRevivePrivate = "revive-private"
	// RuleWidenBatch doubles the combining batch bound when combiners keep
	// selecting about as many operations as they are allowed to batch.
	RuleWidenBatch = "widen-batch"
	// RuleNarrowBatch halves the combining batch bound when selections stay
	// far below it.
	RuleNarrowBatch = "narrow-batch"
	// RuleSpreadArray reassigns a combining class to a spare publication
	// array so two combining classes stop competing for one selection lock.
	RuleSpreadArray = "spread-array"
	// RuleDrift records a detected workload shift: the class's abort rate
	// jumped away from its smoothed history. The policy is not changed by
	// the drift entry itself; it resets the class's hysteresis so the
	// following epochs can re-tune from fresh evidence.
	RuleDrift = "drift-reset"
)

// Evidence is the measurement set that triggered one decision — the
// observability loop's receipts. Counter fields are per-epoch deltas;
// HotLines and CombiningDegree aggregate the run so far.
type Evidence struct {
	// Ops is the class's completions this epoch, split in PhaseCompletions.
	Ops              uint64                 `json:"ops"`
	PhaseCompletions [core.NumPhases]uint64 `json:"phase_completions"`
	// PrivFrac is the fraction of completions in TryPrivate.
	PrivFrac float64 `json:"priv_frac"`
	// Attempts counts the class's finished speculation attempts this epoch
	// (trace layer); AbortRate and ConflictFrac are fractions of it.
	Attempts     uint64  `json:"attempts,omitempty"`
	AbortRate    float64 `json:"abort_rate,omitempty"`
	ConflictFrac float64 `json:"conflict_frac,omitempty"`
	// EWMAAbortRate is the smoothed abort-rate history the epoch was
	// compared against (drift detection).
	EWMAAbortRate float64 `json:"ewma_abort_rate,omitempty"`
	// P50 and P99 are the class's operation-latency quantiles this epoch
	// (metrics layer; absent without a recorder).
	P50 uint64 `json:"p50,omitempty"`
	P99 uint64 `json:"p99,omitempty"`
	// CombiningDegree is the class's mean combiner selection size this
	// epoch (0 when no combiner of this class made a selection).
	CombiningDegree float64 `json:"combining_degree,omitempty"`
	// HotLines attributes the class's conflict aborts to cache lines and
	// dominant writer threads (trace layer).
	HotLines []trace.HotLine `json:"hot_lines,omitempty"`
	// Peer is the other class involved in a cross-class decision
	// (spread-array), -1 otherwise.
	Peer int `json:"peer"`
}

// Decision is one journal entry: which rule fired for which class at what
// time, the policy before and after, and the evidence that triggered it.
type Decision struct {
	// Seq is the entry's index in the journal.
	Seq int `json:"seq"`
	// Epoch is the tuner epoch (Step call) that produced the decision.
	Epoch uint64 `json:"epoch"`
	// Time is the virtual (or wall) timestamp passed to Step.
	Time int64 `json:"time"`
	// Class and Name identify the operation class.
	Class int    `json:"class"`
	Name  string `json:"class_name,omitempty"`
	// Rule names the tuning rule that fired.
	Rule string `json:"rule"`
	// Old and New are the class's policy state before and after.
	Old core.PolicyState `json:"old"`
	New core.PolicyState `json:"new"`
	// Evidence is the measurement set behind the decision.
	Evidence Evidence `json:"evidence"`
}

// Journal is the lock-free decision log: a single writer (the thread
// driving Tuner.Step) appends by copy-on-write publication, so any thread
// may snapshot, render or export it concurrently without locks — the
// journal can be scraped while the run it documents is still going.
type Journal struct {
	entries atomic.Pointer[[]Decision]
}

// append publishes one more decision (single writer: the Step caller).
func (j *Journal) append(d Decision) {
	var cur []Decision
	if p := j.entries.Load(); p != nil {
		cur = *p
	}
	next := make([]Decision, len(cur)+1)
	copy(next, cur)
	d.Seq = len(cur)
	next[len(cur)] = d
	j.entries.Store(&next)
}

// Decisions returns the journal entries in order.
func (j *Journal) Decisions() []Decision {
	if p := j.entries.Load(); p != nil {
		return *p
	}
	return nil
}

// Len returns the number of recorded decisions.
func (j *Journal) Len() int { return len(j.Decisions()) }

// JSON renders the journal as an indented JSON array (empty array when no
// decision has been recorded). The output is byte-identical across runs of
// the same seed on the deterministic backend.
func (j *Journal) JSON() ([]byte, error) {
	ds := j.Decisions()
	if ds == nil {
		ds = []Decision{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// Text renders the journal as a human-readable log, one decision per line.
func (j *Journal) Text() string {
	var b strings.Builder
	for _, d := range j.Decisions() {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("class%d", d.Class)
		}
		fmt.Fprintf(&b, "#%-3d epoch %-4d @%-10d %-12s %-24s", d.Seq, d.Epoch, d.Time, name, d.Rule)
		if d.Old != d.New {
			fmt.Fprintf(&b, " %d/%d/%d b%d a%d -> %d/%d/%d b%d a%d",
				d.Old.Private, d.Old.Visible, d.Old.Combining, d.Old.MaxBatch, d.Old.PubArray,
				d.New.Private, d.New.Visible, d.New.Combining, d.New.MaxBatch, d.New.PubArray)
		}
		ev := &d.Evidence
		fmt.Fprintf(&b, "  (ops %d, priv %.0f%%", ev.Ops, ev.PrivFrac*100)
		if ev.Attempts > 0 {
			fmt.Fprintf(&b, ", abort %.0f%% conflict %.0f%% of %d attempts",
				ev.AbortRate*100, ev.ConflictFrac*100, ev.Attempts)
		}
		if d.Rule == RuleDrift {
			fmt.Fprintf(&b, ", ewma %.2f", ev.EWMAAbortRate)
		}
		if ev.P99 > 0 {
			fmt.Fprintf(&b, ", p50 %d p99 %d", ev.P50, ev.P99)
		}
		if ev.CombiningDegree > 0 {
			fmt.Fprintf(&b, ", degree %.1f", ev.CombiningDegree)
		}
		for _, hl := range ev.HotLines {
			fmt.Fprintf(&b, "; hot line %d (%d aborts", hl.Line, hl.Aborts)
			if hl.TopWriter >= 0 {
				fmt.Fprintf(&b, ", top writer t%d", hl.TopWriter)
			}
			b.WriteString(")")
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// Prometheus renders the journal's aggregate state in the Prometheus text
// exposition format, labelled to coexist with the metrics exporter's
// samples in one scrape file.
func (j *Journal) Prometheus(scenario, engine string) string {
	esc := func(s string) string {
		s = strings.ReplaceAll(s, `\`, `\\`)
		s = strings.ReplaceAll(s, `"`, `\"`)
		return strings.ReplaceAll(s, "\n", `\n`)
	}
	base := fmt.Sprintf(`scenario="%s",engine="%s"`, esc(scenario), esc(engine))
	type key struct{ name, rule string }
	counts := make(map[key]uint64)
	var order []key
	var lastTime int64
	for _, d := range j.Decisions() {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("class%d", d.Class)
		}
		k := key{name, d.Rule}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
		lastTime = d.Time
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP hcf_tuner_decisions_total Policy autotuner decisions by class and rule.\n")
	fmt.Fprintf(&b, "# TYPE hcf_tuner_decisions_total counter\n")
	for _, k := range order {
		fmt.Fprintf(&b, "hcf_tuner_decisions_total{%s,class=\"%s\",rule=\"%s\"} %d\n",
			base, esc(k.name), esc(k.rule), counts[k])
	}
	fmt.Fprintf(&b, "# HELP hcf_tuner_last_decision_time Timestamp of the most recent decision.\n")
	fmt.Fprintf(&b, "# TYPE hcf_tuner_last_decision_time gauge\n")
	fmt.Fprintf(&b, "hcf_tuner_last_decision_time{%s} %d\n", base, lastTime)
	return b.String()
}
