package adaptive

import (
	"math"

	"hcf/internal/core"
	"hcf/internal/htm"
	"hcf/internal/metrics"
	"hcf/internal/trace"
)

// TunerConfig tunes the evidence-driven policy autotuner. Zero fields take
// defaults.
type TunerConfig struct {
	// MinOpsPerEpoch is the number of completions a class needs in an epoch
	// before it is considered (default 64); classes below it accumulate
	// evidence across epochs.
	MinOpsPerEpoch uint64
	// HighPrivate is the private-completion fraction above which a class is
	// treated as conflict-free (default 0.90): its private budget grows and,
	// once capped, its combining budget is dismantled.
	HighPrivate float64
	// LowPrivate is the fraction below which speculation is treated as
	// failing (default 0.40).
	LowPrivate float64
	// SkipConflict is the conflict-abort fraction of a class's finished
	// speculation attempts above which TryPrivate is skipped outright
	// (default 0.75). The skip rule needs trace-layer attribution: without
	// a collector it never fires, and the shrink rule (which respects
	// PrivateFloor) is the strongest response available.
	SkipConflict float64
	// MaxPrivate, MaxVisible and MaxCombining cap the trial budgets
	// (defaults 8, 8, 8).
	MaxPrivate   int
	MaxVisible   int
	MaxCombining int
	// PrivateFloor is the minimum private budget ordinary shrinking will
	// not cut below (default 2). Only the skip-private rule may cut to
	// zero, and only on SkipConflict-grade attribution evidence.
	PrivateFloor int
	// MaxBatchCap caps the combining batch bound (default 32).
	MaxBatchCap int
	// Hysteresis is how many consecutive epochs must agree on a rule before
	// it is applied (default 2) — one noisy epoch never moves a policy.
	Hysteresis int
	// Cooldown is how many epochs a class rests after a policy change
	// before being reconsidered (default 2), so a change's effect is
	// measured before the next one.
	Cooldown int
	// ReviveDegree is the mean combining-degree below which a class parked
	// in the combining phases gets its speculation revived immediately
	// (default 1.5): selections near one operation mean combining is not
	// batching, so its serialization is pure overhead. Needs a trace
	// collector (degree evidence).
	ReviveDegree float64
	// ProbeEpochs is how many qualifying epochs a class may stay parked
	// (below PrivateFloor trials) in the combining phases before the tuner
	// probes speculation again regardless of degree (default 4). A parked
	// class produces no speculative evidence, so the loop must periodically
	// buy some: revive-private re-grants PrivateFloor trials, and the next
	// epochs either keep them (completions go private) or re-park the class
	// through the ordinary skip/shrink rules.
	ProbeEpochs int
	// DriftAlpha is the abort-rate EWMA smoothing factor (default 0.25).
	DriftAlpha float64
	// DriftSwing is the absolute abort-rate deviation from the EWMA that
	// declares workload drift (default 0.30): the class's hysteresis and
	// cooldown reset so re-tuning starts immediately, and the journal
	// records the drift with its evidence.
	DriftSwing float64
	// HotLines is how many hot-line attributions a decision records
	// (default 3).
	HotLines int
}

func (c *TunerConfig) normalize() {
	if c.MinOpsPerEpoch == 0 {
		c.MinOpsPerEpoch = 64
	}
	if c.HighPrivate == 0 {
		c.HighPrivate = 0.90
	}
	if c.LowPrivate == 0 {
		c.LowPrivate = 0.40
	}
	if c.SkipConflict == 0 {
		c.SkipConflict = 0.75
	}
	if c.MaxPrivate == 0 {
		c.MaxPrivate = 8
	}
	if c.MaxVisible == 0 {
		c.MaxVisible = 8
	}
	if c.MaxCombining == 0 {
		c.MaxCombining = 8
	}
	if c.PrivateFloor == 0 {
		c.PrivateFloor = 2
	}
	if c.MaxBatchCap == 0 {
		c.MaxBatchCap = 32
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2
	}
	if c.ReviveDegree == 0 {
		c.ReviveDegree = 1.5
	}
	if c.ProbeEpochs == 0 {
		c.ProbeEpochs = 4
	}
	if c.DriftAlpha == 0 {
		c.DriftAlpha = 0.25
	}
	if c.DriftSwing == 0 {
		c.DriftSwing = 0.30
	}
	if c.HotLines == 0 {
		c.HotLines = 3
	}
}

// classState is the tuner's per-class memory between epochs.
type classState struct {
	prevPhase   [core.NumPhases]uint64
	prevReasons [htm.NumReasons]uint64
	prevSel     [2]uint64 // {selections, summed size} by this class's combiners
	prevHist    metrics.HistogramSnapshot
	// ewma smooths the abort-rate history for drift detection.
	ewma   float64
	ewmaOK bool
	// streak counts consecutive epochs proposing streakRule (hysteresis).
	streakRule string
	streak     int
	// cooldown is epochs left before the class is reconsidered.
	cooldown int
	// parked counts qualifying epochs spent below PrivateFloor in the
	// combining phases, pacing the revive-private probe.
	parked int
	// combining is the class's combining-phase completions last epoch
	// (scratch for the cross-class spread rule).
	combining uint64
	active    bool
}

// Tuner is the evidence-driven per-class policy autotuner: it closes the
// observability loop by consuming the signals the metrics and trace layers
// already produce — per-class phase-completion profiles, per-class×phase
// attempt taxonomy with conflict attribution (hot cache lines, dominant
// writers), per-class latency histograms and combiner selection sizes —
// and turning them into full phase-policy changes: skipping TryPrivate for
// always-conflicting classes, promoting conflict-free classes out of
// combining, shifting trial budgets, tuning the combining batch bound, and
// spreading combining classes over spare publication arrays.
//
// Both evidence sources are optional: with only the framework's phase
// breakdown the tuner degrades to budget shifting (the Controller's
// ability), each extra source enabling the richer rules. Every change is
// recorded in the decision Journal together with the evidence that
// triggered it.
//
// Like the Controller, the tuner only ever adjusts performance knobs, so
// tuning is safe while operations are in flight. Call Step periodically
// from a single thread; concurrent Steps are not supported (journal
// readers need no coordination).
type Tuner struct {
	fw  *core.Framework
	rec *metrics.Recorder
	col *trace.Collector
	cfg TunerConfig

	cls     []classState
	journal *Journal
	epoch   uint64

	// spreadStreak/spreadCooldown apply hysteresis to the cross-class
	// spread-array rule.
	spreadStreak   int
	spreadCooldown int

	// Steps counts Step calls (for tests/diagnostics).
	Steps int
}

// NewTuner builds a tuner for fw. rec (latency histograms) and col
// (abort attribution) are optional evidence sources; nil disables the
// rules that need them. The recorder's class dimension and the collector's
// class attribution must be indexed like fw's policies (the harness
// instruments engines exactly that way).
func NewTuner(fw *core.Framework, rec *metrics.Recorder, col *trace.Collector, cfg TunerConfig) *Tuner {
	cfg.normalize()
	t := &Tuner{
		fw:      fw,
		rec:     rec,
		col:     col,
		cfg:     cfg,
		cls:     make([]classState, fw.NumClasses()),
		journal: &Journal{},
	}
	pb := fw.PhaseBreakdown()
	ca := t.classAttempts()
	cs := t.classSelections()
	for class := range t.cls {
		st := &t.cls[class]
		st.prevPhase = pb[class]
		st.prevReasons = sumReasons(ca, class)
		st.prevSel = selOf(cs, class)
		if rec != nil {
			st.prevHist = rec.ClassHistogram(class)
		}
	}
	return t
}

// Journal returns the tuner's decision journal. It is safe to read (and
// export) from any thread at any time.
func (t *Tuner) Journal() *Journal { return t.journal }

// Snapshot reports the framework's current per-class policy state.
func (t *Tuner) Snapshot() Snapshot { return snapshotOf(t.fw) }

// classAttempts snapshots the collector's per-class attempt taxonomy (nil
// without a collector).
func (t *Tuner) classAttempts() [][core.NumPhases][htm.NumReasons]uint64 {
	if t.col == nil {
		return nil
	}
	return t.col.ClassAttempts()
}

// classSelections snapshots the collector's per-class combiner-selection
// totals (nil without a collector).
func (t *Tuner) classSelections() [][2]uint64 {
	if t.col == nil {
		return nil
	}
	return t.col.ClassSelections()
}

// selOf indexes a per-class selection snapshot, tolerating short slices.
func selOf(cs [][2]uint64, class int) [2]uint64 {
	if class >= len(cs) {
		return [2]uint64{}
	}
	return cs[class]
}

// sumReasons folds one class's attempt taxonomy over phases.
func sumReasons(ca [][core.NumPhases][htm.NumReasons]uint64, class int) [htm.NumReasons]uint64 {
	var out [htm.NumReasons]uint64
	if class >= len(ca) {
		return out
	}
	for p := 0; p < core.NumPhases; p++ {
		for r := 0; r < htm.NumReasons; r++ {
			out[r] += ca[class][p][r]
		}
	}
	return out
}

// Step closes the current epoch: it reads each class's evidence deltas
// since the previous Step, detects drift, and applies at most one policy
// change per class (plus at most one cross-class array spread), journaling
// every change. now stamps the epoch's decisions — pass the driving
// thread's clock (th.Now()) so journals replay deterministically.
func (t *Tuner) Step(now int64) {
	t.epoch++
	t.Steps++
	pb := t.fw.PhaseBreakdown()
	ca := t.classAttempts()
	cs := t.classSelections()
	for class := range t.cls {
		st := &t.cls[class]
		st.active = false
		var phase [core.NumPhases]uint64
		var total uint64
		for p := 0; p < core.NumPhases; p++ {
			phase[p] = pb[class][p] - st.prevPhase[p]
			total += phase[p]
		}
		if total < t.cfg.MinOpsPerEpoch {
			continue // not enough signal; keep accumulating
		}
		reasons := sumReasons(ca, class)
		var delta [htm.NumReasons]uint64
		var attempts uint64
		for r := 0; r < htm.NumReasons; r++ {
			delta[r] = reasons[r] - st.prevReasons[r]
			attempts += delta[r]
		}
		sel := selOf(cs, class)
		dSel, dSelOps := sel[0]-st.prevSel[0], sel[1]-st.prevSel[1]
		// Commit the epoch window before deciding anything.
		st.prevPhase = pb[class]
		st.prevReasons = reasons
		st.prevSel = sel
		st.active = true
		st.combining = phase[core.PhaseTryCombining] + phase[core.PhaseCombineUnderLock]

		ev := Evidence{
			Ops:              total,
			PhaseCompletions: phase,
			PrivFrac:         float64(phase[core.PhaseTryPrivate]) / float64(total),
			Attempts:         attempts,
			Peer:             -1,
		}
		if dSel > 0 {
			ev.CombiningDegree = float64(dSelOps) / float64(dSel)
		}
		if attempts > 0 {
			ev.AbortRate = float64(attempts-delta[htm.ReasonNone]) / float64(attempts)
			ev.ConflictFrac = float64(delta[htm.ReasonConflict]) / float64(attempts)
		}
		if t.rec != nil {
			cur := t.rec.ClassHistogram(class)
			d := cur.Sub(&st.prevHist)
			st.prevHist = cur
			if d.Count > 0 {
				ev.P50 = d.Quantile(0.50)
				ev.P99 = d.Quantile(0.99)
			}
		}

		// Drift detection: an abort rate that jumps away from its smoothed
		// history means the workload changed character. Reset hysteresis
		// and cooldown so re-tuning starts now, and journal the evidence.
		if attempts > 0 {
			if st.ewmaOK && math.Abs(ev.AbortRate-st.ewma) > t.cfg.DriftSwing {
				ev.EWMAAbortRate = st.ewma
				ev.HotLines = t.hotLines(class)
				cur := t.fw.PolicyState(class)
				t.journal.append(Decision{
					Epoch: t.epoch, Time: now, Class: class, Name: t.fw.ClassName(class),
					Rule: RuleDrift, Old: cur, New: cur, Evidence: ev,
				})
				st.ewma = ev.AbortRate
				st.streak, st.streakRule, st.cooldown = 0, "", 0
			} else {
				if st.ewmaOK {
					st.ewma += t.cfg.DriftAlpha * (ev.AbortRate - st.ewma)
				} else {
					st.ewma, st.ewmaOK = ev.AbortRate, true
				}
				ev.EWMAAbortRate = st.ewma
			}
		}

		if st.cooldown > 0 {
			st.cooldown--
			continue
		}
		rule := t.decide(class, &ev)
		if rule == "" {
			st.streak, st.streakRule = 0, ""
			continue
		}
		// Hysteresis guards against acting on one noisy epoch — but a
		// revive probe is paced by its own schedule (ProbeEpochs), not
		// triggered by evidence, and granting floor trials is cheap and
		// reversible, so it applies immediately.
		if rule != RuleRevivePrivate {
			if rule != st.streakRule {
				st.streakRule, st.streak = rule, 1
			} else {
				st.streak++
			}
			if st.streak < t.cfg.Hysteresis {
				continue
			}
		}
		t.apply(class, rule, &ev, now)
		st.streak, st.streakRule = 0, ""
		st.cooldown = t.cfg.Cooldown
	}
	t.trySpread(now)
}

// hotLines returns class's top conflict attributions (nil without a
// collector).
func (t *Tuner) hotLines(class int) []trace.HotLine {
	if t.col == nil {
		return nil
	}
	return t.col.ClassHotLines(class, t.cfg.HotLines)
}

// decide proposes a rule for one class from this epoch's evidence, or ""
// when the current policy looks right.
func (t *Tuner) decide(class int, ev *Evidence) string {
	pol := t.fw.PolicyState(class)
	switch {
	case ev.PrivFrac >= t.cfg.HighPrivate:
		// Conflict-free class: speculation wins nearly always.
		if pol.Private < t.cfg.MaxPrivate {
			return RuleGrowPrivate
		}
		if pol.Combining > 0 {
			return RulePromote
		}
	case ev.PrivFrac <= t.cfg.LowPrivate && pol.Private > 0:
		// Configured speculation is failing. With attribution evidence that
		// the failures are conflicts (not capacity or lock pressure), skip
		// TryPrivate outright; otherwise shrink toward combining but keep
		// the floor. A class with zero private trials is deliberately
		// parked, not failing — its PrivFrac of 0 is configuration, not
		// evidence, so it never enters this branch.
		if t.col != nil &&
			ev.Attempts >= t.cfg.MinOpsPerEpoch && ev.ConflictFrac >= t.cfg.SkipConflict {
			return RuleSkipPrivate
		}
		if pol.Private > t.cfg.PrivateFloor || pol.Visible > 0 || pol.Combining < t.cfg.MaxCombining {
			return RuleShrinkPrivate
		}
	}
	// Rules for classes that live in the combining phases, driven by the
	// epoch's mean selection size: combining pays only when batches form.
	combFrac := float64(ev.PhaseCompletions[core.PhaseTryCombining]+ev.PhaseCompletions[core.PhaseCombineUnderLock]) / float64(ev.Ops)
	if combFrac >= 0.5 {
		if pol.Private < t.cfg.PrivateFloor {
			// A parked class yields no speculative evidence, so the loop
			// buys some: immediately when combining degenerates to solo
			// selections (serialization without batching), and otherwise
			// every ProbeEpochs epochs as an exploration probe. The epochs
			// after the revival decide — completions going private keep the
			// trials, conflict-dominated aborts re-park the class.
			st := &t.cls[class]
			st.parked++
			if ev.CombiningDegree > 0 && ev.CombiningDegree < t.cfg.ReviveDegree {
				return RuleRevivePrivate
			}
			if st.parked >= t.cfg.ProbeEpochs {
				return RuleRevivePrivate
			}
		}
		// Batches saturate the bound: widen it; selections stay far below:
		// narrow it (smaller transactions abort less).
		if ev.CombiningDegree >= 0.8*float64(pol.MaxBatch) && pol.MaxBatch < t.cfg.MaxBatchCap {
			return RuleWidenBatch
		}
		if ev.CombiningDegree > 0 && ev.CombiningDegree <= 0.25*float64(pol.MaxBatch) && pol.MaxBatch > 2 {
			return RuleNarrowBatch
		}
	}
	return ""
}

// apply executes rule for class and journals the change. Budgets are
// re-read at apply time and every write is clamped into the tuner's
// bounds, so a concurrent user SetTrials is never echoed back outside
// them (the Controller.adjust contract).
func (t *Tuner) apply(class int, rule string, ev *Evidence, now int64) {
	old := t.fw.PolicyState(class)
	pol := old
	switch rule {
	case RuleGrowPrivate:
		pol.Private++
	case RulePromote:
		pol.Combining--
	case RuleSkipPrivate:
		pol.Private = 0
		ev.HotLines = t.hotLines(class)
		t.cls[class].parked = 0
	case RuleRevivePrivate:
		pol.Private = t.cfg.PrivateFloor
		t.cls[class].parked = 0
	case RuleShrinkPrivate:
		if pol.Private > t.cfg.PrivateFloor {
			pol.Private--
		}
		if pol.Visible > 0 {
			pol.Visible--
		}
		pol.Combining++
		ev.HotLines = t.hotLines(class)
	case RuleWidenBatch:
		pol.MaxBatch *= 2
	case RuleNarrowBatch:
		pol.MaxBatch /= 2
	}
	// Clamp everything we write; skip-private is the only rule allowed
	// below the floor.
	lo := 0
	if rule != RuleSkipPrivate && old.Private >= t.cfg.PrivateFloor {
		lo = t.cfg.PrivateFloor
	}
	pol.Private = min(max(pol.Private, lo), t.cfg.MaxPrivate)
	pol.Visible = min(max(pol.Visible, 0), t.cfg.MaxVisible)
	pol.Combining = min(max(pol.Combining, 0), t.cfg.MaxCombining)
	pol.MaxBatch = min(max(pol.MaxBatch, 1), t.cfg.MaxBatchCap)
	if pol == old {
		return // nothing to write (and nothing to journal)
	}
	if pol.Private != old.Private || pol.Visible != old.Visible || pol.Combining != old.Combining {
		t.fw.SetTrials(class, pol.Private, pol.Visible, pol.Combining)
	}
	if pol.MaxBatch != old.MaxBatch {
		t.fw.SetMaxBatch(class, pol.MaxBatch)
	}
	t.journal.append(Decision{
		Epoch: t.epoch, Time: now, Class: class, Name: t.fw.ClassName(class),
		Rule: rule, Old: old, New: pol, Evidence: *ev,
	})
}

// trySpread applies the one cross-class rule: when two classes both
// completing work in the combining phases share a publication array and a
// spare array is provisioned (core.Config.ExtraArrays), move the
// lighter class to the spare so the two combiners stop competing for one
// selection lock. At most one move per Step, with the same hysteresis and
// cooldown discipline as the per-class rules.
func (t *Tuner) trySpread(now int64) {
	if t.spreadCooldown > 0 {
		t.spreadCooldown--
		return
	}
	heavy, light := -1, -1
	used := make(map[int]bool, t.fw.NumClasses())
	for class := range t.cls {
		used[t.fw.PubArrayOf(class)] = true
	}
	if len(used) >= t.fw.NumArrays() {
		t.spreadStreak = 0
		return // no spare array to spread onto
	}
	for a := range t.cls {
		sa := &t.cls[a]
		if !sa.active || sa.combining < t.cfg.MinOpsPerEpoch/4 {
			continue
		}
		for bi := a + 1; bi < len(t.cls); bi++ {
			sb := &t.cls[bi]
			if !sb.active || sb.combining < t.cfg.MinOpsPerEpoch/4 {
				continue
			}
			if t.fw.PubArrayOf(a) != t.fw.PubArrayOf(bi) {
				continue
			}
			heavy, light = a, bi
			if sb.combining > sa.combining {
				heavy, light = bi, a
			}
			break
		}
		if heavy >= 0 {
			break
		}
	}
	if heavy < 0 {
		t.spreadStreak = 0
		return
	}
	t.spreadStreak++
	if t.spreadStreak < t.cfg.Hysteresis {
		return
	}
	spare := -1
	for a := 0; a < t.fw.NumArrays(); a++ {
		if !used[a] {
			spare = a
			break
		}
	}
	old := t.fw.PolicyState(light)
	if err := t.fw.SetPubArray(light, spare); err != nil {
		return
	}
	pol := old
	pol.PubArray = spare
	t.journal.append(Decision{
		Epoch: t.epoch, Time: now, Class: light, Name: t.fw.ClassName(light),
		Rule: RuleSpreadArray, Old: old, New: pol,
		Evidence: Evidence{
			Ops:  t.cls[light].combining,
			Peer: heavy,
		},
	})
	t.spreadStreak = 0
	t.spreadCooldown = t.cfg.Cooldown
}
