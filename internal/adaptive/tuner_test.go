package adaptive

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hcf/internal/core"
	"hcf/internal/memsim"
	"hcf/internal/trace"
)

// TestTunerGrowsAndPromotesConflictFree drives only conflict-free work: the
// tuner must grow the class's private budget to the cap and then dismantle
// its combining budget, journaling each step with its evidence.
func TestTunerGrowsAndPromotesConflictFree(t *testing.T) {
	const threads = 8
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := twoClassFramework(t, env)
	tun := NewTuner(fw, nil, nil, TunerConfig{
		MinOpsPerEpoch: 16, MaxPrivate: 6, Hysteresis: 1, Cooldown: 1,
	})
	cold := make([]memsim.Addr, threads)
	for i := range cold {
		cold[i] = env.Alloc(memsim.WordsPerLine)
	}
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 600; i++ {
			fw.Execute(th, coldOp{addr: cold[th.ID()]})
			if th.ID() == 0 && i%10 == 9 {
				tun.Step(th.Now())
			}
		}
	})
	p, _, c := fw.Trials(1)
	if p != 6 {
		t.Errorf("cold private budget = %d, want cap 6", p)
	}
	if c != 0 {
		t.Errorf("cold combining budget = %d, want 0 after promotion", c)
	}
	var grows, promotes int
	for _, d := range tun.Journal().Decisions() {
		if d.Class != 1 {
			t.Errorf("decision on idle class: %+v", d)
		}
		switch d.Rule {
		case RuleGrowPrivate:
			grows++
		case RulePromote:
			promotes++
		}
		if d.Evidence.PrivFrac < 0.9 {
			t.Errorf("%s fired on priv_frac %.2f", d.Rule, d.Evidence.PrivFrac)
		}
	}
	if grows != 2 || promotes != 2 {
		t.Errorf("journal has %d grows and %d promotes, want 2 and 2\n%s",
			grows, promotes, tun.Journal().Text())
	}
}

// TestTunerSkipsPrivateOnConflictEvidence drives always-conflicting work
// with trace attribution attached: the tuner must cut TryPrivate to zero
// and record the hot line (with its dominant writer) as evidence.
func TestTunerSkipsPrivateOnConflictEvidence(t *testing.T) {
	const threads = 12
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := twoClassFramework(t, env)
	col := &trace.Collector{Limit: 1}
	fw.SetTracer(col)
	tun := NewTuner(fw, nil, col, TunerConfig{
		MinOpsPerEpoch: 16, LowPrivate: 0.85, SkipConflict: 0.5,
		Hysteresis: 1, Cooldown: 1, ProbeEpochs: 1 << 30, // stay parked once skipped
	})
	hot := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 400; i++ {
			fw.Execute(th, hotOp{addr: hot})
			if th.ID() == 0 && i%10 == 9 {
				tun.Step(th.Now())
			}
		}
	})
	p, _, _ := fw.Trials(0)
	if p != 0 {
		t.Fatalf("hot private budget = %d, want 0 after skip\n%s", p, tun.Journal().Text())
	}
	var skip *Decision
	for _, d := range tun.Journal().Decisions() {
		if d.Rule == RuleSkipPrivate {
			skip = &d
			break
		}
	}
	if skip == nil {
		t.Fatalf("no skip-private decision\n%s", tun.Journal().Text())
	}
	if skip.New.Private != 0 {
		t.Errorf("skip-private wrote private=%d", skip.New.Private)
	}
	if skip.Evidence.ConflictFrac < 0.5 {
		t.Errorf("skip fired on conflict_frac %.2f", skip.Evidence.ConflictFrac)
	}
	if len(skip.Evidence.HotLines) == 0 {
		t.Error("skip-private decision carries no hot-line attribution")
	} else if hl := skip.Evidence.HotLines[0]; hl.Aborts == 0 || hl.TopWriter < 0 {
		t.Errorf("hot-line evidence incomplete: %+v", hl)
	}
}

// TestTunerProbeRevivesParkedClass parks a class (zero private trials) on
// conflict-free work with no trace collector: the scheduled probe alone
// must revive speculation, and the following epochs must grow it.
func TestTunerProbeRevivesParkedClass(t *testing.T) {
	const threads = 4
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := twoClassFramework(t, env)
	fw.SetTrials(0, 0, 0, 4)
	tun := NewTuner(fw, nil, nil, TunerConfig{
		MinOpsPerEpoch: 8, ProbeEpochs: 2, Hysteresis: 1, Cooldown: 1,
	})
	cold := make([]memsim.Addr, threads)
	for i := range cold {
		cold[i] = env.Alloc(memsim.WordsPerLine)
	}
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 400; i++ {
			fw.Execute(th, hotOp{addr: cold[th.ID()]})
			if th.ID() == 0 && i%10 == 9 {
				tun.Step(th.Now())
			}
		}
	})
	ds := tun.Journal().Decisions()
	if len(ds) == 0 || ds[0].Rule != RuleRevivePrivate {
		t.Fatalf("first decision is not revive-private\n%s", tun.Journal().Text())
	}
	if ds[0].Old.Private != 0 || ds[0].New.Private != 2 {
		t.Errorf("revive wrote %d -> %d, want 0 -> floor 2", ds[0].Old.Private, ds[0].New.Private)
	}
	p, _, _ := fw.Trials(0)
	if p < 2 {
		t.Errorf("private budget = %d after probe, want >= floor", p)
	}
	var grows int
	for _, d := range ds[1:] {
		if d.Rule == RuleGrowPrivate {
			grows++
		}
	}
	if grows == 0 {
		t.Errorf("probe evidence never converted into growth\n%s", tun.Journal().Text())
	}
}

// TestTunerJournalDeterministic pins the replay contract: the same seed on
// the deterministic backend yields a byte-identical journal JSON.
func TestTunerJournalDeterministic(t *testing.T) {
	run := func() []byte {
		const threads = 8
		env := memsim.NewDet(memsim.DetConfig{Threads: threads})
		fw := twoClassFramework(t, env)
		col := &trace.Collector{Limit: 1}
		fw.SetTracer(col)
		tun := NewTuner(fw, nil, col, TunerConfig{MinOpsPerEpoch: 16, Hysteresis: 1, Cooldown: 1})
		hot := env.Alloc(1)
		cold := make([]memsim.Addr, threads)
		for i := range cold {
			cold[i] = env.Alloc(memsim.WordsPerLine)
		}
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 300; i++ {
				fw.Execute(th, hotOp{addr: hot})
				fw.Execute(th, coldOp{addr: cold[th.ID()]})
				if th.ID() == 0 && i%10 == 9 {
					tun.Step(th.Now())
				}
			}
		})
		out, err := tun.Journal().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if tun.Journal().Len() == 0 {
			t.Fatal("journal empty; test exercised nothing")
		}
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("journal JSON differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	var ds []Decision
	if err := json.Unmarshal(a, &ds); err != nil {
		t.Fatalf("journal JSON does not round-trip: %v", err)
	}
	for i, d := range ds {
		if d.Seq != i {
			t.Errorf("decision %d has seq %d", i, d.Seq)
		}
	}
}

// TestTunerIdleIsInvisible runs the same workload with and without a tuner
// whose epoch gate never passes: budgets, journal, results and per-thread
// virtual clocks must all be indistinguishable from the tunerless run.
func TestTunerIdleIsInvisible(t *testing.T) {
	const threads = 6
	run := func(withTuner bool) (uint64, []int64) {
		env := memsim.NewDet(memsim.DetConfig{Threads: threads})
		fw := twoClassFramework(t, env)
		var tun *Tuner
		if withTuner {
			tun = NewTuner(fw, nil, nil, TunerConfig{MinOpsPerEpoch: 1 << 60})
		}
		hot := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 200; i++ {
				fw.Execute(th, hotOp{addr: hot})
				if tun != nil && th.ID() == 0 {
					tun.Step(th.Now())
				}
			}
		})
		if withTuner {
			if tun.Journal().Len() != 0 {
				t.Fatalf("idle tuner recorded decisions:\n%s", tun.Journal().Text())
			}
			p, v, c := fw.Trials(0)
			if p != 4 || v != 3 || c != 2 {
				t.Fatalf("idle tuner changed budgets: %d/%d/%d", p, v, c)
			}
		}
		clocks := make([]int64, threads)
		for i := range clocks {
			clocks[i] = env.Now(i)
		}
		return env.Boot().Load(hot), clocks
	}
	plainOps, plainClocks := run(false)
	tunedOps, tunedClocks := run(true)
	if plainOps != tunedOps {
		t.Fatalf("op counts differ: %d vs %d", plainOps, tunedOps)
	}
	for i := range plainClocks {
		if plainClocks[i] != tunedClocks[i] {
			t.Fatalf("thread %d clock perturbed by idle tuner: %d vs %d",
				i, plainClocks[i], tunedClocks[i])
		}
	}
}

// TestTunerConcurrentSetTrialsRespectsClamps stresses the apply-time
// read-modify-write under schedule exploration: a hostile thread keeps
// installing out-of-bounds budgets, and every budget the tuner writes back
// (i.e. every journaled decision) must respect its configured caps.
func TestTunerConcurrentSetTrialsRespectsClamps(t *testing.T) {
	const (
		threads      = 6
		maxPrivate   = 5
		maxCombining = 5
	)
	for seed := uint64(0); seed < 12; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 32, JitterClass: 2},
		})
		fw := twoClassFramework(t, env)
		tun := NewTuner(fw, nil, nil, TunerConfig{
			MinOpsPerEpoch: 16, LowPrivate: 0.85,
			MaxPrivate: maxPrivate, MaxCombining: maxCombining,
			Hysteresis: 1, Cooldown: 1,
		})
		hot := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 300; i++ {
				fw.Execute(th, hotOp{addr: hot})
				switch {
				case th.ID() == 0 && i%25 == 24:
					tun.Step(th.Now())
				case th.ID() == 1 && i%40 == 10:
					fw.SetTrials(0, 0, 1, 50)
				}
			}
		})
		if tun.Journal().Len() == 0 {
			t.Fatalf("seed %d: tuner never decided; test exercised nothing", seed)
		}
		for _, d := range tun.Journal().Decisions() {
			n := d.New
			if n.Private < 0 || n.Private > maxPrivate || n.Visible < 0 || n.Combining < 0 || n.Combining > maxCombining {
				t.Fatalf("seed %d: journaled write violates clamps: %+v", seed, d)
			}
		}
	}
}

// TestJournalRenders sanity-checks the three export formats on a synthetic
// journal.
func TestJournalRenders(t *testing.T) {
	j := &Journal{}
	j.append(Decision{Epoch: 3, Time: 700, Class: 0, Name: "insert", Rule: RuleGrowPrivate,
		Old: core.PolicyState{Private: 2, MaxBatch: 8}, New: core.PolicyState{Private: 3, MaxBatch: 8},
		Evidence: Evidence{Ops: 64, PrivFrac: 0.97, Peer: -1}})
	j.append(Decision{Epoch: 5, Time: 900, Class: 1, Name: "removemin", Rule: RuleDrift,
		Old: core.PolicyState{Combining: 4}, New: core.PolicyState{Combining: 4},
		Evidence: Evidence{Ops: 80, AbortRate: 0.7, EWMAAbortRate: 0.2, Attempts: 40, Peer: -1,
			HotLines: []trace.HotLine{{Line: 7, Aborts: 12, TopWriter: 3}}}})
	text := j.Text()
	for _, want := range []string{"grow-private", "drift-reset", "insert", "removemin", "hot line 7"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	prom := j.Prometheus("pqueue/drift", "HCF-tuned")
	for _, want := range []string{
		`hcf_tuner_decisions_total{scenario="pqueue/drift",engine="HCF-tuned",class="insert",rule="grow-private"} 1`,
		`hcf_tuner_last_decision_time{scenario="pqueue/drift",engine="HCF-tuned"} 900`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus() missing %q:\n%s", want, prom)
		}
	}
	out, err := j.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rule": "grow-private"`, `"ewma_abort_rate": 0.2`, `"hot_lines"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
