// Package core implements the HTM-assisted Combining Framework (HCF), the
// contribution of "Transactional Lock Elision Meets Combining" (Kogan & Lev,
// PODC 2017).
//
// HCF executes operations of a sequentially implemented data structure
// protected by a lock. Each operation goes through at most four phases:
//
//  1. TryPrivate — the owner tries to apply the operation in a hardware
//     transaction, like TLE.
//  2. TryVisible — the owner announces the operation in a publication array
//     and keeps trying transactions; the announcement is removed inside the
//     same transaction that applies the operation.
//  3. TryCombining — a thread acquires the array's selection lock, selects a
//     subset of announced operations (including its own), and applies them
//     with one or more hardware transactions, combining and eliminating
//     them using data-structure-specific code.
//  4. CombineUnderLock — the combiner acquires the data-structure lock and
//     applies the remaining selected operations pessimistically.
//
// Multiple publication arrays with per-class policies let conflict-prone
// operations be combined while conflict-free operations run concurrently on
// HTM. The configuration affects only performance, never correctness: every
// operation is applied exactly once (§2.3).
//
// The phases are compositions of the reusable stage primitives in
// internal/phases (speculative loop, lock path, combining session); the
// same primitives build the baseline engines in internal/engines.
package core

import (
	"fmt"
	"sync/atomic"

	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/phases"
	"hcf/internal/pubarr"
)

// Phase identifies where an operation completed (for Figure 3). It is the
// shared phase vocabulary from internal/engine, re-exported for the
// framework's public surface.
type Phase = engine.Phase

// The four phases of HCF.
const (
	PhaseTryPrivate       = engine.PhaseTryPrivate
	PhaseTryVisible       = engine.PhaseTryVisible
	PhaseTryCombining     = engine.PhaseTryCombining
	PhaseCombineUnderLock = engine.PhaseCombineUnderLock
	// NumPhases is the number of phases.
	NumPhases = engine.NumPhases
)

// Policy configures how HCF handles one operation class (paper §2.1-2.2,
// §2.4). TLE behaviour is a policy with only TryPrivate trials and a
// HelpNone selector; FC behaviour is a policy with zero trials everywhere
// and a HelpAll selector.
type Policy struct {
	// Name labels the class in statistics output.
	Name string
	// PubArray selects which publication array announces this class.
	PubArray int
	// TryPrivateTrials, TryVisibleTrials and TryCombiningTrials budget the
	// HTM attempts in the first three phases.
	TryPrivateTrials   int
	TryVisibleTrials   int
	TryCombiningTrials int
	// ShouldHelp decides which announced operations a combiner running an
	// operation of this class selects. Nil means engine.HelpAll.
	ShouldHelp engine.ShouldHelpFunc
	// RunMulti combines and applies a batch of selected operations. Nil
	// means engine.ApplyEach (no combining).
	RunMulti engine.CombineFunc
	// MaxBatch bounds how many selected operations are passed to a single
	// RunMulti call (so each call fits one hardware transaction). 0 means
	// a default of 8.
	MaxBatch int
}

// Config configures a Framework.
type Config struct {
	// Policies, indexed by Op.Class(), must be non-empty.
	Policies []Policy
	// Lock is the data-structure lock L; nil allocates a TATAS lock.
	Lock locks.Lock
	// NewSelectionLock constructs each publication array's selection lock;
	// nil allocates TATAS locks.
	NewSelectionLock func(env memsim.Env) locks.Lock
	// HoldSelectionLock enables the specialized variant of §2.4: a
	// combiner holds the selection lock for its entire combining pass
	// (not just the selection), preventing TryVisible attempts of the same
	// array from running concurrently with it.
	HoldSelectionLock bool
	// HTM configures the transactional engine.
	HTM htm.Config
	// Name overrides the engine name (default "HCF").
	Name string
	// ExtraArrays provisions additional publication arrays beyond those
	// the policies reference, available for dynamic reassignment via
	// SetPubArray (paper §2.4's on-the-fly reconfiguration).
	ExtraArrays int
}

// array couples a publication array with its selection lock.
type array struct {
	pub *pubarr.Array
	sel locks.Lock
}

// threadMetrics holds one thread's counters, padded against false sharing.
type threadMetrics struct {
	m engine.Metrics
	// phaseByClass[class][phase] counts completions for Figure 3.
	phaseByClass [][NumPhases]uint64
	_            [32]byte
}

// budgets holds a class's speculation budgets and publication-array
// assignment, adjustable at run time (paper §2.4: the customization "may
// be dynamic — we can begin with a certain number of publication arrays
// and the way operations are assigned to them, and change that
// on-the-fly"; both affect only performance, never correctness).
type budgets struct {
	private   atomic.Int32
	visible   atomic.Int32
	combining atomic.Int32
	pubArray  atomic.Int32
	maxBatch  atomic.Int32
	_         [32]byte
}

// Framework is the HCF engine.
type Framework struct {
	env      memsim.Env
	eng      *htm.Engine
	lock     locks.Lock
	arrays   []*array
	policies []Policy
	budgets  []budgets
	hold     bool
	name     string
	descs    []phases.Desc
	metrics  []threadMetrics
	// scratch per thread for combining sessions
	scratch []phases.Scratch
	// sess distributes combining results over descs (see phases.Session).
	sess phases.Session
	// hooks carries the witness, recorder and trace emitter the phase
	// stages observe through; hooks.Em is always set (see trace.go).
	hooks phases.Hooks
	// tracer, when set, receives lifecycle events (see trace.go).
	tracer Tracer
}

var _ engine.Engine = (*Framework)(nil)

// New builds an HCF framework over env with the given configuration.
func New(env memsim.Env, cfg Config) (*Framework, error) {
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("core: config needs at least one policy")
	}
	numArrays := 0
	for i := range cfg.Policies {
		p := &cfg.Policies[i]
		if p.PubArray < 0 {
			return nil, fmt.Errorf("core: policy %d has negative PubArray", i)
		}
		if p.PubArray+1 > numArrays {
			numArrays = p.PubArray + 1
		}
		if p.ShouldHelp == nil {
			p.ShouldHelp = engine.HelpAll
		}
		if p.RunMulti == nil {
			p.RunMulti = engine.ApplyEach
		}
		if p.MaxBatch <= 0 {
			p.MaxBatch = 8
		}
		if p.TryPrivateTrials < 0 || p.TryVisibleTrials < 0 || p.TryCombiningTrials < 0 {
			return nil, fmt.Errorf("core: policy %d has negative trial budget", i)
		}
	}
	lock := cfg.Lock
	if lock == nil {
		lock = locks.NewTATAS(env)
	}
	newSel := cfg.NewSelectionLock
	if newSel == nil {
		newSel = func(env memsim.Env) locks.Lock { return locks.NewTATAS(env) }
	}
	name := cfg.Name
	if name == "" {
		name = "HCF"
	}
	total := env.NumThreads() + 1 // workers + bootstrap thread
	f := &Framework{
		env:      env,
		eng:      htm.New(env, cfg.HTM),
		lock:     lock,
		policies: cfg.Policies,
		hold:     cfg.HoldSelectionLock,
		name:     name,
		metrics:  make([]threadMetrics, total),
		scratch:  make([]phases.Scratch, total),
	}
	if cfg.ExtraArrays < 0 {
		return nil, fmt.Errorf("core: negative ExtraArrays")
	}
	for i := 0; i < numArrays+cfg.ExtraArrays; i++ {
		f.arrays = append(f.arrays, &array{
			pub: pubarr.New(env, total),
			sel: newSel(env),
		})
	}
	f.descs = phases.NewDescs(env, total)
	for t := range f.metrics {
		f.metrics[t].phaseByClass = make([][NumPhases]uint64, len(cfg.Policies))
	}
	f.sess = phases.Session{Descs: f.descs, H: &f.hooks}
	f.hooks.Em = fwEmitter{f}
	f.budgets = make([]budgets, len(cfg.Policies))
	for c := range cfg.Policies {
		f.budgets[c].private.Store(int32(cfg.Policies[c].TryPrivateTrials))
		f.budgets[c].visible.Store(int32(cfg.Policies[c].TryVisibleTrials))
		f.budgets[c].combining.Store(int32(cfg.Policies[c].TryCombiningTrials))
		f.budgets[c].pubArray.Store(int32(cfg.Policies[c].PubArray))
		f.budgets[c].maxBatch.Store(int32(cfg.Policies[c].MaxBatch))
	}
	return f, nil
}

// Trials returns class's current speculation budgets (private, visible,
// combining).
func (f *Framework) Trials(class int) (int, int, int) {
	b := &f.budgets[class]
	return int(b.private.Load()), int(b.visible.Load()), int(b.combining.Load())
}

// SetTrials adjusts class's speculation budgets at run time. Negative
// values are clamped to zero. Budgets affect performance only, never
// correctness (§2.1), so adjustment is safe while operations run.
func (f *Framework) SetTrials(class, private, visible, combining int) {
	b := &f.budgets[class]
	b.private.Store(int32(max(private, 0)))
	b.visible.Store(int32(max(visible, 0)))
	b.combining.Store(int32(max(combining, 0)))
}

// MaxBatch returns class's current per-transaction combining batch bound.
func (f *Framework) MaxBatch(class int) int {
	return int(f.budgets[class].maxBatch.Load())
}

// SetMaxBatch adjusts, at run time, how many selected operations a combiner
// passes to a single RunMulti call for class (so each call fits one hardware
// transaction). Values below 1 are clamped to 1. Like the trial budgets,
// the batch bound affects performance only, never correctness.
func (f *Framework) SetMaxBatch(class, n int) {
	f.budgets[class].maxBatch.Store(int32(max(n, 1)))
}

// NumClasses returns the number of configured operation classes.
func (f *Framework) NumClasses() int { return len(f.policies) }

// ClassName returns class's policy name ("" if unnamed).
func (f *Framework) ClassName(class int) string { return f.policies[class].Name }

// PolicyState is a JSON-marshalable snapshot of one class's runtime-
// adjustable policy knobs: the three speculation budgets, the combining
// batch bound, and the publication-array assignment.
type PolicyState struct {
	// Private, Visible and Combining are the speculation trial budgets.
	Private   int `json:"private"`
	Visible   int `json:"visible"`
	Combining int `json:"combining"`
	// MaxBatch bounds operations per RunMulti call.
	MaxBatch int `json:"max_batch"`
	// PubArray is the publication array the class announces to.
	PubArray int `json:"pub_array"`
}

// PolicyState snapshots class's current runtime policy knobs.
func (f *Framework) PolicyState(class int) PolicyState {
	b := &f.budgets[class]
	return PolicyState{
		Private:   int(b.private.Load()),
		Visible:   int(b.visible.Load()),
		Combining: int(b.combining.Load()),
		MaxBatch:  int(b.maxBatch.Load()),
		PubArray:  int(b.pubArray.Load()),
	}
}

// NumArrays returns the number of provisioned publication arrays.
func (f *Framework) NumArrays() int { return len(f.arrays) }

// PubArrayOf returns the publication array class currently announces to.
func (f *Framework) PubArrayOf(class int) int {
	return int(f.budgets[class].pubArray.Load())
}

// SetPubArray reassigns class to a different publication array on the fly
// (paper §2.4). The assignment is a performance knob, never a correctness
// one: an operation resolves its array once at the start of Execute and
// uses it for its whole lifetime, so in-flight announcements stay claimable
// by their array's combiners. Returns an error if array is out of range.
func (f *Framework) SetPubArray(class, array int) error {
	if class < 0 || class >= len(f.policies) {
		return fmt.Errorf("core: class %d out of range", class)
	}
	if array < 0 || array >= len(f.arrays) {
		return fmt.Errorf("core: publication array %d out of range (have %d)", array, len(f.arrays))
	}
	f.budgets[class].pubArray.Store(int32(array))
	return nil
}

// Name returns the engine name.
func (f *Framework) Name() string { return f.name }

// SetWitness installs a serialization-witness observer (nil disables).
func (f *Framework) SetWitness(fn engine.WitnessFunc) { f.hooks.Witness = fn }

var _ engine.WitnessedEngine = (*Framework)(nil)

// HTMEngine exposes the underlying transactional engine (for tests and
// statistics).
func (f *Framework) HTMEngine() *htm.Engine { return f.eng }

// Lock exposes the data-structure lock L.
func (f *Framework) Lock() locks.Lock { return f.lock }

// Execute runs op through the HCF phases and returns its result. It is the
// paper's Execute (§2.1): the operation completes in the first phase that
// succeeds, and is guaranteed to be applied exactly once.
func (f *Framework) Execute(th *memsim.Thread, op engine.Op) uint64 {
	t := th.ID()
	d := &f.descs[t]
	class := op.Class()
	pol := &f.policies[class]
	tm := &f.metrics[t]
	d.Op = op

	bud := &f.budgets[class]
	pa := f.arrays[bud.pubArray.Load()]
	start := f.opStart(th)
	if f.tracer != nil {
		d.SpanSeq++
		d.Span = SpanID(t, d.SpanSeq)
		d.Helper = -1
		d.HelperSpan = 0
	}
	f.emit(th, TraceEvent{Kind: TraceStart, Class: class, Peer: -1})
	if res, ok := f.tryPrivate(th, int(bud.private.Load()), op); ok {
		f.complete(tm, class, PhaseTryPrivate)
		f.finishOp(th, class, PhaseTryPrivate, start)
		f.emit(th, TraceEvent{Kind: TraceDone, Phase: PhaseTryPrivate, Peer: -1})
		return res
	}
	phases.Announce(th, t, d, pa.pub)
	f.emit(th, TraceEvent{Kind: TraceAnnounce, Class: class, Peer: -1})
	if res, phase, ok := f.tryVisible(th, t, d, int(bud.visible.Load()), pa, op); ok {
		f.complete(tm, class, phase)
		f.finishOp(th, class, phase, start)
		f.emit(th, TraceEvent{Kind: TraceDone, Phase: phase, Peer: -1})
		return res
	}
	res, phase := f.tryCombining(th, t, d, pol, int(bud.combining.Load()), int(bud.maxBatch.Load()), pa)
	f.complete(tm, class, phase)
	f.finishOp(th, class, phase, start)
	f.emit(th, TraceEvent{Kind: TraceDone, Phase: phase, Peer: -1})
	return res
}

func (f *Framework) complete(tm *threadMetrics, class int, phase Phase) {
	tm.m.Ops++
	tm.m.PhaseCompleted[phase]++
	tm.phaseByClass[class][phase]++
}

// tryPrivate implements the TryPrivate phase: up to trials transactional
// attempts that subscribe to L.
func (f *Framework) tryPrivate(th *memsim.Thread, trials int, op engine.Op) (uint64, bool) {
	var res uint64
	loop := phases.SpecLoop{Eng: f.eng, Em: f.hooks.Em, Phase: PhaseTryPrivate}
	ok := loop.Run(th, trials, func(tx *htm.Tx) {
		phases.SubscribeLock(tx, f.lock, f.hooks.Em)
		res = op.Apply(tx)
	}, func(htm.Reason) bool {
		// Standard TLE practice: wait for the lock to be free before
		// burning another speculation attempt.
		f.lock.WaitUnlocked(th)
		return true
	})
	if !ok {
		return 0, false
	}
	if f.hooks.Witness != nil {
		f.hooks.Witness(f.eng.CommitStamp(th.ID()), 0, op, res)
	}
	return res, true
}

// tryVisible implements the TryVisible phase. The transaction subscribes to
// L, to the selection lock, and to the operation's own status word, and
// removes the announcement inside the transaction that applies the
// operation — the three conditions the §2.3 exactly-once argument needs.
func (f *Framework) tryVisible(th *memsim.Thread, t int, d *phases.Desc, trials int, pa *array, op engine.Op) (uint64, Phase, bool) {
	slot := pa.pub.SlotAddr(t)
	var res uint64
	helped := false
	loop := phases.SpecLoop{Eng: f.eng, Em: f.hooks.Em, Phase: PhaseTryVisible}
	ok := loop.Run(th, trials, func(tx *htm.Tx) {
		phases.SubscribeLock(tx, f.lock, f.hooks.Em)
		phases.SubscribeLock(tx, pa.sel, f.hooks.Em)
		if tx.Load(d.Status) != phases.StatusAnnounced {
			tx.Abort()
		}
		res = op.Apply(tx)
		tx.Store(slot, 0) // remove from Pa as part of the transaction
	}, func(htm.Reason) bool {
		if th.Load(d.Status) != phases.StatusAnnounced {
			// A combiner helped or is helping us (Figure 1, line 27).
			helped = true
			return false
		}
		return true
	})
	if ok {
		if f.hooks.Witness != nil {
			f.hooks.Witness(f.eng.CommitStamp(t), 0, op, res)
		}
		return res, PhaseTryVisible, true
	}
	if helped {
		r := phases.WaitDone(th, d)
		f.emit(th, TraceEvent{Kind: TraceHelped, Phase: d.DonePhase, Peer: d.Helper, PeerSpan: d.HelperSpan})
		return r, d.DonePhase, true
	}
	return 0, 0, false
}

// tryCombining implements the TryCombining phase and, if speculation fails,
// falls through to CombineUnderLock. It always completes the calling
// thread's operation and returns its result and completion phase.
func (f *Framework) tryCombining(th *memsim.Thread, t int, d *phases.Desc, pol *Policy, trials, maxBatch int, pa *array) (uint64, Phase) {
	tm := &f.metrics[t]
	pa.sel.Lock(th)
	tm.m.AuxAcquisitions++
	if th.Load(d.Status) != phases.StatusAnnounced {
		// Our operation was selected by another combiner while we competed
		// for the selection lock (Figure 1, lines 38-41).
		pa.sel.Unlock(th)
		res := phases.WaitDone(th, d)
		f.emit(th, TraceEvent{Kind: TraceHelped, Phase: d.DonePhase, Peer: d.Helper, PeerSpan: d.HelperSpan})
		return res, d.DonePhase
	}
	sc := &f.scratch[t]
	f.chooseOpsToHelp(th, t, d, pol, pa, sc)
	if f.hooks.Rec != nil {
		f.hooks.Rec.RecordCombine(t, len(sc.Pend))
	}
	f.emit(th, TraceEvent{Kind: TraceSelect, N: len(sc.Pend), Peer: -1})
	if !f.hold {
		pa.sel.Unlock(th)
	}
	tm.m.CombinerSessions++
	tm.m.CombinedOps += uint64(len(sc.Pend))

	ownRes, ownPhase, ownDone := uint64(0), PhaseTryCombining, false

	// Speculative combining: apply batches of the selected operations with
	// hardware transactions, several operations per transaction.
	if r, done := f.sess.ApplySpeculative(th, t, sc, f.eng, f.lock, pol.RunMulti, maxBatch, trials, PhaseTryCombining); done {
		ownRes, ownDone = r, true
	}
	// CombineUnderLock: apply whatever is left while holding L.
	if len(sc.Pend) > 0 {
		f.lock.Lock(th)
		tm.m.LockAcquisitions++
		var lockStart int64
		if f.hooks.Rec != nil {
			lockStart = th.Now()
		}
		f.emit(th, TraceEvent{Kind: TraceLock, Peer: -1})
		if r, done := f.sess.ApplyLocked(th, t, sc, pol.RunMulti, maxBatch, PhaseCombineUnderLock); done {
			ownRes, ownPhase, ownDone = r, PhaseCombineUnderLock, true
		}
		if f.hooks.Rec != nil {
			f.hooks.Rec.RecordLockHold(t, th.Now()-lockStart)
		}
		f.lock.Unlock(th)
	}
	if f.hold {
		pa.sel.Unlock(th)
	}
	if !ownDone {
		// Cannot happen: chooseOpsToHelp always selects our own operation
		// and the apply stages drain Pend completely.
		panic("core: combiner finished without completing its own operation")
	}
	return ownRes, ownPhase
}

// chooseOpsToHelp scans the publication array while holding its selection
// lock, selecting the combiner's own operation plus every announced
// operation its ShouldHelp accepts. Selected operations transition to
// BeingHelped and are removed from the array (paper §2.2). The scan needs
// no snapshot: owners cannot remove announcements while the selection lock
// is held, because their transactions subscribe to it.
func (f *Framework) chooseOpsToHelp(th *memsim.Thread, t int, d *phases.Desc, pol *Policy, pa *array, sc *phases.Scratch) {
	sc.Pend = sc.Pend[:0]
	// Claim our own operation first (chosen by default).
	th.Store(d.Status, phases.StatusBeingHelped)
	pa.pub.Clear(th, t)
	sc.Pend = append(sc.Pend, t)
	for tid := 0; tid < pa.pub.Slots(); tid++ {
		if tid == t || pa.pub.Read(th, tid) == 0 {
			continue
		}
		od := &f.descs[tid]
		if th.Load(od.Status) != phases.StatusAnnounced {
			continue
		}
		if !pol.ShouldHelp(th, d.Op, od.Op) {
			continue
		}
		th.Store(od.Status, phases.StatusBeingHelped)
		pa.pub.Clear(th, tid)
		sc.Pend = append(sc.Pend, tid)
	}
}

// Metrics aggregates all threads' counters (including HTM statistics).
func (f *Framework) Metrics() engine.Metrics {
	var m engine.Metrics
	for i := range f.metrics {
		m.Merge(&f.metrics[i].m)
	}
	m.HTM = f.eng.TotalStats()
	return m
}

// PhaseBreakdown returns, for each operation class, the per-phase
// completion counts (the data behind Figure 3).
func (f *Framework) PhaseBreakdown() [][NumPhases]uint64 {
	out := make([][NumPhases]uint64, len(f.policies))
	for i := range f.metrics {
		for c := range out {
			for p := 0; p < NumPhases; p++ {
				out[c][p] += f.metrics[i].phaseByClass[c][p]
			}
		}
	}
	return out
}

// ResetMetrics zeroes all counters, including HTM statistics.
func (f *Framework) ResetMetrics() {
	for i := range f.metrics {
		f.metrics[i].m = engine.Metrics{}
		for c := range f.metrics[i].phaseByClass {
			f.metrics[i].phaseByClass[c] = [NumPhases]uint64{}
		}
	}
	f.eng.ResetStats()
}
