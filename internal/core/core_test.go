package core

import (
	"sort"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
)

// incOp increments a shared counter and returns the value it observed.
// The stream of returned pre-values across all threads must be a permutation
// of 0..N-1 — a strong exactly-once and atomicity witness.
type incOp struct {
	addr  memsim.Addr
	class int
}

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return o.class }

// combineIncs is a RunMulti that batches k increments into one load and one
// store, giving each operation its distinct pre-value.
func combineIncs(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var addr memsim.Addr
	count := uint64(0)
	for i, op := range ops {
		if done[i] {
			continue
		}
		o := op.(incOp)
		addr = o.addr
		_ = o
		count++
	}
	if count == 0 {
		return
	}
	v := ctx.Load(addr)
	for i := range ops {
		if done[i] {
			continue
		}
		res[i] = v
		v++
		done[i] = true
	}
	ctx.Store(addr, v)
}

// runIncWorkload executes perThread increments per thread through fw and
// checks the permutation witness and the final counter value.
func runIncWorkload(t *testing.T, env memsim.Env, fw *Framework, counter memsim.Addr, perThread int, class int) {
	t.Helper()
	n := env.NumThreads()
	results := make([][]uint64, n)
	env.Run(func(th *memsim.Thread) {
		mine := make([]uint64, 0, perThread)
		for i := 0; i < perThread; i++ {
			mine = append(mine, fw.Execute(th, incOp{addr: counter, class: class}))
		}
		results[th.ID()] = mine
	})
	total := n * perThread
	if got := env.Boot().Load(counter); got != uint64(total) {
		t.Fatalf("counter = %d, want %d (lost or duplicated operations)", got, total)
	}
	var all []uint64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("result stream is not a permutation: position %d has %d", i, v)
		}
	}
	m := fw.Metrics()
	if m.Ops != uint64(total) {
		t.Fatalf("metrics.Ops = %d, want %d", m.Ops, total)
	}
	var phases uint64
	for _, p := range m.PhaseCompleted {
		phases += p
	}
	if phases != uint64(total) {
		t.Fatalf("phase counts sum to %d, want %d", phases, total)
	}
}

func defaultPolicy() Policy {
	return Policy{
		Name:               "inc",
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		RunMulti:           combineIncs,
	}
}

func newFW(t *testing.T, env memsim.Env, cfg Config) *Framework {
	t.Helper()
	fw, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestExactlyOnceDefaultConfig(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 50, 0)
}

func TestExactlyOnceSpecializedVariant(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	fw := newFW(t, env, Config{
		Policies:          []Policy{defaultPolicy()},
		HoldSelectionLock: true,
	})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 50, 0)
}

func TestExactlyOnceCombineOnlyPolicy(t *testing.T) {
	// The priority-queue RemoveMin configuration from §2.1: skip HTM in the
	// first two phases and go straight to combining after announcing.
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0
	pol.TryVisibleTrials = 0
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 40, 0)
	if fw.Metrics().CombinerSessions == 0 {
		t.Fatal("combine-only policy never combined")
	}
}

func TestExactlyOnceTLEConfiguration(t *testing.T) {
	// §2.4: TLE is HCF with zero visible/combining trials and a combiner
	// that helps nobody.
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	fw := newFW(t, env, Config{Policies: []Policy{{
		Name:             "tle",
		TryPrivateTrials: 10,
		ShouldHelp:       engine.HelpNone,
	}}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 50, 0)
	m := fw.Metrics()
	if m.CombinedOps > m.CombinerSessions {
		t.Fatalf("TLE configuration combined foreign ops: %d ops in %d sessions",
			m.CombinedOps, m.CombinerSessions)
	}
}

func TestExactlyOnceFCConfiguration(t *testing.T) {
	// §2.4: FC is HCF with all speculation budgets at zero and a combiner
	// that helps everybody.
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	fw := newFW(t, env, Config{Policies: []Policy{{
		Name:       "fc",
		ShouldHelp: engine.HelpAll,
		RunMulti:   combineIncs,
	}}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 50, 0)
	m := fw.Metrics()
	if m.HTM.Started != 0 {
		t.Fatalf("FC configuration started %d transactions", m.HTM.Started)
	}
	if m.PhaseCompleted[PhaseTryPrivate] != 0 || m.PhaseCompleted[PhaseTryVisible] != 0 {
		t.Fatal("FC configuration completed operations speculatively")
	}
}

func TestExactlyOnceUnderAbortInjection(t *testing.T) {
	// Force frequent transaction aborts; everything must still be applied
	// exactly once through the combining/lock fallbacks.
	env := memsim.NewDet(memsim.DetConfig{Threads: 6})
	fw := newFW(t, env, Config{
		Policies: []Policy{defaultPolicy()},
		HTM:      htm.Config{InjectAbortEvery: 3},
	})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 40, 0)
	if fw.Metrics().HTM.Aborts[htm.ReasonInjected] == 0 {
		t.Fatal("injection did not fire")
	}
}

func TestExactlyOnceRealBackend(t *testing.T) {
	env := memsim.NewReal(memsim.RealConfig{Threads: 6})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 100, 0)
}

func TestExactlyOnceTicketLocks(t *testing.T) {
	// §2.3: with starvation-free locks the whole construction is
	// starvation free. Exercise the ticket-lock configuration.
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	fw := newFW(t, env, Config{
		Policies:         []Policy{defaultPolicy()},
		Lock:             locks.NewTicket(env),
		NewSelectionLock: func(e memsim.Env) locks.Lock { return locks.NewTicket(e) },
	})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 40, 0)
}

func TestTwoPublicationArrays(t *testing.T) {
	// Two operation classes on separate arrays and separate counters; each
	// class combines only with itself (§2.4's multi-array mechanism).
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	polA := defaultPolicy()
	polA.Name, polA.PubArray = "a", 0
	polB := defaultPolicy()
	polB.Name, polB.PubArray = "b", 1
	fw := newFW(t, env, Config{Policies: []Policy{polA, polB}})
	ca := env.Alloc(memsim.WordsPerLine)
	cb := env.Alloc(memsim.WordsPerLine)
	const perThread = 40
	n := env.NumThreads()
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			if (th.ID()+i)%2 == 0 {
				fw.Execute(th, incOp{addr: ca, class: 0})
			} else {
				fw.Execute(th, incOp{addr: cb, class: 1})
			}
		}
	})
	boot := env.Boot()
	if got := boot.Load(ca) + boot.Load(cb); got != uint64(n*perThread) {
		t.Fatalf("total = %d, want %d", got, n*perThread)
	}
	bd := fw.PhaseBreakdown()
	if len(bd) != 2 {
		t.Fatalf("phase breakdown has %d classes, want 2", len(bd))
	}
	var sum uint64
	for _, cl := range bd {
		for _, p := range cl {
			sum += p
		}
	}
	if sum != uint64(n*perThread) {
		t.Fatalf("per-class phases sum to %d, want %d", sum, n*perThread)
	}
}

func TestShouldHelpFiltering(t *testing.T) {
	// A combiner that refuses to help still completes everything (the
	// refused ops complete via their own phases), and never applies more
	// than its own op per session.
	env := memsim.NewDet(memsim.DetConfig{Threads: 6})
	pol := defaultPolicy()
	pol.ShouldHelp = engine.HelpNone
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 40, 0)
	m := fw.Metrics()
	if m.CombinerSessions > 0 && m.CombinedOps != m.CombinerSessions {
		t.Fatalf("HelpNone combined %d ops in %d sessions", m.CombinedOps, m.CombinerSessions)
	}
}

func TestCombiningDegreeReported(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 12})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0
	pol.TryVisibleTrials = 0 // everyone announces and combines
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 30, 0)
	m := fw.Metrics()
	if m.CombiningDegree() <= 1.0 {
		t.Fatalf("combining degree = %.2f, expected > 1 under contention", m.CombiningDegree())
	}
}

func TestDeterministicRuns(t *testing.T) {
	trace := func() (engine.Metrics, uint64) {
		env := memsim.NewDet(memsim.DetConfig{Threads: 6})
		fw, err := New(env, Config{Policies: []Policy{defaultPolicy()}})
		if err != nil {
			t.Fatal(err)
		}
		counter := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 30; i++ {
				fw.Execute(th, incOp{addr: counter})
			}
		})
		return fw.Metrics(), env.Boot().Load(counter)
	}
	m1, v1 := trace()
	m2, v2 := trace()
	if v1 != v2 {
		t.Fatalf("final values differ: %d vs %d", v1, v2)
	}
	if m1.Ops != m2.Ops || m1.HTM != m2.HTM || m1.PhaseCompleted != m2.PhaseCompleted {
		t.Fatalf("metrics differ:\n%+v\n%+v", m1, m2)
	}
}

func TestResetMetrics(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		fw.Execute(th, incOp{addr: counter})
	})
	fw.ResetMetrics()
	m := fw.Metrics()
	if m.Ops != 0 || m.HTM.Started != 0 || m.CombinerSessions != 0 {
		t.Fatalf("metrics not reset: %+v", m)
	}
}

func TestConfigValidation(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	if _, err := New(env, Config{}); err == nil {
		t.Error("empty policies accepted")
	}
	if _, err := New(env, Config{Policies: []Policy{{PubArray: -1}}}); err == nil {
		t.Error("negative PubArray accepted")
	}
	if _, err := New(env, Config{Policies: []Policy{{TryPrivateTrials: -1}}}); err == nil {
		t.Error("negative trials accepted")
	}
}

func TestNameDefaultsAndOverride(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	if fw.Name() != "HCF" {
		t.Errorf("default name = %q", fw.Name())
	}
	fw2 := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}, Name: "HCF-x"})
	if fw2.Name() != "HCF-x" {
		t.Errorf("override name = %q", fw2.Name())
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseTryPrivate:       "TryPrivate",
		PhaseTryVisible:       "TryVisible",
		PhaseTryCombining:     "TryCombining",
		PhaseCombineUnderLock: "CombineUnderLock",
		Phase(9):              "Phase(9)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestSingleThreadFastPath(t *testing.T) {
	// With no contention everything should complete in TryPrivate.
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 100; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
	})
	m := fw.Metrics()
	if m.PhaseCompleted[PhaseTryPrivate] != 100 {
		t.Fatalf("phase breakdown %v, want all TryPrivate", m.PhaseCompleted)
	}
	if m.LockAcquisitions != 0 {
		t.Fatalf("uncontended run acquired the lock %d times", m.LockAcquisitions)
	}
}

// TestHighContentionShiftsPhases checks the Figure 3 effect: under high
// contention, completions move out of TryPrivate into the combining phases.
func TestHighContentionShiftsPhases(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 16})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 1
	pol.TryVisibleTrials = 1
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 30, 0)
	m := fw.Metrics()
	combined := m.PhaseCompleted[PhaseTryCombining] + m.PhaseCompleted[PhaseCombineUnderLock]
	if combined == 0 {
		t.Fatalf("no operations completed in combining phases under contention: %v",
			m.PhaseCompleted)
	}
}

func TestBootThreadCanExecute(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	if got := fw.Execute(env.Boot(), incOp{addr: counter}); got != 0 {
		t.Fatalf("boot execute returned %d", got)
	}
	if got := env.Boot().Load(counter); got != 1 {
		t.Fatalf("counter = %d", got)
	}
}
