package core

import (
	"fmt"
	"testing"

	"hcf/internal/memsim"
)

// TestExploredScheduleSweep drives the full HCF protocol across genuinely
// perturbed schedules: randomized thread priorities plus forced preemptions
// injected at scheduling points (memsim.ExploreConfig), rather than the
// thread-count perturbation of TestMultiSeedScheduleSweep. Preemptions land
// inside the protocol's handoff windows — between announcing a status word
// and publishing the slot, between a helper's adoption CAS and its Done
// store, between a combiner's slot clear and the owner's wakeup — and the
// exactly-once permutation witness must hold on every seed.
func TestExploredScheduleSweep(t *testing.T) {
	for _, tc := range []struct {
		threads int
		budget  int
		class   int
	}{
		{threads: 5, budget: 32, class: 2},
		{threads: 7, budget: 64, class: 3},
		{threads: 11, budget: 96, class: 3},
	} {
		t.Run(fmt.Sprintf("threads=%d,budget=%d", tc.threads, tc.budget), func(t *testing.T) {
			for seed := uint64(0); seed < 10; seed++ {
				env := memsim.NewDet(memsim.DetConfig{
					Threads: tc.threads,
					Explore: memsim.ExploreConfig{
						Seed:          seed,
						PreemptBudget: tc.budget,
						JitterClass:   tc.class,
					},
				})
				fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
				counter := env.Alloc(1)
				runIncWorkload(t, env, fw, counter, 30, 0)
			}
		})
	}
}

// TestExploredAnnounceAdoptReuse pins the publication-slot reuse window
// (the flat-combining ABA shape): with a visible-speculation-heavy budget a
// helper can adopt a peer's announced descriptor while the owner completes
// it itself and immediately re-announces the *next* operation into the same
// slot with the same tag. Exactly-once then rests on the status-word CAS,
// not on slot identity. Two classes share one publication array to maximize
// cross-class adoption, and forced preemptions stretch the
// adopt-vs-reannounce window. Any double application or lost operation
// breaks the permutation.
func TestExploredAnnounceAdoptReuse(t *testing.T) {
	const threads, perThread = 9, 40
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0 // announce immediately: every op enters a slot
	pol.TryVisibleTrials = 4
	pol.TryCombiningTrials = 4
	polB := pol
	polB.PubArray = 0 // same array as class 0
	for seed := uint64(0); seed < 12; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 80, JitterClass: 3},
		})
		fw := newFW(t, env, Config{Policies: []Policy{pol, polB}})
		counter := env.Alloc(1)
		results := make([][]uint64, threads)
		env.Run(func(th *memsim.Thread) {
			mine := make([]uint64, 0, perThread)
			for i := 0; i < perThread; i++ {
				// Alternate classes so a thread's re-announcement often has
				// a different class than the stale adoption in flight.
				mine = append(mine, fw.Execute(th, incOp{addr: counter, class: (th.ID() + i) % 2}))
			}
			results[th.ID()] = mine
		})
		total := threads * perThread
		if got := env.Boot().Load(counter); got != uint64(total) {
			t.Fatalf("seed %d: counter = %d, want %d (lost or duplicated operations)", seed, got, total)
		}
		seen := make(map[uint64]bool, total)
		for _, r := range results {
			for _, v := range r {
				if seen[v] {
					t.Fatalf("seed %d: result %d returned twice (slot-reuse double application)", seed, v)
				}
				seen[v] = true
			}
		}
	}
}
