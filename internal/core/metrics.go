package core

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// Recorder is the sample sink the framework drives; it is satisfied by
// *metrics.Recorder (see engine.Recorder for the contract).
type Recorder = engine.Recorder

var _ engine.MeteredEngine = (*Framework)(nil)

// CompletionPaths returns the labels of the framework's completion paths —
// the four HCF phases — for dimensioning a metrics recorder.
func (f *Framework) CompletionPaths() []string {
	return []string{
		PhaseTryPrivate.String(),
		PhaseTryVisible.String(),
		PhaseTryCombining.String(),
		PhaseCombineUnderLock.String(),
	}
}

// SetRecorder installs a latency/counter recorder (nil disables). With a
// recorder installed the framework records, per operation, its class,
// completion phase and end-to-end latency; per combining session, the
// selection size; per lock acquisition, the hold time; and, through the
// HTM engine's observer, every transaction attempt's outcome and duration.
// Recording reads thread-local clocks only and charges no simulated
// cycles, so deterministic results are identical with and without it.
func (f *Framework) SetRecorder(r Recorder) {
	f.hooks.Rec = r
	if r == nil {
		f.eng.SetObserver(nil)
		return
	}
	f.eng.SetObserver(func(t int, reason htm.Reason, duration int64) {
		r.RecordTx(t, int(reason), duration)
	})
}

// opStart returns the operation start timestamp, or 0 with metrics off.
func (f *Framework) opStart(th *memsim.Thread) int64 {
	if f.hooks.Rec == nil {
		return 0
	}
	return th.Now()
}

// finishOp records one completed operation if a recorder is installed.
func (f *Framework) finishOp(th *memsim.Thread, class int, phase Phase, start int64) {
	if f.hooks.Rec == nil {
		return
	}
	f.hooks.Rec.RecordOp(th.ID(), class, int(phase), th.Now()-start)
}
