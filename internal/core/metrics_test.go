package core

import (
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/metrics"
)

// newMeteredFW builds a framework with a dimensioned recorder installed.
func newMeteredFW(t *testing.T, threads int) (memsim.Env, *Framework, *metrics.Recorder) {
	t.Helper()
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	rec := metrics.MustNew(metrics.Config{
		Shards:   threads + 1,
		Classes:  []string{"inc"},
		Paths:    fw.CompletionPaths(),
		Outcomes: []string{"commit", "conflict", "capacity", "explicit", "lock-held", "noise"},
		TimeUnit: "cycles",
	})
	fw.SetRecorder(rec)
	return env, fw, rec
}

// TestRecorderSeesEveryOperation checks that with a recorder installed the
// framework reports exactly one completion per executed operation, with the
// path breakdown agreeing with the engine's own phase counters.
func TestRecorderSeesEveryOperation(t *testing.T) {
	const threads, perThread = 8, 40
	env, fw, rec := newMeteredFW(t, threads)
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, perThread, 0)

	c := rec.Counters()
	total := uint64(threads * perThread)
	if c.Ops != total {
		t.Fatalf("recorded ops = %d, want %d", c.Ops, total)
	}
	m := fw.Metrics()
	for p := 0; p < NumPhases; p++ {
		if c.OpsByPath[p] != m.PhaseCompleted[p] {
			t.Errorf("path %s: recorded %d, engine counted %d",
				Phase(p), c.OpsByPath[p], m.PhaseCompleted[p])
		}
	}
	// The HTM observer must have seen the engine's commits and aborts.
	if c.Commits() != m.HTM.Commits {
		t.Errorf("recorded tx commits = %d, engine counted %d", c.Commits(), m.HTM.Commits)
	}
	if c.Aborts() != m.HTM.TotalAborts() {
		t.Errorf("recorded tx aborts = %d, engine counted %d", c.Aborts(), m.HTM.TotalAborts())
	}
	// Combining activity matches too.
	if c.CombinerSessions != m.CombinerSessions {
		t.Errorf("recorded sessions = %d, engine counted %d", c.CombinerSessions, m.CombinerSessions)
	}
	if c.CombinedOps != m.CombinedOps {
		t.Errorf("recorded combined ops = %d, engine counted %d", c.CombinedOps, m.CombinedOps)
	}
	if c.LockAcquisitions != m.LockAcquisitions {
		t.Errorf("recorded lock acqs = %d, engine counted %d", c.LockAcquisitions, m.LockAcquisitions)
	}
	// Latencies are positive: every op costs at least one access.
	if h := rec.ClassHistogram(0); h.Count != total || h.Sum == 0 {
		t.Errorf("class histogram = count %d sum %d, want count %d, sum > 0", h.Count, h.Sum, total)
	}
}

// TestSetRecorderNilDisables checks recording can be turned off again.
func TestSetRecorderNilDisables(t *testing.T) {
	env, fw, rec := newMeteredFW(t, 2)
	fw.SetRecorder(nil)
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 10, 0)
	if c := rec.Counters(); c.Ops != 0 || c.Commits() != 0 {
		t.Fatalf("recording continued after SetRecorder(nil): %+v", c)
	}
}

// TestExecuteFastPathNoAllocs asserts the acceptance criterion that the
// per-operation execution path does not allocate in steady state — neither
// with metrics and tracing disabled (the nil-check fast path) nor with a
// recorder installed (the histogram record path is allocation-free).
func TestExecuteFastPathNoAllocs(t *testing.T) {
	for _, metered := range []bool{false, true} {
		name := "disabled"
		if metered {
			name = "recorder"
		}
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: 1})
			fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
			if metered {
				fw.SetRecorder(metrics.MustNew(metrics.Config{
					Shards: 2,
					Paths:  fw.CompletionPaths(),
				}))
			}
			counter := env.Alloc(1)
			var op engine.Op = incOp{addr: counter} // pre-boxed: exclude interface conversion
			env.Run(func(th *memsim.Thread) {
				fw.Execute(th, op) // warm up lazily-allocated state
				if n := testing.AllocsPerRun(200, func() { fw.Execute(th, op) }); n != 0 {
					t.Errorf("Execute allocates %.1f per op, want 0", n)
				}
			})
		})
	}
}

// benchExecute measures single-thread Execute cost; the disabled case is
// the baseline for the <2% metrics-off overhead budget.
func benchExecute(b *testing.B, metered bool) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	fw, err := New(env, Config{Policies: []Policy{defaultPolicy()}})
	if err != nil {
		b.Fatal(err)
	}
	if metered {
		fw.SetRecorder(metrics.MustNew(metrics.Config{
			Shards: 2,
			Paths:  fw.CompletionPaths(),
		}))
	}
	counter := env.Alloc(1)
	var op engine.Op = incOp{addr: counter}
	b.ReportAllocs()
	b.ResetTimer()
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < b.N; i++ {
			fw.Execute(th, op)
		}
	})
}

// BenchmarkExecuteMetricsOff is the framework with no recorder installed:
// the only added cost over a build without the metrics subsystem is a nil
// check per completion, so this is the number to compare against
// BenchmarkExecuteMetricsOn.
func BenchmarkExecuteMetricsOff(b *testing.B) { benchExecute(b, false) }

// BenchmarkExecuteMetricsOn is the same workload with a recorder recording
// every operation, transaction and clock read.
func BenchmarkExecuteMetricsOn(b *testing.B) { benchExecute(b, true) }
