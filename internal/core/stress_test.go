package core

import (
	"fmt"
	"sort"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
)

// TestMultiSeedScheduleSweep drives the exactly-once witness across many
// distinct deterministic schedules (different thread counts perturb the
// virtual-time interleaving) — a poor man's schedule exploration.
func TestMultiSeedScheduleSweep(t *testing.T) {
	for _, threads := range []int{2, 3, 5, 7, 9, 13, 17} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			pol := defaultPolicy()
			pol.TryPrivateTrials = threads % 3
			pol.TryVisibleTrials = threads % 4
			pol.TryCombiningTrials = 1 + threads%5
			fw := newFW(t, env, Config{Policies: []Policy{pol}})
			counter := env.Alloc(1)
			runIncWorkload(t, env, fw, counter, 30, 0)
		})
	}
}

// TestStarvationFreedomWithTicketLocks is the §2.3 progress property: with
// starvation-free locks every thread must finish a long, maximally
// contended run (a starved operation would hang the deterministic
// scheduler and fail the test by timeout).
func TestStarvationFreedomWithTicketLocks(t *testing.T) {
	const threads, perThread = 24, 60
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0
	pol.TryVisibleTrials = 1
	fw := newFW(t, env, Config{
		Policies:         []Policy{pol},
		Lock:             locks.NewTicket(env),
		NewSelectionLock: func(e memsim.Env) locks.Lock { return locks.NewTicket(e) },
	})
	counter := env.Alloc(1)
	finished := make([]bool, threads)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter})
		}
		finished[th.ID()] = true
	})
	for i, ok := range finished {
		if !ok {
			t.Fatalf("thread %d starved", i)
		}
	}
	if got := env.Boot().Load(counter); got != threads*perThread {
		t.Fatalf("counter = %d", got)
	}
}

// TestSmallBatchChunking forces combining sessions to run many RunMulti
// calls (MaxBatch=2 with a large backlog); completions must stay exact.
func TestSmallBatchChunking(t *testing.T) {
	const threads = 16
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0
	pol.TryVisibleTrials = 0
	pol.MaxBatch = 2
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 25, 0)
	m := fw.Metrics()
	if m.CombinerSessions == 0 {
		t.Fatal("no combining sessions")
	}
}

// TestTinyHTMCapacityFallsBackToLock shrinks the transactional write
// capacity so combining transactions cannot commit; everything must drain
// through CombineUnderLock, still exactly once.
func TestTinyHTMCapacityFallsBackToLock(t *testing.T) {
	const threads = 8
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	pol := defaultPolicy()
	fw := newFW(t, env, Config{
		Policies: []Policy{pol},
		// One readable line: even the smallest transaction (lock word +
		// data word on distinct lines) exceeds capacity.
		HTM: htm.Config{MaxWriteLines: 1, MaxReadLines: 1},
	})
	counter := env.Alloc(1)
	runIncWorkload(t, env, fw, counter, 30, 0)
	m := fw.Metrics()
	if m.HTM.Aborts[htm.ReasonCapacity] == 0 {
		t.Fatal("capacity limit never hit")
	}
	if m.PhaseCompleted[PhaseCombineUnderLock] == 0 {
		t.Fatal("nothing drained through the lock")
	}
}

// TestManyCombinersOneArray runs a configuration in which every thread
// tries to become a combiner for one array simultaneously, in both
// framework variants.
func TestManyCombinersOneArray(t *testing.T) {
	for _, hold := range []bool{false, true} {
		t.Run(fmt.Sprintf("hold=%v", hold), func(t *testing.T) {
			const threads = 20
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			pol := defaultPolicy()
			pol.TryPrivateTrials = 0
			pol.TryVisibleTrials = 0
			fw := newFW(t, env, Config{Policies: []Policy{pol}, HoldSelectionLock: hold})
			counter := env.Alloc(1)
			runIncWorkload(t, env, fw, counter, 20, 0)
		})
	}
}

// TestMixedClassesOnSharedArray puts two op classes with different
// policies on the SAME publication array: a combiner of either class may
// select and execute operations of the other (ShouldHelp permitting).
func TestMixedClassesOnSharedArray(t *testing.T) {
	const threads = 10
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	polA := defaultPolicy()
	polA.Name, polA.PubArray = "a", 0
	polA.TryPrivateTrials = 0
	polB := defaultPolicy()
	polB.Name, polB.PubArray = "b", 0 // same array, different budgets
	polB.TryVisibleTrials = 0
	fw := newFW(t, env, Config{Policies: []Policy{polA, polB}})
	counter := env.Alloc(1)
	n := env.NumThreads()
	const perThread = 30
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			fw.Execute(th, incOp{addr: counter, class: (th.ID() + i) % 2})
		}
	})
	if got := env.Boot().Load(counter); got != uint64(n*perThread) {
		t.Fatalf("counter = %d, want %d", got, n*perThread)
	}
}

// TestDynamicBudgetChangesMidRun adjusts budgets concurrently with
// execution (the §2.4 on-the-fly reconfiguration) and checks exactness.
func TestDynamicBudgetChangesMidRun(t *testing.T) {
	const threads, perThread = 8, 60
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			if th.ID() == 0 {
				// Thrash the budgets through every regime.
				fw.SetTrials(0, i%4, (i+1)%4, 1+i%5)
			}
			fw.Execute(th, incOp{addr: counter})
		}
	})
	if got := env.Boot().Load(counter); got != threads*perThread {
		t.Fatalf("counter = %d", got)
	}
	p, v, c := fw.Trials(0)
	if p < 0 || v < 0 || c < 0 {
		t.Fatal("invalid budgets after thrashing")
	}
}

// TestRealBackendHighContentionStress runs the full protocol under real
// goroutine concurrency with GOMAXPROCS forced up, for the race detector.
func TestRealBackendHighContentionStress(t *testing.T) {
	const threads, perThread = 10, 80
	env := memsim.NewReal(memsim.RealConfig{Threads: threads})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 1
	pol.TryVisibleTrials = 1
	fw := newFW(t, env, Config{Policies: []Policy{pol}})
	counter := env.Alloc(1)
	results := make([][]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		mine := make([]uint64, 0, perThread)
		for i := 0; i < perThread; i++ {
			mine = append(mine, fw.Execute(th, incOp{addr: counter}))
		}
		results[th.ID()] = mine
	})
	seen := make(map[uint64]bool, threads*perThread)
	for _, r := range results {
		for _, v := range r {
			if seen[v] {
				t.Fatalf("duplicate result %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != threads*perThread {
		t.Fatalf("%d distinct results, want %d", len(seen), threads*perThread)
	}
}

var _ engine.Op = incOp{}

// TestDynamicArrayReassignment thrashes the class->publication-array
// mapping mid-run (§2.4's on-the-fly reconfiguration); exactness must hold
// and in-flight announcements must stay claimable.
func TestDynamicArrayReassignment(t *testing.T) {
	const threads, perThread = 10, 60
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	pol := defaultPolicy()
	pol.TryPrivateTrials = 0 // force announcements
	fw := newFW(t, env, Config{Policies: []Policy{pol}, ExtraArrays: 3})
	if fw.NumArrays() != 4 {
		t.Fatalf("NumArrays = %d, want 4", fw.NumArrays())
	}
	counter := env.Alloc(1)
	results := make([][]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		mine := make([]uint64, 0, perThread)
		for i := 0; i < perThread; i++ {
			if th.ID() == 0 {
				if err := fw.SetPubArray(0, i%fw.NumArrays()); err != nil {
					t.Error(err)
				}
			}
			mine = append(mine, fw.Execute(th, incOp{addr: counter}))
		}
		results[th.ID()] = mine
	})
	var all []uint64
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("permutation broken at %d: %d", i, v)
		}
	}
}

func TestSetPubArrayValidation(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	fw := newFW(t, env, Config{Policies: []Policy{defaultPolicy()}})
	if err := fw.SetPubArray(0, 5); err == nil {
		t.Error("out-of-range array accepted")
	}
	if err := fw.SetPubArray(3, 0); err == nil {
		t.Error("out-of-range class accepted")
	}
	if err := fw.SetPubArray(0, 0); err != nil {
		t.Error(err)
	}
	if got := fw.PubArrayOf(0); got != 0 {
		t.Errorf("PubArrayOf = %d", got)
	}
	if _, err := New(env, Config{Policies: []Policy{defaultPolicy()}, ExtraArrays: -1}); err == nil {
		t.Error("negative ExtraArrays accepted")
	}
}
