package core

import (
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// TraceKind classifies framework lifecycle events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceStart: an operation entered Execute (Class valid).
	TraceStart TraceKind = iota + 1
	// TraceAttempt: one speculative attempt finished (Phase and Reason
	// valid; Reason is htm.ReasonNone on commit).
	TraceAttempt
	// TraceAnnounce: the operation was published (Class valid).
	TraceAnnounce
	// TraceSelect: a combiner selected N announced operations (N valid).
	TraceSelect
	// TraceLock: the combiner acquired the data-structure lock.
	TraceLock
	// TraceDone: the operation completed (Phase = completion phase).
	TraceDone
	// TraceHelped: the operation was completed by another thread
	// (Phase = the helper's completion phase).
	TraceHelped
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceAttempt:
		return "attempt"
	case TraceAnnounce:
		return "announce"
	case TraceSelect:
		return "select"
	case TraceLock:
		return "lock"
	case TraceDone:
		return "done"
	case TraceHelped:
		return "helped"
	default:
		return "unknown"
	}
}

// TraceEvent is one framework lifecycle event. Events are emitted from the
// thread named in Thread; in deterministic environments the stream is
// reproducible.
type TraceEvent struct {
	// Thread is the emitting thread id.
	Thread int
	// Now is the thread's local time at emission.
	Now int64
	// Kind classifies the event.
	Kind TraceKind
	// Class is the operation class (TraceStart / TraceAnnounce).
	Class int
	// Phase is the relevant phase (TraceAttempt / TraceDone / TraceHelped).
	Phase Phase
	// Reason is the abort reason of a failed attempt (TraceAttempt).
	Reason htm.Reason
	// N is the selection size (TraceSelect).
	N int
}

// Tracer receives lifecycle events. Implementations must be cheap; they
// run inline on the execution path. On the real backend they must also be
// safe for concurrent use.
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer installs a lifecycle tracer (nil disables).
func (f *Framework) SetTracer(tr Tracer) { f.tracer = tr }

// emit sends an event to the tracer if one is installed.
func (f *Framework) emit(th *memsim.Thread, ev TraceEvent) {
	if f.tracer == nil {
		return
	}
	ev.Thread = th.ID()
	ev.Now = th.Now()
	f.tracer.Trace(ev)
}
