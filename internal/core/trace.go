package core

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/phases"
)

// The lifecycle-event vocabulary is defined in internal/engine (shared by
// all engines); the framework re-exports it so existing consumers keep
// addressing it through core.
type (
	// TraceKind classifies framework lifecycle events.
	TraceKind = engine.TraceKind
	// TraceEvent is one framework lifecycle event.
	TraceEvent = engine.TraceEvent
	// Tracer receives lifecycle events.
	Tracer = engine.Tracer
	// TracedEngine is implemented by engines that emit lifecycle events.
	TracedEngine = engine.TracedEngine
)

// Trace event kinds (see engine.TraceKind for semantics).
const (
	TraceStart    = engine.TraceStart
	TraceAttempt  = engine.TraceAttempt
	TraceAnnounce = engine.TraceAnnounce
	TraceSelect   = engine.TraceSelect
	TraceLock     = engine.TraceLock
	TraceDone     = engine.TraceDone
	TraceHelped   = engine.TraceHelped
	TraceHelp     = engine.TraceHelp
)

// SetTracer installs a lifecycle tracer (nil disables).
func (f *Framework) SetTracer(tr Tracer) { f.tracer = tr }

var _ TracedEngine = (*Framework)(nil)

// SpanID builds the span id of thread t's seq-th operation: span ids are
// unique per run, dense per thread, and deterministic on the deterministic
// backend.
func SpanID(t int, seq uint64) uint64 { return engine.SpanID(t, seq) }

// SpanThread recovers the owning thread from a span id.
func SpanThread(span uint64) int { return engine.SpanThread(span) }

// fwEmitter adapts the framework to phases.Emitter without exporting
// emission methods on the public Framework type.
type fwEmitter struct{ f *Framework }

// Active implements phases.Emitter.
func (e fwEmitter) Active() bool { return e.f.tracer != nil }

// Emit implements phases.Emitter.
func (e fwEmitter) Emit(th *memsim.Thread, ev TraceEvent) { e.f.emit(th, ev) }

// EmitAttempt implements phases.Emitter.
func (e fwEmitter) EmitAttempt(th *memsim.Thread, phase Phase, reason htm.Reason) {
	e.f.emitAttempt(th, phase, reason)
}

// emit sends an event to the tracer if one is installed, stamping it with
// the thread, its local time, and its current operation span.
func (f *Framework) emit(th *memsim.Thread, ev TraceEvent) {
	if f.tracer == nil {
		return
	}
	t := th.ID()
	ev.Thread = t
	ev.Now = th.Now()
	ev.Span = f.descs[t].Span
	f.tracer.Trace(ev)
}

// emitAttempt emits a TraceAttempt with abort attribution: conflict aborts
// name the conflicting cache line and its last committed writer,
// lock-subscription aborts name the holder captured at the abort site.
func (f *Framework) emitAttempt(th *memsim.Thread, phase Phase, reason htm.Reason) {
	if f.tracer == nil {
		return
	}
	ev := TraceEvent{Kind: TraceAttempt, Phase: phase, Reason: reason, Peer: -1}
	switch reason {
	case htm.ReasonConflict, htm.ReasonLockHeld:
		info := f.eng.LastAbortInfo(th.ID())
		ev.Line = info.Line
		if reason == htm.ReasonConflict {
			ev.Peer = info.Writer
		} else {
			ev.Peer = info.Holder
		}
	}
	f.emit(th, ev)
}

// HolderHint names the thread currently holding l via a raw uncharged
// read, or -1 when the lock kind cannot report one.
func HolderHint(env memsim.Env, l locks.Lock) int {
	return phases.HolderHint(env, l)
}
