// Package engine defines the vocabulary shared by all synchronization
// engines in this repository: the operation interface that sequential
// data-structure code is wrapped in, the engine interface the experiment
// harness drives, combining hooks, and common metrics.
//
// Six engines implement Engine: the paper's HCF framework
// (internal/core) and the five comparison baselines from §3 — Lock, TLE,
// FC, SCM and the naive TLE+FC (internal/engines).
package engine

import (
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// Op is a single data-structure operation, wrapping the data structure's
// sequential code (the paper's runSeq).
//
// Apply may be executed speculatively and retried: it must confine its side
// effects to the Ctx (simulated memory) and return its result rather than
// writing it into shared Go state. It may be run by the invoking thread or
// by a combiner on the invoking thread's behalf.
type Op interface {
	// Apply runs the operation's sequential code against ctx and returns
	// its (encoded) result.
	Apply(ctx memsim.Ctx) uint64
	// Class identifies the operation class for per-class policies (e.g.
	// which publication array announces it). Engines without per-class
	// behaviour ignore it. Classes must be dense, starting at 0.
	Class() int
}

// Engine applies operations of a sequentially implemented data structure
// with some synchronization discipline.
type Engine interface {
	// Execute runs op to completion on behalf of thread th and returns its
	// result. It must be linearizable: the operation takes effect exactly
	// once, at some instant between invocation and return.
	Execute(th *memsim.Thread, op Op) uint64
	// Name identifies the engine in experiment output ("HCF", "TLE", ...).
	Name() string
	// Metrics returns aggregated counters since the last reset.
	Metrics() Metrics
	// ResetMetrics zeroes the counters (e.g. after warmup).
	ResetMetrics()
}

// CombineFunc applies a batch of pending operations, combining and/or
// eliminating them using data-structure-specific semantics (the paper's
// runMulti). It must mark every operation it completed in done and record
// the operation's result in res. It may complete only a subset per call;
// the caller invokes it repeatedly until all operations are done (so that
// each call's footprint fits in one hardware transaction).
//
// Like Op.Apply, a CombineFunc runs inside a transaction or under the
// data-structure lock, so it is written as sequential code.
type CombineFunc func(ctx memsim.Ctx, ops []Op, res []uint64, done []bool)

// ApplyEach is the default CombineFunc: it simply runs every remaining
// operation's own sequential code, with no combining or elimination.
func ApplyEach(ctx memsim.Ctx, ops []Op, res []uint64, done []bool) {
	for i, op := range ops {
		if !done[i] {
			res[i] = op.Apply(ctx)
			done[i] = true
		}
	}
}

// ShouldHelpFunc decides whether a combiner executing mine should also take
// responsibility for other (the paper's shouldHelp). It runs while holding
// the publication array's selection lock; ctx provides direct access to
// simulated memory, e.g. to read a look-aside variable such as the AVL
// tree's root key (paper §3.4).
type ShouldHelpFunc func(ctx memsim.Ctx, mine, other Op) bool

// HelpAll selects every announced operation — the default used when a whole
// publication array combines well (paper §2.2).
func HelpAll(ctx memsim.Ctx, mine, other Op) bool { return true }

// HelpNone selects no other operations, so a combiner applies only its own
// operation — useful when combining is not applicable (paper §2.2).
func HelpNone(ctx memsim.Ctx, mine, other Op) bool { return false }

// WitnessFunc observes completed operation applications for
// linearizability checking. stamp is a serialization stamp: applications
// are legally ordered by (stamp, intra), where intra orders operations that
// were applied atomically in the same combined batch (in the batch's
// application order — order-preserving combiners only). Engines call the
// witness exactly once per operation, from the thread that applied it.
type WitnessFunc func(stamp uint64, intra int, op Op, result uint64)

// WitnessedEngine is implemented by engines that can report a
// serialization witness for every applied operation.
type WitnessedEngine interface {
	Engine
	// SetWitness installs fn (nil disables). Install before running ops.
	SetWitness(fn WitnessFunc)
}

// Recorder receives latency and counter samples from an engine's hot path.
// It is satisfied by *metrics.Recorder (internal/metrics). Implementations
// must be cheap and allocation-free: they run inline on the execution path,
// and on the real backend concurrently from all threads.
type Recorder interface {
	// RecordOp records one completed operation: its class, the index of
	// the completion path it drained through (see MeteredEngine
	// CompletionPaths), and its end-to-end latency in the environment's
	// time unit (virtual cycles or wall nanoseconds).
	RecordOp(t, class, path int, latency int64)
	// RecordTx records one finished transaction attempt: outcome 0 is a
	// commit, other values are htm.Reason abort codes.
	RecordTx(t, outcome int, latency int64)
	// RecordLockHold records one data-structure lock hold interval.
	RecordLockHold(t int, held int64)
	// RecordCombine records one combining session selecting n operations.
	RecordCombine(t, n int)
}

// MeteredEngine is implemented by engines that can stream per-operation
// latencies and lock/combining samples into a Recorder. All six engines in
// this repository implement it.
type MeteredEngine interface {
	Engine
	// SetRecorder installs rec (nil disables). Install before running ops.
	SetRecorder(rec Recorder)
	// CompletionPaths labels the engine's completion paths, indexed by the
	// path values it passes to Recorder.RecordOp — for HCF the four
	// phases, for baselines their own completion routes.
	CompletionPaths() []string
}

// Metrics aggregates engine activity counters used by the experiment
// harness.
type Metrics struct {
	// Ops is the number of completed operations.
	Ops uint64
	// LockAcquisitions counts acquisitions of the data-structure lock L.
	LockAcquisitions uint64
	// AuxAcquisitions counts acquisitions of auxiliary/selection locks.
	AuxAcquisitions uint64
	// HTM aggregates transactional activity across threads.
	HTM htm.Stats
	// CombinerSessions counts combining passes (one per combiner role).
	CombinerSessions uint64
	// CombinedOps counts operations applied within combining passes,
	// including the combiner's own. CombinedOps/CombinerSessions is the
	// combining degree reported in §3.3.
	CombinedOps uint64
	// PhaseCompleted[p] counts operations that completed in phase p
	// (HCF only): 0 TryPrivate, 1 TryVisible, 2 TryCombining,
	// 3 CombineUnderLock.
	PhaseCompleted [NumPhases]uint64
}

// CombiningDegree returns the mean number of operations applied per
// combining pass (0 when no combining happened).
func (m *Metrics) CombiningDegree() float64 {
	if m.CombinerSessions == 0 {
		return 0
	}
	return float64(m.CombinedOps) / float64(m.CombinerSessions)
}

// Merge adds o into m.
func (m *Metrics) Merge(o *Metrics) {
	m.Ops += o.Ops
	m.LockAcquisitions += o.LockAcquisitions
	m.AuxAcquisitions += o.AuxAcquisitions
	m.HTM.Merge(&o.HTM)
	m.CombinerSessions += o.CombinerSessions
	m.CombinedOps += o.CombinedOps
	for i := range m.PhaseCompleted {
		m.PhaseCompleted[i] += o.PhaseCompleted[i]
	}
}

// Result packing helpers. Data-structure results in this repository are a
// value of up to 63 bits plus a found/success flag, packed into the uint64
// that Op.Apply returns.

// Pack encodes (value, ok) into a result word. value must fit in 63 bits.
func Pack(value uint64, ok bool) uint64 {
	r := value << 1
	if ok {
		r |= 1
	}
	return r
}

// Unpack decodes a result word produced by Pack.
func Unpack(r uint64) (value uint64, ok bool) {
	return r >> 1, r&1 != 0
}

// PackBool encodes a bare boolean result.
func PackBool(ok bool) uint64 { return Pack(0, ok) }

// UnpackBool decodes a bare boolean result.
func UnpackBool(r uint64) bool { return r&1 != 0 }
