package engine

import (
	"testing"
	"testing/quick"

	"hcf/internal/htm"
	"hcf/internal/memsim"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(v uint64, ok bool) bool {
		v &= (1 << 63) - 1 // values are 63-bit
		gv, gok := Unpack(Pack(v, ok))
		return gv == v && gok == ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackBool(t *testing.T) {
	if !UnpackBool(PackBool(true)) {
		t.Error("true lost")
	}
	if UnpackBool(PackBool(false)) {
		t.Error("false lost")
	}
}

type nopOp struct{ r uint64 }

func (o nopOp) Apply(ctx memsim.Ctx) uint64 { return o.r }
func (o nopOp) Class() int                  { return 0 }

func TestApplyEachSkipsDone(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	ops := []Op{nopOp{r: 1}, nopOp{r: 2}, nopOp{r: 3}}
	res := make([]uint64, 3)
	done := []bool{false, true, false}
	ApplyEach(env.Boot(), ops, res, done)
	if res[0] != 1 || res[1] != 0 || res[2] != 3 {
		t.Fatalf("res = %v", res)
	}
	if !done[0] || !done[2] {
		t.Fatal("ApplyEach left ops undone")
	}
}

func TestHelpAllHelpNone(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	a, b := nopOp{}, nopOp{}
	if !HelpAll(env.Boot(), a, b) {
		t.Error("HelpAll returned false")
	}
	if HelpNone(env.Boot(), a, b) {
		t.Error("HelpNone returned true")
	}
}

func TestMetricsMergeAndCombiningDegree(t *testing.T) {
	a := Metrics{Ops: 10, LockAcquisitions: 2, CombinerSessions: 2, CombinedOps: 8}
	a.PhaseCompleted[1] = 4
	b := Metrics{Ops: 5, AuxAcquisitions: 1, CombinerSessions: 1, CombinedOps: 1,
		HTM: htm.Stats{Commits: 7}}
	b.PhaseCompleted[1] = 1
	a.Merge(&b)
	if a.Ops != 15 || a.LockAcquisitions != 2 || a.AuxAcquisitions != 1 {
		t.Fatalf("merge: %+v", a)
	}
	if a.HTM.Commits != 7 || a.PhaseCompleted[1] != 5 {
		t.Fatalf("merge: %+v", a)
	}
	if got := a.CombiningDegree(); got != 3.0 {
		t.Fatalf("combining degree = %v, want 3", got)
	}
	var empty Metrics
	if empty.CombiningDegree() != 0 {
		t.Fatal("empty combining degree should be 0")
	}
}
