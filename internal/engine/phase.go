package engine

import "fmt"

// Phase identifies where an operation completed (for Figure 3). The four
// HCF phases double as the shared phase vocabulary of the baseline
// engines' trace streams (see internal/engines/trace.go for the mapping).
type Phase uint8

// The four phases of HCF.
const (
	PhaseTryPrivate Phase = iota
	PhaseTryVisible
	PhaseTryCombining
	PhaseCombineUnderLock
	// NumPhases is the number of phases.
	NumPhases = 4
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseTryPrivate:
		return "TryPrivate"
	case PhaseTryVisible:
		return "TryVisible"
	case PhaseTryCombining:
		return "TryCombining"
	case PhaseCombineUnderLock:
		return "CombineUnderLock"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Completion-path labels. Engines report which route each operation
// drained through (MeteredEngine.CompletionPaths, trace summaries, stat
// tables); consumers match the labels by string, so every engine must use
// these shared constants rather than spelling the strings locally.
const (
	// PathHTM: committed by a private hardware transaction (TLE-style).
	PathHTM = "htm"
	// PathHTMManaged: committed transactionally while serialized on an
	// auxiliary lock (SCM's managed phase).
	PathHTMManaged = "htm-managed"
	// PathLock: applied directly under the data-structure lock.
	PathLock = "lock"
	// PathCombiner: the thread became a combiner and applied its own
	// operation during its combining session.
	PathCombiner = "combiner"
	// PathHelped: the operation was completed by another thread's
	// combining session.
	PathHelped = "helped"
	// PathCross: applied on the cross-shard path of a sharded engine,
	// holding every shard lock.
	PathCross = "cross"
)
