package engine

import "hcf/internal/htm"

// TraceKind classifies engine lifecycle events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceStart: an operation entered Execute (Span and Class valid).
	TraceStart TraceKind = iota + 1
	// TraceAttempt: one speculative attempt finished (Phase and Reason
	// valid; Reason is htm.ReasonNone on commit). Conflict aborts carry the
	// conflicting cache line in Line and its last writer in Peer;
	// lock-subscription aborts carry the lock holder in Peer (-1 unknown).
	TraceAttempt
	// TraceAnnounce: the operation was published (Class valid).
	TraceAnnounce
	// TraceSelect: a combiner selected N announced operations (N valid).
	TraceSelect
	// TraceLock: the combiner acquired the data-structure lock.
	TraceLock
	// TraceDone: the operation completed (Phase = completion phase).
	TraceDone
	// TraceHelped: the operation was completed by another thread
	// (Phase = the helper's completion phase; Peer = the helper thread,
	// PeerSpan = the helper's own operation span).
	TraceHelped
	// TraceHelp: a combiner completed another thread's operation
	// (Phase = the completion phase; Peer = the helped thread,
	// PeerSpan = the helped operation's span). The TraceHelp/TraceHelped
	// pair is the causal combined-by edge between the two spans.
	TraceHelp
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceAttempt:
		return "attempt"
	case TraceAnnounce:
		return "announce"
	case TraceSelect:
		return "select"
	case TraceLock:
		return "lock"
	case TraceDone:
		return "done"
	case TraceHelped:
		return "helped"
	case TraceHelp:
		return "help"
	default:
		return "unknown"
	}
}

// TraceEvent is one engine lifecycle event. Events are emitted from the
// thread named in Thread; in deterministic environments the stream is
// reproducible.
type TraceEvent struct {
	// Thread is the emitting thread id.
	Thread int
	// Now is the thread's local time at emission.
	Now int64
	// Kind classifies the event.
	Kind TraceKind
	// Class is the operation class (TraceStart / TraceAnnounce).
	Class int
	// Phase is the relevant phase (TraceAttempt / TraceDone / TraceHelped /
	// TraceHelp).
	Phase Phase
	// Reason is the abort reason of a failed attempt (TraceAttempt).
	Reason htm.Reason
	// N is the selection size (TraceSelect).
	N int
	// Span identifies the emitting thread's current operation. Every event
	// an operation's lifecycle produces carries the same span id, so the
	// stream reconstructs into one span per operation.
	Span uint64
	// Peer is the other thread of a causal edge: the conflicting writer or
	// lock holder (TraceAttempt aborts), the helped thread (TraceHelp), or
	// the helping thread (TraceHelped). -1 when unknown or not applicable.
	Peer int
	// PeerSpan is the span id on the other end of a help edge
	// (TraceHelp / TraceHelped).
	PeerSpan uint64
	// Line is the conflicting cache line (TraceAttempt with
	// Reason == htm.ReasonConflict).
	Line uint32
}

// Tracer receives lifecycle events. Implementations must be cheap; they
// run inline on the execution path. On the real backend they must also be
// safe for concurrent use.
type Tracer interface {
	Trace(ev TraceEvent)
}

// TracedEngine is implemented by engines that emit lifecycle trace events —
// the HCF framework and all five baseline engines.
type TracedEngine interface {
	// SetTracer installs tr (nil disables). Install before running ops.
	SetTracer(tr Tracer)
}

// SpanID builds the span id of thread t's seq-th operation: span ids are
// unique per run, dense per thread, and deterministic on the deterministic
// backend.
func SpanID(t int, seq uint64) uint64 { return uint64(t+1)<<32 | seq }

// SpanThread recovers the owning thread from a span id.
func SpanThread(span uint64) int { return int(span>>32) - 1 }
