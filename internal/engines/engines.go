// Package engines implements the five comparison baselines evaluated in
// §3 of the paper:
//
//   - Lock: every operation runs under the data-structure lock.
//   - TLE: transactional lock elision over that lock [Rajwar & Goodman /
//     Dice et al.].
//   - FC: classic flat combining [Hendler et al.], with a data-structure
//     provided combining function.
//   - SCM: TLE with an auxiliary lock serializing conflicting transactions
//     [Afek et al.].
//   - TLE+FC: the naive combination discussed in the paper's introduction —
//     TLE first, and on failure announce and combine under the lock.
//
// All engines run the same sequential operation code (engine.Op) over the
// same substrate as HCF, so the experiments compare synchronization
// disciplines, not implementations.
package engines

import (
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/pubarr"
)

// Options configures the baseline engines. Zero values take defaults.
type Options struct {
	// Lock is the data-structure lock L; nil allocates a TATAS lock.
	Lock locks.Lock
	// HTM configures the transactional engine (TLE, SCM, TLE+FC).
	HTM htm.Config
	// Trials is the total speculation budget per operation (default 10),
	// matching the budget the paper gives every HTM-using variant.
	Trials int
	// Combine is the combining function used by FC and TLE+FC; nil means
	// engine.ApplyEach.
	Combine engine.CombineFunc
	// MaxBatch bounds operations per Combine call (default: no bound, as
	// FC combines under the lock where capacity does not matter).
	MaxBatch int
	// FCPasses bounds how many publication-array scan passes an FC
	// combiner makes per lock acquisition (default 2): classic flat
	// combining keeps scanning while requests keep arriving (it stops
	// early when a pass finds nothing), amortizing the lock handoff.
	FCPasses int
}

func (o *Options) normalize(env memsim.Env) {
	if o.Lock == nil {
		o.Lock = locks.NewTATAS(env)
	}
	if o.Trials <= 0 {
		o.Trials = 10
	}
	if o.Combine == nil {
		o.Combine = engine.ApplyEach
	}
	if o.FCPasses <= 0 {
		o.FCPasses = 2
	}
}

// threadMetrics pads per-thread counters against false sharing.
type threadMetrics struct {
	m engine.Metrics
	_ [40]byte
}

// metricsSet is the shared per-thread metrics plumbing; it also carries
// the optional serialization witness, metrics recorder, and lifecycle
// tracer (see trace.go).
type metricsSet struct {
	per     []threadMetrics
	eng     *htm.Engine // may be nil (Lock, FC)
	witness engine.WitnessFunc
	rec     engine.Recorder
	tracer  core.Tracer
	spans   []spanState
}

// SetWitness installs a serialization-witness observer (nil disables).
func (s *metricsSet) SetWitness(fn engine.WitnessFunc) { s.witness = fn }

// SetRecorder installs a metrics recorder (nil disables). Engines with an
// HTM component also stream per-transaction outcomes through it.
func (s *metricsSet) SetRecorder(rec engine.Recorder) {
	s.rec = rec
	if s.eng == nil {
		return
	}
	if rec == nil {
		s.eng.SetObserver(nil)
		return
	}
	s.eng.SetObserver(func(t int, reason htm.Reason, duration int64) {
		rec.RecordTx(t, int(reason), duration)
	})
}

// opStart returns the operation start timestamp, or 0 with metrics off.
func (s *metricsSet) opStart(th *memsim.Thread) int64 {
	if s.rec == nil {
		return 0
	}
	return th.Now()
}

// opDone records one completed operation if a recorder is installed.
func (s *metricsSet) opDone(th *memsim.Thread, class, path int, start int64) {
	if s.rec == nil {
		return
	}
	s.rec.RecordOp(th.ID(), class, path, th.Now()-start)
}

func newMetricsSet(env memsim.Env, eng *htm.Engine) metricsSet {
	return metricsSet{per: make([]threadMetrics, env.NumThreads()+1), eng: eng}
}

func (s *metricsSet) Metrics() engine.Metrics {
	var m engine.Metrics
	for i := range s.per {
		m.Merge(&s.per[i].m)
	}
	if s.eng != nil {
		m.HTM = s.eng.TotalStats()
	}
	return m
}

func (s *metricsSet) ResetMetrics() {
	for i := range s.per {
		s.per[i].m = engine.Metrics{}
	}
	if s.eng != nil {
		s.eng.ResetStats()
	}
}

// LockEngine runs every operation under the lock — the paper's "Lock"
// variant.
type LockEngine struct {
	lock locks.Lock
	metricsSet
}

var _ engine.MeteredEngine = (*LockEngine)(nil)

// NewLock builds the Lock baseline.
func NewLock(env memsim.Env, opts Options) *LockEngine {
	opts.normalize(env)
	return &LockEngine{lock: opts.Lock, metricsSet: newMetricsSet(env, nil)}
}

// Name implements engine.Engine.
func (e *LockEngine) Name() string { return "Lock" }

// CompletionPaths implements engine.MeteredEngine.
func (e *LockEngine) CompletionPaths() []string { return []string{"lock"} }

// Execute applies op under the data-structure lock.
func (e *LockEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	e.lock.Lock(th)
	tm.LockAcquisitions++
	e.emit(th, core.TraceEvent{Kind: core.TraceLock, Peer: -1})
	var holdStart int64
	if e.rec != nil {
		holdStart = th.Now()
	}
	res := op.Apply(th)
	if e.witness != nil {
		e.witness(htm.LockStamp(th), 0, op, res)
	}
	if e.rec != nil {
		e.rec.RecordLockHold(th.ID(), th.Now()-holdStart)
	}
	e.lock.Unlock(th)
	tm.Ops++
	e.opDone(th, op.Class(), 0, start)
	e.emitDone(th, core.PhaseCombineUnderLock)
	return res
}

// TLEEngine implements transactional lock elision: speculate up to Trials
// times (subscribing to L, waiting for L to be free between attempts), then
// fall back to the lock.
type TLEEngine struct {
	lock   locks.Lock
	htm    *htm.Engine
	trials int
	metricsSet
}

var _ engine.MeteredEngine = (*TLEEngine)(nil)

// NewTLE builds the TLE baseline.
func NewTLE(env memsim.Env, opts Options) *TLEEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	return &TLEEngine{
		lock:       opts.Lock,
		htm:        eng,
		trials:     opts.Trials,
		metricsSet: newMetricsSet(env, eng),
	}
}

// Name implements engine.Engine.
func (e *TLEEngine) Name() string { return "TLE" }

// CompletionPaths implements engine.MeteredEngine.
func (e *TLEEngine) CompletionPaths() []string { return []string{"htm", "lock"} }

// Execute applies op with TLE.
func (e *TLEEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	for i := 0; i < e.trials; i++ {
		ok, reason := e.htm.Run(th, func(tx *htm.Tx) {
			if e.lock.Locked(tx) {
				e.abortLockHeld(tx, e.lock)
			}
			res = op.Apply(tx)
		})
		e.emitAttempt(th, core.PhaseTryPrivate, reason)
		if ok {
			if e.witness != nil {
				e.witness(e.htm.CommitStamp(th.ID()), 0, op, res)
			}
			tm.Ops++
			e.opDone(th, op.Class(), 0, start)
			e.emitDone(th, core.PhaseTryPrivate)
			return res
		}
		e.lock.WaitUnlocked(th)
	}
	e.lock.Lock(th)
	tm.LockAcquisitions++
	e.emit(th, core.TraceEvent{Kind: core.TraceLock, Peer: -1})
	var holdStart int64
	if e.rec != nil {
		holdStart = th.Now()
	}
	res = op.Apply(th)
	if e.witness != nil {
		e.witness(htm.LockStamp(th), 0, op, res)
	}
	if e.rec != nil {
		e.rec.RecordLockHold(th.ID(), th.Now()-holdStart)
	}
	e.lock.Unlock(th)
	tm.Ops++
	e.opDone(th, op.Class(), 1, start)
	e.emitDone(th, core.PhaseCombineUnderLock)
	return res
}

// SCMEngine implements software-assisted conflict management for TLE
// [Afek et al.]: threads whose transactions abort on data conflicts
// serialize on an auxiliary lock and keep speculating (still eliding L), so
// one conflicting pair does not escalate into a global lock acquisition.
type SCMEngine struct {
	lock   locks.Lock
	aux    locks.Lock
	htm    *htm.Engine
	trials int
	metricsSet
}

var _ engine.MeteredEngine = (*SCMEngine)(nil)

// NewSCM builds the SCM baseline.
func NewSCM(env memsim.Env, opts Options) *SCMEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	return &SCMEngine{
		lock:       opts.Lock,
		aux:        locks.NewTATAS(env),
		htm:        eng,
		trials:     opts.Trials,
		metricsSet: newMetricsSet(env, eng),
	}
}

// Name implements engine.Engine.
func (e *SCMEngine) Name() string { return "SCM" }

// CompletionPaths implements engine.MeteredEngine.
func (e *SCMEngine) CompletionPaths() []string { return []string{"htm", "htm-managed", "lock"} }

// Execute applies op with TLE plus auxiliary-lock conflict management.
func (e *SCMEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	attempt := func(tx *htm.Tx) {
		if e.lock.Locked(tx) {
			e.abortLockHeld(tx, e.lock)
		}
		res = op.Apply(tx)
	}
	// Optimistic phase: half the budget without the auxiliary lock. Two
	// consecutive conflict aborts indicate persistent contention and send
	// the thread to the auxiliary lock.
	optimistic := e.trials / 2
	conflicts := 0
	for i := 0; i < optimistic; i++ {
		ok, reason := e.htm.Run(th, attempt)
		e.emitAttempt(th, core.PhaseTryPrivate, reason)
		if ok {
			if e.witness != nil {
				e.witness(e.htm.CommitStamp(th.ID()), 0, op, res)
			}
			tm.Ops++
			e.opDone(th, op.Class(), 0, start)
			e.emitDone(th, core.PhaseTryPrivate)
			return res
		}
		if reason == htm.ReasonConflict {
			conflicts++
			if conflicts >= 2 {
				break
			}
		} else {
			conflicts = 0
		}
		e.lock.WaitUnlocked(th)
	}
	// Managed phase: serialize with other conflicting threads on the
	// auxiliary lock and keep eliding L.
	e.aux.Lock(th)
	tm.AuxAcquisitions++
	for i := optimistic; i < e.trials; i++ {
		ok, reason := e.htm.Run(th, attempt)
		e.emitAttempt(th, core.PhaseTryVisible, reason)
		if ok {
			if e.witness != nil {
				e.witness(e.htm.CommitStamp(th.ID()), 0, op, res)
			}
			e.aux.Unlock(th)
			tm.Ops++
			e.opDone(th, op.Class(), 1, start)
			e.emitDone(th, core.PhaseTryVisible)
			return res
		}
		e.lock.WaitUnlocked(th)
	}
	// Pessimistic fallback, still holding aux to keep the queue orderly.
	e.lock.Lock(th)
	tm.LockAcquisitions++
	e.emit(th, core.TraceEvent{Kind: core.TraceLock, Peer: -1})
	var holdStart int64
	if e.rec != nil {
		holdStart = th.Now()
	}
	res = op.Apply(th)
	if e.witness != nil {
		e.witness(htm.LockStamp(th), 0, op, res)
	}
	if e.rec != nil {
		e.rec.RecordLockHold(th.ID(), th.Now()-holdStart)
	}
	e.lock.Unlock(th)
	e.aux.Unlock(th)
	tm.Ops++
	e.opDone(th, op.Class(), 2, start)
	e.emitDone(th, core.PhaseCombineUnderLock)
	return res
}

// fcDesc is a flat-combining operation descriptor. Status lives in
// simulated memory: 0 free, 1 announced; the Done transition is a direct
// store of 2 ordered after the result write. span, helper and helperSpan
// are trace attribution; like op and result, their cross-thread visibility
// is ordered by the announce/Done protocol.
type fcDesc struct {
	status     memsim.Addr
	op         engine.Op
	result     uint64
	span       uint64
	helper     int
	helperSpan uint64
}

const (
	fcAnnounced uint64 = 1
	fcDone      uint64 = 2
)

// fcCore is the announcement/combining machinery shared by FC and TLE+FC.
type fcCore struct {
	witness engine.WitnessFunc
	rec     engine.Recorder
	ms      *metricsSet  // owning engine's metrics set (trace emission)
	lock    *locks.TATAS // combiner lock (= the data-structure lock)
	pub     *pubarr.Array
	descs   []fcDesc
	combine engine.CombineFunc
	batch   int
	passes  int

	ops  [][]engine.Op
	res  [][]uint64
	done [][]bool
	sel  [][]int
}

func newFCCore(env memsim.Env, opts *Options) *fcCore {
	total := env.NumThreads() + 1
	c := &fcCore{
		lock:    locks.NewTATAS(env),
		pub:     pubarr.New(env, total),
		descs:   make([]fcDesc, total),
		combine: opts.Combine,
		batch:   opts.MaxBatch,
		passes:  opts.FCPasses,
		ops:     make([][]engine.Op, total),
		res:     make([][]uint64, total),
		done:    make([][]bool, total),
		sel:     make([][]int, total),
	}
	if opts.Lock != nil {
		if tt, ok := opts.Lock.(*locks.TATAS); ok {
			c.lock = tt
		}
	}
	for t := range c.descs {
		c.descs[t].status = env.Alloc(memsim.WordsPerLine)
		env.StoreWord(c.descs[t].status, 0)
	}
	return c
}

// execute runs the flat-combining protocol for thread th's op: announce,
// then either get helped or become the combiner. The second return value
// reports whether the thread acted as combiner (vs being helped).
func (c *fcCore) execute(th *memsim.Thread, op engine.Op, tm *engine.Metrics) (uint64, bool) {
	t := th.ID()
	d := &c.descs[t]
	d.op = op
	if c.ms != nil && c.ms.tracer != nil {
		d.span = c.ms.spans[t].span
		d.helper = -1
		d.helperSpan = 0
	}
	th.Store(d.status, fcAnnounced)
	c.pub.Announce(th, t, uint64(t)+1)
	c.ms.emit(th, core.TraceEvent{Kind: core.TraceAnnounce, Class: op.Class(), Peer: -1})
	for {
		// Wait (passively) until either our op is marked done or the
		// combiner lock is observed free — the same probe order and cycle
		// charges as checking status then lock then yielding in a loop.
		if c.lock.WaitUnlockedOr(th, d.status, fcDone) == 0 {
			tm.Ops++
			c.ms.emit(th, core.TraceEvent{Kind: core.TraceHelped, Phase: core.PhaseCombineUnderLock,
				Peer: d.helper, PeerSpan: d.helperSpan})
			return d.result, false
		}
		if c.lock.TryLock(th) {
			tm.LockAcquisitions++
			c.ms.emit(th, core.TraceEvent{Kind: core.TraceLock, Peer: -1})
			var holdStart int64
			if c.rec != nil {
				holdStart = th.Now()
			}
			// Classic FC: keep scanning for newly announced requests
			// for a few passes before handing the lock over.
			ownDone, ownRes := false, uint64(0)
			for pass := 0; pass < c.passes; pass++ {
				done1, res1, n := c.combineSession(th, t, tm)
				if done1 {
					ownDone, ownRes = true, res1
				}
				if n == 0 {
					break // nothing announced; stop scanning
				}
			}
			if c.rec != nil {
				c.rec.RecordLockHold(t, th.Now()-holdStart)
			}
			c.lock.Unlock(th)
			if !ownDone {
				// Our op was completed by the previous combiner
				// between our status check and lock acquisition.
				th.SpinLoadUntilEq(d.status, fcDone)
				ownRes = d.result
				c.ms.emit(th, core.TraceEvent{Kind: core.TraceHelped, Phase: core.PhaseCombineUnderLock,
					Peer: d.helper, PeerSpan: d.helperSpan})
			}
			tm.Ops++
			return ownRes, true
		}
		th.Yield()
	}
}

// combineSession scans the publication array and applies all announced
// operations under the lock using the combining function. Returns whether
// the combiner's own op was applied, its result, and how many operations
// the pass selected.
func (c *fcCore) combineSession(th *memsim.Thread, t int, tm *engine.Metrics) (bool, uint64, int) {
	sel := c.sel[t][:0]
	for tid := 0; tid < c.pub.Slots(); tid++ {
		if c.pub.Read(th, tid) == 0 {
			continue
		}
		if th.Load(c.descs[tid].status) != fcAnnounced {
			continue
		}
		c.pub.Clear(th, tid)
		sel = append(sel, tid)
	}
	c.sel[t] = sel
	if len(sel) == 0 {
		return false, 0, 0
	}
	selected := len(sel)
	tm.CombinerSessions++
	tm.CombinedOps += uint64(len(sel))
	if c.rec != nil {
		c.rec.RecordCombine(t, len(sel))
	}
	c.ms.emit(th, core.TraceEvent{Kind: core.TraceSelect, N: len(sel), Peer: -1})
	ownDone, ownRes := false, uint64(0)
	for len(sel) > 0 {
		n := len(sel)
		if c.batch > 0 && n > c.batch {
			n = c.batch
		}
		ops, res, done := c.buffers(t, n)
		for i := 0; i < n; i++ {
			ops[i] = c.descs[sel[i]].op
			res[i] = 0
			done[i] = false
		}
		c.combine(th, ops, res, done)
		progressed := false
		for i := 0; i < n; i++ {
			if done[i] {
				progressed = true
				break
			}
		}
		if !progressed {
			engine.ApplyEach(th, ops, res, done)
		}
		stamp := htm.LockStamp(th)
		keep := sel[:0]
		for i := 0; i < n; i++ {
			tid := sel[i]
			if !done[i] {
				keep = append(keep, tid)
				continue
			}
			if c.witness != nil {
				c.witness(stamp, i, ops[i], res[i])
			}
			if tid == t {
				ownDone, ownRes = true, res[i]
				continue
			}
			od := &c.descs[tid]
			od.result = res[i]
			if c.ms != nil && c.ms.tracer != nil {
				od.helper = t
				od.helperSpan = c.ms.spans[t].span
				c.ms.emit(th, core.TraceEvent{Kind: core.TraceHelp, Phase: core.PhaseCombineUnderLock,
					Peer: tid, PeerSpan: od.span})
			}
			th.Store(od.status, fcDone)
		}
		keep = append(keep, sel[n:]...)
		sel = keep
	}
	c.sel[t] = sel[:0]
	return ownDone, ownRes, selected
}

func (c *fcCore) buffers(t, n int) ([]engine.Op, []uint64, []bool) {
	if cap(c.ops[t]) < n {
		c.ops[t] = make([]engine.Op, n)
		c.res[t] = make([]uint64, n)
		c.done[t] = make([]bool, n)
	}
	return c.ops[t][:n], c.res[t][:n], c.done[t][:n]
}

// FCEngine is classic flat combining: all operations are delegated and
// applied by a combiner holding the lock.
type FCEngine struct {
	core *fcCore
	metricsSet
}

var _ engine.MeteredEngine = (*FCEngine)(nil)

// NewFC builds the FC baseline.
func NewFC(env memsim.Env, opts Options) *FCEngine {
	opts.normalize(env)
	e := &FCEngine{core: newFCCore(env, &opts), metricsSet: newMetricsSet(env, nil)}
	e.core.ms = &e.metricsSet
	return e
}

// Name implements engine.Engine.
func (e *FCEngine) Name() string { return "FC" }

// CompletionPaths implements engine.MeteredEngine.
func (e *FCEngine) CompletionPaths() []string { return []string{"combiner", "helped"} }

// SetWitness installs a serialization-witness observer (nil disables).
func (e *FCEngine) SetWitness(fn engine.WitnessFunc) {
	e.metricsSet.SetWitness(fn)
	e.core.witness = fn
}

// SetRecorder installs a metrics recorder (nil disables).
func (e *FCEngine) SetRecorder(rec engine.Recorder) {
	e.metricsSet.SetRecorder(rec)
	e.core.rec = rec
}

// Execute applies op with flat combining.
func (e *FCEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	res, combined := e.core.execute(th, op, &e.per[th.ID()].m)
	path := 1
	if combined {
		path = 0
	}
	e.opDone(th, op.Class(), path, start)
	e.emitDone(th, core.PhaseCombineUnderLock)
	return res
}

// TLEFCEngine is the naive TLE+FC combination from the paper's
// introduction: try the operation with TLE-style speculation, and when the
// budget is exhausted announce it and combine under the lock. Announced
// operations block concurrent speculation (the lock is held while
// combining), which is exactly the weakness HCF removes.
type TLEFCEngine struct {
	lock   locks.Lock
	htm    *htm.Engine
	trials int
	core   *fcCore
	metricsSet
}

var _ engine.MeteredEngine = (*TLEFCEngine)(nil)

// NewTLEFC builds the TLE+FC baseline.
func NewTLEFC(env memsim.Env, opts Options) *TLEFCEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	core := newFCCore(env, &opts)
	e := &TLEFCEngine{
		lock:       core.lock, // speculation elides the combiner lock
		htm:        eng,
		trials:     opts.Trials,
		core:       core,
		metricsSet: newMetricsSet(env, eng),
	}
	e.core.ms = &e.metricsSet
	return e
}

// Name implements engine.Engine.
func (e *TLEFCEngine) Name() string { return "TLE+FC" }

// CompletionPaths implements engine.MeteredEngine.
func (e *TLEFCEngine) CompletionPaths() []string { return []string{"htm", "combiner", "helped"} }

// SetWitness installs a serialization-witness observer (nil disables).
func (e *TLEFCEngine) SetWitness(fn engine.WitnessFunc) {
	e.metricsSet.SetWitness(fn)
	e.core.witness = fn
}

// SetRecorder installs a metrics recorder (nil disables).
func (e *TLEFCEngine) SetRecorder(rec engine.Recorder) {
	e.metricsSet.SetRecorder(rec)
	e.core.rec = rec
}

// Execute applies op with TLE first, then flat combining.
func (e *TLEFCEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	for i := 0; i < e.trials; i++ {
		ok, reason := e.htm.Run(th, func(tx *htm.Tx) {
			if e.lock.Locked(tx) {
				e.abortLockHeld(tx, e.lock)
			}
			res = op.Apply(tx)
		})
		e.emitAttempt(th, core.PhaseTryPrivate, reason)
		if ok {
			if e.witness != nil {
				e.witness(e.htm.CommitStamp(th.ID()), 0, op, res)
			}
			tm.Ops++
			e.opDone(th, op.Class(), 0, start)
			e.emitDone(th, core.PhaseTryPrivate)
			return res
		}
		e.lock.WaitUnlocked(th)
	}
	res, combined := e.core.execute(th, op, tm)
	path := 2
	if combined {
		path = 1
	}
	e.opDone(th, op.Class(), path, start)
	e.emitDone(th, core.PhaseCombineUnderLock)
	return res
}
