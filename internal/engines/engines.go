// Package engines implements the five comparison baselines evaluated in
// §3 of the paper:
//
//   - Lock: every operation runs under the data-structure lock.
//   - TLE: transactional lock elision over that lock [Rajwar & Goodman /
//     Dice et al.].
//   - FC: classic flat combining [Hendler et al.], with a data-structure
//     provided combining function.
//   - SCM: TLE with an auxiliary lock serializing conflicting transactions
//     [Afek et al.].
//   - TLE+FC: the naive combination discussed in the paper's introduction —
//     TLE first, and on failure announce and combine under the lock.
//
// All engines run the same sequential operation code (engine.Op) over the
// same substrate as HCF, and are compositions of the same stage
// primitives (internal/phases: SpecLoop, LockApply, Session), so the
// experiments compare synchronization disciplines, not implementations.
package engines

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/phases"
	"hcf/internal/pubarr"
)

// Options configures the baseline engines. Zero values take defaults.
type Options struct {
	// Lock is the data-structure lock L; nil allocates a TATAS lock.
	Lock locks.Lock
	// HTM configures the transactional engine (TLE, SCM, TLE+FC).
	HTM htm.Config
	// Trials is the total speculation budget per operation (default 10),
	// matching the budget the paper gives every HTM-using variant.
	Trials int
	// Combine is the combining function used by FC and TLE+FC; nil means
	// engine.ApplyEach.
	Combine engine.CombineFunc
	// MaxBatch bounds operations per Combine call (default: no bound, as
	// FC combines under the lock where capacity does not matter).
	MaxBatch int
	// FCPasses bounds how many publication-array scan passes an FC
	// combiner makes per lock acquisition (default 2): classic flat
	// combining keeps scanning while requests keep arriving (it stops
	// early when a pass finds nothing), amortizing the lock handoff.
	FCPasses int
}

func (o *Options) normalize(env memsim.Env) {
	if o.Lock == nil {
		o.Lock = locks.NewTATAS(env)
	}
	if o.Trials <= 0 {
		o.Trials = 10
	}
	if o.Combine == nil {
		o.Combine = engine.ApplyEach
	}
	if o.FCPasses <= 0 {
		o.FCPasses = 2
	}
}

// threadMetrics pads per-thread counters against false sharing.
type threadMetrics struct {
	m engine.Metrics
	_ [40]byte
}

// metricsSet is the shared per-thread metrics plumbing; it also carries
// the hook bundle (serialization witness, metrics recorder, trace emitter)
// the phase stages observe through, and implements phases.Emitter over the
// optional lifecycle tracer (see trace.go).
type metricsSet struct {
	per   []threadMetrics
	eng   *htm.Engine // may be nil (Lock, FC)
	hooks phases.Hooks
	// tracer, when set, receives lifecycle events (see trace.go).
	tracer engine.Tracer
	spans  []spanState
}

// wire points the hook bundle's emitter at the set's final address; every
// engine constructor calls it after embedding the set.
func (s *metricsSet) wire() { s.hooks.Em = s }

// SetWitness installs a serialization-witness observer (nil disables).
func (s *metricsSet) SetWitness(fn engine.WitnessFunc) { s.hooks.Witness = fn }

// SetRecorder installs a metrics recorder (nil disables). Engines with an
// HTM component also stream per-transaction outcomes through it.
func (s *metricsSet) SetRecorder(rec engine.Recorder) {
	s.hooks.Rec = rec
	if s.eng == nil {
		return
	}
	if rec == nil {
		s.eng.SetObserver(nil)
		return
	}
	s.eng.SetObserver(func(t int, reason htm.Reason, duration int64) {
		rec.RecordTx(t, int(reason), duration)
	})
}

// opStart returns the operation start timestamp, or 0 with metrics off.
func (s *metricsSet) opStart(th *memsim.Thread) int64 {
	if s.hooks.Rec == nil {
		return 0
	}
	return th.Now()
}

// opDone records one completed operation if a recorder is installed.
func (s *metricsSet) opDone(th *memsim.Thread, class, path int, start int64) {
	if s.hooks.Rec == nil {
		return
	}
	s.hooks.Rec.RecordOp(th.ID(), class, path, th.Now()-start)
}

func newMetricsSet(env memsim.Env, eng *htm.Engine) metricsSet {
	return metricsSet{per: make([]threadMetrics, env.NumThreads()+1), eng: eng}
}

func (s *metricsSet) Metrics() engine.Metrics {
	var m engine.Metrics
	for i := range s.per {
		m.Merge(&s.per[i].m)
	}
	if s.eng != nil {
		m.HTM = s.eng.TotalStats()
	}
	return m
}

func (s *metricsSet) ResetMetrics() {
	for i := range s.per {
		s.per[i].m = engine.Metrics{}
	}
	if s.eng != nil {
		s.eng.ResetStats()
	}
}

// LockEngine runs every operation under the lock — the paper's "Lock"
// variant.
type LockEngine struct {
	lock locks.Lock
	metricsSet
}

var _ engine.MeteredEngine = (*LockEngine)(nil)

// NewLock builds the Lock baseline.
func NewLock(env memsim.Env, opts Options) *LockEngine {
	opts.normalize(env)
	e := &LockEngine{lock: opts.Lock, metricsSet: newMetricsSet(env, nil)}
	e.wire()
	return e
}

// Name implements engine.Engine.
func (e *LockEngine) Name() string { return "Lock" }

// CompletionPaths implements engine.MeteredEngine.
func (e *LockEngine) CompletionPaths() []string { return []string{engine.PathLock} }

// Execute applies op under the data-structure lock.
func (e *LockEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	res := phases.LockApply(th, e.lock, op, &e.hooks, tm)
	tm.Ops++
	e.opDone(th, op.Class(), 0, start)
	e.emitDone(th, engine.PhaseCombineUnderLock)
	return res
}

// TLEEngine implements transactional lock elision: speculate up to Trials
// times (subscribing to L, waiting for L to be free between attempts), then
// fall back to the lock.
type TLEEngine struct {
	lock   locks.Lock
	htm    *htm.Engine
	trials int
	metricsSet
}

var _ engine.MeteredEngine = (*TLEEngine)(nil)

// NewTLE builds the TLE baseline.
func NewTLE(env memsim.Env, opts Options) *TLEEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	e := &TLEEngine{
		lock:       opts.Lock,
		htm:        eng,
		trials:     opts.Trials,
		metricsSet: newMetricsSet(env, eng),
	}
	e.wire()
	return e
}

// Name implements engine.Engine.
func (e *TLEEngine) Name() string { return "TLE" }

// CompletionPaths implements engine.MeteredEngine.
func (e *TLEEngine) CompletionPaths() []string {
	return []string{engine.PathHTM, engine.PathLock}
}

// Execute applies op with TLE.
func (e *TLEEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	loop := phases.SpecLoop{Eng: e.htm, Em: e.hooks.Em, Phase: engine.PhaseTryPrivate}
	ok := loop.Run(th, e.trials, func(tx *htm.Tx) {
		phases.SubscribeLock(tx, e.lock, e.hooks.Em)
		res = op.Apply(tx)
	}, func(htm.Reason) bool {
		e.lock.WaitUnlocked(th)
		return true
	})
	if ok {
		if e.hooks.Witness != nil {
			e.hooks.Witness(e.htm.CommitStamp(th.ID()), 0, op, res)
		}
		tm.Ops++
		e.opDone(th, op.Class(), 0, start)
		e.emitDone(th, engine.PhaseTryPrivate)
		return res
	}
	res = phases.LockApply(th, e.lock, op, &e.hooks, tm)
	tm.Ops++
	e.opDone(th, op.Class(), 1, start)
	e.emitDone(th, engine.PhaseCombineUnderLock)
	return res
}

// SCMEngine implements software-assisted conflict management for TLE
// [Afek et al.]: threads whose transactions abort on data conflicts
// serialize on an auxiliary lock and keep speculating (still eliding L), so
// one conflicting pair does not escalate into a global lock acquisition.
type SCMEngine struct {
	lock   locks.Lock
	aux    locks.Lock
	htm    *htm.Engine
	trials int
	metricsSet
}

var _ engine.MeteredEngine = (*SCMEngine)(nil)

// NewSCM builds the SCM baseline.
func NewSCM(env memsim.Env, opts Options) *SCMEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	e := &SCMEngine{
		lock:       opts.Lock,
		aux:        locks.NewTATAS(env),
		htm:        eng,
		trials:     opts.Trials,
		metricsSet: newMetricsSet(env, eng),
	}
	e.wire()
	return e
}

// Name implements engine.Engine.
func (e *SCMEngine) Name() string { return "SCM" }

// CompletionPaths implements engine.MeteredEngine.
func (e *SCMEngine) CompletionPaths() []string {
	return []string{engine.PathHTM, engine.PathHTMManaged, engine.PathLock}
}

// Execute applies op with TLE plus auxiliary-lock conflict management.
func (e *SCMEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	attempt := func(tx *htm.Tx) {
		phases.SubscribeLock(tx, e.lock, e.hooks.Em)
		res = op.Apply(tx)
	}
	// Optimistic phase: half the budget without the auxiliary lock. Two
	// consecutive conflict aborts indicate persistent contention and send
	// the thread to the auxiliary lock.
	optimistic := e.trials / 2
	conflicts := 0
	loop := phases.SpecLoop{Eng: e.htm, Em: e.hooks.Em, Phase: engine.PhaseTryPrivate}
	if loop.Run(th, optimistic, attempt, func(reason htm.Reason) bool {
		if reason == htm.ReasonConflict {
			conflicts++
			if conflicts >= 2 {
				return false
			}
		} else {
			conflicts = 0
		}
		e.lock.WaitUnlocked(th)
		return true
	}) {
		if e.hooks.Witness != nil {
			e.hooks.Witness(e.htm.CommitStamp(th.ID()), 0, op, res)
		}
		tm.Ops++
		e.opDone(th, op.Class(), 0, start)
		e.emitDone(th, engine.PhaseTryPrivate)
		return res
	}
	// Managed phase: serialize with other conflicting threads on the
	// auxiliary lock and keep eliding L.
	e.aux.Lock(th)
	tm.AuxAcquisitions++
	loop.Phase = engine.PhaseTryVisible
	if loop.Run(th, e.trials-optimistic, attempt, func(htm.Reason) bool {
		e.lock.WaitUnlocked(th)
		return true
	}) {
		if e.hooks.Witness != nil {
			e.hooks.Witness(e.htm.CommitStamp(th.ID()), 0, op, res)
		}
		e.aux.Unlock(th)
		tm.Ops++
		e.opDone(th, op.Class(), 1, start)
		e.emitDone(th, engine.PhaseTryVisible)
		return res
	}
	// Pessimistic fallback, still holding aux to keep the queue orderly.
	res = phases.LockApply(th, e.lock, op, &e.hooks, tm)
	e.aux.Unlock(th)
	tm.Ops++
	e.opDone(th, op.Class(), 2, start)
	e.emitDone(th, engine.PhaseCombineUnderLock)
	return res
}

// fcCore is the announcement/combining machinery shared by FC and TLE+FC:
// a phases.Session over a descriptor table, driven under a TATAS combiner
// lock. Status uses the shared protocol constants (StatusAnnounced /
// StatusDone); flat combining has no claim step, so StatusBeingHelped is
// never stored.
type fcCore struct {
	ms      *metricsSet  // owning engine's hooks (trace/witness/metrics)
	lock    *locks.TATAS // combiner lock (= the data-structure lock)
	pub     *pubarr.Array
	descs   []phases.Desc
	sess    phases.Session
	combine engine.CombineFunc
	batch   int
	passes  int
	scratch []phases.Scratch
}

func newFCCore(env memsim.Env, opts *Options, ms *metricsSet) *fcCore {
	total := env.NumThreads() + 1
	c := &fcCore{
		ms:      ms,
		lock:    locks.NewTATAS(env),
		pub:     pubarr.New(env, total),
		combine: opts.Combine,
		batch:   opts.MaxBatch,
		passes:  opts.FCPasses,
		scratch: make([]phases.Scratch, total),
	}
	if opts.Lock != nil {
		if tt, ok := opts.Lock.(*locks.TATAS); ok {
			c.lock = tt
		}
	}
	c.descs = phases.NewDescs(env, total)
	c.sess = phases.Session{Descs: c.descs, H: &ms.hooks}
	return c
}

// execute runs the flat-combining protocol for thread th's op: announce,
// then either get helped or become the combiner. The second return value
// reports whether the thread acted as combiner (vs being helped).
func (c *fcCore) execute(th *memsim.Thread, op engine.Op, tm *engine.Metrics) (uint64, bool) {
	t := th.ID()
	d := &c.descs[t]
	d.Op = op
	if c.ms.Active() {
		d.Span = c.ms.spans[t].span
		d.Helper = -1
		d.HelperSpan = 0
	}
	phases.Announce(th, t, d, c.pub)
	c.ms.Emit(th, engine.TraceEvent{Kind: engine.TraceAnnounce, Class: op.Class(), Peer: -1})
	for {
		// Wait (passively) until either our op is marked done or the
		// combiner lock is observed free — the same probe order and cycle
		// charges as checking status then lock then yielding in a loop.
		if c.lock.WaitUnlockedOr(th, d.Status, phases.StatusDone) == 0 {
			tm.Ops++
			c.ms.Emit(th, engine.TraceEvent{Kind: engine.TraceHelped, Phase: engine.PhaseCombineUnderLock,
				Peer: d.Helper, PeerSpan: d.HelperSpan})
			return d.Result, false
		}
		if c.lock.TryLock(th) {
			tm.LockAcquisitions++
			c.ms.Emit(th, engine.TraceEvent{Kind: engine.TraceLock, Peer: -1})
			var holdStart int64
			if c.ms.hooks.Rec != nil {
				holdStart = th.Now()
			}
			// Classic FC: keep scanning for newly announced requests
			// for a few passes before handing the lock over.
			ownDone, ownRes := false, uint64(0)
			for pass := 0; pass < c.passes; pass++ {
				done1, res1, n := c.combineSession(th, t, tm)
				if done1 {
					ownDone, ownRes = true, res1
				}
				if n == 0 {
					break // nothing announced; stop scanning
				}
			}
			if c.ms.hooks.Rec != nil {
				c.ms.hooks.Rec.RecordLockHold(t, th.Now()-holdStart)
			}
			c.lock.Unlock(th)
			if !ownDone {
				// Our op was completed by the previous combiner
				// between our status check and lock acquisition.
				ownRes = phases.WaitDone(th, d)
				c.ms.Emit(th, engine.TraceEvent{Kind: engine.TraceHelped, Phase: engine.PhaseCombineUnderLock,
					Peer: d.Helper, PeerSpan: d.HelperSpan})
			}
			tm.Ops++
			return ownRes, true
		}
		th.Yield()
	}
}

// combineSession scans the publication array and applies all announced
// operations under the lock using the combining function. Returns whether
// the combiner's own op was applied, its result, and how many operations
// the pass selected.
func (c *fcCore) combineSession(th *memsim.Thread, t int, tm *engine.Metrics) (bool, uint64, int) {
	sc := &c.scratch[t]
	sc.Pend = sc.Pend[:0]
	for tid := 0; tid < c.pub.Slots(); tid++ {
		if c.pub.Read(th, tid) == 0 {
			continue
		}
		if th.Load(c.descs[tid].Status) != phases.StatusAnnounced {
			continue
		}
		c.pub.Clear(th, tid)
		sc.Pend = append(sc.Pend, tid)
	}
	if len(sc.Pend) == 0 {
		return false, 0, 0
	}
	selected := len(sc.Pend)
	tm.CombinerSessions++
	tm.CombinedOps += uint64(selected)
	if c.ms.hooks.Rec != nil {
		c.ms.hooks.Rec.RecordCombine(t, selected)
	}
	c.ms.Emit(th, engine.TraceEvent{Kind: engine.TraceSelect, N: selected, Peer: -1})
	ownRes, ownDone := c.sess.ApplyLocked(th, t, sc, c.combine, c.batch, engine.PhaseCombineUnderLock)
	return ownDone, ownRes, selected
}

// FCEngine is classic flat combining: all operations are delegated and
// applied by a combiner holding the lock.
type FCEngine struct {
	core *fcCore
	metricsSet
}

var _ engine.MeteredEngine = (*FCEngine)(nil)

// NewFC builds the FC baseline.
func NewFC(env memsim.Env, opts Options) *FCEngine {
	opts.normalize(env)
	e := &FCEngine{metricsSet: newMetricsSet(env, nil)}
	e.wire()
	e.core = newFCCore(env, &opts, &e.metricsSet)
	return e
}

// Name implements engine.Engine.
func (e *FCEngine) Name() string { return "FC" }

// CompletionPaths implements engine.MeteredEngine.
func (e *FCEngine) CompletionPaths() []string {
	return []string{engine.PathCombiner, engine.PathHelped}
}

// Execute applies op with flat combining.
func (e *FCEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	res, combined := e.core.execute(th, op, &e.per[th.ID()].m)
	path := 1
	if combined {
		path = 0
	}
	e.opDone(th, op.Class(), path, start)
	e.emitDone(th, engine.PhaseCombineUnderLock)
	return res
}

// TLEFCEngine is the naive TLE+FC combination from the paper's
// introduction: try the operation with TLE-style speculation, and when the
// budget is exhausted announce it and combine under the lock. Announced
// operations block concurrent speculation (the lock is held while
// combining), which is exactly the weakness HCF removes.
type TLEFCEngine struct {
	lock   locks.Lock
	htm    *htm.Engine
	trials int
	core   *fcCore
	metricsSet
}

var _ engine.MeteredEngine = (*TLEFCEngine)(nil)

// NewTLEFC builds the TLE+FC baseline.
func NewTLEFC(env memsim.Env, opts Options) *TLEFCEngine {
	opts.normalize(env)
	eng := htm.New(env, opts.HTM)
	e := &TLEFCEngine{
		htm:        eng,
		trials:     opts.Trials,
		metricsSet: newMetricsSet(env, eng),
	}
	e.wire()
	e.core = newFCCore(env, &opts, &e.metricsSet)
	e.lock = e.core.lock // speculation elides the combiner lock
	return e
}

// Name implements engine.Engine.
func (e *TLEFCEngine) Name() string { return "TLE+FC" }

// CompletionPaths implements engine.MeteredEngine.
func (e *TLEFCEngine) CompletionPaths() []string {
	return []string{engine.PathHTM, engine.PathCombiner, engine.PathHelped}
}

// Execute applies op with TLE first, then flat combining.
func (e *TLEFCEngine) Execute(th *memsim.Thread, op engine.Op) uint64 {
	tm := &e.per[th.ID()].m
	start := e.opStart(th)
	e.beginSpan(th, op.Class())
	var res uint64
	loop := phases.SpecLoop{Eng: e.htm, Em: e.hooks.Em, Phase: engine.PhaseTryPrivate}
	ok := loop.Run(th, e.trials, func(tx *htm.Tx) {
		phases.SubscribeLock(tx, e.lock, e.hooks.Em)
		res = op.Apply(tx)
	}, func(htm.Reason) bool {
		e.lock.WaitUnlocked(th)
		return true
	})
	if ok {
		if e.hooks.Witness != nil {
			e.hooks.Witness(e.htm.CommitStamp(th.ID()), 0, op, res)
		}
		tm.Ops++
		e.opDone(th, op.Class(), 0, start)
		e.emitDone(th, engine.PhaseTryPrivate)
		return res
	}
	res, combined := e.core.execute(th, op, tm)
	path := 2
	if combined {
		path = 1
	}
	e.opDone(th, op.Class(), path, start)
	e.emitDone(th, engine.PhaseCombineUnderLock)
	return res
}
