package engines

import (
	"sort"
	"testing"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// incOp increments a shared counter, returning the observed pre-value.
type incOp struct {
	addr memsim.Addr
}

func (o incOp) Apply(ctx memsim.Ctx) uint64 {
	v := ctx.Load(o.addr)
	ctx.Store(o.addr, v+1)
	return v
}

func (o incOp) Class() int { return 0 }

func combineIncs(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	var addr memsim.Addr
	any := false
	for i, op := range ops {
		if !done[i] {
			addr = op.(incOp).addr
			any = true
		}
	}
	if !any {
		return
	}
	v := ctx.Load(addr)
	for i := range ops {
		if !done[i] {
			res[i] = v
			v++
			done[i] = true
		}
	}
	ctx.Store(addr, v)
}

// allEngines builds every engine variant over env, sharing nothing.
func allEngines(t *testing.T, env memsim.Env) map[string]engine.Engine {
	t.Helper()
	opts := func() Options { return Options{Combine: combineIncs} }
	hcf, err := core.New(env, core.Config{Policies: []core.Policy{{
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		RunMulti:           combineIncs,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]engine.Engine{
		"Lock":   NewLock(env, opts()),
		"TLE":    NewTLE(env, opts()),
		"FC":     NewFC(env, opts()),
		"SCM":    NewSCM(env, opts()),
		"TLE+FC": NewTLEFC(env, opts()),
		"HCF":    hcf,
	}
}

// checkPermutation verifies the inc-result stream is 0..n-1.
func checkPermutation(t *testing.T, results [][]uint64, total int) {
	t.Helper()
	var all []uint64
	for _, r := range results {
		all = append(all, r...)
	}
	if len(all) != total {
		t.Fatalf("got %d results, want %d", len(all), total)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("results are not a permutation of 0..%d: position %d holds %d", total-1, i, v)
		}
	}
}

func TestAllEnginesExactlyOnceDet(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			eng := allEngines(t, env)[name]
			counter := env.Alloc(1)
			results := make([][]uint64, threads)
			env.Run(func(th *memsim.Thread) {
				mine := make([]uint64, 0, perThread)
				for i := 0; i < perThread; i++ {
					mine = append(mine, eng.Execute(th, incOp{addr: counter}))
				}
				results[th.ID()] = mine
			})
			if got := env.Boot().Load(counter); got != threads*perThread {
				t.Fatalf("counter = %d, want %d", got, threads*perThread)
			}
			checkPermutation(t, results, threads*perThread)
			if m := eng.Metrics(); m.Ops != threads*perThread {
				t.Fatalf("metrics.Ops = %d, want %d", m.Ops, threads*perThread)
			}
		})
	}
}

func TestAllEnginesExactlyOnceReal(t *testing.T) {
	const threads, perThread = 6, 60
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewReal(memsim.RealConfig{Threads: threads})
			eng := allEngines(t, env)[name]
			counter := env.Alloc(1)
			results := make([][]uint64, threads)
			env.Run(func(th *memsim.Thread) {
				mine := make([]uint64, 0, perThread)
				for i := 0; i < perThread; i++ {
					mine = append(mine, eng.Execute(th, incOp{addr: counter}))
				}
				results[th.ID()] = mine
			})
			if got := env.Boot().Load(counter); got != threads*perThread {
				t.Fatalf("counter = %d, want %d", got, threads*perThread)
			}
			checkPermutation(t, results, threads*perThread)
		})
	}
}

func TestEngineNames(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	want := map[string]bool{"Lock": true, "TLE": true, "FC": true, "SCM": true, "TLE+FC": true, "HCF": true}
	for key, eng := range allEngines(t, env) {
		if eng.Name() != key {
			t.Errorf("engine under key %q reports name %q", key, eng.Name())
		}
		delete(want, eng.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing engines: %v", want)
	}
}

func TestLockEngineCountsAcquisitions(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	eng := NewLock(env, Options{})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 10; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.LockAcquisitions != 20 {
		t.Fatalf("LockAcquisitions = %d, want 20", m.LockAcquisitions)
	}
}

func TestTLEUncontendedStaysSpeculative(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := NewTLE(env, Options{})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 50; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.LockAcquisitions != 0 {
		t.Fatalf("uncontended TLE acquired the lock %d times", m.LockAcquisitions)
	}
	if m.HTM.Commits != 50 {
		t.Fatalf("HTM commits = %d, want 50", m.HTM.Commits)
	}
}

func TestTLEFallsBackUnderInjectedAborts(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := NewTLE(env, Options{HTM: htm.Config{InjectAbortEvery: 1}, Trials: 3})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 10; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.LockAcquisitions != 10 {
		t.Fatalf("expected every op to fall back to the lock, got %d", m.LockAcquisitions)
	}
	if got := env.Boot().Load(counter); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
}

func TestFCCombinesUnderContention(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 12})
	eng := NewFC(env, Options{Combine: combineIncs})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 20; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.CombiningDegree() <= 1.0 {
		t.Fatalf("FC combining degree = %.2f, want > 1", m.CombiningDegree())
	}
	if got := env.Boot().Load(counter); got != 12*20 {
		t.Fatalf("counter = %d", got)
	}
}

func TestSCMUsesAuxLockUnderConflicts(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	eng := NewSCM(env, Options{})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 30; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.AuxAcquisitions == 0 {
		t.Fatal("SCM never used its auxiliary lock under heavy conflicts")
	}
}

func TestTLEFCCombiningDegreeIsSmall(t *testing.T) {
	// The paper observes TLE+FC combines very little: speculation succeeds
	// often enough that few ops are announced simultaneously. With a
	// single hot counter everything conflicts, but sessions should still
	// be small relative to an FC session with the same thread count.
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	eng := NewTLEFC(env, Options{Combine: combineIncs})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 30; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	if got := env.Boot().Load(counter); got != 8*30 {
		t.Fatalf("counter = %d", got)
	}
}

func TestResetMetricsAllEngines(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	for name, eng := range allEngines(t, env) {
		t.Run(name, func(t *testing.T) {
			counter := env.Alloc(1)
			env.Run(func(th *memsim.Thread) {
				eng.Execute(th, incOp{addr: counter})
			})
			eng.ResetMetrics()
			m := eng.Metrics()
			if m.Ops != 0 || m.LockAcquisitions != 0 || m.HTM.Started != 0 {
				t.Fatalf("metrics not reset: %+v", m)
			}
		})
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	for _, name := range []string{"TLE", "FC", "SCM", "TLE+FC"} {
		t.Run(name, func(t *testing.T) {
			trace := func() (engine.Metrics, uint64) {
				env := memsim.NewDet(memsim.DetConfig{Threads: 5})
				eng := allEngines(t, env)[name]
				counter := env.Alloc(1)
				env.Run(func(th *memsim.Thread) {
					for i := 0; i < 25; i++ {
						eng.Execute(th, incOp{addr: counter})
					}
				})
				return eng.Metrics(), env.Boot().Load(counter)
			}
			m1, v1 := trace()
			m2, v2 := trace()
			if v1 != v2 || m1 != m2 {
				t.Fatalf("nondeterministic run:\n%+v %d\n%+v %d", m1, v1, m2, v2)
			}
		})
	}
}

func TestWitnessHooksAllEngines(t *testing.T) {
	const threads, perThread = 4, 20
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	for name, eng := range allEngines(t, env) {
		we, ok := eng.(engine.WitnessedEngine)
		if !ok {
			t.Fatalf("%s does not implement WitnessedEngine", name)
		}
		var stamps []uint64
		we.SetWitness(func(stamp uint64, intra int, op engine.Op, result uint64) {
			stamps = append(stamps, stamp)
		})
		counter := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < perThread; i++ {
				eng.Execute(th, incOp{addr: counter})
			}
		})
		if len(stamps) != threads*perThread {
			t.Fatalf("%s witnessed %d applications, want %d", name, len(stamps), threads*perThread)
		}
		we.SetWitness(nil) // disabling must not break execution
		env.Run(func(th *memsim.Thread) {
			eng.Execute(th, incOp{addr: counter})
		})
	}
}

// TestTLEFCEqualsTLEWithoutContention: the paper observes TLE+FC "performs
// almost identically to TLE"; with no conflicts the two take literally the
// same speculative path.
func TestTLEFCEqualsTLEWithoutContention(t *testing.T) {
	run := func(mk func(env memsim.Env) engine.Engine) (uint64, htm.Stats) {
		env := memsim.NewDet(memsim.DetConfig{Threads: 4})
		eng := mk(env)
		// Disjoint per-thread cells: zero conflicts.
		cells := make([]memsim.Addr, 4)
		for i := range cells {
			cells[i] = env.Alloc(memsim.WordsPerLine)
		}
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 50; i++ {
				eng.Execute(th, incOp{addr: cells[th.ID()]})
			}
		})
		m := eng.Metrics()
		return m.LockAcquisitions, m.HTM
	}
	tleLocks, tleHTM := run(func(env memsim.Env) engine.Engine { return NewTLE(env, Options{}) })
	fcLocks, fcHTM := run(func(env memsim.Env) engine.Engine { return NewTLEFC(env, Options{}) })
	if tleLocks != 0 || fcLocks != 0 {
		t.Fatalf("uncontended runs took locks: %d %d", tleLocks, fcLocks)
	}
	if tleHTM.Commits != fcHTM.Commits || tleHTM.Started != fcHTM.Started {
		t.Fatalf("TLE and TLE+FC diverged without contention: %+v vs %+v", tleHTM, fcHTM)
	}
}

// TestSCMHoldsAuxAcrossFallback: the pessimistic fallback must keep the
// auxiliary lock, keeping the conflicting queue orderly.
func TestSCMHoldsAuxAcrossFallback(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := NewSCM(env, Options{HTM: htm.Config{InjectAbortEvery: 1}, Trials: 4})
	counter := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 5; i++ {
			eng.Execute(th, incOp{addr: counter})
		}
	})
	m := eng.Metrics()
	if m.LockAcquisitions != 5 || m.AuxAcquisitions != 5 {
		t.Fatalf("lock=%d aux=%d, want 5/5 (every op escalates fully)", m.LockAcquisitions, m.AuxAcquisitions)
	}
	if got := env.Boot().Load(counter); got != 5 {
		t.Fatalf("counter = %d", got)
	}
}
