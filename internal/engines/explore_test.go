package engines

import (
	"fmt"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// TestAllEnginesExactlyOnceExplored pins the passive-wait handoff paths
// against lost wakeups under adversarial schedules. The audited windows:
//
//   - fcCore.execute's previous-combiner path: a thread that acquired the
//     combiner lock without completing its own op parks on
//     SpinLoadUntilEq(status, fcDone) after unlocking — sound only because
//     every combiner stores fcDone for all selected ops before Unlock.
//   - WaitUnlockedOr's dual subscription (own status OR combiner lock):
//     a waiter must never sleep through both the Done store and the unlock.
//
// Forced preemptions land inside these windows (between slot clear and
// status store, between status store and unlock); every seed must still
// complete every operation exactly once. A lost wakeup hangs the
// deterministic scheduler and fails by test timeout.
func TestAllEnginesExactlyOnceExplored(t *testing.T) {
	const threads, perThread = 7, 30
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 12; seed++ {
				env := memsim.NewDet(memsim.DetConfig{
					Threads: threads,
					Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 64, JitterClass: 3},
				})
				eng := allEngines(t, env)[name]
				counter := env.Alloc(1)
				results := make([][]uint64, threads)
				env.Run(func(th *memsim.Thread) {
					mine := make([]uint64, 0, perThread)
					for i := 0; i < perThread; i++ {
						mine = append(mine, eng.Execute(th, incOp{addr: counter}))
					}
					results[th.ID()] = mine
				})
				if got := env.Boot().Load(counter); got != threads*perThread {
					t.Fatalf("seed %d: counter = %d, want %d", seed, got, threads*perThread)
				}
				checkPermutation(t, results, threads*perThread)
			}
		})
	}
}

// TestFCExploredReplayDeterministic pins the determinism guarantee at the
// engine level: the same exploration seed must produce the identical result
// stream, so any failure a sweep finds replays exactly.
func TestFCExploredReplayDeterministic(t *testing.T) {
	run := func(seed uint64) string {
		const threads, perThread = 5, 25
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 32, JitterClass: 2},
		})
		eng := NewFC(env, Options{Combine: combineIncs})
		counter := env.Alloc(1)
		results := make([][]uint64, threads)
		env.Run(func(th *memsim.Thread) {
			mine := make([]uint64, 0, perThread)
			for i := 0; i < perThread; i++ {
				mine = append(mine, eng.Execute(th, incOp{addr: counter}))
			}
			results[th.ID()] = mine
		})
		return fmt.Sprint(results)
	}
	for _, seed := range []uint64{2, 11, 29} {
		if a, b := run(seed), run(seed); a != b {
			t.Fatalf("seed %d: explored FC replay diverged:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

var _ engine.Engine = (*FCEngine)(nil)
