package engines

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
)

// The baseline engines emit the same lifecycle-event vocabulary as HCF
// (engine.TraceEvent), so one collector, span builder, and exporter serve
// all six engines. The HCF phase names map onto the baselines' paths as:
//
//   - PhaseTryPrivate:       private speculation over L (TLE, SCM
//     optimistic, TLE+FC's TLE leg)
//   - PhaseTryVisible:       SCM's managed speculation (serialized on the
//     auxiliary lock)
//   - PhaseCombineUnderLock: any completion under the data-structure lock
//     (Lock, TLE/SCM fallback, FC and TLE+FC combining)
//
// Emission charges no simulated cycles; with no tracer installed only a
// nil check remains on the hot path.

// All five baselines emit lifecycle events.
var (
	_ engine.TracedEngine = (*LockEngine)(nil)
	_ engine.TracedEngine = (*TLEEngine)(nil)
	_ engine.TracedEngine = (*FCEngine)(nil)
	_ engine.TracedEngine = (*SCMEngine)(nil)
	_ engine.TracedEngine = (*TLEFCEngine)(nil)
)

// spanState tracks one thread's current operation span, padded against
// false sharing.
type spanState struct {
	span uint64
	seq  uint64
	_    [48]byte
}

// SetTracer installs a lifecycle tracer (nil disables).
func (s *metricsSet) SetTracer(tr engine.Tracer) {
	s.tracer = tr
	if s.spans == nil && tr != nil {
		s.spans = make([]spanState, len(s.per))
	}
}

// beginSpan opens a new operation span for th and emits its start event.
func (s *metricsSet) beginSpan(th *memsim.Thread, class int) {
	if s.tracer == nil {
		return
	}
	t := th.ID()
	ss := &s.spans[t]
	ss.seq++
	ss.span = engine.SpanID(t, ss.seq)
	s.Emit(th, engine.TraceEvent{Kind: engine.TraceStart, Class: class, Peer: -1})
}

// Active implements phases.Emitter: it reports whether a tracer is
// installed, so stages skip attribution-only work without one.
func (s *metricsSet) Active() bool { return s.tracer != nil }

// Emit implements phases.Emitter: it stamps ev with the thread, its local
// time, and its current span, then hands it to the tracer.
func (s *metricsSet) Emit(th *memsim.Thread, ev engine.TraceEvent) {
	if s.tracer == nil {
		return
	}
	t := th.ID()
	ev.Thread = t
	ev.Now = th.Now()
	ev.Span = s.spans[t].span
	s.tracer.Trace(ev)
}

// EmitAttempt implements phases.Emitter: it emits a TraceAttempt with
// abort attribution (conflict line + writer, or lock holder), mirroring
// the HCF framework's emission.
func (s *metricsSet) EmitAttempt(th *memsim.Thread, phase engine.Phase, reason htm.Reason) {
	if s.tracer == nil {
		return
	}
	ev := engine.TraceEvent{Kind: engine.TraceAttempt, Phase: phase, Reason: reason, Peer: -1}
	if s.eng != nil {
		switch reason {
		case htm.ReasonConflict, htm.ReasonLockHeld:
			info := s.eng.LastAbortInfo(th.ID())
			ev.Line = info.Line
			if reason == htm.ReasonConflict {
				ev.Peer = info.Writer
			} else {
				ev.Peer = info.Holder
			}
		}
	}
	s.Emit(th, ev)
}

// emitDone closes the current span with its completion phase.
func (s *metricsSet) emitDone(th *memsim.Thread, phase engine.Phase) {
	s.Emit(th, engine.TraceEvent{Kind: engine.TraceDone, Phase: phase, Peer: -1})
}
