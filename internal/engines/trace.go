package engines

import (
	"hcf/internal/core"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
)

// The baseline engines emit the same lifecycle-event vocabulary as HCF
// (core.TraceEvent), so one collector, span builder, and exporter serve all
// six engines. The HCF phase names map onto the baselines' paths as:
//
//   - PhaseTryPrivate:       private speculation over L (TLE, SCM
//     optimistic, TLE+FC's TLE leg)
//   - PhaseTryVisible:       SCM's managed speculation (serialized on the
//     auxiliary lock)
//   - PhaseCombineUnderLock: any completion under the data-structure lock
//     (Lock, TLE/SCM fallback, FC and TLE+FC combining)
//
// Emission charges no simulated cycles; with no tracer installed only a
// nil check remains on the hot path.

// All five baselines emit lifecycle events.
var (
	_ core.TracedEngine = (*LockEngine)(nil)
	_ core.TracedEngine = (*TLEEngine)(nil)
	_ core.TracedEngine = (*FCEngine)(nil)
	_ core.TracedEngine = (*SCMEngine)(nil)
	_ core.TracedEngine = (*TLEFCEngine)(nil)
)

// spanState tracks one thread's current operation span, padded against
// false sharing.
type spanState struct {
	span uint64
	seq  uint64
	_    [48]byte
}

// SetTracer installs a lifecycle tracer (nil disables).
func (s *metricsSet) SetTracer(tr core.Tracer) {
	s.tracer = tr
	if s.spans == nil && tr != nil {
		s.spans = make([]spanState, len(s.per))
	}
}

// beginSpan opens a new operation span for th and emits its start event.
func (s *metricsSet) beginSpan(th *memsim.Thread, class int) {
	if s.tracer == nil {
		return
	}
	t := th.ID()
	ss := &s.spans[t]
	ss.seq++
	ss.span = core.SpanID(t, ss.seq)
	s.emit(th, core.TraceEvent{Kind: core.TraceStart, Class: class, Peer: -1})
}

// emit stamps ev with the thread, its local time, and its current span,
// then hands it to the tracer.
func (s *metricsSet) emit(th *memsim.Thread, ev core.TraceEvent) {
	if s.tracer == nil {
		return
	}
	t := th.ID()
	ev.Thread = t
	ev.Now = th.Now()
	ev.Span = s.spans[t].span
	s.tracer.Trace(ev)
}

// emitAttempt emits a TraceAttempt with abort attribution (conflict line +
// writer, or lock holder), mirroring the HCF framework's emission.
func (s *metricsSet) emitAttempt(th *memsim.Thread, phase core.Phase, reason htm.Reason) {
	if s.tracer == nil {
		return
	}
	ev := core.TraceEvent{Kind: core.TraceAttempt, Phase: phase, Reason: reason, Peer: -1}
	if s.eng != nil {
		switch reason {
		case htm.ReasonConflict, htm.ReasonLockHeld:
			info := s.eng.LastAbortInfo(th.ID())
			ev.Line = info.Line
			if reason == htm.ReasonConflict {
				ev.Peer = info.Writer
			} else {
				ev.Peer = info.Holder
			}
		}
	}
	s.emit(th, ev)
}

// abortLockHeld aborts tx on a subscribed-lock observation, capturing the
// holder for attribution when a tracer is installed.
func (s *metricsSet) abortLockHeld(tx *htm.Tx, l locks.Lock) {
	if s.tracer != nil {
		tx.AbortLockHeldBy(core.HolderHint(tx.Thread().Env(), l))
	}
	tx.AbortLockHeld()
}

// emitDone closes the current span with its completion phase.
func (s *metricsSet) emitDone(th *memsim.Thread, phase core.Phase) {
	s.emit(th, core.TraceEvent{Kind: core.TraceDone, Phase: phase, Peer: -1})
}
