package harness

// RunAdaptiveComparison evaluates the evidence-driven policy autotuner
// (internal/adaptive.Tuner — the paper's §2.4 future-work mechanism grown
// into a full policy tuner) on the drifting hash-table workload: it is a
// thin wrapper over RunAutotune that flattens the comparison into standard
// sweep rows. Each static variant and the tuned run appear twice — once
// over the full horizon and once over the post-drift region (scenario
// suffix "/post-drift"), where a static policy tuned for the opening
// segment pays for its rigidity.
//
// Use RunAutotune directly for the structured report (per-segment
// breakdown, oracle row, decision journal).
func RunAdaptiveComparison(threads int, cfg Config) ([]Result, error) {
	rep, err := RunAutotune(threads, cfg)
	if err != nil {
		return nil, err
	}
	return rep.Results(), nil
}
