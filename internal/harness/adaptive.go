package harness

import (
	"math/rand/v2"

	"hcf/internal/adaptive"
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
	"hcf/internal/workload"
)

// RunAdaptiveComparison evaluates the adaptive budget controller (the
// paper's §2.4 future-work mechanism, implemented in internal/adaptive) on
// a workload whose character shifts mid-run: the first half of the horizon
// is read-dominated (95% Find), the second half update-dominated (100%
// updates). A statically configured HCF keeps the speculation budgets that
// suit the first phase; the adaptive variant re-tunes every epoch.
//
// It returns one Result per variant ("HCF-static", "HCF-adaptive"),
// measured over the full run.
func RunAdaptiveComparison(threads int, cfg Config) ([]Result, error) {
	cfg.normalize()
	variants := []struct {
		name     string
		adaptive bool
	}{
		{"HCF-static", false},
		{"HCF-adaptive", true},
	}
	var out []Result
	for _, v := range variants {
		env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
		boot := env.Boot()
		const keyRange = 512 // small table: the update phase is genuinely hot
		tbl := hashtable.New(boot, keyRange)
		pre := rand.New(rand.NewPCG(cfg.Seed, 0xADA))
		for i := 0; i < keyRange/2; i++ {
			k := pre.Uint64N(keyRange)
			tbl.Insert(boot, k, k)
		}
		// Both variants start from a configuration tuned for the read
		// phase: Inserts lean on speculation and never combine. Static
		// keeps it; adaptive re-tunes when the update phase begins.
		pols := hashtable.Policies()
		pols[hashtable.ClassInsert].TryPrivateTrials = 8
		pols[hashtable.ClassInsert].TryVisibleTrials = 2
		pols[hashtable.ClassInsert].TryCombiningTrials = 0
		fw, err := core.New(env, core.Config{
			Policies: pols,
			HTM:      cfg.HTM,
			Name:     v.name,
		})
		if err != nil {
			return nil, err
		}
		var ctl *adaptive.Controller
		if v.adaptive {
			// Aggressive thresholds: shrink speculation unless it is
			// really winning (>85% of an epoch's completions private).
			ctl = adaptive.New(fw, adaptive.Config{
				MinOpsPerEpoch: 48,
				LowPrivate:     0.85,
				HighPrivate:    0.97,
			})
		}
		readMix, err := workload.UpdateMix(95)
		if err != nil {
			return nil, err
		}
		writeMix, err := workload.UpdateMix(0)
		if err != nil {
			return nil, err
		}
		env.ResetStats()
		fw.ResetMetrics()
		opWork := env.Cost().OpWork
		opsByThread := make([]uint64, threads)
		phase2ByThread := make([]uint64, threads)
		shift := cfg.Horizon / 2
		env.Run(func(th *memsim.Thread) {
			rng := rand.New(rand.NewPCG(cfg.Seed^0xBEEF, uint64(th.ID())+1))
			n := uint64(0)
			for th.Now() < cfg.Horizon {
				th.Work(opWork)
				phase2 := th.Now() >= shift
				mix := readMix
				if phase2 {
					mix = writeMix
				}
				key := rng.Uint64N(keyRange)
				var op engine.Op
				switch mix.Pick(rng) {
				case 0:
					op = hashtable.FindOp{T: tbl, Key: key}
				case 1:
					op = hashtable.InsertOp{T: tbl, Key: key, Val: key}
				default:
					op = hashtable.RemoveOp{T: tbl, Key: key}
				}
				fw.Execute(th, op)
				n++
				if ctl != nil && th.ID() == 0 && n%16 == 0 {
					ctl.Step()
				}
				opsByThread[th.ID()]++
				if phase2 {
					phase2ByThread[th.ID()]++
				}
			}
		})
		res := Result{
			Scenario: "hashtable/shifting",
			Engine:   v.name,
			Threads:  threads,
			Metrics:  fw.Metrics(),
		}
		for t := 0; t < threads; t++ {
			res.Ops += opsByThread[t]
			if now := env.Now(t); now > res.Cycles {
				res.Cycles = now
			}
			res.Mem.Merge(env.Stats(t))
		}
		if res.Cycles > 0 {
			res.Throughput = float64(res.Ops) * 1e6 / float64(res.Cycles)
		}
		res.PhaseByClass = fw.PhaseBreakdown()
		res.InvariantViolation = tbl.CheckInvariants(boot)
		out = append(out, res)
		// Report the update phase separately: the overall number is
		// dominated by the cheap read phase, but adaptation matters where
		// the workload turned hostile to the initial configuration.
		ph2 := Result{
			Scenario: "hashtable/shifting/updates-only-half",
			Engine:   v.name,
			Threads:  threads,
		}
		for t := 0; t < threads; t++ {
			ph2.Ops += phase2ByThread[t]
		}
		ph2.Cycles = cfg.Horizon - shift
		if ph2.Cycles > 0 {
			ph2.Throughput = float64(ph2.Ops) * 1e6 / float64(ph2.Cycles)
		}
		out = append(out, ph2)
	}
	return out, nil
}
