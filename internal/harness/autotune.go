package harness

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strings"

	"hcf/internal/adaptive"
	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/metrics"
	"hcf/internal/seq/skiplist"
	"hcf/internal/trace"
	"hcf/internal/workload"
)

// The autotune comparison's drifting workload: the introduction's skip-list
// priority queue under a mix that shifts twice. Segment 0 is fill-mode
// (insert-dominated): RemoveMins are rare, so parking them in the
// combining phases only serializes solo operations — speculation wins for
// both classes. Segment 1 is contended 50/50: RemoveMins hammer the head,
// speculative removal collapses (the TLE lemming effect the paper's
// introduction describes) and batching RemoveMins under a combiner wins.
// Segment 2 returns to fill-mode. A policy fixed for either mode pays in
// the other, which is exactly the case an online tuner must win.
//
// The key ranges drift with the mix: fill-mode inserts draw from a narrow
// low band, contended-mode inserts from the full range. After a fill, the
// queue's head sits in the low band, so contended-mode inserts land above
// it — away from the head — and combined RemoveMin batches can commit
// instead of being aborted by near-head insertions.
const (
	autotuneKeyRange  = 1 << 20
	autotuneMidKeys   = 1 << 18 // fill-mode insert priorities (low band)
	autotuneInsertPct = 90      // fill-mode insert share
	autotuneDrainPct  = 50      // contended-mode insert share
	autotunePrefill   = 8192
	// autotuneTick is the tuner thread's virtual-time step interval.
	autotuneTick = 1000
)

// AutotuneStatics returns the hand-picked static trial-budget grid
// (private/visible/combining, applied to both classes) the tuner is
// compared against. The first entry is the paper's §2.1 priority-queue
// configuration — per-class hand tuning, the configuration the tuned
// variant starts from and the CI gate's baseline; the rest are uniform
// one-size-fits-both policies.
func AutotuneStatics() [][3]int {
	return [][3]int{
		paperBudget, // sentinel: the paper's per-class §2.1 configuration
		{8, 2, 0},   // speculation-heavy: right for fill-mode inserts
		{0, 0, 8},   // combining-only: right for drain-mode RemoveMins
		{10, 0, 0},  // TLE-like all-private
		{2, 3, 5},   // combining-lean split (the §3.3 hash-table budget)
		{4, 3, 3},   // balanced
	}
}

// paperBudget marks the variant that keeps skiplist.Policies() untouched
// instead of forcing one uniform budget onto both classes.
var paperBudget = [3]int{-1, -1, -1}

// AutotuneVariant is one run of the drifting workload: a static policy,
// the tuned run, or the synthesized oracle row.
type AutotuneVariant struct {
	// Name labels the variant ("HCF-static-2/3/5", "HCF-tuned", "oracle").
	Name string `json:"name"`
	// Tuned marks the autotuned run; Oracle marks the synthesized
	// per-segment-best row (not a real single run).
	Tuned  bool `json:"tuned,omitempty"`
	Oracle bool `json:"oracle,omitempty"`
	// Budgets is the insert-class trial configuration the run started from.
	Budgets [3]int `json:"insert_budgets"`
	// Ops and Throughput (ops per million cycles) cover the full horizon.
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput"`
	// SegmentOps and SegmentThroughput split the run by drift segment.
	SegmentOps        []uint64  `json:"segment_ops"`
	SegmentThroughput []float64 `json:"segment_throughput"`
	// PostDrift is the throughput over everything after the first drift
	// point (segments 1..n) — the region where a static policy tuned for
	// segment 0 pays for its rigidity.
	PostDrift float64 `json:"post_drift_throughput"`
	// Decisions counts journal entries (tuned variant only).
	Decisions int `json:"decisions,omitempty"`
	// FinalPolicy is the end-of-run policy state (tuned variant only).
	FinalPolicy *adaptive.Snapshot `json:"final_policy,omitempty"`
	// InvariantViolation is non-empty if the scenario check failed.
	InvariantViolation string `json:"invariant_violation,omitempty"`
}

// AutotuneReport is the full drifting-workload comparison: every static
// variant, the tuned run with its decision journal, and the oracle row.
type AutotuneReport struct {
	Scenario string  `json:"scenario"`
	Threads  int     `json:"threads"`
	Seed     uint64  `json:"seed"`
	Horizon  int64   `json:"horizon"`
	Bounds   []int64 `json:"bounds"`
	// Segments labels the drift segments, index-aligned with SegmentOps.
	Segments []string          `json:"segments"`
	Variants []AutotuneVariant `json:"variants"`
	// Journal is the tuned run's decision journal.
	Journal *adaptive.Journal `json:"-"`
}

// autotuneWorkload assembles the drifting mix and key generators over the
// horizon: drift points at 1/3 and 2/3.
func autotuneWorkload(horizon int64) (*workload.DriftMix, *workload.DriftKeys, []int64, []string, error) {
	bounds := []int64{horizon / 3, 2 * horizon / 3}
	sched, err := workload.NewSchedule(bounds...)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fillMix, err := workload.NewMix(autotuneInsertPct, 100-autotuneInsertPct)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	drainMix, err := workload.NewMix(autotuneDrainPct, 100-autotuneDrainPct)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	mix, err := workload.NewDriftMix(sched, fillMix, drainMix, fillMix)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	wide := workload.Uniform{N: autotuneKeyRange}
	mid := workload.Uniform{N: autotuneMidKeys}
	keys, err := workload.NewDriftKeys(sched, mid, wide, mid)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	labels := []string{
		fmt.Sprintf("fill %d%% insert", autotuneInsertPct),
		fmt.Sprintf("contended %d%% removemin", 100-autotuneDrainPct),
		fmt.Sprintf("fill %d%% insert", autotuneInsertPct),
	}
	return mix, keys, bounds, labels, nil
}

// runAutotuneVariant measures one variant of the drifting workload. All
// variants share the identical environment, prefill and per-thread random
// streams; they differ only in the insert-class starting budgets and in
// whether the tuner is stepping. Every variant (static ones included) runs
// fully instrumented — recording charges zero simulated cycles, so the
// instrumentation itself cannot tilt the comparison.
func runAutotuneVariant(name string, budgets [3]int, tuned bool, threads int, cfg Config) (AutotuneVariant, *adaptive.Tuner, error) {
	mix, keys, bounds, _, err := autotuneWorkload(cfg.Horizon)
	if err != nil {
		return AutotuneVariant{}, nil, err
	}
	sched := mix.Schedule()
	segs := sched.Segments()

	// One extra simulator thread ticks the tuner so epoch cadence never
	// depends on a worker's op latency (a worker stuck behind a slow
	// combined operation would stall tuning exactly when the policy is
	// worst). Static variants carry the same idle thread, keeping every
	// variant's simulated environment identical.
	env := memsim.NewDet(memsim.DetConfig{Threads: threads + 1, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	boot := env.Boot()
	q := skiplist.New(boot)
	pre := rand.New(rand.NewPCG(cfg.Seed, 0xADA))
	for i := 0; i < autotunePrefill; i++ {
		q.Insert(boot, pre.Uint64N(autotuneKeyRange), skiplist.RandomLevel(pre))
	}
	pols := skiplist.Policies()
	if budgets != paperBudget {
		for c := range pols {
			pols[c].TryPrivateTrials = budgets[0]
			pols[c].TryVisibleTrials = budgets[1]
			pols[c].TryCombiningTrials = budgets[2]
		}
	}
	fw, err := core.New(env, core.Config{
		Policies: pols,
		HTM:      cfg.HTM,
		Name:     name,
	})
	if err != nil {
		return AutotuneVariant{}, nil, err
	}

	rec, err := metrics.New(metrics.Config{
		Shards:   threads + 1,
		Classes:  []string{"insert", "removemin"},
		Paths:    fw.CompletionPaths(),
		Outcomes: outcomeNames(),
		TimeUnit: "cycles",
	})
	if err != nil {
		return AutotuneVariant{}, nil, err
	}
	fw.SetRecorder(rec)
	// Limit 1: aggregate counters (attempt taxonomy, conflict attribution,
	// selection sizes) cover every event regardless, and the tuner needs
	// only those — no reason to retain the full event timeline.
	col := &trace.Collector{Limit: 1}
	fw.SetTracer(col)

	var tun *adaptive.Tuner
	if tuned {
		tun = adaptive.NewTuner(fw, rec, col, adaptive.TunerConfig{
			// A parked class earns evidence at its own (slow) completion
			// rate, so qualify epochs on less of it and probe sooner than
			// the defaults; decision thresholds stay at their defaults.
			MinOpsPerEpoch: 32,
			ProbeEpochs:    2,
		})
	}

	env.ResetStats()
	fw.ResetMetrics()
	opWork := env.Cost().OpWork
	opsByThread := make([]uint64, threads)
	segOps := make([][]uint64, threads)
	for t := range segOps {
		segOps[t] = make([]uint64, segs)
	}
	env.Run(func(th *memsim.Thread) {
		if th.ID() == threads {
			// The tuner thread: ticks on a fixed virtual-time cadence; the
			// tuner's MinOpsPerEpoch gate paces real epochs by evidence.
			for th.Now() < cfg.Horizon {
				th.Work(autotuneTick)
				if tun != nil {
					tun.Step(th.Now())
				}
			}
			return
		}
		rng := rand.New(rand.NewPCG(cfg.Seed^0xD1F7, uint64(th.ID())+1))
		for th.Now() < cfg.Horizon {
			th.Work(opWork)
			now := th.Now()
			var op engine.Op
			if mix.PickAt(now, rng) == 0 {
				op = skiplist.InsertOp{Q: q, Key: keys.NextAt(now, rng), Level: skiplist.RandomLevel(rng)}
			} else {
				op = skiplist.RemoveMinOp{Q: q}
			}
			fw.Execute(th, op)
			opsByThread[th.ID()]++
			segOps[th.ID()][sched.SegmentAt(now)]++
		}
	})

	v := AutotuneVariant{
		Name:              name,
		Tuned:             tuned,
		Budgets:           budgets,
		SegmentOps:        make([]uint64, segs),
		SegmentThroughput: make([]float64, segs),
	}
	var cycles int64
	for t := 0; t < threads; t++ {
		v.Ops += opsByThread[t]
		for s := 0; s < segs; s++ {
			v.SegmentOps[s] += segOps[t][s]
		}
		if now := env.Now(t); now > cycles {
			cycles = now
		}
	}
	if cycles > 0 {
		v.Throughput = float64(v.Ops) * 1e6 / float64(cycles)
	}
	for s := 0; s < segs; s++ {
		start := sched.Bound(s)
		end := cfg.Horizon
		if s < len(bounds) {
			end = bounds[s]
		}
		if d := end - start; d > 0 {
			v.SegmentThroughput[s] = float64(v.SegmentOps[s]) * 1e6 / float64(d)
		}
	}
	if post := cfg.Horizon - sched.Bound(1); post > 0 {
		var ops uint64
		for s := 1; s < segs; s++ {
			ops += v.SegmentOps[s]
		}
		v.PostDrift = float64(ops) * 1e6 / float64(post)
	}
	if tun != nil {
		v.Decisions = tun.Journal().Len()
		snap := tun.Snapshot()
		v.FinalPolicy = &snap
	}
	v.InvariantViolation = q.CheckInvariants(boot)
	return v, tun, nil
}

// RunAutotune runs the full drifting-workload comparison: every static
// variant from AutotuneStatics, the tuned run (starting from the paper
// baseline, stepping the tuner from thread 0), and a synthesized
// oracle row taking each segment's best static throughput — the bound a
// clairvoyant per-segment configuration would achieve.
func RunAutotune(threads int, cfg Config) (*AutotuneReport, error) {
	cfg.normalize()
	_, _, bounds, labels, err := autotuneWorkload(cfg.Horizon)
	if err != nil {
		return nil, err
	}
	rep := &AutotuneReport{
		Scenario: "pqueue/drift",
		Threads:  threads,
		Seed:     cfg.Seed,
		Horizon:  cfg.Horizon,
		Bounds:   bounds,
		Segments: labels,
	}
	for _, b := range AutotuneStatics() {
		name := fmt.Sprintf("HCF-static-%d/%d/%d", b[0], b[1], b[2])
		if b == paperBudget {
			name = "HCF-paper"
		}
		v, _, err := runAutotuneVariant(name, b, false, threads, cfg)
		if err != nil {
			return nil, err
		}
		rep.Variants = append(rep.Variants, v)
	}
	tuned, tun, err := runAutotuneVariant("HCF-tuned", AutotuneStatics()[0], true, threads, cfg)
	if err != nil {
		return nil, err
	}
	rep.Variants = append(rep.Variants, tuned)
	rep.Journal = tun.Journal()

	// Oracle: per-segment best static. Its total is the sum of the
	// winners' segment ops over the horizon.
	segs := len(labels)
	oracle := AutotuneVariant{
		Name: "oracle", Oracle: true,
		SegmentOps:        make([]uint64, segs),
		SegmentThroughput: make([]float64, segs),
	}
	for s := 0; s < segs; s++ {
		for _, v := range rep.Variants {
			if v.Tuned {
				continue
			}
			if v.SegmentOps[s] > oracle.SegmentOps[s] {
				oracle.SegmentOps[s] = v.SegmentOps[s]
				oracle.SegmentThroughput[s] = v.SegmentThroughput[s]
			}
		}
		oracle.Ops += oracle.SegmentOps[s]
	}
	if cfg.Horizon > 0 {
		oracle.Throughput = float64(oracle.Ops) * 1e6 / float64(cfg.Horizon)
	}
	if post := cfg.Horizon - bounds[0]; post > 0 {
		var ops uint64
		for s := 1; s < segs; s++ {
			ops += oracle.SegmentOps[s]
		}
		oracle.PostDrift = float64(ops) * 1e6 / float64(post)
	}
	rep.Variants = append(rep.Variants, oracle)
	return rep, nil
}

// Variant finds a variant by name (nil if absent).
func (r *AutotuneReport) Variant(name string) *AutotuneVariant {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// Tuned returns the autotuned variant (nil if absent).
func (r *AutotuneReport) Tuned() *AutotuneVariant {
	for i := range r.Variants {
		if r.Variants[i].Tuned {
			return &r.Variants[i]
		}
	}
	return nil
}

// BestStatic returns the static variant with the highest throughput over
// the full horizon.
func (r *AutotuneReport) BestStatic() *AutotuneVariant {
	var best *AutotuneVariant
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Tuned || v.Oracle {
			continue
		}
		if best == nil || v.Throughput > best.Throughput {
			best = v
		}
	}
	return best
}

// BestStaticPostDrift returns the static variant with the highest
// post-drift throughput.
func (r *AutotuneReport) BestStaticPostDrift() *AutotuneVariant {
	var best *AutotuneVariant
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Tuned || v.Oracle {
			continue
		}
		if best == nil || v.PostDrift > best.PostDrift {
			best = v
		}
	}
	return best
}

// Results maps the report to standard sweep rows (one per variant over the
// full horizon, plus a post-drift row per variant) so the autotune figure
// renders with the existing table and plot machinery.
func (r *AutotuneReport) Results() []Result {
	var out []Result
	for _, v := range r.Variants {
		out = append(out, Result{
			Scenario:           r.Scenario,
			Engine:             v.Name,
			Threads:            r.Threads,
			Ops:                v.Ops,
			Cycles:             r.Horizon,
			Throughput:         v.Throughput,
			InvariantViolation: v.InvariantViolation,
		})
		var postOps uint64
		for s := 1; s < len(v.SegmentOps); s++ {
			postOps += v.SegmentOps[s]
		}
		out = append(out, Result{
			Scenario:   r.Scenario + "/post-drift",
			Engine:     v.Name,
			Threads:    r.Threads,
			Ops:        postOps,
			Cycles:     r.Horizon - r.Bounds[0],
			Throughput: v.PostDrift,
		})
	}
	return out
}

// JSONL renders the report as one JSON object per line: a header line
// describing the scenario, then one line per variant per region (total,
// each segment, post-drift) — the format checked in under bench/.
func (r *AutotuneReport) JSONL() ([]byte, error) {
	var b strings.Builder
	type header struct {
		Scenario string   `json:"scenario"`
		Threads  int      `json:"threads"`
		Seed     uint64   `json:"seed"`
		Horizon  int64    `json:"horizon"`
		Bounds   []int64  `json:"bounds"`
		Segments []string `json:"segments"`
	}
	h, err := json.Marshal(header{r.Scenario, r.Threads, r.Seed, r.Horizon, r.Bounds, r.Segments})
	if err != nil {
		return nil, err
	}
	b.Write(h)
	b.WriteByte('\n')
	type row struct {
		Variant    string  `json:"variant"`
		Tuned      bool    `json:"tuned,omitempty"`
		Oracle     bool    `json:"oracle,omitempty"`
		Budgets    [3]int  `json:"insert_budgets"`
		Region     string  `json:"region"`
		Ops        uint64  `json:"ops"`
		Throughput float64 `json:"throughput"`
		Decisions  int     `json:"decisions,omitempty"`
	}
	emit := func(rw row) error {
		line, err := json.Marshal(rw)
		if err != nil {
			return err
		}
		b.Write(line)
		b.WriteByte('\n')
		return nil
	}
	for _, v := range r.Variants {
		if err := emit(row{v.Name, v.Tuned, v.Oracle, v.Budgets, "total", v.Ops, v.Throughput, v.Decisions}); err != nil {
			return nil, err
		}
		for s := range v.SegmentOps {
			if err := emit(row{v.Name, v.Tuned, v.Oracle, v.Budgets, fmt.Sprintf("segment%d", s), v.SegmentOps[s], v.SegmentThroughput[s], 0}); err != nil {
				return nil, err
			}
		}
		var postOps uint64
		for s := 1; s < len(v.SegmentOps); s++ {
			postOps += v.SegmentOps[s]
		}
		if err := emit(row{v.Name, v.Tuned, v.Oracle, v.Budgets, "post-drift", postOps, v.PostDrift, 0}); err != nil {
			return nil, err
		}
	}
	return []byte(b.String()), nil
}

// Text renders the comparison as an aligned table plus the tuned run's
// final policy, for terminal reports.
func (r *AutotuneReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d threads, seed %d, horizon %d (drift at %v)\n",
		r.Scenario, r.Threads, r.Seed, r.Horizon, r.Bounds)
	for i, s := range r.Segments {
		fmt.Fprintf(&b, "  segment %d: %s\n", i, s)
	}
	fmt.Fprintf(&b, "\n%-18s %10s", "variant", "total")
	for i := range r.Segments {
		fmt.Fprintf(&b, " %9s%d", "seg", i)
	}
	fmt.Fprintf(&b, " %10s\n", "post-drift")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%-18s %10.1f", v.Name, v.Throughput)
		for _, st := range v.SegmentThroughput {
			fmt.Fprintf(&b, " %10.1f", st)
		}
		fmt.Fprintf(&b, " %10.1f", v.PostDrift)
		if v.Tuned {
			fmt.Fprintf(&b, "  (%d decisions)", v.Decisions)
		}
		b.WriteByte('\n')
	}
	if t := r.Tuned(); t != nil && t.FinalPolicy != nil {
		fmt.Fprintf(&b, "\nfinal tuned policy:\n%s", t.FinalPolicy.String())
	}
	return b.String()
}
