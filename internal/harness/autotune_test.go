package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAutotuneDeterministicReplay pins the replay contract of the tuned run:
// the same seed yields byte-identical sweep rows AND a byte-identical
// decision journal, so every artifact in bench/ can be regenerated exactly.
func TestAutotuneDeterministicReplay(t *testing.T) {
	run := func() ([]byte, []byte) {
		rep, err := RunAutotune(10, Config{Horizon: 90_000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := rep.JSONL()
		if err != nil {
			t.Fatal(err)
		}
		journal, err := rep.Journal.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rows, journal
	}
	rows1, j1 := run()
	rows2, j2 := run()
	if !bytes.Equal(rows1, rows2) {
		t.Errorf("sweep JSONL differs across identical seeds:\n%s\nvs\n%s", rows1, rows2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("decision journal differs across identical seeds:\n%s\nvs\n%s", j1, j2)
	}
}

// TestAutotuneReportShape checks the report surfaces every piece the tools
// and CI gate consume: per-segment rows, the tuned variant, a traceable
// journal, and the JSONL/text renderings.
func TestAutotuneReportShape(t *testing.T) {
	rep, err := RunAutotune(10, Config{Horizon: 90_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario == "" || len(rep.Variants) != len(AutotuneStatics())+2 {
		t.Fatalf("report shape: scenario=%q variants=%d", rep.Scenario, len(rep.Variants))
	}
	tuned := rep.Tuned()
	if tuned == nil {
		t.Fatal("no tuned variant in report")
	}
	if tuned.InvariantViolation != "" {
		t.Fatalf("tuned run broke invariants: %s", tuned.InvariantViolation)
	}
	if rep.Journal == nil || rep.Journal.Len() == 0 {
		t.Fatal("tuned run produced no decision journal")
	}
	for _, d := range rep.Journal.Decisions() {
		if d.Evidence.Ops == 0 {
			t.Fatalf("decision without evidence: %+v", d)
		}
	}
	if bs := rep.BestStatic(); bs == nil || bs.Tuned {
		t.Fatal("BestStatic missing or tuned")
	}
	rows, err := rep.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rows), "HCF-tuned") {
		t.Errorf("JSONL has no tuned rows:\n%s", rows)
	}
	text := rep.Text()
	for _, want := range []string{"HCF-tuned", "oracle", "post-drift"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q", want)
		}
	}
}
