package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/shard"
	"hcf/internal/workload"
)

// ElasticRunConfig tunes the elastic (hot-shard healing) figure: an
// open-loop run at one offered rate whose sojourn series is cut into
// fixed windows so the p99 verdict can be watched degrading when the
// skew lands on one shard and recovering after the rebalancer splits it.
type ElasticRunConfig struct {
	// Rate is the aggregate offered load in ops per million cycles
	// (default ElasticDefaultRate).
	Rate float64
	// Window is the verdict/rebalancer cadence in cycles (default
	// Horizon/16).
	Window int64
	// SLOThreshold is the per-window sojourn p99 objective in cycles
	// (default DefaultOpenLoopSLOThreshold). A window is "ok" iff its
	// p99 is at or under the threshold.
	SLOThreshold int64
	// Gate is the post-heal throughput floor as a fraction of the
	// balanced run's post-phase throughput (default 0.8).
	Gate float64
}

// ElasticDefaultRate is the checked-in figure's offered load
// (ops/Mcycle): comfortably under the balanced multi-shard capacity,
// well over what a single hot shard can serve.
var ElasticDefaultRate = 32000.0

// Default elastic-figure topology: start with the openloop figure's
// 4 active shards and provision 4 spares for splits to grow into. The
// table is smaller than the paper figures' (ElasticBuckets) so a split
// migrates hundreds — not thousands — of keys: the all-locks move must
// stall the system for well under one verdict window, or the cure
// reads worse than the disease. ElasticDefaultHorizon is sized the
// same way (a migration stall is a blip, not an era).
const (
	ElasticMaxShards      = 8
	ElasticInitialShards  = 4
	ElasticHotPct         = 90
	ElasticBuckets        = 4096
	ElasticDefaultHorizon = 1_600_000
)

func (c *ElasticRunConfig) normalize(horizon int64) {
	if c.Rate <= 0 {
		c.Rate = ElasticDefaultRate
	}
	if c.Window <= 0 {
		c.Window = max(horizon/16, 1)
	}
	if c.SLOThreshold <= 0 {
		c.SLOThreshold = DefaultOpenLoopSLOThreshold
	}
	if c.Gate <= 0 {
		c.Gate = 0.8
	}
}

// ElasticWindow is one fixed time slice of an elastic run.
type ElasticWindow struct {
	Start      int64   `json:"start"`
	End        int64   `json:"end"`
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput"` // completions per Mcycle
	P99        uint64  `json:"p99"`        // sojourn, cycles
	OK         bool    `json:"ok"`         // p99 <= threshold
}

// ElasticPoint is one mode's measurement: the same scenario run
// "balanced" (no skew), "static" (drifting skew, topology frozen), or
// "elastic" (same skew with the rebalancer stepped at window cadence).
type ElasticPoint struct {
	Scenario  string  `json:"scenario"`
	Engine    string  `json:"engine"`
	Mode      string  `json:"mode"`
	Threads   int     `json:"threads"`
	Rate      float64 `json:"rate"`
	Arrivals  uint64  `json:"arrivals"`
	Completed uint64  `json:"completed"`
	Horizon   int64   `json:"horizon"`
	Makespan  int64   `json:"makespan"`
	// Throughput is completions per Mcycle over max(makespan, horizon).
	Throughput float64 `json:"throughput"`
	// Saturated marks a run that needed >10% past the horizon to drain.
	Saturated bool        `json:"saturated"`
	Sojourn   SojournStat `json:"sojourn"`
	// Post-phase stats cover completions in the last quarter of the
	// horizon — after the second drift target has been hot for a while,
	// so a healed topology has had time to show it.
	PostThroughput float64 `json:"post_throughput"`
	PostP99        uint64  `json:"post_p99"`
	// BadWindows counts windows whose p99 missed the threshold;
	// FirstBad/LastBad are their window indices (-1 when none).
	BadWindows int `json:"bad_windows"`
	FirstBad   int `json:"first_bad"`
	LastBad    int `json:"last_bad"`
	// Healed: the verdict flipped back — there was a bad window and the
	// last non-empty window is ok again.
	Healed  bool            `json:"healed"`
	Windows []ElasticWindow `json:"windows"`
	// Topology is the engine's final routing state; Decisions the
	// rebalancer's journal (elastic mode only).
	Topology           *shard.Topology           `json:"topology,omitempty"`
	Decisions          []shard.RebalanceDecision `json:"decisions,omitempty"`
	InvariantViolation string                    `json:"invariant_violation,omitempty"`
}

// RunPointElastic measures one mode of the elastic figure: open-loop
// arrivals exactly as RunPointOpenLoop (same schedules, same rng
// streams), operations drawn time-aware via Instance.NextOpAt so the
// skew can drift, and — when rebalance is set — thread 0 stepping a
// shard.Rebalancer once per window so topology decisions are part of
// the measured run (their lock-the-world cost is charged to the clock).
func RunPointElastic(sc Scenario, mode string, rebalance bool, threads int, cfg Config, ec ElasticRunConfig) (ElasticPoint, error) {
	cfg.normalize()
	ec.normalize(cfg.Horizon)

	perRate := ec.Rate / float64(threads)
	arrivals := make([][]int64, threads)
	var totalArrivals uint64
	for t := 0; t < threads; t++ {
		gen, err := workload.NewPoisson(perRate)
		if err != nil {
			return ElasticPoint{}, err
		}
		r := rand.New(rand.NewPCG(cfg.Seed^0xA17ECA11, uint64(t)+1))
		arrivals[t] = workload.GenSchedule(gen, cfg.Horizon, r)
		totalArrivals += uint64(len(arrivals[t]))
	}

	env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	inst := sc.Setup(env, cfg.Seed)
	if inst.Elastic == nil {
		return ElasticPoint{}, fmt.Errorf("harness: scenario %q has no elastic sharding plan", sc.Name)
	}
	eng, err := BuildEngine(ElasticEngineName, env, inst, cfg)
	if err != nil {
		return ElasticPoint{}, err
	}
	el, ok := eng.(*shard.Elastic)
	if !ok {
		return ElasticPoint{}, fmt.Errorf("harness: engine %q is not elastic", ElasticEngineName)
	}
	var rb *shard.Rebalancer
	if rebalance {
		rb = shard.NewRebalancer(el, inst.Elastic.Rebalance)
	}
	nextOp := inst.NextOpAt
	if nextOp == nil {
		nextOp = func(now int64, r *rand.Rand) engine.Op { return inst.NextOp(r) }
	}

	type sample struct{ done, sojourn int64 }
	samples := make([][]sample, threads)
	opWork := env.Cost().OpWork
	env.ResetStats()
	eng.ResetMetrics()
	env.Run(func(th *memsim.Thread) {
		t := th.ID()
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(t)+1))
		buf := make([]sample, 0, len(arrivals[t]))
		nextStep := ec.Window
		for _, intended := range arrivals[t] {
			th.IdleUntil(intended)
			th.Work(opWork)
			op := nextOp(intended, rng)
			eng.Execute(th, op)
			done := th.Now()
			buf = append(buf, sample{done, done - intended})
			if t == 0 && rb != nil && done >= nextStep {
				rb.Step(th)
				// One step per crossing; skip windows thread 0 idled past.
				nextStep = (th.Now()/ec.Window + 1) * ec.Window
			}
		}
		samples[t] = buf
	})

	pt := ElasticPoint{
		Scenario: sc.Name,
		Engine:   el.Name(),
		Mode:     mode,
		Threads:  threads,
		Rate:     ec.Rate,
		Arrivals: totalArrivals,
		Horizon:  cfg.Horizon,
		FirstBad: -1,
		LastBad:  -1,
	}
	for t := 0; t < threads; t++ {
		pt.Completed += uint64(len(samples[t]))
		if now := env.Now(t); now > pt.Makespan {
			pt.Makespan = now
		}
	}
	span := max(pt.Makespan, cfg.Horizon)
	if span > 0 {
		pt.Throughput = float64(pt.Completed) * 1e6 / float64(span)
	}
	pt.Saturated = pt.Makespan > cfg.Horizon+cfg.Horizon/10

	// Cut the sojourn series into fixed windows by completion time.
	nw := int((span + ec.Window - 1) / ec.Window)
	perWin := make([][]int64, nw)
	var all []int64
	postStart := cfg.Horizon - cfg.Horizon/4
	var post []int64
	for t := range samples {
		for _, s := range samples[t] {
			w := int(s.done / ec.Window)
			if w >= nw {
				w = nw - 1
			}
			perWin[w] = append(perWin[w], s.sojourn)
			all = append(all, s.sojourn)
			if s.done > postStart && s.done <= cfg.Horizon {
				post = append(post, s.sojourn)
			}
		}
	}
	pt.Sojourn = sojournStatFromSamples(all)
	pt.PostP99 = quantileOf(post, 0.99)
	pt.PostThroughput = float64(len(post)) * 1e6 / float64(cfg.Horizon-postStart)
	lastNonEmpty := -1
	for w := 0; w < nw; w++ {
		start := int64(w) * ec.Window
		end := min(start+ec.Window, span)
		win := ElasticWindow{
			Start: start,
			End:   end,
			Ops:   uint64(len(perWin[w])),
			P99:   quantileOf(perWin[w], 0.99),
		}
		if end > start {
			win.Throughput = float64(win.Ops) * 1e6 / float64(end-start)
		}
		win.OK = int64(win.P99) <= ec.SLOThreshold
		if win.Ops > 0 {
			lastNonEmpty = w
			if !win.OK {
				pt.BadWindows++
				if pt.FirstBad < 0 {
					pt.FirstBad = w
				}
				pt.LastBad = w
			}
		}
		pt.Windows = append(pt.Windows, win)
	}
	pt.Healed = pt.BadWindows > 0 && lastNonEmpty >= 0 && pt.Windows[lastNonEmpty].OK

	topo := el.Topology()
	pt.Topology = &topo
	if rb != nil {
		pt.Decisions = rb.Decisions()
	}
	if inst.Check != nil {
		pt.InvariantViolation = inst.Check(env.Boot())
	}
	return pt, nil
}

// sojournStatFromSamples computes the deep-tail summary directly from
// raw samples (the windowed runner keeps them anyway; no recorder
// histogram needed, so quantiles here are exact, not bucketed).
func sojournStatFromSamples(s []int64) SojournStat {
	if len(s) == 0 {
		return SojournStat{}
	}
	sorted := append([]int64(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	q := func(p float64) uint64 { return quantileSorted(sorted, p) }
	return SojournStat{
		Count: uint64(len(sorted)),
		Mean:  sum / float64(len(sorted)),
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		P999:  q(0.999),
		P9999: q(0.9999),
		Max:   uint64(sorted[len(sorted)-1]),
	}
}

func quantileOf(s []int64, p float64) uint64 {
	if len(s) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []int64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return uint64(sorted[i])
}

// ElasticReport is the three-mode healing comparison.
type ElasticReport struct {
	Figure       string         `json:"figure"`
	Scenario     string         `json:"scenario"`
	Threads      int            `json:"threads"`
	Seed         uint64         `json:"seed"`
	Horizon      int64          `json:"horizon"`
	Rate         float64        `json:"rate"`
	Window       int64          `json:"window"`
	SLOThreshold int64          `json:"slo_threshold"`
	Gate         float64        `json:"gate"`
	Points       []ElasticPoint `json:"-"`
}

// RunElasticFigure runs the hot-shard-healing figure: the same elastic
// hash table measured balanced (no skew, topology untouched), static
// (drifting 90% skew with the topology frozen — the hot shard forms and
// stays), and elastic (same skew with the rebalancer on). Modes run
// concurrently when cfg.Parallel allows; each owns a fresh
// deterministic environment, so results are identical at any
// parallelism.
func RunElasticFigure(threads int, cfg Config, ec ElasticRunConfig) (*ElasticReport, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = ElasticDefaultHorizon
	}
	cfg.normalize()
	ec.normalize(cfg.Horizon)
	balanced := ElasticScenario(40, ElasticBuckets, ElasticMaxShards, ElasticInitialShards, 0, cfg.Horizon)
	skewed := ElasticScenario(40, ElasticBuckets, ElasticMaxShards, ElasticInitialShards, ElasticHotPct, cfg.Horizon)
	modes := []struct {
		sc        Scenario
		mode      string
		rebalance bool
	}{
		{balanced, "balanced", false},
		{skewed, "static", false},
		{skewed, "elastic", true},
	}
	rep := &ElasticReport{
		Figure:       "elastic",
		Scenario:     skewed.Name,
		Threads:      threads,
		Seed:         cfg.Seed,
		Horizon:      cfg.Horizon,
		Rate:         ec.Rate,
		Window:       ec.Window,
		SLOThreshold: ec.SLOThreshold,
		Gate:         ec.Gate,
		Points:       make([]ElasticPoint, len(modes)),
	}
	errs := make([]error, len(modes))
	serial := cfg.Parallel == 1
	var wg sync.WaitGroup
	for i := range modes {
		run := func(i int) {
			rep.Points[i], errs[i] = RunPointElastic(modes[i].sc, modes[i].mode, modes[i].rebalance, threads, cfg, ec)
		}
		if serial {
			run(i)
			continue
		}
		wg.Add(1)
		go func(i int) { defer wg.Done(); run(i) }(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// CheckElasticGate verifies the healing story the figure exists to
// demonstrate: the skew really hurt the frozen topology, the rebalancer
// actually split, the verdict flipped back, and post-heal throughput
// recovered to at least Gate × the balanced run's.
func CheckElasticGate(r *ElasticReport) error {
	byMode := map[string]*ElasticPoint{}
	for i := range r.Points {
		byMode[r.Points[i].Mode] = &r.Points[i]
	}
	balanced, static, elastic := byMode["balanced"], byMode["static"], byMode["elastic"]
	if balanced == nil || static == nil || elastic == nil {
		return fmt.Errorf("harness: elastic report missing a mode (have %d points)", len(r.Points))
	}
	var fails []string
	for _, p := range r.Points {
		if p.InvariantViolation != "" {
			fails = append(fails, fmt.Sprintf("%s: invariant violation: %s", p.Mode, p.InvariantViolation))
		}
	}
	if static.BadWindows == 0 {
		fails = append(fails, "static: skew never degraded the frozen topology (no bad windows — raise the rate?)")
	}
	if elastic.Topology == nil || elastic.Topology.Splits == 0 {
		fails = append(fails, "elastic: rebalancer never split a shard")
	}
	if elastic.BadWindows > 0 && !elastic.Healed {
		fails = append(fails, fmt.Sprintf("elastic: verdict never flipped back (last bad window %d)", elastic.LastBad))
	}
	if elastic.PostThroughput < r.Gate*balanced.PostThroughput {
		fails = append(fails, fmt.Sprintf("elastic: post-heal throughput %.1f < %.2fx balanced %.1f",
			elastic.PostThroughput, r.Gate, balanced.PostThroughput))
	}
	if len(fails) > 0 {
		return fmt.Errorf("harness: elastic gate failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// JSONL renders the report as one JSON object per line (header, then
// one line per mode) — the format checked in under
// bench/ELASTIC_sweep.jsonl.
func (r *ElasticReport) JSONL() ([]byte, error) {
	var b bytes.Buffer
	h, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	b.Write(h)
	b.WriteByte('\n')
	for i := range r.Points {
		line, err := json.Marshal(&r.Points[i])
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// ParseElasticJSONL parses a JSONL report back (the inverse of JSONL).
func ParseElasticJSONL(data []byte) (*ElasticReport, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("harness: empty elastic JSONL")
	}
	var rep ElasticReport
	if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
		return nil, fmt.Errorf("harness: elastic JSONL header: %w", err)
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var p ElasticPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return nil, fmt.Errorf("harness: elastic JSONL row: %w", err)
		}
		rep.Points = append(rep.Points, p)
	}
	return &rep, sc.Err()
}

// Text renders the report as a mode-per-block table with the window
// verdict strip ('.' ok, 'X' missed, '-' empty).
func (r *ElasticReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elastic: hot-shard healing, %d threads, rate %.0f, horizon %d, window %d, p99 SLO %d, seed %d\n\n",
		r.Threads, r.Rate, r.Horizon, r.Window, r.SLOThreshold, r.Seed)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%s (%s):\n", p.Mode, p.Scenario)
		sat := ""
		if p.Saturated {
			sat = "  SATURATED"
		}
		fmt.Fprintf(&b, "  achieved %.1f ops/Mcycle, p99 %d, post-phase %.1f ops/Mcycle p99 %d%s\n",
			p.Throughput, p.Sojourn.P99, p.PostThroughput, p.PostP99, sat)
		strip := make([]byte, len(p.Windows))
		for i, w := range p.Windows {
			switch {
			case w.Ops == 0:
				strip[i] = '-'
			case w.OK:
				strip[i] = '.'
			default:
				strip[i] = 'X'
			}
		}
		fmt.Fprintf(&b, "  windows  [%s]  bad=%d healed=%v\n", strip, p.BadWindows, p.Healed)
		if p.Topology != nil {
			fmt.Fprintf(&b, "  topology %d/%d shards active, epoch %d, splits=%d merges=%d moved=%d reroutes=%d\n",
				p.Topology.Ring.Active, p.Topology.Provisioned, p.Topology.Ring.Epoch,
				p.Topology.Splits, p.Topology.Merges, p.Topology.MovedKeys, p.Topology.Reroutes)
		}
		for _, d := range p.Decisions {
			if d.Action == "hold" {
				continue
			}
			fmt.Fprintf(&b, "  decision @%d: %s %d->%d (%s) hottest %.2f vs fair %.2f, moved %d\n",
				d.Now, d.Action, d.From, d.To, d.Reason, d.HottestShare, d.FairShare, d.MovedKeys)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Results flattens the report into standard Result rows (mode folded
// into the scenario label) so `-fig elastic` composes with the generic
// figure renderers.
func (r *ElasticReport) Results() []Result {
	out := make([]Result, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, Result{
			Scenario:           fmt.Sprintf("%s@%s", p.Scenario, p.Mode),
			Engine:             p.Engine,
			Threads:            p.Threads,
			Ops:                p.Completed,
			Cycles:             p.Makespan,
			Throughput:         p.Throughput,
			InvariantViolation: p.InvariantViolation,
		})
	}
	return out
}
