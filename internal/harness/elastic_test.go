package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"hcf/internal/shard"
)

func TestElasticFigureRegistered(t *testing.T) {
	f, err := FigureByID("elastic")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Engines) != 1 || f.Engines[0] != ElasticEngineName {
		t.Fatalf("elastic figure engines = %v, want [%s]", f.Engines, ElasticEngineName)
	}
	if f.Scenario.Name == "" || !strings.Contains(f.Scenario.Name, "elastic") {
		t.Fatalf("unexpected scenario name %q", f.Scenario.Name)
	}
}

// TestElasticFigureHeals runs the full checked-in figure and requires
// the healing story end to end: the frozen topology degrades and stays
// degraded, the rebalancer splits, the window verdict flips back, and
// post-heal throughput clears the gate against the balanced run.
func TestElasticFigureHeals(t *testing.T) {
	rep, err := RunElasticFigure(36, Config{Seed: 1}, ElasticRunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckElasticGate(rep); err != nil {
		t.Fatal(err)
	}
	byMode := map[string]ElasticPoint{}
	for _, p := range rep.Points {
		byMode[p.Mode] = p
	}
	if h := byMode["static"].Healed; h {
		t.Error("static topology should not heal")
	}
	el := byMode["elastic"]
	if el.Topology.Splits < 2 {
		t.Errorf("expected one split per drift phase, got %d", el.Topology.Splits)
	}
	if el.Topology.Merges != 0 {
		t.Errorf("unexpected merges: %d", el.Topology.Merges)
	}
	if len(el.Decisions) == 0 {
		t.Error("elastic point carries no rebalancer journal")
	}
	if el.Topology.Ring.Active <= ElasticInitialShards {
		t.Errorf("ring never grew: %d active", el.Topology.Ring.Active)
	}
	// The journal must hold one entry per completed window step, each
	// with full evidence.
	for _, d := range el.Decisions {
		if len(d.WindowOps) != ElasticMaxShards {
			t.Fatalf("decision window_ops has %d shards, want %d", len(d.WindowOps), ElasticMaxShards)
		}
	}
}

// TestElasticPointDeterministic re-runs one mode and requires
// byte-identical JSON — the figure is a replayable artifact.
func TestElasticPointDeterministic(t *testing.T) {
	const horizon = 200_000
	sc := ElasticScenario(40, 1024, 4, 2, 90, horizon)
	run := func() []byte {
		p, err := RunPointElastic(sc, "elastic", true, 8, Config{Seed: 3, Horizon: horizon}, ElasticRunConfig{Rate: 8000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(&p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("elastic point not deterministic:\n%s\n%s", a, b)
	}
}

func TestElasticJSONLRoundTrip(t *testing.T) {
	const horizon = 200_000
	sc := ElasticScenario(40, 1024, 4, 2, 0, horizon)
	p, err := RunPointElastic(sc, "balanced", false, 4, Config{Seed: 5, Horizon: horizon}, ElasticRunConfig{Rate: 4000})
	if err != nil {
		t.Fatal(err)
	}
	rep := &ElasticReport{
		Figure: "elastic", Scenario: sc.Name, Threads: 4, Seed: 5,
		Horizon: horizon, Rate: 4000, Window: horizon / 16,
		SLOThreshold: DefaultOpenLoopSLOThreshold, Gate: 0.8,
		Points:       []ElasticPoint{p},
	}
	data, err := rep.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseElasticJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0].Completed != p.Completed ||
		back.Points[0].Mode != "balanced" || back.Rate != 4000 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if rep.Text() == "" || len(rep.Results()) != 1 {
		t.Fatal("renderers returned nothing")
	}
}

// TestCheckElasticGateSemantics exercises the gate's failure branches
// on synthetic reports.
func TestCheckElasticGateSemantics(t *testing.T) {
	mk := func() *ElasticReport {
		topo := &shard.Topology{Splits: 2}
		return &ElasticReport{
			Gate: 0.8,
			Points: []ElasticPoint{
				{Mode: "balanced", PostThroughput: 1000},
				{Mode: "static", BadWindows: 5},
				{Mode: "elastic", BadWindows: 2, Healed: true, PostThroughput: 900, Topology: topo},
			},
		}
	}
	if err := CheckElasticGate(mk()); err != nil {
		t.Fatalf("healthy report failed gate: %v", err)
	}

	r := mk()
	r.Points = r.Points[:2]
	if err := CheckElasticGate(r); err == nil {
		t.Error("missing mode passed gate")
	}

	r = mk()
	r.Points[1].BadWindows = 0
	if err := CheckElasticGate(r); err == nil || !strings.Contains(err.Error(), "never degraded") {
		t.Errorf("undegraded static should fail gate, got %v", err)
	}

	r = mk()
	r.Points[2].Topology.Splits = 0
	if err := CheckElasticGate(r); err == nil || !strings.Contains(err.Error(), "never split") {
		t.Errorf("splitless elastic should fail gate, got %v", err)
	}

	r = mk()
	r.Points[2].Healed = false
	if err := CheckElasticGate(r); err == nil || !strings.Contains(err.Error(), "flipped back") {
		t.Errorf("unhealed elastic should fail gate, got %v", err)
	}

	r = mk()
	r.Points[2].PostThroughput = 700
	if err := CheckElasticGate(r); err == nil || !strings.Contains(err.Error(), "post-heal") {
		t.Errorf("slow elastic should fail gate, got %v", err)
	}

	r = mk()
	r.Points[0].InvariantViolation = "boom"
	if err := CheckElasticGate(r); err == nil || !strings.Contains(err.Error(), "invariant") {
		t.Errorf("invariant violation should fail gate, got %v", err)
	}
}
