package harness

import (
	"reflect"
	"testing"

	"hcf/internal/memsim"
)

// TestExploredZeroConfigMatchesRunPoint pins that RunPointExplored with a
// zero ExploreConfig IS RunPoint: same environment construction, same
// scheduler fast path, bit-identical Result. The golden JSONL fixtures
// (perf_test.go) pin the same property against recordings made before the
// exploration layer existed.
func TestExploredZeroConfigMatchesRunPoint(t *testing.T) {
	sc := HashTableScenario(40, 256)
	cfg := Config{Horizon: 20_000, Seed: 9}
	for _, name := range EngineNames {
		base, err := RunPoint(sc, name, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		zero, err := RunPointExplored(sc, name, 4, cfg, memsim.ExploreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, zero) {
			t.Errorf("%s: zero ExploreConfig diverged from RunPoint:\n%+v\nvs\n%+v", name, base, zero)
		}
	}
}

// TestExploredRunDeterministicPerSeed pins the replay guarantee at the
// harness level: the same (config, exploration seed) must reproduce the
// full Result — ops, cycles, metrics, phase breakdowns — exactly.
func TestExploredRunDeterministicPerSeed(t *testing.T) {
	sc := HashTableScenario(40, 256)
	cfg := Config{Horizon: 20_000, Seed: 9}
	ex := memsim.ExploreConfig{Seed: 31, PreemptBudget: 48, JitterClass: 2}
	for _, name := range []string{"FC", "HCF"} {
		a, err := RunPointExplored(sc, name, 4, cfg, ex)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunPointExplored(sc, name, 4, cfg, ex)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: explored replay diverged:\n%+v\nvs\n%+v", name, a, b)
		}
	}
}

// TestExploredRunPerturbsAndStaysSound checks that exploration actually
// changes measured behaviour for at least one seed (otherwise the layer
// tests nothing) while every explored run still passes the scenario's
// structural invariant check and completes a sane number of operations.
func TestExploredRunPerturbsAndStaysSound(t *testing.T) {
	sc := HashTableScenario(40, 256)
	cfg := Config{Horizon: 20_000, Seed: 9}
	base, err := RunPoint(sc, "HCF", 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := false
	for seed := uint64(0); seed < 6; seed++ {
		ex := memsim.ExploreConfig{Seed: seed, PreemptBudget: 48, JitterClass: 3}
		r, err := RunPointExplored(sc, "HCF", 4, cfg, ex)
		if err != nil {
			t.Fatal(err)
		}
		if r.InvariantViolation != "" {
			t.Fatalf("seed %d: invariant violated under exploration: %s", seed, r.InvariantViolation)
		}
		if r.Ops == 0 {
			t.Fatalf("seed %d: explored run completed no operations", seed)
		}
		if r.Ops != base.Ops || r.Cycles != base.Cycles {
			perturbed = true
		}
	}
	if !perturbed {
		t.Error("no exploration seed perturbed the measurement")
	}
}
