package harness

import (
	"fmt"

	"hcf/internal/memsim"
)

// FigureKind selects how a figure's results are rendered.
type FigureKind int

// Figure kinds.
const (
	// KindThroughput renders throughput vs threads per engine (Figures 2
	// and 5 and the ablation experiments).
	KindThroughput FigureKind = iota
	// KindPhases renders HCF's per-phase completion percentages split by
	// operation class (Figure 3).
	KindPhases
	// KindStats renders combining degree, lock acquisitions per operation
	// and L1 miss rate per engine (the §3.3 performance statistics).
	KindStats
)

// Figure describes one reproducible experiment (see DESIGN.md's
// per-experiment index).
type Figure struct {
	// ID is the CLI handle ("2a", "3", "pqueue", ...).
	ID string
	// Ref cites the paper figure or section being reproduced.
	Ref string
	// Title describes the experiment.
	Title string
	// Expect summarizes the shape the paper reports.
	Expect string
	// Scenario is the workload.
	Scenario Scenario
	// Engines to compare.
	Engines []string
	// Threads to sweep.
	Threads []int
	// Cost overrides the machine model (zero = default one-socket).
	Cost memsim.CostParams
	// Kind selects the rendering.
	Kind FigureKind
}

// Paper parameters (§3.3, §3.4).
const (
	paperBuckets  = 16384 // 16K keys and buckets
	paperAVLRange = 1024  // keys in [0..1023]
	paperTheta    = 0.9
)

func defaultThreads() []int { return []int{1, 2, 4, 8, 12, 18, 24, 30, 36} }

func numaThreads() []int { return []int{1, 4, 9, 18, 27, 36, 54, 72} }

// Figures returns the registry of all reproducible experiments, in the
// order they appear in DESIGN.md.
func Figures() []Figure {
	all := EngineNames
	return []Figure{
		{
			ID: "2a", Ref: "Figure 2(a)",
			Title:    "hash table throughput, 100% Find",
			Expect:   "HCF ≈ TLE ≈ SCM ≈ TLE+FC and all scale; Lock and FC stay flat",
			Scenario: HashTableScenario(100, paperBuckets),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "2b", Ref: "Figure 2(b)",
			Title:    "hash table throughput, 80% Find, two sockets (72 threads)",
			Expect:   "HCF peaks highest and holds; all engines dip when crossing the socket boundary",
			Scenario: HashTableScenario(80, paperBuckets),
			Engines:  all, Threads: numaThreads(),
			Cost: memsim.TwoSocketCostParams(), Kind: KindThroughput,
		},
		{
			ID: "2c", Ref: "Figure 2(c)",
			Title:    "hash table throughput, 40% Find",
			Expect:   "HCF's advantage grows with the update fraction; TLE+FC ≈ TLE",
			Scenario: HashTableScenario(40, paperBuckets),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "3", Ref: "Figure 3",
			Title:    "HCF phase-completion breakdown, hash table at 40% Find",
			Expect:   "Finds/Removes complete in TryPrivate; Inserts shift into the combining phases as threads grow",
			Scenario: HashTableScenario(40, paperBuckets),
			Engines:  []string{"HCF"}, Threads: defaultThreads(), Kind: KindPhases,
		},
		{
			ID: "4", Ref: "§3.3 statistics",
			Title:    "combining degree, lock acquisitions and L1 misses, hash table at 40% Find",
			Expect:   "HCF combining degree ≫ TLE+FC (≈1); HCF lock acquisitions per op ≪ TLE",
			Scenario: HashTableScenario(40, paperBuckets),
			Engines:  []string{"TLE", "FC", "TLE+FC", "HCF"},
			Threads:  []int{8, 18, 36}, Kind: KindStats,
		},
		{
			ID: "5a", Ref: "Figure 5(a)",
			Title:    "AVL set throughput, Zipf θ=0.9, 0% Find",
			Expect:   "HCF wins clearly at the highest update rate",
			Scenario: AVLScenario(0, paperAVLRange, paperTheta, AVLCombining),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "5b", Ref: "Figure 5(b)",
			Title:    "AVL set throughput, Zipf θ=0.9, 40% Find",
			Expect:   "HCF still ahead; gap smaller than at 0% Find",
			Scenario: AVLScenario(40, paperAVLRange, paperTheta, AVLCombining),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "5c", Ref: "Figure 5(c)",
			Title:    "AVL set throughput, Zipf θ=0.9, 80% Find",
			Expect:   "engines converge as conflicts get rare",
			Scenario: AVLScenario(80, paperAVLRange, paperTheta, AVLCombining),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "ablation-avl", Ref: "§3.4 ablations",
			Title:    "AVL HCF variants at 0% Find: combining vs no-combining vs two arrays",
			Expect:   "the main HCF variant (combining + one array) performs best",
			Scenario: AVLScenario(0, paperAVLRange, paperTheta, AVLCombining),
			Engines:  []string{"HCF"}, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "pqueue", Ref: "§1 example",
			Title:    "skip-list priority queue, 50% Insert / 50% RemoveMin",
			Expect:   "HCF preserves throughput at high thread counts where TLE collapses, and beats FC throughout (Inserts stay parallel)",
			Scenario: PQScenario(50, 1<<20, 4096),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "stack", Ref: "§3.1 qualitative",
			Title:    "stack, 50% Push / 50% Pop",
			Expect:   "no parallelism to exploit: TLE loses badly; combining engines (FC, HCF) are not expected to be beaten by speculation",
			Scenario: StackScenario(1024),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "skipset", Ref: "§3.1 claim",
			Title:    "skip-list ordered set, Zipf θ=0.9, 40% Contains",
			Expect:   "HCF benefits structures that 'allow at least some amount of parallelism': skip lists named explicitly",
			Scenario: SkipSetScenario(40, 1024, paperTheta),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "queue", Ref: "related-work baseline",
			Title:    "FIFO queue, 50% Enqueue / 50% Dequeue, per-end combiners",
			Expect:   "HCF's two concurrent per-end combiners beat the single global lock of FC",
			Scenario: QueueScenario(50, 2048),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "btree", Ref: "§3.4 family",
			Title:    "B-tree set, Zipf θ=0.9, 40% Contains",
			Expect:   "same shape as the AVL figures with a friendlier speculative footprint (multi-key nodes)",
			Scenario: BTreeScenario(40, 1024, paperTheta),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "sortedlist", Ref: "related work [8]",
			Title:    "sorted linked list, 40% Contains, O(n) scans",
			Expect:   "long scans break speculation; merge-pass combining (HCF, FC) dominates TLE",
			Scenario: SortedListScenario(40, 512),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
		{
			ID: "budget-sweep", Ref: "§3.3 setup claim",
			Title:    "HCF Insert trial-budget sensitivity, hash table at 40% Find, 18 threads",
			Expect:   "the paper's 2/3/5 split is near the best of the sweep ('works reasonably well')",
			Scenario: HashTableScenario(40, paperBuckets),
			Engines:  []string{"HCF"}, Threads: []int{18}, Kind: KindThroughput,
		},
		{
			ID: "sharded", Ref: "scaling extension",
			Title:    "sharded HCF: hash-table throughput vs shard count, 40% Find",
			Expect:   "HCF-S throughput grows with shard count at >= 16 threads (independent combiners on disjoint shards); whole-structure scans (cross=1% rows) serialize every shard and flatten the curve",
			Scenario: ShardedHashTableScenario(40, paperBuckets, 1, 0, 0),
			Engines:  []string{"HCF", "HCF-S"}, Threads: []int{1, 8, 16, 24, 36}, Kind: KindThroughput,
		},
		{
			ID: "autotune", Ref: "§2.4 future work",
			Title:    "evidence-driven policy autotuner vs static policies, drifting priority-queue workload, 36 threads",
			Expect:   "the tuned run matches the best static policy overall and beats every single static policy after the drift point; each policy change is traceable to journal evidence",
			Scenario: PQScenario(autotuneInsertPct, autotuneKeyRange, autotunePrefill),
			Engines:  []string{"HCF"}, Threads: []int{36}, Kind: KindThroughput,
		},
		{
			ID: "openloop", Ref: "production extension",
			Title:    "open-loop offered-load sweep: coordinated-omission-safe sojourn tails to the saturation knee, 4-shard hash table at 40% Find, 36 threads",
			Expect:   "below the knee every engine tracks the offered rate with flat tails; past each engine's capacity the backlog and p99/p999 sojourns blow up and SLO burn-rate verdicts fire — Lock saturates first, HCF later, HCF-S last",
			Scenario: OpenLoopScenario(),
			Engines:  OpenLoopDefaultEngines, Threads: []int{36}, Kind: KindThroughput,
		},
		{
			ID: "elastic", Ref: "production extension",
			Title:    "elastic sharding: hot-shard healing under drifting 90% skew, 4 active / 8 provisioned shards, 36 threads",
			Expect:   "balanced load meets the sojourn SLO throughout; with the topology frozen the drifting skew saturates one shard and its p99 windows blow up; with the rebalancer on, evidence-driven splits spread the hot keyspace and the verdict flips back with post-heal throughput >= 0.8x balanced",
			Scenario: ElasticScenario(40, ElasticBuckets, ElasticMaxShards, ElasticInitialShards, ElasticHotPct, ElasticDefaultHorizon),
			Engines:  []string{ElasticEngineName}, Threads: []int{36}, Kind: KindThroughput,
		},
		{
			ID: "deque", Ref: "§2.4 example",
			Title:    "deque, uniform operations on both ends, specialized variant",
			Expect:   "HCF's two per-end combiners beat the single-lock engines",
			Scenario: DequeScenario(2048, true),
			Engines:  all, Threads: defaultThreads(), Kind: KindThroughput,
		},
	}
}

// FigureByID finds a figure in the registry.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: unknown figure %q", id)
}

// RunFigure executes a figure's sweep. The ablation figure additionally
// runs its variant scenarios.
func RunFigure(f Figure, cfg Config) ([]Result, error) {
	if f.Cost.CoresPerSocket != 0 || f.Cost.Sockets != 0 {
		cfg.Cost = f.Cost
	}
	if f.ID == "openloop" {
		// The open-loop figure is its own harness: offered-load sweep with
		// sojourn tails, flattened to sweep rows (rate in the scenario label).
		var results []Result
		for _, th := range f.Threads {
			rep, err := RunOpenLoopFigure(th, cfg, OpenLoopConfig{})
			if err != nil {
				return nil, err
			}
			results = append(results, rep.Results()...)
		}
		return results, nil
	}
	if f.ID == "elastic" {
		// The elastic figure is its own harness: three-mode hot-shard
		// healing comparison, flattened to sweep rows (mode in the label).
		// The registry scenario is representative only — the runner
		// rebuilds it against cfg.Horizon so the drift schedule scales.
		var results []Result
		for _, th := range f.Threads {
			rep, err := RunElasticFigure(th, cfg, ElasticRunConfig{})
			if err != nil {
				return nil, err
			}
			results = append(results, rep.Results()...)
		}
		return results, nil
	}
	if f.ID == "autotune" {
		// The autotune figure is its own harness: static grid + tuned run +
		// oracle over the drifting workload, flattened to sweep rows.
		var results []Result
		for _, th := range f.Threads {
			rep, err := RunAutotune(th, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, rep.Results()...)
		}
		return results, nil
	}
	results, err := RunSweep(f.Scenario, f.Engines, f.Threads, cfg)
	if err != nil {
		return nil, err
	}
	switch f.ID {
	case "ablation-avl":
		for _, variant := range []AVLVariant{AVLNoCombine, AVLTwoArrays} {
			sc := AVLScenario(0, paperAVLRange, paperTheta, variant)
			more, err := RunSweep(sc, []string{"HCF"}, f.Threads, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, more...)
		}
	case "sharded":
		results = results[:0] // replace the base run with the labelled sweep
		for _, shards := range []int{1, 2, 4, 8} {
			sc := ShardedHashTableScenario(40, paperBuckets, shards, 0, 0)
			engines := []string{ShardedEngineName}
			if shards == 1 || shards == 8 {
				// Single-framework reference over the identical partitioned
				// workload, at both ends of the shard-count sweep.
				engines = []string{"HCF", ShardedEngineName}
			}
			more, err := RunSweep(sc, engines, f.Threads, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, more...)
		}
		// Cross-shard cost row: 1% whole-structure scans over 4 shards. Each
		// scan holds every shard lock, so it bounds throughput regardless of
		// shard count — the honest price of the all-locks path.
		sc := ShardedHashTableScenario(40, paperBuckets, 4, 1, 0)
		more, err := RunSweep(sc, []string{"HCF", ShardedEngineName}, f.Threads, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, more...)
	case "budget-sweep":
		results = results[:0] // replace the base run with the labelled sweep
		for _, b := range [][3]int{{2, 3, 5}, {10, 0, 0}, {0, 0, 10}, {5, 5, 0}, {0, 5, 5}, {4, 3, 3}, {1, 1, 8}} {
			sc := HashTableBudgetScenario(40, paperBuckets, b[0], b[1], b[2])
			more, err := RunSweep(sc, []string{"HCF"}, f.Threads, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, more...)
		}
	}
	return results, nil
}
