package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hcf/internal/core"
	"hcf/internal/htm"
)

// seriesKey identifies one line of a throughput chart: engine name plus, if
// several scenarios were merged into one figure (the ablations), the
// scenario.
func seriesKey(r Result, multiScenario bool) string {
	if multiScenario {
		return r.Engine + " " + r.Scenario
	}
	return r.Engine
}

// FormatThroughputTable renders throughput (ops per million cycles) as a
// text table with one row per thread count and one column per engine — the
// data behind the paper's line charts.
func FormatThroughputTable(results []Result) string {
	scenarios := map[string]bool{}
	for _, r := range results {
		scenarios[r.Scenario] = true
	}
	multi := len(scenarios) > 1

	threads := []int{}
	seenT := map[int]bool{}
	series := []string{}
	seenS := map[string]bool{}
	cell := map[string]map[int]float64{}
	for _, r := range results {
		if !seenT[r.Threads] {
			seenT[r.Threads] = true
			threads = append(threads, r.Threads)
		}
		k := seriesKey(r, multi)
		if !seenS[k] {
			seenS[k] = true
			series = append(series, k)
			cell[k] = map[int]float64{}
		}
		cell[k][r.Threads] = r.Throughput
	}
	sort.Ints(threads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteByte('\n')
	for _, t := range threads {
		fmt.Fprintf(&b, "%-8d", t)
		for _, s := range series {
			fmt.Fprintf(&b, " %14.1f", cell[s][t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCSV renders results as CSV (scenario, engine, threads, throughput,
// plus behavioural counters) for external plotting.
func FormatCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("scenario,engine,threads,ops,cycles,throughput," +
		"lock_acqs,aux_acqs,combiner_sessions,combined_ops," +
		"htm_started,htm_commits,htm_aborts,l1_miss_rate\n")
	for _, r := range results {
		m := &r.Metrics
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
			r.Scenario, r.Engine, r.Threads, r.Ops, r.Cycles, r.Throughput,
			m.LockAcquisitions, m.AuxAcquisitions, m.CombinerSessions,
			m.CombinedOps, m.HTM.Started, m.HTM.Commits, m.HTM.TotalAborts(),
			r.Mem.MissRate())
	}
	return b.String()
}

// ResultRecord is the machine-readable (JSON) form of one Result: flat
// snake_case fields plus derived rates, so external tooling needs no
// knowledge of internal types.
type ResultRecord struct {
	Scenario           string             `json:"scenario"`
	Engine             string             `json:"engine"`
	Threads            int                `json:"threads"`
	Ops                uint64             `json:"ops"`
	Cycles             int64              `json:"cycles"`
	Throughput         float64            `json:"throughput"`
	LockAcquisitions   uint64             `json:"lock_acquisitions"`
	AuxAcquisitions    uint64             `json:"aux_acquisitions"`
	CombinerSessions   uint64             `json:"combiner_sessions"`
	CombinedOps        uint64             `json:"combined_ops"`
	CombiningDegree    float64            `json:"combining_degree"`
	HTMStarted         uint64             `json:"htm_started"`
	HTMCommits         uint64             `json:"htm_commits"`
	HTMAborts          map[string]uint64  `json:"htm_aborts,omitempty"`
	Loads              uint64             `json:"loads"`
	Stores             uint64             `json:"stores"`
	L1MissRate         float64            `json:"l1_miss_rate"`
	CoherenceMisses    uint64             `json:"coherence_misses"`
	RemoteMisses       uint64             `json:"remote_misses"`
	PhaseByClass       []map[string]uint64 `json:"phase_by_class,omitempty"`
	InvariantViolation string             `json:"invariant_violation,omitempty"`
}

// RecordOf converts a Result to its machine-readable record.
func RecordOf(r Result) ResultRecord {
	m := &r.Metrics
	rec := ResultRecord{
		Scenario:         r.Scenario,
		Engine:           r.Engine,
		Threads:          r.Threads,
		Ops:              r.Ops,
		Cycles:           r.Cycles,
		Throughput:       r.Throughput,
		LockAcquisitions: m.LockAcquisitions,
		AuxAcquisitions:  m.AuxAcquisitions,
		CombinerSessions: m.CombinerSessions,
		CombinedOps:      m.CombinedOps,
		CombiningDegree:  m.CombiningDegree(),
		HTMStarted:       m.HTM.Started,
		HTMCommits:       m.HTM.Commits,
		Loads:            r.Mem.Loads,
		Stores:           r.Mem.Stores,
		L1MissRate:       r.Mem.MissRate(),
		CoherenceMisses:  r.Mem.CoherenceMisses,
		RemoteMisses:     r.Mem.RemoteMisses,

		InvariantViolation: r.InvariantViolation,
	}
	for reason := htm.ReasonConflict; reason < htm.NumReasons; reason++ {
		if n := m.HTM.Aborts[reason]; n > 0 {
			if rec.HTMAborts == nil {
				rec.HTMAborts = make(map[string]uint64)
			}
			rec.HTMAborts[reason.String()] = n
		}
	}
	for _, phases := range r.PhaseByClass {
		row := make(map[string]uint64, core.NumPhases)
		for p := 0; p < core.NumPhases; p++ {
			row[core.Phase(p).String()] = phases[p]
		}
		rec.PhaseByClass = append(rec.PhaseByClass, row)
	}
	return rec
}

// FormatJSON renders one result as an indented JSON object.
func FormatJSON(r Result) (string, error) {
	out, err := json.MarshalIndent(RecordOf(r), "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// FormatJSONL renders results as JSON Lines: one compact record per
// (scenario, engine, threads) cell.
func FormatJSONL(results []Result) (string, error) {
	var b strings.Builder
	for _, r := range results {
		out, err := json.Marshal(RecordOf(r))
		if err != nil {
			return "", err
		}
		b.Write(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// classGroup maps the hash-table classes onto Figure 3's three panels.
type classGroup struct {
	label   string
	classes []int
}

// FormatPhaseTable renders HCF's per-phase completion percentages — Figure
// 3's three panels: all operations, Inserts only, Finds+Removes only (for
// the hash-table class layout: 0 find, 1 insert, 2 remove). For other
// scenarios every class is shown separately.
func FormatPhaseTable(results []Result, hashTableLayout bool) string {
	var groups []classGroup
	if hashTableLayout {
		groups = []classGroup{
			{"all ops", []int{0, 1, 2}},
			{"insert", []int{1}},
			{"find+remove", []int{0, 2}},
		}
	}
	var b strings.Builder
	for _, r := range results {
		if r.PhaseByClass == nil {
			continue
		}
		gs := groups
		if gs == nil {
			for c := range r.PhaseByClass {
				gs = append(gs, classGroup{fmt.Sprintf("class %d", c), []int{c}})
			}
		}
		fmt.Fprintf(&b, "threads=%d\n", r.Threads)
		fmt.Fprintf(&b, "  %-12s %12s %12s %12s %12s\n",
			"ops", "TryPrivate", "TryVisible", "TryCombining", "UnderLock")
		for _, g := range gs {
			var sum [core.NumPhases]uint64
			var total uint64
			for _, c := range g.classes {
				if c < len(r.PhaseByClass) {
					for p := 0; p < core.NumPhases; p++ {
						sum[p] += r.PhaseByClass[c][p]
						total += r.PhaseByClass[c][p]
					}
				}
			}
			fmt.Fprintf(&b, "  %-12s", g.label)
			for p := 0; p < core.NumPhases; p++ {
				pct := 0.0
				if total > 0 {
					pct = 100 * float64(sum[p]) / float64(total)
				}
				fmt.Fprintf(&b, " %11.1f%%", pct)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatStatsTable renders the §3.3 performance statistics: combining
// degree, lock acquisitions per operation, HTM commit ratio, and L1-D miss
// rate.
func FormatStatsTable(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %12s %12s %12s %12s %12s\n",
		"threads", "engine", "thrpt", "comb.degree", "lock/op", "commit%", "L1miss%")
	for _, r := range results {
		m := &r.Metrics
		lockPerOp := 0.0
		if r.Ops > 0 {
			lockPerOp = float64(m.LockAcquisitions) / float64(r.Ops)
		}
		commitPct := 0.0
		if m.HTM.Started > 0 {
			commitPct = 100 * float64(m.HTM.Commits) / float64(m.HTM.Started)
		}
		fmt.Fprintf(&b, "%-8d %-8s %12.1f %12.2f %12.3f %12.1f %12.2f\n",
			r.Threads, r.Engine, r.Throughput, m.CombiningDegree(), lockPerOp,
			commitPct, 100*r.Mem.MissRate())
	}
	return b.String()
}

// FormatFigure renders a figure's results according to its kind.
func FormatFigure(f Figure, results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (%s): %s\n", f.ID, f.Ref, f.Title)
	fmt.Fprintf(&b, "   paper shape: %s\n\n", f.Expect)
	switch f.Kind {
	case KindPhases:
		b.WriteString(FormatPhaseTable(results, strings.HasPrefix(f.Scenario.Name, "hashtable")))
	case KindStats:
		b.WriteString(FormatStatsTable(results))
	default:
		b.WriteString(FormatThroughputTable(results))
	}
	for _, r := range results {
		if r.InvariantViolation != "" {
			fmt.Fprintf(&b, "!! INVARIANT VIOLATION [%s %s t=%d]: %s\n",
				r.Scenario, r.Engine, r.Threads, r.InvariantViolation)
		}
	}
	return b.String()
}
