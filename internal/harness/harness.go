// Package harness runs the paper's experiments: it sweeps thread counts and
// synchronization engines over data-structure scenarios in the
// deterministic simulator, collects throughput and behavioural statistics,
// and renders the tables behind every figure of the paper (see figures.go
// for the per-figure registry).
package harness

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/htm"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/shard"
)

// EngineNames lists all engines in the paper's presentation order.
var EngineNames = []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"}

// ShardedEngineName is the sharded HCF variant; BuildEngine accepts it only
// for scenarios that provide an Instance.Sharding plan.
const ShardedEngineName = "HCF-S"

// ElasticEngineName is the elastic (consistent-hash ring, online
// split/merge) HCF variant; BuildEngine accepts it only for scenarios
// that provide an Instance.Elastic plan.
const ElasticEngineName = "HCF-E"

// KnownEngineNames lists every engine BuildEngine accepts: the paper's six
// plus the sharded variant.
func KnownEngineNames() []string {
	return append(append([]string(nil), EngineNames...), ShardedEngineName, ElasticEngineName)
}

// ValidateEngineNames rejects names BuildEngine would not accept, so CLIs
// can fail fast (before running part of a sweep) with the known set.
func ValidateEngineNames(names []string) error {
	known := KnownEngineNames()
	for _, name := range names {
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("harness: unknown engine %q (known engines: %s)",
				name, strings.Join(known, ", "))
		}
	}
	return nil
}

// Scenario couples a data structure with a workload.
type Scenario struct {
	// Name labels the scenario in output.
	Name string
	// Setup builds and prefills the data structure in env and returns the
	// scenario instance. It runs on the bootstrap thread.
	Setup func(env memsim.Env, seed uint64) Instance
}

// Instance is one constructed data structure plus its engine plumbing.
type Instance struct {
	// Policies is the HCF configuration for this structure.
	Policies []core.Policy
	// ClassNames labels the operation classes in metrics output; nil
	// falls back to "class0".."classN-1".
	ClassNames []string
	// HoldSelectionLock selects the specialized HCF variant (§2.4).
	HoldSelectionLock bool
	// Combine is the combining function for the FC / TLE+FC baselines.
	Combine engine.CombineFunc
	// NextOp draws the next operation using a per-thread rng. Called only
	// from inside the environment's Run (one virtual thread at a time).
	NextOp func(r *rand.Rand) engine.Op
	// NextOpAt, when non-nil, draws time-aware operations (drifting
	// workloads). Runners that know the virtual arrival time prefer it
	// over NextOp; everything else falls back to NextOp.
	NextOpAt func(now int64, r *rand.Rand) engine.Op
	// Check optionally validates structural invariants after a run,
	// returning a description of the first violation or "".
	Check func(ctx memsim.Ctx) string
	// Sharding, when non-nil, lets the scenario run under the sharded HCF
	// engine ("HCF-S"): the structure is partitioned into Shards pieces and
	// Router maps each operation to its piece (or shard.CrossShard).
	Sharding *Sharding
	// Elastic, when non-nil, lets the scenario run under the elastic
	// HCF engine ("HCF-E"): a consistent-hash ring routes keyed
	// operations and shards split/merge online.
	Elastic *ElasticPlan
}

// Sharding is a scenario's plan for the sharded HCF engine. Routing is
// either a Router closure or a Key extractor over a consistent-hash
// ring (exactly one of the two; see shard.Config).
type Sharding struct {
	// Shards is the number of per-shard frameworks.
	Shards int
	// Router maps operations to shards; see shard.Router. Mutually
	// exclusive with Key.
	Router shard.Router
	// Key extracts the routing key for ring routing; see shard.KeyFunc.
	Key shard.KeyFunc
	// Ring overrides the topology used with Key (nil = uniform).
	Ring *route.Ring
}

// ElasticPlan is a scenario's plan for the elastic HCF engine: the
// structure is provisioned as MaxShards pieces of which Initial are
// active, keyed operations are bound to their owning piece at apply
// time, and Migrate moves keys on split/merge.
type ElasticPlan struct {
	// MaxShards is the number of provisioned frameworks.
	MaxShards int
	// Initial is the number of initially active shards (default 1).
	Initial int
	// Slots is the ring's virtual-node count (0 = route.DefaultSlots).
	Slots int
	// Key extracts an operation's routing key; see shard.KeyFunc.
	Key shard.KeyFunc
	// Bind attaches a keyed op to shard si's structure.
	Bind func(op engine.Op, si int) engine.Op
	// Migrate moves re-owned keys during Split/Merge.
	Migrate shard.MigrateFunc
	// Rebalance tunes the hot-shard feedback loop (zero = defaults).
	Rebalance shard.RebalanceConfig
}

// Config tunes a sweep.
type Config struct {
	// Horizon is the virtual-cycle duration of each measurement.
	Horizon int64
	// Seed feeds all generators; equal seeds give identical runs.
	Seed uint64
	// Cost is the simulated machine; zero fields take defaults.
	Cost memsim.CostParams
	// Trials is the speculation budget of the baseline engines (default
	// 10, the paper's budget).
	Trials int
	// HTM configures the transactional engine for all engines.
	HTM htm.Config
	// Parallel bounds how many sweep points RunSweep measures concurrently
	// on the host: 0 uses all host cores (GOMAXPROCS), 1 forces a serial
	// sweep. Each point owns an independent DetEnv, so parallelism changes
	// only host wall-clock time — results are identical, in identical
	// order, at any setting.
	Parallel int
	// CapacityHint pre-sizes each point's simulated arena (in words); see
	// memsim.DetConfig.CapacityHint. Zero grows on demand.
	CapacityHint int
}

func (c *Config) normalize() {
	if c.Horizon <= 0 {
		c.Horizon = 200_000
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.HTM.NoisePPMPerLine == 0 {
		c.HTM.NoisePPMPerLine = 500 // real HTM aborts sporadically
	}
	// Cost is normalized by memsim.NewDet.
}

// Result is one (scenario, engine, threads) measurement.
type Result struct {
	Scenario string
	Engine   string
	Threads  int
	// Ops completed within the horizon across all threads.
	Ops uint64
	// Cycles is the maximum per-thread virtual time consumed.
	Cycles int64
	// Throughput in operations per million cycles.
	Throughput float64
	// Metrics aggregates engine counters.
	Metrics engine.Metrics
	// Mem aggregates the worker threads' memory counters.
	Mem memsim.ThreadStats
	// PhaseByClass is the per-class phase breakdown (HCF engines only).
	PhaseByClass [][core.NumPhases]uint64
	// InvariantViolation is non-empty if the scenario's check failed.
	InvariantViolation string
}

// BuildEngine constructs the named engine over env for inst.
func BuildEngine(name string, env memsim.Env, inst Instance, cfg Config) (engine.Engine, error) {
	opts := engines.Options{
		HTM:     cfg.HTM,
		Trials:  cfg.Trials,
		Combine: inst.Combine,
	}
	switch name {
	case "Lock":
		return engines.NewLock(env, opts), nil
	case "TLE":
		return engines.NewTLE(env, opts), nil
	case "FC":
		return engines.NewFC(env, opts), nil
	case "SCM":
		return engines.NewSCM(env, opts), nil
	case "TLE+FC":
		return engines.NewTLEFC(env, opts), nil
	case "HCF":
		return core.New(env, core.Config{
			Policies:          inst.Policies,
			HoldSelectionLock: inst.HoldSelectionLock,
			HTM:               cfg.HTM,
		})
	case ShardedEngineName:
		if inst.Sharding == nil {
			return nil, fmt.Errorf("harness: engine %q needs a scenario with a sharding plan (Instance.Sharding is nil)", name)
		}
		return shard.New(env, shard.Config{
			Shards:            inst.Sharding.Shards,
			Router:            inst.Sharding.Router,
			Key:               inst.Sharding.Key,
			Ring:              inst.Sharding.Ring,
			Policies:          inst.Policies,
			HoldSelectionLock: inst.HoldSelectionLock,
			HTM:               cfg.HTM,
		})
	case ElasticEngineName:
		if inst.Elastic == nil {
			return nil, fmt.Errorf("harness: engine %q needs a scenario with an elastic sharding plan (Instance.Elastic is nil)", name)
		}
		return shard.NewElastic(env, shard.ElasticConfig{
			MaxShards:         inst.Elastic.MaxShards,
			Initial:           inst.Elastic.Initial,
			Slots:             inst.Elastic.Slots,
			Key:               inst.Elastic.Key,
			Bind:              inst.Elastic.Bind,
			Migrate:           inst.Elastic.Migrate,
			Policies:          inst.Policies,
			HoldSelectionLock: inst.HoldSelectionLock,
			HTM:               cfg.HTM,
		})
	default:
		return nil, fmt.Errorf("harness: unknown engine %q (known engines: %s)",
			name, strings.Join(KnownEngineNames(), ", "))
	}
}

// RunPoint measures one (scenario, engine, threads) configuration in a
// fresh deterministic environment.
func RunPoint(sc Scenario, engineName string, threads int, cfg Config) (Result, error) {
	return RunPointExplored(sc, engineName, threads, cfg, memsim.ExploreConfig{})
}

// RunPointExplored is RunPoint under adversarial schedule exploration: the
// environment perturbs the min-clock schedule per ex (randomized thread
// priorities plus bounded forced preemptions; see memsim.ExploreConfig).
// A zero ex is exactly RunPoint — the scheduler takes its unexplored fast
// path, and results are bit-identical to the golden fixtures (pinned by
// TestExploredZeroConfigMatchesRunPoint and the Golden tests). A non-zero
// ex measures a deliberately unfair schedule: use it to validate invariants
// under hostile interleavings, not to compare throughput.
func RunPointExplored(sc Scenario, engineName string, threads int, cfg Config, ex memsim.ExploreConfig) (Result, error) {
	cfg.normalize()
	env := memsim.NewDet(memsim.DetConfig{
		Threads:      threads,
		Cost:         cfg.Cost,
		CapacityHint: cfg.CapacityHint,
		Explore:      ex,
	})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return Result{}, err
	}
	env.ResetStats() // exclude prefill from measurements
	eng.ResetMetrics()
	opWork := env.Cost().OpWork // per-op application logic outside the DS
	opsByThread := make([]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(th.ID())+1))
		for th.Now() < cfg.Horizon {
			th.Work(opWork)
			eng.Execute(th, inst.NextOp(rng))
			opsByThread[th.ID()]++
		}
	})
	res := Result{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Metrics:  eng.Metrics(),
	}
	for t := 0; t < threads; t++ {
		res.Ops += opsByThread[t]
		if now := env.Now(t); now > res.Cycles {
			res.Cycles = now
		}
		res.Mem.Merge(env.Stats(t))
	}
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) * 1e6 / float64(res.Cycles)
	}
	if hcf, ok := eng.(interface {
		PhaseBreakdown() [][core.NumPhases]uint64
	}); ok {
		res.PhaseByClass = hcf.PhaseBreakdown()
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	return res, nil
}

// RunSweep measures every engine at every thread count. Points are measured
// concurrently across host cores (bounded by cfg.Parallel) — each point
// builds its own deterministic environment, engine and scenario instance, so
// measurements do not interact; results are returned in the same
// deterministic (threads-major, engine-minor) order as a serial sweep.
func RunSweep(sc Scenario, engineNames []string, threads []int, cfg Config) ([]Result, error) {
	type point struct {
		threads int
		name    string
	}
	pts := make([]point, 0, len(engineNames)*len(threads))
	for _, t := range threads {
		for _, name := range engineNames {
			pts = append(pts, point{threads: t, name: name})
		}
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pts) {
		par = len(pts)
	}
	results := make([]Result, len(pts))
	if par <= 1 {
		for i, p := range pts {
			r, err := RunPoint(sc, p.name, p.threads, cfg)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, len(pts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pts) {
					return
				}
				results[i], errs[i] = RunPoint(sc, pts[i].name, pts[i].threads, cfg)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
