package harness

import (
	"strings"
	"testing"

	"hcf/internal/memsim"
)

func smallCfg() Config {
	return Config{Horizon: 30_000, Seed: 42}
}

func TestRunPointBasics(t *testing.T) {
	sc := HashTableScenario(40, 256)
	for _, name := range EngineNames {
		t.Run(name, func(t *testing.T) {
			r, err := RunPoint(sc, name, 4, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if r.Throughput <= 0 {
				t.Fatal("non-positive throughput")
			}
			if r.Cycles < 30_000 {
				t.Fatalf("run ended before the horizon: %d", r.Cycles)
			}
			if r.Metrics.Ops != r.Ops {
				t.Fatalf("metrics ops %d != counted ops %d", r.Metrics.Ops, r.Ops)
			}
			if r.InvariantViolation != "" {
				t.Fatalf("invariants violated: %s", r.InvariantViolation)
			}
		})
	}
}

func TestRunPointDeterministic(t *testing.T) {
	sc := AVLScenario(40, 128, 0.9, AVLCombining)
	a, err := RunPoint(sc, "HCF", 6, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPoint(sc, "HCF", 6, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Cycles != b.Cycles || a.Metrics != b.Metrics {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestRunPointSeedChangesRun(t *testing.T) {
	sc := HashTableScenario(40, 256)
	cfg := smallCfg()
	a, _ := RunPoint(sc, "TLE", 4, cfg)
	cfg.Seed = 43
	b, _ := RunPoint(sc, "TLE", 4, cfg)
	if a.Ops == b.Ops && a.Cycles == b.Cycles && a.Metrics == b.Metrics {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRunPointUnknownEngine(t *testing.T) {
	if _, err := RunPoint(HashTableScenario(40, 64), "nope", 2, smallCfg()); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunSweepShape(t *testing.T) {
	res, err := RunSweep(StackScenario(64), []string{"Lock", "FC"}, []int{1, 4}, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
}

func TestAllScenariosRunUnderAllEngines(t *testing.T) {
	scenarios := []Scenario{
		HashTableScenario(80, 128),
		AVLScenario(40, 64, 0.9, AVLCombining),
		AVLScenario(0, 64, 0.5, AVLNoCombine),
		AVLScenario(0, 64, 0.9, AVLTwoArrays),
		PQScenario(50, 4096, 256),
		StackScenario(64),
		DequeScenario(64, false),
		DequeScenario(64, true),
	}
	cfg := Config{Horizon: 15_000, Seed: 7}
	for _, sc := range scenarios {
		for _, name := range EngineNames {
			r, err := RunPoint(sc, name, 3, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, name, err)
			}
			if r.Ops == 0 {
				t.Fatalf("%s/%s: no ops", sc.Name, name)
			}
			if r.InvariantViolation != "" {
				t.Fatalf("%s/%s: %s", sc.Name, name, r.InvariantViolation)
			}
		}
	}
}

func TestFigureRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) < 10 {
		t.Fatalf("only %d figures registered", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		if ids[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		ids[f.ID] = true
		if f.Title == "" || f.Ref == "" || f.Expect == "" {
			t.Fatalf("figure %q missing documentation", f.ID)
		}
		if len(f.Engines) == 0 || len(f.Threads) == 0 {
			t.Fatalf("figure %q has empty sweep", f.ID)
		}
	}
	for _, want := range []string{"2a", "2b", "2c", "3", "4", "5a", "5b", "5c"} {
		if !ids[want] {
			t.Fatalf("paper figure %q missing from registry", want)
		}
	}
	if _, err := FigureByID("2a"); err != nil {
		t.Fatal(err)
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

func TestRunFigureSmall(t *testing.T) {
	f, err := FigureByID("2c")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test speed.
	f.Scenario = HashTableScenario(40, 128)
	f.Engines = []string{"TLE", "HCF"}
	f.Threads = []int{2, 4}
	res, err := RunFigure(f, Config{Horizon: 15_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	out := FormatFigure(f, res)
	if !strings.Contains(out, "TLE") || !strings.Contains(out, "HCF") {
		t.Fatalf("table missing engines:\n%s", out)
	}
}

func TestFormatThroughputTable(t *testing.T) {
	res := []Result{
		{Scenario: "s", Engine: "A", Threads: 1, Throughput: 10},
		{Scenario: "s", Engine: "B", Threads: 1, Throughput: 20},
		{Scenario: "s", Engine: "A", Threads: 2, Throughput: 15},
		{Scenario: "s", Engine: "B", Threads: 2, Throughput: 25},
	}
	out := FormatThroughputTable(res)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "B") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1") || !strings.Contains(lines[1], "10.0") {
		t.Fatalf("row: %s", lines[1])
	}
}

func TestFormatThroughputTableMultiScenario(t *testing.T) {
	res := []Result{
		{Scenario: "x", Engine: "HCF", Threads: 1, Throughput: 1},
		{Scenario: "y", Engine: "HCF", Threads: 1, Throughput: 2},
	}
	out := FormatThroughputTable(res)
	if !strings.Contains(out, "HCF x") || !strings.Contains(out, "HCF y") {
		t.Fatalf("multi-scenario series not labelled:\n%s", out)
	}
}

func TestFormatCSV(t *testing.T) {
	res := []Result{{Scenario: "s", Engine: "E", Threads: 3, Ops: 10, Cycles: 100, Throughput: 5}}
	out := FormatCSV(res)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "s,E,3,10,100,5.00") {
		t.Fatalf("csv row: %s", lines[1])
	}
}

func TestFormatPhaseTable(t *testing.T) {
	r, err := RunPoint(HashTableScenario(40, 64), "HCF", 6, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPhaseTable([]Result{r}, true)
	for _, want := range []string{"all ops", "insert", "find+remove", "TryPrivate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phase table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatStatsTable(t *testing.T) {
	r, err := RunPoint(HashTableScenario(40, 64), "HCF", 6, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStatsTable([]Result{r})
	if !strings.Contains(out, "comb.degree") || !strings.Contains(out, "HCF") {
		t.Fatalf("stats table:\n%s", out)
	}
}

// TestShapeHCFBeatsLockUnderContention is a coarse sanity check of the
// simulation: on the update-heavy hash table at high thread counts, HCF
// must clearly beat the plain lock.
func TestShapeHCFBeatsLockUnderContention(t *testing.T) {
	cfg := Config{Horizon: 60_000, Seed: 11}
	sc := HashTableScenario(40, 1024)
	lock, err := RunPoint(sc, "Lock", 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hcf, err := RunPoint(sc, "HCF", 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hcf.Throughput <= lock.Throughput {
		t.Fatalf("HCF (%.1f) did not beat Lock (%.1f) at 12 threads",
			hcf.Throughput, lock.Throughput)
	}
}

func TestRunAdaptiveComparison(t *testing.T) {
	res, err := RunAdaptiveComparison(12, Config{Horizon: 120_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Two rows (total + post-drift) per variant: the static grid, the
	// tuned run, and the oracle.
	want := 2 * (len(AutotuneStatics()) + 2)
	if len(res) != want {
		t.Fatalf("got %d results, want %d", len(res), want)
	}
	tuned := false
	for _, r := range res {
		if r.Engine == "HCF-tuned" {
			tuned = true
		}
		if r.Ops == 0 {
			t.Fatalf("%s/%s: no ops", r.Engine, r.Scenario)
		}
		if r.InvariantViolation != "" {
			t.Fatalf("%s: %s", r.Engine, r.InvariantViolation)
		}
	}
	if !tuned {
		t.Fatal("no HCF-tuned row in the comparison")
	}
}

func TestRunPointRealSmoke(t *testing.T) {
	for _, name := range []string{"Lock", "TLE", "HCF"} {
		r, err := RunPointReal(HashTableScenario(40, 128), name, 4, 50, Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.Ops != 200 || r.Throughput <= 0 {
			t.Fatalf("%s: %+v", name, r)
		}
		if r.InvariantViolation != "" {
			t.Fatalf("%s: %s", name, r.InvariantViolation)
		}
	}
}

func TestSortedListScenarioUnderAllEngines(t *testing.T) {
	sc := SortedListScenario(40, 64)
	for _, name := range EngineNames {
		r, err := RunPoint(sc, name, 3, Config{Horizon: 10_000, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Ops == 0 || r.InvariantViolation != "" {
			t.Fatalf("%s: %+v", name, r)
		}
	}
}

func TestSkipSetAndQueueScenariosSmoke(t *testing.T) {
	for _, sc := range []Scenario{SkipSetScenario(40, 128, 0.9), QueueScenario(50, 64)} {
		for _, name := range []string{"TLE", "FC", "HCF"} {
			r, err := RunPoint(sc, name, 3, Config{Horizon: 10_000, Seed: 4})
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, name, err)
			}
			if r.Ops == 0 || r.InvariantViolation != "" {
				t.Fatalf("%s/%s: %+v", sc.Name, name, r)
			}
		}
	}
}

func TestHashTableBudgetScenarioOverrides(t *testing.T) {
	sc := HashTableBudgetScenario(40, 64, 7, 1, 2)
	env := memsimNewDetForTest(2)
	inst := sc.Setup(env, 1)
	ins := inst.Policies[1] // ClassInsert
	if ins.TryPrivateTrials != 7 || ins.TryVisibleTrials != 1 || ins.TryCombiningTrials != 2 {
		t.Fatalf("budgets not applied: %+v", ins)
	}
}

func memsimNewDetForTest(threads int) *memsim.DetEnv {
	return memsim.NewDet(memsim.DetConfig{Threads: threads})
}

func TestBTreeScenarioUnderAllEngines(t *testing.T) {
	sc := BTreeScenario(40, 128, 0.9)
	for _, name := range EngineNames {
		r, err := RunPoint(sc, name, 3, Config{Horizon: 10_000, Seed: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Ops == 0 || r.InvariantViolation != "" {
			t.Fatalf("%s: %+v", name, r)
		}
	}
}
