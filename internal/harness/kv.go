package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hcf/internal/kvstore"
	"hcf/internal/metrics"
	"hcf/internal/workload"
)

// This file is the `kv` figure: a wall-clock, open-loop sweep of the
// persistent KV engine (internal/kvstore) under production-shaped load —
// Zipfian key popularity, get/put/delete mixes, arrivals from simulated
// user populations, sojourn tails and SLO verdicts through the same
// metrics pipeline as the simulated open-loop figure. Time is
// nanoseconds throughout (the recorder's unit is "ns"); arrival
// schedules reuse the cycle-domain workload generators with 1 cycle ≡
// 1 ns, so a population's ops/Mcycle is read as ops/ms.
//
// Each point also runs the crash-recovery acceptance check inline:
// after the drain, the index is dumped, the store closed and reopened,
// and the replayed index must be bit-identical to the witness dump.

// KVSweepOptions configures the kv figure sweep.
type KVSweepOptions struct {
	// Dir is where point databases live; "" uses a fresh temp dir. Each
	// point's database is deleted after its recovery check.
	Dir string
	// Workers is the number of client goroutines. 0 = max(8, 2*GOMAXPROCS).
	Workers int
	// Shards and Capacity configure the store (kvstore.Config).
	Shards, Capacity int
	// Users is the simulated-population ladder: each population of U
	// users with ThinkMS think time offers U/Think aggregate ops/sec
	// (workload.NewPopulation). 0-length = {2000, 10000, 40000}.
	Users []uint64
	// ThinkMS is each simulated user's think time in milliseconds
	// between operations. 0 = 1000 (so Users is also the ops/sec rate).
	ThinkMS int64
	// GetPcts are the read mixes to sweep: each is the get percentage,
	// with the remainder split evenly between puts and deletes
	// (workload.UpdateMix). 0-length = {95, 50}.
	GetPcts []int
	// DurationMS is the arrival window per point. 0 = 400. The drain
	// past the window is unbounded — queued operations are charged
	// their full sojourn (no coordinated omission).
	DurationMS int64
	// Keys is the Zipfian keyspace size. 0 = 1<<16.
	Keys uint64
	// Theta is the Zipfian skew in [0,1). 0 = 0.9 (the paper's figure 5).
	Theta float64
	// ValueLen is the put value size in bytes. 0 = 128.
	ValueLen int
	// Seed drives arrivals, keys and mixes.
	Seed uint64
	// SLO overrides the sojourn objectives; nil uses DefaultKVSLO.
	SLO *metrics.SLOConfig
	// DisableSync skips fsync (unit tests only — the checked-in figure
	// always syncs; it is a durability benchmark).
	DisableSync bool
}

// DefaultKVSLO is the kv figure's sojourn objective set (nanoseconds):
// 99% of all operations within 10ms, and 99% of gets within 2ms — gets
// never wait for an fsync, only for the index seqlock and a log read,
// so they are held to a tighter bound.
func DefaultKVSLO() metrics.SLOConfig {
	return metrics.SLOConfig{
		Objectives: []metrics.Objective{
			{Threshold: 10_000_000, Target: 0.99},
			{Class: "get", Threshold: 2_000_000, Target: 0.99},
		},
	}
}

func (o *KVSweepOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.GOMAXPROCS(0)
		if o.Workers < 8 {
			o.Workers = 8
		}
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Capacity <= 0 {
		o.Capacity = 1 << 17
	}
	if len(o.Users) == 0 {
		o.Users = []uint64{2000, 10000, 40000}
	}
	if o.ThinkMS <= 0 {
		o.ThinkMS = 1000
	}
	if len(o.GetPcts) == 0 {
		o.GetPcts = []int{95, 50}
	}
	if o.DurationMS <= 0 {
		o.DurationMS = 400
	}
	if o.Keys == 0 {
		o.Keys = 1 << 16
	}
	if o.Theta == 0 {
		o.Theta = 0.9
	}
	if o.ValueLen <= 0 {
		o.ValueLen = 128
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.SLO == nil {
		slo := DefaultKVSLO()
		o.SLO = &slo
	}
}

// KVPoint is one (population, mix) measurement.
type KVPoint struct {
	Users     uint64  `json:"users"`
	RateOps   float64 `json:"rate_ops_per_sec"` // offered: users/think
	GetPct    int     `json:"get_pct"`
	Workers   int     `json:"workers"`
	Arrivals  uint64  `json:"arrivals"`
	Completed uint64  `json:"completed"`
	// HorizonMS is the arrival window; MakespanMS when the last op
	// finished. Makespan >> horizon means offered load exceeded capacity.
	HorizonMS  int64   `json:"horizon_ms"`
	MakespanMS float64 `json:"makespan_ms"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	Saturated  bool    `json:"saturated"`
	// Sojourn is intended-arrival-to-completion latency in nanoseconds.
	Sojourn  SojournStat          `json:"sojourn"`
	ByClass  []ClassSojourn       `json:"by_class,omitempty"`
	SLOState string               `json:"slo_state"`
	SLO      *metrics.SLOSnapshot `json:"slo,omitempty"`
	// Group-commit evidence: flushes (one append+fsync each), the mean
	// number of writes amortized per flush, and the flush-latency tail.
	Flushes        uint64  `json:"flushes"`
	WritesPerFlush float64 `json:"writes_per_flush"`
	FlushP50NS     uint64  `json:"flush_p50_ns"`
	FlushP99NS     uint64  `json:"flush_p99_ns"`
	AppendedBytes  uint64  `json:"appended_bytes"`
	// RecoveryOK reports the inline crash-recovery check: reopening the
	// database rebuilt an index bit-identical to the pre-close witness.
	RecoveryOK bool `json:"recovery_ok"`
}

// KVReport is a full kv sweep.
type KVReport struct {
	Figure     string    `json:"figure"`
	Workers    int       `json:"workers"`
	Shards     int       `json:"shards"`
	DurationMS int64     `json:"duration_ms"`
	ThinkMS    int64     `json:"think_ms"`
	Keys       uint64    `json:"keys"`
	Theta      float64   `json:"theta"`
	ValueLen   int       `json:"value_len"`
	Seed       uint64    `json:"seed"`
	Users      []uint64  `json:"users"`
	GetPcts    []int     `json:"get_pcts"`
	Points     []KVPoint `json:"-"`
}

// RunKVSweep measures every (population, mix) pair in sequence (points
// share the host's cores and disk, so running them concurrently would
// contaminate the tails).
func RunKVSweep(opts KVSweepOptions) (*KVReport, error) {
	opts.normalize()
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "hcf-kv-sweep-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	rep := &KVReport{
		Figure:     "kv",
		Workers:    opts.Workers,
		Shards:     opts.Shards,
		DurationMS: opts.DurationMS,
		ThinkMS:    opts.ThinkMS,
		Keys:       opts.Keys,
		Theta:      opts.Theta,
		ValueLen:   opts.ValueLen,
		Seed:       opts.Seed,
		Users:      opts.Users,
		GetPcts:    opts.GetPcts,
	}
	for _, users := range opts.Users {
		for _, pct := range opts.GetPcts {
			pdir := filepath.Join(dir, fmt.Sprintf("u%d-g%d", users, pct))
			p, err := runKVPoint(pdir, users, pct, opts)
			os.RemoveAll(pdir)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, p)
		}
	}
	return rep, nil
}

// runKVPoint measures one population+mix against a fresh database, then
// runs the crash-recovery replay check on what the workload wrote.
func runKVPoint(dir string, users uint64, getPct int, opts KVSweepOptions) (KVPoint, error) {
	store, err := kvstore.Open(dir, kvstore.Config{
		Shards:      opts.Shards,
		Capacity:    opts.Capacity,
		MaxHandles:  opts.Workers + 1,
		DisableSync: opts.DisableSync,
	})
	if err != nil {
		return KVPoint{}, err
	}

	horizon := opts.DurationMS * int64(time.Millisecond)
	thinkNS := opts.ThinkMS * int64(time.Millisecond)
	// Split the user population across workers; low-index workers take
	// the remainder so small populations still generate load.
	schedules := make([][]int64, opts.Workers)
	var totalArrivals uint64
	for w := 0; w < opts.Workers; w++ {
		share := users / uint64(opts.Workers)
		if uint64(w) < users%uint64(opts.Workers) {
			share++
		}
		if share == 0 {
			continue
		}
		gen, err := workload.NewPopulation(share, thinkNS)
		if err != nil {
			store.Close()
			return KVPoint{}, err
		}
		r := rand.New(rand.NewPCG(opts.Seed^0xA17ECA11, uint64(w)+1))
		schedules[w] = workload.GenSchedule(gen, horizon, r)
		totalArrivals += uint64(len(schedules[w]))
	}

	classNames := []string{"get", "put", "delete"}
	rec, err := metrics.New(metrics.Config{
		Shards:   opts.Workers,
		Classes:  classNames,
		Paths:    []string{"sojourn"},
		TimeUnit: "ns",
	})
	if err != nil {
		store.Close()
		return KVPoint{}, err
	}
	slo, err := metrics.NewSLOTracker(rec, *opts.SLO)
	if err != nil {
		store.Close()
		return KVPoint{}, err
	}

	mix, err := workload.UpdateMix(getPct)
	if err != nil {
		store.Close()
		return KVPoint{}, err
	}

	interval := horizon / 20
	if interval <= 0 {
		interval = 1
	}
	epoch := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, opts.Workers)
	ends := make([]int64, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		if len(schedules[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := store.Handle()
			if err != nil {
				errs[w] = err
				return
			}
			defer h.Release()
			rng := rand.New(rand.NewPCG(opts.Seed^0x9E3779B9, uint64(w)+1))
			zipf, err := workload.NewZipf(opts.Keys, opts.Theta)
			if err != nil {
				errs[w] = err
				return
			}
			val := make([]byte, opts.ValueLen)
			nextTick := interval
			for _, intended := range schedules[w] {
				if wait := time.Duration(intended) - time.Since(epoch); wait > 0 {
					time.Sleep(wait)
				}
				key := zipf.Next(rng)
				class := mix.Pick(rng)
				switch class {
				case 0:
					_, _, err = h.Get(key)
				case 1:
					for i := range val {
						val[i] = byte(key + uint64(i))
					}
					_, err = h.Put(key, val)
				default:
					_, err = h.Delete(key)
				}
				if err != nil {
					errs[w] = err
					return
				}
				now := int64(time.Since(epoch))
				rec.RecordOp(w, class, 0, now-intended)
				if w == 0 && now >= nextTick {
					slo.Step(now)
					nextTick = now + interval
				}
			}
			ends[w] = int64(time.Since(epoch))
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			store.Close()
			return KVPoint{}, err
		}
	}

	pt := KVPoint{
		Users:     users,
		RateOps:   float64(users) * 1000 / float64(opts.ThinkMS),
		GetPct:    getPct,
		Workers:   opts.Workers,
		Arrivals:  totalArrivals,
		HorizonMS: opts.DurationMS,
	}
	var makespan int64
	for _, e := range ends {
		if e > makespan {
			makespan = e
		}
	}
	if makespan < horizon {
		makespan = horizon
	}
	pt.MakespanMS = float64(makespan) / 1e6
	pt.Saturated = makespan > horizon+horizon/10
	slo.Step(makespan)

	var all metrics.HistogramSnapshot
	for c, class := range classNames {
		snap := rec.ClassHistogram(c)
		if snap.Count > 0 {
			pt.ByClass = append(pt.ByClass, ClassSojourn{Class: class, SojournStat: sojournStatOf(snap)})
		}
		all.Merge(&snap)
	}
	pt.Sojourn = sojournStatOf(all)
	pt.Completed = all.Count
	pt.Throughput = float64(pt.Completed) * 1e9 / float64(makespan)

	snap := slo.Snapshot()
	pt.SLO = &snap
	pt.SLOState = metrics.SLOStateOK
	for _, o := range snap.Objectives {
		if o.State == metrics.SLOStatePage ||
			(o.State == metrics.SLOStateWarn && pt.SLOState == metrics.SLOStateOK) {
			pt.SLOState = o.State
		}
	}

	st := store.Stats()
	pt.Flushes = st.Flushes
	pt.AppendedBytes = st.AppendedBytes
	writes := st.BatchOps[kvstore.ClassPut].Sum + st.BatchOps[kvstore.ClassDelete].Sum
	if st.Flushes > 0 {
		pt.WritesPerFlush = float64(writes) / float64(st.Flushes)
	}
	pt.FlushP50NS = st.FlushNanos.Quantile(0.50)
	pt.FlushP99NS = st.FlushNanos.Quantile(0.99)

	// Crash-recovery replay check: the reopened index must be
	// bit-identical to the witness dump of what the workload built.
	witness := store.IndexDump()
	if err := store.Close(); err != nil {
		return KVPoint{}, err
	}
	reopened, err := kvstore.Open(dir, kvstore.Config{
		Shards:   opts.Shards,
		Capacity: opts.Capacity,
	})
	if err != nil {
		return KVPoint{}, fmt.Errorf("kv recovery reopen: %w", err)
	}
	pt.RecoveryOK = bytes.Equal(reopened.IndexDump(), witness)
	if err := reopened.Close(); err != nil {
		return KVPoint{}, err
	}
	return pt, nil
}

// JSONL renders the sweep as one JSON object per line (header, then one
// line per point) — the format checked in under bench/KV_sweep.jsonl.
func (r *KVReport) JSONL() ([]byte, error) {
	var b bytes.Buffer
	h, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	b.Write(h)
	b.WriteByte('\n')
	for i := range r.Points {
		line, err := json.Marshal(&r.Points[i])
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// Text renders the sweep as an aligned table.
func (r *KVReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kv: open-loop KV engine sweep, %d workers, %d shards, %dms window, think %dms, zipf(%d, %.2f), %dB values, seed %d\n",
		r.Workers, r.Shards, r.DurationMS, r.ThinkMS, r.Keys, r.Theta, r.ValueLen, r.Seed)
	fmt.Fprintf(&b, "sojourn in µs from intended arrival; group commit = one append+fsync per combined batch\n\n")
	fmt.Fprintf(&b, "  %7s %4s %9s %9s %8s %8s %8s %8s %7s %9s %6s %4s %4s\n",
		"users", "get%", "offered/s", "achieved", "p50µs", "p99µs", "p999µs", "maxµs",
		"flushes", "wr/flush", "slo", "sat", "rec")
	for _, p := range r.Points {
		sat, rec := "", "ok"
		if p.Saturated {
			sat = "*"
		}
		if !p.RecoveryOK {
			rec = "FAIL"
		}
		fmt.Fprintf(&b, "  %7d %4d %9.0f %9.0f %8.1f %8.1f %8.1f %8.1f %7d %9.2f %6s %4s %4s\n",
			p.Users, p.GetPct, p.RateOps, p.Throughput,
			float64(p.Sojourn.P50)/1e3, float64(p.Sojourn.P99)/1e3,
			float64(p.Sojourn.P999)/1e3, float64(p.Sojourn.Max)/1e3,
			p.Flushes, p.WritesPerFlush, p.SLOState, sat, rec)
	}
	return b.String()
}

// ParseKVJSONL parses a JSONL sweep back into a report (the inverse of
// JSONL, for baseline comparison).
func ParseKVJSONL(data []byte) (*KVReport, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("harness: empty kv JSONL")
	}
	var rep KVReport
	if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
		return nil, fmt.Errorf("harness: kv JSONL header: %w", err)
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var p KVPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return nil, fmt.Errorf("harness: kv JSONL row: %w", err)
		}
		rep.Points = append(rep.Points, p)
	}
	return &rep, sc.Err()
}

// kvGateMinSamples is the sojourn-count floor for a point to enter the
// p99 ratio gate. Below it the p99 is an order statistic of the top
// one or two samples — a single fsync stall flips the verdict, and
// short CI windows at low offered loads sit exactly there. Such points
// still get the unconditional recovery check; they just don't gate on
// latency.
const kvGateMinSamples = 500

// CompareKVBaseline gates fresh sojourn p99s against a checked-in
// baseline with the same median-normalization CompareNativeBaseline
// uses: each matched (users, mix) point's fresh/baseline p99 ratio is
// normalized by the median ratio, absorbing uniform hardware shifts
// between the recording machine and CI; a point more than tolerance
// times worse than the median ratio fails. Points with fewer than
// kvGateMinSamples completed operations are excluded from the ratio
// gate (their p99 is noise). A fresh point with a failed recovery
// check fails unconditionally regardless of sample count. Returns the
// ratio-gated point count.
func CompareKVBaseline(fresh, base *KVReport, tolerance float64) (int, error) {
	if tolerance <= 1 {
		tolerance = 2
	}
	for _, p := range fresh.Points {
		if !p.RecoveryOK {
			return 0, fmt.Errorf("kv point users=%d get=%d%%: crash-recovery replay mismatch", p.Users, p.GetPct)
		}
	}
	type key struct {
		users uint64
		pct   int
	}
	baseP99 := map[key]uint64{}
	for _, p := range base.Points {
		baseP99[key{p.Users, p.GetPct}] = p.Sojourn.P99
	}
	type matched struct {
		k     key
		ratio float64 // fresh/base: higher is worse
	}
	var ms []matched
	common := 0
	for _, p := range fresh.Points {
		k := key{p.Users, p.GetPct}
		b, ok := baseP99[k]
		if !ok {
			continue
		}
		common++
		if b > 0 && p.Sojourn.P99 > 0 && p.Sojourn.Count >= kvGateMinSamples {
			ms = append(ms, matched{k, float64(p.Sojourn.P99) / float64(b)})
		}
	}
	if common == 0 {
		return 0, fmt.Errorf("no points in common with the baseline")
	}
	if len(ms) == 0 {
		// Every common point was below the sample floor: the recovery
		// checks above are the whole gate.
		return 0, nil
	}
	ratios := make([]float64, len(ms))
	for i, m := range ms {
		ratios[i] = m.ratio
	}
	sort.Float64s(ratios)
	// Lower median: with few points the upper median would let a single
	// regressed point define the norm it is judged against.
	median := ratios[(len(ratios)-1)/2]
	if median == 0 {
		return len(ms), fmt.Errorf("median point ratio is zero")
	}
	var fails []string
	for _, m := range ms {
		if m.ratio > median*tolerance {
			fails = append(fails, fmt.Sprintf(
				"users=%d get=%d%%: p99 %.2fx of baseline vs median %.2fx",
				m.k.users, m.k.pct, m.ratio, median))
		}
	}
	if len(fails) > 0 {
		return len(ms), fmt.Errorf("%d/%d kv points regressed more than %.1fx beyond the median ratio:\n  %s",
			len(fails), len(ms), tolerance, joinLines(fails))
	}
	return len(ms), nil
}
