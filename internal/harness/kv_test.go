package harness

import (
	"strings"
	"testing"
)

// kvTestOptions is a small, fsync-free sweep that still exercises the
// whole pipeline: arrivals, mixes, sojourn recording, SLO evaluation,
// group-commit stats and the recovery replay check.
func kvTestOptions() KVSweepOptions {
	return KVSweepOptions{
		Workers: 4,
		Shards:  2,
		// High enough that each 60ms point clears kvGateMinSamples
		// (so the baseline tests exercise the ratio gate, not the
		// small-sample exclusion).
		Users:       []uint64{10000, 20000},
		GetPcts:     []int{90},
		DurationMS:  60,
		Keys:        1 << 10,
		ValueLen:    32,
		Seed:        7,
		DisableSync: true,
	}
}

func TestKVSweepSmoke(t *testing.T) {
	rep, err := RunKVSweep(kvTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Arrivals == 0 || p.Completed != p.Arrivals {
			t.Fatalf("users=%d: arrivals=%d completed=%d", p.Users, p.Arrivals, p.Completed)
		}
		if p.Sojourn.Count != p.Completed || p.Sojourn.P99 == 0 {
			t.Fatalf("users=%d: sojourn stat empty: %+v", p.Users, p.Sojourn)
		}
		if p.Sojourn.P999 < p.Sojourn.P99 || p.Sojourn.P99 < p.Sojourn.P50 {
			t.Fatalf("users=%d: quantiles not monotone: %+v", p.Users, p.Sojourn)
		}
		if p.SLOState == "" || p.SLO == nil || len(p.SLO.Objectives) != 2 {
			t.Fatalf("users=%d: SLO verdicts missing (state %q)", p.Users, p.SLOState)
		}
		for _, o := range p.SLO.Objectives {
			if o.State == "" || o.Total == 0 {
				t.Fatalf("users=%d: objective not evaluated: %+v", p.Users, o)
			}
		}
		if p.Flushes == 0 || p.AppendedBytes == 0 || p.WritesPerFlush < 1 {
			t.Fatalf("users=%d: group-commit stats empty: flushes=%d bytes=%d wpf=%.2f",
				p.Users, p.Flushes, p.AppendedBytes, p.WritesPerFlush)
		}
		if !p.RecoveryOK {
			t.Fatalf("users=%d: recovery replay mismatch", p.Users)
		}
		if len(p.ByClass) != 3 {
			t.Fatalf("users=%d: got %d class rows, want 3", p.Users, len(p.ByClass))
		}
	}
	if !strings.Contains(rep.Text(), "wr/flush") {
		t.Fatal("Text() missing group-commit column")
	}
}

func TestKVJSONLRoundTripAndBaseline(t *testing.T) {
	rep, err := RunKVSweep(kvTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseKVJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.Workers != rep.Workers || back.Seed != rep.Seed {
		t.Fatalf("round trip mismatch: %d points, workers %d", len(back.Points), back.Workers)
	}
	for i := range back.Points {
		if back.Points[i].Sojourn.P99 != rep.Points[i].Sojourn.P99 {
			t.Fatalf("point %d p99 changed across round trip", i)
		}
	}

	// Self-comparison passes at any tolerance.
	n, err := CompareKVBaseline(back, rep, 2)
	if err != nil || n != len(rep.Points) {
		t.Fatalf("self-compare: n=%d err=%v", n, err)
	}
	// A single point pushed far beyond the median ratio fails the gate.
	worse := *back
	worse.Points = append([]KVPoint(nil), back.Points...)
	worse.Points[0].Sojourn.P99 *= 100
	if _, err := CompareKVBaseline(&worse, rep, 2); err == nil {
		t.Fatal("100x p99 regression passed the baseline gate")
	}
	// Below the sample floor the same regression is excluded from the
	// ratio gate: short-window p99s are top-two order statistics.
	tiny := *back
	tiny.Points = append([]KVPoint(nil), back.Points...)
	tiny.Points[0].Sojourn.Count = kvGateMinSamples - 1
	tiny.Points[0].Sojourn.P99 = back.Points[0].Sojourn.P99 * 100
	if n, err := CompareKVBaseline(&tiny, rep, 2); err != nil || n != len(rep.Points)-1 {
		t.Fatalf("small-sample point not excluded from ratio gate: n=%d err=%v", n, err)
	}
	// A failed recovery check fails unconditionally.
	broken := *back
	broken.Points = append([]KVPoint(nil), back.Points...)
	broken.Points[1].RecoveryOK = false
	if _, err := CompareKVBaseline(&broken, rep, 2); err == nil ||
		!strings.Contains(err.Error(), "recovery") {
		t.Fatalf("recovery failure not gated: %v", err)
	}
}
