package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/memsim"
	"hcf/internal/metrics"
	"hcf/internal/shard"
	"hcf/internal/trace"
)

// outcomeNames labels the transaction outcomes for the metrics recorder:
// index 0 is commit, the rest follow htm.Reason.
func outcomeNames() []string {
	out := make([]string, htm.NumReasons)
	out[0] = "commit"
	for r := 1; r < htm.NumReasons; r++ {
		out[r] = htm.Reason(r).String()
	}
	return out
}

// classNames returns the class labels for inst, defaulting to classN.
func classNames(inst *Instance) []string {
	if len(inst.ClassNames) > 0 {
		return inst.ClassNames
	}
	n := len(inst.Policies)
	if n == 0 {
		n = 1
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("class%d", i)
	}
	return out
}

// Instrument dimensions a metrics recorder for (eng, inst) and installs it.
// unit should be "cycles" on the deterministic backend and "ns" on the real
// backend. It fails only for engines that do not implement
// engine.MeteredEngine (all six in this repository do).
//
// For the sharded engine the recorder is dimensioned with one group per
// shard plus "cross", and each shard gets its own group view, so reports
// break out per-shard throughput and aborts instead of blending shards.
func Instrument(eng engine.Engine, inst *Instance, threads int, unit string) (*metrics.Recorder, error) {
	met, ok := eng.(engine.MeteredEngine)
	if !ok {
		return nil, fmt.Errorf("harness: engine %s does not support metrics", eng.Name())
	}
	cfg := metrics.Config{
		Shards:   threads + 1, // workers + bootstrap thread
		Classes:  classNames(inst),
		Paths:    met.CompletionPaths(),
		Outcomes: outcomeNames(),
		TimeUnit: unit,
	}
	sh, sharded := eng.(*shard.Sharded)
	if sharded {
		for i := 0; i < sh.NumShards(); i++ {
			cfg.Groups = append(cfg.Groups, fmt.Sprintf("shard%d", i))
		}
		cfg.Groups = append(cfg.Groups, engine.PathCross)
	}
	rec, err := metrics.New(cfg)
	if err != nil {
		return nil, err
	}
	if sharded {
		views := make([]engine.Recorder, sh.NumShards())
		for i := range views {
			views[i] = rec.View(i)
		}
		if err := sh.SetShardRecorders(views, rec.View(sh.NumShards())); err != nil {
			return nil, err
		}
		return rec, nil
	}
	met.SetRecorder(rec)
	return rec, nil
}

// RunPointMeteredTraced is RunPointMetered with a bounded flight recorder
// attached as well (traceLimit events per thread; 0 disables tracing and
// returns a nil collector). The report carries trace health; hot-line and
// timeline snapshots can be taken from the collector after the run.
func RunPointMeteredTraced(sc Scenario, engineName string, threads int, cfg Config, interval int64, traceLimit int) (Result, *metrics.Report, *trace.Collector, error) {
	cfg.normalize()
	env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return Result{}, nil, nil, err
	}
	rec, err := Instrument(eng, &inst, threads, "cycles")
	if err != nil {
		return Result{}, nil, nil, err
	}
	var col *trace.Collector
	if traceLimit > 0 {
		if col, err = InstrumentTrace(eng, traceLimit); err != nil {
			return Result{}, nil, nil, err
		}
	}
	env.ResetStats()
	eng.ResetMetrics()
	sampler := metrics.NewSampler(rec, interval)
	opWork := env.Cost().OpWork
	opsByThread := make([]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(th.ID())+1))
		for th.Now() < cfg.Horizon {
			th.Work(opWork)
			eng.Execute(th, inst.NextOp(rng))
			opsByThread[th.ID()]++
			if th.ID() == 0 {
				sampler.MaybeSample(th.Now())
			}
		}
	})
	res := Result{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Metrics:  eng.Metrics(),
	}
	for t := 0; t < threads; t++ {
		res.Ops += opsByThread[t]
		if now := env.Now(t); now > res.Cycles {
			res.Cycles = now
		}
		res.Mem.Merge(env.Stats(t))
	}
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) * 1e6 / float64(res.Cycles)
	}
	if hcf, ok := eng.(phaseBreakdowner); ok {
		res.PhaseByClass = hcf.PhaseBreakdown()
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	sampler.Flush(res.Cycles)
	report := metrics.BuildReport(rec, sampler, sc.Name, engineName, threads)
	if col != nil {
		report.Trace = &metrics.TraceHealth{
			Starts:   col.Starts(),
			Retained: uint64(col.Retained()),
			Dropped:  col.Dropped(),
		}
	}
	return res, &report, col, nil
}

// RunPointMetered is RunPoint with the metrics subsystem wired in: it
// instruments the engine with a recorder, samples all counters every
// `interval` virtual cycles (thread 0 drives the sampler), and returns the
// usual Result plus the full metrics report (latency percentiles per
// operation class × completion path, transaction-outcome durations, lock
// hold times, and the per-interval time series).
//
// Recording charges no simulated cycles, so Result is bit-identical to the
// uninstrumented RunPoint for the same configuration.
func RunPointMetered(sc Scenario, engineName string, threads int, cfg Config, interval int64) (Result, *metrics.Report, error) {
	cfg.normalize()
	env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	rec, err := Instrument(eng, &inst, threads, "cycles")
	if err != nil {
		return Result{}, nil, err
	}
	env.ResetStats()
	eng.ResetMetrics()
	sampler := metrics.NewSampler(rec, interval)
	opWork := env.Cost().OpWork
	opsByThread := make([]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(th.ID())+1))
		for th.Now() < cfg.Horizon {
			th.Work(opWork)
			eng.Execute(th, inst.NextOp(rng))
			opsByThread[th.ID()]++
			if th.ID() == 0 {
				sampler.MaybeSample(th.Now())
			}
		}
	})
	res := Result{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Metrics:  eng.Metrics(),
	}
	for t := 0; t < threads; t++ {
		res.Ops += opsByThread[t]
		if now := env.Now(t); now > res.Cycles {
			res.Cycles = now
		}
		res.Mem.Merge(env.Stats(t))
	}
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) * 1e6 / float64(res.Cycles)
	}
	if hcf, ok := eng.(phaseBreakdowner); ok {
		res.PhaseByClass = hcf.PhaseBreakdown()
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	sampler.Flush(res.Cycles)
	report := metrics.BuildReport(rec, sampler, sc.Name, engineName, threads)
	return res, &report, nil
}

// phaseBreakdowner is implemented by HCF frameworks.
type phaseBreakdowner interface {
	PhaseBreakdown() [][4]uint64
}

// RunPointRealMetered is RunPointReal with the metrics subsystem wired in.
// Latencies and intervals are measured in wall nanoseconds; thread 0
// drives the sampler, so `interval` is wall nanoseconds too.
func RunPointRealMetered(sc Scenario, engineName string, threads, opsPerThread int, cfg Config, interval int64) (RealResult, *metrics.Report, error) {
	cfg.normalize()
	env := memsim.NewReal(memsim.RealConfig{Threads: threads})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return RealResult{}, nil, err
	}
	rec, err := Instrument(eng, &inst, threads, "ns")
	if err != nil {
		return RealResult{}, nil, err
	}
	sampler := metrics.NewSampler(rec, interval)
	start := time.Now()
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0xFEED, uint64(th.ID())+1))
		for i := 0; i < opsPerThread; i++ {
			eng.Execute(th, inst.NextOp(rng))
			if th.ID() == 0 {
				sampler.MaybeSample(th.Now())
			}
		}
	})
	elapsed := time.Since(start)
	res := RealResult{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Ops:      uint64(threads * opsPerThread),
		Elapsed:  elapsed,
	}
	if ms := elapsed.Seconds() * 1000; ms > 0 {
		res.Throughput = float64(res.Ops) / ms
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	sampler.Flush(elapsed.Nanoseconds())
	report := metrics.BuildReport(rec, sampler, sc.Name, engineName, threads)
	return res, &report, nil
}
