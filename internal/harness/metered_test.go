package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hcf/internal/engine"
)

// TestMeteredRunIsDeterministic checks the key design invariant of the
// metrics subsystem: recording reads thread-local clocks only and charges no
// simulated cycles, so an instrumented run produces a bit-identical Result
// to the uninstrumented one.
func TestMeteredRunIsDeterministic(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	cfg := Config{Horizon: 40_000, Seed: 7}
	for _, eng := range EngineNames {
		plain, err := RunPoint(sc, eng, 6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		metered, rep, err := RunPointMetered(sc, eng, 6, cfg, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, metered) {
			t.Errorf("%s: metered Result differs from plain run:\nplain   %+v\nmetered %+v",
				eng, plain, metered)
		}
		if rep.Totals.Ops != metered.Ops {
			t.Errorf("%s: report totals %d ops, result has %d", eng, rep.Totals.Ops, metered.Ops)
		}
	}
}

func TestMeteredReportContents(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	res, rep, err := RunPointMetered(sc, "HCF", 8, Config{Horizon: 60_000, Seed: 1}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimeUnit != "cycles" {
		t.Errorf("TimeUnit = %q, want cycles", rep.TimeUnit)
	}
	if want := []string{"find", "insert", "remove"}; !reflect.DeepEqual(rep.Classes, want) {
		t.Errorf("Classes = %v, want %v", rep.Classes, want)
	}
	if want := []string{"TryPrivate", "TryVisible", "TryCombining", "CombineUnderLock"}; !reflect.DeepEqual(rep.Paths, want) {
		t.Errorf("Paths = %v, want %v", rep.Paths, want)
	}
	if len(rep.Intervals) < 5 {
		t.Errorf("intervals = %d, want >= 5 for a 60k-cycle run sampled every 10k", len(rep.Intervals))
	}
	// The time series partitions the run: contiguous intervals whose op
	// counts sum to the run total.
	var ivOps uint64
	last := int64(0)
	for i, iv := range rep.Intervals {
		if iv.Start != last {
			t.Errorf("interval %d starts at %d, previous ended at %d", i, iv.Start, last)
		}
		last = iv.End
		ivOps += iv.Ops
	}
	if ivOps != res.Ops {
		t.Errorf("interval ops sum to %d, run completed %d", ivOps, res.Ops)
	}
	if len(rep.ClassLatency) == 0 || len(rep.OpLatency) == 0 {
		t.Fatalf("empty latency tables: class %d rows, op %d rows",
			len(rep.ClassLatency), len(rep.OpLatency))
	}
	for _, ls := range rep.ClassLatency {
		if ls.Count == 0 || ls.P50 > ls.P90 || ls.P90 > ls.P99 || ls.P99 > ls.Max {
			t.Errorf("class %s: implausible percentiles %+v", ls.Class, ls.HistStat)
		}
	}
	if len(rep.TxLatency) == 0 || rep.TxLatency[0].Outcome != "commit" {
		t.Errorf("TxLatency = %+v, want commit row first", rep.TxLatency)
	}
}

// TestMeteredBaselinePaths checks each baseline labels its completion paths
// and that completed ops distribute over them.
func TestMeteredBaselinePaths(t *testing.T) {
	want := map[string][]string{
		"Lock":   {engine.PathLock},
		"TLE":    {engine.PathHTM, engine.PathLock},
		"SCM":    {engine.PathHTM, engine.PathHTMManaged, engine.PathLock},
		"FC":     {engine.PathCombiner, engine.PathHelped},
		"TLE+FC": {engine.PathHTM, engine.PathCombiner, engine.PathHelped},
	}
	sc := HashTableScenario(40, 256)
	for eng, paths := range want {
		res, rep, err := RunPointMetered(sc, eng, 6, Config{Horizon: 30_000, Seed: 3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Paths, paths) {
			t.Errorf("%s: Paths = %v, want %v", eng, rep.Paths, paths)
		}
		var byPath uint64
		for _, n := range rep.Totals.OpsByPath {
			byPath += n
		}
		if byPath != res.Ops {
			t.Errorf("%s: ops by path sum to %d, run completed %d", eng, byPath, res.Ops)
		}
	}
}

func TestRunPointRealMeteredSmoke(t *testing.T) {
	sc := StackScenario(64)
	res, rep, err := RunPointRealMetered(sc, "HCF", 2, 200, Config{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolation != "" {
		t.Fatal(res.InvariantViolation)
	}
	if rep.TimeUnit != "ns" {
		t.Errorf("TimeUnit = %q, want ns", rep.TimeUnit)
	}
	if rep.Totals.Ops != 400 {
		t.Errorf("recorded %d ops, want 400", rep.Totals.Ops)
	}
}

func TestFormatJSONL(t *testing.T) {
	sc := HashTableScenario(40, 256)
	results, err := RunSweep(sc, []string{"Lock", "HCF"}, []int{2, 4}, Config{Horizon: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatJSONL(results)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line does not parse: %v\n%s", err, line)
		}
		for _, key := range []string{"scenario", "engine", "threads", "ops", "cycles", "throughput"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("record missing %q: %s", key, line)
			}
		}
	}
	// HCF records carry the phase breakdown; Lock records must not.
	var hcfRec, lockRec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &lockRec); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &hcfRec); err != nil {
		t.Fatal(err)
	}
	if _, ok := lockRec["phase_by_class"]; ok {
		t.Error("Lock record has phase_by_class")
	}
	if _, ok := hcfRec["phase_by_class"]; !ok {
		t.Error("HCF record lacks phase_by_class")
	}
}
