package harness

// Native wall-clock sweep: drives the native (direct-atomics) HCF
// backend and the stdlib baselines everyone benchmarks against —
// sync.Mutex, sync.RWMutex, sync.Map — across goroutine counts and
// read/write mixes, measuring real operations per second over fixed
// timed windows. This is the wall-clock counterpart of the simulated
// figure sweeps: no cycle model, just the host clock, which also makes
// the numbers hardware-dependent. CompareNativeBaseline therefore
// normalizes by the median point ratio before judging regressions, so a
// checked-in baseline from one box remains usable as a CI gate on
// another.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hcf/native"
)

// Native engine and structure names used in reports.
const (
	NativeEngineHCF     = "HCF-N"
	NativeEngineMutex   = "Mutex"
	NativeEngineRWMutex = "RWMutex"
	NativeEngineSyncMap = "sync.Map"

	NativeStructHash = "hashtable"
	NativeStructPQ   = "pqueue"
)

// NativeOptions configures a native sweep.
type NativeOptions struct {
	// Goroutines is the concurrency ladder. Default {1,2,4,8}, plus
	// NumCPU when larger than 8.
	Goroutines []int
	// ReadPcts are the hashtable read percentages to measure (writes
	// split evenly between put and delete). Default {90, 50}.
	ReadPcts []int
	// Duration is the measured window per point (default 150ms); each
	// point also gets a Duration/3 warmup.
	Duration time.Duration
	// Keyspace is the hashtable key range (default 1<<14), prefilled to
	// half occupancy.
	Keyspace int
}

func (o *NativeOptions) normalize() {
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{1, 2, 4, 8}
		if n := runtime.NumCPU(); n > 8 {
			o.Goroutines = append(o.Goroutines, n)
		}
	}
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = []int{90, 50}
	}
	if o.Duration <= 0 {
		o.Duration = 150 * time.Millisecond
	}
	if o.Keyspace <= 0 {
		o.Keyspace = 1 << 14
	}
}

// NativePoint is one measured (structure, engine, goroutines, mix) cell.
type NativePoint struct {
	Structure  string  `json:"structure"`
	Engine     string  `json:"engine"`
	Goroutines int     `json:"goroutines"`
	ReadPct    int     `json:"read_pct"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// NativeReport is the machine-readable record of one sweep
// (bench/BENCH_native.json).
type NativeReport struct {
	Kind       string        `json:"kind"` // "hcf-native-bench"
	Note       string        `json:"note,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	DurationMS int64         `json:"point_duration_ms"`
	Keyspace   int           `json:"keyspace"`
	WallSec    float64       `json:"wall_seconds"`
	Points     []NativePoint `json:"points"`
}

// NativeReportKind is the Kind value RunNativeSweep stamps.
const NativeReportKind = "hcf-native-bench"

// nativeWorker is one goroutine's operation loop state.
type nativeWorker struct {
	op    func(rng *rand.Rand)
	close func()
}

// nativeEngine builds per-goroutine workers over one shared structure.
type nativeEngine struct {
	name   string
	worker func() nativeWorker
}

// hashWorkerLoop returns the shared mixed-op body over an abstract map.
func hashMix(get func(uint64), put func(uint64, uint64), del func(uint64), keyspace uint64, readPct int) func(rng *rand.Rand) {
	return func(rng *rand.Rand) {
		k := rng.Uint64N(keyspace)
		r := rng.IntN(100)
		switch {
		case r < readPct:
			get(k)
		case r&1 == 0:
			put(k, k+1)
		default:
			del(k)
		}
	}
}

// hashEngines builds the four hashtable contenders, each prefilled to
// half the keyspace.
func hashEngines(keyspace, readPct int) ([]nativeEngine, error) {
	ks := uint64(keyspace)
	prefill := ks / 2

	nm, err := native.NewMap(2 * keyspace)
	if err != nil {
		return nil, err
	}
	h := nm.Handle()
	for k := uint64(0); k < prefill; k++ {
		h.Put(k*2, k)
	}
	h.Release()

	mm := struct {
		sync.Mutex
		m map[uint64]uint64
	}{m: make(map[uint64]uint64, keyspace)}
	rm := struct {
		sync.RWMutex
		m map[uint64]uint64
	}{m: make(map[uint64]uint64, keyspace)}
	var sm sync.Map
	for k := uint64(0); k < prefill; k++ {
		mm.m[k*2] = k
		rm.m[k*2] = k
		sm.Store(k*2, k)
	}

	return []nativeEngine{
		{name: NativeEngineHCF, worker: func() nativeWorker {
			mh := nm.Handle()
			return nativeWorker{
				op: hashMix(
					func(k uint64) { mh.Get(k) },
					func(k, v uint64) { mh.Put(k, v) },
					func(k uint64) { mh.Delete(k) },
					ks, readPct),
				close: mh.Release,
			}
		}},
		{name: NativeEngineMutex, worker: func() nativeWorker {
			return nativeWorker{
				op: hashMix(
					func(k uint64) { mm.Lock(); _ = mm.m[k]; mm.Unlock() },
					func(k, v uint64) { mm.Lock(); mm.m[k] = v; mm.Unlock() },
					func(k uint64) { mm.Lock(); delete(mm.m, k); mm.Unlock() },
					ks, readPct),
				close: func() {},
			}
		}},
		{name: NativeEngineRWMutex, worker: func() nativeWorker {
			return nativeWorker{
				op: hashMix(
					func(k uint64) { rm.RLock(); _ = rm.m[k]; rm.RUnlock() },
					func(k, v uint64) { rm.Lock(); rm.m[k] = v; rm.Unlock() },
					func(k uint64) { rm.Lock(); delete(rm.m, k); rm.Unlock() },
					ks, readPct),
				close: func() {},
			}
		}},
		{name: NativeEngineSyncMap, worker: func() nativeWorker {
			return nativeWorker{
				op: hashMix(
					func(k uint64) { sm.Load(k) },
					func(k, v uint64) { sm.Store(k, v) },
					func(k uint64) { sm.Delete(k) },
					ks, readPct),
				close: func() {},
			}
		}},
	}, nil
}

// mutexHeap is the baseline priority queue: a plain binary min-heap
// under a sync.Mutex.
type mutexHeap struct {
	mu sync.Mutex
	h  []uint64
}

func (p *mutexHeap) insert(k uint64) {
	p.mu.Lock()
	p.h = append(p.h, k)
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.h[parent] <= p.h[i] {
			break
		}
		p.h[parent], p.h[i] = p.h[i], p.h[parent]
		i = parent
	}
	p.mu.Unlock()
}

func (p *mutexHeap) extractMin() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return
	}
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h = p.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(p.h) {
			break
		}
		c := l
		if r < len(p.h) && p.h[r] < p.h[l] {
			c = r
		}
		if p.h[i] <= p.h[c] {
			break
		}
		p.h[i], p.h[c] = p.h[c], p.h[i]
		i = c
	}
}

func (p *mutexHeap) peekMin() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.h) == 0 {
		return 0, false
	}
	return p.h[0], true
}

const pqPrefill = 4096

// pqEngines builds the two priority-queue contenders. readPct of the
// mix peeks; the rest splits evenly between insert and extract-min.
func pqEngines(readPct int) ([]nativeEngine, error) {
	np, err := native.NewPQueue(1 << 20)
	if err != nil {
		return nil, err
	}
	h := np.Handle()
	for k := uint64(0); k < pqPrefill; k++ {
		h.Insert(k)
	}
	h.Release()

	mh := &mutexHeap{}
	for k := uint64(0); k < pqPrefill; k++ {
		mh.insert(k)
	}

	pqMix := func(peek func(), insert func(uint64), extract func()) func(rng *rand.Rand) {
		return func(rng *rand.Rand) {
			r := rng.IntN(100)
			switch {
			case r < readPct:
				peek()
			case r&1 == 0:
				insert(rng.Uint64N(1 << 20))
			default:
				extract()
			}
		}
	}
	return []nativeEngine{
		{name: NativeEngineHCF, worker: func() nativeWorker {
			ph := np.Handle()
			return nativeWorker{
				op: pqMix(
					func() { ph.PeekMin() },
					func(k uint64) { ph.Insert(k) },
					func() { ph.ExtractMin() }),
				close: ph.Release,
			}
		}},
		{name: NativeEngineMutex, worker: func() nativeWorker {
			return nativeWorker{
				op:    pqMix(func() { mh.peekMin() }, mh.insert, mh.extractMin),
				close: func() {},
			}
		}},
	}, nil
}

// measurePoint runs one engine at one goroutine count: warmup window,
// then a measured window, both bounded by wall-clock deadlines checked
// per operation.
func measurePoint(eng nativeEngine, goroutines int, warmup, window time.Duration, seed uint64) (uint64, float64) {
	var warm, stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := eng.worker()
			defer w.close()
			rng := rand.New(rand.NewPCG(seed, uint64(g)))
			for !warm.Load() {
				w.op(rng)
			}
			var n uint64
			for !stop.Load() {
				w.op(rng)
				n++
			}
			total.Add(n)
		}(g)
	}
	time.Sleep(warmup)
	warm.Store(true)
	measureStart := time.Now()
	time.Sleep(window)
	stop.Store(true)
	elapsed := time.Since(measureStart)
	wg.Wait()
	ops := total.Load()
	return ops, float64(ops) / elapsed.Seconds()
}

// RunNativeSweep measures every (structure, engine, goroutines, mix)
// cell and returns the report.
func RunNativeSweep(opts NativeOptions) (*NativeReport, error) {
	opts.normalize()
	rep := &NativeReport{
		Kind:       NativeReportKind,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		DurationMS: opts.Duration.Milliseconds(),
		Keyspace:   opts.Keyspace,
	}
	warmup := opts.Duration / 3
	start := time.Now()
	seed := uint64(1)
	for _, readPct := range opts.ReadPcts {
		engines, err := hashEngines(opts.Keyspace, readPct)
		if err != nil {
			return nil, err
		}
		for _, eng := range engines {
			for _, g := range opts.Goroutines {
				seed++
				ops, rate := measurePoint(eng, g, warmup, opts.Duration, seed)
				rep.Points = append(rep.Points, NativePoint{
					Structure: NativeStructHash, Engine: eng.name,
					Goroutines: g, ReadPct: readPct,
					Ops: ops, OpsPerSec: rate,
				})
			}
		}
	}
	// One mixed PQ workload: 20% peek, updates split insert/extract.
	const pqReadPct = 20
	engines, err := pqEngines(pqReadPct)
	if err != nil {
		return nil, err
	}
	for _, eng := range engines {
		for _, g := range opts.Goroutines {
			seed++
			ops, rate := measurePoint(eng, g, warmup, opts.Duration, seed)
			rep.Points = append(rep.Points, NativePoint{
				Structure: NativeStructPQ, Engine: eng.name,
				Goroutines: g, ReadPct: pqReadPct,
				Ops: ops, OpsPerSec: rate,
			})
		}
	}
	rep.WallSec = time.Since(start).Seconds()
	return rep, nil
}

// FormatNativeReport renders the sweep as a table per (structure, mix),
// engines as columns, with the HCF-over-Mutex speedup on each row.
func FormatNativeReport(rep *NativeReport) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "native wall-clock sweep: GOMAXPROCS=%d NumCPU=%d window=%dms\n",
		rep.GoMaxProcs, rep.NumCPU, rep.DurationMS)
	type cell struct {
		structure string
		readPct   int
	}
	groups := map[cell]map[int]map[string]float64{}
	engines := map[cell][]string{}
	var order []cell
	for _, p := range rep.Points {
		c := cell{p.Structure, p.ReadPct}
		if groups[c] == nil {
			groups[c] = map[int]map[string]float64{}
			order = append(order, c)
		}
		if groups[c][p.Goroutines] == nil {
			groups[c][p.Goroutines] = map[string]float64{}
		}
		groups[c][p.Goroutines][p.Engine] = p.OpsPerSec
		found := false
		for _, e := range engines[c] {
			if e == p.Engine {
				found = true
			}
		}
		if !found {
			engines[c] = append(engines[c], p.Engine)
		}
	}
	for _, c := range order {
		fmt.Fprintf(&buf, "\n%s, %d%% reads (Mops/s):\n", c.structure, c.readPct)
		fmt.Fprintf(&buf, "%8s", "g")
		for _, e := range engines[c] {
			fmt.Fprintf(&buf, "%10s", e)
		}
		fmt.Fprintf(&buf, "%12s\n", "HCF/Mutex")
		var gs []int
		for g := range groups[c] {
			gs = append(gs, g)
		}
		sort.Ints(gs)
		for _, g := range gs {
			fmt.Fprintf(&buf, "%8d", g)
			for _, e := range engines[c] {
				fmt.Fprintf(&buf, "%10.2f", groups[c][g][e]/1e6)
			}
			if mx := groups[c][g][NativeEngineMutex]; mx > 0 {
				fmt.Fprintf(&buf, "%11.2fx", groups[c][g][NativeEngineHCF]/mx)
			}
			fmt.Fprintln(&buf)
		}
	}
	return buf.String()
}

// ParseNativeReport decodes a report, checking its kind.
func ParseNativeReport(data []byte) (*NativeReport, error) {
	var rep NativeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Kind != NativeReportKind {
		return nil, fmt.Errorf("record kind %q, want %q", rep.Kind, NativeReportKind)
	}
	if len(rep.Points) == 0 {
		return nil, fmt.Errorf("record has no points")
	}
	return &rep, nil
}

// CompareNativeBaseline judges a fresh sweep against a checked-in
// baseline. Wall-clock throughput shifts wholesale with the hardware the
// sweep runs on, so absolute thresholds are useless as a cross-machine
// gate; instead every matched point's fresh/base ratio is normalized by
// the median ratio (which absorbs the overall hardware factor) and a
// point fails when it degraded to less than 1/tolerance of that median —
// i.e. only *relative* regressions concentrated in some cells trip the
// gate. Returns the matched count alongside any failure.
func CompareNativeBaseline(fresh, base *NativeReport, tolerance float64) (int, error) {
	if tolerance <= 1 {
		tolerance = 2
	}
	type key struct {
		structure, engine string
		goroutines, pct   int
	}
	baseRate := map[key]float64{}
	for _, p := range base.Points {
		baseRate[key{p.Structure, p.Engine, p.Goroutines, p.ReadPct}] = p.OpsPerSec
	}
	type matched struct {
		k     key
		ratio float64
	}
	var ms []matched
	for _, p := range fresh.Points {
		k := key{p.Structure, p.Engine, p.Goroutines, p.ReadPct}
		if b, ok := baseRate[k]; ok && b > 0 && p.OpsPerSec > 0 {
			ms = append(ms, matched{k, p.OpsPerSec / b})
		}
	}
	if len(ms) == 0 {
		return 0, fmt.Errorf("no points in common with the baseline")
	}
	ratios := make([]float64, len(ms))
	for i, m := range ms {
		ratios[i] = m.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median == 0 {
		return len(ms), fmt.Errorf("median point ratio is zero")
	}
	var fails []string
	for _, m := range ms {
		if m.ratio < median/tolerance {
			fails = append(fails, fmt.Sprintf(
				"%s/%s g=%d read=%d%%: %.2fx of baseline vs median %.2fx",
				m.k.structure, m.k.engine, m.k.goroutines, m.k.pct, m.ratio, median))
		}
	}
	if len(fails) > 0 {
		return len(ms), fmt.Errorf("%d/%d points regressed more than %.1fx below the median ratio:\n  %s",
			len(fails), len(ms), tolerance, joinLines(fails))
	}
	return len(ms), nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
