package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRunNativeSweepSmoke runs a tiny sweep end to end: every expected
// cell present, nonzero throughput, JSON round trip, text renderer.
func TestRunNativeSweepSmoke(t *testing.T) {
	rep, err := RunNativeSweep(NativeOptions{
		Goroutines: []int{1, 2},
		ReadPcts:   []int{50},
		Duration:   10 * time.Millisecond,
		Keyspace:   1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 hashtable engines x 2 goroutine counts + 2 pqueue engines x 2.
	if want := 4*2 + 2*2; len(rep.Points) != want {
		t.Fatalf("points = %d, want %d", len(rep.Points), want)
	}
	for _, p := range rep.Points {
		if p.Ops == 0 || p.OpsPerSec <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseNativeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("round trip lost points: %d != %d", len(back.Points), len(rep.Points))
	}
	text := FormatNativeReport(rep)
	for _, want := range []string{NativeEngineHCF, NativeEngineMutex, "HCF/Mutex", NativeStructPQ} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

func TestParseNativeReportRejectsWrongKind(t *testing.T) {
	if _, err := ParseNativeReport([]byte(`{"kind":"other","points":[{}]}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := ParseNativeReport([]byte(`{"kind":"hcf-native-bench","points":[]}`)); err == nil {
		t.Fatal("empty points accepted")
	}
}

func syntheticReport(scale float64) *NativeReport {
	rep := &NativeReport{Kind: NativeReportKind}
	for _, g := range []int{1, 2, 4} {
		for _, e := range []string{NativeEngineHCF, NativeEngineMutex} {
			rep.Points = append(rep.Points, NativePoint{
				Structure: NativeStructHash, Engine: e, Goroutines: g, ReadPct: 50,
				Ops: 1000, OpsPerSec: scale * float64(1000*g),
			})
		}
	}
	return rep
}

// TestCompareNativeBaseline pins the median-normalization semantics: a
// uniform hardware-speed shift passes at any magnitude; one point
// collapsing relative to the rest fails.
func TestCompareNativeBaseline(t *testing.T) {
	base := syntheticReport(1)

	// 5x faster across the board: a faster machine, not a regression.
	if n, err := CompareNativeBaseline(syntheticReport(5), base, 2); err != nil || n != 6 {
		t.Fatalf("uniform speedup rejected: n=%d err=%v", n, err)
	}
	// 10x slower across the board: a slower machine, still fine.
	if _, err := CompareNativeBaseline(syntheticReport(0.1), base, 2); err != nil {
		t.Fatalf("uniform slowdown rejected: %v", err)
	}
	// One point collapsed to 1/10 of its baseline while the rest held:
	// that is a real relative regression and must fail.
	fresh := syntheticReport(1)
	fresh.Points[0].OpsPerSec /= 10
	if _, err := CompareNativeBaseline(fresh, base, 2); err == nil {
		t.Fatal("collapsed point passed the gate")
	}
	// Disjoint reports cannot be compared.
	disjoint := &NativeReport{Kind: NativeReportKind, Points: []NativePoint{
		{Structure: "other", Engine: "x", Goroutines: 1, ReadPct: 1, OpsPerSec: 1},
	}}
	if _, err := CompareNativeBaseline(disjoint, base, 2); err == nil {
		t.Fatal("disjoint reports compared successfully")
	}
}
