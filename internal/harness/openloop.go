package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hcf/internal/memsim"
	"hcf/internal/metrics"
	"hcf/internal/trace"
	"hcf/internal/workload"
)

// OpenLoopConfig tunes one open-loop measurement point. Unlike the
// closed-loop harness (captive threads issue the next op the instant the
// previous returns), operations arrive on an external schedule and latency
// is the SOJOURN time — completion minus *intended* arrival — so queueing
// delay is charged to the operations that suffered it. Measuring from
// dequeue instead would be coordinated omission: the overloaded system
// would grade its own homework by only timing the ops it got around to.
type OpenLoopConfig struct {
	// Rate is the aggregate offered load in operations per million cycles,
	// split evenly across threads.
	Rate float64
	// Arrivals optionally overrides the arrival process for each thread
	// (built with the per-thread rate via the factory). Nil uses Poisson.
	Arrivals func(perThreadRate float64) (workload.ArrivalGen, error)
	// Interval is the sampler interval in cycles (default Horizon/20).
	Interval int64
	// SLO configures burn-rate evaluation over sojourn times; nil uses
	// DefaultOpenLoopSLO.
	SLO *metrics.SLOConfig
	// TraceLimit, when positive, instruments the engine with a flight
	// recorder of that many events per thread so trace health (and hot
	// lines, via the observer) feed the live introspection endpoints.
	TraceLimit int
	// Observer, when non-nil, is attached before the run starts and ticked
	// from the driver thread at sampler cadence — the hook the live
	// introspection server hangs off. Observation must charge no simulated
	// cycles; results are bit-identical with or without an observer.
	Observer OpenLoopObserver
}

// DefaultOpenLoopSLOThreshold is the default sojourn objective: 99% of
// operations (all classes) complete within this many cycles.
const DefaultOpenLoopSLOThreshold = 20_000

// DefaultOpenLoopSLO is the objective used when OpenLoopConfig.SLO is nil.
func DefaultOpenLoopSLO() metrics.SLOConfig {
	return metrics.SLOConfig{
		Objectives: []metrics.Objective{
			{Threshold: DefaultOpenLoopSLOThreshold, Target: 0.99},
		},
	}
}

func (c *OpenLoopConfig) normalize(horizon int64) {
	if c.Interval <= 0 {
		c.Interval = max(horizon/20, 1)
	}
	if c.SLO == nil {
		slo := DefaultOpenLoopSLO()
		c.SLO = &slo
	}
}

// OpenLoopView is everything a live observer may read during an open-loop
// run. All fields are safe for concurrent reads while the run progresses:
// recorders are atomic, the sampler and SLO tracker copy under their own
// locks, the trace collector's counter methods are lock-free, and Backlog
// reads only host-side atomics.
type OpenLoopView struct {
	Scenario string
	Engine   string
	Threads  int
	// Service records engine-side service metrics (per completion path,
	// commits/aborts, combining).
	Service *metrics.Recorder
	// Sojourn records intended-start-to-completion times per class.
	Sojourn *metrics.Recorder
	// Sampler emits the interval series (with backlog gauges) over Service.
	Sampler *metrics.Sampler
	// SLO is the burn-rate tracker over Sojourn; nil only if SLO evaluation
	// is disabled.
	SLO *metrics.SLOTracker
	// Trace is the flight recorder; nil unless TraceLimit > 0. Only the
	// counter methods (Starts/Retained/Dropped) are safe mid-run — snapshot
	// methods must be driven from OpenLoopTick.
	Trace *trace.Collector
	// Backlog returns the current arrived-but-uncompleted operation count,
	// as of the last driver tick.
	Backlog func() int64
}

// OpenLoopObserver is attached to an open-loop run before it starts and
// ticked from the driver thread at sampler cadence. OpenLoopTick runs while
// the simulator's cooperative scheduler has every other virtual thread
// parked, so snapshotting structures that are unsafe during emission (e.g.
// trace hot lines) is legal there — and it charges no simulated cycles.
type OpenLoopObserver interface {
	ObserveOpenLoop(v OpenLoopView)
	OpenLoopTick(now int64)
}

// SojournStat summarizes a sojourn-time distribution through the deep tail.
type SojournStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	P9999 uint64  `json:"p9999"`
	Max   uint64  `json:"max"`
}

func sojournStatOf(s metrics.HistogramSnapshot) SojournStat {
	return SojournStat{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		P9999: s.Quantile(0.9999),
		Max:   s.Max,
	}
}

// ClassSojourn is a per-class sojourn breakdown row.
type ClassSojourn struct {
	Class string `json:"class"`
	SojournStat
}

// OpenLoopPoint is one (engine, offered rate) measurement.
type OpenLoopPoint struct {
	Scenario string  `json:"scenario"`
	Engine   string  `json:"engine"`
	Threads  int     `json:"threads"`
	Rate     float64 `json:"rate"` // offered, ops/Mcycle
	// Arrivals is the number of generated arrivals; Completed the number
	// that finished (always equal — the run drains its queue — but kept
	// separate so a future bounded-drain mode stays honest).
	Arrivals  uint64 `json:"arrivals"`
	Completed uint64 `json:"completed"`
	// Horizon is the arrival window; Makespan when the last op finished.
	// Makespan >> Horizon means the offered load exceeded capacity.
	Horizon  int64 `json:"horizon"`
	Makespan int64 `json:"makespan"`
	// Throughput is completed ops per million cycles of max(makespan,
	// horizon) — the achieved rate, which tracks the offered rate below
	// saturation and the service capacity above it.
	Throughput float64 `json:"throughput"`
	// Saturated marks a point past the knee: draining the arrival backlog
	// ran the clock >10% past the horizon.
	Saturated bool `json:"saturated"`
	// Sojourn is intended-start-to-completion latency, all classes.
	Sojourn SojournStat `json:"sojourn"`
	// ByClass breaks sojourn out per operation class.
	ByClass []ClassSojourn `json:"by_class,omitempty"`
	// MaxBacklog is the largest sampled arrived-but-unfinished count;
	// EndBacklog the count still queued when the arrival window closed.
	MaxBacklog int64 `json:"max_backlog"`
	EndBacklog int64 `json:"end_backlog"`
	// SLOState is the final alert state (worst across objectives); SLO
	// carries the full evaluation including the verdict journal.
	SLOState string               `json:"slo_state"`
	SLO      *metrics.SLOSnapshot `json:"slo,omitempty"`
	// TraceDropped surfaces flight-recorder overwrite when tracing is on.
	TraceDropped       uint64 `json:"trace_dropped,omitempty"`
	InvariantViolation string `json:"invariant_violation,omitempty"`
}

// RunPointOpenLoop measures one engine under one offered load: per-thread
// Poisson (or custom) arrival schedules over [0, Horizon), every arrival
// executed in order with sojourn measured from its intended start, and the
// queue drained past the horizon so queued operations are charged their
// full wait. Thread 0 drives the sampler, SLO evaluation, and observer
// ticks, all at zero simulated cost — results are bit-identical for a
// given (cfg.Seed, rate) with or without observers attached.
func RunPointOpenLoop(sc Scenario, engineName string, threads int, cfg Config, ol OpenLoopConfig) (OpenLoopPoint, *metrics.Report, error) {
	cfg.normalize()
	ol.normalize(cfg.Horizon)
	if ol.Rate <= 0 {
		return OpenLoopPoint{}, nil, fmt.Errorf("harness: open-loop rate must be positive, got %v", ol.Rate)
	}

	// Per-thread arrival schedules, generated up front (host-side).
	perRate := ol.Rate / float64(threads)
	arrivals := make([][]int64, threads)
	var totalArrivals uint64
	for t := 0; t < threads; t++ {
		var gen workload.ArrivalGen
		var err error
		if ol.Arrivals != nil {
			gen, err = ol.Arrivals(perRate)
		} else {
			gen, err = workload.NewPoisson(perRate)
		}
		if err != nil {
			return OpenLoopPoint{}, nil, err
		}
		r := rand.New(rand.NewPCG(cfg.Seed^0xA17ECA11, uint64(t)+1))
		arrivals[t] = workload.GenSchedule(gen, cfg.Horizon, r)
		totalArrivals += uint64(len(arrivals[t]))
	}

	env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return OpenLoopPoint{}, nil, err
	}
	serviceRec, err := Instrument(eng, &inst, threads, "cycles")
	if err != nil {
		return OpenLoopPoint{}, nil, err
	}
	sojournRec, err := metrics.New(metrics.Config{
		Shards:   threads + 1,
		Classes:  classNames(&inst),
		Paths:    []string{"sojourn"},
		TimeUnit: "cycles",
	})
	if err != nil {
		return OpenLoopPoint{}, nil, err
	}
	var col *trace.Collector
	if ol.TraceLimit > 0 {
		if col, err = InstrumentTrace(eng, ol.TraceLimit); err != nil {
			return OpenLoopPoint{}, nil, err
		}
	}
	slo, err := metrics.NewSLOTracker(sojournRec, *ol.SLO)
	if err != nil {
		return OpenLoopPoint{}, nil, err
	}

	env.ResetStats()
	eng.ResetMetrics()
	sampler := metrics.NewSampler(serviceRec, ol.Interval)

	// Completed counters are atomics so the live backlog gauge can be read
	// from host goroutines (the introspection server) mid-run.
	completed := make([]atomic.Uint64, threads)
	var lastTick atomic.Int64
	backlogAt := func(now int64) int64 {
		var b int64
		for t := range arrivals {
			arrived := sort.Search(len(arrivals[t]), func(i int) bool { return arrivals[t][i] > now })
			b += int64(arrived) - int64(completed[t].Load())
		}
		return max(b, 0)
	}
	var maxBacklog int64
	sampler.SetGauge(func(now int64) metrics.Gauges {
		b := backlogAt(now)
		if b > maxBacklog {
			maxBacklog = b
		}
		// Queue depth: queued beyond the ops currently in service.
		return metrics.Gauges{Backlog: b, QueueDepth: max(b-int64(threads), 0)}
	})

	if ol.Observer != nil {
		ol.Observer.ObserveOpenLoop(OpenLoopView{
			Scenario: sc.Name,
			Engine:   engineName,
			Threads:  threads,
			Service:  serviceRec,
			Sojourn:  sojournRec,
			Sampler:  sampler,
			SLO:      slo,
			Trace:    col,
			Backlog:  func() int64 { return backlogAt(lastTick.Load()) },
		})
	}

	opWork := env.Cost().OpWork
	completedByHorizon := make([]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		t := th.ID()
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(t)+1))
		for _, intended := range arrivals[t] {
			th.IdleUntil(intended) // park until the intended start
			th.Work(opWork)
			op := inst.NextOp(rng)
			eng.Execute(th, op)
			done := th.Now()
			sojournRec.RecordOp(t, op.Class(), 0, done-intended)
			completed[t].Add(1)
			if done <= cfg.Horizon {
				completedByHorizon[t]++
			}
			if t == 0 {
				lastTick.Store(done)
				if sampler.MaybeSample(done) {
					slo.Step(done)
					if ol.Observer != nil {
						ol.Observer.OpenLoopTick(done)
					}
				}
			}
		}
	})

	pt := OpenLoopPoint{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Rate:     ol.Rate,
		Arrivals: totalArrivals,
		Horizon:  cfg.Horizon,
	}
	var doneByHorizon uint64
	for t := 0; t < threads; t++ {
		pt.Completed += completed[t].Load()
		doneByHorizon += completedByHorizon[t]
		if now := env.Now(t); now > pt.Makespan {
			pt.Makespan = now
		}
	}
	span := max(pt.Makespan, cfg.Horizon)
	if span > 0 {
		pt.Throughput = float64(pt.Completed) * 1e6 / float64(span)
	}
	pt.Saturated = pt.Makespan > cfg.Horizon+cfg.Horizon/10
	pt.EndBacklog = int64(totalArrivals - doneByHorizon)

	sampler.Flush(pt.Makespan)
	slo.Step(pt.Makespan)
	if ol.Observer != nil {
		ol.Observer.OpenLoopTick(pt.Makespan)
	}
	pt.MaxBacklog = max(maxBacklog, pt.EndBacklog)

	var all metrics.HistogramSnapshot
	classes := sojournRec.Classes()
	for c, class := range classes {
		snap := sojournRec.ClassHistogram(c)
		if snap.Count > 0 {
			pt.ByClass = append(pt.ByClass, ClassSojourn{Class: class, SojournStat: sojournStatOf(snap)})
		}
		all.Merge(&snap)
	}
	pt.Sojourn = sojournStatOf(all)

	snap := slo.Snapshot()
	pt.SLO = &snap
	pt.SLOState = metrics.SLOStateOK
	for _, o := range snap.Objectives {
		if o.State == metrics.SLOStatePage ||
			(o.State == metrics.SLOStateWarn && pt.SLOState == metrics.SLOStateOK) {
			pt.SLOState = o.State
		}
	}
	if inst.Check != nil {
		pt.InvariantViolation = inst.Check(env.Boot())
	}

	report := metrics.BuildReport(serviceRec, sampler, sc.Name, engineName, threads)
	report.SLO = &snap
	if col != nil {
		pt.TraceDropped = col.Dropped()
		report.Trace = &metrics.TraceHealth{
			Starts:   col.Starts(),
			Retained: uint64(col.Retained()),
			Dropped:  col.Dropped(),
		}
	}
	return pt, &report, nil
}

// OpenLoopReport is a full offered-load sweep: every engine at every rate.
type OpenLoopReport struct {
	Figure   string          `json:"figure"`
	Scenario string          `json:"scenario"`
	Threads  int             `json:"threads"`
	Seed     uint64          `json:"seed"`
	Horizon  int64           `json:"horizon"`
	Interval int64           `json:"interval"`
	Rates    []float64       `json:"rates"`
	Points   []OpenLoopPoint `json:"-"`
}

// RunOpenLoopSweep measures every engine at every offered rate. Points run
// concurrently across host cores (bounded by cfg.Parallel) — each owns a
// fresh deterministic environment, so results are identical, in identical
// (rate-major, engine-minor) order, at any parallelism.
func RunOpenLoopSweep(sc Scenario, engineNames []string, rates []float64, threads int, cfg Config, ol OpenLoopConfig) (*OpenLoopReport, error) {
	cfg.normalize()
	ol.normalize(cfg.Horizon)
	if err := ValidateEngineNames(engineNames); err != nil {
		return nil, err
	}
	type point struct {
		rate float64
		name string
	}
	pts := make([]point, 0, len(engineNames)*len(rates))
	for _, r := range rates {
		for _, name := range engineNames {
			pts = append(pts, point{rate: r, name: name})
		}
	}
	rep := &OpenLoopReport{
		Figure:   "openloop",
		Scenario: sc.Name,
		Threads:  threads,
		Seed:     cfg.Seed,
		Horizon:  cfg.Horizon,
		Interval: ol.Interval,
		Rates:    rates,
		Points:   make([]OpenLoopPoint, len(pts)),
	}
	run := func(i int) error {
		olp := ol
		olp.Rate = pts[i].rate
		olp.Observer = nil // observers attach to single points, not sweeps
		p, _, err := RunPointOpenLoop(sc, pts[i].name, threads, cfg, olp)
		if err != nil {
			return err
		}
		rep.Points[i] = p
		return nil
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pts) {
		par = len(pts)
	}
	if par <= 1 {
		for i := range pts {
			if err := run(i); err != nil {
				return nil, err
			}
		}
		return rep, nil
	}
	errs := make([]error, len(pts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pts) {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// JSONL renders the sweep as one JSON object per line: a header describing
// the configuration, then one line per (rate, engine) point — the format
// checked in under bench/OPENLOOP_sweep.jsonl.
func (r *OpenLoopReport) JSONL() ([]byte, error) {
	var b bytes.Buffer
	h, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	b.Write(h)
	b.WriteByte('\n')
	for i := range r.Points {
		line, err := json.Marshal(&r.Points[i])
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes(), nil
}

// Text renders the sweep as an aligned table, one block per engine.
func (r *OpenLoopReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: open-loop sweep, %d threads, horizon %d, seed %d\n",
		r.Scenario, r.Threads, r.Horizon, r.Seed)
	fmt.Fprintf(&b, "sojourn latency measured from intended arrival (coordinated-omission safe)\n\n")
	byEngine := map[string][]OpenLoopPoint{}
	var order []string
	for _, p := range r.Points {
		if _, ok := byEngine[p.Engine]; !ok {
			order = append(order, p.Engine)
		}
		byEngine[p.Engine] = append(byEngine[p.Engine], p)
	}
	for _, eng := range order {
		fmt.Fprintf(&b, "%s:\n", eng)
		fmt.Fprintf(&b, "  %10s %10s %8s %8s %8s %8s %10s %10s %6s %5s\n",
			"offered", "achieved", "p50", "p99", "p999", "p9999", "maxbacklog", "endbacklog", "slo", "sat")
		for _, p := range byEngine[eng] {
			sat := ""
			if p.Saturated {
				sat = "*"
			}
			fmt.Fprintf(&b, "  %10.1f %10.1f %8d %8d %8d %8d %10d %10d %6s %5s\n",
				p.Rate, p.Throughput, p.Sojourn.P50, p.Sojourn.P99, p.Sojourn.P999,
				p.Sojourn.P9999, p.MaxBacklog, p.EndBacklog, p.SLOState, sat)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseOpenLoopJSONL parses a JSONL sweep back into a report (the inverse
// of JSONL, for baseline comparison).
func ParseOpenLoopJSONL(data []byte) (*OpenLoopReport, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("harness: empty open-loop JSONL")
	}
	var rep OpenLoopReport
	if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
		return nil, fmt.Errorf("harness: open-loop JSONL header: %w", err)
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var p OpenLoopPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return nil, fmt.Errorf("harness: open-loop JSONL row: %w", err)
		}
		rep.Points = append(rep.Points, p)
	}
	return &rep, sc.Err()
}

// CompareOpenLoopBaseline fails if any point in current has sojourn p99
// above maxRatio times the matching (engine, rate, threads) baseline point.
// Points without a baseline match are ignored (new rates or engines are not
// regressions). On the deterministic simulator results are bit-identical
// run to run, so a trip means the code changed the latency profile.
func CompareOpenLoopBaseline(current, baseline *OpenLoopReport, maxRatio float64) error {
	type key struct {
		engine  string
		rate    float64
		threads int
	}
	base := map[key]OpenLoopPoint{}
	for _, p := range baseline.Points {
		base[key{p.Engine, p.Rate, p.Threads}] = p
	}
	var fails []string
	for _, p := range current.Points {
		bp, ok := base[key{p.Engine, p.Rate, p.Threads}]
		if !ok {
			continue
		}
		if bp.Sojourn.P99 > 0 && float64(p.Sojourn.P99) > maxRatio*float64(bp.Sojourn.P99) {
			fails = append(fails, fmt.Sprintf(
				"%s @ rate %.0f: sojourn p99 %d vs baseline %d (> %.2fx)",
				p.Engine, p.Rate, p.Sojourn.P99, bp.Sojourn.P99, maxRatio))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("harness: open-loop p99 regression:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// OpenLoopDefaultRates is the checked-in sweep's offered-load ladder
// (ops/Mcycle): from well below every engine's knee to past the fastest
// engine's saturation point.
var OpenLoopDefaultRates = []float64{2000, 8000, 20000, 45000, 90000}

// OpenLoopDefaultEngines are the engines the checked-in sweep compares:
// the mutex baseline, single-framework HCF, and sharded HCF.
var OpenLoopDefaultEngines = []string{"Lock", "HCF", ShardedEngineName}

// OpenLoopScenario is the sweep's workload: the 4-shard hash table at 40%
// Find, runnable by sharded and unsharded engines alike.
func OpenLoopScenario() Scenario {
	return ShardedHashTableScenario(40, paperBuckets, 4, 0, 0)
}

// RunOpenLoopFigure runs the default checked-in sweep.
func RunOpenLoopFigure(threads int, cfg Config, ol OpenLoopConfig) (*OpenLoopReport, error) {
	return RunOpenLoopSweep(OpenLoopScenario(), OpenLoopDefaultEngines, OpenLoopDefaultRates, threads, cfg, ol)
}

// Results flattens the sweep into standard Result rows (rate folded into
// the scenario label) so `-fig openloop` composes with the generic figure
// renderers.
func (r *OpenLoopReport) Results() []Result {
	out := make([]Result, 0, len(r.Points))
	for _, p := range r.Points {
		out = append(out, Result{
			Scenario:           fmt.Sprintf("%s@%.0f", p.Scenario, p.Rate),
			Engine:             p.Engine,
			Threads:            p.Threads,
			Ops:                p.Completed,
			Cycles:             p.Makespan,
			Throughput:         p.Throughput,
			InvariantViolation: p.InvariantViolation,
		})
	}
	return out
}
