package harness

import (
	"bytes"
	"strings"
	"testing"

	"hcf/internal/metrics"
)

// Small sweep configuration used across the open-loop tests: two engines,
// one below-knee and one past-knee rate for the Lock engine.
func olTestConfig() (Config, OpenLoopConfig, []float64, []string) {
	cfg := Config{Horizon: 60_000, Seed: 1}
	ol := OpenLoopConfig{}
	return cfg, ol, []float64{1500, 12000}, []string{"Lock", "HCF"}
}

func TestOpenLoopPointBasics(t *testing.T) {
	cfg, ol, _, _ := olTestConfig()
	ol.Rate = 4000
	p, rep, err := RunPointOpenLoop(OpenLoopScenario(), "HCF", 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if p.Completed != p.Arrivals {
		t.Fatalf("completed %d != arrivals %d (the run must drain its queue)", p.Completed, p.Arrivals)
	}
	if p.Sojourn.Count != p.Arrivals {
		t.Fatalf("sojourn count %d != arrivals %d", p.Sojourn.Count, p.Arrivals)
	}
	if p.Sojourn.P50 == 0 || p.Sojourn.Max < p.Sojourn.P999 || p.Sojourn.P999 < p.Sojourn.P99 {
		t.Fatalf("implausible sojourn stats: %+v", p.Sojourn)
	}
	if p.Makespan < cfg.Horizon/2 {
		t.Fatalf("makespan %d implausibly small for horizon %d", p.Makespan, cfg.Horizon)
	}
	if p.SLO == nil || len(p.SLO.Objectives) == 0 {
		t.Fatal("SLO evaluation missing from point")
	}
	if p.SLOState == "" {
		t.Fatal("SLO state missing")
	}
	if len(p.ByClass) == 0 {
		t.Fatal("per-class sojourn breakdown missing")
	}
	if p.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", p.InvariantViolation)
	}
	if rep == nil || len(rep.Intervals) == 0 {
		t.Fatal("metrics report missing interval series")
	}
	if rep.SLO == nil {
		t.Fatal("metrics report missing SLO snapshot")
	}
}

func TestOpenLoopSaturationShape(t *testing.T) {
	cfg, ol, _, _ := olTestConfig()

	ol.Rate = 1500 // far below Lock's ~5000 ops/Mcycle capacity
	low, _, err := RunPointOpenLoop(OpenLoopScenario(), "Lock", 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	ol.Rate = 12000 // far above it
	high, _, err := RunPointOpenLoop(OpenLoopScenario(), "Lock", 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	if low.Saturated {
		t.Errorf("below-capacity point marked saturated: %+v", low.Sojourn)
	}
	if !high.Saturated {
		t.Errorf("past-capacity point not marked saturated (makespan %d, horizon %d)", high.Makespan, high.Horizon)
	}
	if high.Sojourn.P99 < 10*low.Sojourn.P99 {
		t.Errorf("saturation did not blow up the tail: low p99 %d, high p99 %d", low.Sojourn.P99, high.Sojourn.P99)
	}
	if high.MaxBacklog <= low.MaxBacklog {
		t.Errorf("saturation did not grow backlog: low %d, high %d", low.MaxBacklog, high.MaxBacklog)
	}
	if high.SLOState != metrics.SLOStatePage {
		t.Errorf("past-knee SLO state = %s, want page", high.SLOState)
	}
	if len(high.SLO.Verdicts) == 0 {
		t.Error("past-knee point has no SLO verdicts")
	}
}

// TestOpenLoopSweepParallelBitIdentical is the determinism gate: the JSONL
// sweep must be byte-identical for a fixed seed whether points run serially
// or concurrently across host cores.
func TestOpenLoopSweepParallelBitIdentical(t *testing.T) {
	cfg, ol, rates, engines := olTestConfig()

	cfg.Parallel = 1
	serial, err := RunOpenLoopSweep(OpenLoopScenario(), engines, rates, 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 0 // all host cores
	parallel, err := RunOpenLoopSweep(OpenLoopScenario(), engines, rates, 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel sweeps differ:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
}

func TestOpenLoopJSONLRoundTrip(t *testing.T) {
	cfg, ol, rates, engines := olTestConfig()
	rep, err := RunOpenLoopSweep(OpenLoopScenario(), engines, rates, 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseOpenLoopJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rep.Scenario || back.Threads != rep.Threads || back.Seed != rep.Seed {
		t.Fatalf("header round-trip mismatch: %+v vs %+v", back, rep)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("points round-trip: %d vs %d", len(back.Points), len(rep.Points))
	}
	for i := range back.Points {
		if back.Points[i].Engine != rep.Points[i].Engine ||
			back.Points[i].Rate != rep.Points[i].Rate ||
			back.Points[i].Sojourn.P99 != rep.Points[i].Sojourn.P99 {
			t.Fatalf("point %d round-trip mismatch", i)
		}
	}
	// Verdicts survive the JSONL round trip (acceptance: verdicts present
	// in the output).
	var sawVerdict bool
	for _, p := range back.Points {
		if p.SLO != nil && len(p.SLO.Verdicts) > 0 {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatal("no SLO verdicts in round-tripped sweep (past-knee point should page)")
	}
	if txt := rep.Text(); !strings.Contains(txt, "p9999") || !strings.Contains(txt, "Lock") {
		t.Errorf("Text rendering missing columns:\n%s", txt)
	}
}

func TestOpenLoopBaselineComparison(t *testing.T) {
	cfg, ol, _, _ := olTestConfig()
	rep, err := RunOpenLoopSweep(OpenLoopScenario(), []string{"Lock"}, []float64{1500}, 12, cfg, ol)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareOpenLoopBaseline(rep, rep, 1.25); err != nil {
		t.Fatalf("self-comparison must pass: %v", err)
	}
	worse := *rep
	worse.Points = append([]OpenLoopPoint(nil), rep.Points...)
	worse.Points[0].Sojourn.P99 = rep.Points[0].Sojourn.P99 * 2
	if err := CompareOpenLoopBaseline(&worse, rep, 1.25); err == nil {
		t.Fatal("2x p99 regression must fail the gate")
	}
	// Points missing from the baseline are not regressions.
	extra := *rep
	extra.Points = append(append([]OpenLoopPoint(nil), rep.Points...), OpenLoopPoint{
		Engine: "HCF", Rate: 9999, Threads: 12,
		Sojourn: SojournStat{P99: 1 << 40},
	})
	if err := CompareOpenLoopBaseline(&extra, rep, 1.25); err != nil {
		t.Fatalf("unmatched point must be ignored: %v", err)
	}
}

func TestOpenLoopRejectsBadConfig(t *testing.T) {
	cfg, ol, _, _ := olTestConfig()
	if _, _, err := RunPointOpenLoop(OpenLoopScenario(), "Lock", 4, cfg, ol); err == nil {
		t.Fatal("expected error for zero rate")
	}
	ol.Rate = 1000
	if _, err := RunOpenLoopSweep(OpenLoopScenario(), []string{"NoSuchEngine"}, []float64{1000}, 4, cfg, ol); err == nil {
		t.Fatal("expected error for unknown engine")
	}
}

func TestOpenLoopFigureRegistered(t *testing.T) {
	f, err := FigureByID("openloop")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Horizon: 30_000, Seed: 1}
	f.Threads = []int{8}
	results, err := RunFigure(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(OpenLoopDefaultRates) * len(OpenLoopDefaultEngines)
	if len(results) != want {
		t.Fatalf("figure results = %d, want %d", len(results), want)
	}
	for _, r := range results {
		if !strings.Contains(r.Scenario, "@") {
			t.Fatalf("flattened scenario label missing rate: %q", r.Scenario)
		}
		if r.InvariantViolation != "" {
			t.Fatalf("invariant violation in %s/%s: %s", r.Scenario, r.Engine, r.InvariantViolation)
		}
	}
}
