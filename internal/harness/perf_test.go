package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGoldenResults pins the simulated results of fixed-seed reference
// sweeps — every engine, several structures — to golden files recorded
// before the host-side performance work (run-until-preempted scheduling,
// passive spin-waits, pooled HTM read/write sets). Any divergence means a
// host-side optimization changed simulated behaviour, which is a bug by
// definition: these optimizations must be invisible at the cycle level.
func TestGoldenResults(t *testing.T) {
	cases := []struct {
		file    string
		fig     string
		threads []int
		horizon int64
		seed    uint64
	}{
		{"golden_hashtable40.jsonl", "2c", []int{1, 2, 4}, 50_000, 1},
		{"golden_avl40.jsonl", "5b", []int{1, 4}, 30_000, 7},
		{"golden_pqueue.jsonl", "pqueue", []int{3}, 30_000, 5},
	}
	for _, tc := range cases {
		t.Run(tc.fig, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			fig, err := FigureByID(tc.fig)
			if err != nil {
				t.Fatal(err)
			}
			fig.Threads = tc.threads
			results, err := RunFigure(fig, Config{Horizon: tc.horizon, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			got, err := FormatJSONL(results)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("results diverged from golden %s;\ngot:\n%s\nwant:\n%s",
					tc.file, got, want)
			}
		})
	}
}

// TestRunSweepParallelMatchesSerial checks that measuring sweep points
// concurrently on the host returns exactly the results of a serial sweep,
// in the same order.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	threads := []int{1, 2, 3}
	serial, err := RunSweep(sc, EngineNames, threads, Config{Horizon: 10_000, Seed: 9, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(sc, EngineNames, threads, Config{Horizon: 10_000, Seed: 9, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
