package harness

import (
	"math/rand/v2"
	"time"

	"hcf/internal/memsim"
)

// RealResult is one wall-clock measurement on the real-concurrency backend.
type RealResult struct {
	Scenario   string
	Engine     string
	Threads    int
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // operations per millisecond of wall time
	// InvariantViolation is non-empty if the scenario's check failed.
	InvariantViolation string
}

// RunPointReal measures one (scenario, engine, threads) configuration on
// the real-concurrency backend: actual goroutines, atomics and wall-clock
// time. On a single-core host the numbers mostly reflect scheduling; on a
// multicore host they give a native cross-check of the simulated shapes.
// Each thread executes opsPerThread operations.
func RunPointReal(sc Scenario, engineName string, threads, opsPerThread int, cfg Config) (RealResult, error) {
	cfg.normalize()
	env := memsim.NewReal(memsim.RealConfig{Threads: threads})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return RealResult{}, err
	}
	start := time.Now()
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0xFEED, uint64(th.ID())+1))
		for i := 0; i < opsPerThread; i++ {
			eng.Execute(th, inst.NextOp(rng))
		}
	})
	elapsed := time.Since(start)
	res := RealResult{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Ops:      uint64(threads * opsPerThread),
		Elapsed:  elapsed,
	}
	if ms := elapsed.Seconds() * 1000; ms > 0 {
		res.Throughput = float64(res.Ops) / ms
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	return res, nil
}
