package harness

import (
	"math/rand/v2"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/seq/hashtable"
	"hcf/internal/witness"
)

// TestRunPointRealAllEngines runs every known engine — the paper's six plus
// the sharded variant — on the real-concurrency backend and checks the
// structural invariants afterwards. Under -race this doubles as a data-race
// hunt over every engine's real-backend code path.
func TestRunPointRealAllEngines(t *testing.T) {
	sc := ShardedHashTableScenario(40, 256, 2, 2, 10)
	for _, name := range KnownEngineNames() {
		res, err := RunPointReal(sc, name, 4, 300, Config{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.InvariantViolation != "" {
			t.Errorf("%s: invariant violated: %s", name, res.InvariantViolation)
		}
		if res.Ops != 4*300 {
			t.Errorf("%s: completed %d ops, want %d", name, res.Ops, 4*300)
		}
	}
}

// realMapModel replays the sharded hash-table operations sequentially; the
// key space is routed consistently, so one flat map models all sub-tables.
type realMapModel struct{ m map[uint64]uint64 }

func (mm *realMapModel) Apply(op engine.Op) uint64 {
	switch o := op.(type) {
	case hashtable.FindOp:
		v, ok := mm.m[o.Key]
		return engine.Pack(v, ok)
	case hashtable.InsertOp:
		_, existed := mm.m[o.Key]
		mm.m[o.Key] = o.Val
		return engine.PackBool(!existed)
	case hashtable.RemoveOp:
		_, existed := mm.m[o.Key]
		delete(mm.m, o.Key)
		return engine.PackBool(existed)
	case hashtable.SumAllOp:
		var sum uint64
		for _, v := range mm.m {
			sum += v
		}
		return engine.Pack(sum&((1<<63)-1), true)
	}
	return 0
}

func realInsertsLast(op engine.Op) int {
	if _, ok := op.(hashtable.InsertOp); ok {
		return 1
	}
	return 0
}

// TestRunPointRealWitnessed is the end-to-end linearizability check on the
// real-concurrency backend: every engine — including HCF-S, whose combiners
// run concurrently on different shards — must produce a serialization
// witness whose sequential replay reproduces every returned result.
func TestRunPointRealWitnessed(t *testing.T) {
	const (
		threads   = 4
		perThread = 250
		seed      = 11
		buckets   = 48
	)
	sc := ShardedHashTableScenario(40, buckets, 3, 4, 0)
	for _, name := range KnownEngineNames() {
		env := memsim.NewReal(memsim.RealConfig{Threads: threads})
		inst := sc.Setup(env, seed)
		// Seed the model by replaying the scenario's prefill stream (Setup
		// inserts buckets/2 uniform keys with value == key from this PCG).
		model := &realMapModel{m: map[uint64]uint64{}}
		pre := rand.New(rand.NewPCG(seed, 0xF17))
		for i := 0; i < buckets/2; i++ {
			k := pre.Uint64N(buckets)
			model.m[k] = k
		}
		cfg := Config{Seed: seed}
		cfg.normalize()
		eng, err := BuildEngine(name, env, inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec := &witness.Recorder{}
		eng.(engine.WitnessedEngine).SetWitness(rec.Func())
		env.Run(func(th *memsim.Thread) {
			rng := rand.New(rand.NewPCG(cfg.Seed^0xFEED, uint64(th.ID())+1))
			for i := 0; i < perThread; i++ {
				eng.Execute(th, inst.NextOp(rng))
			}
		})
		if err := witness.Check(rec, model, threads*perThread, realInsertsLast); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if inst.Check != nil {
			if s := inst.Check(env.Boot()); s != "" {
				t.Errorf("%s: invariant violated: %s", name, s)
			}
		}
	}
}
