package harness

import (
	"fmt"
	"math/rand/v2"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/seq/avl"
	"hcf/internal/seq/btree"
	"hcf/internal/seq/deque"
	"hcf/internal/seq/hashtable"
	"hcf/internal/seq/queue"
	"hcf/internal/seq/skiplist"
	"hcf/internal/seq/skipset"
	"hcf/internal/seq/sortedlist"
	"hcf/internal/seq/stack"
	"hcf/internal/workload"
)

// HashTableScenario is the §3.3 workload: a table with `buckets` buckets
// over a key range of the same size, prefilled to half capacity; findPct%
// Finds with the rest split evenly between Inserts and Removes.
func HashTableScenario(findPct, buckets int) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err) // static misconfiguration
	}
	return Scenario{
		Name: fmt.Sprintf("hashtable/find=%d%%", findPct),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			tbl := hashtable.New(boot, buckets)
			keys := workload.Uniform{N: uint64(buckets)}
			pre := rand.New(rand.NewPCG(seed, 0xF17))
			for i := 0; i < buckets/2; i++ {
				k := keys.Next(pre)
				tbl.Insert(boot, k, k)
			}
			return Instance{
				Policies:   hashtable.Policies(),
				ClassNames: []string{"find", "insert", "remove"},
				Combine:    hashtable.CombineMixed,
				NextOp: func(r *rand.Rand) engine.Op {
					k := keys.Next(r)
					switch mix.Pick(r) {
					case 0:
						return hashtable.FindOp{T: tbl, Key: k}
					case 1:
						return hashtable.InsertOp{T: tbl, Key: k, Val: k}
					default:
						return hashtable.RemoveOp{T: tbl, Key: k}
					}
				},
				Check: tbl.CheckInvariants,
			}
		},
	}
}

// AVLVariant selects the HCF configuration ablations of §3.4.
type AVLVariant int

// AVL scenario variants.
const (
	// AVLCombining is the paper's main configuration: one publication
	// array, subtree-restricted selection, combining and elimination.
	AVLCombining AVLVariant = iota
	// AVLNoCombine has a combiner apply announced operations one after
	// another with no combining or elimination.
	AVLNoCombine
	// AVLTwoArrays partitions announcements into two publication arrays by
	// key (one per root subtree, approximated by the range midpoint).
	AVLTwoArrays
)

// AVLScenario is the §3.4 workload: an AVL set over [0, keyRange),
// prefilled to half, accessed with Zipfian keys (skew theta) and findPct%
// membership tests.
func AVLScenario(findPct int, keyRange uint64, theta float64, variant AVLVariant) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err)
	}
	name := fmt.Sprintf("avl/find=%d%%/theta=%.1f", findPct, theta)
	switch variant {
	case AVLNoCombine:
		name += "/nocombine"
	case AVLTwoArrays:
		name += "/twoarrays"
	}
	return Scenario{
		Name: name,
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			tree := avl.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0xA71))
			for i := uint64(0); i < keyRange/2; i++ {
				tree.Insert(boot, pre.Uint64N(keyRange))
			}
			zipf, err := workload.NewZipf(keyRange, theta)
			if err != nil {
				panic(err)
			}
			var policies = avl.Policies(1)
			arrOf := func(uint64) int { return 0 }
			switch variant {
			case AVLNoCombine:
				policies = avl.NoCombinePolicies()
			case AVLTwoArrays:
				policies = avl.Policies(2)
				pivot := keyRange / 2
				arrOf = func(k uint64) int {
					if k < pivot {
						return 0
					}
					return 1
				}
			}
			return Instance{
				Policies: policies,
				Combine:  avl.CombineOps,
				NextOp: func(r *rand.Rand) engine.Op {
					k := zipf.Next(r)
					switch mix.Pick(r) {
					case 0:
						return avl.FindOp{T: tree, K: k, Arr: arrOf(k)}
					case 1:
						return avl.InsertOp{T: tree, K: k, Arr: arrOf(k)}
					default:
						return avl.RemoveOp{T: tree, K: k, Arr: arrOf(k)}
					}
				},
				Check: tree.CheckInvariants,
			}
		},
	}
}

// HashTableBudgetScenario is HashTableScenario with the Insert class's
// speculation budgets overridden — the sensitivity sweep behind the
// paper's claim that the 2/3/5 split "works reasonably well across a wide
// range of data structures and workloads" (§3.3).
func HashTableBudgetScenario(findPct, buckets, private, visible, combining int) Scenario {
	base := HashTableScenario(findPct, buckets)
	return Scenario{
		Name: fmt.Sprintf("%s/budget=%d-%d-%d", base.Name, private, visible, combining),
		Setup: func(env memsim.Env, seed uint64) Instance {
			inst := base.Setup(env, seed)
			ins := &inst.Policies[hashtable.ClassInsert]
			ins.TryPrivateTrials = private
			ins.TryVisibleTrials = visible
			ins.TryCombiningTrials = combining
			return inst
		},
	}
}

// SkipSetScenario exercises the skip-list-based ordered set under a skewed
// workload: findPct% Contains, the rest split between Insert and Remove,
// Zipfian keys.
func SkipSetScenario(findPct int, keyRange uint64, theta float64) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Name: fmt.Sprintf("skipset/find=%d%%/theta=%.1f", findPct, theta),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			s := skipset.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0x55E7))
			for i := uint64(0); i < keyRange/2; i++ {
				s.Insert(boot, pre.Uint64N(keyRange), skipset.RandomLevel(pre))
			}
			zipf, err := workload.NewZipf(keyRange, theta)
			if err != nil {
				panic(err)
			}
			return Instance{
				Policies: skipset.Policies(),
				Combine:  skipset.CombineOps,
				NextOp: func(r *rand.Rand) engine.Op {
					k := zipf.Next(r)
					switch mix.Pick(r) {
					case 0:
						return skipset.ContainsOp{S: s, K: k}
					case 1:
						return skipset.InsertOp{S: s, K: k, Level: skipset.RandomLevel(r)}
					default:
						return skipset.RemoveOp{S: s, K: k}
					}
				},
				Check: s.CheckInvariants,
			}
		},
	}
}

// SortedListScenario exercises the O(n)-scan sorted linked list: long
// walks make speculation fragile (capacity and conflict aborts), while a
// combiner applies a whole batch in one merge pass.
func SortedListScenario(findPct int, keyRange uint64) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Name: fmt.Sprintf("sortedlist/find=%d%%", findPct),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			l := sortedlist.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0x50F7))
			for i := uint64(0); i < keyRange/2; i++ {
				l.Insert(boot, pre.Uint64N(keyRange))
			}
			return Instance{
				Policies: sortedlist.Policies(),
				Combine:  sortedlist.CombineOps,
				NextOp: func(r *rand.Rand) engine.Op {
					k := r.Uint64N(keyRange)
					switch mix.Pick(r) {
					case 0:
						return sortedlist.ContainsOp{L: l, K: k}
					case 1:
						return sortedlist.InsertOp{L: l, K: k}
					default:
						return sortedlist.RemoveOp{L: l, K: k}
					}
				},
				Check: l.CheckInvariants,
			}
		},
	}
}

// QueueScenario is a FIFO queue under enqPct% enqueues, with per-end
// publication arrays and chain-splicing combiners.
func QueueScenario(enqPct, prefill int) Scenario {
	if enqPct < 0 || enqPct > 100 {
		panic("harness: enqPct out of range")
	}
	return Scenario{
		Name: fmt.Sprintf("queue/enq=%d%%", enqPct),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			q := queue.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0xF1F0))
			for i := 0; i < prefill; i++ {
				q.Enqueue(boot, pre.Uint64()>>1)
			}
			return Instance{
				Policies: queue.Policies(),
				Combine:  queue.CombineMixed,
				NextOp: func(r *rand.Rand) engine.Op {
					if int(r.Uint64N(100)) < enqPct {
						return queue.EnqueueOp{Q: q, Val: r.Uint64() >> 1}
					}
					return queue.DequeueOp{Q: q}
				},
				Check: q.CheckInvariants,
			}
		},
	}
}

// BTreeScenario runs the AVL workload shape (§3.4) over a B-tree: multi-key
// nodes mean fewer cache lines per operation, a friendlier footprint for
// speculation, with the same combining/elimination discipline under skew.
func BTreeScenario(findPct int, keyRange uint64, theta float64) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Name: fmt.Sprintf("btree/find=%d%%/theta=%.1f", findPct, theta),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			tree := btree.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0xB7EE))
			for i := uint64(0); i < keyRange/2; i++ {
				tree.Insert(boot, pre.Uint64N(keyRange))
			}
			zipf, err := workload.NewZipf(keyRange, theta)
			if err != nil {
				panic(err)
			}
			return Instance{
				Policies: btree.Policies(),
				Combine:  btree.CombineOps,
				NextOp: func(r *rand.Rand) engine.Op {
					k := zipf.Next(r)
					switch mix.Pick(r) {
					case 0:
						return btree.ContainsOp{T: tree, K: k}
					case 1:
						return btree.InsertOp{T: tree, K: k}
					default:
						return btree.RemoveOp{T: tree, K: k}
					}
				},
				Check: tree.CheckInvariants,
			}
		},
	}
}

// PQScenario is the introduction's priority-queue workload: insertPct%
// Inserts of uniform priorities, the rest RemoveMins, over a queue
// prefilled with `prefill` elements.
func PQScenario(insertPct int, keyRange uint64, prefill int) Scenario {
	if insertPct < 0 || insertPct > 100 {
		panic("harness: insertPct out of range")
	}
	return Scenario{
		Name: fmt.Sprintf("pqueue/insert=%d%%", insertPct),
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			q := skiplist.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0x901))
			for i := 0; i < prefill; i++ {
				q.Insert(boot, pre.Uint64N(keyRange), skiplist.RandomLevel(pre))
			}
			return Instance{
				Policies: skiplist.Policies(),
				Combine:  skiplist.CombineMixed,
				NextOp: func(r *rand.Rand) engine.Op {
					if int(r.Uint64N(100)) < insertPct {
						return skiplist.InsertOp{
							Q:     q,
							Key:   r.Uint64N(keyRange),
							Level: skiplist.RandomLevel(r),
						}
					}
					return skiplist.RemoveMinOp{Q: q}
				},
				Check: q.CheckInvariants,
			}
		},
	}
}

// StackScenario is the §3.1 qualitative case: a 50/50 push/pop stack where
// FC is expected to win.
func StackScenario(prefill int) Scenario {
	return Scenario{
		Name: "stack/push=50%",
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			s := stack.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0x57C))
			for i := 0; i < prefill; i++ {
				s.Push(boot, pre.Uint64())
			}
			return Instance{
				Policies: stack.Policies(),
				Combine:  stack.Combine,
				NextOp: func(r *rand.Rand) engine.Op {
					if r.Uint64N(2) == 0 {
						return stack.PushOp{S: s, Val: r.Uint64() >> 1}
					}
					return stack.PopOp{S: s}
				},
			}
		},
	}
}

// DequeScenario is the §2.4 example: uniform operations over both deque
// ends, two publication arrays, optionally the specialized (hold the
// selection lock) variant.
func DequeScenario(prefill int, hold bool) Scenario {
	name := "deque/uniform"
	if hold {
		name += "/specialized"
	}
	return Scenario{
		Name: name,
		Setup: func(env memsim.Env, seed uint64) Instance {
			boot := env.Boot()
			d := deque.New(boot)
			pre := rand.New(rand.NewPCG(seed, 0xDE0))
			for i := 0; i < prefill; i++ {
				d.PushRight(boot, pre.Uint64()>>1)
			}
			return Instance{
				Policies:          deque.Policies(),
				HoldSelectionLock: hold,
				Combine:           deque.CombineMixed,
				NextOp: func(r *rand.Rand) engine.Op {
					switch r.Uint64N(4) {
					case 0:
						return deque.PushLeftOp{D: d, Val: r.Uint64() >> 1}
					case 1:
						return deque.PushRightOp{D: d, Val: r.Uint64() >> 1}
					case 2:
						return deque.PopLeftOp{D: d}
					default:
						return deque.PopRightOp{D: d}
					}
				},
				Check: d.CheckInvariants,
			}
		},
	}
}
