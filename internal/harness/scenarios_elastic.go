package harness

import (
	"fmt"
	"math/rand/v2"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/seq/hashtable"
	"hcf/internal/shard"
	"hcf/internal/workload"
)

// ElasticScenario is the hot-shard-healing workload: a hash table
// partitioned over an elastic ring with maxShards provisioned
// frameworks of which `initial` are active (the rest are spares for
// Split to grow into). When hotPct > 0 the key stream drifts: the
// first quarter of the horizon is uniform, then hotPct% of draws
// concentrate on keys the *initial* ring routes to shard 0, and at 60%
// of the horizon the hot set jumps to shard 1's keys (see
// workload.RingSkew — splitting a hot shard re-spreads its hot set,
// which is exactly the healing mechanism under test).
//
// Operations are submitted UNBOUND (no table pointer): the elastic
// engine's Bind hook attaches the owning shard's table inside the
// validated apply. That makes this scenario elastic-only — build it
// with ElasticEngineName, not the fixed-topology engines.
func ElasticScenario(findPct, buckets, maxShards, initial, hotPct int, horizon int64) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err) // static misconfiguration
	}
	if maxShards < 1 || initial < 1 || initial > maxShards || buckets < maxShards {
		panic(fmt.Sprintf("harness: elastic hash table needs 1 <= initial <= maxShards <= buckets, got %d/%d over %d",
			initial, maxShards, buckets))
	}
	if hotPct > 0 && initial < 2 {
		panic("harness: drifting skew needs at least 2 initially active shards")
	}
	if horizon <= 0 {
		panic("harness: elastic scenario needs a positive horizon for its drift schedule")
	}
	name := fmt.Sprintf("hashtable-elastic/%dof%d/find=%d%%", initial, maxShards, findPct)
	if hotPct > 0 {
		name += fmt.Sprintf("/hot=%d%%drift", hotPct)
	}
	return Scenario{
		Name: name,
		Setup: func(env memsim.Env, seed uint64) Instance {
			ring, err := route.NewUniform(initial, 0, maxShards)
			if err != nil {
				panic(err)
			}
			boot := env.Boot()
			tables := make([]*hashtable.Table, maxShards)
			for i := range tables {
				tables[i] = hashtable.New(boot, max(buckets/initial, 16))
			}
			var keys workload.KeyGen = workload.Uniform{N: uint64(buckets)}
			pre := rand.New(rand.NewPCG(seed, 0xE1A57C))
			for i := 0; i < buckets/2; i++ {
				k := keys.Next(pre)
				tables[ring.Owner(k)].Insert(boot, k, k)
			}
			keyAt := func(now int64, r *rand.Rand) uint64 { return keys.Next(r) }
			if hotPct > 0 {
				sched, err := workload.NewSchedule(horizon/4, horizon*3/5)
				if err != nil {
					panic(err)
				}
				skew, err := workload.NewRingSkew(keys, ring.Owner, sched, []int{-1, 0, 1}, hotPct)
				if err != nil {
					panic(err)
				}
				keyAt = skew.NextAt
			}
			opAt := func(now int64, r *rand.Rand) engine.Op {
				k := keyAt(now, r)
				switch mix.Pick(r) {
				case 0:
					return hashtable.FindOp{Key: k}
				case 1:
					return hashtable.InsertOp{Key: k, Val: k}
				default:
					return hashtable.RemoveOp{Key: k}
				}
			}
			return Instance{
				Policies:   hashtable.Policies(),
				ClassNames: []string{"find", "insert", "remove"},
				Combine:    hashtable.CombineMixed,
				Elastic: &ElasticPlan{
					MaxShards: maxShards,
					Initial:   initial,
					Key:       hashtable.RouteKey,
					Bind: func(op engine.Op, si int) engine.Op {
						return hashtable.BindTable(op, tables[si])
					},
					Migrate: func(ctx memsim.Ctx, from, to int, old, next *route.Ring) int {
						return hashtable.MigrateTables(ctx, tables, from, next)
					},
					// MinOps is low so short smoke runs (tiny windows)
					// still accumulate enough evidence to act on.
					Rebalance: shard.RebalanceConfig{SplitRatio: 2, MinOps: 64, Cooldown: 2},
				},
				NextOp:   func(r *rand.Rand) engine.Op { return opAt(0, r) },
				NextOpAt: opAt,
				Check: func(ctx memsim.Ctx) string {
					for i, t := range tables {
						if s := t.CheckInvariants(ctx); s != "" {
							return fmt.Sprintf("shard %d: %s", i, s)
						}
					}
					return ""
				},
			}
		},
	}
}
