package harness

import (
	"fmt"
	"math/rand/v2"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/route"
	"hcf/internal/seq/hashtable"
	"hcf/internal/workload"
)

// ShardedHashTableScenario partitions the §3.3 hash-table workload over
// `shards` independent sub-tables: key k lives in the table the shared
// consistent-hash ring (internal/route) routes it to, each table gets
// buckets/shards buckets, and the sharding plan applies the same ring via
// hashtable.RouteKey, so the sharded engine ("HCF-S") runs one combiner
// per sub-table. crossPct percent of operations are whole-structure
// SumAll scans, which route down the all-locks cross-shard path. hotPct
// percent of keys are skewed onto the shard the ring routes them to for
// shard 0 (0 = balanced; see workload.RingSkew). Non-sharded engines run
// the identical partitioned workload behind their single lock, making
// this scenario the direct sharded-vs-single comparison point.
func ShardedHashTableScenario(findPct, buckets, shards, crossPct, hotPct int) Scenario {
	mix, err := workload.UpdateMix(findPct)
	if err != nil {
		panic(err) // static misconfiguration
	}
	if shards < 1 || buckets < shards {
		panic(fmt.Sprintf("harness: sharded hash table needs 1 <= shards <= buckets, got %d over %d", shards, buckets))
	}
	if crossPct < 0 || crossPct > 100 {
		panic(fmt.Sprintf("harness: cross percentage %d outside [0,100]", crossPct))
	}
	name := fmt.Sprintf("hashtable-sharded/%d/find=%d%%/cross=%d%%", shards, findPct, crossPct)
	if hotPct > 0 {
		name += fmt.Sprintf("/hot=%d%%", hotPct)
	}
	return Scenario{
		Name: name,
		Setup: func(env memsim.Env, seed uint64) Instance {
			ring, err := route.NewUniform(shards, 0, shards)
			if err != nil {
				panic(err)
			}
			boot := env.Boot()
			tables := make([]*hashtable.Table, shards)
			for i := range tables {
				tables[i] = hashtable.New(boot, buckets/shards)
			}
			tableOf := func(k uint64) *hashtable.Table { return tables[ring.Owner(k)] }
			var keys workload.KeyGen = workload.Uniform{N: uint64(buckets)}
			pre := rand.New(rand.NewPCG(seed, 0xF17))
			for i := 0; i < buckets/2; i++ {
				k := keys.Next(pre)
				tableOf(k).Insert(boot, k, k)
			}
			if hotPct > 0 {
				static, err := workload.NewSchedule() // one segment
				if err != nil {
					panic(err)
				}
				skewed, err := workload.NewRingSkew(keys, ring.Owner, static, []int{0}, hotPct)
				if err != nil {
					panic(err)
				}
				keys = skewed
			}
			return Instance{
				Policies:   hashtable.Policies(),
				ClassNames: []string{"find", "insert", "remove"},
				Combine:    hashtable.CombineMixed,
				Sharding: &Sharding{
					Shards: shards,
					Key:    hashtable.RouteKey,
					Ring:   ring,
				},
				// Fully-active elastic plan over the same ring layout:
				// "HCF-E" behaves like "HCF-S" here until something
				// calls Split/Merge (no spare shards are provisioned).
				Elastic: &ElasticPlan{
					MaxShards: shards,
					Initial:   shards,
					Key:       hashtable.RouteKey,
					Bind: func(op engine.Op, si int) engine.Op {
						return hashtable.BindTable(op, tables[si])
					},
					Migrate: func(ctx memsim.Ctx, from, to int, old, next *route.Ring) int {
						return hashtable.MigrateTables(ctx, tables, from, next)
					},
				},
				NextOp: func(r *rand.Rand) engine.Op {
					if crossPct > 0 && int(r.Uint64N(100)) < crossPct {
						return hashtable.SumAllOp{Tables: tables}
					}
					k := keys.Next(r)
					switch mix.Pick(r) {
					case 0:
						return hashtable.FindOp{T: tableOf(k), Key: k}
					case 1:
						return hashtable.InsertOp{T: tableOf(k), Key: k, Val: k}
					default:
						return hashtable.RemoveOp{T: tableOf(k), Key: k}
					}
				},
				Check: func(ctx memsim.Ctx) string {
					for i, t := range tables {
						if s := t.CheckInvariants(ctx); s != "" {
							return fmt.Sprintf("shard %d: %s", i, s)
						}
					}
					return ""
				},
			}
		},
	}
}
