package harness

import (
	"strings"
	"testing"

	"hcf/internal/memsim"
)

func TestValidateEngineNames(t *testing.T) {
	if err := ValidateEngineNames(KnownEngineNames()); err != nil {
		t.Errorf("known names rejected: %v", err)
	}
	err := ValidateEngineNames([]string{"HCF", "HFC"})
	if err == nil {
		t.Fatal("bogus engine name accepted")
	}
	if !strings.Contains(err.Error(), `"HFC"`) || !strings.Contains(err.Error(), "known engines") {
		t.Errorf("error %q does not name the bad engine and the known list", err)
	}
}

// TestBuildEngineNeedsShardingPlan pins the error for requesting HCF-S on a
// scenario that carries no sharding plan.
func TestBuildEngineNeedsShardingPlan(t *testing.T) {
	sc := HashTableScenario(40, 64)
	cfg := Config{Seed: 1}
	cfg.normalize()
	env := memsim.NewDet(memsim.DetConfig{Threads: 2, Seed: 1})
	inst := sc.Setup(env, 1)
	_, err := BuildEngine(ShardedEngineName, env, inst, cfg)
	if err == nil || !strings.Contains(err.Error(), "sharding plan") {
		t.Errorf("want sharding-plan error, got %v", err)
	}
}

// TestRunPointSharded runs HCF-S through the standard sweep entry point:
// invariants must hold, the phase breakdown must be populated (HCF-S is a
// metered engine), and equal configurations must replay bit-identically.
func TestRunPointSharded(t *testing.T) {
	sc := ShardedHashTableScenario(40, 512, 4, 1, 0)
	cfg := Config{Horizon: 30_000, Trials: 3, Seed: 2}
	a, err := RunPoint(sc, ShardedEngineName, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.InvariantViolation != "" {
		t.Fatalf("invariant violated: %s", a.InvariantViolation)
	}
	if a.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if a.PhaseByClass == nil {
		t.Error("PhaseByClass not captured for HCF-S")
	}
	b, err := RunPoint(sc, ShardedEngineName, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Cycles != b.Cycles || a.Metrics != b.Metrics {
		t.Errorf("replay diverged:\na: ops=%d cycles=%d %+v\nb: ops=%d cycles=%d %+v",
			a.Ops, a.Cycles, a.Metrics, b.Ops, b.Cycles, b.Metrics)
	}
}

// TestRunPointShardedHotSkew smokes the shard-skew knob: a heavily skewed
// run must stay invariant-clean and still complete work (the hot shard's
// combiner absorbs the surplus).
func TestRunPointShardedHotSkew(t *testing.T) {
	sc := ShardedHashTableScenario(40, 512, 4, 0, 90)
	if !strings.Contains(sc.Name, "hot=90%") {
		t.Errorf("scenario name %q does not advertise the skew", sc.Name)
	}
	res, err := RunPoint(sc, ShardedEngineName, 8, Config{Horizon: 30_000, Trials: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolation != "" {
		t.Fatalf("invariant violated: %s", res.InvariantViolation)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
}

// TestShardedScenarioOnBaselines runs the sharded scenario through a plain
// (unsharded) engine: the sharding plan is advisory, so every baseline must
// still execute the mixed + cross-shard workload correctly.
func TestShardedScenarioOnBaselines(t *testing.T) {
	sc := ShardedHashTableScenario(40, 256, 2, 2, 0)
	for _, name := range []string{"Lock", "HCF"} {
		res, err := RunPoint(sc, name, 6, Config{Horizon: 20_000, Trials: 3, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.InvariantViolation != "" {
			t.Errorf("%s: invariant violated: %s", name, res.InvariantViolation)
		}
	}
}
