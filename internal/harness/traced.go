package harness

import (
	"fmt"
	"math/rand/v2"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/trace"
)

// InstrumentTrace installs a lifecycle-trace collector on eng. limit > 0
// turns the collector into a bounded flight recorder (limit most recent
// events per thread); limit == 0 retains everything. It fails only for
// engines that do not implement core.TracedEngine (all six in this
// repository do).
func InstrumentTrace(eng engine.Engine, limit int) (*trace.Collector, error) {
	te, ok := eng.(core.TracedEngine)
	if !ok {
		return nil, fmt.Errorf("harness: engine %s does not support tracing", eng.Name())
	}
	col := &trace.Collector{Limit: limit}
	te.SetTracer(col)
	return col, nil
}

// RunPointTraced is RunPoint with lifecycle tracing wired in: every
// operation's span (start, attempts with abort attribution, announce,
// combined-by edges, completion) lands in the returned collector.
//
// Tracing charges no simulated cycles, so Result is bit-identical to the
// untraced RunPoint for the same configuration, and the collected event
// stream is itself bit-identical across same-seed runs.
func RunPointTraced(sc Scenario, engineName string, threads int, cfg Config, limit int) (Result, *trace.Collector, error) {
	cfg.normalize()
	env := memsim.NewDet(memsim.DetConfig{Threads: threads, Cost: cfg.Cost, CapacityHint: cfg.CapacityHint})
	inst := sc.Setup(env, cfg.Seed)
	eng, err := BuildEngine(engineName, env, inst, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	col, err := InstrumentTrace(eng, limit)
	if err != nil {
		return Result{}, nil, err
	}
	env.ResetStats()
	eng.ResetMetrics()
	opWork := env.Cost().OpWork
	opsByThread := make([]uint64, threads)
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(cfg.Seed^0x9E3779B9, uint64(th.ID())+1))
		for th.Now() < cfg.Horizon {
			th.Work(opWork)
			eng.Execute(th, inst.NextOp(rng))
			opsByThread[th.ID()]++
		}
	})
	res := Result{
		Scenario: sc.Name,
		Engine:   engineName,
		Threads:  threads,
		Metrics:  eng.Metrics(),
	}
	for t := 0; t < threads; t++ {
		res.Ops += opsByThread[t]
		if now := env.Now(t); now > res.Cycles {
			res.Cycles = now
		}
		res.Mem.Merge(env.Stats(t))
	}
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) * 1e6 / float64(res.Cycles)
	}
	if hcf, ok := eng.(*core.Framework); ok {
		res.PhaseByClass = hcf.PhaseBreakdown()
	}
	if inst.Check != nil {
		res.InvariantViolation = inst.Check(env.Boot())
	}
	return res, col, nil
}
