package harness

import (
	"reflect"
	"testing"

	"hcf/internal/trace"
)

// TestTracedStreamDeterministic runs every engine twice with the same
// seed and requires the merged span stream — every event, including
// span ids, abort attribution, and help edges — to be bit-identical.
func TestTracedStreamDeterministic(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	cfg := Config{Horizon: 8_000, Seed: 7}
	for _, name := range EngineNames {
		res1, col1, err := RunPointTraced(sc, name, 4, cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res2, col2, err := RunPointTraced(sc, name, 4, cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Errorf("%s: results differ across same-seed runs:\n%+v\n%+v", name, res1, res2)
		}
		ev1, ev2 := col1.Events(), col2.Events()
		if len(ev1) == 0 {
			t.Errorf("%s: no events traced", name)
		}
		if !reflect.DeepEqual(ev1, ev2) {
			for i := range ev1 {
				if i >= len(ev2) || ev1[i] != ev2[i] {
					t.Fatalf("%s: event streams diverge at %d:\n%+v\n%+v", name, i, ev1[i], ev2[i])
				}
			}
			t.Fatalf("%s: event stream lengths differ: %d vs %d", name, len(ev1), len(ev2))
		}
	}
}

// TestTracingDoesNotPerturbRun is the zero-perturbation acceptance test:
// recording with the flight recorder on the deterministic backend must
// leave the run's results bit-identical to an untraced run.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	cfg := Config{Horizon: 10_000, Seed: 3}
	for _, name := range EngineNames {
		plain, err := RunPoint(sc, name, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Both an unbounded collector and a tight flight-recorder ring.
		for _, limit := range []int{0, 16} {
			traced, col, err := RunPointTraced(sc, name, 4, cfg, limit)
			if err != nil {
				t.Fatalf("%s limit=%d: %v", name, limit, err)
			}
			if !reflect.DeepEqual(traced, plain) {
				t.Errorf("%s limit=%d: traced run diverged from untraced:\n%+v\n%+v",
					name, limit, traced, plain)
			}
			if col.Starts() == 0 {
				t.Errorf("%s limit=%d: collector saw no operations", name, limit)
			}
		}
	}
}

// TestTracedSpansReconstruct sanity-checks the span pipeline end-to-end
// on the HCF engine: spans reconstruct, stats add up, and help edges pair
// with helped spans.
func TestTracedSpansReconstruct(t *testing.T) {
	sc := HashTableScenario(40, 1024)
	_, col, err := RunPointTraced(sc, "HCF", 6, Config{Horizon: 15_000, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	spans := trace.BuildSpans(col.Events())
	st := trace.ComputeSpanStats(spans)
	if st.Spans == 0 || st.Spans != uint64(len(spans)) {
		t.Fatalf("span count mismatch: %d vs %d", st.Spans, len(spans))
	}
	if st.Incomplete != 0 {
		t.Errorf("%d incomplete spans with an unbounded collector", st.Incomplete)
	}
	if st.Self+st.Helped != st.Spans {
		t.Errorf("self %d + helped %d != spans %d", st.Self, st.Helped, st.Spans)
	}
	if st.Helped != st.HelpEdges {
		t.Errorf("helped spans %d != help edges %d", st.Helped, st.HelpEdges)
	}
	// Every helped span's helper/span pair must point at a real span.
	byID := map[uint64]bool{}
	for _, sp := range spans {
		byID[sp.ID] = true
	}
	for _, sp := range spans {
		if sp.Helped && sp.HelperSpan != 0 && !byID[sp.HelperSpan] {
			t.Errorf("span %x helped by unknown span %x", sp.ID, sp.HelperSpan)
		}
		for _, h := range sp.Helps {
			if !byID[h.PeerSpan] {
				t.Errorf("span %x helped unknown span %x", sp.ID, h.PeerSpan)
			}
		}
	}
}
