package htm

import (
	"testing"

	"hcf/internal/memsim"
)

// TestTransactionZeroSteadyStateAllocs asserts that the begin/load/store/
// commit hot path performs no heap allocations once the pooled transaction's
// read/write sets have grown to their working size. This is the contract
// that keeps long simulator sweeps out of the Go garbage collector.
func TestTransactionZeroSteadyStateAllocs(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := New(env, Config{})
	th := env.Boot()

	const spans = 24
	addrs := make([]memsim.Addr, spans)
	for i := range addrs {
		addrs[i] = env.Alloc(memsim.WordsPerLine)
		env.StoreWord(addrs[i], 0)
	}
	body := func(tx *Tx) {
		for _, a := range addrs {
			tx.Store(a, tx.Load(a)+1)
		}
	}
	// Warm up: grow the read/write tables and any runtime-internal state.
	for i := 0; i < 10; i++ {
		if ok, reason := eng.Run(th, body); !ok {
			t.Fatalf("warmup transaction aborted: %v", reason)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if ok, _ := eng.Run(th, body); !ok {
			t.Fatal("transaction aborted")
		}
	}); avg != 0 {
		t.Errorf("steady-state transaction allocates %.1f objects per run, want 0", avg)
	}
}

// TestAbortRetryZeroSteadyStateAllocs exercises the rollback path: an
// explicitly aborted transaction must also leave no garbage behind.
func TestAbortRetryZeroSteadyStateAllocs(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := New(env, Config{})
	th := env.Boot()
	a := env.Alloc(1)
	env.StoreWord(a, 0)

	body := func(tx *Tx) {
		tx.Store(a, tx.Load(a)+1)
		tx.Abort()
	}
	for i := 0; i < 10; i++ {
		eng.Run(th, body)
	}
	if avg := testing.AllocsPerRun(100, func() { eng.Run(th, body) }); avg != 0 {
		t.Errorf("steady-state aborting transaction allocates %.1f objects per run, want 0", avg)
	}
}
