package htm

// Abort-attribution tests: conflict aborts must name the conflicting
// cache line and its last committed writer; lock-subscription aborts via
// AbortLockHeldBy must name the holder. LastAbortInfo surfaces both to
// the tracing layer.

import (
	"testing"

	"hcf/internal/memsim"
)

func TestConflictAbortAttributesLineAndWriter(t *testing.T) {
	env := detEnv(2)
	eng := New(env, Config{})
	a := env.Alloc(1)
	var abortedThread = -1
	env.Run(func(th *memsim.Thread) {
		ok, r := eng.Run(th, func(tx *Tx) {
			v := tx.Load(a)
			th.Work(500) // widen the race window so both overlap
			tx.Store(a, v+1)
		})
		if !ok {
			if r != ReasonConflict {
				t.Errorf("thread %d aborted with %v, want conflict", th.ID(), r)
			}
			abortedThread = th.ID()
		}
	})
	if abortedThread < 0 {
		t.Fatal("no transaction aborted")
	}
	info := eng.LastAbortInfo(abortedThread)
	if info.Line != memsim.LineOf(a) {
		t.Errorf("conflict line = %d, want %d", info.Line, memsim.LineOf(a))
	}
	// The winner is the other thread, and it committed a write to a's
	// line, so it must be the attributed writer.
	winner := 1 - abortedThread
	if info.Writer != winner {
		t.Errorf("conflict writer = %d, want %d", info.Writer, winner)
	}
	if info.Holder != -1 {
		t.Errorf("holder = %d on a conflict abort, want -1", info.Holder)
	}
}

func TestLoadConflictAttributesWriter(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	a := env.Alloc(1)
	b := env.Alloc(WordsPerLineWords()) // force a different line
	boot := env.Boot()
	ok, reason := eng.Run(boot, func(tx *Tx) {
		_ = tx.Load(a)
		boot.Store(b, 5) // bumps b's line past the snapshot
		_ = tx.Load(b)   // must abort: version is newer than the snapshot
	})
	if ok || reason != ReasonConflict {
		t.Fatalf("expected conflict abort, got ok=%v reason=%v", ok, reason)
	}
	info := eng.LastAbortInfo(boot.ID())
	if info.Line != memsim.LineOf(b) {
		t.Errorf("conflict line = %d, want %d", info.Line, memsim.LineOf(b))
	}
	if info.Writer != boot.ID() {
		t.Errorf("conflict writer = %d, want %d (the direct store)", info.Writer, boot.ID())
	}
}

func TestAbortLockHeldByAttributesHolder(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	boot := env.Boot()
	ok, reason := eng.Run(boot, func(tx *Tx) {
		tx.AbortLockHeldBy(5)
	})
	if ok || reason != ReasonLockHeld {
		t.Fatalf("expected lock-held abort, got ok=%v reason=%v", ok, reason)
	}
	info := eng.LastAbortInfo(boot.ID())
	if info.Holder != 5 {
		t.Errorf("holder = %d, want 5", info.Holder)
	}
	if info.Writer != -1 {
		t.Errorf("writer = %d on a lock-held abort, want -1", info.Writer)
	}

	// A fresh transaction resets the attribution.
	ok, _ = eng.Run(boot, func(tx *Tx) {})
	if !ok {
		t.Fatal("empty transaction aborted")
	}
	info = eng.LastAbortInfo(boot.ID())
	if info.Holder != -1 || info.Writer != -1 {
		t.Errorf("attribution not reset: %+v", info)
	}
}

func TestLastWriterTracksCommits(t *testing.T) {
	env := detEnv(2)
	a := env.Alloc(1)
	if got := env.LastWriter(memsim.LineOf(a)); got != -1 {
		t.Fatalf("LastWriter of untouched line = %d, want -1", got)
	}
	env.Run(func(th *memsim.Thread) {
		if th.ID() == 1 {
			th.Store(a, 9)
		}
	})
	if got := env.LastWriter(memsim.LineOf(a)); got != 1 {
		t.Fatalf("LastWriter = %d, want 1", got)
	}
}
