package htm

import (
	"testing"

	"hcf/internal/memsim"
)

// TestExploredTransactionsStayAtomic drives transactional increments under
// adversarial schedule exploration. Forced preemptions land inside the
// speculation window — between a transactional load and the matching store,
// or between the commit's lock acquisition and its write-back — exactly
// where a TL2 implementation bug (stale read validation, torn write-back,
// leaked write lock) would surface as a lost or duplicated increment.
// Retried-until-commit transactions must still sum exactly.
func TestExploredTransactionsStayAtomic(t *testing.T) {
	const threads, perThread = 6, 60
	for seed := uint64(0); seed < 10; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 64, JitterClass: 3},
		})
		eng := New(env, Config{})
		a := env.Alloc(1)
		conflicts := 0
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < perThread; i++ {
				for {
					ok, reason := eng.Run(th, func(tx *Tx) {
						tx.Store(a, tx.Load(a)+1)
					})
					if ok {
						break
					}
					if reason == ReasonConflict {
						conflicts++
					}
				}
			}
		})
		if got := env.Boot().Load(a); got != threads*perThread {
			t.Fatalf("seed %d: counter = %d, want %d (transaction atomicity broken)",
				seed, got, threads*perThread)
		}
	}
}

// TestExploredCommitStampsStayMonotonic pins the witness foundation under
// exploration: commit stamps observed by a single thread across its own
// committed transactions must strictly increase, no matter how the
// scheduler interleaves the global-clock ticks.
func TestExploredCommitStampsStayMonotonic(t *testing.T) {
	const threads, perThread = 5, 40
	for seed := uint64(0); seed < 6; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: threads,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 48, JitterClass: 2},
		})
		eng := New(env, Config{})
		a := env.Alloc(1)
		stamps := make([][]uint64, threads)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < perThread; i++ {
				for {
					ok, _ := eng.Run(th, func(tx *Tx) {
						tx.Store(a, tx.Load(a)+1)
					})
					if ok {
						break
					}
				}
				stamps[th.ID()] = append(stamps[th.ID()], eng.CommitStamp(th.ID()))
			}
		})
		for tid, s := range stamps {
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					t.Fatalf("seed %d: thread %d commit stamps not increasing: %d then %d",
						seed, tid, s[i-1], s[i])
				}
			}
		}
	}
}
