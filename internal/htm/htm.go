// Package htm implements a software transactional engine with the semantics
// of best-effort hardware transactional memory over the memsim substrate.
//
// The paper's HCF framework relies only on the observable HTM contract:
//
//   - transactions commit atomically or abort with no visible effects;
//   - a transaction aborts when another thread writes a line it has read
//     (conflict), including the data-structure lock word it subscribed to
//     (lock elision);
//   - transactions abort when they exceed a cache-sized capacity;
//   - transactions can abort themselves explicitly;
//   - reads never observe inconsistent state (opacity).
//
// The engine provides exactly this contract using the TL2 algorithm: a
// global version clock, per-line versioned write locks, invisible readers
// with per-access validation, buffered writes, and commit-time lock
// acquisition with read-set validation. Capacity is accounted in distinct
// cache lines, mirroring an L1-bounded HTM such as Intel TSX. Abort reasons
// are reported with the taxonomy the paper's trial budgets (and the SCM
// baseline) key on.
package htm

import (
	"fmt"

	"hcf/internal/memsim"
)

// Reason classifies why a transaction aborted.
type Reason uint8

// Abort reasons. ReasonNone means the transaction committed.
const (
	ReasonNone Reason = iota
	// ReasonConflict: another thread committed a write to a line in the
	// read set, or a needed line lock was held.
	ReasonConflict
	// ReasonCapacity: the read or write footprint exceeded the configured
	// cache-sized budget.
	ReasonCapacity
	// ReasonLockHeld: the transaction subscribed to a lock that was (or
	// became) held — the lock-elision abort path.
	ReasonLockHeld
	// ReasonExplicit: the transaction body requested an abort.
	ReasonExplicit
	// ReasonInjected: a test-configured forced abort.
	ReasonInjected
	// ReasonNoise: a spurious abort from the noise model (real HTM aborts
	// sporadically on interrupts and microarchitectural events, with
	// probability growing in the transaction's footprint).
	ReasonNoise

	numReasons = iota
)

// NumReasons is the number of distinct abort reasons (for stats arrays).
const NumReasons = numReasons

// String returns a short human-readable name.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonConflict:
		return "conflict"
	case ReasonCapacity:
		return "capacity"
	case ReasonLockHeld:
		return "lock-held"
	case ReasonExplicit:
		return "explicit"
	case ReasonInjected:
		return "injected"
	case ReasonNoise:
		return "noise"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Config tunes the engine. Zero fields take defaults.
type Config struct {
	// MaxReadLines bounds the distinct cache lines a transaction may read.
	MaxReadLines int
	// MaxWriteLines bounds the distinct cache lines a transaction may
	// write (models the L1-bound write set of real HTM).
	MaxWriteLines int
	// BeginCost, CommitCost and AbortCost are cycle charges modelling the
	// fixed overheads of starting, committing and aborting a hardware
	// transaction.
	BeginCost, CommitCost, AbortCost int64
	// InjectAbortEvery, when positive, forces every Nth transaction of
	// each thread to abort at commit with ReasonInjected (failure
	// injection for tests).
	InjectAbortEvery uint64
	// NoisePPMPerLine is the spurious-abort probability per accessed cache
	// line, in parts per million, drawn deterministically per thread at
	// commit time. 0 disables noise. The experiment harness defaults it to
	// 500 (0.05% per line), so a 2-line transaction aborts spuriously
	// ~0.1% of the time and a 60-line combining transaction ~3%.
	NoisePPMPerLine uint64
}

func (c *Config) normalize() {
	if c.MaxReadLines == 0 {
		c.MaxReadLines = 8192
	}
	if c.MaxWriteLines == 0 {
		c.MaxWriteLines = 512
	}
	if c.BeginCost == 0 {
		c.BeginCost = 12
	}
	if c.CommitCost == 0 {
		c.CommitCost = 20
	}
	if c.AbortCost == 0 {
		c.AbortCost = 40
	}
}

// Stats counts one thread's transactional activity.
type Stats struct {
	Started uint64
	Commits uint64
	Aborts  [NumReasons]uint64
}

// TotalAborts sums aborts across reasons.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborts {
		n += a
	}
	return n
}

// Merge adds o into s.
func (s *Stats) Merge(o *Stats) {
	s.Started += o.Started
	s.Commits += o.Commits
	for i := range s.Aborts {
		s.Aborts[i] += o.Aborts[i]
	}
}

// AbortInfo attributes a transaction abort to its cause: for conflict
// aborts, the cache line whose version check failed and the thread that
// last committed a write to it; for lock-subscription aborts, the thread
// holding the subscribed lock. Fields not applicable to the abort reason
// are -1 (threads) or 0 (line). Valid from the abort until the thread's
// next transaction begins.
type AbortInfo struct {
	// Line is the conflicting cache line (conflict aborts).
	Line uint32
	// Writer is the thread whose write invalidated Line, or -1 unknown.
	Writer int
	// Holder is the thread holding the subscribed lock at abort time
	// (lock-subscription aborts via AbortLockHeldBy), or -1 unknown.
	Holder int
}

// TxObserver receives the outcome of every finished transaction attempt:
// the thread, the abort reason (ReasonNone on commit), and the attempt's
// duration in the environment's time unit (virtual cycles or wall
// nanoseconds). Observers run inline on the transaction path and must be
// cheap; nil disables observation with only a nil check left behind.
type TxObserver func(t int, reason Reason, duration int64)

// Engine runs transactions for the threads of one environment.
type Engine struct {
	env   memsim.Env
	cfg   Config
	txs   []Tx
	stats []Stats
	obs   TxObserver
}

// SetObserver installs a transaction-outcome observer (nil disables).
func (e *Engine) SetObserver(obs TxObserver) { e.obs = obs }

// New creates an engine for env.
func New(env memsim.Env, cfg Config) *Engine {
	cfg.normalize()
	total := env.NumThreads() + 1 // + bootstrap thread
	e := &Engine{
		env:   env,
		cfg:   cfg,
		txs:   make([]Tx, total),
		stats: make([]Stats, total),
	}
	for i := range e.txs {
		tx := &e.txs[i]
		tx.eng = e
		tx.rindex = newU32index(64)
		tx.windex = newU32index(32)
		tx.wlineIdx = newU32index(32)
		tx.noise = uint64(i+1) * 0x5851F42D4C957F2D
	}
	return e
}

// Env returns the engine's environment.
func (e *Engine) Env() memsim.Env { return e.env }

// Stats returns thread t's transaction counters.
func (e *Engine) Stats(t int) *Stats { return &e.stats[t] }

// LastAbortInfo returns the attribution of thread t's most recent abort.
// It is meaningful only after Run reported an abort and before t's next
// transaction begins.
func (e *Engine) LastAbortInfo(t int) AbortInfo { return e.txs[t].abortInfo }

// CommitStamp returns the serialization stamp of thread t's most recent
// committed transaction: commits are totally ordered by stamp, and a
// committed reader's stamp orders it after every writer whose effects it
// observed. Used by the linearizability witness machinery.
func (e *Engine) CommitStamp(t int) uint64 { return e.txs[t].stamp }

// LockStamp draws a serialization stamp for an operation applied directly
// (under a lock) by thread th: it ticks the global version clock, so every
// later transaction snapshot orders after it.
func LockStamp(th *memsim.Thread) uint64 { return th.Env().TickClock() << 1 }

// TotalStats aggregates all threads' counters.
func (e *Engine) TotalStats() Stats {
	var total Stats
	for i := range e.stats {
		total.Merge(&e.stats[i])
	}
	return total
}

// ResetStats zeroes all counters.
func (e *Engine) ResetStats() {
	for i := range e.stats {
		e.stats[i] = Stats{}
	}
}

// txAbort is the control-flow signal used internally for aborts.
type txAbort struct{ reason Reason }

type wentry struct {
	addr memsim.Addr
	val  uint64
}

type span struct {
	addr  memsim.Addr
	words int32
}

// rline is one read-set entry: a cache line and the version observed when
// it was first read. Entries are kept in first-read order, which makes
// commit-time validation (and conflict attribution on a failed validation)
// deterministic — unlike the map iteration it replaces.
type rline struct {
	line uint32
	ver  uint64
}

// Tx is an in-flight transaction. It implements memsim.Ctx so sequential
// data-structure code runs unmodified inside a transaction. A Tx is only
// valid within the body passed to Engine.Run.
type Tx struct {
	eng    *Engine
	th     *memsim.Thread
	rv     uint64
	active bool

	// The read set, write buffer and write-line set live in pooled,
	// generation-cleared open-addressing tables (see lineset.go) so that a
	// steady-state transaction attempt allocates nothing.
	rlines    []rline  // read lines in first-read order
	rindex    u32index // line -> index into rlines
	writes    []wentry // buffered writes in program order
	windex    u32index // word address -> index into writes
	wlineList []uint32 // written lines in first-write order
	wlineIdx  u32index // line -> 1 (membership)

	locked    []uint32 // lines locked during commit
	lockedOld []uint64 // their pre-lock metadata
	allocs    []span
	frees     []span
	noise     uint64 // deterministic per-thread noise generator state
	stamp     uint64 // serialization stamp of the last commit
	abortInfo AbortInfo
}

// noiseDraw advances the thread's splitmix64 noise generator.
func (tx *Tx) noiseDraw() uint64 {
	tx.noise += 0x9E3779B97F4A7C15
	z := tx.noise
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

var _ memsim.Ctx = (*Tx)(nil)

// Thread returns the executing thread.
func (tx *Tx) Thread() *memsim.Thread { return tx.th }

func (tx *Tx) begin(th *memsim.Thread) {
	tx.th = th
	tx.active = true
	tx.rv = tx.eng.env.ReadClock()
	tx.rlines = tx.rlines[:0]
	tx.rindex.reset()
	tx.writes = tx.writes[:0]
	tx.windex.reset()
	tx.wlineList = tx.wlineList[:0]
	tx.wlineIdx.reset()
	tx.locked = tx.locked[:0]
	tx.lockedOld = tx.lockedOld[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.abortInfo = AbortInfo{Writer: -1, Holder: -1}
}

// abort unwinds the transaction with the given reason.
func (tx *Tx) abort(r Reason) {
	panic(txAbort{reason: r})
}

// abortConflict records the conflicting line and its last committed writer,
// then unwinds with ReasonConflict. Attribution reads only bookkeeping the
// substrate already maintains, so it charges no simulated cost.
func (tx *Tx) abortConflict(line uint32) {
	tx.abortInfo.Line = line
	tx.abortInfo.Writer = tx.eng.env.LastWriter(line)
	tx.abort(ReasonConflict)
}

// Abort explicitly aborts the transaction.
func (tx *Tx) Abort() { tx.abort(ReasonExplicit) }

// AbortLockHeld aborts with the lock-subscription reason; engines call it
// when a subscribed lock is observed held.
func (tx *Tx) AbortLockHeld() { tx.abort(ReasonLockHeld) }

// AbortLockHeldBy is AbortLockHeld with attribution: holder names the
// thread observed holding the subscribed lock (-1 unknown). Engines use it
// when a tracer wants lock-subscription aborts attributed.
func (tx *Tx) AbortLockHeldBy(holder int) {
	tx.abortInfo.Holder = holder
	tx.abort(ReasonLockHeld)
}

// Load reads a word speculatively. The read is validated against the
// transaction's snapshot; an inconsistency aborts immediately (opacity).
func (tx *Tx) Load(a memsim.Addr) uint64 {
	if i, ok := tx.windex.get(uint32(a)); ok {
		tx.th.Work(1) // served from the write buffer / store queue
		return tx.writes[i].val
	}
	env := tx.eng.env
	line := memsim.LineOf(a)
	m := env.LoadMeta(line)
	if memsim.MetaLocked(m) || memsim.MetaVersion(m) > tx.rv {
		tx.abortConflict(line)
	}
	env.Access(tx.th.ID(), line, false)
	v := env.LoadWord(a)
	if env.LoadMeta(line) != m {
		tx.abortConflict(line)
	}
	if _, seen := tx.rindex.get(line); !seen {
		if len(tx.rlines) >= tx.eng.cfg.MaxReadLines {
			tx.abort(ReasonCapacity)
		}
		tx.rindex.put(line, int32(len(tx.rlines)))
		tx.rlines = append(tx.rlines, rline{line: line, ver: memsim.MetaVersion(m)})
	}
	return v
}

// Store buffers a speculative write; it becomes visible only at commit.
func (tx *Tx) Store(a memsim.Addr, v uint64) {
	if i, ok := tx.windex.get(uint32(a)); ok {
		tx.writes[i].val = v
		tx.th.Work(1)
		return
	}
	line := memsim.LineOf(a)
	if _, seen := tx.wlineIdx.get(line); !seen {
		if len(tx.wlineList) >= tx.eng.cfg.MaxWriteLines {
			tx.abort(ReasonCapacity)
		}
		tx.wlineIdx.put(line, 1)
		tx.wlineList = append(tx.wlineList, line)
	}
	tx.windex.put(uint32(a), int32(len(tx.writes)))
	tx.writes = append(tx.writes, wentry{addr: a, val: v})
	tx.th.Work(1)
}

// Alloc allocates arena words. The span is reclaimed automatically if the
// transaction aborts.
func (tx *Tx) Alloc(words int) memsim.Addr {
	a := tx.eng.env.Alloc(words)
	tx.allocs = append(tx.allocs, span{addr: a, words: int32(words)})
	return a
}

// Free schedules a span for release when (and only when) the transaction
// commits.
func (tx *Tx) Free(a memsim.Addr, words int) {
	tx.frees = append(tx.frees, span{addr: a, words: int32(words)})
}

// commit attempts to make the transaction's writes visible atomically.
// It aborts (by panicking) on validation failure.
func (tx *Tx) commit() {
	env := tx.eng.env
	t := tx.th.ID()
	cfg := &tx.eng.cfg
	if cfg.InjectAbortEvery > 0 && tx.eng.stats[t].Started%cfg.InjectAbortEvery == 0 {
		tx.abort(ReasonInjected)
	}
	if cfg.NoisePPMPerLine > 0 {
		lines := uint64(len(tx.rlines) + len(tx.wlineList))
		if tx.noiseDraw()%1_000_000 < lines*cfg.NoisePPMPerLine {
			tx.abort(ReasonNoise)
		}
	}
	tx.th.Work(cfg.CommitCost)
	if len(tx.writes) == 0 {
		// Read-only transactions are already consistent at snapshot rv,
		// but deferred frees still take effect on commit. A read-only
		// transaction serializes just after any writer with wv == rv
		// (whose effects it saw), hence the odd stamp.
		tx.stamp = tx.rv<<1 | 1
		for _, f := range tx.frees {
			env.Free(f.addr, int(f.words))
		}
		return
	}
	// Phase 1: lock the write set (bounded try-lock; no deadlock).
	for _, line := range tx.wlineList {
		acquired := false
		for attempt := 0; attempt < 4; attempt++ {
			m := env.LoadMeta(line)
			if memsim.MetaLocked(m) {
				tx.th.Yield()
				continue
			}
			if env.CASMeta(line, m, m|1) {
				tx.locked = append(tx.locked, line)
				tx.lockedOld = append(tx.lockedOld, m)
				acquired = true
				break
			}
		}
		if !acquired {
			tx.abortConflict(line)
		}
	}
	wv := env.TickClock()
	tx.stamp = wv << 1
	// Phase 2: validate the read set, in first-read order.
	for _, r := range tx.rlines {
		m := env.LoadMeta(r.line)
		if memsim.MetaLocked(m) {
			if _, mine := tx.wlineIdx.get(r.line); !mine {
				tx.abortConflict(r.line)
			}
		}
		if memsim.MetaVersion(m) != r.ver {
			tx.abortConflict(r.line)
		}
	}
	// Phase 3: write back and release with the new version.
	for _, line := range tx.wlineList {
		env.Access(t, line, true)
	}
	for _, w := range tx.writes {
		env.StoreWord(w.addr, w.val)
	}
	newMeta := memsim.MakeMeta(wv)
	for _, line := range tx.wlineList {
		env.StoreMeta(t, line, newMeta)
	}
	tx.locked = tx.locked[:0]
	for _, f := range tx.frees {
		env.Free(f.addr, int(f.words))
	}
}

// rollback undoes partial commit state after an abort.
func (tx *Tx) rollback() {
	env := tx.eng.env
	for i, line := range tx.locked {
		env.StoreMeta(-1, line, tx.lockedOld[i])
	}
	tx.locked = tx.locked[:0]
	for _, a := range tx.allocs {
		env.Free(a.addr, int(a.words))
	}
	tx.th.Work(tx.eng.cfg.AbortCost)
}

// Run executes body as one speculative transaction on thread th and reports
// whether it committed, and the abort reason otherwise. The body may be
// retried by the caller; it must confine its side effects to the Tx (and to
// attempt-local state the caller resets between attempts), exactly as
// hardware-transaction bodies must.
func (e *Engine) Run(th *memsim.Thread, body func(tx *Tx)) (bool, Reason) {
	t := th.ID()
	tx := &e.txs[t]
	if tx.active {
		panic("htm: nested transactions are not supported")
	}
	e.stats[t].Started++
	var obsStart int64
	if e.obs != nil {
		obsStart = th.Now()
	}
	th.Work(e.cfg.BeginCost)
	tx.begin(th)
	reason := func() (r Reason) {
		defer func() {
			if p := recover(); p != nil {
				if a, ok := p.(txAbort); ok {
					r = a.reason
					return
				}
				tx.active = false
				panic(p)
			}
		}()
		body(tx)
		tx.commit()
		return ReasonNone
	}()
	tx.active = false
	if reason == ReasonNone {
		e.stats[t].Commits++
	} else {
		tx.rollback()
		e.stats[t].Aborts[reason]++
	}
	if e.obs != nil {
		e.obs(t, reason, th.Now()-obsStart)
	}
	return reason == ReasonNone, reason
}
