package htm

import (
	"testing"

	"hcf/internal/memsim"
)

func detEnv(threads int) *memsim.DetEnv {
	return memsim.NewDet(memsim.DetConfig{Threads: threads})
}

func TestCommitMakesWritesVisible(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	a := env.Alloc(2)
	boot := env.Boot()
	ok, reason := eng.Run(boot, func(tx *Tx) {
		tx.Store(a, 11)
		tx.Store(a+1, 22)
	})
	if !ok {
		t.Fatalf("commit failed: %v", reason)
	}
	if got := boot.Load(a); got != 11 {
		t.Errorf("word 0 = %d, want 11", got)
	}
	if got := boot.Load(a + 1); got != 22 {
		t.Errorf("word 1 = %d, want 22", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	a := env.Alloc(1)
	boot := env.Boot()
	boot.Store(a, 7)
	ok, reason := eng.Run(boot, func(tx *Tx) {
		tx.Store(a, 99)
		tx.Abort()
	})
	if ok || reason != ReasonExplicit {
		t.Fatalf("expected explicit abort, got ok=%v reason=%v", ok, reason)
	}
	if got := boot.Load(a); got != 7 {
		t.Errorf("aborted write leaked: %d", got)
	}
}

func TestReadOwnWrites(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	a := env.Alloc(1)
	boot := env.Boot()
	boot.Store(a, 1)
	ok, _ := eng.Run(boot, func(tx *Tx) {
		tx.Store(a, 2)
		if got := tx.Load(a); got != 2 {
			t.Errorf("read-own-write = %d, want 2", got)
		}
		tx.Store(a, 3)
		if got := tx.Load(a); got != 3 {
			t.Errorf("second read-own-write = %d, want 3", got)
		}
	})
	if !ok {
		t.Fatal("commit failed")
	}
	if got := boot.Load(a); got != 3 {
		t.Errorf("final value = %d, want 3", got)
	}
}

func TestLoadAbortsOnNewerVersion(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	a := env.Alloc(1)
	b := env.Alloc(WordsPerLineWords()) // force a different line
	boot := env.Boot()
	ok, reason := eng.Run(boot, func(tx *Tx) {
		_ = tx.Load(a)
		// A direct store from "elsewhere" (here: same thread, but outside
		// the transaction's snapshot) bumps b's line past the snapshot.
		boot.Store(b, 5)
		_ = tx.Load(b) // must abort: version is newer than the snapshot
		t.Error("load of newer version did not abort")
	})
	if ok || reason != ReasonConflict {
		t.Fatalf("expected conflict abort, got ok=%v reason=%v", ok, reason)
	}
}

// WordsPerLineWords re-exports the line size for test readability.
func WordsPerLineWords() int { return memsim.WordsPerLine }

func TestConflictingWritersOneAborts(t *testing.T) {
	env := detEnv(2)
	eng := New(env, Config{})
	a := env.Alloc(1)
	commits := make([]bool, 2)
	reasons := make([]Reason, 2)
	env.Run(func(th *memsim.Thread) {
		ok, r := eng.Run(th, func(tx *Tx) {
			v := tx.Load(a)
			th.Work(500) // widen the race window so both overlap
			tx.Store(a, v+1)
		})
		commits[th.ID()] = ok
		reasons[th.ID()] = r
	})
	committed := 0
	for i := range commits {
		if commits[i] {
			committed++
		} else if reasons[i] != ReasonConflict {
			t.Errorf("thread %d aborted with %v, want conflict", i, reasons[i])
		}
	}
	if committed != 1 {
		t.Fatalf("%d transactions committed, want exactly 1", committed)
	}
	if got := env.Boot().Load(a); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}

func TestDirectStoreAbortsSubscribedReader(t *testing.T) {
	// Models lock elision: a transaction reads the lock word; a direct
	// store to it (lock acquisition) must abort the transaction.
	env := detEnv(2)
	eng := New(env, Config{})
	lockWord := env.Alloc(1)
	data := env.Alloc(memsim.WordsPerLine)
	var okTx bool
	var reason Reason
	env.Run(func(th *memsim.Thread) {
		if th.ID() == 0 {
			okTx, reason = eng.Run(th, func(tx *Tx) {
				if tx.Load(lockWord) != 0 {
					tx.AbortLockHeld()
				}
				th.Work(2000) // hold the subscription open
				tx.Store(data, 1)
			})
		} else {
			th.Work(200)
			th.Store(lockWord, 1) // "acquire the lock"
		}
	})
	if okTx {
		t.Fatal("subscribed transaction committed despite lock acquisition")
	}
	if reason != ReasonConflict {
		t.Fatalf("reason = %v, want conflict", reason)
	}
}

func TestCapacityAbortReads(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{MaxReadLines: 4})
	boot := env.Boot()
	addrs := make([]memsim.Addr, 8)
	for i := range addrs {
		addrs[i] = env.Alloc(memsim.WordsPerLine)
	}
	ok, reason := eng.Run(boot, func(tx *Tx) {
		for _, a := range addrs {
			_ = tx.Load(a)
		}
	})
	if ok || reason != ReasonCapacity {
		t.Fatalf("expected capacity abort, got ok=%v reason=%v", ok, reason)
	}
}

func TestCapacityAbortWrites(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{MaxWriteLines: 4})
	boot := env.Boot()
	addrs := make([]memsim.Addr, 8)
	for i := range addrs {
		addrs[i] = env.Alloc(memsim.WordsPerLine)
	}
	ok, reason := eng.Run(boot, func(tx *Tx) {
		for i, a := range addrs {
			tx.Store(a, uint64(i))
		}
	})
	if ok || reason != ReasonCapacity {
		t.Fatalf("expected capacity abort, got ok=%v reason=%v", ok, reason)
	}
}

func TestSameLineCountsOnceTowardCapacity(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{MaxReadLines: 1, MaxWriteLines: 1})
	boot := env.Boot()
	a := env.Alloc(memsim.WordsPerLine)
	ok, reason := eng.Run(boot, func(tx *Tx) {
		for w := memsim.Addr(0); w < memsim.WordsPerLine; w++ {
			_ = tx.Load(a + w)
			tx.Store(a+w, 1)
		}
	})
	if !ok {
		t.Fatalf("single-line transaction aborted: %v", reason)
	}
}

func TestInjectedAborts(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{InjectAbortEvery: 2})
	boot := env.Boot()
	a := env.Alloc(1)
	var injected int
	for i := 0; i < 10; i++ {
		ok, reason := eng.Run(boot, func(tx *Tx) {
			tx.Store(a, uint64(i))
		})
		if !ok {
			if reason != ReasonInjected {
				t.Fatalf("unexpected reason %v", reason)
			}
			injected++
		}
	}
	if injected != 5 {
		t.Fatalf("injected %d aborts of 10 transactions, want 5", injected)
	}
}

func TestNoiseAbortsScaleWithFootprint(t *testing.T) {
	env := detEnv(1)
	// 20% per line: a 10-line transaction should abort most of the time.
	eng := New(env, Config{NoisePPMPerLine: 200_000})
	boot := env.Boot()
	addrs := make([]memsim.Addr, 10)
	for i := range addrs {
		addrs[i] = env.Alloc(memsim.WordsPerLine)
	}
	bigAborts, smallAborts := 0, 0
	for i := 0; i < 200; i++ {
		ok, reason := eng.Run(boot, func(tx *Tx) {
			for _, a := range addrs {
				tx.Store(a, uint64(i))
			}
		})
		if !ok {
			if reason != ReasonNoise {
				t.Fatalf("unexpected reason %v", reason)
			}
			bigAborts++
		}
		ok, _ = eng.Run(boot, func(tx *Tx) { tx.Store(addrs[0], 1) })
		if !ok {
			smallAborts++
		}
	}
	if bigAborts == 0 {
		t.Fatal("large transactions never noise-aborted at 20%/line")
	}
	if smallAborts >= bigAborts {
		t.Fatalf("small txs aborted as often as large (%d vs %d)", smallAborts, bigAborts)
	}
	// Noise must be deterministic: a rerun gives identical stats.
	s1 := eng.TotalStats()
	env2 := detEnv(1)
	eng2 := New(env2, Config{NoisePPMPerLine: 200_000})
	boot2 := env2.Boot()
	addrs2 := make([]memsim.Addr, 10)
	for i := range addrs2 {
		addrs2[i] = env2.Alloc(memsim.WordsPerLine)
	}
	for i := 0; i < 200; i++ {
		eng2.Run(boot2, func(tx *Tx) {
			for _, a := range addrs2 {
				tx.Store(a, uint64(i))
			}
		})
		eng2.Run(boot2, func(tx *Tx) { tx.Store(addrs2[0], 1) })
	}
	if s2 := eng2.TotalStats(); s1 != s2 {
		t.Fatalf("noise nondeterministic: %+v vs %+v", s1, s2)
	}
}

func TestAllocReclaimedOnAbort(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	boot := env.Boot()
	var inside memsim.Addr
	ok, _ := eng.Run(boot, func(tx *Tx) {
		inside = tx.Alloc(4)
		tx.Abort()
	})
	if ok {
		t.Fatal("expected abort")
	}
	if got := env.Alloc(4); got != inside {
		t.Fatalf("aborted allocation not reclaimed: %d vs %d", got, inside)
	}
}

func TestFreeDeferredToCommit(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	boot := env.Boot()
	a := env.Alloc(4)
	// Aborted transaction must not free.
	ok, _ := eng.Run(boot, func(tx *Tx) {
		tx.Free(a, 4)
		tx.Abort()
	})
	if ok {
		t.Fatal("expected abort")
	}
	if got := env.Alloc(4); got == a {
		t.Fatal("abort released the span")
	}
	// Committed transaction frees.
	ok, _ = eng.Run(boot, func(tx *Tx) { tx.Free(a, 4) })
	if !ok {
		t.Fatal("commit failed")
	}
	if got := env.Alloc(4); got != a {
		t.Fatalf("committed free not visible: got %d want %d", got, a)
	}
}

func TestStatsCounting(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	boot := env.Boot()
	a := env.Alloc(1)
	for i := 0; i < 3; i++ {
		eng.Run(boot, func(tx *Tx) { tx.Store(a, 1) })
	}
	eng.Run(boot, func(tx *Tx) { tx.Abort() })
	s := eng.Stats(boot.ID())
	if s.Started != 4 || s.Commits != 3 || s.Aborts[ReasonExplicit] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	total := eng.TotalStats()
	if total.Commits != 3 || total.TotalAborts() != 1 {
		t.Fatalf("total stats = %+v", total)
	}
	eng.ResetStats()
	if eng.Stats(boot.ID()).Started != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestNestedRunPanics(t *testing.T) {
	env := detEnv(1)
	eng := New(env, Config{})
	boot := env.Boot()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Run did not panic")
		}
	}()
	eng.Run(boot, func(tx *Tx) {
		eng.Run(boot, func(tx *Tx) {})
	})
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:     "none",
		ReasonConflict: "conflict",
		ReasonCapacity: "capacity",
		ReasonLockHeld: "lock-held",
		ReasonExplicit: "explicit",
		ReasonInjected: "injected",
		ReasonNoise:    "noise",
		Reason(250):    "reason(250)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

// runCounterWorkload increments a shared counter n times per thread with
// retry-until-commit transactions and verifies the exact total.
func runCounterWorkload(t *testing.T, env memsim.Env, perThread int) {
	t.Helper()
	eng := New(env, Config{})
	a := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < perThread; i++ {
			for {
				ok, _ := eng.Run(th, func(tx *Tx) {
					tx.Store(a, tx.Load(a)+1)
				})
				if ok {
					break
				}
				th.Yield()
			}
		}
	})
	want := uint64(env.NumThreads() * perThread)
	if got := env.Boot().Load(a); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestCounterExactDet(t *testing.T) {
	runCounterWorkload(t, detEnv(8), 200)
}

func TestCounterExactReal(t *testing.T) {
	runCounterWorkload(t, memsim.NewReal(memsim.RealConfig{Threads: 8}), 200)
}

// TestBankTransferInvariant checks isolation: concurrent transfers between
// accounts must conserve the total balance at every committed snapshot.
func TestBankTransferInvariant(t *testing.T) {
	const accounts = 16
	const transfers = 300
	for _, mkEnv := range []func() memsim.Env{
		func() memsim.Env { return detEnv(6) },
		func() memsim.Env { return memsim.NewReal(memsim.RealConfig{Threads: 6}) },
	} {
		env := mkEnv()
		eng := New(env, Config{})
		base := env.Alloc(accounts * memsim.WordsPerLine)
		boot := env.Boot()
		addr := func(i int) memsim.Addr { return base + memsim.Addr(i*memsim.WordsPerLine) }
		for i := 0; i < accounts; i++ {
			boot.Store(addr(i), 100)
		}
		env.Run(func(th *memsim.Thread) {
			r := uint64(th.ID()*2654435761 + 12345)
			next := func(n int) int {
				r = r*6364136223846793005 + 1442695040888963407
				return int((r >> 33) % uint64(n))
			}
			for i := 0; i < transfers; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				for {
					ok, _ := eng.Run(th, func(tx *Tx) {
						f := tx.Load(addr(from))
						g := tx.Load(addr(to))
						if f == 0 {
							return
						}
						tx.Store(addr(from), f-1)
						tx.Store(addr(to), g+1)
						// Verify the snapshot is internally consistent.
						if tx.Load(addr(from))+tx.Load(addr(to)) != f+g && from != to {
							t.Error("inconsistent snapshot inside transaction")
						}
					})
					if ok {
						break
					}
					th.Yield()
				}
			}
		})
		var total uint64
		for i := 0; i < accounts; i++ {
			total += boot.Load(addr(i))
		}
		if total != accounts*100 {
			t.Fatalf("total balance = %d, want %d", total, accounts*100)
		}
	}
}

// TestDetTransactionsDeterministic runs a contended transactional workload
// twice and requires identical commit/abort statistics.
func TestDetTransactionsDeterministic(t *testing.T) {
	trace := func() (Stats, uint64) {
		env := detEnv(5)
		eng := New(env, Config{})
		a := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < 100; i++ {
				for {
					ok, _ := eng.Run(th, func(tx *Tx) {
						tx.Store(a, tx.Load(a)+uint64(th.ID())+1)
					})
					if ok {
						break
					}
					th.Yield()
				}
			}
		})
		return eng.TotalStats(), env.Boot().Load(a)
	}
	s1, v1 := trace()
	s2, v2 := trace()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if v1 != v2 {
		t.Fatalf("final values differ: %d vs %d", v1, v2)
	}
}

func TestReadOnlyTransactionCommitsUnderConcurrentWrites(t *testing.T) {
	env := detEnv(2)
	eng := New(env, Config{})
	a := env.Alloc(memsim.WordsPerLine)
	b := env.Alloc(memsim.WordsPerLine)
	boot := env.Boot()
	boot.Store(a, 1)
	boot.Store(b, 1)
	var snapshotsConsistent = true
	env.Run(func(th *memsim.Thread) {
		if th.ID() == 0 {
			for i := 0; i < 50; i++ {
				ok, _ := eng.Run(th, func(tx *Tx) {
					x := tx.Load(a)
					y := tx.Load(b)
					if x != y {
						snapshotsConsistent = false
					}
				})
				_ = ok
			}
		} else {
			for i := 0; i < 50; i++ {
				for {
					ok, _ := eng.Run(th, func(tx *Tx) {
						v := tx.Load(a)
						tx.Store(a, v+1)
						tx.Store(b, v+1)
					})
					if ok {
						break
					}
					th.Yield()
				}
			}
		}
	})
	if !snapshotsConsistent {
		t.Fatal("read-only transaction observed a torn pair")
	}
}
