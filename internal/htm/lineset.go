package htm

// u32index is a small open-addressing hash table from uint32 keys to int32
// values, used for a transaction's read-set, write-buffer and write-line
// indexes. It is built for the begin/load/store/commit hot path:
//
//   - slots are embedded in a flat slice (one cache line holds ~5 slots),
//     probed linearly — no per-entry boxing and no hashing of Go interface
//     values as in the built-in map;
//   - clearing is O(1): each slot is stamped with the generation that wrote
//     it, and reset simply bumps the table generation, so pooled transaction
//     objects start every attempt without touching memory;
//   - the table only grows (doubling), so in steady state begin/load/store/
//     commit perform zero heap allocations.
//
// Keys are arbitrary uint32s (cache-line indexes or word addresses); values
// are small ints (version-table or write-buffer positions). Entries cannot
// be deleted, which with a load factor capped at 3/4 guarantees probe
// termination.
type u32index struct {
	slots []u32slot
	gen   uint32
	count int
}

type u32slot struct {
	gen uint32
	key uint32
	val int32
}

// newU32index returns a table with capacity for at least hint entries
// before the first growth. The table starts at generation 1 so zeroed slots
// are never live.
func newU32index(hint int) u32index {
	size := 16
	for size*3 < hint*4 {
		size *= 2
	}
	return u32index{slots: make([]u32slot, size), gen: 1}
}

// hashU32 is a multiplicative finalizer (Knuth-style with avalanche): cheap
// and well-spread for the dense line/address keys the transaction sees.
func hashU32(k uint32) uint32 {
	k *= 0x9E3779B1
	return k ^ (k >> 16)
}

// reset empties the table in O(1) by advancing the generation.
func (m *u32index) reset() {
	m.count = 0
	m.gen++
	if m.gen == 0 { // generation wrapped: invalidate stale stamps for real
		for i := range m.slots {
			m.slots[i].gen = 0
		}
		m.gen = 1
	}
}

// get returns the value stored under key.
func (m *u32index) get(key uint32) (int32, bool) {
	mask := uint32(len(m.slots) - 1)
	i := hashU32(key) & mask
	for {
		s := &m.slots[i]
		if s.gen != m.gen {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & mask
	}
}

// put inserts key→val. The key must not already be present.
func (m *u32index) put(key uint32, val int32) {
	if (m.count+1)*4 > len(m.slots)*3 {
		m.grow()
	}
	mask := uint32(len(m.slots) - 1)
	i := hashU32(key) & mask
	for m.slots[i].gen == m.gen {
		i = (i + 1) & mask
	}
	m.slots[i] = u32slot{gen: m.gen, key: key, val: val}
	m.count++
}

// grow doubles the table and rehashes the live entries.
func (m *u32index) grow() {
	old := m.slots
	oldGen := m.gen
	m.slots = make([]u32slot, 2*len(old))
	m.gen = 1
	mask := uint32(len(m.slots) - 1)
	for _, s := range old {
		if s.gen != oldGen {
			continue
		}
		i := hashU32(s.key) & mask
		for m.slots[i].gen == m.gen {
			i = (i + 1) & mask
		}
		m.slots[i] = u32slot{gen: m.gen, key: s.key, val: s.val}
	}
}
