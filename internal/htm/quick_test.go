package htm

import (
	"testing"
	"testing/quick"

	"hcf/internal/memsim"
)

// TestQuickSingleThreadTxMatchesModel drives random transactional
// read/write/abort sequences against a plain map model: committed
// transactions apply all their writes, aborted ones none.
func TestQuickSingleThreadTxMatchesModel(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := New(env, Config{})
	boot := env.Boot()
	base := env.Alloc(16 * memsim.WordsPerLine)
	addr := func(i uint8) memsim.Addr {
		return base + memsim.Addr(int(i%16)*memsim.WordsPerLine)
	}
	model := make(map[memsim.Addr]uint64)
	f := func(slots []uint8, vals []uint64, doAbort bool) bool {
		if len(slots) > len(vals) {
			slots = slots[:len(vals)]
		}
		staged := make(map[memsim.Addr]uint64, len(slots))
		ok, reason := eng.Run(boot, func(tx *Tx) {
			for i, s := range slots {
				a := addr(s)
				if tx.Load(a) != firstOf(staged, model, a) {
					t.Error("read did not observe staged state")
				}
				tx.Store(a, vals[i])
				staged[a] = vals[i]
			}
			if doAbort {
				tx.Abort()
			}
		})
		if doAbort {
			if ok || reason != ReasonExplicit {
				return false
			}
		} else if !ok {
			return false
		} else {
			for a, v := range staged {
				model[a] = v
			}
		}
		// Memory must equal the model exactly.
		for a, v := range model {
			if boot.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func firstOf(staged, model map[memsim.Addr]uint64, a memsim.Addr) uint64 {
	if v, ok := staged[a]; ok {
		return v
	}
	return model[a]
}

// TestQuickConcurrentCountersUnderNoise runs concurrent counter updates
// with heavy noise aborts; retry loops must still produce exact sums.
func TestQuickConcurrentCountersUnderNoise(t *testing.T) {
	f := func(seed uint8) bool {
		threads := 2 + int(seed%6)
		perThread := 20 + int(seed%40)
		env := memsim.NewDet(memsim.DetConfig{Threads: threads})
		eng := New(env, Config{NoisePPMPerLine: 50_000}) // 5% per line
		a := env.Alloc(1)
		env.Run(func(th *memsim.Thread) {
			for i := 0; i < perThread; i++ {
				for {
					ok, _ := eng.Run(th, func(tx *Tx) {
						tx.Store(a, tx.Load(a)+1)
					})
					if ok {
						break
					}
					th.Yield()
				}
			}
		})
		return env.Boot().Load(a) == uint64(threads*perThread)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCommitStampsTotallyOrderWriters: two sequential writer transactions
// must get strictly increasing stamps, and a reader that starts after a
// writer commits must stamp after it.
func TestCommitStampsTotallyOrderWriters(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := New(env, Config{})
	boot := env.Boot()
	a := env.Alloc(1)
	eng.Run(boot, func(tx *Tx) { tx.Store(a, 1) })
	s1 := eng.CommitStamp(boot.ID())
	eng.Run(boot, func(tx *Tx) { tx.Store(a, 2) })
	s2 := eng.CommitStamp(boot.ID())
	if s2 <= s1 {
		t.Fatalf("writer stamps not increasing: %d then %d", s1, s2)
	}
	eng.Run(boot, func(tx *Tx) { _ = tx.Load(a) })
	s3 := eng.CommitStamp(boot.ID())
	if s3 <= s2 {
		t.Fatalf("reader stamp %d does not order after writer %d", s3, s2)
	}
}

// TestLockStampOrdersAfterPriorCommits: a lock-path stamp must exceed any
// earlier transactional stamp.
func TestLockStampOrdersAfterPriorCommits(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	eng := New(env, Config{})
	boot := env.Boot()
	a := env.Alloc(1)
	eng.Run(boot, func(tx *Tx) { tx.Store(a, 1) })
	txStamp := eng.CommitStamp(boot.ID())
	lockStamp := LockStamp(boot)
	if lockStamp <= txStamp {
		t.Fatalf("lock stamp %d not after tx stamp %d", lockStamp, txStamp)
	}
}
