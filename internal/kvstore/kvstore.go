// Package kvstore is a Bitcask-style persistent key/value engine built
// on the native HCF backend: a sharded in-memory hash index
// (internal/native/hashtable behind per-shard native frameworks) maps
// uint64 keys to offsets in a per-shard append-only log, and the
// combiner's RunMulti batch boundary doubles as the write-ahead log's
// group-commit boundary — one serialized append and one fsync per
// combined batch, however many puts and deletes the combiner claimed.
//
// That identity is the point of the package: flat combining batches
// conflicting operations behind one lock holder, and group commit
// batches log appends behind one fsync. They are the same amortization.
// The source paper's combining pipeline, pointed at durability, turns a
// ~145µs-per-op fsync tax into ~145µs per *batch*; under G concurrent
// writers the per-op flush cost drops by up to G with no queueing layer
// beyond the publication slots the framework already has.
//
// Consistency model: an operation is acknowledged (its Execute returns)
// only after the batch containing it has been flushed, so every
// acknowledged write is durable. Index updates happen inside the same
// seqlock critical section after the log append's write syscall, so a
// concurrent reader that observes a new offset can always read those
// bytes back (the write is sequenced before the index store, and the
// reader's validated load orders after it); such a reader may observe a
// write that is on its way to disk but not yet fsync'd — standard group
// commit visibility. Crash recovery replays each shard log in order,
// truncating a torn tail at the first CRC failure, and rebuilds an
// index state-identical to the pre-crash one (IndexDump verifies this
// bit-for-bit in the tests and the harness figure).
package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"hcf/internal/metrics"
	"hcf/internal/native"
	"hcf/internal/native/hashtable"
	"hcf/internal/route"
)

// Operation classes (indexes into each shard's policy slice).
const (
	// ClassGet looks a key up (read-only, speculates).
	ClassGet = iota
	// ClassPut inserts or updates a key (always combines: group commit).
	ClassPut
	// ClassDelete removes a key (always combines: group commit).
	ClassDelete
	numClasses
)

// Config configures a Store. The zero value is usable: 4 shards, 64K
// keys per shard, fsync on every group commit.
type Config struct {
	// Shards is the number of independent index+log shards (rounded up
	// to a power of two). 0 defaults to 4.
	Shards int
	// Capacity is the per-shard index capacity in keys. The index does
	// not grow; size it to at least 2x the expected live keys per shard.
	// 0 defaults to 1<<16.
	Capacity int
	// MaxHandles bounds concurrent handles per shard framework.
	// 0 defaults to max(8, 4*GOMAXPROCS).
	MaxHandles int
	// TryPrivate budgets read speculation for gets. 0 defaults to 8.
	// Puts and deletes never speculate: holding the seqlock across an
	// fsync would stall the shard, and solo commits defeat group commit.
	TryPrivate int
	// MaxValue caps value length in bytes. 0 defaults to 1<<20.
	MaxValue int
	// CommitDelay is the group-commit delay in scheduler yields: a
	// combiner about to pay a flush yields this many times first so
	// concurrent writers can announce and share the fsync. 0 defaults
	// to 16; set negative to disable. A yield costs well under a
	// microsecond against a ~100µs flush, so generous is cheap.
	CommitDelay int
	// DisableSync skips the fsync at each group-commit boundary. Only
	// for tests and benchmarks that measure the batching machinery
	// itself; a crash can then lose acknowledged writes.
	DisableSync bool
}

func (c Config) normalize() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.MaxHandles <= 0 {
		c.MaxHandles = 4 * runtime.GOMAXPROCS(0)
		if c.MaxHandles < 8 {
			c.MaxHandles = 8
		}
	}
	if c.TryPrivate <= 0 {
		c.TryPrivate = 8
	}
	if c.MaxValue <= 0 {
		c.MaxValue = 1 << 20
	}
	if c.CommitDelay == 0 {
		c.CommitDelay = 16
	} else if c.CommitDelay < 0 {
		c.CommitDelay = 0
	}
	return c
}

// shard is one index+log pair with its own framework: combiners on
// different shards flush in parallel.
type shard struct {
	tab         *hashtable.Table
	fw          *native.Framework
	f           *os.File
	disableSync bool
	maxValue    int
	// size is the log length == next append offset. Mutated only inside
	// the shard's seqlock critical sections; atomic so gauges can poll.
	size atomic.Int64
	// staging carries put values from owner goroutines into the
	// combiner, indexed by handle ID (Op has only two uint64 operands).
	// The publication slot's release/acquire status transitions order
	// these bytes between owner and combiner.
	staging [][]byte
	// buf and offs are combiner-only scratch: the serialized batch and
	// each operation's assigned offset.
	buf  []byte
	offs []int64

	// Group-commit metrics. batchOps[c] is the number of class-c
	// operations per combined batch; flushNS is the wall time of the
	// append+fsync pair; flushes counts group commits (fsync calls when
	// syncing is enabled).
	batchOps [numClasses]metrics.Histogram
	flushNS  metrics.Histogram
	flushes  atomic.Uint64
	bytes    atomic.Uint64
}

// Store is the engine: open it with Open, take one Handle per goroutine.
type Store struct {
	cfg    Config
	dir    string
	ring   *route.Ring
	shards []*shard
}

// Open creates or re-opens a store rooted at dir. Existing shard logs
// are replayed to rebuild the in-memory index; a torn tail (crash
// mid-append) is truncated at the first corrupt record. The shard count
// is part of the on-disk layout: reopen with the same Config.Shards.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	ring, err := route.NewUniform(cfg.Shards, cfg.Shards, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	s := &Store{
		cfg:    cfg,
		dir:    dir,
		ring:   ring,
		shards: make([]*shard, cfg.Shards),
	}
	for i := range s.shards {
		sh, err := openShard(filepath.Join(dir, fmt.Sprintf("shard-%03d.log", i)), cfg)
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.f.Close()
			}
			return nil, err
		}
		s.shards[i] = sh
	}
	return s, nil
}

func openShard(path string, cfg Config) (*shard, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	sh := &shard{
		tab:         hashtable.New(cfg.Capacity),
		f:           f,
		staging:     make([][]byte, cfg.MaxHandles),
		disableSync: cfg.DisableSync,
		maxValue:    cfg.MaxValue,
	}
	end, err := replayLog(f, func(kind byte, key uint64, off int64, _ []byte) {
		switch kind {
		case kindPut:
			sh.tab.Put(key, uint64(off))
		case kindDelete:
			sh.tab.Delete(key)
		}
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	sh.size.Store(end)
	pol := make([]native.Policy, numClasses)
	pol[ClassGet] = native.Policy{
		Name: "Get", ReadOnly: true,
		TryPrivate: cfg.TryPrivate, MaxBatch: cfg.MaxHandles,
		Run:      func(op native.Op) uint64 { return sh.tab.Get(op.A) },
		RunMulti: sh.runBatch,
	}
	pol[ClassPut] = native.Policy{
		// TryPrivate 0: a put that won the CAS would hold the shard's
		// seqlock across a solo fsync; announcing instead routes every
		// write through the combiner's group commit. CombineDelay is
		// the commit delay — a write-led combiner waits a few yields so
		// concurrent writers announce and share its flush.
		Name: "Put", TryPrivate: 0, MaxBatch: cfg.MaxHandles,
		CombineDelay: cfg.CommitDelay,
		Run:          sh.applyOne,
		RunMulti:     sh.runBatch,
	}
	pol[ClassDelete] = native.Policy{
		Name: "Delete", TryPrivate: 0, MaxBatch: cfg.MaxHandles,
		CombineDelay: cfg.CommitDelay,
		Run:          sh.applyOne,
		RunMulti:     sh.runBatch,
	}
	fw, err := native.New(native.Config{Policies: pol, MaxHandles: cfg.MaxHandles})
	if err != nil {
		f.Close()
		return nil, err
	}
	sh.fw = fw
	return sh, nil
}

// runBatch is the shared RunMulti for all three classes: the combiner
// claims any announced mix of gets, puts and deletes (help-all), and
// this function turns the batch boundary into the group-commit boundary.
//
// Order of effects, and why it is safe:
//  1. serialize every put/delete in the batch into one buffer, assigning
//     each its final log offset;
//  2. one write(2) appends the buffer — after this, any index offset
//     handed out below is readable via ReadAt;
//  3. one fsync (unless disabled) — the flush whose cost the whole batch
//     shares;
//  4. apply index updates and resolve gets in slot order. Gets batched
//     alongside a put of the same key legally linearize before or after
//     it depending on slot order — any order is correct for concurrent
//     operations.
//
// Results publish (and Execute returns) only after this function — so
// acknowledgement implies durability (step 3 precedes it).
func (sh *shard) runBatch(ops []native.Op, res []uint64, done []bool) {
	if cap(sh.offs) < len(ops) {
		sh.offs = make([]int64, len(ops))
	}
	offs := sh.offs[:len(ops)]
	base := sh.size.Load()
	buf := sh.buf[:0]
	writes := 0
	for i, op := range ops {
		switch op.Class {
		case ClassPut:
			offs[i] = base + int64(len(buf))
			buf = appendRecord(buf, kindPut, op.A, sh.staging[op.B])
			writes++
		case ClassDelete:
			offs[i] = base + int64(len(buf))
			buf = appendRecord(buf, kindDelete, op.A, nil)
			writes++
		}
	}
	if writes > 0 {
		t0 := time.Now()
		if _, err := sh.f.WriteAt(buf, base); err != nil {
			panic(fmt.Sprintf("kvstore: log append failed: %v", err))
		}
		if !sh.disableSync {
			if err := sh.f.Sync(); err != nil {
				panic(fmt.Sprintf("kvstore: log fsync failed: %v", err))
			}
		}
		sh.flushNS.Record(time.Since(t0).Nanoseconds())
		sh.flushes.Add(1)
		sh.bytes.Add(uint64(len(buf)))
		sh.size.Store(base + int64(len(buf)))
	}
	var perClass [numClasses]int64
	for i, op := range ops {
		perClass[op.Class]++
		switch op.Class {
		case ClassGet:
			res[i] = sh.tab.Get(op.A)
		case ClassPut:
			_, replaced := native.Unpack(sh.tab.Put(op.A, uint64(offs[i])))
			res[i] = native.PackBool(replaced)
		case ClassDelete:
			res[i] = sh.tab.Delete(op.A)
		}
		done[i] = true
	}
	for c, n := range perClass {
		if n > 0 {
			sh.batchOps[c].Record(n)
		}
	}
	sh.buf = buf[:0]
}

// applyOne is the single-operation fallback (applyEach path). It is a
// degenerate batch: one record, one append, one flush.
func (sh *shard) applyOne(op native.Op) uint64 {
	ops := [1]native.Op{op}
	var res [1]uint64
	var done [1]bool
	sh.runBatch(ops[:], res[:], done[:])
	return res[0]
}

// Handle is a per-goroutine participant: one native handle per shard.
// Handles are not safe for concurrent use; take one per goroutine.
type Handle struct {
	s  *Store
	hs []*native.Handle
}

// Handle registers a participant. Release it when the goroutine is done.
func (s *Store) Handle() (*Handle, error) {
	h := &Handle{s: s, hs: make([]*native.Handle, len(s.shards))}
	for i, sh := range s.shards {
		nh, err := sh.fw.Handle()
		if err != nil {
			for _, prev := range h.hs[:i] {
				prev.Release()
			}
			return nil, err
		}
		h.hs[i] = nh
	}
	return h, nil
}

// MustHandle is Handle for tests and benchmarks: it panics on exhaustion.
func (s *Store) MustHandle() *Handle {
	h, err := s.Handle()
	if err != nil {
		panic(err)
	}
	return h
}

// Release returns the handle's framework slots.
func (h *Handle) Release() {
	for _, nh := range h.hs {
		nh.Release()
	}
}

// shardOf routes key through the shared internal/route consistent-hash
// ring (one slot per shard: the owner is the top log2(Shards) bits of
// the Fibonacci hash), so the sim-backed sharded engine and the KV
// store use one audited key→shard function.
//
// Log-compatibility note: the key→shard map is part of the on-disk
// layout. This mapping replaced an earlier private one that used bits
// [40, 40+log2(Shards)) of the same Fibonacci product; a store whose
// logs were written under that mapping must be migrated before being
// served by this version — replay every shard log and re-Put each live
// key through a freshly Opened store (single-shard stores need no
// migration: both mappings are the constant 0). Stores created by this
// version re-open unchanged; the recovery replay and the index it
// rebuilds are bit-identical because writes and reads share s.ring.
func (s *Store) shardOf(key uint64) int {
	return s.ring.Owner(key)
}

// Get returns the current value of key, or ok=false if absent. The
// index lookup speculates (validated optimistic read); the value bytes
// are then read from the log outside any critical section — offsets are
// immutable once written, so the read needs no further coordination.
func (h *Handle) Get(key uint64) (val []byte, ok bool, err error) {
	si := h.s.shardOf(key)
	sh := h.s.shards[si]
	off, ok := native.Unpack(h.hs[si].Execute(native.Op{Class: ClassGet, A: key}))
	if !ok {
		return nil, false, nil
	}
	kind, k, v, err := readRecordAt(sh.f, int64(off))
	if err != nil {
		return nil, false, err
	}
	if kind != kindPut || k != key {
		return nil, false, fmt.Errorf("kvstore: index points at wrong record (key %d, offset %d)", key, off)
	}
	return v, true, nil
}

// Put durably stores key=val, returning whether a previous value was
// replaced. It returns only after the group commit containing the write
// has been flushed.
func (h *Handle) Put(key uint64, val []byte) (replaced bool, err error) {
	si := h.s.shardOf(key)
	sh := h.s.shards[si]
	if len(val) > sh.maxValue {
		return false, fmt.Errorf("kvstore: value length %d exceeds cap %d", len(val), sh.maxValue)
	}
	id := h.hs[si].ID()
	sh.staging[id] = append(sh.staging[id][:0], val...)
	r := h.hs[si].Execute(native.Op{Class: ClassPut, A: key, B: uint64(id)})
	return native.UnpackBool(r), nil
}

// Delete durably removes key, returning whether it was present. Like
// Put, it returns only after its group commit has been flushed.
func (h *Handle) Delete(key uint64) (found bool, err error) {
	si := h.s.shardOf(key)
	r := h.hs[si].Execute(native.Op{Class: ClassDelete, A: key})
	return native.UnpackBool(r), nil
}

// Close syncs and closes every shard log. Callers must be quiescent.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len returns the number of live keys across all shards. Safe to poll
// concurrently (per-shard counts are atomic; the sum is a snapshot).
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.tab.Len()
	}
	return n
}

// ShardStat is one shard's occupancy gauge set.
type ShardStat struct {
	Live       int   // live keys in the index
	Tombstones int   // dead index cells awaiting compaction
	LogBytes   int64 // shard log length
}

// Stats is a snapshot of the engine's group-commit behaviour.
type Stats struct {
	Shards []ShardStat
	// Flushes counts group commits (one append+fsync pair each).
	Flushes uint64
	// AppendedBytes is the total bytes written to all logs.
	AppendedBytes uint64
	// BatchOps[c] is the distribution of class-c operations per combined
	// batch — the group-commit depth puts actually achieved.
	BatchOps [numClasses]metrics.HistogramSnapshot
	// FlushNanos is the distribution of append+fsync wall times.
	FlushNanos metrics.HistogramSnapshot
}

// Stats snapshots occupancy and group-commit metrics. Safe to call
// concurrently with operations (histograms are atomic; counts are
// per-shard snapshots).
func (s *Store) Stats() Stats {
	st := Stats{Shards: make([]ShardStat, len(s.shards))}
	for i, sh := range s.shards {
		st.Shards[i] = ShardStat{
			Live:       sh.tab.Len(),
			Tombstones: sh.tab.Tombstones(),
			LogBytes:   sh.size.Load(),
		}
		st.Flushes += sh.flushes.Load()
		st.AppendedBytes += sh.bytes.Load()
		for c := range sh.batchOps {
			snap := sh.batchOps[c].Snapshot()
			st.BatchOps[c].Merge(&snap)
		}
		fs := sh.flushNS.Snapshot()
		st.FlushNanos.Merge(&fs)
	}
	return st
}

// IndexDump serializes the entire in-memory index deterministically:
// shard by shard, (key, offset) pairs in ascending key order. Two
// stores whose indexes are state-identical produce bit-identical dumps,
// which is how the recovery tests and the harness figure verify that
// replay rebuilds exactly the pre-crash index. Callers must be
// quiescent.
func (s *Store) IndexDump() []byte {
	var out []byte
	pairs := make([][2]uint64, 0, 1024)
	for i, sh := range s.shards {
		pairs = pairs[:0]
		sh.tab.Range(func(k, v uint64) bool {
			pairs = append(pairs, [2]uint64{k, v})
			return true
		})
		sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
		out = append(out, fmt.Sprintf("shard %d: %d keys\n", i, len(pairs))...)
		for _, p := range pairs {
			out = append(out, fmt.Sprintf("%d %d\n", p[0], p[1])...)
		}
	}
	return out
}
