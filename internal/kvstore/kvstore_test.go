package kvstore

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testConfig keeps unit tests fast: fsync off except where a test is
// explicitly about durability machinery.
func testConfig() Config {
	return Config{Shards: 4, Capacity: 1 << 12, DisableSync: true}
}

func TestSequentialAgainstMap(t *testing.T) {
	s, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.MustHandle()
	defer h.Release()

	model := map[uint64][]byte{}
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 5000; i++ {
		k := rng.Uint64N(300)
		switch rng.IntN(4) {
		case 0, 1:
			v := make([]byte, rng.IntN(64))
			for j := range v {
				v[j] = byte(rng.Uint64())
			}
			replaced, err := h.Put(k, v)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := model[k]; replaced != want {
				t.Fatalf("op %d: Put(%d) replaced=%v, want %v", i, k, replaced, want)
			}
			model[k] = v
		case 2:
			found, err := h.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if _, want := model[k]; found != want {
				t.Fatalf("op %d: Delete(%d) found=%v, want %v", i, k, found, want)
			}
			delete(model, k)
		default:
			v, ok, err := h.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[k]
			if ok != wantOK || !bytes.Equal(v, want) {
				t.Fatalf("op %d: Get(%d) = (%q,%v), want (%q,%v)", i, k, v, ok, want, wantOK)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
}

func TestEmptyAndLargeValues(t *testing.T) {
	cfg := testConfig()
	cfg.MaxValue = 1 << 10
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.MustHandle()
	defer h.Release()

	if _, err := h.Put(1, nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := h.Get(1)
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: got (%q,%v,%v)", v, ok, err)
	}
	big := make([]byte, 1<<10)
	if _, err := h.Put(2, big); err != nil {
		t.Fatalf("at-cap value rejected: %v", err)
	}
	if _, err := h.Put(3, make([]byte, 1<<10+1)); err == nil {
		t.Fatal("over-cap value accepted")
	}
}

// TestRecoveryBitIdentical is the crash-recovery acceptance check: after
// arbitrary churn, the reopened store's index dump must be bit-identical
// to the pre-close witness dump, and every surviving value must read
// back intact.
func TestRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.MustHandle()
	rng := rand.New(rand.NewPCG(3, 5))
	model := map[uint64][]byte{}
	for i := 0; i < 3000; i++ {
		k := rng.Uint64N(500)
		if rng.IntN(3) < 2 {
			v := []byte(fmt.Sprintf("v%d-%d", k, i))
			h.Put(k, v)
			model[k] = v
		} else {
			h.Delete(k)
			delete(model, k)
		}
	}
	h.Release()
	witness := s.IndexDump()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.IndexDump(); !bytes.Equal(got, witness) {
		t.Fatalf("recovered index dump differs from witness:\n got %d bytes\nwant %d bytes", len(got), len(witness))
	}
	h2 := s2.MustHandle()
	defer h2.Release()
	for k, want := range model {
		v, ok, err := h2.Get(k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("after recovery Get(%d) = (%q,%v,%v), want (%q,true,nil)", k, v, ok, err, want)
		}
	}
	if s2.Len() != len(model) {
		t.Fatalf("recovered Len = %d, model has %d", s2.Len(), len(model))
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage and a
// partial record after the last valid record must be truncated on open,
// with everything before the tear intact.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Shards = 1 // single shard so we know which file to corrupt
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.MustHandle()
	for k := uint64(0); k < 50; k++ {
		h.Put(k, []byte(fmt.Sprintf("val-%d", k)))
	}
	h.Release()
	witness := s.IndexDump()
	s.Close()

	path := filepath.Join(dir, "shard-000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a valid-looking header claiming a 100-byte value,
	// but only 10 bytes of it made it to disk.
	torn := appendRecord(nil, kindPut, 999, make([]byte, 100))
	f.Write(torn[:recHeaderLen+10])
	f.Close()

	s2, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.IndexDump(); !bytes.Equal(got, witness) {
		t.Fatal("index after torn-tail recovery differs from pre-crash witness")
	}
	if _, ok, _ := s2.MustHandle().Get(999); ok {
		t.Fatal("torn record's key visible after recovery")
	}
	// The log must be clean for further appends: write and read back.
	h2 := s2.MustHandle()
	defer h2.Release()
	if _, err := h2.Put(1000, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := h2.Get(1000)
	if err != nil || !ok || string(v) != "after-recovery" {
		t.Fatalf("post-recovery append: got (%q,%v,%v)", v, ok, err)
	}
}

// TestConcurrentGroupCommit drives real fsync-backed group commit from
// several goroutines (run under -race in CI). Disjoint key ranges make
// the final state deterministic; the stats must show group commits
// batching multiple writes per flush or at least flushing every write.
func TestConcurrentGroupCommit(t *testing.T) {
	cfg := Config{Shards: 2, Capacity: 1 << 12} // sync enabled
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const goroutines, opsPer = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := s.MustHandle()
			defer h.Release()
			base := uint64(g) << 32
			for i := uint64(0); i < opsPer; i++ {
				k := base + i
				if _, err := h.Put(k, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := h.Get(k); err != nil || !ok || len(v) == 0 {
					t.Errorf("Get(%d) = (%q,%v,%v) right after Put", k, v, ok, err)
					return
				}
				if i%4 == 3 {
					h.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()

	h := s.MustHandle()
	defer h.Release()
	live := 0
	for g := 0; g < goroutines; g++ {
		base := uint64(g) << 32
		for i := uint64(0); i < opsPer; i++ {
			want := i%4 != 3
			_, ok, err := h.Get(base + i)
			if err != nil {
				t.Fatal(err)
			}
			if ok != want {
				t.Fatalf("key %d/%d present=%v, want %v", g, i, ok, want)
			}
			if ok {
				live++
			}
		}
	}
	if s.Len() != live {
		t.Fatalf("Len = %d, counted %d live", s.Len(), live)
	}

	st := s.Stats()
	totalWrites := uint64(goroutines*opsPer) + uint64(goroutines*opsPer/4)
	if st.Flushes == 0 || st.Flushes >= totalWrites {
		t.Fatalf("Flushes = %d for %d writes: group commit never batched", st.Flushes, totalWrites)
	}
	if st.FlushNanos.Count == 0 || st.BatchOps[ClassPut].Count == 0 {
		t.Fatal("group-commit metrics not recorded")
	}
	t.Logf("writes=%d flushes=%d (amortization %.2f writes/flush)",
		totalWrites, st.Flushes, float64(totalWrites)/float64(st.Flushes))
}

// TestStatsGauges checks the occupancy gauges the serve endpoint polls.
func TestStatsGauges(t *testing.T) {
	s, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.MustHandle()
	defer h.Release()
	for k := uint64(0); k < 100; k++ {
		h.Put(k, []byte("x"))
	}
	for k := uint64(0); k < 50; k++ {
		h.Delete(k)
	}
	st := s.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(st.Shards))
	}
	live, logBytes := 0, int64(0)
	for _, sh := range st.Shards {
		live += sh.Live
		logBytes += sh.LogBytes
	}
	if live != 50 || s.Len() != 50 {
		t.Fatalf("live = %d (Len %d), want 50", live, s.Len())
	}
	if logBytes == 0 || st.AppendedBytes != uint64(logBytes) {
		t.Fatalf("log bytes %d vs appended %d", logBytes, st.AppendedBytes)
	}
}
