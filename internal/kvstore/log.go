// Log record format and replay for the kvstore write-ahead log.
//
// Each shard owns one append-only file of self-describing records:
//
//	kind(1) | key(8 LE) | vlen(4 LE) | value(vlen) | crc32(4 LE)
//
// kind is kindPut or kindDelete (deletes carry vlen=0). The trailing
// CRC-32 (IEEE) covers kind|key|vlen|value, so replay can detect a torn
// tail — a crash mid-append — and truncate the log back to the last
// complete record instead of refusing to open.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

const (
	kindPut    = byte(1)
	kindDelete = byte(2)

	recHeaderLen  = 1 + 8 + 4 // kind + key + vlen
	recTrailerLen = 4         // crc32
)

// appendRecord serializes one record onto buf and returns the extended
// buffer. val must be nil for kindDelete.
func appendRecord(buf []byte, kind byte, key uint64, val []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// recordLen returns the on-disk length of a record with a vlen-byte value.
func recordLen(vlen int) int64 {
	return int64(recHeaderLen + vlen + recTrailerLen)
}

// parseRecord decodes the record at the head of data. It returns
// n == 0 when the bytes are a torn or corrupt tail (incomplete header,
// value running past the buffer, or CRC mismatch) — replay treats that
// as end-of-log.
func parseRecord(data []byte) (kind byte, key uint64, val []byte, n int64) {
	if len(data) < recHeaderLen+recTrailerLen {
		return 0, 0, nil, 0
	}
	kind = data[0]
	if kind != kindPut && kind != kindDelete {
		return 0, 0, nil, 0
	}
	key = binary.LittleEndian.Uint64(data[1:9])
	vlen := int(binary.LittleEndian.Uint32(data[9:13]))
	total := recHeaderLen + vlen + recTrailerLen
	if vlen < 0 || len(data) < total {
		return 0, 0, nil, 0
	}
	want := binary.LittleEndian.Uint32(data[recHeaderLen+vlen:])
	if crc32.ChecksumIEEE(data[:recHeaderLen+vlen]) != want {
		return 0, 0, nil, 0
	}
	return kind, key, data[recHeaderLen : recHeaderLen+vlen], int64(total)
}

// replayLog scans f from the start, calling apply(kind, key, offset,
// value) for every intact record, and returns the offset of the first
// byte past the last intact record. A torn tail is truncated in place so
// subsequent appends extend a clean log.
func replayLog(f *os.File, apply func(kind byte, key uint64, off int64, val []byte)) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil && st.Size() > 0 {
		return 0, fmt.Errorf("kvstore: replay read: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		kind, key, val, n := parseRecord(data[off:])
		if n == 0 {
			break // torn or corrupt tail
		}
		apply(kind, key, off, val)
		off += n
	}
	if off < st.Size() {
		if err := f.Truncate(off); err != nil {
			return 0, fmt.Errorf("kvstore: truncate torn tail: %w", err)
		}
	}
	return off, nil
}

// readRecordAt reads and validates the record starting at off, returning
// its kind, key and a freshly allocated copy of the value.
func readRecordAt(f *os.File, off int64) (kind byte, key uint64, val []byte, err error) {
	var hdr [recHeaderLen]byte
	if _, err = f.ReadAt(hdr[:], off); err != nil {
		return 0, 0, nil, fmt.Errorf("kvstore: record header at %d: %w", off, err)
	}
	vlen := int(binary.LittleEndian.Uint32(hdr[9:13]))
	rest := make([]byte, vlen+recTrailerLen)
	if _, err = f.ReadAt(rest, off+recHeaderLen); err != nil {
		return 0, 0, nil, fmt.Errorf("kvstore: record body at %d: %w", off, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(rest[:vlen])
	if crc.Sum32() != binary.LittleEndian.Uint32(rest[vlen:]) {
		return 0, 0, nil, fmt.Errorf("kvstore: CRC mismatch at offset %d", off)
	}
	return hdr[0], binary.LittleEndian.Uint64(hdr[1:9]), rest[:vlen:vlen], nil
}
