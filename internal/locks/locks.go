// Package locks provides spin locks whose state lives in simulated memory,
// so that speculative transactions can subscribe to them: a transaction that
// reads a lock's words through its Tx context is aborted when the lock is
// subsequently acquired — the mechanism transactional lock elision is built
// on (paper §2.2, line 5 of Figure 1).
package locks

import "hcf/internal/memsim"

// Lock is a mutual-exclusion lock over simulated memory.
//
// Locked reads the lock state through an arbitrary Ctx: passing an htm.Tx
// subscribes the calling transaction to the lock, passing a *memsim.Thread
// performs a direct read.
type Lock interface {
	Lock(th *memsim.Thread)
	Unlock(th *memsim.Thread)
	Locked(c memsim.Ctx) bool
	// WaitUnlocked blocks until the lock is observed free. It charges
	// exactly the cycles of the open-coded wait
	//
	//	for l.Locked(th) { th.Yield() }
	//
	// but lets the deterministic backend park the waiting goroutine
	// passively instead of context-switching through every futile probe.
	WaitUnlocked(th *memsim.Thread)
}

// TATAS is a test-and-test-and-set spin lock: unfair but cheap, the common
// choice for TLE's fallback lock.
type TATAS struct {
	word memsim.Addr
}

var _ Lock = (*TATAS)(nil)

// NewTATAS allocates a TATAS lock in env's arena.
func NewTATAS(env memsim.Env) *TATAS {
	l := &TATAS{word: env.Alloc(1)}
	env.StoreWord(l.word, 0)
	return l
}

// Lock spins until the lock is acquired. The wait between acquisition
// attempts is a passive SpinLoadUntilEq, so only rounds that actually
// observe the lock free wake the waiter's goroutine.
func (l *TATAS) Lock(th *memsim.Thread) {
	for {
		th.SpinLoadUntilEq(l.word, 0)
		if _, ok := th.CAS(l.word, 0, uint64(th.ID())+1); ok {
			return
		}
		th.Yield()
	}
}

// TryLock makes one acquisition attempt and reports whether it succeeded.
func (l *TATAS) TryLock(th *memsim.Thread) bool {
	if th.Load(l.word) != 0 {
		return false
	}
	_, ok := th.CAS(l.word, 0, uint64(th.ID())+1)
	return ok
}

// Unlock releases the lock.
func (l *TATAS) Unlock(th *memsim.Thread) {
	th.Store(l.word, 0)
}

// Locked reports whether the lock is held.
func (l *TATAS) Locked(c memsim.Ctx) bool {
	return c.Load(l.word) != 0
}

// WaitUnlocked blocks until the lock is observed free.
func (l *TATAS) WaitUnlocked(th *memsim.Thread) {
	th.SpinLoadUntilEq(l.word, 0)
}

// WaitUnlockedOr blocks until a coherent load of a observes want (returns
// 0) or — probed second within each round — the lock is observed free
// (returns 1). It charges exactly the cycles of the open-coded wait
//
//	for {
//		if th.Load(a) == want { return 0 }
//		if !l.Locked(th) { return 1 }
//		th.Yield()
//	}
//
// Flat combining's announce-then-wait loop has this shape: wait until
// helped, or until the combiner lock frees up.
func (l *TATAS) WaitUnlockedOr(th *memsim.Thread, a memsim.Addr, want uint64) int {
	return th.SpinUntilEitherEq(a, want, l.word, 0)
}

// Holder returns the thread id holding the lock, or -1.
func (l *TATAS) Holder(c memsim.Ctx) int {
	v := c.Load(l.word)
	if v == 0 {
		return -1
	}
	return int(v) - 1
}

// HolderHint returns the thread id holding the lock, or -1, via a raw
// uncharged read: no cost accounting, no scheduling point, no transaction
// footprint. Observability code uses it to attribute lock-subscription
// aborts without perturbing the run.
func (l *TATAS) HolderHint(env memsim.Env) int {
	v := env.LoadWord(l.word)
	if v == 0 {
		return -1
	}
	return int(v) - 1
}

// HolderHinter is implemented by locks that can cheaply name their current
// holder for conflict attribution (TATAS encodes the holder in the lock
// word; Ticket cannot).
type HolderHinter interface {
	Lock
	HolderHint(env memsim.Env) int
}

// Ticket is a FIFO ticket lock; it is starvation free, which the paper's
// progress argument (§2.3) requires of both the data-structure lock and the
// selection locks for HCF to be starvation free.
type Ticket struct {
	next  memsim.Addr // ticket dispenser (own cache line)
	owner memsim.Addr // now-serving counter (own cache line)
}

var _ Lock = (*Ticket)(nil)

// NewTicket allocates a ticket lock in env's arena. The two counters live on
// separate cache lines to avoid false sharing between arriving and departing
// threads.
func NewTicket(env memsim.Env) *Ticket {
	l := &Ticket{
		next:  env.Alloc(memsim.WordsPerLine),
		owner: env.Alloc(memsim.WordsPerLine),
	}
	env.StoreWord(l.next, 0)
	env.StoreWord(l.owner, 0)
	return l
}

// Lock takes a ticket and waits passively until it is served.
func (l *Ticket) Lock(th *memsim.Thread) {
	ticket := th.Add(l.next, 1)
	th.SpinLoadUntilEq(l.owner, ticket)
}

// Unlock serves the next ticket.
func (l *Ticket) Unlock(th *memsim.Thread) {
	th.Store(l.owner, th.Load(l.owner)+1)
}

// Locked reports whether any thread holds or is queued for the lock. For a
// subscribing transaction this is exactly the conservative condition TLE
// wants: speculation should not proceed while the lock is contended.
func (l *Ticket) Locked(c memsim.Ctx) bool {
	return c.Load(l.owner) != c.Load(l.next)
}

// WaitUnlocked blocks until the lock is observed uncontended. The condition
// compares two loaded words, which the passive-wait primitives cannot
// express, so the wait stays open-coded.
func (l *Ticket) WaitUnlocked(th *memsim.Thread) {
	for l.Locked(th) {
		th.Yield()
	}
}
