package locks

import (
	"testing"

	"hcf/internal/memsim"
)

func lockVariants(env memsim.Env) map[string]Lock {
	return map[string]Lock{
		"tatas":  NewTATAS(env),
		"ticket": NewTicket(env),
	}
}

func TestMutualExclusionDet(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 8})
	for name, l := range lockVariants(env) {
		t.Run(name, func(t *testing.T) {
			counter := env.Alloc(1)
			env.Boot().Store(counter, 0)
			const perThread = 100
			env.Run(func(th *memsim.Thread) {
				for i := 0; i < perThread; i++ {
					l.Lock(th)
					// Unprotected read-modify-write: only safe when the
					// lock provides mutual exclusion.
					v := th.Load(counter)
					th.Work(20)
					th.Store(counter, v+1)
					l.Unlock(th)
				}
			})
			if got := env.Boot().Load(counter); got != 8*perThread {
				t.Fatalf("counter = %d, want %d", got, 8*perThread)
			}
		})
	}
}

func TestMutualExclusionReal(t *testing.T) {
	env := memsim.NewReal(memsim.RealConfig{Threads: 6})
	for name, l := range lockVariants(env) {
		t.Run(name, func(t *testing.T) {
			counter := env.Alloc(1)
			env.Boot().Store(counter, 0)
			const perThread = 300
			env.Run(func(th *memsim.Thread) {
				for i := 0; i < perThread; i++ {
					l.Lock(th)
					v := th.Load(counter)
					th.Store(counter, v+1)
					l.Unlock(th)
				}
			})
			if got := env.Boot().Load(counter); got != 6*perThread {
				t.Fatalf("counter = %d, want %d", got, 6*perThread)
			}
		})
	}
}

func TestLockedReporting(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	boot := env.Boot()
	for name, l := range lockVariants(env) {
		t.Run(name, func(t *testing.T) {
			if l.Locked(boot) {
				t.Fatal("fresh lock reports held")
			}
			l.Lock(boot)
			if !l.Locked(boot) {
				t.Fatal("held lock reports free")
			}
			l.Unlock(boot)
			if l.Locked(boot) {
				t.Fatal("released lock reports held")
			}
		})
	}
}

func TestTATASHolder(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 2})
	l := NewTATAS(env)
	boot := env.Boot()
	if got := l.Holder(boot); got != -1 {
		t.Fatalf("Holder of free lock = %d, want -1", got)
	}
	l.Lock(boot)
	if got := l.Holder(boot); got != boot.ID() {
		t.Fatalf("Holder = %d, want %d", got, boot.ID())
	}
	l.Unlock(boot)
}

func TestTicketFIFOOrder(t *testing.T) {
	const threads = 6
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	l := NewTicket(env)
	ticketOf := make([]uint64, threads)
	order := make([]int, 0, threads)
	seq := env.Alloc(1)
	env.Run(func(th *memsim.Thread) {
		// Stagger arrivals so ticket order is deterministic.
		th.Work(int64(th.ID()) * 10_000)
		ticketOf[th.ID()] = th.Add(l.next, 1)
		for th.Load(l.owner) != ticketOf[th.ID()] {
			th.Yield()
		}
		order = append(order, th.ID())
		th.Store(seq, th.Load(seq)+1)
		th.Store(l.owner, th.Load(l.owner)+1)
	})
	for i := 1; i < threads; i++ {
		if ticketOf[order[i-1]] >= ticketOf[order[i]] {
			t.Fatalf("acquisition order %v violates ticket order %v", order, ticketOf)
		}
	}
}

// TestTicketNoStarvation runs a long contended workload and checks that
// every thread makes progress (each completes all its critical sections).
func TestTicketNoStarvation(t *testing.T) {
	const threads = 10
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	l := NewTicket(env)
	done := make([]bool, threads)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 50; i++ {
			l.Lock(th)
			th.Work(100)
			l.Unlock(th)
		}
		done[th.ID()] = true
	})
	for i, d := range done {
		if !d {
			t.Fatalf("thread %d starved", i)
		}
	}
}

// TestSubscriptionAbortsOnAcquire verifies the lock-elision property: a
// direct observer sees the version of the lock's line change on acquire, so
// a subscribed transaction would be invalidated.
func TestSubscriptionAbortsOnAcquire(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	boot := env.Boot()
	for name, l := range lockVariants(env) {
		t.Run(name, func(t *testing.T) {
			var lines []uint32
			switch lk := l.(type) {
			case *TATAS:
				lines = []uint32{memsim.LineOf(lk.word)}
			case *Ticket:
				lines = []uint32{memsim.LineOf(lk.next)}
			}
			before := make([]uint64, len(lines))
			for i, ln := range lines {
				before[i] = env.LoadMeta(ln)
			}
			l.Lock(boot)
			changed := false
			for i, ln := range lines {
				if env.LoadMeta(ln) != before[i] {
					changed = true
				}
			}
			if !changed {
				t.Fatal("acquiring the lock did not invalidate its line")
			}
			l.Unlock(boot)
		})
	}
}

func TestTATASTryLock(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	l := NewTATAS(env)
	boot := env.Boot()
	if !l.TryLock(boot) {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock(boot) {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock(boot)
	if !l.TryLock(boot) {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock(boot)
}

func TestTicketLockedWhileQueued(t *testing.T) {
	// Locked must report true while threads are queued, which is what a
	// subscribing transaction wants to see.
	env := memsim.NewDet(memsim.DetConfig{Threads: 3})
	l := NewTicket(env)
	sawLocked := false
	env.Run(func(th *memsim.Thread) {
		l.Lock(th)
		th.Work(500)
		if th.ID() == 0 && l.Locked(th) {
			sawLocked = true
		}
		l.Unlock(th)
	})
	if !sawLocked {
		t.Fatal("Locked never observed while held")
	}
}
