package memsim

import "testing"

// TestAccessFastPathZeroAllocs asserts that the deterministic backend's
// charged access path (coherent loads and stores, including the cost model
// and L1 simulation) performs no heap allocations once the touched arena
// pages exist.
func TestAccessFastPathZeroAllocs(t *testing.T) {
	env := NewDet(DetConfig{Threads: 1})
	th := env.Boot()
	a := env.Alloc(WordsPerLine)
	b := env.Alloc(WordsPerLine)
	env.StoreWord(a, 0)
	env.StoreWord(b, 0)

	body := func() {
		th.Store(a, th.Load(a)+1)
		th.Store(b, th.Load(b)+1)
		th.Work(10)
		th.Yield()
	}
	body() // warm up page table and caches
	if avg := testing.AllocsPerRun(100, body); avg != 0 {
		t.Errorf("access fast path allocates %.1f objects per run, want 0", avg)
	}
}

// TestRunSteadyStateAllocs bounds the per-Run setup cost: the scheduler
// itself (heap, handoff channels, passive waits) must not allocate per
// scheduling point — only the goroutine spawns at the start of Run may.
func TestRunSteadyStateAllocs(t *testing.T) {
	env := NewDet(DetConfig{Threads: 2})
	flag := env.Alloc(1)
	env.StoreWord(flag, 0)
	body := func(th *Thread) {
		if th.ID() == 0 {
			for i := 0; i < 50; i++ {
				th.Store(flag, uint64(i%2))
			}
			th.Store(flag, 7)
		} else {
			th.SpinLoadUntilEq(flag, 7)
		}
	}
	env.Run(body) // warm up
	env.ResetStats()
	const runs = 20
	avg := testing.AllocsPerRun(runs, func() {
		env.ResetStats()
		env.Run(body)
	})
	// Each Run spawns NumThreads goroutines; allow a small constant per
	// spawn but nothing proportional to the tens of scheduling points.
	if avg > 8 {
		t.Errorf("Run allocates %.1f objects per invocation, want only per-goroutine setup", avg)
	}
}
