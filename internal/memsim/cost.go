package memsim

// CostParams configures the cycle cost model of the deterministic simulator.
// The defaults approximate the Oracle X5-2 machine used in the paper: 18
// hyper-threaded cores per socket. Absolute values are not calibrated to the
// hardware — only their ratios matter for reproducing the shapes of the
// paper's figures.
type CostParams struct {
	// L1Hit is the cost of an access served by the thread's L1 cache.
	L1Hit int64
	// L1Miss is the cost of a local (capacity/cold) miss.
	L1Miss int64
	// CoherenceMiss is the cost of a miss caused by another core's write
	// (a cache-to-cache transfer).
	CoherenceMiss int64
	// NUMAPenalty is added to coherence misses that cross sockets.
	NUMAPenalty int64
	// YieldCost is charged per spin-loop yield.
	YieldCost int64
	// OpWork models the fixed instruction work per high-level data
	// structure operation outside memory accesses.
	OpWork int64

	// CoresPerSocket and Sockets define the simulated topology. Threads are
	// pinned the way the paper pins them: thread i runs on core
	// i mod (CoresPerSocket*Sockets); thread i and i+cores are SMT siblings.
	CoresPerSocket int
	Sockets        int
	// SMTPenaltyPct inflates a thread's costs by this percentage when its
	// SMT sibling is active (models hyper-threading resource sharing).
	// Zero takes the default; negative disables the penalty.
	SMTPenaltyPct int64

	// L1Sets and L1Ways size the per-thread L1 model. The default
	// 256 sets x 2 ways x 64-byte lines = 32 KiB, matching the paper's CPU.
	L1Sets int
	L1Ways int

	// JitterPct randomizes each charged cost by up to ±JitterPct percent,
	// drawn from a per-thread deterministic generator seeded by
	// DetConfig.Seed. Zero disables jitter. Used for schedule fuzzing:
	// every (JitterPct, Seed) pair yields a different — but exactly
	// reproducible — interleaving of the same workload.
	JitterPct int64
}

// DefaultCostParams returns the cost model used by the paper-reproduction
// experiments: a single 18-core hyper-threaded socket.
func DefaultCostParams() CostParams {
	return CostParams{
		L1Hit:          1,
		L1Miss:         14,
		CoherenceMiss:  50,
		NUMAPenalty:    90,
		YieldCost:      6,
		OpWork:         40,
		CoresPerSocket: 18,
		Sockets:        1,
		SMTPenaltyPct:  45,
		L1Sets:         256,
		L1Ways:         2,
	}
}

// TwoSocketCostParams returns the 2-socket topology used for the 72-thread
// NUMA experiment (Figure 2(b)).
func TwoSocketCostParams() CostParams {
	p := DefaultCostParams()
	p.Sockets = 2
	return p
}

func (p *CostParams) normalize() {
	d := DefaultCostParams()
	if p.L1Hit == 0 {
		p.L1Hit = d.L1Hit
	}
	if p.L1Miss == 0 {
		p.L1Miss = d.L1Miss
	}
	if p.CoherenceMiss == 0 {
		p.CoherenceMiss = d.CoherenceMiss
	}
	if p.NUMAPenalty == 0 {
		p.NUMAPenalty = d.NUMAPenalty
	}
	if p.YieldCost == 0 {
		p.YieldCost = d.YieldCost
	}
	if p.OpWork == 0 {
		p.OpWork = d.OpWork
	}
	if p.CoresPerSocket == 0 {
		p.CoresPerSocket = d.CoresPerSocket
	}
	if p.Sockets == 0 {
		p.Sockets = d.Sockets
	}
	if p.SMTPenaltyPct == 0 {
		p.SMTPenaltyPct = d.SMTPenaltyPct
	} else if p.SMTPenaltyPct < 0 {
		p.SMTPenaltyPct = 0
	}
	if p.L1Sets == 0 {
		p.L1Sets = d.L1Sets
	}
	if p.L1Ways == 0 {
		p.L1Ways = d.L1Ways
	}
}

// totalCores returns the number of physical cores in the topology.
func (p *CostParams) totalCores() int { return p.CoresPerSocket * p.Sockets }

// coreOf returns the physical core a thread is pinned to.
func (p *CostParams) coreOf(thread int) int { return thread % p.totalCores() }

// socketOf returns the socket a thread is pinned to.
func (p *CostParams) socketOf(thread int) int {
	return (p.coreOf(thread) / p.CoresPerSocket) % p.Sockets
}

// smtActive reports whether thread's SMT sibling exists given n running
// threads (the paper pins thread i and i+cores to the same core).
func (p *CostParams) smtActive(thread, n int) bool {
	cores := p.totalCores()
	if thread >= cores {
		return true // the low sibling certainly exists
	}
	return thread+cores < n
}

// l1Cache is a per-thread set-associative cache model with LRU replacement
// within a set. A cached entry is valid only while the line's current
// version matches the version recorded at fill time, which models
// invalidation-based coherence: any committed write to the line (which bumps
// the version) invalidates all other threads' copies.
type l1Cache struct {
	sets int
	ways int
	// tag and version are [sets*ways] arrays; lru holds per-set counters.
	tag  []uint32 // line+1, 0 = empty
	ver  []uint64
	use  []uint64
	tick uint64
}

func newL1Cache(sets, ways int) *l1Cache {
	n := sets * ways
	return &l1Cache{
		sets: sets,
		ways: ways,
		tag:  make([]uint32, n),
		ver:  make([]uint64, n),
		use:  make([]uint64, n),
	}
}

// lookup reports whether line is cached with the given current version.
func (c *l1Cache) lookup(line uint32, version uint64) bool {
	base := int(line) % c.sets * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tag[base+w] == line+1 && c.ver[base+w] == version {
			c.tick++
			c.use[base+w] = c.tick
			return true
		}
	}
	return false
}

// fill installs (line, version), evicting the LRU way of the set.
func (c *l1Cache) fill(line uint32, version uint64) {
	base := int(line) % c.sets * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tag[i] == line+1 { // refresh in place
			victim = i
			break
		}
		if c.use[i] < c.use[victim] {
			victim = i
		}
	}
	c.tick++
	c.tag[victim] = line + 1
	c.ver[victim] = version
	c.use[victim] = c.tick
}

// reset empties the cache.
func (c *l1Cache) reset() {
	for i := range c.tag {
		c.tag[i] = 0
		c.ver[i] = 0
		c.use[i] = 0
	}
	c.tick = 0
}
