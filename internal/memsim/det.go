package memsim

import (
	"container/heap"
	"fmt"
)

const (
	pageShift = 14
	pageWords = 1 << pageShift // 64-bit words per arena page
	pageLines = pageWords / WordsPerLine
)

// detPage is one arena page of the deterministic backend. Plain (non-atomic)
// storage is safe because the scheduler runs exactly one virtual thread at a
// time.
type detPage struct {
	words [pageWords]uint64
	metas [pageLines]uint64
	// lastW records the last thread to commit a write to each line
	// (-1 = none); used by the coherence cost model.
	lastW [pageLines]int32
}

func newDetPage() *detPage {
	p := &detPage{}
	for i := range p.lastW {
		p.lastW[i] = -1
	}
	return p
}

// DetConfig configures a deterministic environment.
type DetConfig struct {
	// Threads is the number of simulated worker threads.
	Threads int
	// Cost is the cycle cost model; zero fields take defaults.
	Cost CostParams
	// Seed seeds the per-thread jitter generators (see
	// CostParams.JitterPct). Runs with equal configuration and seed are
	// bit-identical.
	Seed uint64
}

// DetEnv is the deterministic multicore simulator backend. Virtual threads
// are goroutines that run one at a time under a min-virtual-time scheduler;
// each memory access advances the accessing thread's cycle clock by a cost
// from the coherence model. Runs are fully deterministic for a given
// configuration and workload seed.
type DetEnv struct {
	n    int
	cost CostParams

	pages    []*detPage
	nextFree Addr
	freelist map[int][]Addr
	clock    uint64

	threads []*Thread
	dts     []*detThread
	caches  []*l1Cache
	stats   []ThreadStats
	clocks  []int64
	jitter  []uint64 // per-thread splitmix states (0 slice = disabled)

	running bool
	parkCh  chan parkMsg
	sched   detHeap
	panicV  any
}

type detThread struct {
	resume chan struct{}
}

type parkMsg struct {
	id       int
	finished bool
}

var _ Env = (*DetEnv)(nil)

// NewDet creates a deterministic environment with cfg.Threads worker threads
// plus a bootstrap thread (id == cfg.Threads) for setup.
func NewDet(cfg DetConfig) *DetEnv {
	if cfg.Threads <= 0 {
		panic(fmt.Sprintf("memsim: invalid thread count %d", cfg.Threads))
	}
	cfg.Cost.normalize()
	e := &DetEnv{
		n:        cfg.Threads,
		cost:     cfg.Cost,
		nextFree: WordsPerLine, // reserve line 0 so Addr 0 stays nil
		freelist: make(map[int][]Addr),
		parkCh:   make(chan parkMsg),
	}
	total := cfg.Threads + 1 // + bootstrap
	e.threads = make([]*Thread, total)
	e.dts = make([]*detThread, cfg.Threads)
	e.caches = make([]*l1Cache, total)
	e.stats = make([]ThreadStats, total)
	e.clocks = make([]int64, total)
	for i := 0; i < total; i++ {
		e.threads[i] = NewThread(e, i)
		e.caches[i] = newL1Cache(cfg.Cost.L1Sets, cfg.Cost.L1Ways)
	}
	for i := 0; i < cfg.Threads; i++ {
		e.dts[i] = &detThread{resume: make(chan struct{})}
	}
	if cfg.Cost.JitterPct > 0 {
		e.jitter = make([]uint64, total)
		for i := range e.jitter {
			e.jitter[i] = cfg.Seed*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
		}
	}
	e.sched.env = e
	return e
}

// NumThreads returns the number of worker threads.
func (e *DetEnv) NumThreads() int { return e.n }

// Thread returns worker thread id's handle.
func (e *DetEnv) Thread(id int) *Thread { return e.threads[id] }

// Boot returns the bootstrap thread handle for single-threaded setup.
func (e *DetEnv) Boot() *Thread { return e.threads[e.n] }

// Run executes body once per worker thread under the deterministic
// scheduler and returns when every body has returned. It must not be called
// concurrently with itself. A panic in any body is re-raised from Run after
// the remaining threads are abandoned.
func (e *DetEnv) Run(body func(th *Thread)) {
	if e.running {
		panic("memsim: DetEnv.Run called reentrantly")
	}
	e.running = true
	e.panicV = nil
	for i := 0; i < e.n; i++ {
		go func(id int) {
			<-e.dts[id].resume
			defer func() {
				if r := recover(); r != nil && e.panicV == nil {
					// Record before parking: the scheduler reads panicV
					// after draining the heap.
					e.panicV = r
				}
				e.parkCh <- parkMsg{id: id, finished: true}
			}()
			body(e.threads[id])
		}(i)
	}
	e.sched.ids = e.sched.ids[:0]
	for i := 0; i < e.n; i++ {
		e.sched.ids = append(e.sched.ids, i)
	}
	heap.Init(&e.sched)
	for e.sched.Len() > 0 {
		id := heap.Pop(&e.sched).(int)
		e.dts[id].resume <- struct{}{}
		msg := <-e.parkCh
		if !msg.finished {
			heap.Push(&e.sched, msg.id)
		}
	}
	e.running = false
	if e.panicV != nil {
		panic(e.panicV)
	}
}

// schedPoint parks the calling virtual thread and waits to be rescheduled.
func (e *DetEnv) schedPoint(t int) {
	if !e.running || t >= e.n {
		return
	}
	e.parkCh <- parkMsg{id: t}
	<-e.dts[t].resume
}

// page returns the arena page holding word index w, growing the arena as
// needed.
func (e *DetEnv) page(w uint32) *detPage {
	idx := int(w >> pageShift)
	for idx >= len(e.pages) {
		e.pages = append(e.pages, newDetPage())
	}
	return e.pages[idx]
}

// Alloc allocates a span of words.
func (e *DetEnv) Alloc(words int) Addr {
	if words <= 0 {
		panic("memsim: Alloc of non-positive span")
	}
	if fl := e.freelist[words]; len(fl) > 0 {
		a := fl[len(fl)-1]
		e.freelist[words] = fl[:len(fl)-1]
		return a
	}
	// Keep spans within a line when they fit, and line-aligned when they
	// span lines, so capacity accounting and false sharing behave like a
	// real allocator with size classes.
	a := e.nextFree
	if words >= WordsPerLine || int(a%WordsPerLine)+words > WordsPerLine {
		if r := a % WordsPerLine; r != 0 {
			a += WordsPerLine - r
		}
	}
	e.nextFree = a + Addr(words)
	e.page(uint32(e.nextFree)) // ensure backing exists
	return a
}

// Free returns a span to the allocator.
func (e *DetEnv) Free(a Addr, words int) {
	e.freelist[words] = append(e.freelist[words], a)
}

// LoadMeta returns the metadata word of a line.
func (e *DetEnv) LoadMeta(line uint32) uint64 {
	return e.page(line << LineShift).metas[line%pageLines]
}

// CASMeta compares-and-swaps a line's metadata word.
func (e *DetEnv) CASMeta(line uint32, old, new uint64) bool {
	p := e.page(line << LineShift)
	i := line % pageLines
	if p.metas[i] != old {
		return false
	}
	p.metas[i] = new
	return true
}

// StoreMeta stores a line's metadata word on behalf of thread t. Releasing a
// line with a new version also refreshes t's cached copy and records t as
// the line's last writer for the coherence model.
func (e *DetEnv) StoreMeta(t int, line uint32, m uint64) {
	p := e.page(line << LineShift)
	p.metas[line%pageLines] = m
	if !MetaLocked(m) && t >= 0 && t < len(e.caches) {
		p.lastW[line%pageLines] = int32(t)
		e.caches[t].fill(line, MetaVersion(m))
	}
}

// LoadWord reads a word without cost accounting.
func (e *DetEnv) LoadWord(a Addr) uint64 {
	return e.page(uint32(a)).words[uint32(a)%pageWords]
}

// StoreWord writes a word without cost accounting.
func (e *DetEnv) StoreWord(a Addr, v uint64) {
	e.page(uint32(a)).words[uint32(a)%pageWords] = v
}

// LastWriter returns the last thread to commit a write to line, or -1.
func (e *DetEnv) LastWriter(line uint32) int {
	return int(e.page(line << LineShift).lastW[line%pageLines])
}

// ReadClock returns the global version clock.
func (e *DetEnv) ReadClock() uint64 { return e.clock }

// TickClock increments and returns the global version clock.
func (e *DetEnv) TickClock() uint64 {
	e.clock++
	return e.clock
}

// Access charges thread t for one logical access to line and yields to the
// scheduler.
func (e *DetEnv) Access(t int, line uint32, write bool) {
	st := &e.stats[t]
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	p := e.page(line << LineShift)
	li := line % pageLines
	ver := MetaVersion(p.metas[li])
	var cost int64
	if e.caches[t].lookup(line, ver) {
		cost = e.cost.L1Hit
		st.L1Hits++
	} else {
		cost = e.cost.L1Miss
		st.L1Misses++
		if lw := p.lastW[li]; lw >= 0 && int(lw) != t && int(lw) < e.n+1 {
			cost = e.cost.CoherenceMiss
			st.CoherenceMisses++
			if e.cost.socketOf(int(lw)) != e.cost.socketOf(t) {
				cost += e.cost.NUMAPenalty
				st.RemoteMisses++
			}
		}
		e.caches[t].fill(line, ver)
	}
	if write {
		p.lastW[li] = int32(t)
	}
	e.charge(t, cost)
	e.schedPoint(t)
}

// charge adds cost cycles (with SMT inflation and optional schedule-fuzzing
// jitter) to thread t's clock.
func (e *DetEnv) charge(t int, cost int64) {
	if t < e.n && e.cost.SMTPenaltyPct > 0 && e.cost.smtActive(t, e.n) {
		cost += cost * e.cost.SMTPenaltyPct / 100
	}
	if e.jitter != nil && cost > 0 {
		// splitmix64 step, deterministic per thread.
		e.jitter[t] += 0x9E3779B97F4A7C15
		z := e.jitter[t]
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		span := 2*e.cost.JitterPct + 1
		pct := int64(z%uint64(span)) - e.cost.JitterPct // in [-J, +J]
		cost += cost * pct / 100
		if cost < 1 {
			cost = 1
		}
	}
	e.clocks[t] += cost
}

// Work charges c cycles of local computation to thread t. It is a
// scheduling point so that effects across threads always execute in virtual
// time order.
func (e *DetEnv) Work(t int, c int64) {
	e.stats[t].WorkCycles += c
	e.charge(t, c)
	e.schedPoint(t)
}

// Yield charges the yield cost and reschedules.
func (e *DetEnv) Yield(t int) {
	e.stats[t].Yields++
	e.charge(t, e.cost.YieldCost)
	e.schedPoint(t)
}

// Now returns thread t's virtual cycle clock.
func (e *DetEnv) Now(t int) int64 { return e.clocks[t] }

// Stats returns thread t's counters.
func (e *DetEnv) Stats(t int) *ThreadStats { return &e.stats[t] }

// ResetStats zeroes all per-thread counters and clocks (e.g. after a warmup
// phase); caches are also emptied.
func (e *DetEnv) ResetStats() {
	for i := range e.stats {
		e.stats[i].Reset()
		e.clocks[i] = 0
		e.caches[i].reset()
	}
}

// Cost returns the environment's cost parameters.
func (e *DetEnv) Cost() CostParams { return e.cost }

// detHeap orders runnable thread ids by (virtual clock, id).
type detHeap struct {
	ids []int
	env *DetEnv
}

func (h *detHeap) Len() int { return len(h.ids) }

func (h *detHeap) Less(i, j int) bool {
	ci, cj := h.env.clocks[h.ids[i]], h.env.clocks[h.ids[j]]
	if ci != cj {
		return ci < cj
	}
	return h.ids[i] < h.ids[j]
}

func (h *detHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }

func (h *detHeap) Push(x any) { h.ids = append(h.ids, x.(int)) }

func (h *detHeap) Pop() any {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}
