package memsim

import (
	"fmt"
)

const (
	pageShift = 14
	pageWords = 1 << pageShift // 64-bit words per arena page
	pageLines = pageWords / WordsPerLine
)

// detPage is one arena page of the deterministic backend. Plain (non-atomic)
// storage is safe because the scheduler runs exactly one virtual thread at a
// time.
type detPage struct {
	words [pageWords]uint64
	metas [pageLines]uint64
	// lastW records the last thread to commit a write to each line
	// (-1 = none); used by the coherence cost model.
	lastW [pageLines]int32
}

func newDetPage() *detPage {
	p := &detPage{}
	for i := range p.lastW {
		p.lastW[i] = -1
	}
	return p
}

// DetConfig configures a deterministic environment.
type DetConfig struct {
	// Threads is the number of simulated worker threads.
	Threads int
	// Cost is the cycle cost model; zero fields take defaults.
	Cost CostParams
	// Seed seeds the per-thread jitter generators (see
	// CostParams.JitterPct). Runs with equal configuration and seed are
	// bit-identical.
	Seed uint64
	// CapacityHint pre-sizes the arena to at least this many words, so long
	// runs do not grow the page table (and the host allocator) incrementally.
	// Zero allocates pages on demand. The hint has no effect on simulated
	// results; pages are identical whether created eagerly or lazily.
	CapacityHint int
	// Explore enables adversarial schedule exploration (see explore.go).
	// The zero value keeps the pure minimum-virtual-time schedule.
	Explore ExploreConfig
}

// DetEnv is the deterministic multicore simulator backend. Virtual threads
// are goroutines that run one at a time under a min-virtual-time scheduler;
// each memory access advances the accessing thread's cycle clock by a cost
// from the coherence model. Runs are fully deterministic for a given
// configuration and workload seed.
//
// Scheduling is run-until-preempted: after charging an access, the current
// thread keeps running as long as it is still the minimum-(clock, id)
// runnable thread (a heap peek, no synchronization), and when another thread
// becomes the minimum the CPU is handed to it directly — one channel
// rendezvous per switch instead of a park/resume round-trip through a
// central scheduler loop. The thread selected at every scheduling point is
// identical to the classic pop-min design, so simulated results are
// bit-for-bit unchanged; only host time is saved.
type DetEnv struct {
	n    int
	cost CostParams

	pages    []*detPage
	nextFree Addr
	freelist [][]Addr // freelist[words] = LIFO of freed spans of that size
	clock    uint64

	threads []*Thread
	resume  []chan struct{} // per worker thread wake-up rendezvous
	caches  []*l1Cache
	stats   []ThreadStats
	clocks  []int64
	jitter  []uint64 // per-thread splitmix states (0 slice = disabled)

	running bool
	done    chan struct{}
	sched   detHeap
	waits   []detWait
	panicV  any

	// Schedule exploration (see explore.go). Both stay nil with a zero
	// DetConfig.Explore, keeping the scheduler's fast paths untouched.
	exp   *explore
	boost []int64 // per-thread priority offsets added to heap comparisons
}

// detWait is a worker thread's declarative wait state. While passive, the
// thread's goroutine stays parked and its spin-loop events (access charges,
// seqlock reads, yield charges) are executed inline — one step per
// scheduling quantum — by whichever goroutine is driving the scheduler at
// that moment. The step stream is bit-identical to the open-coded spin loop
// the primitive replaces; only the host context switches are elided.
type detWait struct {
	passive bool
	kind    uint8
	phase   uint8
	which   int
	addr    Addr
	addr2   Addr
	want    uint64
	want2   uint64
}

// Wait kinds.
const (
	waitUntilEq       uint8 = iota // until Load(addr) == want
	waitUntilEitherEq              // until Load(addr)==want or Load(addr2)==want2
)

// Step phases of a passive wait.
const (
	phAccess1 uint8 = iota // charge the access for addr
	phRead1                // seqlock-read addr, check want
	phAccess2              // charge the access for addr2
	phRead2                // seqlock-read addr2, check want2
)

var _ Env = (*DetEnv)(nil)

// NewDet creates a deterministic environment with cfg.Threads worker threads
// plus a bootstrap thread (id == cfg.Threads) for setup.
func NewDet(cfg DetConfig) *DetEnv {
	if cfg.Threads <= 0 {
		panic(fmt.Sprintf("memsim: invalid thread count %d", cfg.Threads))
	}
	cfg.Cost.normalize()
	e := &DetEnv{
		n:        cfg.Threads,
		cost:     cfg.Cost,
		nextFree: WordsPerLine, // reserve line 0 so Addr 0 stays nil
		freelist: make([][]Addr, 64),
		done:     make(chan struct{}),
	}
	if cfg.CapacityHint > 0 {
		npages := (cfg.CapacityHint + pageWords - 1) / pageWords
		e.pages = make([]*detPage, 0, npages)
		for i := 0; i < npages; i++ {
			e.pages = append(e.pages, newDetPage())
		}
	}
	total := cfg.Threads + 1 // + bootstrap
	e.threads = make([]*Thread, total)
	e.resume = make([]chan struct{}, cfg.Threads)
	e.waits = make([]detWait, cfg.Threads)
	e.caches = make([]*l1Cache, total)
	e.stats = make([]ThreadStats, total)
	e.clocks = make([]int64, total)
	for i := 0; i < total; i++ {
		e.threads[i] = NewThread(e, i)
		e.caches[i] = newL1Cache(cfg.Cost.L1Sets, cfg.Cost.L1Ways)
	}
	for i := 0; i < cfg.Threads; i++ {
		e.resume[i] = make(chan struct{})
	}
	if cfg.Cost.JitterPct > 0 {
		e.jitter = make([]uint64, total)
		for i := range e.jitter {
			e.jitter[i] = cfg.Seed*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
		}
	}
	if cfg.Explore.enabled() {
		e.exp = &explore{
			cfg:  cfg.Explore,
			rng:  cfg.Explore.Seed*0xD1342543DE82EF95 + 0x2545F4914F6CDD1D,
			span: cfg.Explore.boostSpan(),
		}
		e.boost = make([]int64, cfg.Threads)
	}
	e.sched.env = e
	return e
}

// NumThreads returns the number of worker threads.
func (e *DetEnv) NumThreads() int { return e.n }

// Thread returns worker thread id's handle.
func (e *DetEnv) Thread(id int) *Thread { return e.threads[id] }

// Boot returns the bootstrap thread handle for single-threaded setup.
func (e *DetEnv) Boot() *Thread { return e.threads[e.n] }

// Run executes body once per worker thread under the deterministic
// scheduler and returns when every body has returned. It must not be called
// concurrently with itself. A panic in any body is re-raised from Run after
// the remaining threads have finished.
//
// Run only seeds the schedule (resuming the minimum-clock thread) and waits
// for completion; thereafter the virtual CPU moves between threads by direct
// handoff at scheduling points, never returning to this goroutine.
func (e *DetEnv) Run(body func(th *Thread)) {
	if e.running {
		panic("memsim: DetEnv.Run called reentrantly")
	}
	e.running = true
	e.panicV = nil
	for i := range e.waits {
		e.waits[i] = detWait{}
	}
	for i := 0; i < e.n; i++ {
		go func(id int) {
			<-e.resume[id]
			defer func() {
				if r := recover(); r != nil && e.panicV == nil {
					// Record before handing off: Run reads panicV after
					// the last thread signals done.
					e.panicV = r
				}
				e.finish()
			}()
			body(e.threads[id])
		}(i)
	}
	if e.exp != nil {
		e.resetExplore() // draw initial priorities before the heap is built
	}
	e.sched.reset(e.n)
	e.resume[e.dispatch()] <- struct{}{}
	<-e.done
	e.running = false
	if e.panicV != nil {
		panic(e.panicV)
	}
}

// finish retires the calling virtual thread: it hands the CPU to the next
// runnable thread, or signals Run when it was the last one.
func (e *DetEnv) finish() {
	if next := e.dispatch(); next >= 0 {
		e.resume[next] <- struct{}{}
	} else {
		e.done <- struct{}{}
	}
}

// schedPoint preempts the calling virtual thread if it is no longer the
// minimum-(clock, id) runnable thread. The common case — still minimum —
// is a heap peek with no synchronization at all (and this function is small
// enough to inline into Access/Work/Yield); a switch is one direct channel
// handoff to the new minimum thread.
func (e *DetEnv) schedPoint(t int) {
	if !e.running || t >= e.n {
		return
	}
	if e.exp != nil {
		e.explorePoint(t)
		return
	}
	ids := e.sched.ids
	if len(ids) == 0 {
		return // only runnable thread
	}
	m := ids[0]
	if ct, cm := e.clocks[t], e.clocks[m]; ct < cm || (ct == cm && t < int(m)) {
		return // still the minimum: keep running
	}
	e.switchTo(t)
}

// switchTo re-enters the scheduler from thread t. If the next thread due to
// run is t itself (possible when the threads ahead of it are all passive
// waiters whose steps dispatch executes inline), t simply keeps the CPU;
// otherwise the CPU is handed over with a single channel rendezvous and t
// parks until it is scheduled — or, if t is a passive waiter, until its wait
// completes.
func (e *DetEnv) switchTo(t int) {
	e.sched.push(int32(t))
	next := e.dispatch()
	if int(next) == t {
		return
	}
	e.resume[next] <- struct{}{}
	<-e.resume[t]
}

// dispatch drives the schedule until an active (non-waiting) thread is the
// minimum-(clock, id) runnable thread and pops it, executing passive
// waiters' spin-loop steps inline on the calling goroutine along the way.
// Returns -1 when no runnable thread remains.
func (e *DetEnv) dispatch() int32 {
	for {
		ids := e.sched.ids
		if len(ids) == 0 {
			return -1
		}
		w := &e.waits[ids[0]]
		if !w.passive {
			return e.sched.pop()
		}
		if e.stepWait(int(ids[0]), w) {
			// The wait completed without a charge, so the thread is still
			// the minimum: schedule it now.
			w.passive = false
			return e.sched.pop()
		}
		e.sched.siftDown(0) // the step charged the waiter; restore order
	}
}

// stepWait executes one scheduling quantum of a passive wait on behalf of
// thread t: the events between two scheduling points of the open-coded spin
// loop the wait replaces (one charge, plus the seqlock reads that precede
// it). It reports whether the wait's predicate was satisfied. The event
// stream is bit-identical to Thread.Load/Thread.Yield executing the same
// loop; only the goroutine switches between quanta are elided.
func (e *DetEnv) stepWait(t int, w *detWait) bool {
	switch w.phase {
	case phAccess1: // Thread.Load(addr) charges its access first
		e.accessBook(t, LineOf(w.addr), false)
		w.phase = phRead1
	case phRead1: // ... then seqlock-reads the word
		line := LineOf(w.addr)
		m1 := e.LoadMeta(line)
		if MetaLocked(m1) {
			e.yieldBook(t)
			return false // retry the read after the yield, as Load does
		}
		v := e.LoadWord(w.addr)
		if e.LoadMeta(line) != m1 {
			e.yieldBook(t)
			return false
		}
		if v == w.want {
			w.which = 0
			return true
		}
		if w.kind == waitUntilEq {
			e.yieldBook(t) // failed round: Yield, then re-access addr
			w.phase = phAccess1
			return false
		}
		// Either-shape: probe addr2 next, with no yield in between — the
		// loop this replaces falls straight through to its second Load.
		w.phase = phAccess2
	case phAccess2:
		e.accessBook(t, LineOf(w.addr2), false)
		w.phase = phRead2
	case phRead2:
		line := LineOf(w.addr2)
		m1 := e.LoadMeta(line)
		if MetaLocked(m1) {
			e.yieldBook(t)
			return false
		}
		v := e.LoadWord(w.addr2)
		if e.LoadMeta(line) != m1 {
			e.yieldBook(t)
			return false
		}
		if v == w.want2 {
			w.which = 1
			return true
		}
		e.yieldBook(t) // both probes failed: Yield, restart at addr
		w.phase = phAccess1
	}
	return false
}

// spinUntilEq parks worker t until a coherent load of a observes want,
// replaying the exact charge/yield stream of
//
//	for th.Load(a) != want { th.Yield() }
//
// The first access is charged here, on the calling goroutine, exactly where
// Thread.Load would charge it — before the scheduler is consulted — so
// equal-clock ties resolve identically.
func (e *DetEnv) spinUntilEq(t int, a Addr, want uint64) {
	e.accessBook(t, LineOf(a), false)
	e.waits[t] = detWait{passive: true, kind: waitUntilEq, phase: phRead1, addr: a, want: want}
	e.switchTo(t)
}

// spinUntilEitherEq parks worker t until a load of a1 observes want1
// (returns 0) or, probed second within each round, a load of a2 observes
// want2 (returns 1).
func (e *DetEnv) spinUntilEitherEq(t int, a1 Addr, want1 uint64, a2 Addr, want2 uint64) int {
	e.accessBook(t, LineOf(a1), false)
	e.waits[t] = detWait{
		passive: true, kind: waitUntilEitherEq, phase: phRead1,
		addr: a1, want: want1, addr2: a2, want2: want2,
	}
	e.switchTo(t)
	return e.waits[t].which
}

// page returns the arena page holding word index w, growing the arena as
// needed.
func (e *DetEnv) page(w uint32) *detPage {
	idx := int(w >> pageShift)
	for idx >= len(e.pages) {
		e.pages = append(e.pages, newDetPage())
	}
	return e.pages[idx]
}

// Alloc allocates a span of words.
func (e *DetEnv) Alloc(words int) Addr {
	if words <= 0 {
		panic("memsim: Alloc of non-positive span")
	}
	if words < len(e.freelist) {
		if fl := e.freelist[words]; len(fl) > 0 {
			a := fl[len(fl)-1]
			e.freelist[words] = fl[:len(fl)-1]
			return a
		}
	}
	// Keep spans within a line when they fit, and line-aligned when they
	// span lines, so capacity accounting and false sharing behave like a
	// real allocator with size classes.
	a := e.nextFree
	if words >= WordsPerLine || int(a%WordsPerLine)+words > WordsPerLine {
		if r := a % WordsPerLine; r != 0 {
			a += WordsPerLine - r
		}
	}
	e.nextFree = a + Addr(words)
	e.page(uint32(e.nextFree)) // ensure backing exists
	return a
}

// Free returns a span to the allocator.
func (e *DetEnv) Free(a Addr, words int) {
	for words >= len(e.freelist) {
		e.freelist = append(e.freelist, make([][]Addr, len(e.freelist))...)
	}
	e.freelist[words] = append(e.freelist[words], a)
}

// LoadMeta returns the metadata word of a line.
func (e *DetEnv) LoadMeta(line uint32) uint64 {
	return e.page(line << LineShift).metas[line%pageLines]
}

// CASMeta compares-and-swaps a line's metadata word.
func (e *DetEnv) CASMeta(line uint32, old, new uint64) bool {
	p := e.page(line << LineShift)
	i := line % pageLines
	if p.metas[i] != old {
		return false
	}
	p.metas[i] = new
	return true
}

// StoreMeta stores a line's metadata word on behalf of thread t. Releasing a
// line with a new version also refreshes t's cached copy and records t as
// the line's last writer for the coherence model.
func (e *DetEnv) StoreMeta(t int, line uint32, m uint64) {
	p := e.page(line << LineShift)
	p.metas[line%pageLines] = m
	if !MetaLocked(m) && t >= 0 && t < len(e.caches) {
		p.lastW[line%pageLines] = int32(t)
		e.caches[t].fill(line, MetaVersion(m))
	}
}

// LoadWord reads a word without cost accounting.
func (e *DetEnv) LoadWord(a Addr) uint64 {
	return e.page(uint32(a)).words[uint32(a)%pageWords]
}

// StoreWord writes a word without cost accounting.
func (e *DetEnv) StoreWord(a Addr, v uint64) {
	e.page(uint32(a)).words[uint32(a)%pageWords] = v
}

// LastWriter returns the last thread to commit a write to line, or -1.
func (e *DetEnv) LastWriter(line uint32) int {
	return int(e.page(line << LineShift).lastW[line%pageLines])
}

// ReadClock returns the global version clock.
func (e *DetEnv) ReadClock() uint64 { return e.clock }

// TickClock increments and returns the global version clock.
func (e *DetEnv) TickClock() uint64 {
	e.clock++
	return e.clock
}

// Access charges thread t for one logical access to line and yields to the
// scheduler.
func (e *DetEnv) Access(t int, line uint32, write bool) {
	e.accessBook(t, line, write)
	e.schedPoint(t)
}

// accessBook performs the bookkeeping and cycle charge of Access without the
// scheduling point; the passive-wait step executor uses it directly.
func (e *DetEnv) accessBook(t int, line uint32, write bool) {
	st := &e.stats[t]
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	p := e.page(line << LineShift)
	li := line % pageLines
	ver := MetaVersion(p.metas[li])
	var cost int64
	if e.caches[t].lookup(line, ver) {
		cost = e.cost.L1Hit
		st.L1Hits++
	} else {
		cost = e.cost.L1Miss
		st.L1Misses++
		if lw := p.lastW[li]; lw >= 0 && int(lw) != t && int(lw) < e.n+1 {
			cost = e.cost.CoherenceMiss
			st.CoherenceMisses++
			if e.cost.socketOf(int(lw)) != e.cost.socketOf(t) {
				cost += e.cost.NUMAPenalty
				st.RemoteMisses++
			}
		}
		e.caches[t].fill(line, ver)
	}
	if write {
		p.lastW[li] = int32(t)
	}
	e.charge(t, cost)
}

// charge adds cost cycles (with SMT inflation and optional schedule-fuzzing
// jitter) to thread t's clock.
func (e *DetEnv) charge(t int, cost int64) {
	if t < e.n && e.cost.SMTPenaltyPct > 0 && e.cost.smtActive(t, e.n) {
		cost += cost * e.cost.SMTPenaltyPct / 100
	}
	if e.jitter != nil && cost > 0 {
		// splitmix64 step, deterministic per thread.
		e.jitter[t] += 0x9E3779B97F4A7C15
		z := e.jitter[t]
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		span := 2*e.cost.JitterPct + 1
		pct := int64(z%uint64(span)) - e.cost.JitterPct // in [-J, +J]
		cost += cost * pct / 100
		if cost < 1 {
			cost = 1
		}
	}
	e.clocks[t] += cost
}

// Work charges c cycles of local computation to thread t. It is a
// scheduling point so that effects across threads always execute in virtual
// time order.
func (e *DetEnv) Work(t int, c int64) {
	e.stats[t].WorkCycles += c
	e.charge(t, c)
	e.schedPoint(t)
}

// IdleUntil advances thread t's clock to deadline without charging
// execution costs: idle cycles model a thread waiting for external work
// (an open-loop arrival), so the SMT penalty and jitter — which model
// contended execution — do not apply. It is a scheduling point, so other
// threads' effects in the skipped span execute first, in virtual-time
// order.
func (e *DetEnv) IdleUntil(t int, deadline int64) {
	if deadline > e.clocks[t] {
		e.stats[t].IdleCycles += deadline - e.clocks[t]
		e.clocks[t] = deadline
	}
	e.schedPoint(t)
}

// Yield charges the yield cost and reschedules.
func (e *DetEnv) Yield(t int) {
	e.yieldBook(t)
	e.schedPoint(t)
}

// yieldBook is Yield's bookkeeping and charge without the scheduling point.
func (e *DetEnv) yieldBook(t int) {
	e.stats[t].Yields++
	e.charge(t, e.cost.YieldCost)
}

// Now returns thread t's virtual cycle clock.
func (e *DetEnv) Now(t int) int64 { return e.clocks[t] }

// Stats returns thread t's counters.
func (e *DetEnv) Stats(t int) *ThreadStats { return &e.stats[t] }

// ResetStats zeroes all per-thread counters and clocks (e.g. after a warmup
// phase); caches are also emptied.
func (e *DetEnv) ResetStats() {
	for i := range e.stats {
		e.stats[i].Reset()
		e.clocks[i] = 0
		e.caches[i].reset()
	}
}

// Cost returns the environment's cost parameters.
func (e *DetEnv) Cost() CostParams { return e.cost }

// detHeap is a binary min-heap of runnable thread ids ordered by
// (virtual clock, id). It is hand-rolled (rather than container/heap) so the
// per-access peek/push/pop path has no interface conversions and no
// allocations. The (clock, id) order is a strict total order, so the popped
// minimum is unique and the schedule does not depend on internal layout.
type detHeap struct {
	ids []int32
	env *DetEnv
}

func (h *detHeap) less(a, b int32) bool {
	ca, cb := h.env.clocks[a], h.env.clocks[b]
	if bs := h.env.boost; bs != nil {
		ca += bs[a]
		cb += bs[b]
	}
	if ca != cb {
		return ca < cb
	}
	return a < b
}

// reset refills the heap with ids 0..n-1 and restores heap order.
func (h *detHeap) reset(n int) {
	h.ids = h.ids[:0]
	for i := 0; i < n; i++ {
		h.ids = append(h.ids, int32(i))
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *detHeap) push(id int32) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ids[i], h.ids[parent]) {
			break
		}
		h.ids[i], h.ids[parent] = h.ids[parent], h.ids[i]
		i = parent
	}
}

func (h *detHeap) pop() int32 {
	ids := h.ids
	top := ids[0]
	last := len(ids) - 1
	ids[0] = ids[last]
	h.ids = ids[:last]
	h.siftDown(0)
	return top
}

func (h *detHeap) siftDown(i int) {
	ids := h.ids
	n := len(ids)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.less(ids[r], ids[l]) {
			min = r
		}
		if !h.less(ids[min], ids[i]) {
			return
		}
		ids[i], ids[min] = ids[min], ids[i]
		i = min
	}
}
