package memsim

// Schedule exploration: adversarial perturbation of the deterministic
// scheduler.
//
// The baseline DetEnv schedule is the minimum-virtual-time schedule — for a
// given cost model and workload seed it explores exactly one interleaving.
// That is ideal for reproducible performance experiments and useless for
// hunting ordering bugs: handoff windows (announce-then-speculate, combiner
// adoption, waiter parking) only misbehave under interleavings the min-clock
// schedule never produces.
//
// ExploreConfig turns the scheduler into a deterministic adversary, with two
// composable mechanisms:
//
//   - Randomized priorities (PCT-style): every worker thread gets a priority
//     offset ("boost", in virtual cycles) drawn from a seeded generator. The
//     scheduler orders runnable threads by (clock + boost, id) instead of
//     (clock, id), so threads run early or late relative to the fair
//     schedule — bounded by the boost span, so no thread starves.
//   - Preemption-point injection: at scheduling points the current thread
//     is, with small probability and up to PreemptBudget times per run,
//     handed a fresh (usually larger) boost mid-operation — forcing a
//     context switch inside windows the min-clock schedule would run
//     through atomically, e.g. between a status store and the matching
//     publication-array store, or in the middle of a transaction's
//     lock-subscription window.
//
// Every decision is drawn from a splitmix64 generator seeded by
// ExploreConfig.Seed and advanced only at scheduling points of the (single)
// running thread, so exploration is fully deterministic: the same
// (DetConfig, workload) replays the same perturbed schedule bit-for-bit.
// With a zero ExploreConfig the boost slice stays nil and every comparison
// reduces to the PR 3 fast path — non-explore runs are bit-identical to the
// golden fixtures.

// ExploreConfig configures adversarial schedule exploration. The zero value
// disables exploration entirely.
type ExploreConfig struct {
	// Seed seeds the exploration generator. Distinct seeds explore distinct
	// schedules; equal seeds replay bit-identically.
	Seed uint64
	// PreemptBudget bounds how many forced preemptions are injected per
	// run. 0 injects none (priority jitter only, if JitterClass > 0).
	PreemptBudget int
	// JitterClass selects the priority-perturbation intensity: 0 keeps all
	// threads at the fair schedule between injections, 1..3 draw initial
	// per-thread priority offsets (and injection boosts) from spans of
	// roughly 1Ki, 8Ki and 64Ki virtual cycles respectively. Values above 3
	// are clamped.
	JitterClass int
}

// enabled reports whether the configuration turns exploration on.
func (c ExploreConfig) enabled() bool {
	return c.PreemptBudget > 0 || c.JitterClass > 0
}

// boostSpan returns the half-open range [0, span) boosts are drawn from.
func (c ExploreConfig) boostSpan() int64 {
	class := c.JitterClass
	if class <= 0 {
		class = 1 // injection-only mode still needs a nonzero kick
	}
	if class > 3 {
		class = 3
	}
	// Class 1/2/3 -> 1Ki/8Ki/64Ki virtual cycles: from a fraction of one
	// operation up to several whole operations of reordering.
	return 1024 << (3 * uint(class-1))
}

// explore is the per-environment exploration state.
type explore struct {
	cfg    ExploreConfig
	rng    uint64 // splitmix64 state
	span   int64  // boost draw span
	budget int    // remaining forced preemptions this run
	// Injected counts forced preemptions actually performed (for tests and
	// the sweep driver's reporting).
	injected int
}

// expDraw advances the exploration generator one splitmix64 step.
func (x *explore) draw() uint64 {
	x.rng += 0x9E3779B97F4A7C15
	z := x.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Explored reports whether the environment runs with schedule exploration.
func (e *DetEnv) Explored() bool { return e.exp != nil }

// PreemptionsInjected returns how many forced preemptions the explorer has
// performed since the environment was created.
func (e *DetEnv) PreemptionsInjected() int {
	if e.exp == nil {
		return 0
	}
	return e.exp.injected
}

// resetExplore re-arms the explorer at the start of a Run: the budget
// refills and, when priority jitter is on, every worker thread draws a
// fresh initial boost. Draw order is fixed (thread 0..n-1), so the schedule
// depends only on (config, seed).
func (e *DetEnv) resetExplore() {
	x := e.exp
	x.budget = x.cfg.PreemptBudget
	for t := 0; t < e.n; t++ {
		if x.cfg.JitterClass > 0 {
			e.boost[t] = int64(x.draw() % uint64(x.span))
		} else {
			e.boost[t] = 0
		}
	}
}

// explorePoint is the scheduling point of an exploring environment. It
// replaces DetEnv.schedPoint's fast path for the current thread t: one
// generator step decides whether to inject a forced preemption (budget
// permitting), then the usual minimum test runs over boosted clocks.
func (e *DetEnv) explorePoint(t int) {
	x := e.exp
	// One draw per scheduling point keeps the decision stream a pure
	// function of the (deterministic) event stream.
	d := x.draw()
	if x.budget > 0 && d&1023 < 16 { // ~1.6% of scheduling points
		// Redraw the running thread's priority with an extra span of
		// penalty: mid-window, this usually makes t non-minimal and forces
		// the switch the fair schedule would never take here.
		e.boost[t] = x.span + int64(x.draw()%uint64(x.span))
		x.budget--
		x.injected++
	}
	ids := e.sched.ids
	if len(ids) == 0 {
		return // only runnable thread
	}
	m := ids[0]
	ct := e.clocks[t] + e.boost[t]
	cm := e.clocks[m] + e.boost[m]
	if ct < cm || (ct == cm && t < int(m)) {
		return
	}
	e.switchTo(t)
}
