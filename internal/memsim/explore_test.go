package memsim

import (
	"fmt"
	"testing"
)

// exploreTrace runs a small contended workload and records the full
// observable outcome: per-thread final clocks, stats, and the sequence of
// values each thread observed on a shared counter line. Two runs are "the
// same schedule" iff these match.
func exploreTrace(cfg DetConfig, perThread int) string {
	e := NewDet(cfg)
	shared := e.Alloc(1)
	e.StoreWord(shared, 0)
	obs := make([][]uint64, cfg.Threads)
	e.Run(func(th *Thread) {
		for i := 0; i < perThread; i++ {
			v := th.Load(shared)
			th.Work(25)
			th.Store(shared, v+1)
			obs[th.ID()] = append(obs[th.ID()], v)
		}
	})
	out := ""
	for t := 0; t < cfg.Threads; t++ {
		out += fmt.Sprintf("t%d clock=%d yields=%d obs=%v\n",
			t, e.Now(t), e.Stats(t).Yields, obs[t])
	}
	return out
}

func TestExploreDeterministicReplay(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1000} {
		cfg := DetConfig{
			Threads: 5,
			Explore: ExploreConfig{Seed: seed, PreemptBudget: 40, JitterClass: 2},
		}
		a := exploreTrace(cfg, 30)
		b := exploreTrace(cfg, 30)
		if a != b {
			t.Fatalf("seed %d: replay diverged;\nfirst:\n%s\nsecond:\n%s", seed, a, b)
		}
	}
}

func TestExploreZeroConfigMatchesBaseline(t *testing.T) {
	base := exploreTrace(DetConfig{Threads: 5}, 30)
	zero := exploreTrace(DetConfig{Threads: 5, Explore: ExploreConfig{}}, 30)
	if base != zero {
		t.Fatalf("zero ExploreConfig perturbed the schedule;\nbase:\n%s\nzero:\n%s", base, zero)
	}
}

func TestExplorePerturbsSchedule(t *testing.T) {
	base := exploreTrace(DetConfig{Threads: 5}, 30)
	perturbed := 0
	for seed := uint64(0); seed < 8; seed++ {
		cfg := DetConfig{
			Threads: 5,
			Explore: ExploreConfig{Seed: seed, PreemptBudget: 40, JitterClass: 2},
		}
		if exploreTrace(cfg, 30) != base {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Fatal("no explored seed perturbed the min-clock schedule")
	}
}

func TestExploreSeedsDiffer(t *testing.T) {
	schedules := map[string]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		cfg := DetConfig{
			Threads: 5,
			Explore: ExploreConfig{Seed: seed, PreemptBudget: 40, JitterClass: 2},
		}
		schedules[exploreTrace(cfg, 30)] = true
	}
	if len(schedules) < 2 {
		t.Fatalf("8 exploration seeds produced %d distinct schedule(s)", len(schedules))
	}
}

func TestExplorePreemptBudgetRespected(t *testing.T) {
	const budget = 7
	e := NewDet(DetConfig{
		Threads: 6,
		Explore: ExploreConfig{Seed: 3, PreemptBudget: budget, JitterClass: 1},
	})
	shared := e.Alloc(1)
	e.Run(func(th *Thread) {
		for i := 0; i < 200; i++ {
			th.Add(shared, 1)
		}
	})
	if got := e.PreemptionsInjected(); got > budget {
		t.Fatalf("injected %d preemptions, budget %d", got, budget)
	}
	if got := e.LoadWord(shared); got != 6*200 {
		t.Fatalf("counter = %d, want %d", got, 6*200)
	}
}

// TestExplorePassiveWaitCompletes pins that passive spin-waits still
// complete under adversarial boosts: a waiter parks on a word another
// thread only stores late in its run.
func TestExplorePassiveWaitCompletes(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		e := NewDet(DetConfig{
			Threads: 3,
			Explore: ExploreConfig{Seed: seed, PreemptBudget: 20, JitterClass: 3},
		})
		flag := e.Alloc(1)
		woke := make([]bool, 3)
		e.Run(func(th *Thread) {
			switch th.ID() {
			case 0:
				th.Work(5000)
				th.Store(flag, 1)
			default:
				th.SpinLoadUntilEq(flag, 1)
				woke[th.ID()] = true
			}
		})
		for id := 1; id < 3; id++ {
			if !woke[id] {
				t.Fatalf("seed %d: waiter %d never woke", seed, id)
			}
		}
	}
}
