package memsim

import "testing"

// jitterTrace runs a contended workload under jitter and fingerprints it.
func jitterTrace(seed uint64) (uint64, int64) {
	cost := DefaultCostParams()
	cost.JitterPct = 30
	e := NewDet(DetConfig{Threads: 6, Cost: cost, Seed: seed})
	a := e.Alloc(4)
	e.Run(func(th *Thread) {
		for i := 0; i < 150; i++ {
			slot := a + Addr((th.ID()+i)%4)
			v := th.Load(slot)
			th.Store(slot, v*31+uint64(th.ID())+1)
		}
	})
	var fp uint64
	for w := Addr(0); w < 4; w++ {
		fp = fp*1000003 + e.Boot().Load(a+w)
	}
	return fp, e.Now(0)
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	fp1, c1 := jitterTrace(7)
	fp2, c2 := jitterTrace(7)
	if fp1 != fp2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", fp1, c1, fp2, c2)
	}
}

func TestJitterSeedsProduceDistinctSchedules(t *testing.T) {
	distinct := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		fp, _ := jitterTrace(seed)
		distinct[fp] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 jitter seeds produced %d distinct interleavings", len(distinct))
	}
}

func TestJitterNeverDropsCostBelowOne(t *testing.T) {
	cost := DefaultCostParams()
	cost.JitterPct = 100 // extreme
	e := NewDet(DetConfig{Threads: 1, Cost: cost, Seed: 3})
	e.Run(func(th *Thread) {
		before := th.Now()
		for i := 0; i < 100; i++ {
			th.Work(1)
		}
		if th.Now()-before < 100 {
			t.Errorf("100 unit charges advanced clock by only %d", th.Now()-before)
		}
	})
}

func TestNoJitterByDefault(t *testing.T) {
	e := NewDet(DetConfig{Threads: 1, Seed: 99})
	e.Run(func(th *Thread) {
		before := th.Now()
		th.Work(1000)
		if th.Now()-before != 1000 {
			t.Errorf("jitter applied despite JitterPct=0: %d", th.Now()-before)
		}
	})
}
