// Package memsim provides the simulated shared memory substrate on which the
// whole reproduction runs.
//
// All state that the HCF paper protects with hardware transactional memory —
// the data-structure lock, selection locks, publication-array slots,
// operation status words, and every word of the data structures themselves —
// lives in a word-addressed arena of cells grouped into cache lines. Each
// line carries a version/lock metadata word (TL2-style), which is used both
// by the software HTM in package htm and by the coherence cost model.
//
// Two backends implement the Env interface:
//
//   - DetEnv: a deterministic multicore simulator. Virtual threads carry
//     per-thread cycle clocks and are scheduled by minimum virtual time, so a
//     36-thread sweep runs faithfully (and reproducibly) on a single-core
//     host. Access costs come from a MESI-like cost model with a per-thread
//     L1 cache simulation, optional SMT sharing and a 2-socket NUMA mode.
//   - RealEnv: a real-concurrency backend built on sync/atomic seqlock
//     cells, used for wall-clock benchmarks and race-detector stress tests.
//
// Sequential data-structure code is written once against the small Ctx
// interface and runs unmodified under direct access (a *Thread), inside a
// speculative transaction (htm.Tx), or under a lock — exactly the
// programming model the paper assumes.
package memsim

// Addr is a word address into the simulated arena. Address 0 is reserved as
// the nil pointer; the allocator never returns it.
type Addr uint32

// NilAddr is the simulated null pointer.
const NilAddr Addr = 0

const (
	// LineShift is log2 of the number of 64-bit words per cache line.
	LineShift = 3
	// WordsPerLine is the number of 64-bit words per simulated cache line
	// (8 words = 64 bytes, matching common hardware).
	WordsPerLine = 1 << LineShift
)

// LineOf returns the cache-line index containing address a.
func LineOf(a Addr) uint32 { return uint32(a) >> LineShift }

// Line metadata encoding (TL2-style versioned write-lock):
//
//	bit 0:     1 when the line is write-locked (by a committing transaction
//	           or a direct read-modify-write)
//	bits 1-63: version — the value of the global version clock at the time
//	           of the last committed write to the line
const metaLockedBit = 1

// MetaLocked reports whether a line metadata word is write-locked.
func MetaLocked(m uint64) bool { return m&metaLockedBit != 0 }

// MetaVersion extracts the version from a line metadata word.
func MetaVersion(m uint64) uint64 { return m >> 1 }

// MakeMeta builds an unlocked metadata word with the given version.
func MakeMeta(version uint64) uint64 { return version << 1 }

// Ctx is the access interface sequential data-structure code is written
// against. It is implemented by *Thread (direct access, used under a lock or
// during initialization) and by *htm.Tx (speculative access inside a
// transaction).
type Ctx interface {
	// Load reads the 64-bit word at a.
	Load(a Addr) uint64
	// Store writes the 64-bit word at a.
	Store(a Addr, v uint64)
	// Alloc allocates a span of words and returns its base address. The
	// words' contents are unspecified; callers must initialize every word
	// they later read.
	Alloc(words int) Addr
	// Free returns a span of words to the allocator. Under a transaction
	// the release is deferred until commit.
	Free(a Addr, words int)
}

// Env is the low-level substrate interface implemented by DetEnv and
// RealEnv. Higher layers (the software HTM, locks, publication arrays)
// are written against it; most code should use the *Thread handle instead.
type Env interface {
	// NumThreads returns the number of worker threads the environment was
	// created with (excluding the bootstrap thread).
	NumThreads() int
	// Thread returns the handle for worker thread id in [0, NumThreads()).
	Thread(id int) *Thread
	// Boot returns a handle usable for single-threaded setup before Run.
	Boot() *Thread
	// Run executes body once per worker thread and returns when all bodies
	// have returned. For DetEnv this drives the deterministic scheduler.
	Run(body func(th *Thread))

	// Alloc and Free manage the word arena. Safe for concurrent use.
	Alloc(words int) Addr
	Free(a Addr, words int)

	// Raw line/word primitives used by the access protocols. These perform
	// no cost accounting; callers pair them with Access.
	LoadMeta(line uint32) uint64
	CASMeta(line uint32, old, new uint64) bool
	StoreMeta(t int, line uint32, m uint64)
	LoadWord(a Addr) uint64
	StoreWord(a Addr, v uint64)

	// LastWriter returns the id of the last thread to commit a write to
	// line, or -1 if the line was never written. It reads bookkeeping the
	// coherence model already maintains and charges no cost — observers use
	// it to attribute conflicts without perturbing the run.
	LastWriter(line uint32) int

	// ReadClock returns the current value of the global version clock.
	ReadClock() uint64
	// TickClock atomically increments the global version clock and returns
	// the new value.
	TickClock() uint64

	// Access charges thread t for one logical access to line (modelled
	// cache/coherence cost). In DetEnv it is also a scheduling point.
	Access(t int, line uint32, write bool)
	// Work charges thread t for c cycles of local computation.
	Work(t int, c int64)
	// IdleUntil parks thread t until its local time reaches deadline — the
	// open-loop primitive: a thread waiting for its next scheduled arrival
	// is idle, not computing, so no execution costs (SMT penalty, jitter)
	// apply to the skipped span. A deadline at or before Now(t) is a no-op
	// (beyond the scheduling point).
	IdleUntil(t int, deadline int64)
	// Yield charges a small cost and (in DetEnv) cedes the virtual CPU; in
	// RealEnv it calls runtime.Gosched.
	Yield(t int)
	// Now returns thread t's local time: virtual cycles in DetEnv,
	// wall-clock nanoseconds since Run started in RealEnv.
	Now(t int) int64
	// Stats returns thread t's access counters.
	Stats(t int) *ThreadStats
}

// Thread is a per-thread handle on an Env. It implements Ctx with direct
// (non-speculative) coherent accesses: loads use a seqlock protocol against
// the line metadata, stores and read-modify-writes briefly write-lock the
// line and bump its version so that concurrent speculative readers abort —
// this is how acquiring the data-structure lock aborts subscribed
// transactions, as in hardware lock elision.
type Thread struct {
	id  int
	env Env
}

// NewThread wraps (env, id); exposed for the backends.
func NewThread(env Env, id int) *Thread { return &Thread{id: id, env: env} }

// ID returns the thread id in [0, NumThreads()), or NumThreads() for the
// bootstrap thread.
func (t *Thread) ID() int { return t.id }

// Env returns the environment the thread belongs to.
func (t *Thread) Env() Env { return t.env }

var _ Ctx = (*Thread)(nil)

// Load performs a direct coherent read of the word at a.
func (t *Thread) Load(a Addr) uint64 {
	line := LineOf(a)
	t.env.Access(t.id, line, false)
	for {
		m1 := t.env.LoadMeta(line)
		if MetaLocked(m1) {
			t.env.Yield(t.id)
			continue
		}
		v := t.env.LoadWord(a)
		if t.env.LoadMeta(line) == m1 {
			return v
		}
		t.env.Yield(t.id)
	}
}

// Store performs a direct coherent write of the word at a, bumping the
// line's version so concurrent speculative readers of the line abort.
func (t *Thread) Store(a Addr, v uint64) {
	line := LineOf(a)
	t.env.Access(t.id, line, true)
	t.lockLine(line)
	t.env.StoreWord(a, v)
	t.env.StoreMeta(t.id, line, MakeMeta(t.env.TickClock()))
}

// CAS atomically compares-and-swaps the word at a. It returns the value
// observed and whether the swap happened.
func (t *Thread) CAS(a Addr, old, new uint64) (uint64, bool) {
	line := LineOf(a)
	t.env.Access(t.id, line, true)
	m := t.lockLine(line)
	v := t.env.LoadWord(a)
	if v != old {
		t.env.StoreMeta(t.id, line, m) // release without version bump
		return v, false
	}
	t.env.StoreWord(a, new)
	t.env.StoreMeta(t.id, line, MakeMeta(t.env.TickClock()))
	return v, true
}

// Add atomically adds delta to the word at a and returns the previous value.
func (t *Thread) Add(a Addr, delta uint64) uint64 {
	line := LineOf(a)
	t.env.Access(t.id, line, true)
	t.lockLine(line)
	v := t.env.LoadWord(a)
	t.env.StoreWord(a, v+delta)
	t.env.StoreMeta(t.id, line, MakeMeta(t.env.TickClock()))
	return v
}

// lockLine spins until it write-locks the line and returns the metadata word
// observed before locking.
func (t *Thread) lockLine(line uint32) uint64 {
	for {
		m := t.env.LoadMeta(line)
		if !MetaLocked(m) && t.env.CASMeta(line, m, m|metaLockedBit) {
			return m
		}
		t.env.Yield(t.id)
	}
}

// Alloc allocates a span of words from the arena.
func (t *Thread) Alloc(words int) Addr { return t.env.Alloc(words) }

// Free returns a span of words to the arena.
func (t *Thread) Free(a Addr, words int) { t.env.Free(a, words) }

// Yield cedes the (virtual) CPU; used in spin loops.
func (t *Thread) Yield() { t.env.Yield(t.id) }

// SpinLoadUntilEq waits until a coherent Load of a observes want. It is
// observably identical — the same accesses, yields and cycle charges in the
// same order — to the open-coded loop
//
//	for t.Load(a) != want {
//		t.Yield()
//	}
//
// On the deterministic backend the waiting goroutine parks and the
// scheduler replays the loop's events inline on whichever goroutine holds
// the host CPU, so futile spin iterations cost no host context switches.
func (t *Thread) SpinLoadUntilEq(a Addr, want uint64) {
	if e, ok := t.env.(*DetEnv); ok && e.running && t.id < e.n {
		e.spinUntilEq(t.id, a, want)
		return
	}
	for t.Load(a) != want {
		t.Yield()
	}
}

// SpinUntilEitherEq waits until a coherent Load of a1 observes want1
// (returning 0) or — probed second within each round — a Load of a2
// observes want2 (returning 1). It is observably identical to
//
//	for {
//		if t.Load(a1) == want1 { return 0 }
//		if t.Load(a2) == want2 { return 1 }
//		t.Yield()
//	}
//
// with the same passive-waiting host behaviour as SpinLoadUntilEq.
func (t *Thread) SpinUntilEitherEq(a1 Addr, want1 uint64, a2 Addr, want2 uint64) int {
	if e, ok := t.env.(*DetEnv); ok && e.running && t.id < e.n {
		return e.spinUntilEitherEq(t.id, a1, want1, a2, want2)
	}
	for {
		if t.Load(a1) == want1 {
			return 0
		}
		if t.Load(a2) == want2 {
			return 1
		}
		t.Yield()
	}
}

// Work charges c cycles of local computation to the thread.
func (t *Thread) Work(c int64) { t.env.Work(t.id, c) }

// IdleUntil parks the thread until its local time reaches deadline; see
// Env.IdleUntil.
func (t *Thread) IdleUntil(deadline int64) { t.env.IdleUntil(t.id, deadline) }

// Now returns the thread's local time (virtual cycles or wall nanoseconds).
func (t *Thread) Now() int64 { return t.env.Now(t.id) }

// Stats returns the thread's access counters.
func (t *Thread) Stats() *ThreadStats { return t.env.Stats(t.id) }

// ThreadStats counts a thread's memory behaviour. In DetEnv the cache
// counters come from the L1/coherence model; in RealEnv only the operation
// counters are maintained.
type ThreadStats struct {
	Loads           uint64 // logical read accesses
	Stores          uint64 // logical write accesses
	L1Hits          uint64 // accesses served by the simulated L1
	L1Misses        uint64 // all L1 misses (includes coherence/remote)
	CoherenceMisses uint64 // misses caused by another thread's write
	RemoteMisses    uint64 // coherence misses crossing a socket boundary
	Yields          uint64 // spin-loop yields
	WorkCycles      int64  // cycles charged via Work
	IdleCycles      int64  // cycles skipped via IdleUntil
}

// Reset zeroes the counters.
func (s *ThreadStats) Reset() { *s = ThreadStats{} }

// MissRate returns the fraction of accesses that missed in L1.
func (s *ThreadStats) MissRate() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// Merge adds o's counters into s.
func (s *ThreadStats) Merge(o *ThreadStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.CoherenceMisses += o.CoherenceMisses
	s.RemoteMisses += o.RemoteMisses
	s.Yields += o.Yields
	s.WorkCycles += o.WorkCycles
	s.IdleCycles += o.IdleCycles
}
