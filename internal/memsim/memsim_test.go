package memsim

import (
	"testing"
	"testing/quick"
)

// envs returns one environment of each backend for conformance testing.
func envs(t *testing.T, threads int) map[string]Env {
	t.Helper()
	return map[string]Env{
		"det":  NewDet(DetConfig{Threads: threads}),
		"real": NewReal(RealConfig{Threads: threads}),
	}
}

func TestAllocReturnsDistinctNonNilSpans(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			seen := map[Addr]bool{}
			for i := 0; i < 1000; i++ {
				a := e.Alloc(4)
				if a == NilAddr {
					t.Fatal("Alloc returned the nil address")
				}
				for w := Addr(0); w < 4; w++ {
					if seen[a+w] {
						t.Fatalf("span starting at %d overlaps a previous span", a)
					}
					seen[a+w] = true
				}
			}
		})
	}
}

func TestAllocSmallSpansDoNotCrossLines(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				words := 1 + i%WordsPerLine
				a := e.Alloc(words)
				first := LineOf(a)
				last := LineOf(a + Addr(words) - 1)
				if first != last {
					t.Fatalf("Alloc(%d) = %d spans lines %d and %d", words, a, first, last)
				}
			}
		})
	}
}

func TestAllocMultiLineSpansAreLineAligned(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			for _, words := range []int{8, 9, 16, 40} {
				a := e.Alloc(words)
				if a%WordsPerLine != 0 {
					t.Fatalf("Alloc(%d) = %d not line aligned", words, a)
				}
			}
		})
	}
}

func TestFreeThenAllocReusesSpan(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			a := e.Alloc(6)
			e.Free(a, 6)
			b := e.Alloc(6)
			if a != b {
				t.Fatalf("expected freed span %d to be reused, got %d", a, b)
			}
		})
	}
}

func TestDirectLoadStoreRoundTrip(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			a := e.Alloc(3)
			th.Store(a, 42)
			th.Store(a+1, ^uint64(0))
			th.Store(a+2, 0)
			if got := th.Load(a); got != 42 {
				t.Errorf("Load(a) = %d, want 42", got)
			}
			if got := th.Load(a + 1); got != ^uint64(0) {
				t.Errorf("Load(a+1) = %d, want max", got)
			}
			if got := th.Load(a + 2); got != 0 {
				t.Errorf("Load(a+2) = %d, want 0", got)
			}
		})
	}
}

func TestCASSemantics(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			a := e.Alloc(1)
			th.Store(a, 5)
			if old, ok := th.CAS(a, 5, 9); !ok || old != 5 {
				t.Fatalf("CAS(5->9) = (%d,%v), want (5,true)", old, ok)
			}
			if old, ok := th.CAS(a, 5, 11); ok || old != 9 {
				t.Fatalf("failing CAS = (%d,%v), want (9,false)", old, ok)
			}
			if got := th.Load(a); got != 9 {
				t.Fatalf("value after failed CAS = %d, want 9", got)
			}
		})
	}
}

func TestAddReturnsPreviousValue(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			a := e.Alloc(1)
			th.Store(a, 10)
			if old := th.Add(a, 3); old != 10 {
				t.Fatalf("Add returned %d, want 10", old)
			}
			if got := th.Load(a); got != 13 {
				t.Fatalf("value after Add = %d, want 13", got)
			}
		})
	}
}

func TestStoreBumpsLineVersion(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			a := e.Alloc(1)
			before := MetaVersion(e.LoadMeta(LineOf(a)))
			th.Store(a, 1)
			after := MetaVersion(e.LoadMeta(LineOf(a)))
			if after <= before {
				t.Fatalf("version did not advance: %d -> %d", before, after)
			}
			if MetaLocked(e.LoadMeta(LineOf(a))) {
				t.Fatal("line left locked after Store")
			}
		})
	}
}

func TestFailedCASDoesNotBumpVersion(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			a := e.Alloc(1)
			th.Store(a, 7)
			before := e.LoadMeta(LineOf(a))
			th.CAS(a, 100, 200)
			if after := e.LoadMeta(LineOf(a)); after != before {
				t.Fatalf("failed CAS changed meta %d -> %d", before, after)
			}
		})
	}
}

func TestClockMonotonic(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			prev := e.ReadClock()
			for i := 0; i < 100; i++ {
				v := e.TickClock()
				if v <= prev {
					t.Fatalf("clock went %d -> %d", prev, v)
				}
				prev = v
			}
		})
	}
}

func TestMetaEncoding(t *testing.T) {
	m := MakeMeta(77)
	if MetaLocked(m) {
		t.Error("fresh meta reports locked")
	}
	if got := MetaVersion(m); got != 77 {
		t.Errorf("MetaVersion = %d, want 77", got)
	}
	if !MetaLocked(m | 1) {
		t.Error("locked bit not detected")
	}
}

func TestQuickLoadStoreAgainstModel(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			base := e.Alloc(64)
			model := make(map[Addr]uint64)
			f := func(off uint8, v uint64, write bool) bool {
				a := base + Addr(off%64)
				if write {
					th.Store(a, v)
					model[a] = v
					return true
				}
				return th.Load(a) == model[a]
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRealEnvConcurrentAdds(t *testing.T) {
	const threads, perThread = 8, 2000
	e := NewReal(RealConfig{Threads: threads})
	a := e.Alloc(1)
	e.Boot().Store(a, 0)
	e.Run(func(th *Thread) {
		for i := 0; i < perThread; i++ {
			th.Add(a, 1)
		}
	})
	if got := e.Boot().Load(a); got != threads*perThread {
		t.Fatalf("sum = %d, want %d", got, threads*perThread)
	}
}

func TestRealEnvConcurrentCASCounter(t *testing.T) {
	const threads, perThread = 6, 500
	e := NewReal(RealConfig{Threads: threads})
	a := e.Alloc(1)
	e.Run(func(th *Thread) {
		for i := 0; i < perThread; i++ {
			for {
				v := th.Load(a)
				if _, ok := th.CAS(a, v, v+1); ok {
					break
				}
				th.Yield()
			}
		}
	})
	if got := e.Boot().Load(a); got != threads*perThread {
		t.Fatalf("sum = %d, want %d", got, threads*perThread)
	}
}

func TestDetEnvConcurrentAdds(t *testing.T) {
	const threads, perThread = 16, 300
	e := NewDet(DetConfig{Threads: threads})
	a := e.Alloc(1)
	e.Run(func(th *Thread) {
		for i := 0; i < perThread; i++ {
			th.Add(a, 1)
		}
	})
	if got := e.Boot().Load(a); got != threads*perThread {
		t.Fatalf("sum = %d, want %d", got, threads*perThread)
	}
}

// detTrace runs a fixed interleaving-sensitive workload and returns a
// fingerprint of the resulting state and clocks.
func detTrace() (uint64, []int64) {
	e := NewDet(DetConfig{Threads: 7})
	a := e.Alloc(8)
	e.Run(func(th *Thread) {
		for i := 0; i < 200; i++ {
			slot := a + Addr((th.ID()+i)%8)
			v := th.Load(slot)
			th.Store(slot, v+uint64(th.ID())+1)
			if i%13 == 0 {
				th.Yield()
			}
		}
	})
	var fp uint64
	for w := Addr(0); w < 8; w++ {
		fp = fp*1000003 + e.Boot().Load(a+w)
	}
	clocks := make([]int64, e.NumThreads())
	for i := range clocks {
		clocks[i] = e.Now(i)
	}
	return fp, clocks
}

func TestDetEnvDeterministic(t *testing.T) {
	fp1, c1 := detTrace()
	fp2, c2 := detTrace()
	if fp1 != fp2 {
		t.Fatalf("state fingerprints differ: %d vs %d", fp1, fp2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("thread %d clock differs: %d vs %d", i, c1[i], c2[i])
		}
	}
}

func TestDetEnvSchedulesByMinimumClock(t *testing.T) {
	e := NewDet(DetConfig{Threads: 2})
	var order []int
	e.Run(func(th *Thread) {
		// Thread 0 does expensive work first; thread 1 should run its
		// accesses before thread 0's follow-up access.
		if th.ID() == 0 {
			th.Work(1_000_000)
		}
		a := e.Alloc(1)
		th.Store(a, 1)
		order = append(order, th.ID())
	})
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("expected thread 1 to finish first, got order %v", order)
	}
}

func TestDetEnvRunPanicsPropagate(t *testing.T) {
	e := NewDet(DetConfig{Threads: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("panic from worker body was swallowed")
		}
	}()
	e.Run(func(th *Thread) {
		if th.ID() == 1 {
			panic("boom")
		}
		th.Yield()
	})
}

func TestDetEnvNowAdvancesWithWork(t *testing.T) {
	e := NewDet(DetConfig{Threads: 1})
	e.Run(func(th *Thread) {
		before := th.Now()
		th.Work(123)
		if th.Now()-before != 123 {
			t.Errorf("Work(123) advanced clock by %d", th.Now()-before)
		}
	})
}

func TestDetEnvSMTPenalty(t *testing.T) {
	cost := DefaultCostParams()
	cost.CoresPerSocket = 2
	cost.SMTPenaltyPct = 100
	// 4 threads on 2 cores: every thread has an active sibling.
	e := NewDet(DetConfig{Threads: 4, Cost: cost})
	e.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Work(100)
		}
	})
	if got := e.Now(0); got != 200 {
		t.Fatalf("SMT-inflated work = %d cycles, want 200", got)
	}
}

func TestDetEnvNoSMTPenaltyWithoutSibling(t *testing.T) {
	cost := DefaultCostParams()
	cost.CoresPerSocket = 8
	cost.SMTPenaltyPct = 100
	e := NewDet(DetConfig{Threads: 2, Cost: cost}) // 2 threads, 8 cores
	e.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Work(100)
		}
	})
	if got := e.Now(0); got != 100 {
		t.Fatalf("work = %d cycles, want 100 (no sibling)", got)
	}
}

func TestCacheModelHitAfterMiss(t *testing.T) {
	e := NewDet(DetConfig{Threads: 1})
	a := e.Alloc(1)
	e.Run(func(th *Thread) {
		th.Load(a)
		st := th.Stats()
		misses := st.L1Misses
		th.Load(a)
		if st.L1Misses != misses {
			t.Error("second load of same line missed")
		}
		if st.L1Hits == 0 {
			t.Error("expected at least one hit")
		}
	})
}

func TestCacheModelCoherenceInvalidation(t *testing.T) {
	e := NewDet(DetConfig{Threads: 2})
	a := e.Alloc(1)
	turn := make(chan int, 1) // logical phases enforced via clocks below
	_ = turn
	e.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Load(a) // warm thread 0's cache
			th.Work(1000)
			// By now thread 1 (cheaper clock) has written the line.
			before := th.Stats().CoherenceMisses
			th.Load(a)
			if th.Stats().CoherenceMisses != before+1 {
				t.Errorf("expected a coherence miss after remote write")
			}
		} else {
			th.Work(10) // run after thread 0's first load
			th.Store(a, 99)
		}
	})
}

func TestCacheModelRemoteMissAcrossSockets(t *testing.T) {
	cost := TwoSocketCostParams()
	cost.CoresPerSocket = 1 // thread 0 -> socket 0, thread 1 -> socket 1
	cost.SMTPenaltyPct = 0
	e := NewDet(DetConfig{Threads: 2, Cost: cost})
	a := e.Alloc(1)
	e.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Store(a, 5)
			th.Work(1000)
		} else {
			th.Work(100) // let thread 0 write first
			th.Load(a)
			if th.Stats().RemoteMisses == 0 {
				t.Error("expected a remote (cross-socket) miss")
			}
		}
	})
}

func TestL1CacheLRUEviction(t *testing.T) {
	c := newL1Cache(1, 2) // one set, two ways
	c.fill(10, 1)
	c.fill(20, 1)
	if !c.lookup(10, 1) || !c.lookup(20, 1) {
		t.Fatal("both lines should be resident")
	}
	c.lookup(10, 1) // make 10 most recently used
	c.fill(30, 1)   // evicts 20
	if c.lookup(20, 1) {
		t.Error("line 20 should have been evicted")
	}
	if !c.lookup(10, 1) || !c.lookup(30, 1) {
		t.Error("lines 10 and 30 should be resident")
	}
}

func TestL1CacheVersionInvalidation(t *testing.T) {
	c := newL1Cache(4, 2)
	c.fill(5, 3)
	if !c.lookup(5, 3) {
		t.Fatal("expected hit at matching version")
	}
	if c.lookup(5, 4) {
		t.Fatal("expected miss at newer version")
	}
}

func TestCostParamsTopology(t *testing.T) {
	p := TwoSocketCostParams() // 18 cores x 2 sockets
	if got := p.coreOf(0); got != 0 {
		t.Errorf("coreOf(0) = %d", got)
	}
	if got := p.coreOf(36); got != 0 {
		t.Errorf("coreOf(36) = %d, want 0 (SMT sibling)", got)
	}
	if got := p.socketOf(0); got != 0 {
		t.Errorf("socketOf(0) = %d", got)
	}
	if got := p.socketOf(18); got != 1 {
		t.Errorf("socketOf(18) = %d, want 1", got)
	}
	if got := p.socketOf(54); got != 1 {
		t.Errorf("socketOf(54) = %d, want 1", got)
	}
	if !p.smtActive(0, 72) {
		t.Error("thread 0 of 72 should have an active sibling")
	}
	if p.smtActive(0, 36) {
		t.Error("thread 0 of 36 should not have an active sibling")
	}
	if !p.smtActive(40, 41) {
		t.Error("thread 40 is itself a high sibling")
	}
}

func TestThreadStatsMergeAndMissRate(t *testing.T) {
	a := ThreadStats{Loads: 10, L1Hits: 6, L1Misses: 2}
	b := ThreadStats{Loads: 5, L1Hits: 1, L1Misses: 1, CoherenceMisses: 1}
	a.Merge(&b)
	if a.Loads != 15 || a.L1Hits != 7 || a.L1Misses != 3 || a.CoherenceMisses != 1 {
		t.Fatalf("merge result wrong: %+v", a)
	}
	if got := a.MissRate(); got != 0.3 {
		t.Fatalf("MissRate = %v, want 0.3", got)
	}
	var empty ThreadStats
	if empty.MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestResetStats(t *testing.T) {
	e := NewDet(DetConfig{Threads: 1})
	a := e.Alloc(1)
	e.Run(func(th *Thread) {
		th.Store(a, 1)
		th.Work(50)
	})
	e.ResetStats()
	if e.Now(0) != 0 {
		t.Error("clock not reset")
	}
	if s := e.Stats(0); s.Stores != 0 || s.WorkCycles != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestBootThreadUsableBeforeRun(t *testing.T) {
	for name, e := range envs(t, 2) {
		t.Run(name, func(t *testing.T) {
			boot := e.Boot()
			a := e.Alloc(1)
			boot.Store(a, 17)
			e.Run(func(th *Thread) {
				if got := th.Load(a); got != 17 {
					t.Errorf("worker saw %d, want 17", got)
				}
			})
		})
	}
}

func TestDirectOpsAcrossPageBoundary(t *testing.T) {
	for name, e := range envs(t, 1) {
		t.Run(name, func(t *testing.T) {
			th := e.Boot()
			// Allocate enough to cross at least one page boundary.
			var last Addr
			for i := 0; i < 3*pageWords/WordsPerLine; i++ {
				last = e.Alloc(WordsPerLine)
				th.Store(last, uint64(i))
			}
			if got := th.Load(last); got != uint64(3*pageWords/WordsPerLine-1) {
				t.Fatalf("cross-page value = %d", got)
			}
		})
	}
}
