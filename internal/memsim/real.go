package memsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// realPage is one arena page of the real-concurrency backend.
type realPage struct {
	words [pageWords]atomic.Uint64
	metas [pageLines]atomic.Uint64
	lastW [pageLines]atomic.Int32
}

func newRealPage() *realPage {
	p := &realPage{}
	for i := range p.lastW {
		p.lastW[i].Store(-1)
	}
	return p
}

// RealConfig configures a real-concurrency environment.
type RealConfig struct {
	// Threads is the number of worker goroutines Run will launch.
	Threads int
}

// RealEnv is the *instrumented* real-concurrency backend: cells are
// seqlock-protected atomics, Yield maps to runtime.Gosched, and Now
// measures wall-clock nanoseconds, but every access still routes through
// the Env interface and maintains stats, last-writer tracking and
// TL2-style meta words. That instrumentation is what race-detector
// stress tests and wall-clock sanity runs of the simulated engines need
// — and exactly what a production fast path cannot afford. The
// production wall-clock backend is internal/native (exposed as
// hcf.NewNative), which drops the Env indirection entirely and runs
// operations over direct atomics. The paper-figure experiments run on
// DetEnv.
type RealEnv struct {
	n     int
	pages atomic.Pointer[[]*realPage]
	clock atomic.Uint64

	allocMu  sync.Mutex
	nextFree Addr
	freelist map[int][]Addr

	threads []*Thread
	stats   []paddedStats

	start atomic.Int64 // Run start, ns
}

// paddedStats avoids false sharing between per-thread counters: the pad
// is computed from the live ThreadStats size so adding a counter field
// cannot silently put two threads' stats on one cache line.
type paddedStats struct {
	s ThreadStats
	_ [(64 - unsafe.Sizeof(ThreadStats{})%64) % 64]byte
}

var _ Env = (*RealEnv)(nil)

// NewReal creates a real-concurrency environment with cfg.Threads worker
// threads plus a bootstrap thread (id == cfg.Threads).
func NewReal(cfg RealConfig) *RealEnv {
	if cfg.Threads <= 0 {
		panic(fmt.Sprintf("memsim: invalid thread count %d", cfg.Threads))
	}
	e := &RealEnv{
		n:        cfg.Threads,
		nextFree: WordsPerLine,
		freelist: make(map[int][]Addr),
	}
	pages := []*realPage{}
	e.pages.Store(&pages)
	total := cfg.Threads + 1
	e.threads = make([]*Thread, total)
	e.stats = make([]paddedStats, total)
	for i := 0; i < total; i++ {
		e.threads[i] = NewThread(e, i)
	}
	e.start.Store(time.Now().UnixNano())
	return e
}

// NumThreads returns the number of worker threads.
func (e *RealEnv) NumThreads() int { return e.n }

// Thread returns worker thread id's handle.
func (e *RealEnv) Thread(id int) *Thread { return e.threads[id] }

// Boot returns the bootstrap thread handle.
func (e *RealEnv) Boot() *Thread { return e.threads[e.n] }

// Run executes body once per worker thread in its own goroutine and waits
// for all of them.
func (e *RealEnv) Run(body func(th *Thread)) {
	e.start.Store(time.Now().UnixNano())
	var wg sync.WaitGroup
	for i := 0; i < e.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(e.threads[id])
		}(i)
	}
	wg.Wait()
}

// page returns the arena page holding word index w.
func (e *RealEnv) page(w uint32) *realPage {
	pages := *e.pages.Load()
	return pages[w>>pageShift]
}

// growTo ensures pages exist up to and including word index w. Caller holds
// allocMu.
func (e *RealEnv) growTo(w Addr) {
	need := int(uint32(w)>>pageShift) + 1
	old := *e.pages.Load()
	if need <= len(old) {
		return
	}
	grown := make([]*realPage, need)
	copy(grown, old)
	for i := len(old); i < need; i++ {
		grown[i] = newRealPage()
	}
	e.pages.Store(&grown)
}

// Alloc allocates a span of words. Safe for concurrent use.
func (e *RealEnv) Alloc(words int) Addr {
	if words <= 0 {
		panic("memsim: Alloc of non-positive span")
	}
	e.allocMu.Lock()
	defer e.allocMu.Unlock()
	if fl := e.freelist[words]; len(fl) > 0 {
		a := fl[len(fl)-1]
		e.freelist[words] = fl[:len(fl)-1]
		return a
	}
	a := e.nextFree
	if words >= WordsPerLine || int(a%WordsPerLine)+words > WordsPerLine {
		if r := a % WordsPerLine; r != 0 {
			a += WordsPerLine - r
		}
	}
	e.nextFree = a + Addr(words)
	e.growTo(e.nextFree)
	return a
}

// Free returns a span to the allocator.
func (e *RealEnv) Free(a Addr, words int) {
	e.allocMu.Lock()
	defer e.allocMu.Unlock()
	e.freelist[words] = append(e.freelist[words], a)
}

// LoadMeta returns the metadata word of a line.
func (e *RealEnv) LoadMeta(line uint32) uint64 {
	return e.page(line << LineShift).metas[line%pageLines].Load()
}

// CASMeta compares-and-swaps a line's metadata word.
func (e *RealEnv) CASMeta(line uint32, old, new uint64) bool {
	return e.page(line << LineShift).metas[line%pageLines].CompareAndSwap(old, new)
}

// StoreMeta stores a line's metadata word and records t as last writer when
// releasing with a new version.
func (e *RealEnv) StoreMeta(t int, line uint32, m uint64) {
	p := e.page(line << LineShift)
	if !MetaLocked(m) && t >= 0 {
		p.lastW[line%pageLines].Store(int32(t))
	}
	p.metas[line%pageLines].Store(m)
}

// LoadWord reads a word.
func (e *RealEnv) LoadWord(a Addr) uint64 {
	return e.page(uint32(a)).words[uint32(a)%pageWords].Load()
}

// StoreWord writes a word.
func (e *RealEnv) StoreWord(a Addr, v uint64) {
	e.page(uint32(a)).words[uint32(a)%pageWords].Store(v)
}

// LastWriter returns the last thread to commit a write to line, or -1.
func (e *RealEnv) LastWriter(line uint32) int {
	return int(e.page(line << LineShift).lastW[line%pageLines].Load())
}

// ReadClock returns the global version clock.
func (e *RealEnv) ReadClock() uint64 { return e.clock.Load() }

// TickClock increments and returns the global version clock.
func (e *RealEnv) TickClock() uint64 { return e.clock.Add(1) }

// Access counts the access; RealEnv runs at native speed, so no cost is
// modelled.
func (e *RealEnv) Access(t int, line uint32, write bool) {
	st := &e.stats[t].s
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
}

// Work is a no-op in real time (the counter is still maintained so shared
// code can report it).
func (e *RealEnv) Work(t int, c int64) {
	e.stats[t].s.WorkCycles += c
}

// IdleUntil parks the calling goroutine until wall time reaches deadline
// (nanoseconds since Run started), sleeping for long waits and yielding
// through the tail so the wake-up lands close to the deadline.
func (e *RealEnv) IdleUntil(t int, deadline int64) {
	start := e.Now(t)
	if deadline <= start {
		return
	}
	e.stats[t].s.IdleCycles += deadline - start
	for {
		remaining := deadline - e.Now(t)
		if remaining <= 0 {
			return
		}
		if remaining > int64(time.Millisecond) {
			time.Sleep(time.Duration(remaining) - time.Millisecond)
		} else {
			runtime.Gosched()
		}
	}
}

// Yield cedes the OS thread.
func (e *RealEnv) Yield(t int) {
	e.stats[t].s.Yields++
	runtime.Gosched()
}

// Now returns wall nanoseconds since the last Run started.
func (e *RealEnv) Now(t int) int64 {
	return time.Now().UnixNano() - e.start.Load()
}

// Stats returns thread t's counters. Read them only when the thread is not
// running (e.g. after Run returns).
func (e *RealEnv) Stats(t int) *ThreadStats { return &e.stats[t].s }
