package memsim

// Focused race coverage for RealEnv's allocator: concurrent Alloc/Free
// traffic forces repeated arena growth (growTo swaps the page-table
// pointer under allocMu) while other goroutines hammer word and meta
// accessors on already-published spans. The page-table handoff relies on
// atomic.Pointer publication — a reader that learned an address through
// any atomic cell must observe a page table containing its page — and
// this test is the -race witness for that argument.

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRealEnvAllocGrowthRace runs allocators against accessors across
// several page boundaries. Run under -race (CI does).
func TestRealEnvAllocGrowthRace(t *testing.T) {
	const (
		allocators = 4
		accessors  = 4
		spansEach  = 1000
		spanWords  = 32 // 1000*4*32 words ≈ 7 pages, ~half recycled via Free
	)
	e := NewReal(RealConfig{Threads: allocators + accessors})

	// published is a ring of Pack(addr, spanWords) entries the accessors
	// sample; slot 0 is filled before workers start so every accessor
	// always has a target.
	var published [256]atomic.Uint64
	var pubIdx atomic.Uint64
	first := e.Alloc(spanWords)
	published[0].Store(uint64(first)<<8 | spanWords)

	var allocWg, accWg sync.WaitGroup
	for g := 0; g < allocators; g++ {
		allocWg.Add(1)
		go func(g int) {
			defer allocWg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xA110C))
			for i := 0; i < spansEach; i++ {
				a := e.Alloc(spanWords)
				for w := 0; w < spanWords; w++ {
					e.StoreWord(a+Addr(w), uint64(a)+uint64(w))
				}
				for w := 0; w < spanWords; w++ {
					if got := e.LoadWord(a + Addr(w)); got != uint64(a)+uint64(w) {
						t.Errorf("span %d word %d: read %d", a, w, got)
						return
					}
				}
				slot := pubIdx.Add(1) % uint64(len(published))
				old := published[slot].Swap(uint64(a)<<8 | spanWords)
				// Recycle the span we displaced: it is no longer published,
				// but accessors that sampled it may still touch it — legal,
				// since freed arena memory stays valid and atomic.
				if old != 0 && rng.IntN(2) == 0 {
					e.Free(Addr(old>>8), int(old&0xFF))
				}
			}
		}(g)
	}
	var stop atomic.Bool
	for g := 0; g < accessors; g++ {
		accWg.Add(1)
		go func(g int) {
			defer accWg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xACCE55))
			tid := allocators + g
			for !stop.Load() {
				p := published[rng.IntN(len(published))].Load()
				if p == 0 {
					continue
				}
				a := Addr(p >> 8)
				span := int(p & 0xFF)
				w := a + Addr(rng.IntN(span))
				line := LineOf(w)
				switch rng.IntN(5) {
				case 0:
					e.LoadWord(w)
				case 1:
					e.StoreWord(w, uint64(w))
				case 2:
					e.LoadMeta(line)
				case 3:
					if m := e.LoadMeta(line); e.CASMeta(line, m, m+2) {
						e.StoreMeta(tid, line, m)
					}
				default:
					e.Access(tid, line, rng.IntN(2) == 0)
				}
			}
		}(g)
	}
	// Accessors run for the allocators' whole lifetime, so every growth
	// event races against live accessor traffic.
	allocWg.Wait()
	stop.Store(true)
	accWg.Wait()

	// Growth actually happened: the arena must span several pages now.
	if pages := len(*e.pages.Load()); pages < 3 {
		t.Fatalf("arena grew to only %d pages; the test no longer exercises growth", pages)
	}
}
