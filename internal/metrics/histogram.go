// Package metrics implements the HCF observability layer: lock-free
// per-thread sharded counters and log₂-bucketed latency histograms, a
// time-series sampler that turns cumulative counters into per-interval
// records, and machine-readable exporters (JSON, CSV, Prometheus text
// exposition).
//
// The package is deliberately generic: dimensions (operation classes,
// completion paths, transaction outcomes) are configured as label sets, so
// the same recorder serves the HCF framework and every baseline engine, on
// both the deterministic simulator (latencies in virtual cycles) and the
// real-concurrency backend (latencies in wall nanoseconds).
//
// Recording is allocation-free in steady state and uses only uncontended
// atomic adds on the caller's own shard, so the enabled cost is a few
// nanoseconds per operation and the disabled cost (a nil check in the
// engines) is unmeasurable.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of log₂ histogram buckets: bucket 0 holds the
// value 0 and bucket b (1..64) holds values in [2^(b-1), 2^b - 1].
const NumBuckets = 65

// Histogram is a lock-free log₂-bucketed histogram of non-negative values.
// A zero Histogram is ready to use. Record is safe for concurrent use, but
// each histogram in a Recorder is written by a single thread (sharding), so
// the atomics are uncontended.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	u := uint64(max(v, 0))
	h.buckets[bits.Len64(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		m := h.max.Load()
		if u <= m || h.max.CompareAndSwap(m, u) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns a consistent-enough copy for reporting. (Counters are
// read individually; during a concurrent run the snapshot may straddle a
// Record, which is harmless for statistics.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain (non-atomic) copy of a Histogram, mergeable
// across shards and queryable for quantiles.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds o into s (Max takes the larger).
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Sub returns s - prev element-wise — the histogram of observations
// recorded between the two snapshots. Max cannot be windowed from log₂
// buckets, so the delta carries s's cumulative Max as an upper bound.
func (s *HistogramSnapshot) Sub(prev *HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Max:   s.Max,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Mean returns the mean observation (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the value range [lo, hi] covered by bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, ^uint64(0)
	}
	return lo, (uint64(1) << b) - 1
}

// CountAtOrBelow estimates how many observations are <= v: full buckets
// below v's bucket count exactly, and the containing bucket contributes by
// linear interpolation — the inverse of Quantile, used for SLO compliance
// ("how many ops met the latency objective"). Float math throughout so the
// top bucket's 2^63-wide range cannot overflow.
func (s *HistogramSnapshot) CountAtOrBelow(v uint64) uint64 {
	var cum uint64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		if v >= hi {
			cum += n
			continue
		}
		if v < lo {
			break
		}
		frac := (float64(v) - float64(lo) + 1) / (float64(hi) - float64(lo) + 1)
		cum += uint64(frac * float64(n))
		break
	}
	if cum > s.Count {
		cum = s.Count
	}
	return cum
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing log₂ bucket. The estimate is clamped to the exact
// observed maximum, so Quantile(1) == Max.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	if rank >= float64(s.Count-1) {
		return s.Max
	}
	var cum uint64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		top := float64(cum+n) - 1 // rank of the bucket's last observation
		if rank <= top {
			lo, hi := bucketBounds(b)
			frac := 0.0
			// A fractional rank can fall in the gap between the previous
			// bucket's last observation and this bucket's first; clamp it
			// into [cum, top] so interpolation stays within the bucket.
			if n > 1 && rank > float64(cum) {
				frac = (rank - float64(cum)) / float64(n-1)
				if frac > 1 {
					frac = 1
				}
			}
			v := uint64(float64(lo) + frac*float64(hi-lo))
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += n
	}
	return s.Max
}
