package metrics

import (
	"encoding/csv"
	"encoding/json"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1 << 20} {
		h.Record(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 0+1+2+3+100+(1<<20) {
		t.Errorf("Sum = %d", got)
	}
	s := h.Snapshot()
	if s.Max != 1<<20 {
		t.Errorf("Max = %d, want %d", s.Max, 1<<20)
	}
	// Bucket placement: 0 → bucket 0, 1 → 1, 2,3 → 2, 100 → 7, 2^20 → 21.
	wantBuckets := map[int]uint64{0: 1, 1: 1, 2: 2, 7: 1, 21: 1}
	for b, n := range s.Buckets {
		if n != wantBuckets[b] {
			t.Errorf("bucket %d = %d, want %d", b, n, wantBuckets[b])
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Errorf("negative value not clamped to zero: %+v", s)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		b      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, ^uint64(0)},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.b)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketBounds(%d) = [%d, %d], want [%d, %d]", c.b, lo, hi, c.lo, c.hi)
		}
	}
}

func TestQuantileExact(t *testing.T) {
	var h Histogram
	h.Record(7) // single observation: every quantile is 7
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%g) = %d, want 7", q, got)
		}
	}

	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	var h Histogram
	for _, v := range []int64{3, 5000, 17, 4096, 900} {
		h.Record(v)
	}
	s := h.Snapshot()
	// Quantile(0) resolves to the minimum's bucket lower bound (3 lives in
	// bucket [2,3]; only Max is tracked exactly).
	if got := s.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %d, want 2 (lower bound of the minimum's bucket)", got)
	}
	if got := s.Quantile(1); got != 5000 {
		t.Errorf("Quantile(1) = %d, want 5000 (the maximum)", got)
	}
	// Out-of-range q is clamped.
	if got := s.Quantile(-1); got != 2 {
		t.Errorf("Quantile(-1) = %d, want 2", got)
	}
	if got := s.Quantile(2); got != 5000 {
		t.Errorf("Quantile(2) = %d, want 5000", got)
	}
}

// TestQuantileMonotone fuzzes random histograms and checks that the
// estimator is monotone in q, stays within the observed range, and that
// Quantile(1) equals the tracked exact maximum — the regression that
// motivated the frac clamp (a rank falling in the gap between one bucket's
// last observation and the next bucket's first drove frac negative,
// producing p90 < p50).
func TestQuantileMonotone(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xA11CE))
		var h Histogram
		n := 1 + rng.IntN(60)
		lo, hi := int64(1<<40), int64(0)
		for i := 0; i < n; i++ {
			v := rng.Int64N(1 << uint(1+rng.IntN(20)))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			h.Record(v)
		}
		s := h.Snapshot()
		prev := uint64(0)
		for qi := 0; qi <= 100; qi++ {
			q := float64(qi) / 100
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < Quantile(%g) = %d (non-monotone)",
					trial, q, v, float64(qi-1)/100, prev)
			}
			if v > uint64(hi) {
				t.Fatalf("trial %d: Quantile(%g) = %d above max %d", trial, q, v, hi)
			}
			prev = v
		}
		if got := s.Quantile(1); got != uint64(hi) {
			t.Fatalf("trial %d: Quantile(1) = %d, want max %d", trial, got, hi)
		}
	}
}

// TestQuantileAccuracy checks the log₂ estimate stays within one bucket
// width of the exact sample quantile.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	var h Histogram
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = rng.Int64N(100_000)
		h.Record(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := float64(s.Quantile(q))
		// A log₂ bucket spans [2^(b-1), 2^b-1], so the estimate can be off
		// by at most a factor of two.
		if got < float64(exact)/2 || got > float64(exact)*2 {
			t.Errorf("Quantile(%g) = %.0f, exact %d: outside one bucket width", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(3000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 3 || sa.Sum != 3030 || sa.Max != 3000 {
		t.Errorf("merged = %+v", sa)
	}
}

func newTestRecorder(t *testing.T) *Recorder {
	t.Helper()
	return MustNew(Config{
		Shards:   4,
		Classes:  []string{"find", "insert"},
		Paths:    []string{"fast", "slow"},
		Outcomes: []string{"commit", "conflict", "capacity"},
		TimeUnit: "cycles",
	})
}

func TestRecorderCounters(t *testing.T) {
	r := newTestRecorder(t)
	r.RecordOp(0, 0, 0, 100) // find/fast on shard 0
	r.RecordOp(1, 0, 0, 200) // find/fast on shard 1
	r.RecordOp(2, 1, 1, 300) // insert/slow on shard 2
	r.RecordTx(0, 0, 50)
	r.RecordTx(1, 1, 60)
	r.RecordTx(1, 1, 70)
	r.RecordLockHold(3, 500)
	r.RecordCombine(2, 5)

	c := r.Counters()
	if c.Ops != 3 {
		t.Errorf("Ops = %d, want 3", c.Ops)
	}
	if c.OpsByClass[0] != 2 || c.OpsByClass[1] != 1 {
		t.Errorf("OpsByClass = %v", c.OpsByClass)
	}
	if c.OpsByPath[0] != 2 || c.OpsByPath[1] != 1 {
		t.Errorf("OpsByPath = %v", c.OpsByPath)
	}
	if c.LatencySum != 600 {
		t.Errorf("LatencySum = %d, want 600", c.LatencySum)
	}
	if c.Commits() != 1 || c.Aborts() != 2 {
		t.Errorf("Commits/Aborts = %d/%d, want 1/2", c.Commits(), c.Aborts())
	}
	if c.LockAcquisitions != 1 || c.LockHoldTime != 500 {
		t.Errorf("lock counters = %d/%d", c.LockAcquisitions, c.LockHoldTime)
	}
	if c.CombinerSessions != 1 || c.CombinedOps != 5 {
		t.Errorf("combining counters = %d/%d", c.CombinerSessions, c.CombinedOps)
	}
	if deg := c.CombiningDegree(); deg != 5 {
		t.Errorf("CombiningDegree = %g, want 5", deg)
	}

	// Cross-shard merge: find/fast was recorded on shards 0 and 1.
	if s := r.OpHistogram(0, 0); s.Count != 2 || s.Sum != 300 {
		t.Errorf("OpHistogram(0,0) = %+v", s)
	}
	if s := r.ClassHistogram(0); s.Count != 2 {
		t.Errorf("ClassHistogram(0).Count = %d, want 2", s.Count)
	}
	if s := r.TxHistogram(1); s.Count != 2 || s.Max != 70 {
		t.Errorf("TxHistogram(1) = %+v", s)
	}
	if s := r.LockHoldHistogram(); s.Count != 1 || s.Sum != 500 {
		t.Errorf("LockHoldHistogram = %+v", s)
	}
}

func TestRecorderOutOfRangeDropped(t *testing.T) {
	r := newTestRecorder(t)
	// None of these may panic or be counted.
	r.RecordOp(-1, 0, 0, 1)
	r.RecordOp(99, 0, 0, 1)
	r.RecordOp(0, -1, 0, 1)
	r.RecordOp(0, 7, 0, 1)
	r.RecordOp(0, 0, -1, 1)
	r.RecordOp(0, 0, 7, 1)
	r.RecordTx(-1, 0, 1)
	r.RecordTx(0, 9, 1)
	r.RecordLockHold(42, 1)
	r.RecordCombine(-3, 1)
	c := r.Counters()
	if c.Ops != 0 || c.Commits() != 0 || c.LockAcquisitions != 0 || c.CombinerSessions != 0 {
		t.Errorf("out-of-range records were counted: %+v", c)
	}
}

func TestRecorderDefaults(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Error("New with Shards=0 should fail")
	}
	r := MustNew(Config{Shards: 1})
	if got := r.Classes(); len(got) != 1 || got[0] != "all" {
		t.Errorf("default Classes = %v", got)
	}
	if got := r.Paths(); len(got) != 1 || got[0] != "op" {
		t.Errorf("default Paths = %v", got)
	}
	if got := r.Outcomes(); len(got) != 1 || got[0] != "commit" {
		t.Errorf("default Outcomes = %v", got)
	}
	if got := r.TimeUnit(); got != "cycles" {
		t.Errorf("default TimeUnit = %q", got)
	}
}

// TestRecordAllocationFree asserts the histogram record path does not
// allocate in steady state — an acceptance criterion for the subsystem.
func TestRecordAllocationFree(t *testing.T) {
	r := newTestRecorder(t)
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Errorf("Histogram.Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.RecordOp(1, 1, 1, 777) }); n != 0 {
		t.Errorf("Recorder.RecordOp allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.RecordTx(1, 1, 9) }); n != 0 {
		t.Errorf("Recorder.RecordTx allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.RecordLockHold(1, 9) }); n != 0 {
		t.Errorf("Recorder.RecordLockHold allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.RecordCombine(1, 3) }); n != 0 {
		t.Errorf("Recorder.RecordCombine allocates %.1f/op, want 0", n)
	}
}

func TestSamplerIntervals(t *testing.T) {
	r := newTestRecorder(t)
	s := NewSampler(r, 100)

	r.RecordOp(0, 0, 0, 10)
	r.RecordOp(0, 0, 0, 10)
	if s.MaybeSample(50) {
		t.Error("sampled before one interval elapsed")
	}
	if !s.MaybeSample(100) {
		t.Error("did not sample at interval boundary")
	}
	r.RecordOp(0, 1, 1, 10)
	if !s.MaybeSample(250) {
		t.Error("did not sample after interval elapsed")
	}
	r.RecordOp(0, 0, 0, 10)
	s.Flush(300) // partial final interval

	ivs := s.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3: %+v", len(ivs), ivs)
	}
	if ivs[0].Start != 0 || ivs[0].End != 100 || ivs[0].Ops != 2 {
		t.Errorf("interval 0 = %+v", ivs[0])
	}
	if ivs[0].Throughput != 2*1e6/100 {
		t.Errorf("interval 0 throughput = %g", ivs[0].Throughput)
	}
	if ivs[1].Start != 100 || ivs[1].End != 250 || ivs[1].Ops != 1 {
		t.Errorf("interval 1 = %+v", ivs[1])
	}
	if ivs[1].OpsByClass[1] != 1 || ivs[1].OpsByClass[0] != 0 {
		t.Errorf("interval 1 OpsByClass = %v (deltas, not cumulative)", ivs[1].OpsByClass)
	}
	if ivs[2].Start != 250 || ivs[2].End != 300 || ivs[2].Ops != 1 {
		t.Errorf("interval 2 = %+v", ivs[2])
	}

	// A second Flush at the same time must not duplicate.
	s.Flush(300)
	if got := len(s.Intervals()); got != 3 {
		t.Errorf("idempotent Flush: got %d intervals, want 3", got)
	}
}

func TestSamplerDisabled(t *testing.T) {
	r := newTestRecorder(t)
	s := NewSampler(r, 0)
	r.RecordOp(0, 0, 0, 10)
	if s.MaybeSample(1_000_000) {
		t.Error("disabled sampler must never MaybeSample")
	}
	s.Flush(500)
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0].Start != 0 || ivs[0].End != 500 || ivs[0].Ops != 1 {
		t.Errorf("disabled sampler Flush: %+v", ivs)
	}
}

func buildTestReport(t *testing.T) Report {
	t.Helper()
	r := newTestRecorder(t)
	s := NewSampler(r, 100)
	r.RecordOp(0, 0, 0, 10)
	r.RecordOp(1, 0, 1, 90)
	r.RecordOp(2, 1, 1, 250)
	r.RecordTx(0, 0, 40)
	r.RecordTx(0, 1, 15)
	r.RecordLockHold(1, 77)
	r.RecordCombine(1, 3)
	s.MaybeSample(100)
	r.RecordOp(0, 0, 0, 20)
	s.Flush(150)
	return BuildReport(r, s, "testsc", "TestEngine", 4)
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := buildTestReport(t)
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Scenario != "testsc" || back.Engine != "TestEngine" || back.Threads != 4 {
		t.Errorf("identity fields: %+v", back)
	}
	if back.Totals.Ops != 4 {
		t.Errorf("Totals.Ops = %d, want 4", back.Totals.Ops)
	}
	if len(back.Intervals) != 2 {
		t.Errorf("intervals = %d, want 2", len(back.Intervals))
	}
	if len(back.ClassLatency) != 2 || back.ClassLatency[0].Class != "find" {
		t.Errorf("ClassLatency = %+v", back.ClassLatency)
	}
	// op rows: find/fast, find/slow, insert/slow
	if len(back.OpLatency) != 3 {
		t.Errorf("OpLatency rows = %d, want 3", len(back.OpLatency))
	}
	if len(back.TxLatency) != 2 {
		t.Errorf("TxLatency rows = %d, want 2", len(back.TxLatency))
	}
}

func TestReportCSVParses(t *testing.T) {
	rep := buildTestReport(t)

	ivCSV := rep.IntervalsCSV()
	rows, err := csv.NewReader(strings.NewReader(ivCSV)).ReadAll()
	if err != nil {
		t.Fatalf("IntervalsCSV does not parse: %v\n%s", err, ivCSV)
	}
	if len(rows) != 3 { // header + 2 intervals
		t.Fatalf("IntervalsCSV rows = %d, want 3", len(rows))
	}
	header := rows[0]
	want := []string{"aborts_conflict", "aborts_capacity", "ops_find", "ops_insert"}
	for _, w := range want {
		found := false
		for _, h := range header {
			if h == w {
				found = true
			}
		}
		if !found {
			t.Errorf("IntervalsCSV header missing %q: %v", w, header)
		}
	}

	latCSV := rep.LatencyCSV()
	rows, err = csv.NewReader(strings.NewReader(latCSV)).ReadAll()
	if err != nil {
		t.Fatalf("LatencyCSV does not parse: %v\n%s", err, latCSV)
	}
	// header + 2 class rows + 3 op rows
	if len(rows) != 6 {
		t.Fatalf("LatencyCSV rows = %d, want 6:\n%s", len(rows), latCSV)
	}

	// The combined export is both tables separated by a blank line.
	parts := strings.Split(rep.CSV(), "\n\n")
	if len(parts) != 2 {
		t.Errorf("CSV() should contain two tables, got %d", len(parts))
	}
}

func TestReportPrometheusFormat(t *testing.T) {
	rep := buildTestReport(t)
	out := rep.Prometheus()

	wantSubstrings := []string{
		`hcf_ops_total{scenario="testsc",engine="TestEngine",class="find",path="fast"} 2`,
		`hcf_op_latency{scenario="testsc",engine="TestEngine",class="find",quantile="0.5"}`,
		`hcf_op_latency_count{scenario="testsc",engine="TestEngine",class="find"} 3`,
		`hcf_tx_total{scenario="testsc",engine="TestEngine",outcome="commit"} 1`,
		`hcf_combiner_sessions_total{scenario="testsc",engine="TestEngine"} 1`,
		`hcf_lock_acquisitions_total{scenario="testsc",engine="TestEngine"} 1`,
	}
	for _, w := range wantSubstrings {
		if !strings.Contains(out, w) {
			t.Errorf("Prometheus output missing %q\n%s", w, out)
		}
	}

	// Structural check: every non-comment line is `name{labels} value` and
	// every metric has HELP and TYPE comments.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		closeBrace := strings.LastIndexByte(line, '}')
		if brace < 0 || closeBrace < brace || closeBrace+2 > len(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := line[:brace]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !types[base] && !types[name] {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
}

func TestReportPromEscape(t *testing.T) {
	r := MustNew(Config{Shards: 1, Classes: []string{`we"ird\class`}})
	r.RecordOp(0, 0, 0, 5)
	rep := BuildReport(r, nil, `sc"n`, "E", 1)
	out := rep.Prometheus()
	if !strings.Contains(out, `scenario="sc\"n"`) {
		t.Errorf("scenario label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `class="we\"ird\\class"`) {
		t.Errorf("class label not escaped:\n%s", out)
	}
}

func TestReportText(t *testing.T) {
	rep := buildTestReport(t)
	out := rep.Text()
	for _, w := range []string{"interval series", "operation latency by class", "p50", "p90", "p99", "find", "insert", "lock hold time"} {
		if !strings.Contains(out, w) {
			t.Errorf("Text() missing %q:\n%s", w, out)
		}
	}
}
