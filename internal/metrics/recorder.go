package metrics

import (
	"fmt"
	"sync/atomic"
)

// Config dimensions a Recorder. All label slices are copied.
type Config struct {
	// Shards is the number of recording threads (worker threads plus the
	// bootstrap thread). Each shard is written by exactly one thread.
	Shards int
	// Classes labels the operation classes (histogram dimension 1).
	Classes []string
	// Paths labels the completion paths — for HCF the four phases, for the
	// baselines their own completion routes (histogram dimension 2).
	Paths []string
	// Outcomes labels transaction outcomes; index 0 must be the commit
	// outcome, the rest abort reasons.
	Outcomes []string
	// TimeUnit names the latency unit in reports: "cycles" on the
	// deterministic simulator, "ns" on the real backend.
	TimeUnit string
	// Groups optionally labels a coarse engine-side dimension — for the
	// sharded engine one label per shard plus one for the cross-shard path —
	// so per-shard activity can be broken out instead of blended. Empty
	// means ungrouped: a single anonymous group, with reports exactly as
	// before. The plain Record* methods always record into group 0; View
	// binds a recorder facet to another group for installation on per-shard
	// engines.
	Groups []string
}

// shard holds one thread's recording state, padded against false sharing
// with neighbouring shards' hot words.
type shard struct {
	lat              []Histogram     // lat[(group*numClasses+class)*numPaths+path]
	tx               []Histogram     // tx[group*numOutcomes+outcome]
	lockHold         []Histogram     // data-structure lock hold time, per group
	combinerSessions []atomic.Uint64 // per group
	combinedOps      []atomic.Uint64 // per group
	_                [64]byte
}

// Recorder accumulates latency histograms and activity counters, sharded
// per thread so that recording is a handful of uncontended atomic adds and
// allocation-free in steady state. All Record* methods take the calling
// thread's id; out-of-range dimensions are dropped rather than panicking so
// a misconfigured recorder can never take down a run.
type Recorder struct {
	cfg     Config
	nc, np  int
	ng      int  // group count (1 when ungrouped)
	grouped bool // whether Config.Groups was non-empty
	shards  []shard
}

// New builds a Recorder. Shards must be positive; empty label sets default
// to a single unnamed entry.
func New(cfg Config) (*Recorder, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("metrics: Shards must be positive, got %d", cfg.Shards)
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []string{"all"}
	}
	if len(cfg.Paths) == 0 {
		cfg.Paths = []string{"op"}
	}
	if len(cfg.Outcomes) == 0 {
		cfg.Outcomes = []string{"commit"}
	}
	if cfg.TimeUnit == "" {
		cfg.TimeUnit = "cycles"
	}
	cfg.Classes = append([]string(nil), cfg.Classes...)
	cfg.Paths = append([]string(nil), cfg.Paths...)
	cfg.Outcomes = append([]string(nil), cfg.Outcomes...)
	cfg.Groups = append([]string(nil), cfg.Groups...)
	r := &Recorder{
		cfg:     cfg,
		nc:      len(cfg.Classes),
		np:      len(cfg.Paths),
		ng:      max(len(cfg.Groups), 1),
		grouped: len(cfg.Groups) > 0,
		shards:  make([]shard, cfg.Shards),
	}
	for i := range r.shards {
		r.shards[i].lat = make([]Histogram, r.ng*r.nc*r.np)
		r.shards[i].tx = make([]Histogram, r.ng*len(cfg.Outcomes))
		r.shards[i].lockHold = make([]Histogram, r.ng)
		r.shards[i].combinerSessions = make([]atomic.Uint64, r.ng)
		r.shards[i].combinedOps = make([]atomic.Uint64, r.ng)
	}
	return r, nil
}

// MustNew is New for statically correct configurations.
func MustNew(cfg Config) *Recorder {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Classes returns the class labels.
func (r *Recorder) Classes() []string { return r.cfg.Classes }

// Paths returns the completion-path labels.
func (r *Recorder) Paths() []string { return r.cfg.Paths }

// Outcomes returns the transaction-outcome labels.
func (r *Recorder) Outcomes() []string { return r.cfg.Outcomes }

// TimeUnit returns the latency unit label.
func (r *Recorder) TimeUnit() string { return r.cfg.TimeUnit }

// Groups returns the group labels (nil when ungrouped).
func (r *Recorder) Groups() []string { return r.cfg.Groups }

// RecordOp records one completed operation of class, finished via path,
// with the given end-to-end latency (into group 0).
func (r *Recorder) RecordOp(t, class, path int, latency int64) {
	r.recordOp(0, t, class, path, latency)
}

func (r *Recorder) recordOp(g, t, class, path int, latency int64) {
	if g < 0 || g >= r.ng || t < 0 || t >= len(r.shards) || class < 0 || class >= r.nc || path < 0 || path >= r.np {
		return
	}
	r.shards[t].lat[(g*r.nc+class)*r.np+path].Record(latency)
}

// RecordTx records one finished transaction attempt with the given outcome
// (0 = commit, 1.. = abort reasons) and duration (into group 0).
func (r *Recorder) RecordTx(t, outcome int, latency int64) {
	r.recordTx(0, t, outcome, latency)
}

func (r *Recorder) recordTx(g, t, outcome int, latency int64) {
	no := len(r.cfg.Outcomes)
	if g < 0 || g >= r.ng || t < 0 || t >= len(r.shards) || outcome < 0 || outcome >= no {
		return
	}
	r.shards[t].tx[g*no+outcome].Record(latency)
}

// RecordLockHold records one data-structure lock acquisition that was held
// for the given duration (into group 0).
func (r *Recorder) RecordLockHold(t int, held int64) {
	r.recordLockHold(0, t, held)
}

func (r *Recorder) recordLockHold(g, t int, held int64) {
	if g < 0 || g >= r.ng || t < 0 || t >= len(r.shards) {
		return
	}
	r.shards[t].lockHold[g].Record(held)
}

// RecordCombine records one combining session that selected n operations
// (including the combiner's own; into group 0).
func (r *Recorder) RecordCombine(t, n int) {
	r.recordCombine(0, t, n)
}

func (r *Recorder) recordCombine(g, t, n int) {
	if g < 0 || g >= r.ng || t < 0 || t >= len(r.shards) {
		return
	}
	r.shards[t].combinerSessions[g].Add(1)
	r.shards[t].combinedOps[g].Add(uint64(n))
}

// GroupView is a Recorder facet bound to one group: it satisfies the same
// recording contract as the Recorder itself (engine.Recorder) but lands
// every sample in its group, so one grouped Recorder can serve several
// sub-engines — e.g. one view per shard of the sharded HCF engine.
type GroupView struct {
	r *Recorder
	g int
}

// View returns the recorder facet bound to group g.
func (r *Recorder) View(g int) *GroupView { return &GroupView{r: r, g: g} }

// RecordOp records one completed operation into the view's group.
func (v *GroupView) RecordOp(t, class, path int, latency int64) {
	v.r.recordOp(v.g, t, class, path, latency)
}

// RecordTx records one finished transaction attempt into the view's group.
func (v *GroupView) RecordTx(t, outcome int, latency int64) {
	v.r.recordTx(v.g, t, outcome, latency)
}

// RecordLockHold records one lock acquisition into the view's group.
func (v *GroupView) RecordLockHold(t int, held int64) {
	v.r.recordLockHold(v.g, t, held)
}

// RecordCombine records one combining session into the view's group.
func (v *GroupView) RecordCombine(t, n int) {
	v.r.recordCombine(v.g, t, n)
}

// Counters is an aggregated snapshot of a Recorder's cumulative counters —
// the raw material of interval sampling. Slices are indexed by the
// Recorder's label sets.
type Counters struct {
	// Ops counts completed operations (sum of OpsByClass).
	Ops uint64 `json:"ops"`
	// OpsByClass and OpsByPath break Ops down by each dimension.
	OpsByClass []uint64 `json:"ops_by_class"`
	OpsByPath  []uint64 `json:"ops_by_path"`
	// LatencySum is the summed operation latency (for mean latency).
	LatencySum uint64 `json:"latency_sum"`
	// Tx counts finished transaction attempts by outcome ([0] = commits).
	Tx []uint64 `json:"tx"`
	// CombinerSessions and CombinedOps count combining activity.
	CombinerSessions uint64 `json:"combiner_sessions"`
	CombinedOps      uint64 `json:"combined_ops"`
	// LockAcquisitions and LockHoldTime count data-structure lock activity.
	LockAcquisitions uint64 `json:"lock_acquisitions"`
	LockHoldTime     uint64 `json:"lock_hold_time"`
	// ByGroup breaks activity out per group (per shard for the sharded
	// engine); present only on grouped recorders.
	ByGroup []GroupCounters `json:"by_group,omitempty"`
}

// GroupCounters is the per-group slice of a Counters snapshot.
type GroupCounters struct {
	// Group is the group label.
	Group string `json:"group"`
	// Ops counts completed operations in the group.
	Ops uint64 `json:"ops"`
	// Commits and Aborts count transaction outcomes in the group.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	// CombinerSessions and CombinedOps count combining activity.
	CombinerSessions uint64 `json:"combiner_sessions"`
	CombinedOps      uint64 `json:"combined_ops"`
	// LockAcquisitions counts data-structure lock acquisitions.
	LockAcquisitions uint64 `json:"lock_acquisitions"`
}

// sub returns g - prev field-wise.
func (g *GroupCounters) sub(prev *GroupCounters) GroupCounters {
	return GroupCounters{
		Group:            g.Group,
		Ops:              g.Ops - prev.Ops,
		Commits:          g.Commits - prev.Commits,
		Aborts:           g.Aborts - prev.Aborts,
		CombinerSessions: g.CombinerSessions - prev.CombinerSessions,
		CombinedOps:      g.CombinedOps - prev.CombinedOps,
		LockAcquisitions: g.LockAcquisitions - prev.LockAcquisitions,
	}
}

// Sub returns c - prev, element-wise (the delta between two snapshots).
func (c *Counters) Sub(prev *Counters) Counters {
	d := Counters{
		Ops:              c.Ops - prev.Ops,
		LatencySum:       c.LatencySum - prev.LatencySum,
		CombinerSessions: c.CombinerSessions - prev.CombinerSessions,
		CombinedOps:      c.CombinedOps - prev.CombinedOps,
		LockAcquisitions: c.LockAcquisitions - prev.LockAcquisitions,
		LockHoldTime:     c.LockHoldTime - prev.LockHoldTime,
		OpsByClass:       make([]uint64, len(c.OpsByClass)),
		OpsByPath:        make([]uint64, len(c.OpsByPath)),
		Tx:               make([]uint64, len(c.Tx)),
	}
	for i := range d.OpsByClass {
		d.OpsByClass[i] = c.OpsByClass[i] - prev.OpsByClass[i]
	}
	for i := range d.OpsByPath {
		d.OpsByPath[i] = c.OpsByPath[i] - prev.OpsByPath[i]
	}
	for i := range d.Tx {
		d.Tx[i] = c.Tx[i] - prev.Tx[i]
	}
	if len(c.ByGroup) > 0 && len(prev.ByGroup) == len(c.ByGroup) {
		d.ByGroup = make([]GroupCounters, len(c.ByGroup))
		for i := range d.ByGroup {
			d.ByGroup[i] = c.ByGroup[i].sub(&prev.ByGroup[i])
		}
	}
	return d
}

// Commits returns the committed-transaction count.
func (c *Counters) Commits() uint64 {
	if len(c.Tx) == 0 {
		return 0
	}
	return c.Tx[0]
}

// Aborts returns the total aborted-transaction count.
func (c *Counters) Aborts() uint64 {
	var n uint64
	for _, v := range c.Tx[min(1, len(c.Tx)):] {
		n += v
	}
	return n
}

// CombiningDegree returns mean operations per combining session.
func (c *Counters) CombiningDegree() float64 {
	if c.CombinerSessions == 0 {
		return 0
	}
	return float64(c.CombinedOps) / float64(c.CombinerSessions)
}

// Counters aggregates all shards' cumulative counters. On grouped
// recorders the flat fields still cover every group (so ungrouped
// consumers are unaffected) and ByGroup carries the per-group breakout.
func (r *Recorder) Counters() Counters {
	no := len(r.cfg.Outcomes)
	c := Counters{
		OpsByClass: make([]uint64, r.nc),
		OpsByPath:  make([]uint64, r.np),
		Tx:         make([]uint64, no),
	}
	var byGroup []GroupCounters
	if r.grouped {
		byGroup = make([]GroupCounters, r.ng)
		for g := range byGroup {
			byGroup[g].Group = r.cfg.Groups[g]
		}
	}
	for s := range r.shards {
		sh := &r.shards[s]
		for g := 0; g < r.ng; g++ {
			var gOps uint64
			for cl := 0; cl < r.nc; cl++ {
				for p := 0; p < r.np; p++ {
					h := &sh.lat[(g*r.nc+cl)*r.np+p]
					n := h.Count()
					c.Ops += n
					gOps += n
					c.OpsByClass[cl] += n
					c.OpsByPath[p] += n
					c.LatencySum += h.Sum()
				}
			}
			var gCommits, gAborts uint64
			for o := 0; o < no; o++ {
				n := sh.tx[g*no+o].Count()
				c.Tx[o] += n
				if o == 0 {
					gCommits += n
				} else {
					gAborts += n
				}
			}
			sessions := sh.combinerSessions[g].Load()
			combined := sh.combinedOps[g].Load()
			locks := sh.lockHold[g].Count()
			c.CombinerSessions += sessions
			c.CombinedOps += combined
			c.LockAcquisitions += locks
			c.LockHoldTime += sh.lockHold[g].Sum()
			if byGroup != nil {
				byGroup[g].Ops += gOps
				byGroup[g].Commits += gCommits
				byGroup[g].Aborts += gAborts
				byGroup[g].CombinerSessions += sessions
				byGroup[g].CombinedOps += combined
				byGroup[g].LockAcquisitions += locks
			}
		}
	}
	c.ByGroup = byGroup
	return c
}

// OpHistogram returns the merged latency histogram for (class, path),
// groups merged.
func (r *Recorder) OpHistogram(class, path int) HistogramSnapshot {
	var s HistogramSnapshot
	if class < 0 || class >= r.nc || path < 0 || path >= r.np {
		return s
	}
	for i := range r.shards {
		for g := 0; g < r.ng; g++ {
			o := r.shards[i].lat[(g*r.nc+class)*r.np+path].Snapshot()
			s.Merge(&o)
		}
	}
	return s
}

// ClassHistogram returns the merged latency histogram for class across all
// completion paths.
func (r *Recorder) ClassHistogram(class int) HistogramSnapshot {
	var s HistogramSnapshot
	for p := 0; p < r.np; p++ {
		o := r.OpHistogram(class, p)
		s.Merge(&o)
	}
	return s
}

// TxHistogram returns the merged transaction-duration histogram for one
// outcome, groups merged.
func (r *Recorder) TxHistogram(outcome int) HistogramSnapshot {
	var s HistogramSnapshot
	no := len(r.cfg.Outcomes)
	if outcome < 0 || outcome >= no {
		return s
	}
	for i := range r.shards {
		for g := 0; g < r.ng; g++ {
			o := r.shards[i].tx[g*no+outcome].Snapshot()
			s.Merge(&o)
		}
	}
	return s
}

// LockHoldHistogram returns the merged lock-hold-time histogram, groups
// merged.
func (r *Recorder) LockHoldHistogram() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range r.shards {
		for g := 0; g < r.ng; g++ {
			o := r.shards[i].lockHold[g].Snapshot()
			s.Merge(&o)
		}
	}
	return s
}
