package metrics

import (
	"fmt"
	"sync/atomic"
)

// Config dimensions a Recorder. All label slices are copied.
type Config struct {
	// Shards is the number of recording threads (worker threads plus the
	// bootstrap thread). Each shard is written by exactly one thread.
	Shards int
	// Classes labels the operation classes (histogram dimension 1).
	Classes []string
	// Paths labels the completion paths — for HCF the four phases, for the
	// baselines their own completion routes (histogram dimension 2).
	Paths []string
	// Outcomes labels transaction outcomes; index 0 must be the commit
	// outcome, the rest abort reasons.
	Outcomes []string
	// TimeUnit names the latency unit in reports: "cycles" on the
	// deterministic simulator, "ns" on the real backend.
	TimeUnit string
}

// shard holds one thread's recording state, padded against false sharing
// with neighbouring shards' hot words.
type shard struct {
	lat              []Histogram // class-major: lat[class*numPaths+path]
	tx               []Histogram // transaction duration per outcome
	lockHold         Histogram   // data-structure lock hold time
	combinerSessions atomic.Uint64
	combinedOps      atomic.Uint64
	_                [64]byte
}

// Recorder accumulates latency histograms and activity counters, sharded
// per thread so that recording is a handful of uncontended atomic adds and
// allocation-free in steady state. All Record* methods take the calling
// thread's id; out-of-range dimensions are dropped rather than panicking so
// a misconfigured recorder can never take down a run.
type Recorder struct {
	cfg    Config
	nc, np int
	shards []shard
}

// New builds a Recorder. Shards must be positive; empty label sets default
// to a single unnamed entry.
func New(cfg Config) (*Recorder, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("metrics: Shards must be positive, got %d", cfg.Shards)
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []string{"all"}
	}
	if len(cfg.Paths) == 0 {
		cfg.Paths = []string{"op"}
	}
	if len(cfg.Outcomes) == 0 {
		cfg.Outcomes = []string{"commit"}
	}
	if cfg.TimeUnit == "" {
		cfg.TimeUnit = "cycles"
	}
	cfg.Classes = append([]string(nil), cfg.Classes...)
	cfg.Paths = append([]string(nil), cfg.Paths...)
	cfg.Outcomes = append([]string(nil), cfg.Outcomes...)
	r := &Recorder{
		cfg:    cfg,
		nc:     len(cfg.Classes),
		np:     len(cfg.Paths),
		shards: make([]shard, cfg.Shards),
	}
	for i := range r.shards {
		r.shards[i].lat = make([]Histogram, r.nc*r.np)
		r.shards[i].tx = make([]Histogram, len(cfg.Outcomes))
	}
	return r, nil
}

// MustNew is New for statically correct configurations.
func MustNew(cfg Config) *Recorder {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Classes returns the class labels.
func (r *Recorder) Classes() []string { return r.cfg.Classes }

// Paths returns the completion-path labels.
func (r *Recorder) Paths() []string { return r.cfg.Paths }

// Outcomes returns the transaction-outcome labels.
func (r *Recorder) Outcomes() []string { return r.cfg.Outcomes }

// TimeUnit returns the latency unit label.
func (r *Recorder) TimeUnit() string { return r.cfg.TimeUnit }

// RecordOp records one completed operation of class, finished via path,
// with the given end-to-end latency.
func (r *Recorder) RecordOp(t, class, path int, latency int64) {
	if t < 0 || t >= len(r.shards) || class < 0 || class >= r.nc || path < 0 || path >= r.np {
		return
	}
	r.shards[t].lat[class*r.np+path].Record(latency)
}

// RecordTx records one finished transaction attempt with the given outcome
// (0 = commit, 1.. = abort reasons) and duration.
func (r *Recorder) RecordTx(t, outcome int, latency int64) {
	if t < 0 || t >= len(r.shards) || outcome < 0 || outcome >= len(r.shards[t].tx) {
		return
	}
	r.shards[t].tx[outcome].Record(latency)
}

// RecordLockHold records one data-structure lock acquisition that was held
// for the given duration.
func (r *Recorder) RecordLockHold(t int, held int64) {
	if t < 0 || t >= len(r.shards) {
		return
	}
	r.shards[t].lockHold.Record(held)
}

// RecordCombine records one combining session that selected n operations
// (including the combiner's own).
func (r *Recorder) RecordCombine(t, n int) {
	if t < 0 || t >= len(r.shards) {
		return
	}
	r.shards[t].combinerSessions.Add(1)
	r.shards[t].combinedOps.Add(uint64(n))
}

// Counters is an aggregated snapshot of a Recorder's cumulative counters —
// the raw material of interval sampling. Slices are indexed by the
// Recorder's label sets.
type Counters struct {
	// Ops counts completed operations (sum of OpsByClass).
	Ops uint64 `json:"ops"`
	// OpsByClass and OpsByPath break Ops down by each dimension.
	OpsByClass []uint64 `json:"ops_by_class"`
	OpsByPath  []uint64 `json:"ops_by_path"`
	// LatencySum is the summed operation latency (for mean latency).
	LatencySum uint64 `json:"latency_sum"`
	// Tx counts finished transaction attempts by outcome ([0] = commits).
	Tx []uint64 `json:"tx"`
	// CombinerSessions and CombinedOps count combining activity.
	CombinerSessions uint64 `json:"combiner_sessions"`
	CombinedOps      uint64 `json:"combined_ops"`
	// LockAcquisitions and LockHoldTime count data-structure lock activity.
	LockAcquisitions uint64 `json:"lock_acquisitions"`
	LockHoldTime     uint64 `json:"lock_hold_time"`
}

// Sub returns c - prev, element-wise (the delta between two snapshots).
func (c *Counters) Sub(prev *Counters) Counters {
	d := Counters{
		Ops:              c.Ops - prev.Ops,
		LatencySum:       c.LatencySum - prev.LatencySum,
		CombinerSessions: c.CombinerSessions - prev.CombinerSessions,
		CombinedOps:      c.CombinedOps - prev.CombinedOps,
		LockAcquisitions: c.LockAcquisitions - prev.LockAcquisitions,
		LockHoldTime:     c.LockHoldTime - prev.LockHoldTime,
		OpsByClass:       make([]uint64, len(c.OpsByClass)),
		OpsByPath:        make([]uint64, len(c.OpsByPath)),
		Tx:               make([]uint64, len(c.Tx)),
	}
	for i := range d.OpsByClass {
		d.OpsByClass[i] = c.OpsByClass[i] - prev.OpsByClass[i]
	}
	for i := range d.OpsByPath {
		d.OpsByPath[i] = c.OpsByPath[i] - prev.OpsByPath[i]
	}
	for i := range d.Tx {
		d.Tx[i] = c.Tx[i] - prev.Tx[i]
	}
	return d
}

// Commits returns the committed-transaction count.
func (c *Counters) Commits() uint64 {
	if len(c.Tx) == 0 {
		return 0
	}
	return c.Tx[0]
}

// Aborts returns the total aborted-transaction count.
func (c *Counters) Aborts() uint64 {
	var n uint64
	for _, v := range c.Tx[min(1, len(c.Tx)):] {
		n += v
	}
	return n
}

// CombiningDegree returns mean operations per combining session.
func (c *Counters) CombiningDegree() float64 {
	if c.CombinerSessions == 0 {
		return 0
	}
	return float64(c.CombinedOps) / float64(c.CombinerSessions)
}

// Counters aggregates all shards' cumulative counters.
func (r *Recorder) Counters() Counters {
	c := Counters{
		OpsByClass: make([]uint64, r.nc),
		OpsByPath:  make([]uint64, r.np),
		Tx:         make([]uint64, len(r.cfg.Outcomes)),
	}
	for s := range r.shards {
		sh := &r.shards[s]
		for cl := 0; cl < r.nc; cl++ {
			for p := 0; p < r.np; p++ {
				h := &sh.lat[cl*r.np+p]
				n := h.Count()
				c.Ops += n
				c.OpsByClass[cl] += n
				c.OpsByPath[p] += n
				c.LatencySum += h.Sum()
			}
		}
		for o := range sh.tx {
			c.Tx[o] += sh.tx[o].Count()
		}
		c.CombinerSessions += sh.combinerSessions.Load()
		c.CombinedOps += sh.combinedOps.Load()
		c.LockAcquisitions += sh.lockHold.Count()
		c.LockHoldTime += sh.lockHold.Sum()
	}
	return c
}

// OpHistogram returns the merged latency histogram for (class, path).
func (r *Recorder) OpHistogram(class, path int) HistogramSnapshot {
	var s HistogramSnapshot
	if class < 0 || class >= r.nc || path < 0 || path >= r.np {
		return s
	}
	for i := range r.shards {
		o := r.shards[i].lat[class*r.np+path].Snapshot()
		s.Merge(&o)
	}
	return s
}

// ClassHistogram returns the merged latency histogram for class across all
// completion paths.
func (r *Recorder) ClassHistogram(class int) HistogramSnapshot {
	var s HistogramSnapshot
	for p := 0; p < r.np; p++ {
		o := r.OpHistogram(class, p)
		s.Merge(&o)
	}
	return s
}

// TxHistogram returns the merged transaction-duration histogram for one
// outcome.
func (r *Recorder) TxHistogram(outcome int) HistogramSnapshot {
	var s HistogramSnapshot
	if outcome < 0 || outcome >= len(r.cfg.Outcomes) {
		return s
	}
	for i := range r.shards {
		o := r.shards[i].tx[outcome].Snapshot()
		s.Merge(&o)
	}
	return s
}

// LockHoldHistogram returns the merged lock-hold-time histogram.
func (r *Recorder) LockHoldHistogram() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range r.shards {
		o := r.shards[i].lockHold.Snapshot()
		s.Merge(&o)
	}
	return s
}
