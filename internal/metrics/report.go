package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
)

// HistStat summarizes one histogram: count, mean and the latency
// percentiles the evaluation aims at.
type HistStat struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

func statOf(s HistogramSnapshot) HistStat {
	return HistStat{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// LatencyStat is a HistStat labelled by operation class and completion
// path. Path is empty for per-class (all paths merged) rows.
type LatencyStat struct {
	Class string `json:"class"`
	Path  string `json:"path,omitempty"`
	HistStat
}

// TxStat is a HistStat of transaction durations for one outcome.
type TxStat struct {
	Outcome string `json:"outcome"`
	HistStat
}

// TraceHealth summarizes the flight-recorder's own health: how many spans
// started, how many survive in the ring buffers, and how many were
// overwritten. A nonzero Dropped means hot-line and abort-attribution
// reports describe only the tail of the run.
type TraceHealth struct {
	Starts   uint64 `json:"starts"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// Report is a complete machine-readable account of one instrumented run.
type Report struct {
	Scenario string `json:"scenario,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	// TimeUnit is the unit of every latency and timestamp in the report.
	TimeUnit string `json:"time_unit"`
	// SampleInterval is the sampler's interval length (0 = single interval).
	SampleInterval int64 `json:"sample_interval"`

	Classes  []string `json:"classes"`
	Paths    []string `json:"paths"`
	Outcomes []string `json:"outcomes"`
	// Groups labels the per-group breakout in Totals.ByGroup (per shard for
	// the sharded engine); empty on ungrouped recorders.
	Groups []string `json:"groups,omitempty"`

	// Totals are the whole-run cumulative counters.
	Totals Counters `json:"totals"`
	// ClassLatency has one row per operation class (paths merged);
	// OpLatency one row per (class, path) with observations.
	ClassLatency []LatencyStat `json:"class_latency"`
	OpLatency    []LatencyStat `json:"op_latency"`
	// TxLatency summarizes transaction durations per outcome.
	TxLatency []TxStat `json:"tx_latency,omitempty"`
	// LockHold summarizes data-structure lock hold times.
	LockHold HistStat `json:"lock_hold"`
	// Intervals is the time series.
	Intervals []Interval `json:"intervals"`

	// Trace, when set, carries flight-recorder health (span starts /
	// retained / dropped-by-overwrite) so silent span loss shows up in
	// dashboards, not just in the trace API.
	Trace *TraceHealth `json:"trace,omitempty"`
	// SLO, when set, carries the service-level-objective evaluation state
	// (per-objective compliance, burn rates, verdicts).
	SLO *SLOSnapshot `json:"slo,omitempty"`
}

// BuildReport assembles a Report from a recorder and (optionally) a
// sampler; pass nil sampler for totals-only reports.
func BuildReport(rec *Recorder, s *Sampler, scenario, engine string, threads int) Report {
	r := Report{
		Scenario: scenario,
		Engine:   engine,
		Threads:  threads,
		TimeUnit: rec.TimeUnit(),
		Classes:  rec.Classes(),
		Paths:    rec.Paths(),
		Outcomes: rec.Outcomes(),
		Groups:   rec.Groups(),
		Totals:   rec.Counters(),
	}
	if s != nil {
		r.SampleInterval = s.Interval()
		r.Intervals = s.Intervals()
	}
	for c, class := range r.Classes {
		if snap := rec.ClassHistogram(c); snap.Count > 0 {
			r.ClassLatency = append(r.ClassLatency, LatencyStat{Class: class, HistStat: statOf(snap)})
		}
		for p, path := range r.Paths {
			if snap := rec.OpHistogram(c, p); snap.Count > 0 {
				r.OpLatency = append(r.OpLatency, LatencyStat{Class: class, Path: path, HistStat: statOf(snap)})
			}
		}
	}
	for o, outcome := range r.Outcomes {
		if snap := rec.TxHistogram(o); snap.Count > 0 {
			r.TxLatency = append(r.TxLatency, TxStat{Outcome: outcome, HistStat: statOf(snap)})
		}
	}
	r.LockHold = statOf(rec.LockHoldHistogram())
	return r
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// csvEscape quotes a field if needed (commas, quotes, newlines).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// IntervalsCSV renders the time series as one CSV table: fixed columns,
// then one aborts column per abort reason and one ops column per class.
func (r *Report) IntervalsCSV() string {
	var b strings.Builder
	b.WriteString("start,end,ops,throughput,commits,combiner_sessions,combined_ops," +
		"combining_degree,lock_acquisitions,lock_hold_time")
	for _, o := range r.Outcomes[min(1, len(r.Outcomes)):] {
		fmt.Fprintf(&b, ",aborts_%s", csvEscape(o))
	}
	for _, c := range r.Classes {
		fmt.Fprintf(&b, ",ops_%s", csvEscape(c))
	}
	b.WriteByte('\n')
	for _, iv := range r.Intervals {
		fmt.Fprintf(&b, "%d,%d,%d,%.2f,%d,%d,%d,%.2f,%d,%d",
			iv.Start, iv.End, iv.Ops, iv.Throughput, iv.Commits(),
			iv.CombinerSessions, iv.CombinedOps, iv.CombiningDegree,
			iv.LockAcquisitions, iv.LockHoldTime)
		for _, n := range iv.Tx[min(1, len(iv.Tx)):] {
			fmt.Fprintf(&b, ",%d", n)
		}
		for _, n := range iv.OpsByClass {
			fmt.Fprintf(&b, ",%d", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LatencyCSV renders the per-(class, path) latency table as CSV, with
// per-class merged rows (empty path) included.
func (r *Report) LatencyCSV() string {
	var b strings.Builder
	b.WriteString("class,path,count,mean,p50,p90,p99,p999,max\n")
	row := func(class, path string, h HistStat) {
		fmt.Fprintf(&b, "%s,%s,%d,%.1f,%d,%d,%d,%d,%d\n",
			csvEscape(class), csvEscape(path), h.Count, h.Mean, h.P50, h.P90, h.P99, h.P999, h.Max)
	}
	for _, ls := range r.ClassLatency {
		row(ls.Class, "", ls.HistStat)
	}
	for _, ls := range r.OpLatency {
		row(ls.Class, ls.Path, ls.HistStat)
	}
	return b.String()
}

// CSV renders the whole report as two CSV tables (intervals, then
// latencies) separated by a blank line.
func (r *Report) CSV() string {
	return r.IntervalsCSV() + "\n" + r.LatencyCSV()
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Prometheus renders the report's cumulative state in the Prometheus text
// exposition format (intervals are inherently a scrape-side concern and are
// not exported here). Every sample carries scenario/engine labels so
// several runs can share one scrape file.
func (r *Report) Prometheus() string {
	var b strings.Builder
	base := fmt.Sprintf(`scenario="%s",engine="%s"`, promEscape(r.Scenario), promEscape(r.Engine))

	fmt.Fprintf(&b, "# HELP hcf_ops_total Completed operations by class and completion path.\n")
	fmt.Fprintf(&b, "# TYPE hcf_ops_total counter\n")
	for _, ls := range r.OpLatency {
		fmt.Fprintf(&b, "hcf_ops_total{%s,class=\"%s\",path=\"%s\"} %d\n",
			base, promEscape(ls.Class), promEscape(ls.Path), ls.Count)
	}

	unit := promEscape(r.TimeUnit)
	fmt.Fprintf(&b, "# HELP hcf_op_latency Operation latency quantiles (%s).\n", unit)
	fmt.Fprintf(&b, "# TYPE hcf_op_latency summary\n")
	for _, ls := range r.ClassLatency {
		labels := fmt.Sprintf("%s,class=\"%s\"", base, promEscape(ls.Class))
		fmt.Fprintf(&b, "hcf_op_latency{%s,quantile=\"0.5\"} %d\n", labels, ls.P50)
		fmt.Fprintf(&b, "hcf_op_latency{%s,quantile=\"0.9\"} %d\n", labels, ls.P90)
		fmt.Fprintf(&b, "hcf_op_latency{%s,quantile=\"0.99\"} %d\n", labels, ls.P99)
		fmt.Fprintf(&b, "hcf_op_latency{%s,quantile=\"0.999\"} %d\n", labels, ls.P999)
		fmt.Fprintf(&b, "hcf_op_latency_sum{%s} %.0f\n", labels, ls.Mean*float64(ls.Count))
		fmt.Fprintf(&b, "hcf_op_latency_count{%s} %d\n", labels, ls.Count)
	}

	fmt.Fprintf(&b, "# HELP hcf_tx_total Finished transaction attempts by outcome.\n")
	fmt.Fprintf(&b, "# TYPE hcf_tx_total counter\n")
	for i, o := range r.Outcomes {
		var n uint64
		if i < len(r.Totals.Tx) {
			n = r.Totals.Tx[i]
		}
		fmt.Fprintf(&b, "hcf_tx_total{%s,outcome=\"%s\"} %d\n", base, promEscape(o), n)
	}

	if len(r.Totals.ByGroup) > 0 {
		fmt.Fprintf(&b, "# HELP hcf_shard_ops_total Completed operations by shard (cross = cross-shard path).\n")
		fmt.Fprintf(&b, "# TYPE hcf_shard_ops_total counter\n")
		for _, g := range r.Totals.ByGroup {
			fmt.Fprintf(&b, "hcf_shard_ops_total{%s,shard=\"%s\"} %d\n", base, promEscape(g.Group), g.Ops)
		}
		fmt.Fprintf(&b, "# HELP hcf_shard_tx_total Finished transaction attempts by shard and outcome class.\n")
		fmt.Fprintf(&b, "# TYPE hcf_shard_tx_total counter\n")
		for _, g := range r.Totals.ByGroup {
			fmt.Fprintf(&b, "hcf_shard_tx_total{%s,shard=\"%s\",outcome=\"commit\"} %d\n", base, promEscape(g.Group), g.Commits)
			fmt.Fprintf(&b, "hcf_shard_tx_total{%s,shard=\"%s\",outcome=\"abort\"} %d\n", base, promEscape(g.Group), g.Aborts)
		}
	}

	simple := []struct {
		name, help string
		v          uint64
	}{
		{"hcf_combiner_sessions_total", "Combining passes.", r.Totals.CombinerSessions},
		{"hcf_combined_ops_total", "Operations applied in combining passes.", r.Totals.CombinedOps},
		{"hcf_lock_acquisitions_total", "Data-structure lock acquisitions.", r.Totals.LockAcquisitions},
		{"hcf_lock_hold_time_total", "Total lock hold time (" + r.TimeUnit + ").", r.Totals.LockHoldTime},
	}
	for _, m := range simple {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n",
			m.name, m.help, m.name, m.name, base, m.v)
	}

	if r.Trace != nil {
		fmt.Fprintf(&b, "# HELP hcf_trace_spans_started_total Trace spans started.\n")
		fmt.Fprintf(&b, "# TYPE hcf_trace_spans_started_total counter\n")
		fmt.Fprintf(&b, "hcf_trace_spans_started_total{%s} %d\n", base, r.Trace.Starts)
		fmt.Fprintf(&b, "# HELP hcf_trace_spans_retained Trace spans currently held in the flight-recorder rings.\n")
		fmt.Fprintf(&b, "# TYPE hcf_trace_spans_retained gauge\n")
		fmt.Fprintf(&b, "hcf_trace_spans_retained{%s} %d\n", base, r.Trace.Retained)
		fmt.Fprintf(&b, "# HELP hcf_trace_spans_dropped_total Trace spans lost to flight-recorder overwrite; nonzero means hot-line reports cover only the tail of the run.\n")
		fmt.Fprintf(&b, "# TYPE hcf_trace_spans_dropped_total counter\n")
		fmt.Fprintf(&b, "hcf_trace_spans_dropped_total{%s} %d\n", base, r.Trace.Dropped)
	}

	if r.SLO != nil {
		b.WriteString(r.SLO.Prometheus(base))
	}
	return b.String()
}

// Text renders the report as human-readable tables: the interval series
// followed by latency percentile tables.
func (r *Report) Text() string {
	var b strings.Builder
	if r.Scenario != "" {
		fmt.Fprintf(&b, "scenario  %s\nengine    %s\nthreads   %d\n", r.Scenario, r.Engine, r.Threads)
	}
	fmt.Fprintf(&b, "unit      %s\n\n", r.TimeUnit)

	if len(r.Intervals) > 0 {
		if r.SampleInterval > 0 {
			fmt.Fprintf(&b, "interval series (every %d %s):\n", r.SampleInterval, r.TimeUnit)
		} else {
			fmt.Fprintf(&b, "interval series (whole run):\n")
		}
		fmt.Fprintf(&b, "  %12s %12s %8s %10s %8s %8s %8s %8s %10s\n",
			"start", "end", "ops", "thrpt", "commits", "aborts", "sessions", "degree", "lock-hold")
		for _, iv := range r.Intervals {
			fmt.Fprintf(&b, "  %12d %12d %8d %10.1f %8d %8d %8d %8.2f %10d\n",
				iv.Start, iv.End, iv.Ops, iv.Throughput, iv.Commits(), iv.Aborts(),
				iv.CombinerSessions, iv.CombiningDegree, iv.LockHoldTime)
		}
		b.WriteByte('\n')
	}

	if len(r.Totals.ByGroup) > 0 {
		fmt.Fprintf(&b, "per-shard totals (cross = cross-shard path):\n")
		fmt.Fprintf(&b, "  %-14s %10s %10s %10s %10s %8s %8s\n",
			"shard", "ops", "commits", "aborts", "sessions", "degree", "locks")
		for _, g := range r.Totals.ByGroup {
			degree := 0.0
			if g.CombinerSessions > 0 {
				degree = float64(g.CombinedOps) / float64(g.CombinerSessions)
			}
			fmt.Fprintf(&b, "  %-14s %10d %10d %10d %10d %8.2f %8d\n",
				g.Group, g.Ops, g.Commits, g.Aborts, g.CombinerSessions, degree, g.LockAcquisitions)
		}
		b.WriteByte('\n')
	}

	if len(r.ClassLatency) > 0 {
		fmt.Fprintf(&b, "operation latency by class (%s):\n", r.TimeUnit)
		fmt.Fprintf(&b, "  %-14s %-18s %10s %10s %8s %8s %8s %8s %8s\n",
			"class", "path", "count", "mean", "p50", "p90", "p99", "p999", "max")
		for _, ls := range r.ClassLatency {
			fmt.Fprintf(&b, "  %-14s %-18s %10d %10.1f %8d %8d %8d %8d %8d\n",
				ls.Class, "(all)", ls.Count, ls.Mean, ls.P50, ls.P90, ls.P99, ls.P999, ls.Max)
		}
		for _, ls := range r.OpLatency {
			fmt.Fprintf(&b, "  %-14s %-18s %10d %10.1f %8d %8d %8d %8d %8d\n",
				ls.Class, ls.Path, ls.Count, ls.Mean, ls.P50, ls.P90, ls.P99, ls.P999, ls.Max)
		}
		b.WriteByte('\n')
	}

	if len(r.TxLatency) > 0 {
		fmt.Fprintf(&b, "transaction duration by outcome (%s):\n", r.TimeUnit)
		fmt.Fprintf(&b, "  %-14s %10s %10s %8s %8s %8s %8s %8s\n",
			"outcome", "count", "mean", "p50", "p90", "p99", "p999", "max")
		for _, ts := range r.TxLatency {
			fmt.Fprintf(&b, "  %-14s %10d %10.1f %8d %8d %8d %8d %8d\n",
				ts.Outcome, ts.Count, ts.Mean, ts.P50, ts.P90, ts.P99, ts.P999, ts.Max)
		}
		b.WriteByte('\n')
	}

	if r.LockHold.Count > 0 {
		fmt.Fprintf(&b, "lock hold time (%s): count %d, mean %.1f, p50 %d, p99 %d, p999 %d, max %d\n",
			r.TimeUnit, r.LockHold.Count, r.LockHold.Mean,
			r.LockHold.P50, r.LockHold.P99, r.LockHold.P999, r.LockHold.Max)
	}

	if r.Trace != nil {
		fmt.Fprintf(&b, "trace health: %d spans started, %d retained, %d dropped by overwrite\n",
			r.Trace.Starts, r.Trace.Retained, r.Trace.Dropped)
	}
	if r.SLO != nil {
		b.WriteString(r.SLO.Text())
	}
	return b.String()
}
