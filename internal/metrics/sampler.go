package metrics

// Interval is one time-series sample: the delta of all counters over
// [Start, End), plus derived rates. Time is in the recorder's TimeUnit
// (virtual cycles on the deterministic simulator, wall nanoseconds on the
// real backend).
type Interval struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Throughput is operations per million time units.
	Throughput float64 `json:"throughput"`
	// CombiningDegree is mean operations per combining session.
	CombiningDegree float64 `json:"combining_degree"`
	Counters
}

// Sampler turns a Recorder's cumulative counters into per-interval records.
// Call MaybeSample periodically from a single driver thread (in the
// deterministic simulator any worker works, since snapshots are consistent
// under cooperative scheduling; on the real backend the counters are
// atomics, so a sample is a fuzzy-but-monotonic cut, which is what interval
// metrics want).
type Sampler struct {
	rec      *Recorder
	interval int64
	lastTime int64
	last     Counters

	intervals []Interval
}

// NewSampler builds a sampler that emits one Interval per `interval` time
// units. A non-positive interval disables sampling (MaybeSample never
// fires; Flush still emits one whole-run interval).
func NewSampler(rec *Recorder, interval int64) *Sampler {
	return &Sampler{
		rec:      rec,
		interval: interval,
		last:     rec.Counters(),
	}
}

// Interval returns the configured interval length.
func (s *Sampler) Interval() int64 { return s.interval }

// MaybeSample emits an interval record if at least one interval length has
// elapsed since the previous sample. It returns whether it sampled.
func (s *Sampler) MaybeSample(now int64) bool {
	if s.interval <= 0 || now-s.lastTime < s.interval {
		return false
	}
	s.sample(now)
	return true
}

// Flush emits a final partial interval covering [lastSample, now) if any
// operations completed in it.
func (s *Sampler) Flush(now int64) {
	if now <= s.lastTime {
		return
	}
	cur := s.rec.Counters()
	if cur.Ops == s.last.Ops && len(s.intervals) > 0 {
		return
	}
	s.sampleAt(now, cur)
}

func (s *Sampler) sample(now int64) {
	s.sampleAt(now, s.rec.Counters())
}

func (s *Sampler) sampleAt(now int64, cur Counters) {
	iv := Interval{
		Start:    s.lastTime,
		End:      now,
		Counters: cur.Sub(&s.last),
	}
	if span := now - s.lastTime; span > 0 {
		iv.Throughput = float64(iv.Ops) * 1e6 / float64(span)
	}
	iv.CombiningDegree = iv.Counters.CombiningDegree()
	s.intervals = append(s.intervals, iv)
	s.last = cur
	s.lastTime = now
}

// Intervals returns the emitted interval records.
func (s *Sampler) Intervals() []Interval { return s.intervals }
