package metrics

import "sync"

// Gauges are instantaneous (not cumulative) readings attached to an
// interval sample — the open-loop queueing signals: how many arrived-but-
// unfinished operations exist (Backlog) and how many of those are past
// their intended start but not yet being serviced (QueueDepth). Both are
// zero in closed-loop runs, where captive threads never queue.
type Gauges struct {
	Backlog    int64 `json:"backlog,omitempty"`
	QueueDepth int64 `json:"queue_depth,omitempty"`
}

// Interval is one time-series sample: the delta of all counters over
// [Start, End), plus derived rates and gauge readings taken at End. Time is
// in the recorder's TimeUnit (virtual cycles on the deterministic
// simulator, wall nanoseconds on the real backend).
type Interval struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Throughput is operations per million time units.
	Throughput float64 `json:"throughput"`
	// CombiningDegree is mean operations per combining session.
	CombiningDegree float64 `json:"combining_degree"`
	Gauges
	Counters
}

// Sampler turns a Recorder's cumulative counters into per-interval records.
// Call MaybeSample periodically from a single driver thread (in the
// deterministic simulator any worker works, since snapshots are consistent
// under cooperative scheduling; on the real backend the counters are
// atomics, so a sample is a fuzzy-but-monotonic cut, which is what interval
// metrics want). The emitted series may be read concurrently — Intervals
// returns a copy taken under the sampler's lock, so a live introspection
// server can stream it mid-run.
type Sampler struct {
	rec      *Recorder
	interval int64
	gauge    func(now int64) Gauges

	mu        sync.Mutex
	lastTime  int64
	last      Counters
	intervals []Interval
}

// NewSampler builds a sampler that emits one Interval per `interval` time
// units. A non-positive interval disables sampling (MaybeSample never
// fires; Flush still emits one whole-run interval).
func NewSampler(rec *Recorder, interval int64) *Sampler {
	return &Sampler{
		rec:      rec,
		interval: interval,
		last:     rec.Counters(),
	}
}

// Interval returns the configured interval length.
func (s *Sampler) Interval() int64 { return s.interval }

// SetGauge installs a callback invoked at each sample time to read
// instantaneous gauges (backlog, queue depth). The callback runs on the
// sampling thread and must not charge simulated cycles. Call before the
// run starts; it is not synchronized against concurrent sampling.
func (s *Sampler) SetGauge(fn func(now int64) Gauges) { s.gauge = fn }

// MaybeSample emits an interval record if at least one interval length has
// elapsed since the previous sample. It returns whether it sampled. A
// non-monotonic now (earlier than the previous sample) never fires.
func (s *Sampler) MaybeSample(now int64) bool {
	if s.interval <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if now-s.lastTime < s.interval {
		return false
	}
	s.sampleAt(now, s.rec.Counters())
	return true
}

// Flush emits a final partial interval covering [lastSample, now) if any
// operations completed in it. A zero-length final interval (now at or
// before the last sample) is a no-op.
func (s *Sampler) Flush(now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now <= s.lastTime {
		return
	}
	cur := s.rec.Counters()
	if cur.Ops == s.last.Ops && len(s.intervals) > 0 {
		return
	}
	s.sampleAt(now, cur)
}

// sampleAt appends the [lastTime, now) interval; callers hold s.mu.
func (s *Sampler) sampleAt(now int64, cur Counters) {
	iv := Interval{
		Start:    s.lastTime,
		End:      now,
		Counters: cur.Sub(&s.last),
	}
	if span := now - s.lastTime; span > 0 {
		iv.Throughput = float64(iv.Ops) * 1e6 / float64(span)
	}
	iv.CombiningDegree = iv.Counters.CombiningDegree()
	if s.gauge != nil {
		iv.Gauges = s.gauge(now)
	}
	s.intervals = append(s.intervals, iv)
	s.last = cur
	s.lastTime = now
}

// Intervals returns a copy of the emitted interval records; safe to call
// while sampling continues.
func (s *Sampler) Intervals() []Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Interval, len(s.intervals))
	copy(out, s.intervals)
	return out
}
