package metrics

import (
	"sync"
	"testing"
)

// TestSamplerFlushZeroLengthFinal pins the zero-length-final-interval edge:
// Flush at exactly the last sample time must not emit an empty interval.
func TestSamplerFlushZeroLengthFinal(t *testing.T) {
	r := newTestRecorder(t)
	s := NewSampler(r, 1000)
	r.RecordOp(0, 0, 0, 10)
	if !s.MaybeSample(1000) {
		t.Fatal("expected sample at t=1000")
	}
	s.Flush(1000) // zero-length final interval
	if got := len(s.Intervals()); got != 1 {
		t.Fatalf("intervals after zero-length flush = %d, want 1", got)
	}
	s.Flush(999) // now before the last sample is also a no-op
	if got := len(s.Intervals()); got != 1 {
		t.Fatalf("intervals after backwards flush = %d, want 1", got)
	}
	// A genuinely later flush with new ops still emits.
	r.RecordOp(0, 0, 0, 20)
	s.Flush(1500)
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals after real flush = %d, want 2", len(ivs))
	}
	if ivs[1].Start != 1000 || ivs[1].End != 1500 || ivs[1].Ops != 1 {
		t.Fatalf("final interval = %+v", ivs[1])
	}
}

// TestSamplerNonMonotonicNow pins MaybeSample against a clock that moves
// backwards (possible on the real backend across CPU migrations): a now
// earlier than the previous sample must never fire or corrupt the series.
func TestSamplerNonMonotonicNow(t *testing.T) {
	r := newTestRecorder(t)
	s := NewSampler(r, 1000)
	r.RecordOp(0, 0, 0, 10)
	if !s.MaybeSample(2000) {
		t.Fatal("expected sample at t=2000")
	}
	if s.MaybeSample(500) {
		t.Fatal("sampled at t=500 after sampling at t=2000")
	}
	if s.MaybeSample(2500) {
		t.Fatal("sampled again before a full interval elapsed")
	}
	r.RecordOp(0, 0, 0, 10)
	if !s.MaybeSample(3000) {
		t.Fatal("expected sample at t=3000")
	}
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	for _, iv := range ivs {
		if iv.End <= iv.Start {
			t.Fatalf("non-positive interval emitted: %+v", iv)
		}
	}
}

// TestSamplerConcurrentRecorderWrites drives recorder writes from several
// goroutines while one samples and another reads Intervals — the live
// introspection shape, meaningful under -race.
func TestSamplerConcurrentRecorderWrites(t *testing.T) {
	r := newTestRecorder(t)
	s := NewSampler(r, 10)
	s.SetGauge(func(now int64) Gauges { return Gauges{Backlog: now % 7, QueueDepth: now % 3} })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.RecordOp(w, i%2, i%2, int64(i%100))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for now := int64(10); now <= 5000; now += 10 {
			s.MaybeSample(now)
		}
	}()
	for i := 0; i < 100; i++ {
		for _, iv := range s.Intervals() {
			if iv.End <= iv.Start {
				t.Errorf("bad interval %+v", iv)
			}
		}
	}
	close(stop)
	wg.Wait()
	r.RecordOp(0, 0, 0, 1) // guarantee the final flush has something to emit
	s.Flush(5005)

	ivs := s.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals emitted")
	}
	var total uint64
	for _, iv := range ivs {
		total += iv.Ops
	}
	if total == 0 {
		t.Fatal("no ops attributed to intervals")
	}
	// Gauge plumbing: the callback's values land on the interval.
	for _, iv := range ivs {
		if iv.Backlog != iv.End%7 || iv.QueueDepth != iv.End%3 {
			t.Fatalf("gauges not sampled at End: %+v", iv)
		}
	}
}
