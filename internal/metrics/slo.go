package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// Objective is one service-level objective: at least Target fraction of
// operations in Class must complete within Threshold time units. The
// complement, 1-Target, is the error budget — the fraction of slow
// operations the service is allowed before the objective is violated.
type Objective struct {
	// Class names the operation class the objective covers; empty means
	// all classes merged.
	Class string `json:"class,omitempty"`
	// Threshold is the latency bound in the recorder's TimeUnit.
	Threshold int64 `json:"threshold"`
	// Target is the required fraction of operations within Threshold,
	// in (0, 1) — e.g. 0.99 for "99% of finds under 2000 cycles".
	Target float64 `json:"target"`
}

// SLOConfig configures burn-rate evaluation over a sampler's interval
// series. Burn rate is the speed the error budget is being spent: a burn
// of 1 exhausts the budget exactly at the end of the budget period; a burn
// of 10 exhausts it 10x early. Alerting keys on TWO windows (Google
// SRE-style multiwindow alerts): the slow window confirms the problem is
// sustained, the fast window confirms it is still happening — so a page
// needs both, which suppresses both one-interval blips and stale pages for
// incidents already over.
type SLOConfig struct {
	Objectives []Objective `json:"objectives"`
	// FastWindow and SlowWindow are lengths in sampler intervals
	// (defaults 3 and 12).
	FastWindow int `json:"fast_window"`
	SlowWindow int `json:"slow_window"`
	// PageBurn and WarnBurn are the burn-rate thresholds for the page and
	// warn states (defaults 10 and 2).
	PageBurn float64 `json:"page_burn"`
	WarnBurn float64 `json:"warn_burn"`
}

func (c *SLOConfig) normalize() {
	if c.FastWindow <= 0 {
		c.FastWindow = 3
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = max(c.FastWindow, 12)
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 10
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
}

// SLO alert states, ordered by severity.
const (
	SLOStateOK   = "ok"
	SLOStateWarn = "warn"
	SLOStatePage = "page"
)

// Verdict is one journal entry: an objective's alert state changed, with
// the burn-rate evidence that forced the transition — the same
// evidence-plus-decision shape the adaptive tuner's journal uses, so a
// human (or a later PR's controller) can replay why each page fired.
type Verdict struct {
	Time      int64   `json:"time"`
	Class     string  `json:"class,omitempty"`
	Threshold int64   `json:"threshold"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Reason    string  `json:"reason"`
}

// ObjectiveStatus is the live evaluation state of one objective.
type ObjectiveStatus struct {
	Objective
	// Total and Good are cumulative operation counts (Good = within
	// Threshold).
	Total uint64 `json:"total"`
	Good  uint64 `json:"good"`
	// Compliance is Good/Total (1 when empty).
	Compliance float64 `json:"compliance"`
	// BudgetUsed is the fraction of the whole-run error budget consumed:
	// (1-Compliance)/(1-Target); above 1 the objective is violated.
	BudgetUsed float64 `json:"budget_used"`
	// FastBurn and SlowBurn are the windowed burn rates.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	State    string  `json:"state"`
}

// SLOSnapshot is a point-in-time copy of the tracker: per-objective status
// plus the verdict journal so far. It is what reports embed and the
// introspection server serves.
type SLOSnapshot struct {
	Config     SLOConfig         `json:"config"`
	Objectives []ObjectiveStatus `json:"objectives"`
	Verdicts   []Verdict         `json:"verdicts"`
}

// objState is the mutable per-objective tracking state.
type objState struct {
	class     int // class index, -1 = all classes merged
	prevTotal uint64
	prevGood  uint64
	// ring of per-interval (good, total) deltas, SlowWindow long.
	goods  []uint64
	totals []uint64
	next   int // ring cursor
	filled int // number of live ring entries
	cum    ObjectiveStatus
}

// SLOTracker evaluates objectives against a recorder's latency histograms
// at sampler cadence. Step must be called from a single driver thread (at
// the same points MaybeSample fires, so the evaluation is deterministic per
// seed); Snapshot may be called concurrently from introspection readers.
type SLOTracker struct {
	rec *Recorder
	cfg SLOConfig

	mu       sync.Mutex
	objs     []*objState
	verdicts []Verdict
}

// NewSLOTracker builds a tracker over rec. Objectives naming a class not
// present in the recorder are rejected.
func NewSLOTracker(rec *Recorder, cfg SLOConfig) (*SLOTracker, error) {
	cfg.normalize()
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("metrics: SLO config needs at least one objective")
	}
	classes := rec.Classes()
	t := &SLOTracker{rec: rec, cfg: cfg}
	for _, o := range cfg.Objectives {
		if o.Threshold <= 0 {
			return nil, fmt.Errorf("metrics: SLO threshold must be positive, got %d", o.Threshold)
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("metrics: SLO target %v outside (0,1)", o.Target)
		}
		ci := -1
		if o.Class != "" {
			for i, c := range classes {
				if c == o.Class {
					ci = i
					break
				}
			}
			if ci < 0 {
				return nil, fmt.Errorf("metrics: SLO objective class %q not in recorder classes %v", o.Class, classes)
			}
		}
		t.objs = append(t.objs, &objState{
			class:  ci,
			goods:  make([]uint64, cfg.SlowWindow),
			totals: make([]uint64, cfg.SlowWindow),
			cum:    ObjectiveStatus{Objective: o, Compliance: 1, State: SLOStateOK},
		})
	}
	return t, nil
}

// histFor returns the cumulative latency snapshot an objective evaluates.
func (t *SLOTracker) histFor(o *objState) HistogramSnapshot {
	if o.class >= 0 {
		return t.rec.ClassHistogram(o.class)
	}
	var m HistogramSnapshot
	for c := range t.rec.Classes() {
		s := t.rec.ClassHistogram(c)
		m.Merge(&s)
	}
	return m
}

// windowBurn returns the burn rate over the last n ring entries.
func windowBurn(o *objState, n int, budget float64) float64 {
	if n > o.filled {
		n = o.filled
	}
	var good, total uint64
	ring := len(o.goods)
	for i := 1; i <= n; i++ {
		idx := (o.next - i + ring) % ring
		good += o.goods[idx]
		total += o.totals[idx]
	}
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / budget
}

// Step evaluates every objective at time now, appending a verdict for each
// alert-state transition. Call it right after the sampler samples.
func (t *SLOTracker) Step(now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, o := range t.objs {
		snap := t.histFor(o)
		good := snap.CountAtOrBelow(uint64(o.cum.Threshold))
		dTotal := snap.Count - o.prevTotal
		dGood := good - o.prevGood
		o.prevTotal, o.prevGood = snap.Count, good

		o.goods[o.next] = dGood
		o.totals[o.next] = dTotal
		o.next = (o.next + 1) % len(o.goods)
		if o.filled < len(o.goods) {
			o.filled++
		}

		budget := 1 - o.cum.Target
		o.cum.Total = snap.Count
		o.cum.Good = good
		o.cum.Compliance = 1
		if snap.Count > 0 {
			o.cum.Compliance = float64(good) / float64(snap.Count)
		}
		o.cum.BudgetUsed = (1 - o.cum.Compliance) / budget
		o.cum.FastBurn = windowBurn(o, t.cfg.FastWindow, budget)
		o.cum.SlowBurn = windowBurn(o, t.cfg.SlowWindow, budget)

		state := SLOStateOK
		switch {
		case o.cum.FastBurn >= t.cfg.PageBurn && o.cum.SlowBurn >= t.cfg.PageBurn:
			state = SLOStatePage
		case o.cum.FastBurn >= t.cfg.WarnBurn && o.cum.SlowBurn >= t.cfg.WarnBurn:
			state = SLOStateWarn
		}
		if state != o.cum.State {
			t.verdicts = append(t.verdicts, Verdict{
				Time:      now,
				Class:     o.cum.Class,
				Threshold: o.cum.Threshold,
				From:      o.cum.State,
				To:        state,
				FastBurn:  o.cum.FastBurn,
				SlowBurn:  o.cum.SlowBurn,
				Reason: fmt.Sprintf("fast burn %.2f and slow burn %.2f vs warn %.2f / page %.2f",
					o.cum.FastBurn, o.cum.SlowBurn, t.cfg.WarnBurn, t.cfg.PageBurn),
			})
			o.cum.State = state
		}
	}
}

// Snapshot returns a copy of the tracker's state; safe concurrently with
// Step.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := SLOSnapshot{Config: t.cfg}
	for _, o := range t.objs {
		s.Objectives = append(s.Objectives, o.cum)
	}
	s.Verdicts = append([]Verdict(nil), t.verdicts...)
	return s
}

// Verdicts returns a copy of the verdict journal.
func (t *SLOTracker) Verdicts() []Verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Verdict(nil), t.verdicts...)
}

// JSON renders the snapshot as indented JSON.
func (s *SLOSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as a human-readable table plus the verdict
// journal.
func (s *SLOSnapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slo objectives (windows %d/%d intervals, warn %.1fx, page %.1fx):\n",
		s.Config.FastWindow, s.Config.SlowWindow, s.Config.WarnBurn, s.Config.PageBurn)
	fmt.Fprintf(&b, "  %-14s %10s %8s %12s %10s %10s %8s %8s %6s\n",
		"class", "threshold", "target", "compliance", "budget", "fastburn", "slowburn", "total", "state")
	for _, o := range s.Objectives {
		class := o.Class
		if class == "" {
			class = "(all)"
		}
		fmt.Fprintf(&b, "  %-14s %10d %8.4f %12.6f %10.3f %10.2f %8.2f %8d %6s\n",
			class, o.Threshold, o.Target, o.Compliance, o.BudgetUsed, o.FastBurn, o.SlowBurn, o.Total, o.State)
	}
	if len(s.Verdicts) > 0 {
		fmt.Fprintf(&b, "slo verdicts:\n")
		for _, v := range s.Verdicts {
			class := v.Class
			if class == "" {
				class = "(all)"
			}
			fmt.Fprintf(&b, "  t=%-10d %-14s %s -> %s (%s)\n", v.Time, class, v.From, v.To, v.Reason)
		}
	}
	return b.String()
}

// Prometheus renders the snapshot in the text exposition format; base is
// the caller's shared label set (without braces).
func (s *SLOSnapshot) Prometheus(base string) string {
	var b strings.Builder
	label := func(o *ObjectiveStatus) string {
		class := o.Class
		if class == "" {
			class = "all"
		}
		return fmt.Sprintf("%s,class=\"%s\",threshold=\"%d\"", base, promEscape(class), o.Threshold)
	}
	fmt.Fprintf(&b, "# HELP hcf_slo_compliance Fraction of operations within the objective threshold.\n")
	fmt.Fprintf(&b, "# TYPE hcf_slo_compliance gauge\n")
	for i := range s.Objectives {
		fmt.Fprintf(&b, "hcf_slo_compliance{%s} %.6f\n", label(&s.Objectives[i]), s.Objectives[i].Compliance)
	}
	fmt.Fprintf(&b, "# HELP hcf_slo_budget_used Fraction of the error budget consumed (>1 = objective violated).\n")
	fmt.Fprintf(&b, "# TYPE hcf_slo_budget_used gauge\n")
	for i := range s.Objectives {
		fmt.Fprintf(&b, "hcf_slo_budget_used{%s} %.4f\n", label(&s.Objectives[i]), s.Objectives[i].BudgetUsed)
	}
	fmt.Fprintf(&b, "# HELP hcf_slo_burn_rate Error-budget burn rate by evaluation window.\n")
	fmt.Fprintf(&b, "# TYPE hcf_slo_burn_rate gauge\n")
	for i := range s.Objectives {
		fmt.Fprintf(&b, "hcf_slo_burn_rate{%s,window=\"fast\"} %.4f\n", label(&s.Objectives[i]), s.Objectives[i].FastBurn)
		fmt.Fprintf(&b, "hcf_slo_burn_rate{%s,window=\"slow\"} %.4f\n", label(&s.Objectives[i]), s.Objectives[i].SlowBurn)
	}
	fmt.Fprintf(&b, "# HELP hcf_slo_state Alert state (0 = ok, 1 = warn, 2 = page).\n")
	fmt.Fprintf(&b, "# TYPE hcf_slo_state gauge\n")
	for i := range s.Objectives {
		n := 0
		switch s.Objectives[i].State {
		case SLOStateWarn:
			n = 1
		case SLOStatePage:
			n = 2
		}
		fmt.Fprintf(&b, "hcf_slo_state{%s} %d\n", label(&s.Objectives[i]), n)
	}
	fmt.Fprintf(&b, "# HELP hcf_slo_verdicts_total Alert-state transitions recorded in the verdict journal.\n")
	fmt.Fprintf(&b, "# TYPE hcf_slo_verdicts_total counter\n")
	fmt.Fprintf(&b, "hcf_slo_verdicts_total{%s} %d\n", base, len(s.Verdicts))
	return b.String()
}
