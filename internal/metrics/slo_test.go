package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountAtOrBelow(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 100, 1000, 1 << 30} {
		h.Record(v)
	}
	s := h.Snapshot()
	cases := []struct {
		v    uint64
		want uint64
	}{
		{0, 1},               // just the zero
		{1, 2},               // zero + one
		{2000, 4},            // everything but 2^30
		{^uint64(0), 5},      // everything
		{uint64(1) << 40, 5}, // above the max but below the top bucket bound
	}
	for _, c := range cases {
		if got := s.CountAtOrBelow(c.v); got != c.want {
			t.Errorf("CountAtOrBelow(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Interpolation inside a bucket: 1024 values spread over [512, 1023]
	// should split roughly in half at 767.
	var u Histogram
	for i := int64(512); i < 1024; i++ {
		u.Record(i)
		u.Record(i)
	}
	us := u.Snapshot()
	got := us.CountAtOrBelow(767)
	if got < 450 || got > 580 {
		t.Errorf("interpolated CountAtOrBelow(767) = %d, want ~512 of 1024", got)
	}
	var empty HistogramSnapshot
	if empty.CountAtOrBelow(100) != 0 {
		t.Error("empty snapshot should count zero")
	}
}

func sloRecorder(t *testing.T) *Recorder {
	t.Helper()
	return MustNew(Config{
		Shards:   2,
		Classes:  []string{"find", "insert"},
		Paths:    []string{"sojourn"},
		TimeUnit: "cycles",
	})
}

func TestSLOTrackerValidation(t *testing.T) {
	r := sloRecorder(t)
	if _, err := NewSLOTracker(r, SLOConfig{}); err == nil {
		t.Error("expected error for no objectives")
	}
	bad := []SLOConfig{
		{Objectives: []Objective{{Class: "find", Threshold: 0, Target: 0.99}}},
		{Objectives: []Objective{{Class: "find", Threshold: 100, Target: 1}}},
		{Objectives: []Objective{{Class: "find", Threshold: 100, Target: 0}}},
		{Objectives: []Objective{{Class: "missing", Threshold: 100, Target: 0.99}}},
	}
	for i, cfg := range bad {
		if _, err := NewSLOTracker(r, cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestSLOTrackerBurnAndVerdicts(t *testing.T) {
	r := sloRecorder(t)
	tr, err := NewSLOTracker(r, SLOConfig{
		Objectives: []Objective{{Class: "find", Threshold: 1000, Target: 0.9}},
		FastWindow: 2,
		SlowWindow: 4,
		WarnBurn:   2,
		PageBurn:   5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: healthy traffic — everything well under threshold.
	for i := 0; i < 100; i++ {
		r.RecordOp(0, 0, 0, 10)
	}
	tr.Step(1000)
	s := tr.Snapshot()
	if got := s.Objectives[0].State; got != SLOStateOK {
		t.Fatalf("healthy state = %s, want ok", got)
	}
	if s.Objectives[0].Compliance != 1 {
		t.Fatalf("healthy compliance = %v, want 1", s.Objectives[0].Compliance)
	}

	// Phase 2: sustained badness — every op far above threshold. Budget is
	// 0.1, bad fraction 1.0 => burn 10 > page threshold 5 in both windows.
	for step := 0; step < 4; step++ {
		for i := 0; i < 100; i++ {
			r.RecordOp(0, 0, 0, 1_000_000)
		}
		tr.Step(int64(2000 + step*1000))
	}
	s = tr.Snapshot()
	if got := s.Objectives[0].State; got != SLOStatePage {
		t.Fatalf("overloaded state = %s, want page (fast %.2f slow %.2f)",
			got, s.Objectives[0].FastBurn, s.Objectives[0].SlowBurn)
	}
	if len(s.Verdicts) == 0 {
		t.Fatal("no verdicts recorded for ok->page transition")
	}
	last := s.Verdicts[len(s.Verdicts)-1]
	if last.To != SLOStatePage {
		t.Fatalf("last verdict To = %s, want page", last.To)
	}

	// Phase 3: recovery — fast window drains first, then slow; state must
	// come back down and journal the transition.
	for step := 0; step < 6; step++ {
		for i := 0; i < 400; i++ {
			r.RecordOp(0, 0, 0, 10)
		}
		tr.Step(int64(6000 + step*1000))
	}
	s = tr.Snapshot()
	if got := s.Objectives[0].State; got != SLOStateOK {
		t.Fatalf("recovered state = %s, want ok", got)
	}
	var sawRecovery bool
	for _, v := range s.Verdicts {
		if v.To == SLOStateOK {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatalf("no recovery verdict in journal: %+v", s.Verdicts)
	}
}

func TestSLOAllClassesObjective(t *testing.T) {
	r := sloRecorder(t)
	tr, err := NewSLOTracker(r, SLOConfig{
		Objectives: []Objective{{Threshold: 1000, Target: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RecordOp(0, 0, 0, 10)      // find, good
	r.RecordOp(0, 1, 0, 10_000)  // insert, bad
	r.RecordOp(1, 1, 0, 100_000) // insert, bad
	tr.Step(1000)
	s := tr.Snapshot()
	if s.Objectives[0].Total != 3 {
		t.Fatalf("merged total = %d, want 3", s.Objectives[0].Total)
	}
	if s.Objectives[0].Good != 1 {
		t.Fatalf("merged good = %d, want 1", s.Objectives[0].Good)
	}
}

func TestSLOSnapshotRenderers(t *testing.T) {
	r := sloRecorder(t)
	tr, err := NewSLOTracker(r, SLOConfig{
		Objectives: []Objective{{Class: "find", Threshold: 500, Target: 0.99}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.RecordOp(0, 0, 0, 100_000)
	}
	for step := 0; step < 13; step++ {
		tr.Step(int64((step + 1) * 1000))
	}
	snap := tr.Snapshot()

	txt := snap.Text()
	for _, w := range []string{"slo objectives", "find", "fastburn", "slo verdicts"} {
		if !strings.Contains(txt, w) {
			t.Errorf("Text missing %q:\n%s", w, txt)
		}
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	prom := snap.Prometheus(`scenario="s",engine="e"`)
	for _, w := range []string{"hcf_slo_compliance", "hcf_slo_budget_used", "hcf_slo_burn_rate", "hcf_slo_state", "hcf_slo_verdicts_total"} {
		if !strings.Contains(prom, w) {
			t.Errorf("Prometheus missing %q", w)
		}
	}

	// Report embedding: SLO + trace health flow through Text/Prometheus/JSON.
	rep := BuildReport(r, nil, "s", "e", 2)
	rep.SLO = &snap
	rep.Trace = &TraceHealth{Starts: 10, Retained: 8, Dropped: 2}
	if txt := rep.Text(); !strings.Contains(txt, "slo objectives") || !strings.Contains(txt, "trace health") {
		t.Errorf("report Text missing slo/trace sections:\n%s", txt)
	}
	if p := rep.Prometheus(); !strings.Contains(p, "hcf_slo_state") || !strings.Contains(p, "hcf_trace_spans_dropped_total") {
		t.Errorf("report Prometheus missing slo/trace metrics")
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"slo"`) || !strings.Contains(string(js), `"dropped": 2`) {
		t.Errorf("report JSON missing slo/trace fields")
	}
}

// TestSLOStepConcurrentSnapshot exercises the tracker's lock: Step from a
// driver goroutine racing Snapshot/Verdicts readers (run under -race).
func TestSLOStepConcurrentSnapshot(t *testing.T) {
	r := sloRecorder(t)
	tr, err := NewSLOTracker(r, SLOConfig{
		Objectives: []Objective{{Class: "find", Threshold: 100, Target: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.RecordOp(0, 0, 0, int64(i%2000))
			tr.Step(int64(i))
		}
	}()
	for i := 0; i < 200; i++ {
		_ = tr.Snapshot()
		_ = tr.Verdicts()
	}
	close(stop)
	wg.Wait()
}
