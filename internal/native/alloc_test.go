package native

import "testing"

// Zero-allocation gates for the submit fast paths. Steady-state
// operation submission must not allocate: operations are value structs,
// publication slots and combiner scratch are preallocated at Handle
// time, and parking channels are created once per slot. A regression
// here silently destroys the wall-clock wins the backend exists for.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

func TestExecuteAllocFree(t *testing.T) {
	pols, _ := counterPolicies(8)
	f, err := New(Config{Policies: pols})
	if err != nil {
		t.Fatal(err)
	}
	h := f.MustHandle()
	defer h.Release()
	// Uncontended: every op completes on a speculative path.
	requireZeroAllocs(t, "spec write hit", func() { h.Execute(Op{Class: 0, A: 1}) })
	requireZeroAllocs(t, "spec read hit", func() { h.Execute(Op{Class: 1}) })
	m := f.Metrics()
	if m.SpecReadHits == 0 || m.SpecWriteHits == 0 {
		t.Fatalf("fast paths not exercised: %+v", m)
	}
}

func TestCombinedApplyAllocFree(t *testing.T) {
	// Zero budget forces announce -> self-combine on every op: the full
	// slot protocol plus a combiner session, still allocation-free.
	pols, _ := counterPolicies(0)
	f, err := New(Config{Policies: pols})
	if err != nil {
		t.Fatal(err)
	}
	h := f.MustHandle()
	defer h.Release()
	h.Execute(Op{Class: 0, A: 1}) // warm the path once
	requireZeroAllocs(t, "combined self-apply", func() { h.Execute(Op{Class: 0, A: 1}) })
	if m := f.Metrics(); m.CombinerSessions == 0 {
		t.Fatalf("combining path not exercised: %+v", m)
	}
}
