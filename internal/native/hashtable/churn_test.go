package hashtable

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hcf/internal/native"
)

// absentProbeLen walks the probe sequence for an absent key exactly the
// way Get does, counting cells until a never-used (0) cell terminates
// the scan. On a healthy table this is short; on a table whose free
// cells have all decayed into tombstones it is the full capacity.
func absentProbeLen(t *Table, k uint64) int {
	i := t.hash(k)
	probes := 0
	for uint64(probes) <= t.mask {
		if t.keys[i].Load() == 0 {
			return probes
		}
		probes++
		i = (i + 1) & t.mask
	}
	return probes
}

// TestChurnRegression pins the tombstone-reclamation fix: 10x-capacity
// insert/delete cycles of distinct keys must neither panic nor degrade
// absent-key probes toward O(capacity). On the pre-fix table every 0
// cell eventually becomes a tombstone, the absent-key probe walks all
// slots, and this test fails at the probe-length assertion.
func TestChurnRegression(t *testing.T) {
	const capacity = 256
	tb := New(capacity)
	const live = 8 // small steady-state population, far below capacity/2
	for i := uint64(0); i < live; i++ {
		tb.Put(1_000_000+i, i)
	}
	cycles := 10 * capacity
	for c := 0; c < cycles; c++ {
		k := uint64(c) // distinct key every cycle: tombstones spread table-wide
		tb.Put(k, k)
		if !native.UnpackBool(tb.Delete(k)) {
			t.Fatalf("cycle %d: freshly inserted key %d missing", c, k)
		}
	}
	if got := tb.Len(); got != live {
		t.Fatalf("Len = %d after churn, want %d", got, live)
	}
	// An absent key's probe must terminate on a 0 cell quickly. Allow a
	// generous capacity/4 (the compaction threshold); the pre-fix table
	// reports the full capacity here.
	const bound = capacity / 4
	for k := uint64(2_000_000); k < 2_000_016; k++ {
		if p := absentProbeLen(tb, k); p > bound {
			t.Fatalf("absent-key probe length %d exceeds %d after churn (tombstones=%d)",
				p, bound, tb.Tombstones())
		}
		if _, ok := native.Unpack(tb.Get(k)); ok {
			t.Fatalf("absent key %d reported present", k)
		}
	}
	// The long-lived population must have survived every compaction.
	for i := uint64(0); i < live; i++ {
		v, ok := native.Unpack(tb.Get(1_000_000 + i))
		if !ok || v != i {
			t.Fatalf("survivor key %d = (%d,%v), want (%d,true)", 1_000_000+i, v, ok, i)
		}
	}
}

// TestChurnThroughFramework runs the same churn shape through a native
// framework under concurrency, with a spectator goroutine polling Len
// and Tombstones the whole time — the gauge path the KV engine's serve
// endpoint uses. Run under -race this also proves the atomic counters
// and in-place compaction are race-clean against optimistic readers.
func TestChurnThroughFramework(t *testing.T) {
	const capacity = 1 << 9
	tb := New(capacity)
	fw, err := native.New(native.Config{Policies: tb.Policies(4, 0), MaxHandles: 8})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var spectator sync.WaitGroup
	spectator.Add(1)
	go func() {
		defer spectator.Done()
		for !stop.Load() {
			if n := tb.Len(); n < 0 || n > capacity {
				t.Errorf("Len gauge out of range: %d", n)
				return
			}
			_ = tb.Tombstones()
		}
	}()
	const goroutines, cycles = 4, 4 * capacity
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := fw.MustHandle()
			defer h.Release()
			for c := 0; c < cycles; c++ {
				k := uint64(g*cycles + c)
				h.Execute(PutOp(k, k))
				h.Execute(GetOp(k))
				h.Execute(DeleteOp(k))
				h.Execute(GetOp(k + 1<<40)) // absent-key probe under churn
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	spectator.Wait()
	if got := tb.Len(); got != 0 {
		t.Fatalf("Len = %d after deleting every inserted key", got)
	}
}

// TestExactCapacityFill fills every slot with live keys: all must be
// retrievable, and Len must equal the capacity.
func TestExactCapacityFill(t *testing.T) {
	const capacity = 64
	tb := New(capacity)
	for k := uint64(0); k < capacity; k++ {
		if _, replaced := native.Unpack(tb.Put(k, k*3)); replaced {
			t.Fatalf("Put(%d) reported replacement on fresh key", k)
		}
	}
	if tb.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tb.Len(), capacity)
	}
	for k := uint64(0); k < capacity; k++ {
		v, ok := native.Unpack(tb.Get(k))
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*3)
		}
	}
	// Updates in a full table must still work (no free cell needed).
	tb.Put(0, 999)
	if v, _ := native.Unpack(tb.Get(0)); v != 999 {
		t.Fatalf("update in full table lost: got %d", v)
	}
}

// TestFullTablePanic pins the panic path: inserting one key past a table
// full of live keys must panic with the documented message.
func TestFullTablePanic(t *testing.T) {
	const capacity = 32
	tb := New(capacity)
	for k := uint64(0); k < capacity; k++ {
		tb.Put(k, k)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Put into a full table did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "table full") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	tb.Put(capacity, 0)
}

// TestTombstoneReuseBranch pins the haveFree insert branch: after a
// delete in an otherwise-full table, the next insert must land in the
// reclaimed cell rather than panicking, and the dead counter must drop.
func TestTombstoneReuseBranch(t *testing.T) {
	const capacity = 32
	tb := New(capacity)
	for k := uint64(0); k < capacity; k++ {
		tb.Put(k, k)
	}
	if !native.UnpackBool(tb.Delete(5)) {
		t.Fatal("Delete(5) missed")
	}
	if tb.Tombstones() != 1 {
		t.Fatalf("Tombstones = %d after one delete, want 1", tb.Tombstones())
	}
	// capacity is 32, threshold is >8 dead cells, so no compaction has
	// run: this insert must take the haveFree tombstone-reuse branch.
	if _, replaced := native.Unpack(tb.Put(100, 42)); replaced {
		t.Fatal("Put(100) reported replacement on fresh key")
	}
	if tb.Tombstones() != 0 {
		t.Fatalf("Tombstones = %d after reuse, want 0", tb.Tombstones())
	}
	if tb.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tb.Len(), capacity)
	}
	if v, ok := native.Unpack(tb.Get(100)); !ok || v != 42 {
		t.Fatalf("Get(100) = (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := native.Unpack(tb.Get(5)); ok {
		t.Fatal("deleted key 5 still present")
	}
}

// TestRangeVisitsLiveKeys checks Range sees exactly the live population,
// including after compactions have shuffled cells.
func TestRangeVisitsLiveKeys(t *testing.T) {
	tb := New(128)
	want := map[uint64]uint64{}
	for k := uint64(0); k < 200; k++ {
		tb.Put(k, k*7)
		if k%2 == 0 {
			tb.Delete(k)
		} else {
			want[k] = k * 7
		}
		if k >= 100 {
			tb.Delete(k)
			delete(want, k)
		}
	}
	got := map[uint64]uint64{}
	tb.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
}
