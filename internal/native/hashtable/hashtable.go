// Package hashtable is a fixed-capacity open-addressing uint64->uint64
// hash table for the native HCF backend: all cells are atomics, so the
// framework's optimistic-read speculation may scan it concurrently with
// a writer and rely on seqlock validation to discard stale views.
package hashtable

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"hcf/internal/native"
)

// Operation classes, indexing the slice Policies returns.
const (
	// ClassGet looks a key up (read-only).
	ClassGet = iota
	// ClassPut inserts or updates a key.
	ClassPut
	// ClassDelete removes a key.
	ClassDelete
)

// Key cell encoding: 0 = never used, tombstone = deleted, else key+1.
// External keys must therefore be below MaxKey.
const (
	tombstone = ^uint64(0)
	// MaxKey is the largest storable key.
	MaxKey = tombstone - 2
)

// Table is the open-addressing table. Writers (Put/Delete) run only
// inside the framework's seqlock critical sections, so they are mutually
// exclusive; readers may run anywhere.
type Table struct {
	shift uint
	mask  uint64
	keys  []atomic.Uint64
	vals  []atomic.Uint64
	// size and dead are atomics so occupancy gauges (the KV engine's
	// serve endpoint polls Len) can read them without holding the
	// framework's lock; writers still mutate them only inside seqlock
	// critical sections.
	size atomic.Uint64
	dead atomic.Uint64
	// scratch holds live (key, val) pairs during compaction; allocated
	// lazily on the first compaction, then reused.
	scratch []uint64
}

// New creates a table with at least capacity slots (rounded up to a
// power of two). The table never resizes; Put panics when it fills, so
// size it to comfortably exceed the live key count (2x is plenty: load
// factor stays below 1/2 and probes stay short).
func New(capacity int) *Table {
	if capacity < 2 {
		capacity = 2
	}
	n := 1 << bits.Len(uint(capacity-1))
	t := &Table{
		shift: uint(64 - bits.Len(uint(n-1))),
		mask:  uint64(n - 1),
		keys:  make([]atomic.Uint64, n),
		vals:  make([]atomic.Uint64, n),
	}
	return t
}

// Len returns the number of live keys. Safe to call from any goroutine
// at any time: the count is atomic, so occupancy gauges can poll it
// concurrently with writers (the value is naturally a snapshot).
func (t *Table) Len() int { return int(t.size.Load()) }

// Tombstones returns the number of dead (deleted, unreclaimed) cells.
// Safe to call from any goroutine, like Len.
func (t *Table) Tombstones() int { return int(t.dead.Load()) }

// Capacity returns the number of slots.
func (t *Table) Capacity() int { return int(t.mask + 1) }

// hash spreads k with a Fibonacci multiply; the top bits index the table.
func (t *Table) hash(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> t.shift
}

// Get returns Pack(value, found). Safe under optimistic speculation: the
// probe loop is bounded by the table size on any stale view.
func (t *Table) Get(k uint64) uint64 {
	i := t.hash(k)
	want := k + 1
	for probes := uint64(0); probes <= t.mask; probes++ {
		ks := t.keys[i].Load()
		if ks == 0 {
			return native.Pack(0, false)
		}
		if ks == want {
			return native.Pack(t.vals[i].Load(), true)
		}
		i = (i + 1) & t.mask
	}
	return native.Pack(0, false)
}

// Put inserts or updates k and returns Pack(previous value, replaced).
// Must run with the structure lock held (writer-exclusive).
func (t *Table) Put(k, v uint64) uint64 {
	t.maybeCompact()
	i := t.hash(k)
	want := k + 1
	haveFree := false // first tombstone seen during the probe, if any
	freeIdx := uint64(0)
	for probes := uint64(0); probes <= t.mask; probes++ {
		ks := t.keys[i].Load()
		if ks == want {
			old := t.vals[i].Load()
			t.vals[i].Store(v)
			return native.Pack(old, true)
		}
		if ks == tombstone && !haveFree {
			haveFree, freeIdx = true, i
		}
		if ks == 0 {
			if !haveFree {
				freeIdx = i
			}
			return t.insertAt(freeIdx, want, v, haveFree)
		}
		i = (i + 1) & t.mask
	}
	if haveFree {
		return t.insertAt(freeIdx, want, v, true)
	}
	panic(fmt.Sprintf("hashtable: table full (%d slots)", t.mask+1))
}

// insertAt writes a new entry into slot i, maintaining the size and dead
// counters (reusing a tombstone reclaims a dead cell).
func (t *Table) insertAt(i, wantKey, v uint64, reuseTombstone bool) uint64 {
	t.vals[i].Store(v)
	t.keys[i].Store(wantKey)
	t.size.Add(1)
	if reuseTombstone {
		t.dead.Add(^uint64(0))
	}
	return native.Pack(0, false)
}

// Delete removes k and returns PackBool(found). Must run with the
// structure lock held (writer-exclusive).
func (t *Table) Delete(k uint64) uint64 {
	i := t.hash(k)
	want := k + 1
	for probes := uint64(0); probes <= t.mask; probes++ {
		ks := t.keys[i].Load()
		if ks == 0 {
			return native.PackBool(false)
		}
		if ks == want {
			t.keys[i].Store(tombstone)
			t.size.Add(^uint64(0))
			t.dead.Add(1)
			t.maybeCompact()
			return native.PackBool(true)
		}
		i = (i + 1) & t.mask
	}
	return native.PackBool(false)
}

// maybeCompact reclaims tombstones once dead cells exceed a quarter of
// the capacity. Without this, put/delete churn monotonically converts 0
// cells into tombstones until every absent-key probe walks the whole
// table and Put can only reuse tombstones in place — O(capacity) probes
// at a live load factor nowhere near full. Must run with the structure
// lock held.
func (t *Table) maybeCompact() {
	if t.dead.Load() > (t.mask+1)/4 {
		t.compact()
	}
}

// compact rehashes all live entries in place, returning every dead cell
// to 0. It deliberately reuses the existing keys/vals backing arrays
// rather than allocating fresh ones: concurrent optimistic readers hold
// references to these slices, and swapping the slice headers would be a
// plain-memory data race. Transient states during the rebuild are fine —
// readers validate against the seqlock and discard anything they saw
// while we held it. Must run with the structure lock held.
func (t *Table) compact() {
	if t.scratch == nil {
		t.scratch = make([]uint64, 0, 2*(t.mask+1))
	}
	live := t.scratch[:0]
	for i := range t.keys {
		ks := t.keys[i].Load()
		if ks != 0 && ks != tombstone {
			live = append(live, ks, t.vals[i].Load())
		}
		t.keys[i].Store(0)
	}
	t.dead.Store(0)
	for j := 0; j < len(live); j += 2 {
		want, v := live[j], live[j+1]
		i := t.hash(want - 1)
		for t.keys[i].Load() != 0 {
			i = (i + 1) & t.mask
		}
		t.vals[i].Store(v)
		t.keys[i].Store(want)
	}
	t.scratch = live[:0]
}

// Range calls f for every live (key, value) pair until f returns false.
// Iteration order is unspecified. Call only while quiescent or under the
// framework's lock — concurrent writers make the walk a torn snapshot.
func (t *Table) Range(f func(k, v uint64) bool) {
	for i := range t.keys {
		ks := t.keys[i].Load()
		if ks == 0 || ks == tombstone {
			continue
		}
		if !f(ks-1, t.vals[i].Load()) {
			return
		}
	}
}

// GetOp, PutOp and DeleteOp build operations for the framework.
func GetOp(k uint64) native.Op    { return native.Op{Class: ClassGet, A: k} }
func PutOp(k, v uint64) native.Op { return native.Op{Class: ClassPut, A: k, B: v} }
func DeleteOp(k uint64) native.Op { return native.Op{Class: ClassDelete, A: k} }

// Policies returns the three-class policy set wiring t onto a native
// framework: optimistic-read Gets, CAS-acquire Puts/Deletes, help-all
// combining. tryPrivate budgets speculation per class; maxBatch bounds
// the combiner's batches (0 = framework default).
func (t *Table) Policies(tryPrivate, maxBatch int) []native.Policy {
	return []native.Policy{
		ClassGet: {
			Name: "Get", ReadOnly: true, TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return t.Get(op.A) },
		},
		ClassPut: {
			Name: "Put", TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return t.Put(op.A, op.B) },
		},
		ClassDelete: {
			Name: "Delete", TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return t.Delete(op.A) },
		},
	}
}
