package hashtable

import (
	"math/rand/v2"
	"sync"
	"testing"

	"hcf/internal/native"
)

func TestSequentialAgainstMap(t *testing.T) {
	tb := New(256)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		k := rng.Uint64N(100)
		switch rng.IntN(3) {
		case 0:
			v := rng.Uint64() >> 1 // results are Pack'd: 63-bit values
			gotPrev, gotRepl := native.Unpack(tb.Put(k, v))
			wantPrev, wantRepl := model[k], false
			if _, ok := model[k]; ok {
				wantRepl = true
			}
			model[k] = v
			if gotRepl != wantRepl || (wantRepl && gotPrev != wantPrev) {
				t.Fatalf("Put(%d): got (%d,%v), want (%d,%v)", k, gotPrev, gotRepl, wantPrev, wantRepl)
			}
		case 1:
			got := native.UnpackBool(tb.Delete(k))
			_, want := model[k]
			delete(model, k)
			if got != want {
				t.Fatalf("Delete(%d): got %v, want %v", k, got, want)
			}
		default:
			gotV, gotOK := native.Unpack(tb.Get(k))
			wantV, wantOK := model[k]
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("Get(%d): got (%d,%v), want (%d,%v)", k, gotV, gotOK, wantV, wantOK)
			}
		}
		if tb.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", tb.Len(), len(model))
		}
	}
}

// TestTombstoneReuse fills a small table, deletes everything, and
// refills with different keys: insertion must reuse tombstoned cells
// instead of exhausting the fixed capacity.
func TestTombstoneReuse(t *testing.T) {
	tb := New(16)
	for round := uint64(0); round < 100; round++ {
		for i := uint64(0); i < 10; i++ {
			tb.Put(round*1000+i, i)
		}
		for i := uint64(0); i < 10; i++ {
			if !native.UnpackBool(tb.Delete(round*1000 + i)) {
				t.Fatalf("round %d: key %d missing", round, i)
			}
		}
		if tb.Len() != 0 {
			t.Fatalf("round %d: Len = %d after deleting all", round, tb.Len())
		}
	}
}

// TestFrameworkWiring drives the table through a native framework from
// several goroutines: per-key counters survive exactly-once application.
func TestFrameworkWiring(t *testing.T) {
	tb := New(1 << 10)
	fw, err := native.New(native.Config{Policies: tb.Policies(4, 0), MaxHandles: 8})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, opsPer = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := fw.MustHandle()
			defer h.Release()
			k := uint64(g) // one key per goroutine: increments must all land
			for i := 0; i < opsPer; i++ {
				v, _ := native.Unpack(h.Execute(GetOp(k)))
				h.Execute(PutOp(k, v+1))
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		v, ok := native.Unpack(tb.Get(uint64(g)))
		if !ok || v != opsPer {
			t.Fatalf("key %d = (%d,%v), want (%d,true)", g, v, ok, opsPer)
		}
	}
}
