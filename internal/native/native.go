// Package native re-targets the HCF phase pipeline (internal/phases) at
// real memory: direct Go atomics instead of simulated cells, goroutines
// instead of simulated threads, and wall-clock time instead of virtual
// cycles. It is the production backend the simulator prototypes — the
// same speculation-where-it-wins / combining-where-it-doesn't shape,
// deployable as an ordinary Go library (see the public hcf/native
// package and hcf.NewNative).
//
// The pipeline maps onto native memory as follows:
//
//   - TryPrivate (speculation). Hardware transactions are replaced by a
//     software stand-in in the style of Brown's HTM-template fallback:
//     a single seqlock word guards the structure. Read-only classes run
//     optimistically — load the version (even = no writer), run the
//     operation over atomic cells, and validate that the version did not
//     change. Update classes attempt a budgeted CAS-acquire of the same
//     word (even v -> odd v+1), apply, and publish (store v+2). Both
//     abort to the combining path when the budget is exhausted.
//
//   - Announce + combining. The owner publishes its operation in a
//     cache-padded per-handle publication slot and spins briefly; the
//     first thread to acquire the seqlock word becomes the combiner,
//     claims every announced operation its ShouldHelp accepts, applies
//     them in MaxBatch-bounded batches (RunMulti or one-by-one), and
//     publishes each result back through the slot's status word.
//
//   - Parking. A waiter whose operation has been claimed by a combiner
//     parks on a buffered per-slot channel (the futex stand-in); the
//     combiner posts a wake token after the Done transition. Waiters
//     whose operations are merely announced never park — they stay
//     runnable so one of them can always become the combiner.
//
// Safety under the Go memory model: all structure state read by the
// optimistic path lives in atomic cells, and Go's sync/atomic operations
// behave like sequentially consistent C++ atomics (there is a single
// total order over all atomic operations). A read-only operation that
// observes the same even version before and after therefore ran entirely
// between one writer's release and the next writer's acquire, and its
// (possibly torn in time, never in value) cell loads are both race-free
// and linearizable at the observed version. docs/PERFORMANCE.md spells
// the argument out.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Publication-slot status values, mirroring internal/phases' descriptor
// protocol (Free -> Announced -> Claimed -> Done -> Free). The owner
// performs Free->Announced and Done->Free; only the combiner — which
// holds the seqlock — performs Announced->Claimed->Done.
const (
	slotFree uint32 = iota
	slotAnnounced
	slotClaimed
	slotDone
)

// cacheLine is the assumed cache-line size; slots are padded to two lines
// so the adjacent-line prefetcher cannot couple neighbours either.
const cacheLine = 64

// spinBudget is how many wait-loop iterations a claimed operation's owner
// spins before parking on its slot channel.
const spinBudget = 64

// Op is one data-structure operation: a class (dense, starting at 0,
// indexing Config.Policies) plus up to two operand words. It is a plain
// value — announcing and combining never allocate.
type Op struct {
	// Class selects the policy that runs this operation.
	Class int
	// A and B are the operation's operands (key, value, ...).
	A, B uint64
}

// ApplyFunc runs one operation's sequential code and returns its packed
// result. For ReadOnly classes it must be safe to execute concurrently
// with a writer: all shared state it touches must live in atomic cells,
// and it must terminate on any (stale but never torn) view of them — the
// framework discards results that fail seqlock validation.
type ApplyFunc func(op Op) uint64

// CombineFunc applies a batch of claimed operations (the paper's
// runMulti), marking completions in done and results in res. It may
// complete only a subset per call; the combiner re-invokes it until the
// batch drains, falling back to one-by-one application when a call makes
// no progress. It always runs with the seqlock held, so it is written as
// sequential code.
type CombineFunc func(ops []Op, res []uint64, done []bool)

// ShouldHelpFunc decides whether a combiner executing mine also adopts
// other (the paper's shouldHelp). Nil means help-all.
type ShouldHelpFunc func(mine, other Op) bool

// WitnessFunc observes completed applications for linearizability
// checking, exactly like engine.WitnessFunc on the simulated backend:
// applications are legally ordered by (stamp, intra). Stamps are seqlock
// versions — writers stamp the odd version they hold, validated readers
// stamp the even version they observed — so the version word doubles as
// the serialization clock.
type WitnessFunc func(stamp uint64, intra int, op Op, result uint64)

// Policy configures how the framework handles one operation class. It is
// the native counterpart of core.Policy: the TryPrivate budget, MaxBatch
// bound and ShouldHelp selector transfer unchanged.
type Policy struct {
	// Name labels the class in metrics output.
	Name string
	// ReadOnly marks a class whose operations never modify the structure;
	// its speculation runs validated optimistic reads instead of
	// CAS-acquires.
	ReadOnly bool
	// TryPrivate budgets the speculative attempts before announcing.
	TryPrivate int
	// MaxBatch bounds operations per RunMulti call (0 = default 8).
	MaxBatch int
	// ShouldHelp selects which announced operations a combiner running an
	// operation of this class adopts. Nil means help-all.
	ShouldHelp ShouldHelpFunc
	// CombineDelay makes a combiner whose own operation is of this class
	// yield the scheduler this many times before its claim sweep, giving
	// concurrent owners a window to announce and join the batch — the
	// flat-combining analogue of a group-commit delay. Worth paying only
	// when RunMulti amortizes an expensive per-batch cost (e.g. an
	// fsync); leave 0 for cheap in-memory batches. It matters most when
	// GOMAXPROCS is low: a combiner blocked in a syscall does not free
	// its P promptly, so without the yield window announcements never
	// overlap and batches collapse to size one.
	CombineDelay int
	// Run is the operation's sequential code. Required.
	Run ApplyFunc
	// RunMulti combines a batch. Nil applies each operation's own Run.
	RunMulti CombineFunc
}

// Config configures a native Framework.
type Config struct {
	// Policies, indexed by Op.Class, must be non-empty.
	Policies []Policy
	// MaxHandles bounds concurrently registered handles (publication
	// slots). 0 defaults to max(8, 4*GOMAXPROCS).
	MaxHandles int
}

// slot is one cache-padded publication slot. The status word orders all
// cross-goroutine accesses to the plain op/result fields: the owner
// writes op before the Announced store, the combiner writes result
// before the Done store.
type slot struct {
	status atomic.Uint32
	_      uint32
	op     Op
	result uint64
	park   chan struct{}
	_      [2*cacheLine - 48]byte
}

// nbudget holds one class's runtime-adjustable knobs, padded against
// false sharing (the combiner loads them on every session).
type nbudget struct {
	tryPrivate atomic.Int32
	maxBatch   atomic.Int32
	_          [cacheLine - 8]byte
}

// Metrics counts one handle's (or, merged, the framework's) activity.
// The counters mirror engine.Metrics where the concepts coincide.
type Metrics struct {
	// Ops is the number of completed operations.
	Ops uint64 `json:"ops"`
	// SpecAttempts counts speculative attempts; SpecAborts the failures.
	SpecAttempts uint64 `json:"spec_attempts"`
	SpecAborts   uint64 `json:"spec_aborts"`
	// SpecReadHits / SpecWriteHits count operations completed by
	// validated optimistic reads / CAS-acquired writes.
	SpecReadHits  uint64 `json:"spec_read_hits"`
	SpecWriteHits uint64 `json:"spec_write_hits"`
	// Announces counts operations that fell through to the slot protocol.
	Announces uint64 `json:"announces"`
	// LockAcquisitions counts seqlock acquisitions by the combining path
	// (speculative write acquisitions are counted in SpecWriteHits).
	LockAcquisitions uint64 `json:"lock_acquisitions"`
	// CombinerSessions / CombinedOps mirror the combining-degree
	// statistics: operations applied per combining pass.
	CombinerSessions uint64 `json:"combiner_sessions"`
	CombinedOps      uint64 `json:"combined_ops"`
	// Helped counts operations completed by another handle's combiner.
	Helped uint64 `json:"helped"`
	// Parks counts waits that gave up spinning and blocked on the slot
	// channel.
	Parks uint64 `json:"parks"`
}

// CombiningDegree returns the mean operations applied per combining pass.
func (m *Metrics) CombiningDegree() float64 {
	if m.CombinerSessions == 0 {
		return 0
	}
	return float64(m.CombinedOps) / float64(m.CombinerSessions)
}

// Merge adds o into m.
func (m *Metrics) Merge(o *Metrics) {
	m.Ops += o.Ops
	m.SpecAttempts += o.SpecAttempts
	m.SpecAborts += o.SpecAborts
	m.SpecReadHits += o.SpecReadHits
	m.SpecWriteHits += o.SpecWriteHits
	m.Announces += o.Announces
	m.LockAcquisitions += o.LockAcquisitions
	m.CombinerSessions += o.CombinerSessions
	m.CombinedOps += o.CombinedOps
	m.Helped += o.Helped
	m.Parks += o.Parks
}

// threadMetrics pads one handle's counters onto private cache lines.
type threadMetrics struct {
	m Metrics
	_ [2*cacheLine - 88]byte
}

// Framework is the native HCF engine: one seqlock word, per-class
// budgets, and a cache-padded publication slot per handle.
type Framework struct {
	// seq is the seqlock word: even = free, odd = a writer or combiner is
	// inside its critical section. It doubles as the serialization clock
	// for witness stamps. Padded so speculation traffic cannot false-share
	// with the slot table headers.
	seq atomic.Uint64
	_   [cacheLine - 8]byte

	policies []Policy
	budgets  []nbudget
	slots    []slot
	metrics  []threadMetrics

	// used is the high-water mark of handle ids ever acquired; combiners
	// scan slots [0, used).
	used atomic.Int32

	// witness observes applications; install before running operations.
	witness WitnessFunc

	mu      sync.Mutex
	freeIDs []int32
	nextID  int32
}

// New builds a native framework. Policy defaults mirror core.New:
// MaxBatch 0 becomes 8, ShouldHelp nil means help-all, RunMulti nil
// applies each operation individually.
func New(cfg Config) (*Framework, error) {
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("native: config needs at least one policy")
	}
	maxHandles := cfg.MaxHandles
	if maxHandles <= 0 {
		maxHandles = 4 * runtime.GOMAXPROCS(0)
		if maxHandles < 8 {
			maxHandles = 8
		}
	}
	f := &Framework{
		policies: cfg.Policies,
		budgets:  make([]nbudget, len(cfg.Policies)),
		slots:    make([]slot, maxHandles),
		metrics:  make([]threadMetrics, maxHandles),
	}
	for c := range f.policies {
		p := &f.policies[c]
		if p.Run == nil {
			return nil, fmt.Errorf("native: policy %d (%s) has no Run", c, p.Name)
		}
		if p.TryPrivate < 0 {
			return nil, fmt.Errorf("native: policy %d (%s) has negative TryPrivate", c, p.Name)
		}
		if p.MaxBatch <= 0 {
			p.MaxBatch = 8
		}
		f.budgets[c].tryPrivate.Store(int32(p.TryPrivate))
		f.budgets[c].maxBatch.Store(int32(p.MaxBatch))
	}
	for i := range f.slots {
		f.slots[i].park = make(chan struct{}, 1)
	}
	return f, nil
}

// NumClasses returns the number of configured operation classes.
func (f *Framework) NumClasses() int { return len(f.policies) }

// ClassName returns class's policy name ("" if unnamed).
func (f *Framework) ClassName(class int) string { return f.policies[class].Name }

// MaxHandles returns the publication-slot capacity.
func (f *Framework) MaxHandles() int { return len(f.slots) }

// TryPrivate returns class's current speculation budget.
func (f *Framework) TryPrivate(class int) int {
	return int(f.budgets[class].tryPrivate.Load())
}

// SetTryPrivate adjusts class's speculation budget at run time. Negative
// values clamp to zero. Like the simulated framework's budgets it is a
// performance knob, never a correctness one.
func (f *Framework) SetTryPrivate(class, trials int) {
	f.budgets[class].tryPrivate.Store(int32(max(trials, 0)))
}

// MaxBatch returns class's current combining batch bound.
func (f *Framework) MaxBatch(class int) int {
	return int(f.budgets[class].maxBatch.Load())
}

// SetMaxBatch adjusts class's batch bound at run time (values below 1
// clamp to 1).
func (f *Framework) SetMaxBatch(class, n int) {
	f.budgets[class].maxBatch.Store(int32(max(n, 1)))
}

// Version returns the current seqlock version (for tests and stats).
func (f *Framework) Version() uint64 { return f.seq.Load() }

// SetWitness installs a serialization-witness observer (nil disables).
// Install before running operations; the framework does not synchronize
// installation with in-flight Executes.
func (f *Framework) SetWitness(fn WitnessFunc) { f.witness = fn }

// Metrics merges all handles' counters. Read it only while no operations
// are in flight (e.g. after the workers joined).
func (f *Framework) Metrics() Metrics {
	var m Metrics
	for i := range f.metrics {
		m.Merge(&f.metrics[i].m)
	}
	return m
}

// ResetMetrics zeroes all counters. Call only while quiescent.
func (f *Framework) ResetMetrics() {
	for i := range f.metrics {
		f.metrics[i].m = Metrics{}
	}
}

// scratch is a handle's combining working set, preallocated so sessions
// never allocate.
type scratch struct {
	pend []int32
	ops  []Op
	res  []uint64
	done []bool
}

// Handle is a registered participant: a claim on one publication slot.
// Acquire one per goroutine (Framework.Handle), use it for any number of
// Execute calls, and Release it when the goroutine is done. A Handle
// must not be used concurrently.
type Handle struct {
	fw *Framework
	id int32
	sc scratch
}

// Handle registers a participant, claiming a free publication slot.
func (f *Framework) Handle() (*Handle, error) {
	f.mu.Lock()
	var id int32
	if n := len(f.freeIDs); n > 0 {
		id = f.freeIDs[n-1]
		f.freeIDs = f.freeIDs[:n-1]
	} else {
		if int(f.nextID) >= len(f.slots) {
			f.mu.Unlock()
			return nil, fmt.Errorf("native: all %d handles in use (raise Config.MaxHandles)", len(f.slots))
		}
		id = f.nextID
		f.nextID++
		f.used.Store(f.nextID)
	}
	f.mu.Unlock()
	n := len(f.slots)
	return &Handle{
		fw: f,
		id: id,
		sc: scratch{
			pend: make([]int32, 0, n),
			ops:  make([]Op, 0, n),
			res:  make([]uint64, 0, n),
			done: make([]bool, 0, n),
		},
	}, nil
}

// MustHandle is Handle for tests and benchmarks: it panics on exhaustion.
func (f *Framework) MustHandle() *Handle {
	h, err := f.Handle()
	if err != nil {
		panic(err)
	}
	return h
}

// ID returns the handle's slot index, in [0, MaxHandles). Stable for
// the handle's lifetime and unique among live handles, so callers can
// index per-handle side arrays (e.g. staging buffers for operand data
// that does not fit in Op's two words).
func (h *Handle) ID() int { return int(h.id) }

// Release returns the handle's slot to the framework. The handle must
// not be used afterwards.
func (h *Handle) Release() {
	f := h.fw
	f.mu.Lock()
	f.freeIDs = append(f.freeIDs, h.id)
	f.mu.Unlock()
	h.fw = nil
}

// Execute runs op to completion and returns its result. It is
// linearizable: the operation takes effect exactly once, at some instant
// between invocation and return — at its validated read version, inside
// its CAS-acquired critical section, or inside the combiner's.
func (h *Handle) Execute(op Op) uint64 {
	f := h.fw
	pol := &f.policies[op.Class]
	b := &f.budgets[op.Class]
	tm := &f.metrics[h.id].m
	tm.Ops++
	trials := int(b.tryPrivate.Load())
	if pol.ReadOnly {
		if res, ok := h.specRead(pol, op, trials, tm); ok {
			return res
		}
	} else {
		if res, ok := h.specWrite(pol, op, trials, tm); ok {
			return res
		}
	}
	return h.combine(pol, b, op, tm)
}

// specRead is the optimistic-read speculation path: run the operation
// between two equal even observations of the seqlock word.
func (h *Handle) specRead(pol *Policy, op Op, trials int, tm *Metrics) (uint64, bool) {
	f := h.fw
	for i := 0; i < trials; i++ {
		tm.SpecAttempts++
		v1 := f.seq.Load()
		if v1&1 != 0 {
			tm.SpecAborts++
			runtime.Gosched()
			continue
		}
		res := pol.Run(op)
		if f.seq.Load() == v1 {
			tm.SpecReadHits++
			if f.witness != nil {
				f.witness(v1, 0, op, res)
			}
			return res, true
		}
		tm.SpecAborts++
	}
	return 0, false
}

// specWrite is the CAS-acquire speculation path: budgeted attempts to
// take the seqlock word and apply the single operation.
func (h *Handle) specWrite(pol *Policy, op Op, trials int, tm *Metrics) (uint64, bool) {
	f := h.fw
	for i := 0; i < trials; i++ {
		tm.SpecAttempts++
		v := f.seq.Load()
		if v&1 != 0 {
			tm.SpecAborts++
			runtime.Gosched()
			continue
		}
		if !f.seq.CompareAndSwap(v, v+1) {
			tm.SpecAborts++
			continue
		}
		res := pol.Run(op)
		if f.witness != nil {
			f.witness(v+1, 0, op, res)
		}
		f.seq.Store(v + 2)
		tm.SpecWriteHits++
		return res, true
	}
	return 0, false
}

// combine is the announce -> wait-or-combine path. The owner publishes
// its operation and loops: return when a combiner finished it, become
// the combiner when the seqlock is free, park only once claimed.
func (h *Handle) combine(pol *Policy, b *nbudget, op Op, tm *Metrics) uint64 {
	f := h.fw
	s := &f.slots[h.id]
	s.op = op
	s.result = 0
	s.status.Store(slotAnnounced)
	tm.Announces++
	spins := 0
	for {
		switch s.status.Load() {
		case slotDone:
			res := s.result
			s.status.Store(slotFree)
			drainPark(s)
			tm.Helped++
			return res
		case slotClaimed:
			// A combiner owns the operation and will post a wake token
			// after the Done transition; parking cannot lose it.
			if spins >= spinBudget {
				tm.Parks++
				<-s.park
				continue
			}
		case slotAnnounced:
			// Stay runnable: one announced owner must always be able to
			// become the combiner, or a quiet system would deadlock.
			if v := f.seq.Load(); v&1 == 0 && f.seq.CompareAndSwap(v, v+1) {
				res, ok := h.runCombiner(pol, b, v+1, tm)
				f.seq.Store(v + 2)
				if ok {
					drainPark(s)
					return res
				}
				continue // a previous combiner finished us: Done is set
			}
		}
		spins++
		runtime.Gosched()
	}
}

// drainPark clears a stale wake token so it cannot alias a later wait.
func drainPark(s *slot) {
	select {
	case <-s.park:
	default:
	}
}

// wake posts a wake token to a slot whose operation just completed. The
// channel is buffered, so the post never blocks the combiner; a dropped
// post means a token is already pending.
func wake(s *slot) {
	select {
	case s.park <- struct{}{}:
	default:
	}
}

// runCombiner runs one combining session while holding the seqlock at
// odd version vodd. It reports the owner's result, or ok=false when a
// previous combiner already completed the owner's operation.
func (h *Handle) runCombiner(pol *Policy, b *nbudget, vodd uint64, tm *Metrics) (uint64, bool) {
	f := h.fw
	own := &f.slots[h.id]
	tm.LockAcquisitions++
	if own.status.Load() != slotAnnounced {
		// Claimed cannot be observed here — a combiner finishes every
		// claimed operation before releasing the seqlock — so the slot is
		// Done: a previous combiner beat us between our last status check
		// and the acquisition.
		return 0, false
	}
	// De-announce our own operation; we apply it ourselves.
	own.status.Store(slotFree)
	tm.CombinerSessions++

	// Group-commit delay: let concurrent owners announce before the
	// claim sweep so they ride this batch's RunMulti (and share its
	// per-batch cost) instead of forcing a session of their own.
	for d := 0; d < pol.CombineDelay; d++ {
		runtime.Gosched()
	}

	sc := &h.sc
	sc.pend = sc.pend[:0]
	sc.pend = append(sc.pend, h.id)
	mine := own.op
	used := int(f.used.Load())
	for id := 0; id < used; id++ {
		if id == int(h.id) {
			continue
		}
		os := &f.slots[id]
		if os.status.Load() != slotAnnounced {
			continue
		}
		if pol.ShouldHelp != nil && !pol.ShouldHelp(mine, os.op) {
			continue
		}
		os.status.Store(slotClaimed)
		sc.pend = append(sc.pend, int32(id))
	}
	tm.CombinedOps += uint64(len(sc.pend))

	maxBatch := int(b.maxBatch.Load())
	ownRes := uint64(0)
	intra := 0
	for len(sc.pend) > 0 {
		n := len(sc.pend)
		if n > maxBatch {
			n = maxBatch
		}
		sc.ops = sc.ops[:0]
		sc.res = sc.res[:0]
		sc.done = sc.done[:0]
		for _, tid := range sc.pend[:n] {
			sc.ops = append(sc.ops, f.slots[tid].op)
			sc.res = append(sc.res, 0)
			sc.done = append(sc.done, false)
		}
		if pol.RunMulti != nil {
			pol.RunMulti(sc.ops, sc.res, sc.done)
			progressed := false
			for i := 0; i < n; i++ {
				if sc.done[i] {
					progressed = true
					break
				}
			}
			if !progressed {
				f.applyEach(sc.ops, sc.res, sc.done)
			}
		} else {
			f.applyEach(sc.ops, sc.res, sc.done)
		}
		// Publish completions: result first, then the Done transition the
		// owner is waiting on, then the wake token.
		keep := sc.pend[:0]
		for i := 0; i < n; i++ {
			tid := sc.pend[i]
			if !sc.done[i] {
				keep = append(keep, tid)
				continue
			}
			if f.witness != nil {
				f.witness(vodd, intra, sc.ops[i], sc.res[i])
			}
			intra++
			if tid == h.id {
				ownRes = sc.res[i]
				continue
			}
			od := &f.slots[tid]
			od.result = sc.res[i]
			od.status.Store(slotDone)
			wake(od)
		}
		sc.pend = append(keep, sc.pend[n:]...)
	}
	return ownRes, true
}

// applyEach runs each remaining operation's own sequential code,
// dispatching on the operation's class (the native engine.ApplyEach).
func (f *Framework) applyEach(ops []Op, res []uint64, done []bool) {
	for i, op := range ops {
		if !done[i] {
			res[i] = f.policies[op.Class].Run(op)
			done[i] = true
		}
	}
}

// Result packing mirrors internal/engine's helpers so native code stays
// free of the simulator's packages: a value of up to 63 bits plus a
// found/success flag, packed into the uint64 an ApplyFunc returns.

// Pack encodes (value, ok) into a result word. value must fit in 63 bits.
func Pack(value uint64, ok bool) uint64 {
	r := value << 1
	if ok {
		r |= 1
	}
	return r
}

// Unpack decodes a result word produced by Pack.
func Unpack(r uint64) (value uint64, ok bool) { return r >> 1, r&1 != 0 }

// PackBool encodes a bare boolean result.
func PackBool(ok bool) uint64 { return Pack(0, ok) }

// UnpackBool decodes a bare boolean result.
func UnpackBool(r uint64) bool { return r&1 != 0 }
