package native

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// paddedWord is a one-cell structure for framework tests: an atomic
// counter on its own cache line.
type paddedWord struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// counterPolicies builds a trivial one-word counter structure: class 0
// adds A and returns the new total, class 1 reads (read-only). The word
// is an atomic cell inside the closure environment.
func counterPolicies(tryPrivate int) ([]Policy, *paddedWord) {
	w := &paddedWord{}
	return []Policy{
		{Name: "Add", TryPrivate: tryPrivate,
			Run: func(op Op) uint64 { v := w.v.Load() + op.A; w.v.Store(v); return v }},
		{Name: "Read", ReadOnly: true, TryPrivate: tryPrivate,
			Run: func(op Op) uint64 { return w.v.Load() }},
	}, w
}

// TestPaddingInvariants pins the slot and per-handle metric layouts to
// whole cache-line multiples: a field added without adjusting the pad
// arrays fails here instead of silently re-introducing false sharing.
func TestPaddingInvariants(t *testing.T) {
	if s := unsafe.Sizeof(slot{}); s%(2*cacheLine) != 0 {
		t.Errorf("slot size %d is not a multiple of %d", s, 2*cacheLine)
	}
	if s := unsafe.Sizeof(threadMetrics{}); s%cacheLine != 0 {
		t.Errorf("threadMetrics size %d is not a multiple of %d", s, cacheLine)
	}
	if s := unsafe.Sizeof(nbudget{}); s%cacheLine != 0 {
		t.Errorf("nbudget size %d is not a multiple of %d", s, cacheLine)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Policies: []Policy{{Name: "x"}}}); err == nil {
		t.Fatal("policy without Run accepted")
	}
	if _, err := New(Config{Policies: []Policy{{TryPrivate: -1, Run: func(Op) uint64 { return 0 }}}}); err == nil {
		t.Fatal("negative TryPrivate accepted")
	}
}

func TestBudgetKnobs(t *testing.T) {
	pols, _ := counterPolicies(3)
	f, err := New(Config{Policies: pols})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.TryPrivate(0); got != 3 {
		t.Fatalf("TryPrivate = %d, want 3", got)
	}
	if got := f.MaxBatch(0); got != 8 {
		t.Fatalf("default MaxBatch = %d, want 8", got)
	}
	f.SetTryPrivate(0, -5)
	if got := f.TryPrivate(0); got != 0 {
		t.Fatalf("clamped TryPrivate = %d, want 0", got)
	}
	f.SetMaxBatch(0, 0)
	if got := f.MaxBatch(0); got != 1 {
		t.Fatalf("clamped MaxBatch = %d, want 1", got)
	}
	if f.NumClasses() != 2 || f.ClassName(1) != "Read" {
		t.Fatalf("class metadata wrong: %d %q", f.NumClasses(), f.ClassName(1))
	}
}

func TestHandleExhaustionAndReuse(t *testing.T) {
	pols, _ := counterPolicies(1)
	f, err := New(Config{Policies: pols, MaxHandles: 2})
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := f.MustHandle(), f.MustHandle()
	if _, err := f.Handle(); err == nil {
		t.Fatal("third handle on MaxHandles=2 accepted")
	}
	h1.Release()
	h3 := f.MustHandle() // reuses h1's slot
	if h3.id != 0 {
		t.Fatalf("reused id = %d, want 0", h3.id)
	}
	h2.Release()
	h3.Release()
}

// TestSequentialCounter drives every completion path single-threaded:
// with budget the spec paths complete everything; with zero budget every
// operation goes announce -> self-combine.
func TestSequentialCounter(t *testing.T) {
	for _, budget := range []int{4, 0} {
		pols, _ := counterPolicies(budget)
		f, err := New(Config{Policies: pols})
		if err != nil {
			t.Fatal(err)
		}
		h := f.MustHandle()
		var want uint64
		for i := uint64(1); i <= 100; i++ {
			want += i
			if got := h.Execute(Op{Class: 0, A: i}); got != want {
				t.Fatalf("budget=%d: add %d -> %d, want %d", budget, i, got, want)
			}
			if got := h.Execute(Op{Class: 1}); got != want {
				t.Fatalf("budget=%d: read -> %d, want %d", budget, got, want)
			}
		}
		m := f.Metrics()
		if m.Ops != 200 {
			t.Fatalf("budget=%d: Ops = %d, want 200", budget, m.Ops)
		}
		if budget == 0 {
			if m.Announces != 200 || m.CombinerSessions != 200 {
				t.Fatalf("budget=0: announces=%d sessions=%d, want 200/200", m.Announces, m.CombinerSessions)
			}
			if m.SpecReadHits+m.SpecWriteHits != 0 {
				t.Fatalf("budget=0: unexpected spec hits")
			}
		} else {
			if m.SpecWriteHits != 100 || m.SpecReadHits != 100 {
				t.Fatalf("budget=%d: spec hits read=%d write=%d, want 100/100", budget, m.SpecReadHits, m.SpecWriteHits)
			}
		}
		h.Release()
	}
}

// TestConcurrentCounter checks exactly-once application under real
// concurrency on every configuration corner: spec-heavy, combine-only,
// and batch size 1.
func TestConcurrentCounter(t *testing.T) {
	const goroutines, opsPer = 8, 2000
	for _, cfg := range []struct {
		name     string
		budget   int
		maxBatch int
	}{
		{"spec", 6, 0},
		{"combine-only", 0, 0},
		{"batch1", 0, 1},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			pols, w := counterPolicies(cfg.budget)
			if cfg.maxBatch > 0 {
				for i := range pols {
					pols[i].MaxBatch = cfg.maxBatch
				}
			}
			f, err := New(Config{Policies: pols, MaxHandles: goroutines})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := f.MustHandle()
					defer h.Release()
					for i := 0; i < opsPer; i++ {
						if i%4 == 3 {
							h.Execute(Op{Class: 1})
						} else {
							h.Execute(Op{Class: 0, A: 1})
						}
					}
				}()
			}
			wg.Wait()
			const adds = goroutines * opsPer * 3 / 4
			if got := w.v.Load(); got != adds {
				t.Fatalf("counter = %d, want %d (adds applied not exactly once)", got, adds)
			}
			m := f.Metrics()
			if m.Ops != goroutines*opsPer {
				t.Fatalf("Ops = %d, want %d", m.Ops, goroutines*opsPer)
			}
		})
	}
}

// TestRunMultiCombining installs a combining RunMulti that sums a whole
// batch of adds in one pass and checks both the result distribution and
// that combining actually engaged.
func TestRunMultiCombining(t *testing.T) {
	w := &paddedWord{}
	apply := func(op Op) uint64 { v := w.v.Load() + op.A; w.v.Store(v); return v }
	pols := []Policy{{
		Name: "Add", TryPrivate: 0,
		Run: apply,
		RunMulti: func(ops []Op, res []uint64, done []bool) {
			// Order-preserving batch application: each op observes the
			// running total, exactly like one-by-one application.
			v := w.v.Load()
			for i, op := range ops {
				if done[i] {
					continue
				}
				v += op.A
				res[i] = v
				done[i] = true
			}
			w.v.Store(v)
		},
	}}
	f, err := New(Config{Policies: pols, MaxHandles: 8})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, opsPer = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.MustHandle()
			defer h.Release()
			for i := 0; i < opsPer; i++ {
				h.Execute(Op{Class: 0, A: 1})
			}
		}()
	}
	wg.Wait()
	if got := w.v.Load(); got != goroutines*opsPer {
		t.Fatalf("counter = %d, want %d", got, goroutines*opsPer)
	}
	m := f.Metrics()
	if m.CombinerSessions == 0 || m.CombinedOps < m.CombinerSessions {
		t.Fatalf("combining never engaged: %+v", m)
	}
}

// TestShouldHelpFiltering pins that a combiner leaves rejected
// operations announced (their owners self-combine later) and still
// completes everything.
func TestShouldHelpFiltering(t *testing.T) {
	w := &paddedWord{}
	apply := func(op Op) uint64 { v := w.v.Load() + op.A; w.v.Store(v); return v }
	never := func(mine, other Op) bool { return false }
	pols := []Policy{{Name: "Add", TryPrivate: 0, Run: apply, ShouldHelp: never}}
	f, err := New(Config{Policies: pols, MaxHandles: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, opsPer = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.MustHandle()
			defer h.Release()
			for i := 0; i < opsPer; i++ {
				h.Execute(Op{Class: 0, A: 1})
			}
		}()
	}
	wg.Wait()
	if got := w.v.Load(); got != goroutines*opsPer {
		t.Fatalf("counter = %d, want %d", got, goroutines*opsPer)
	}
	m := f.Metrics()
	if m.CombinedOps != m.CombinerSessions {
		t.Fatalf("HelpNone combiner adopted peers: %d ops over %d sessions", m.CombinedOps, m.CombinerSessions)
	}
}

func TestPackHelpers(t *testing.T) {
	if v, ok := Unpack(Pack(123, true)); v != 123 || !ok {
		t.Fatal("Pack/Unpack round trip failed")
	}
	if UnpackBool(PackBool(false)) {
		t.Fatal("PackBool(false) decoded true")
	}
}
