package pqueue

import (
	"math/rand/v2"
	"sort"
	"testing"

	"hcf/internal/native"
)

// checkHeapInvariant verifies every parent is <= both children over the
// live prefix of the heap array.
func checkHeapInvariant(t *testing.T, q *Queue, step int) {
	t.Helper()
	n := q.n.Load()
	for i := uint64(0); i < n; i++ {
		pv := q.heap[i].Load()
		for _, c := range [2]uint64{2*i + 1, 2*i + 2} {
			if c < n {
				if cv := q.heap[c].Load(); pv > cv {
					t.Fatalf("step %d: heap[%d]=%d > heap[%d]=%d (n=%d)", step, i, pv, c, cv, n)
				}
			}
		}
	}
}

// TestHeapInvariantProperty drives a long random insert/extract sequence
// and checks the structural heap invariant after every operation, plus
// extraction order against a sorted model at the end. This pins the
// hole-propagation sift rewrite: a missed final placement or a dropped
// level would corrupt parent/child ordering immediately.
func TestHeapInvariantProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xBADC0FFEE))
		q := New(512)
		var model []uint64
		for step := 0; step < 4000; step++ {
			if q.Len() < 512 && (q.Len() == 0 || rng.IntN(5) < 3) {
				k := rng.Uint64N(1 << 16)
				q.Insert(k)
				model = append(model, k)
			} else {
				v, ok := native.Unpack(q.ExtractMin())
				if !ok {
					t.Fatalf("seed %d step %d: ExtractMin empty with model size %d", seed, step, len(model))
				}
				mi := 0
				for j, m := range model {
					if m < model[mi] {
						mi = j
					}
				}
				if v != model[mi] {
					t.Fatalf("seed %d step %d: ExtractMin = %d, model min = %d", seed, step, v, model[mi])
				}
				model = append(model[:mi], model[mi+1:]...)
			}
			checkHeapInvariant(t, q, step)
			if q.Len() != len(model) {
				t.Fatalf("seed %d step %d: Len = %d, model %d", seed, step, q.Len(), len(model))
			}
		}
		// Drain: remaining keys must come out in sorted order.
		sort.Slice(model, func(i, j int) bool { return model[i] < model[j] })
		for i, want := range model {
			v, ok := native.Unpack(q.ExtractMin())
			if !ok || v != want {
				t.Fatalf("seed %d drain %d: got (%d,%v), want (%d,true)", seed, i, v, ok, want)
			}
			checkHeapInvariant(t, q, -i)
		}
	}
}
