// Package pqueue is a fixed-capacity binary min-heap priority queue for
// the native HCF backend. Heap cells and the length word are atomics so
// the framework's optimistic-read speculation (PeekMin) may run
// concurrently with a writer and rely on seqlock validation; Insert and
// ExtractMin run only inside seqlock critical sections.
package pqueue

import (
	"fmt"
	"sync/atomic"

	"hcf/internal/native"
)

// Operation classes, indexing the slice Policies returns.
const (
	// ClassInsert pushes a key.
	ClassInsert = iota
	// ClassExtractMin pops the smallest key.
	ClassExtractMin
	// ClassPeekMin reads the smallest key (read-only).
	ClassPeekMin
)

// Queue is the binary min-heap.
type Queue struct {
	heap []atomic.Uint64
	n    atomic.Uint64
}

// New creates a queue holding at most capacity keys; Insert panics
// beyond that.
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{heap: make([]atomic.Uint64, capacity)}
}

// Len returns the number of queued keys. Call only while quiescent or
// under the framework's lock.
func (q *Queue) Len() int { return int(q.n.Load()) }

// Insert pushes k. Must run with the structure lock held.
//
// The sift-up is the classic hole-propagation form: the new key is a
// conceptual hole that bubbles toward the root, each displaced parent
// written once, and the key placed exactly once at the end — one atomic
// store per moved level plus one final placement, instead of the two
// stores per level a swap-based sift costs. Every store is a locked RMW
// on the bus, so halving them matters (see docs/PERFORMANCE.md).
func (q *Queue) Insert(k uint64) uint64 {
	i := q.n.Load()
	if int(i) >= len(q.heap) {
		panic(fmt.Sprintf("pqueue: full (%d keys)", len(q.heap)))
	}
	q.n.Store(i + 1)
	for i > 0 {
		parent := (i - 1) / 2
		pv := q.heap[parent].Load()
		if pv <= k {
			break
		}
		q.heap[i].Store(pv)
		i = parent
	}
	q.heap[i].Store(k)
	return native.PackBool(true)
}

// ExtractMin pops the smallest key, returning Pack(key, nonempty). Must
// run with the structure lock held.
func (q *Queue) ExtractMin() uint64 {
	n := q.n.Load()
	if n == 0 {
		return native.Pack(0, false)
	}
	min := q.heap[0].Load()
	last := q.heap[n-1].Load()
	n--
	q.n.Store(n)
	// Hole propagation (see Insert): the root is a hole that sinks toward
	// the leaves, each promoted child written once, and the detached last
	// key placed exactly once where the hole comes to rest.
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		cv := q.heap[l].Load()
		if r < n {
			if rv := q.heap[r].Load(); rv < cv {
				c, cv = r, rv
			}
		}
		if cv >= last {
			break
		}
		q.heap[i].Store(cv)
		i = c
	}
	if n > 0 {
		q.heap[i].Store(last)
	}
	return native.Pack(min, true)
}

// PeekMin reads the smallest key, returning Pack(key, nonempty). Safe
// under optimistic speculation: one length load plus one cell load.
func (q *Queue) PeekMin() uint64 {
	if q.n.Load() == 0 {
		return native.Pack(0, false)
	}
	return native.Pack(q.heap[0].Load(), true)
}

// InsertOp, ExtractMinOp and PeekMinOp build operations for the framework.
func InsertOp(k uint64) native.Op { return native.Op{Class: ClassInsert, A: k} }
func ExtractMinOp() native.Op     { return native.Op{Class: ClassExtractMin} }
func PeekMinOp() native.Op        { return native.Op{Class: ClassPeekMin} }

// Policies returns the three-class policy set wiring q onto a native
// framework. Insert and ExtractMin conflict on the heap root, so both
// fall back to combining quickly; PeekMin speculates.
func (q *Queue) Policies(tryPrivate, maxBatch int) []native.Policy {
	return []native.Policy{
		ClassInsert: {
			Name: "Insert", TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return q.Insert(op.A) },
		},
		ClassExtractMin: {
			Name: "ExtractMin", TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return q.ExtractMin() },
		},
		ClassPeekMin: {
			Name: "PeekMin", ReadOnly: true, TryPrivate: tryPrivate, MaxBatch: maxBatch,
			Run: func(op native.Op) uint64 { return q.PeekMin() },
		},
	}
}
