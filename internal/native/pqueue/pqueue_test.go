package pqueue

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"hcf/internal/native"
)

func TestHeapOrder(t *testing.T) {
	q := New(128)
	rng := rand.New(rand.NewPCG(7, 9))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64N(1 << 20)
		q.Insert(keys[i])
	}
	if q.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(keys))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if v, ok := native.Unpack(q.PeekMin()); !ok || v != keys[0] {
		t.Fatalf("PeekMin = (%d,%v), want (%d,true)", v, ok, keys[0])
	}
	for i, want := range keys {
		v, ok := native.Unpack(q.ExtractMin())
		if !ok || v != want {
			t.Fatalf("extract %d: got (%d,%v), want (%d,true)", i, v, ok, want)
		}
	}
	if _, ok := native.Unpack(q.ExtractMin()); ok {
		t.Fatal("ExtractMin on empty queue reported a key")
	}
	if _, ok := native.Unpack(q.PeekMin()); ok {
		t.Fatal("PeekMin on empty queue reported a key")
	}
}

// TestDuplicatesAndRefill exercises sift paths with duplicate keys and
// repeated drain/refill cycles.
func TestDuplicatesAndRefill(t *testing.T) {
	q := New(32)
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			q.Insert(uint64(i % 5))
		}
		prev := uint64(0)
		for i := 0; i < 20; i++ {
			v, ok := native.Unpack(q.ExtractMin())
			if !ok || v < prev {
				t.Fatalf("round %d: extract %d gave (%d,%v) after %d", round, i, v, ok, prev)
			}
			prev = v
		}
		if q.Len() != 0 {
			t.Fatalf("round %d: Len = %d after drain", round, q.Len())
		}
	}
}

// TestFrameworkWiring drives the queue through a native framework from
// several goroutines; total inserted mass must equal total extracted.
func TestFrameworkWiring(t *testing.T) {
	q := New(1 << 12)
	fw, err := native.New(native.Config{Policies: q.Policies(4, 0), MaxHandles: 8})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, pairs = 8, 1000
	sums := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := fw.MustHandle()
			defer h.Release()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			var inserted, extracted uint64
			for i := 0; i < pairs; i++ {
				k := rng.Uint64N(1 << 16)
				h.Execute(InsertOp(k))
				inserted += k
				if v, ok := native.Unpack(h.Execute(ExtractMinOp())); ok {
					extracted += v
				} else {
					t.Error("ExtractMin empty despite preceding insert")
				}
				h.Execute(PeekMinOp())
			}
			sums[g] = inserted - extracted
		}(g)
	}
	wg.Wait()
	// Whatever mass was not extracted must still be in the queue.
	var residual uint64
	for q.Len() > 0 {
		v, _ := native.Unpack(q.ExtractMin())
		residual += v
	}
	var want uint64
	for _, s := range sums {
		want += s
	}
	if residual != want {
		t.Fatalf("residual mass %d, want %d", residual, want)
	}
}
