package native_test

// Race/stress coverage for the native combiner: NumCPU-scaled goroutine
// packs hammer the shipped data structures with mixed operations while a
// witness records every application. The recorded history is then
// checked for linearizability with the existing serialization-witness
// machinery (internal/witness): the native backend stamps validated
// reads with the even seqlock version they observed and critical
// sections with the odd version they held, so sorting by (stamp, intra)
// is a legal linearization, exactly as for the simulated engines.

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"hcf/internal/engine"
	"hcf/internal/memsim"
	"hcf/internal/native"
	"hcf/internal/native/hashtable"
	"hcf/internal/native/pqueue"
	"hcf/internal/witness"
)

// wOp adapts a native value-struct operation to the engine.Op interface
// the witness recorder stores. Replay goes through the sequential model,
// never through Apply.
type wOp struct{ op native.Op }

func (w wOp) Apply(memsim.Ctx) uint64 { panic("wOp: replay must use the model") }
func (w wOp) Class() int              { return w.op.Class }

// bridge adapts a witness recorder to the native WitnessFunc signature.
func bridge(rec *witness.Recorder) native.WitnessFunc {
	f := rec.Func()
	return func(stamp uint64, intra int, op native.Op, result uint64) {
		f(stamp, intra, wOp{op}, result)
	}
}

// hashModel replays hashtable operations sequentially.
type hashModel struct{ m map[uint64]uint64 }

func (hm *hashModel) Apply(op engine.Op) uint64 {
	o := op.(wOp).op
	switch o.Class {
	case hashtable.ClassGet:
		v, ok := hm.m[o.A]
		return native.Pack(v, ok)
	case hashtable.ClassPut:
		prev, replaced := hm.m[o.A]
		hm.m[o.A] = o.B
		return native.Pack(prev, replaced)
	case hashtable.ClassDelete:
		_, present := hm.m[o.A]
		delete(hm.m, o.A)
		return native.PackBool(present)
	}
	panic("hashModel: unknown class")
}

// pqModel replays priority-queue operations against a multiset; results
// depend only on the multiset, so it need not mirror heap layout.
type pqModel struct{ keys []uint64 }

func (pm *pqModel) minIdx() int {
	mi := 0
	for i, k := range pm.keys {
		if k < pm.keys[mi] {
			mi = i
		}
	}
	return mi
}

func (pm *pqModel) Apply(op engine.Op) uint64 {
	o := op.(wOp).op
	switch o.Class {
	case pqueue.ClassInsert:
		pm.keys = append(pm.keys, o.A)
		return native.PackBool(true)
	case pqueue.ClassExtractMin:
		if len(pm.keys) == 0 {
			return native.Pack(0, false)
		}
		i := pm.minIdx()
		v := pm.keys[i]
		pm.keys[i] = pm.keys[len(pm.keys)-1]
		pm.keys = pm.keys[:len(pm.keys)-1]
		return native.Pack(v, true)
	case pqueue.ClassPeekMin:
		if len(pm.keys) == 0 {
			return native.Pack(0, false)
		}
		return native.Pack(pm.keys[pm.minIdx()], true)
	}
	panic("pqModel: unknown class")
}

func stressGoroutines() int {
	g := runtime.NumCPU()
	if g < 8 {
		g = 8 // oversubscribe small boxes so the combiner still sees contention
	}
	return g
}

// TestStressHashtableLinearizable hammers one table with a mixed
// get/put/delete load over a tiny keyspace (maximal conflict, frequent
// speculation aborts) and checks the full witnessed history.
func TestStressHashtableLinearizable(t *testing.T) {
	const keyspace, opsPer = 128, 3000
	goroutines := stressGoroutines()
	tb := hashtable.New(1 << 10)
	fw, err := native.New(native.Config{Policies: tb.Policies(1, 0), MaxHandles: goroutines})
	if err != nil {
		t.Fatal(err)
	}
	// Reads keep their speculation budget; updates go straight to the
	// combiner so the slot protocol is hammered even on boxes where
	// speculation would otherwise always win (e.g. a single CPU).
	fw.SetTryPrivate(hashtable.ClassPut, 0)
	fw.SetTryPrivate(hashtable.ClassDelete, 0)
	rec := &witness.Recorder{}
	fw.SetWitness(bridge(rec))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := fw.MustHandle()
			defer h.Release()
			rng := rand.New(rand.NewPCG(uint64(g), 0xDECAF))
			for i := 0; i < opsPer; i++ {
				k := rng.Uint64N(keyspace)
				switch rng.IntN(4) {
				case 0:
					h.Execute(hashtable.PutOp(k, rng.Uint64()>>1))
				case 1:
					h.Execute(hashtable.DeleteOp(k))
				default:
					h.Execute(hashtable.GetOp(k))
				}
			}
		}(g)
	}
	wg.Wait()
	model := &hashModel{m: map[uint64]uint64{}}
	if err := witness.Check(rec, model, goroutines*opsPer, nil); err != nil {
		t.Fatal(err)
	}
	m := fw.Metrics()
	if m.CombinerSessions == 0 {
		t.Fatalf("stress never reached the combiner: %+v", m)
	}
}

// TestStressPQueueLinearizable does the same for the priority queue,
// whose every update conflicts at the heap root.
func TestStressPQueueLinearizable(t *testing.T) {
	const opsPer = 3000
	goroutines := stressGoroutines()
	q := pqueue.New(goroutines * opsPer)
	fw, err := native.New(native.Config{Policies: q.Policies(1, 0), MaxHandles: goroutines})
	if err != nil {
		t.Fatal(err)
	}
	fw.SetTryPrivate(pqueue.ClassInsert, 0)
	fw.SetTryPrivate(pqueue.ClassExtractMin, 0)
	rec := &witness.Recorder{}
	fw.SetWitness(bridge(rec))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := fw.MustHandle()
			defer h.Release()
			rng := rand.New(rand.NewPCG(uint64(g), 0xFACADE))
			for i := 0; i < opsPer; i++ {
				switch rng.IntN(4) {
				case 0, 1:
					h.Execute(pqueue.InsertOp(rng.Uint64N(1 << 20)))
				case 2:
					h.Execute(pqueue.ExtractMinOp())
				default:
					h.Execute(pqueue.PeekMinOp())
				}
			}
		}(g)
	}
	wg.Wait()
	model := &pqModel{}
	if err := witness.Check(rec, model, goroutines*opsPer, nil); err != nil {
		t.Fatal(err)
	}
}
