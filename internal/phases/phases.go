// Package phases provides the composable synchronization primitives that
// every engine in this repository is built from:
//
//   - SpecLoop — a trial-budgeted speculative HTM retry loop with lock
//     subscription (SubscribeLock) and abort-taxonomy accounting.
//   - LockApply — the pessimistic path: apply one operation under the
//     data-structure lock, with the hold-time and witness bookkeeping
//     every engine repeats around it.
//   - Session — the announce → adopt → combine → distribute machinery of
//     a combining session over shared operation descriptors (Desc).
//
// The HCF framework (internal/core) and the five baselines
// (internal/engines) are thin compositions of these stages. Each stage
// carries the engines' tracing (Emitter), metrics (engine.Recorder) and
// linearizability-witness (engine.WitnessFunc) hooks, so composing
// engines differ only in which stages they chain and with which budgets.
//
// Every primitive preserves the exact sequence of simulated memory
// operations of the loops it replaced: the golden bit-identity fixtures
// in internal/harness/testdata pin this.
//
// The same pipeline exists once more, re-targeted at real memory:
// internal/native (exposed as hcf.NewNative) replaces SpecLoop's HTM
// trials with seqlock-validated optimistic reads and budgeted CAS
// acquires, and Session's descriptor protocol with cache-padded
// publication slots drained by a combiner under the same lock word.
// Changes to the stage semantics here (status protocol, adoption rules,
// batch distribution) should be mirrored there; the two backends are
// meant to stay behaviorally aligned so policies transfer.
package phases

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
	"hcf/internal/pubarr"
)

// Operation status values (paper §2.2). They live in simulated memory so
// that a combiner's claim aborts the owner's in-flight transaction, exactly
// as an HTM conflict would.
const (
	// StatusFree: no operation announced.
	StatusFree uint64 = iota
	// StatusAnnounced: the owner published the operation and a combiner
	// may adopt it.
	StatusAnnounced
	// StatusBeingHelped: a combiner claimed the operation (HCF only; flat
	// combining adopts without an intermediate claim state).
	StatusBeingHelped
	// StatusDone: the result is published and the owner may return.
	StatusDone
)

// Desc is a per-thread operation descriptor (paper §2.2). The status word
// lives in simulated memory; the remaining fields are plain Go state whose
// cross-thread visibility is ordered by the simulated-memory protocol
// (announce before publishing the slot; result before the Done transition).
type Desc struct {
	// Status is the simulated-memory status word.
	Status memsim.Addr
	// Op and Result carry the announced operation and its outcome.
	Op     engine.Op
	Result uint64
	// DonePhase is the phase the operation completed in.
	DonePhase engine.Phase
	// Span identifies the thread's current operation in the trace stream;
	// SpanSeq is the thread-local dense counter behind it.
	Span    uint64
	SpanSeq uint64
	// Helper and HelperSpan name the combiner that completed this
	// operation; like Result, their cross-thread visibility is ordered by
	// the Done status transition.
	Helper     int
	HelperSpan uint64
}

// NewDescs allocates n descriptors with status words on private cache
// lines, initialized to StatusFree.
func NewDescs(env memsim.Env, n int) []Desc {
	descs := make([]Desc, n)
	for t := range descs {
		descs[t].Status = env.Alloc(memsim.WordsPerLine)
		env.StoreWord(descs[t].Status, StatusFree)
	}
	return descs
}

// Announce publishes t's operation: status := Announced, then the slot
// store (Figure 1, lines 13-14). The store order matters: a combiner that
// reads the slot non-zero must observe the Announced status.
func Announce(th *memsim.Thread, t int, d *Desc, pub *pubarr.Array) {
	th.Store(d.Status, StatusAnnounced)
	pub.Announce(th, t, uint64(t)+1)
}

// WaitDone waits (passively) until a combiner completes the operation and
// returns its result.
func WaitDone(th *memsim.Thread, d *Desc) uint64 {
	th.SpinLoadUntilEq(d.Status, StatusDone)
	return d.Result
}

// Emitter is the tracing sink a stage reports to. Engines implement it
// over their tracer state; with no tracer installed every method is a
// cheap no-op, so stages call it unconditionally.
type Emitter interface {
	// Active reports whether a tracer is installed; stages consult it
	// before doing attribution-only work (e.g. capturing a lock holder).
	Active() bool
	// Emit stamps ev with the thread, time and current span and hands it
	// to the tracer.
	Emit(th *memsim.Thread, ev engine.TraceEvent)
	// EmitAttempt emits a TraceAttempt with abort attribution (conflict
	// line + writer, or lock holder).
	EmitAttempt(th *memsim.Thread, phase engine.Phase, reason htm.Reason)
}

// Hooks bundles the observation hooks a composed engine threads through
// its stages. All fields may be nil/inactive; stages check before use.
type Hooks struct {
	// Em receives lifecycle trace events. Never nil on a wired engine.
	Em Emitter
	// Witness observes every applied operation with its serialization
	// stamp (linearizability checking).
	Witness engine.WitnessFunc
	// Rec receives latency and counter samples.
	Rec engine.Recorder
}

// HolderHint names the thread currently holding l via a raw uncharged
// read, or -1 when the lock kind cannot report one.
func HolderHint(env memsim.Env, l locks.Lock) int {
	if h, ok := l.(locks.HolderHinter); ok {
		return h.HolderHint(env)
	}
	return -1
}

// SubscribeLock reads l's state inside tx — subscribing the transaction to
// the lock — and aborts if it is observed held. With a tracer active it
// first captures the holder for abort attribution.
func SubscribeLock(tx *htm.Tx, l locks.Lock, em Emitter) {
	if !l.Locked(tx) {
		return
	}
	if em.Active() {
		tx.AbortLockHeldBy(HolderHint(tx.Thread().Env(), l))
	}
	tx.AbortLockHeld()
}

// SpecLoop is a trial-budgeted speculative phase: each attempt runs body
// in a hardware transaction and is reported to the emitter under Phase.
type SpecLoop struct {
	Eng   *htm.Engine
	Em    Emitter
	Phase engine.Phase
}

// Run makes up to trials attempts and reports whether one committed.
// After every failed attempt, after (if non-nil) runs the engine's
// between-attempts protocol — waiting for a lock, counting conflicts,
// checking whether a combiner adopted the operation — and returning false
// from it abandons the remaining budget.
func (s *SpecLoop) Run(th *memsim.Thread, trials int, body func(tx *htm.Tx), after func(reason htm.Reason) bool) bool {
	for i := 0; i < trials; i++ {
		ok, reason := s.Eng.Run(th, body)
		s.Em.EmitAttempt(th, s.Phase, reason)
		if ok {
			return true
		}
		if after != nil && !after(reason) {
			return false
		}
	}
	return false
}

// LockApply applies op pessimistically under l: the fallback path shared
// by the Lock, TLE and SCM engines and every engine's last resort. The
// caller owns the surrounding protocol (auxiliary locks, Ops counting);
// LockApply owns acquisition accounting, hold-time recording and the
// lock-stamped witness call.
func LockApply(th *memsim.Thread, l locks.Lock, op engine.Op, h *Hooks, tm *engine.Metrics) uint64 {
	l.Lock(th)
	tm.LockAcquisitions++
	h.Em.Emit(th, engine.TraceEvent{Kind: engine.TraceLock, Peer: -1})
	var holdStart int64
	if h.Rec != nil {
		holdStart = th.Now()
	}
	res := op.Apply(th)
	if h.Witness != nil {
		h.Witness(htm.LockStamp(th), 0, op, res)
	}
	if h.Rec != nil {
		h.Rec.RecordLockHold(th.ID(), th.Now()-holdStart)
	}
	l.Unlock(th)
	return res
}
