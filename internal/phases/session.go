package phases

import (
	"hcf/internal/engine"
	"hcf/internal/htm"
	"hcf/internal/locks"
	"hcf/internal/memsim"
)

// Scratch is a combiner's per-thread working state: the selected-but-
// pending thread ids plus the batch buffers handed to combine functions.
// Buffers grow on demand and are reused across sessions.
type Scratch struct {
	// Pend holds thread ids of selected, not yet applied operations. The
	// engine's selection step fills it; the apply stages drain it.
	Pend []int
	ops  []engine.Op
	res  []uint64
	done []bool
}

// Session is the distribute-results half of a combining session over a
// descriptor table: it turns batches of selected thread ids into combine
// calls and publishes each completed operation's result back to its
// owner, with witness stamps and help-edge tracing.
type Session struct {
	// Descs is the shared descriptor table, indexed by thread id.
	Descs []Desc
	// H is the owning engine's hook bundle (shared, so late SetWitness /
	// SetRecorder installs reach the session).
	H *Hooks
}

// prepareBatch (re)builds the attempt-local op/result/done buffers for the
// first n pending operations.
func (s *Session) prepareBatch(sc *Scratch, n int) {
	if cap(sc.ops) < n {
		sc.ops = make([]engine.Op, n)
		sc.res = make([]uint64, n)
		sc.done = make([]bool, n)
	}
	sc.ops = sc.ops[:n]
	sc.res = sc.res[:n]
	sc.done = sc.done[:n]
	for i, tid := range sc.Pend[:n] {
		sc.ops[i] = s.Descs[tid].Op
		sc.res[i] = 0
		sc.done[i] = false
	}
}

// FinalizeBatch publishes results of the operations a combine call
// completed in a committed attempt (or under the lock): result and phase
// first, then the Done transition the owner is waiting on. Completed
// operations are removed from sc.Pend. It returns the combiner's own
// result if its own operation was completed.
func (s *Session) FinalizeBatch(th *memsim.Thread, t int, sc *Scratch, n int, phase engine.Phase, stamp uint64) (uint64, bool) {
	ownRes, ownDone := uint64(0), false
	keep := sc.Pend[:0]
	for i := 0; i < n; i++ {
		tid := sc.Pend[i]
		if !sc.done[i] {
			keep = append(keep, tid)
			continue
		}
		if s.H.Witness != nil {
			s.H.Witness(stamp, i, sc.ops[i], sc.res[i])
		}
		if tid == t {
			ownRes, ownDone = sc.res[i], true
			continue
		}
		od := &s.Descs[tid]
		od.Result = sc.res[i]
		od.DonePhase = phase
		if s.H.Em.Active() {
			od.Helper = t
			od.HelperSpan = s.Descs[t].Span
			s.H.Em.Emit(th, engine.TraceEvent{Kind: engine.TraceHelp, Phase: phase, Peer: tid, PeerSpan: od.Span})
		}
		th.Store(od.Status, StatusDone)
	}
	keep = append(keep, sc.Pend[n:]...)
	sc.Pend = keep
	return ownRes, ownDone
}

// batchSize bounds a batch at maxBatch pending operations (0 = no bound).
func batchSize(sc *Scratch, maxBatch int) int {
	n := len(sc.Pend)
	if maxBatch > 0 && n > maxBatch {
		n = maxBatch
	}
	return n
}

// ApplySpeculative drains sc.Pend with hardware transactions that
// subscribe to lock, several operations per transaction (HCF's
// TryCombining phase). It stops when trials attempts have failed;
// committed batches do not consume budget. Returns the combiner's own
// result if its operation completed.
func (s *Session) ApplySpeculative(th *memsim.Thread, t int, sc *Scratch, eng *htm.Engine, lock locks.Lock, combine engine.CombineFunc, maxBatch, trials int, phase engine.Phase) (uint64, bool) {
	ownRes, ownDone := uint64(0), false
	failures := 0
	for len(sc.Pend) > 0 && failures < trials {
		n := batchSize(sc, maxBatch)
		s.prepareBatch(sc, n)
		ok, reason := eng.Run(th, func(tx *htm.Tx) {
			if lock.Locked(tx) {
				tx.AbortLockHeld()
			}
			combine(tx, sc.ops[:n], sc.res[:n], sc.done[:n])
		})
		s.H.Em.EmitAttempt(th, phase, reason)
		if !ok {
			failures++
			continue
		}
		if r, done := s.FinalizeBatch(th, t, sc, n, phase, eng.CommitStamp(t)); done {
			ownRes, ownDone = r, true
		}
	}
	return ownRes, ownDone
}

// ApplyLocked drains sc.Pend while the caller holds the data-structure
// lock (HCF's CombineUnderLock phase and classic flat combining). A
// combine call that makes no progress would loop forever, so each batch
// falls back to engine.ApplyEach when nothing was completed. Returns the
// combiner's own result if its operation completed.
func (s *Session) ApplyLocked(th *memsim.Thread, t int, sc *Scratch, combine engine.CombineFunc, maxBatch int, phase engine.Phase) (uint64, bool) {
	ownRes, ownDone := uint64(0), false
	for len(sc.Pend) > 0 {
		n := batchSize(sc, maxBatch)
		s.prepareBatch(sc, n)
		combine(th, sc.ops[:n], sc.res[:n], sc.done[:n])
		progressed := false
		for i := 0; i < n; i++ {
			if sc.done[i] {
				progressed = true
				break
			}
		}
		if !progressed {
			engine.ApplyEach(th, sc.ops[:n], sc.res[:n], sc.done[:n])
		}
		if r, done := s.FinalizeBatch(th, t, sc, n, phase, htm.LockStamp(th)); done {
			ownRes, ownDone = r, true
		}
	}
	return ownRes, ownDone
}
