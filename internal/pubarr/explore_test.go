package pubarr

import (
	"testing"

	"hcf/internal/locks"
	"hcf/internal/memsim"
)

// scanClearHandshake runs the announced-slot reclamation protocol the
// engines build on this array: owners announce and park until a combiner
// signals completion; combiners — mutually excluded by a lock — scan, clear
// the slot, and only THEN publish the done signal. That ordering is the ABA
// defence this test pins: the owner cannot re-announce into its slot until
// the previous announcement's Clear has already happened, so a combiner
// preempted between Read and Clear can never wipe a fresh announcement it
// has not adopted. Reordering Clear after the done store reopens the window
// and deadlocks this test (a wiped, never-adopted announcement parks its
// owner forever), which the deterministic scheduler reports as a hang.
func scanClearHandshake(t *testing.T, env memsim.Env, combiners, rounds int) {
	t.Helper()
	n := env.NumThreads()
	owners := n - combiners
	a := New(env, n)
	lock := locks.NewTATAS(env)
	doneGen := make([]memsim.Addr, n)     // combiner -> owner completion signal
	finished := env.Alloc(1)              // owners done with all rounds
	adopted := make([]int, n)             // combiner-side bookkeeping (under lock)
	for tid := range doneGen {
		doneGen[tid] = env.Alloc(memsim.WordsPerLine)
	}
	env.Run(func(th *memsim.Thread) {
		tid := th.ID()
		if tid < combiners {
			for {
				lock.Lock(th)
				for o := combiners; o < n; o++ {
					if a.Read(th, o) == 0 {
						continue
					}
					// Adopt: clear the slot first, publish done second.
					a.Clear(th, o)
					adopted[o]++
					th.Store(doneGen[o], uint64(adopted[o]))
				}
				lock.Unlock(th)
				if th.Load(finished) == uint64(owners) {
					return
				}
				th.Yield()
			}
		}
		for r := 1; r <= rounds; r++ {
			a.Announce(th, tid, uint64(tid)+1)
			th.SpinLoadUntilEq(doneGen[tid], uint64(r))
		}
		th.Add(finished, 1)
	})
	for o := combiners; o < n; o++ {
		if adopted[o] != rounds {
			t.Fatalf("owner %d: %d announcements adopted, want %d", o, adopted[o], rounds)
		}
		boot := env.Boot()
		if got := a.Read(boot, o); got != 0 {
			t.Fatalf("owner %d: slot left dirty (%d) after all rounds", o, got)
		}
	}
}

// TestExploredScanClearNoABA sweeps the handshake across adversarial
// schedules: forced preemptions land between the combiner's Read and Clear
// and between Clear and the done store — the reclamation windows of the
// flat-combining and HCF engines — and every announcement must still be
// adopted exactly once.
func TestExploredScanClearNoABA(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		env := memsim.NewDet(memsim.DetConfig{
			Threads: 6,
			Explore: memsim.ExploreConfig{Seed: seed, PreemptBudget: 64, JitterClass: 3},
		})
		scanClearHandshake(t, env, 2, 30)
	}
}

// TestRealScanClearNoABA runs the same handshake on the real backend for
// the race detector.
func TestRealScanClearNoABA(t *testing.T) {
	env := memsim.NewReal(memsim.RealConfig{Threads: 6})
	scanClearHandshake(t, env, 2, 50)
}
