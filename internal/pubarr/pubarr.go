// Package pubarr implements the publication array used by flat combining
// and by the HCF framework: a container of announced operations with one
// slot per thread (the paper's footnote 1 notes this is the scheme their
// implementation uses).
//
// Slots live in simulated memory, one cache line apart, so that
//
//   - an owner can remove its announcement inside the same hardware
//     transaction that applies the operation (paper §2.2), and
//   - announcing or removing one operation does not invalidate other
//     threads' slots through false sharing.
package pubarr

import "hcf/internal/memsim"

// Array is a publication array with one slot per thread. A zero slot means
// the thread has nothing announced; a nonzero value is an opaque tag chosen
// by the announcing layer (typically thread id + 1).
type Array struct {
	base  memsim.Addr
	slots int
}

// New allocates an array with the given number of slots in env's arena.
func New(env memsim.Env, slots int) *Array {
	a := &Array{
		base:  env.Alloc(slots * memsim.WordsPerLine),
		slots: slots,
	}
	for i := 0; i < slots; i++ {
		env.StoreWord(a.slot(i), 0)
	}
	return a
}

// Slots returns the number of slots.
func (a *Array) Slots() int { return a.slots }

func (a *Array) slot(tid int) memsim.Addr {
	return a.base + memsim.Addr(tid*memsim.WordsPerLine)
}

// SlotAddr exposes thread tid's slot address so owners can clear it inside
// a transaction (the in-transaction removal of Figure 1, line 22).
func (a *Array) SlotAddr(tid int) memsim.Addr { return a.slot(tid) }

// Announce publishes tag in thread tid's slot through ctx.
func (a *Array) Announce(c memsim.Ctx, tid int, tag uint64) {
	c.Store(a.slot(tid), tag)
}

// Clear empties thread tid's slot through ctx.
func (a *Array) Clear(c memsim.Ctx, tid int) {
	c.Store(a.slot(tid), 0)
}

// Read returns thread tid's slot value through ctx.
func (a *Array) Read(c memsim.Ctx, tid int) uint64 {
	return c.Load(a.slot(tid))
}
