package pubarr

import (
	"testing"
	"testing/quick"

	"hcf/internal/memsim"
)

func TestAnnounceReadClear(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 4})
	a := New(env, 4)
	boot := env.Boot()
	if a.Slots() != 4 {
		t.Fatalf("Slots = %d", a.Slots())
	}
	for tid := 0; tid < 4; tid++ {
		if got := a.Read(boot, tid); got != 0 {
			t.Fatalf("fresh slot %d = %d", tid, got)
		}
	}
	a.Announce(boot, 2, 99)
	if got := a.Read(boot, 2); got != 99 {
		t.Fatalf("slot 2 = %d, want 99", got)
	}
	if got := a.Read(boot, 1); got != 0 {
		t.Fatalf("slot 1 = %d, want 0", got)
	}
	a.Clear(boot, 2)
	if got := a.Read(boot, 2); got != 0 {
		t.Fatalf("cleared slot = %d", got)
	}
}

func TestSlotsOnDistinctLines(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	a := New(env, 8)
	seen := map[uint32]bool{}
	for tid := 0; tid < 8; tid++ {
		line := memsim.LineOf(a.SlotAddr(tid))
		if seen[line] {
			t.Fatalf("slot %d shares line %d with another slot", tid, line)
		}
		seen[line] = true
	}
}

func TestConcurrentAnnouncesIsolated(t *testing.T) {
	env := memsim.NewReal(memsim.RealConfig{Threads: 8})
	a := New(env, 9)
	env.Run(func(th *memsim.Thread) {
		for i := 0; i < 100; i++ {
			a.Announce(th, th.ID(), uint64(th.ID())+1)
			if got := a.Read(th, th.ID()); got != uint64(th.ID())+1 {
				t.Errorf("thread %d read %d", th.ID(), got)
			}
			a.Clear(th, th.ID())
		}
	})
}

func TestQuickSlotIndependence(t *testing.T) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	a := New(env, 16)
	boot := env.Boot()
	model := make([]uint64, 16)
	f := func(slot uint8, tag uint64, clearIt bool) bool {
		s := int(slot % 16)
		if clearIt {
			a.Clear(boot, s)
			model[s] = 0
		} else {
			a.Announce(boot, s, tag)
			model[s] = tag
		}
		for i := 0; i < 16; i++ {
			if a.Read(boot, i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
