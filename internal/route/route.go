// Package route is the routing subsystem shared by every sharded layer
// in the repo: a deterministic consistent-hash ring with a stable
// key→shard map, a provable small-movement property on topology change,
// and an epoch-published topology so the hot lookup stays zero-alloc and
// wait-free.
//
// The ring is the fixed-slot ("memento"/virtual-node) flavour of
// consistent hashing: a power-of-two number of slots, each owned by one
// shard. A key hashes to a slot via the top bits of a Fibonacci hash and
// the slot's owner is a single array load — no search, no allocation, no
// lock. Topology changes (Split, Merge) produce a *new* immutable Ring
// that differs from the old one only in the slots that actually moved,
// which is what gives the small-movement bound: splitting one shard into
// two moves exactly half of that shard's slots (≈ K/N of K keys when N
// shards are active, +ε for slot granularity), and a merge of the pair
// moves them back — no uninvolved key ever changes owner.
//
// Rings are immutable after construction; publication is a single
// atomic pointer swap (Table). Readers loading an old ring for the
// duration of one operation is the expected, tolerated race — callers
// that need a consistency guarantee (the sharded engine) re-validate
// ownership under the shard lock and retry on a stale route.
package route

import (
	"fmt"
	"math/bits"
)

// fib is the 64-bit Fibonacci hashing multiplier (golden ratio). The
// same multiplier routes keys in the sim-backed sharded engine and the
// KV store's persistent index, so the key→shard function is audited in
// exactly one place.
const fib = 0x9E3779B97F4A7C15

// DefaultSlots is the default virtual-node count. 256 slots over ≤ 64
// shards keeps the worst-case imbalance from slot granularity under
// ~2% while the whole slot table stays in four cache lines.
const DefaultSlots = 256

// Hash is the shared key→uint64 routing hash (Fibonacci hashing).
// Owners are assigned from the *top* bits of the product, which are the
// well-mixed ones.
func Hash(key uint64) uint64 { return key * fib }

// Ring is an immutable consistent-hash topology: a power-of-two slot
// table mapping hash prefixes to shard indices. Create one with
// NewUniform and evolve it with Split/Merge; never mutate in place.
type Ring struct {
	epoch uint64  // monotonically increasing topology version
	shift uint    // 64 - log2(len(slots)): Hash(key)>>shift indexes slots
	slots []int32 // slot → owning shard
	// counts[s] = number of slots owned by shard s; len(counts) is the
	// shard-index space (NumShards for which Owner may return s).
	counts []int32
	active int // number of shards owning ≥1 slot
}

// NewUniform builds an epoch-0 ring that spreads slots evenly over
// shards 0..shards-1. slots must be a power of two ≥ shards (0 means
// DefaultSlots, raised to shards if needed). maxShards reserves the
// shard-index space for later splits; it is raised to shards.
func NewUniform(shards, slots, maxShards int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("route: shards must be ≥ 1 (got %d)", shards)
	}
	if maxShards < shards {
		maxShards = shards
	}
	if slots == 0 {
		slots = DefaultSlots
	}
	if slots < maxShards {
		slots = 1 << bits.Len(uint(maxShards-1))
	}
	if slots&(slots-1) != 0 {
		return nil, fmt.Errorf("route: slots must be a power of two (got %d)", slots)
	}
	if slots < shards {
		return nil, fmt.Errorf("route: need ≥ %d slots for %d shards (got %d)", shards, shards, slots)
	}
	r := &Ring{
		shift:  uint(64 - bits.Len(uint(slots-1))),
		slots:  make([]int32, slots),
		counts: make([]int32, maxShards),
		active: shards,
	}
	// Contiguous equal runs: slot s belongs to shard s*shards/slots.
	// Keys are pre-scrambled by the Fibonacci hash, so contiguous slot
	// runs still see uniform traffic.
	for s := range r.slots {
		owner := int32(uint64(s) * uint64(shards) / uint64(slots))
		r.slots[s] = owner
		r.counts[owner]++
	}
	return r, nil
}

// Epoch returns the topology version (0 for a fresh uniform ring,
// incremented by every Split/Merge).
func (r *Ring) Epoch() uint64 { return r.epoch }

// Slots returns the virtual-node count.
func (r *Ring) Slots() int { return len(r.slots) }

// NumShards returns the size of the shard-index space (provisioned
// shards); Owner always returns a value in [0, NumShards).
func (r *Ring) NumShards() int { return len(r.counts) }

// Active returns the number of shards currently owning at least one
// slot.
func (r *Ring) Active() int { return r.active }

// Owner returns the shard owning key. Zero-alloc, wait-free: one
// multiply, one shift, one array load.
func (r *Ring) Owner(key uint64) int {
	return int(r.slots[Hash(key)>>r.shift])
}

// OwnerOfSlot returns the shard owning virtual node slot.
func (r *Ring) OwnerOfSlot(slot int) int { return int(r.slots[slot]) }

// SlotCount returns the number of slots owned by shard s.
func (r *Ring) SlotCount(s int) int { return int(r.counts[s]) }

// Load returns shard s's share of the keyspace as a fraction in [0,1].
func (r *Ring) Load(s int) float64 {
	return float64(r.counts[s]) / float64(len(r.slots))
}

// SlotsOf returns the slot indices owned by shard s, ascending.
func (r *Ring) SlotsOf(s int) []int {
	out := make([]int, 0, r.counts[s])
	for i, o := range r.slots {
		if int(o) == s {
			out = append(out, i)
		}
	}
	return out
}

// clone copies r with epoch+1; the caller mutates the copy before
// publishing it.
func (r *Ring) clone() *Ring {
	c := &Ring{
		epoch:  r.epoch + 1,
		shift:  r.shift,
		slots:  append([]int32(nil), r.slots...),
		counts: append([]int32(nil), r.counts...),
		active: r.active,
	}
	return c
}

// Split moves every second slot of shard from to shard to (which must
// currently own no slots), returning a new ring at epoch+1. Exactly
// ⌊count(from)/2⌋ slots — and therefore ≈ half of from's keys and none
// of anyone else's — change owner: the small-movement property.
func (r *Ring) Split(from, to int) (*Ring, error) {
	if from < 0 || from >= len(r.counts) || to < 0 || to >= len(r.counts) {
		return nil, fmt.Errorf("route: split %d→%d out of range [0,%d)", from, to, len(r.counts))
	}
	if from == to {
		return nil, fmt.Errorf("route: split source and target are both %d", from)
	}
	if r.counts[from] < 2 {
		return nil, fmt.Errorf("route: shard %d owns %d slot(s), cannot split", from, r.counts[from])
	}
	if r.counts[to] != 0 {
		return nil, fmt.Errorf("route: split target %d already owns %d slot(s)", to, r.counts[to])
	}
	c := r.clone()
	// Move every second of from's slots (by ascending slot index) so
	// both halves keep interleaved coverage of from's hash region.
	nth := 0
	for i, o := range c.slots {
		if int(o) != from {
			continue
		}
		if nth&1 == 1 {
			c.slots[i] = int32(to)
			c.counts[from]--
			c.counts[to]++
		}
		nth++
	}
	c.active++
	return c, nil
}

// Merge moves every slot of shard from to shard into, returning a new
// ring at epoch+1. After Merge(to, from) of a previous Split(from, to)
// with no intervening changes, the slot table is identical to the
// pre-split one (merge is the inverse of split).
func (r *Ring) Merge(from, into int) (*Ring, error) {
	if from < 0 || from >= len(r.counts) || into < 0 || into >= len(r.counts) {
		return nil, fmt.Errorf("route: merge %d→%d out of range [0,%d)", from, into, len(r.counts))
	}
	if from == into {
		return nil, fmt.Errorf("route: merge source and target are both %d", from)
	}
	if r.counts[from] == 0 {
		return nil, fmt.Errorf("route: shard %d owns no slots", from)
	}
	if r.counts[into] == 0 {
		return nil, fmt.Errorf("route: merge target %d owns no slots", into)
	}
	c := r.clone()
	for i, o := range c.slots {
		if int(o) == from {
			c.slots[i] = int32(into)
		}
	}
	c.counts[into] += c.counts[from]
	c.counts[from] = 0
	c.active--
	return c, nil
}

// Moved counts the slots whose owner differs between two rings of the
// same size — the exact movement cost of a topology change.
func Moved(a, b *Ring) (int, error) {
	if len(a.slots) != len(b.slots) {
		return 0, fmt.Errorf("route: slot counts differ (%d vs %d)", len(a.slots), len(b.slots))
	}
	n := 0
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			n++
		}
	}
	return n, nil
}

// Snapshot is a plain-data view of a ring for introspection endpoints
// (serve's /debug/shards, hcfstat): no methods, JSON-friendly.
type Snapshot struct {
	Epoch  uint64    `json:"epoch"`
	Slots  int       `json:"slots"`
	Active int       `json:"active"`
	Owners []int32   `json:"owners"`           // slot → shard
	Counts []int32   `json:"counts"`           // shard → slot count
	Shares []float64 `json:"shares,omitempty"` // shard → keyspace fraction
}

// Snapshot materializes a copy of the ring's state.
func (r *Ring) Snapshot() Snapshot {
	s := Snapshot{
		Epoch:  r.epoch,
		Slots:  len(r.slots),
		Active: r.active,
		Owners: append([]int32(nil), r.slots...),
		Counts: append([]int32(nil), r.counts...),
		Shares: make([]float64, len(r.counts)),
	}
	for i, c := range r.counts {
		s.Shares[i] = float64(c) / float64(len(r.slots))
	}
	return s
}
