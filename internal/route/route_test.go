package route

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
)

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 0, 0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := NewUniform(4, 48, 4); err == nil {
		t.Fatal("expected error for non-power-of-two slots")
	}
	r, err := NewUniform(4, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() != DefaultSlots || r.NumShards() != 16 || r.Active() != 4 {
		t.Fatalf("got slots=%d numShards=%d active=%d", r.Slots(), r.NumShards(), r.Active())
	}
	if r.Epoch() != 0 {
		t.Fatalf("fresh ring epoch = %d, want 0", r.Epoch())
	}
}

func TestUniformBalance(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16} {
		r, err := NewUniform(shards, 256, shards)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for s := 0; s < shards; s++ {
			c := r.SlotCount(s)
			if c < 256/shards || c > 256/shards+1 {
				t.Fatalf("shards=%d: shard %d owns %d slots, want %d or %d",
					shards, s, c, 256/shards, 256/shards+1)
			}
			total += c
		}
		if total != 256 {
			t.Fatalf("shards=%d: slot counts sum to %d", shards, total)
		}
	}
}

func TestOwnerInRangeAndDeterministic(t *testing.T) {
	r, err := NewUniform(5, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		o := r.Owner(k)
		if o < 0 || o >= 5 {
			t.Fatalf("Owner(%d) = %d out of active range", k, o)
		}
		if o != r.Owner(k) {
			t.Fatalf("Owner(%d) not deterministic", k)
		}
		if o != r.OwnerOfSlot(int(Hash(k)>>(64-8))) {
			t.Fatalf("Owner and OwnerOfSlot disagree for key %d", k)
		}
	}
}

// Dense small keys (the common scenario keyspace) must spread evenly:
// the Fibonacci hash scrambles sequential keys across slots.
func TestSequentialKeysBalance(t *testing.T) {
	const shards, keys = 8, 1 << 16
	r, err := NewUniform(shards, 256, shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for k := uint64(0); k < keys; k++ {
		counts[r.Owner(k)]++
	}
	fair := keys / shards
	for s, c := range counts {
		if c < fair*8/10 || c > fair*12/10 {
			t.Fatalf("shard %d owns %d of %d sequential keys (fair %d)", s, c, keys, fair)
		}
	}
}

// The ISSUE's satellite property test: growing the ring from N to N+1
// shards (via Split of the largest shard into a spare) remaps at most
// ~K/N + ε of K keys, and Merge is the exact inverse.
func TestSplitMovementBound(t *testing.T) {
	const K = 1 << 16
	const maxShards = 16
	keys := make([]uint64, K)
	rng := rand.New(rand.NewPCG(7, 11))
	for i := range keys {
		keys[i] = rng.Uint64()
	}

	r, err := NewUniform(1, 256, maxShards)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < maxShards; n++ {
		// Split the largest shard into the first spare.
		from, best := 0, -1
		for s := 0; s < r.NumShards(); s++ {
			if c := r.SlotCount(s); c > best {
				from, best = s, c
			}
		}
		next, err := r.Split(from, n)
		if err != nil {
			t.Fatalf("split at n=%d: %v", n, err)
		}
		if next.Epoch() != r.Epoch()+1 {
			t.Fatalf("split epoch %d, want %d", next.Epoch(), r.Epoch()+1)
		}

		// Slot-level movement is exactly ⌊count(from)/2⌋.
		moved, err := Moved(r, next)
		if err != nil {
			t.Fatal(err)
		}
		if moved != best/2 {
			t.Fatalf("n=%d: %d slots moved, want %d", n, moved, best/2)
		}

		// Key-level movement ≤ K/n + ε (ε covers slot granularity:
		// the largest shard can own slightly more than 1/n of slots,
		// and keys are not perfectly uniform per slot).
		remapped := 0
		for _, k := range keys {
			if r.Owner(k) != next.Owner(k) {
				remapped++
			}
			// Keys that moved must have moved from→to only.
			if r.Owner(k) != next.Owner(k) && (r.Owner(k) != from || next.Owner(k) != n) {
				t.Fatalf("n=%d: key %d moved %d→%d, expected %d→%d",
					n, k, r.Owner(k), next.Owner(k), from, n)
			}
		}
		bound := K/n + K/10 // K/N + ε with ε = 10% of K
		if remapped > bound {
			t.Fatalf("n=%d: %d of %d keys remapped, bound %d", n, remapped, K, bound)
		}

		// Merge is the inverse: merging the new shard back restores
		// the previous slot table exactly.
		back, err := next.Merge(n, from)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.slots, r.slots) {
			t.Fatalf("n=%d: merge did not invert split", n)
		}
		if !reflect.DeepEqual(back.counts, r.counts) {
			t.Fatalf("n=%d: merge counts diverge from pre-split", n)
		}
		for _, k := range keys {
			if back.Owner(k) != r.Owner(k) {
				t.Fatalf("n=%d: key %d owner changed after split+merge", n, k)
			}
		}

		r = next
	}
	if r.Active() != maxShards {
		t.Fatalf("after %d splits active = %d", maxShards-1, r.Active())
	}
}

func TestSplitMergeValidation(t *testing.T) {
	r, err := NewUniform(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Split(0, 0); err == nil {
		t.Fatal("split onto self must fail")
	}
	if _, err := r.Split(0, 1); err == nil {
		t.Fatal("split onto an occupied shard must fail")
	}
	if _, err := r.Split(0, 9); err == nil {
		t.Fatal("split out of range must fail")
	}
	if _, err := r.Merge(3, 0); err == nil {
		t.Fatal("merge of an empty shard must fail")
	}
	if _, err := r.Merge(0, 3); err == nil {
		t.Fatal("merge into an empty shard must fail")
	}
	one, err := NewUniform(1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Merge(0, 0); err == nil {
		t.Fatal("merge onto self must fail")
	}

	// Splitting a 1-slot shard is impossible: free up a spare shard
	// first so the only objection left is the slot count.
	tiny, err := NewUniform(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err = tiny.Merge(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Split(0, 7); err == nil {
		t.Fatal("splitting a single-slot shard must fail")
	}
}

func TestImmutability(t *testing.T) {
	r, _ := NewUniform(2, 16, 4)
	before := append([]int32(nil), r.slots...)
	if _, err := r.Split(0, 2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, r.slots) {
		t.Fatal("Split mutated the source ring")
	}
	if _, err := r.Merge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, r.slots) {
		t.Fatal("Merge mutated the source ring")
	}
}

func TestSnapshot(t *testing.T) {
	r, _ := NewUniform(3, 16, 8)
	s := r.Snapshot()
	if s.Epoch != 0 || s.Slots != 16 || s.Active != 3 {
		t.Fatalf("snapshot header %+v", s)
	}
	if len(s.Owners) != 16 || len(s.Counts) != 8 || len(s.Shares) != 8 {
		t.Fatalf("snapshot lengths %d/%d/%d", len(s.Owners), len(s.Counts), len(s.Shares))
	}
	sum := 0.0
	for _, f := range s.Shares {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f", sum)
	}
	// Snapshot is a copy, not a view.
	s.Owners[0] = 99
	if r.OwnerOfSlot(0) == 99 {
		t.Fatal("snapshot aliases ring storage")
	}
}

func TestTablePublishLoad(t *testing.T) {
	r0, _ := NewUniform(2, 16, 4)
	tab := NewTable(r0)
	if tab.Load() != r0 {
		t.Fatal("Load returned a different ring")
	}
	r1, err := r0.Split(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab.Publish(r1)
	if tab.Load() != r1 {
		t.Fatal("Publish did not install the new ring")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-publishing an older epoch must panic")
		}
	}()
	tab.Publish(r1)
}

// Readers must stay safe while a writer republishes: exercised under
// -race in CI.
func TestTableConcurrentReaders(t *testing.T) {
	r, _ := NewUniform(1, 64, 8)
	tab := NewTable(r)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ring := tab.Load()
				k := rng.Uint64()
				if o := ring.Owner(k); o < 0 || o >= ring.NumShards() {
					panic("owner out of range")
				}
			}
		}(uint64(g))
	}
	cur := r
	for n := 1; n < 8; n++ {
		from, best := 0, -1
		for s := 0; s < cur.NumShards(); s++ {
			if c := cur.SlotCount(s); c > best {
				from, best = s, c
			}
		}
		next, err := cur.Split(from, n)
		if err != nil {
			t.Fatal(err)
		}
		tab.Publish(next)
		cur = next
	}
	close(stop)
	wg.Wait()
	if tab.Load().Active() != 8 {
		t.Fatalf("final active = %d", tab.Load().Active())
	}
}
