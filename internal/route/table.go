package route

import "sync/atomic"

// Table publishes the current Ring by epoch: writers install a new
// immutable ring with a single atomic pointer swap, readers load it
// wait-free on every operation. There is intentionally no
// reader-visible locking — a reader acting on a just-replaced ring is
// the tolerated race, resolved by the sharded engine's
// validate-under-lock retry protocol.
type Table struct {
	cur atomic.Pointer[Ring]
}

// NewTable creates a table publishing r.
func NewTable(r *Ring) *Table {
	t := &Table{}
	t.cur.Store(r)
	return t
}

// Load returns the current ring. Wait-free, zero-alloc.
func (t *Table) Load() *Ring { return t.cur.Load() }

// Publish installs next as the current ring. The caller must hold
// whatever external exclusion makes the transition linearizable (the
// sharded engine publishes only while holding every shard lock);
// Publish itself only guarantees the swap is atomic and that the new
// epoch is monotonic.
func (t *Table) Publish(next *Ring) {
	for {
		old := t.cur.Load()
		if next.epoch <= old.epoch {
			panic("route: Publish with non-monotonic epoch")
		}
		if t.cur.CompareAndSwap(old, next) {
			return
		}
	}
}
