// Package avl implements the sequential AVL-tree-based set evaluated in
// §3.4 of the paper, written against memsim.Ctx so it runs unmodified under
// every synchronization engine.
//
// Following the paper, the tree maintains a look-aside variable holding the
// root's key; a combiner's shouldHelp uses it to select only pending
// operations on keys in the same root subtree as its own operation, and the
// custom runMulti sorts the selected operations by key and type, combining
// and eliminating operations on the same key according to set semantics.
package avl

import "hcf/internal/memsim"

// Node layout (padded to one cache line):
//
//	word 0: key
//	word 1: left child (0 = none)
//	word 2: right child
//	word 3: height
const (
	offKey    = 0
	offLeft   = 1
	offRight  = 2
	offHeight = 3
	nodeWords = memsim.WordsPerLine
)

// Tree is a sequential AVL set of uint64 keys over simulated memory.
type Tree struct {
	root    memsim.Addr // root pointer cell (own line)
	rootKey memsim.Addr // look-aside cell holding the root's key (own line)
}

// New builds an empty tree using ctx.
func New(ctx memsim.Ctx) *Tree {
	t := &Tree{
		root:    ctx.Alloc(memsim.WordsPerLine),
		rootKey: ctx.Alloc(memsim.WordsPerLine),
	}
	ctx.Store(t.root, 0)
	ctx.Store(t.rootKey, 0)
	return t
}

// RootKeyAddr exposes the look-aside cell so shouldHelp can read it.
func (t *Tree) RootKeyAddr() memsim.Addr { return t.rootKey }

func height(ctx memsim.Ctx, n memsim.Addr) uint64 {
	if n == 0 {
		return 0
	}
	return ctx.Load(n + offHeight)
}

func fixHeight(ctx memsim.Ctx, n memsim.Addr) {
	l := height(ctx, memsim.Addr(ctx.Load(n+offLeft)))
	r := height(ctx, memsim.Addr(ctx.Load(n+offRight)))
	h := l
	if r > h {
		h = r
	}
	// Avoid redundant stores: a write of an unchanged height would still
	// invalidate the line and abort concurrent speculative readers.
	if ctx.Load(n+offHeight) != h+1 {
		ctx.Store(n+offHeight, h+1)
	}
}

// balance returns height(left) - height(right) as a signed value.
func balance(ctx memsim.Ctx, n memsim.Addr) int64 {
	l := height(ctx, memsim.Addr(ctx.Load(n+offLeft)))
	r := height(ctx, memsim.Addr(ctx.Load(n+offRight)))
	return int64(l) - int64(r)
}

// rotateRight rotates n's left child up and returns the new subtree root.
func rotateRight(ctx memsim.Ctx, n memsim.Addr) memsim.Addr {
	l := memsim.Addr(ctx.Load(n + offLeft))
	lr := ctx.Load(l + offRight)
	ctx.Store(n+offLeft, lr)
	ctx.Store(l+offRight, uint64(n))
	fixHeight(ctx, n)
	fixHeight(ctx, l)
	return l
}

// rotateLeft rotates n's right child up and returns the new subtree root.
func rotateLeft(ctx memsim.Ctx, n memsim.Addr) memsim.Addr {
	r := memsim.Addr(ctx.Load(n + offRight))
	rl := ctx.Load(r + offLeft)
	ctx.Store(n+offRight, rl)
	ctx.Store(r+offLeft, uint64(n))
	fixHeight(ctx, n)
	fixHeight(ctx, r)
	return r
}

// rebalance restores the AVL invariant at n and returns the subtree root.
func rebalance(ctx memsim.Ctx, n memsim.Addr) memsim.Addr {
	fixHeight(ctx, n)
	b := balance(ctx, n)
	switch {
	case b > 1:
		l := memsim.Addr(ctx.Load(n + offLeft))
		if balance(ctx, l) < 0 {
			ctx.Store(n+offLeft, uint64(rotateLeft(ctx, l)))
		}
		return rotateRight(ctx, n)
	case b < -1:
		r := memsim.Addr(ctx.Load(n + offRight))
		if balance(ctx, r) > 0 {
			ctx.Store(n+offRight, uint64(rotateRight(ctx, r)))
		}
		return rotateLeft(ctx, n)
	default:
		return n
	}
}

// Contains reports whether key is in the set.
func (t *Tree) Contains(ctx memsim.Ctx, key uint64) bool {
	n := memsim.Addr(ctx.Load(t.root))
	for n != 0 {
		k := ctx.Load(n + offKey)
		switch {
		case key == k:
			return true
		case key < k:
			n = memsim.Addr(ctx.Load(n + offLeft))
		default:
			n = memsim.Addr(ctx.Load(n + offRight))
		}
	}
	return false
}

// Insert adds key, returning true if it was not already present.
func (t *Tree) Insert(ctx memsim.Ctx, key uint64) bool {
	root := memsim.Addr(ctx.Load(t.root))
	newRoot, inserted := t.insert(ctx, root, key)
	if newRoot != root {
		ctx.Store(t.root, uint64(newRoot))
	}
	if inserted {
		t.refreshRootKey(ctx, newRoot)
	}
	return inserted
}

func (t *Tree) insert(ctx memsim.Ctx, n memsim.Addr, key uint64) (memsim.Addr, bool) {
	if n == 0 {
		m := ctx.Alloc(nodeWords)
		ctx.Store(m+offKey, key)
		ctx.Store(m+offLeft, 0)
		ctx.Store(m+offRight, 0)
		ctx.Store(m+offHeight, 1)
		return m, true
	}
	k := ctx.Load(n + offKey)
	switch {
	case key == k:
		return n, false
	case key < k:
		l := memsim.Addr(ctx.Load(n + offLeft))
		nl, ins := t.insert(ctx, l, key)
		if !ins {
			return n, false
		}
		if nl != l {
			ctx.Store(n+offLeft, uint64(nl))
		}
	default:
		r := memsim.Addr(ctx.Load(n + offRight))
		nr, ins := t.insert(ctx, r, key)
		if !ins {
			return n, false
		}
		if nr != r {
			ctx.Store(n+offRight, uint64(nr))
		}
	}
	return rebalance(ctx, n), true
}

// Remove deletes key, returning true if it was present.
func (t *Tree) Remove(ctx memsim.Ctx, key uint64) bool {
	root := memsim.Addr(ctx.Load(t.root))
	newRoot, removed := t.remove(ctx, root, key)
	if newRoot != root {
		ctx.Store(t.root, uint64(newRoot))
	}
	if removed {
		t.refreshRootKey(ctx, newRoot)
	}
	return removed
}

func (t *Tree) remove(ctx memsim.Ctx, n memsim.Addr, key uint64) (memsim.Addr, bool) {
	if n == 0 {
		return 0, false
	}
	k := ctx.Load(n + offKey)
	switch {
	case key < k:
		l := memsim.Addr(ctx.Load(n + offLeft))
		nl, rem := t.remove(ctx, l, key)
		if !rem {
			return n, false
		}
		if nl != l {
			ctx.Store(n+offLeft, uint64(nl))
		}
	case key > k:
		r := memsim.Addr(ctx.Load(n + offRight))
		nr, rem := t.remove(ctx, r, key)
		if !rem {
			return n, false
		}
		if nr != r {
			ctx.Store(n+offRight, uint64(nr))
		}
	default:
		l := memsim.Addr(ctx.Load(n + offLeft))
		r := memsim.Addr(ctx.Load(n + offRight))
		if l == 0 || r == 0 {
			child := l
			if child == 0 {
				child = r
			}
			ctx.Free(n, nodeWords)
			return child, true
		}
		// Two children: replace with the in-order successor's key, then
		// remove the successor from the right subtree.
		succ := r
		for {
			sl := memsim.Addr(ctx.Load(succ + offLeft))
			if sl == 0 {
				break
			}
			succ = sl
		}
		sk := ctx.Load(succ + offKey)
		ctx.Store(n+offKey, sk)
		nr, _ := t.remove(ctx, r, sk)
		if nr != r {
			ctx.Store(n+offRight, uint64(nr))
		}
	}
	return rebalance(ctx, n), true
}

// refreshRootKey updates the look-aside cell if the root's key changed,
// avoiding writes (and thus conflicts) on the common path.
func (t *Tree) refreshRootKey(ctx memsim.Ctx, root memsim.Addr) {
	var rk uint64
	if root != 0 {
		rk = ctx.Load(root + offKey)
	}
	if ctx.Load(t.rootKey) != rk {
		ctx.Store(t.rootKey, rk)
	}
}

// Len returns the number of keys (linear walk; test/diagnostic use).
func (t *Tree) Len(ctx memsim.Ctx) int {
	var count func(n memsim.Addr) int
	count = func(n memsim.Addr) int {
		if n == 0 {
			return 0
		}
		return 1 + count(memsim.Addr(ctx.Load(n+offLeft))) +
			count(memsim.Addr(ctx.Load(n+offRight)))
	}
	return count(memsim.Addr(ctx.Load(t.root)))
}

// InOrder appends all keys in ascending order to dst and returns it.
func (t *Tree) InOrder(ctx memsim.Ctx, dst []uint64) []uint64 {
	var walk func(n memsim.Addr)
	walk = func(n memsim.Addr) {
		if n == 0 {
			return
		}
		walk(memsim.Addr(ctx.Load(n + offLeft)))
		dst = append(dst, ctx.Load(n+offKey))
		walk(memsim.Addr(ctx.Load(n + offRight)))
	}
	walk(memsim.Addr(ctx.Load(t.root)))
	return dst
}

// CheckInvariants verifies the BST ordering, the AVL balance property, the
// stored heights, and the root-key look-aside. It returns a description of
// the first violation, or "".
func (t *Tree) CheckInvariants(ctx memsim.Ctx) string {
	msg := ""
	var check func(n memsim.Addr, lo, hi *uint64) uint64
	check = func(n memsim.Addr, lo, hi *uint64) uint64 {
		if n == 0 || msg != "" {
			return 0
		}
		k := ctx.Load(n + offKey)
		if lo != nil && k <= *lo {
			msg = "BST order violated (left)"
			return 0
		}
		if hi != nil && k >= *hi {
			msg = "BST order violated (right)"
			return 0
		}
		lh := check(memsim.Addr(ctx.Load(n+offLeft)), lo, &k)
		rh := check(memsim.Addr(ctx.Load(n+offRight)), &k, hi)
		if msg != "" {
			return 0
		}
		d := int64(lh) - int64(rh)
		if d < -1 || d > 1 {
			msg = "AVL balance violated"
			return 0
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if ctx.Load(n+offHeight) != h {
			msg = "stored height incorrect"
			return 0
		}
		return h
	}
	root := memsim.Addr(ctx.Load(t.root))
	check(root, nil, nil)
	if msg != "" {
		return msg
	}
	var wantRK uint64
	if root != 0 {
		wantRK = ctx.Load(root + offKey)
	}
	if ctx.Load(t.rootKey) != wantRK {
		return "root-key look-aside stale"
	}
	return ""
}
