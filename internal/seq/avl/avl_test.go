package avl

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvTree() (*memsim.DetEnv, *Tree) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyTree(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	if tr.Contains(boot, 1) {
		t.Error("empty tree contains 1")
	}
	if tr.Remove(boot, 1) {
		t.Error("removed from empty tree")
	}
	if tr.Len(boot) != 0 {
		t.Error("empty tree has nonzero length")
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Error(msg)
	}
}

func TestInsertContainsRemove(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	if !tr.Insert(boot, 10) {
		t.Fatal("fresh insert failed")
	}
	if tr.Insert(boot, 10) {
		t.Fatal("duplicate insert succeeded")
	}
	if !tr.Contains(boot, 10) {
		t.Fatal("inserted key missing")
	}
	if !tr.Remove(boot, 10) {
		t.Fatal("remove failed")
	}
	if tr.Contains(boot, 10) {
		t.Fatal("removed key present")
	}
	if tr.Remove(boot, 10) {
		t.Fatal("double remove succeeded")
	}
}

func TestAscendingInsertsStayBalanced(t *testing.T) {
	// Sequential keys are the classic AVL stress: without rotations the
	// tree degenerates into a list.
	env, tr := newEnvTree()
	boot := env.Boot()
	const n = 1024
	for k := uint64(0); k < n; k++ {
		tr.Insert(boot, k)
		if k%128 == 0 {
			if msg := tr.CheckInvariants(boot); msg != "" {
				t.Fatalf("after %d inserts: %s", k+1, msg)
			}
		}
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	if got := tr.Len(boot); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	order := tr.InOrder(boot, nil)
	for i, k := range order {
		if k != uint64(i) {
			t.Fatalf("in-order[%d] = %d", i, k)
		}
	}
}

func TestDescendingInsertsStayBalanced(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	for k := 512; k > 0; k-- {
		tr.Insert(boot, uint64(k))
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestRemoveAllShapes(t *testing.T) {
	// Remove leaves, one-child and two-child nodes.
	env, tr := newEnvTree()
	boot := env.Boot()
	keys := []uint64{50, 30, 70, 20, 40, 60, 80, 35, 45}
	for _, k := range keys {
		tr.Insert(boot, k)
	}
	for _, k := range []uint64{20, 30, 50, 70, 40, 80, 35, 45, 60} {
		if !tr.Remove(boot, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
		if msg := tr.CheckInvariants(boot); msg != "" {
			t.Fatalf("after Remove(%d): %s", k, msg)
		}
	}
	if tr.Len(boot) != 0 {
		t.Fatal("tree not empty")
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	model := map[uint64]bool{}
	f := func(key uint8, action uint8) bool {
		k := uint64(key % 64)
		switch action % 3 {
		case 0:
			want := !model[k]
			model[k] = true
			if tr.Insert(boot, k) != want {
				return false
			}
		case 1:
			if tr.Contains(boot, k) != model[k] {
				return false
			}
		case 2:
			want := model[k]
			delete(model, k)
			if tr.Remove(boot, k) != want {
				return false
			}
		}
		return tr.CheckInvariants(boot) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestRootKeyLookasideMaintained(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64N(128)
		if rng.IntN(2) == 0 {
			tr.Insert(boot, k)
		} else {
			tr.Remove(boot, k)
		}
		// CheckInvariants validates the look-aside against the real root.
		if msg := tr.CheckInvariants(boot); msg != "" {
			t.Fatalf("step %d: %s", i, msg)
		}
	}
}

// combineTrace applies ops through CombineOps and returns results.
func combineTrace(t *testing.T, prefill []uint64, build func(tr *Tree) []engine.Op) ([]uint64, *Tree, *memsim.DetEnv) {
	t.Helper()
	env, tr := newEnvTree()
	boot := env.Boot()
	for _, k := range prefill {
		tr.Insert(boot, k)
	}
	ops := build(tr)
	res := make([]uint64, len(ops))
	done := make([]bool, len(ops))
	CombineOps(boot, ops, res, done)
	for i, d := range done {
		if !d {
			t.Fatalf("op %d left undone", i)
		}
	}
	return res, tr, env
}

func TestCombineOpsEliminatesDuplicateInserts(t *testing.T) {
	// Paper §3.4: of multiple Inserts of the same absent key, exactly one
	// reports success.
	res, tr, env := combineTrace(t, nil, func(tr *Tree) []engine.Op {
		return []engine.Op{
			InsertOp{T: tr, K: 7},
			InsertOp{T: tr, K: 7},
			InsertOp{T: tr, K: 7},
		}
	})
	successes := 0
	for _, r := range res {
		if engine.UnpackBool(r) {
			successes++
		}
	}
	if successes != 1 {
		t.Fatalf("%d of 3 duplicate inserts succeeded, want 1", successes)
	}
	if !tr.Contains(env.Boot(), 7) {
		t.Fatal("key missing after combined inserts")
	}
}

func TestCombineOpsInsertThenRemoveLeavesTreeUntouched(t *testing.T) {
	// An Insert and a Remove of an absent key eliminate: the tree is never
	// physically modified, yet both report success.
	res, tr, env := combineTrace(t, nil, func(tr *Tree) []engine.Op {
		return []engine.Op{
			InsertOp{T: tr, K: 9},
			RemoveOp{T: tr, K: 9},
		}
	})
	if !engine.UnpackBool(res[0]) || !engine.UnpackBool(res[1]) {
		t.Fatalf("results = %v, want both true", res)
	}
	if tr.Contains(env.Boot(), 9) {
		t.Fatal("key present after eliminated pair")
	}
	if tr.Len(env.Boot()) != 0 {
		t.Fatal("tree modified by eliminated pair")
	}
}

func TestCombineOpsRemoveOfPresentKey(t *testing.T) {
	res, tr, env := combineTrace(t, []uint64{5}, func(tr *Tree) []engine.Op {
		return []engine.Op{
			RemoveOp{T: tr, K: 5},
			RemoveOp{T: tr, K: 5},
			FindOp{T: tr, K: 5},
		}
	})
	// Sorted by kind: find runs before removes within the same key group.
	if !engine.UnpackBool(res[2]) {
		t.Error("find before removes should see the key")
	}
	removes := 0
	if engine.UnpackBool(res[0]) {
		removes++
	}
	if engine.UnpackBool(res[1]) {
		removes++
	}
	if removes != 1 {
		t.Fatalf("%d removes succeeded, want 1", removes)
	}
	if tr.Contains(env.Boot(), 5) {
		t.Fatal("key still present")
	}
}

func TestCombineOpsMixedKeysMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 100; trial++ {
		prefill := make([]uint64, rng.IntN(10))
		for i := range prefill {
			prefill[i] = rng.Uint64N(16)
		}
		// Combined execution.
		envC, trC := newEnvTree()
		bootC := envC.Boot()
		for _, k := range prefill {
			trC.Insert(bootC, k)
		}
		n := 1 + rng.IntN(8)
		ops := make([]engine.Op, n)
		kinds := make([]int, n)
		keys := make([]uint64, n)
		for i := 0; i < n; i++ {
			kinds[i] = rng.IntN(3)
			keys[i] = rng.Uint64N(16)
			switch kinds[i] {
			case 0:
				ops[i] = FindOp{T: trC, K: keys[i]}
			case 1:
				ops[i] = InsertOp{T: trC, K: keys[i]}
			case 2:
				ops[i] = RemoveOp{T: trC, K: keys[i]}
			}
		}
		res := make([]uint64, n)
		done := make([]bool, n)
		CombineOps(bootC, ops, res, done)
		if msg := trC.CheckInvariants(bootC); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		// The final set must equal sequential execution in the combiner's
		// canonical order (sorted by key, then kind, then index).
		envS, trS := newEnvTree()
		bootS := envS.Boot()
		for _, k := range prefill {
			trS.Insert(bootS, k)
		}
		type item struct {
			key  uint64
			kind int
			idx  int
		}
		items := make([]item, n)
		for i := 0; i < n; i++ {
			items[i] = item{keys[i], kinds[i], i}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				ia, ib := items[a], items[b]
				if ib.key < ia.key || (ib.key == ia.key && (ib.kind < ia.kind ||
					(ib.kind == ia.kind && ib.idx < ia.idx))) {
					items[a], items[b] = items[b], items[a]
				}
			}
		}
		for _, it := range items {
			var want bool
			switch it.kind {
			case 0:
				want = trS.Contains(bootS, it.key)
			case 1:
				want = trS.Insert(bootS, it.key)
			case 2:
				want = trS.Remove(bootS, it.key)
			}
			if engine.UnpackBool(res[it.idx]) != want {
				t.Fatalf("trial %d: op %d (key %d kind %d) = %v, sequential %v",
					trial, it.idx, it.key, it.kind, engine.UnpackBool(res[it.idx]), want)
			}
		}
		want := trS.InOrder(bootS, nil)
		got := trC.InOrder(bootC, nil)
		if len(want) != len(got) {
			t.Fatalf("trial %d: sets differ: %v vs %v", trial, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: sets differ at %d: %v vs %v", trial, i, got, want)
			}
		}
	}
}

func TestSameSubtreeSelection(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	for _, k := range []uint64{50, 25, 75} {
		tr.Insert(boot, k)
	}
	// Root key is 50.
	left1 := InsertOp{T: tr, K: 10}
	left2 := RemoveOp{T: tr, K: 30}
	right := InsertOp{T: tr, K: 90}
	rootOp := FindOp{T: tr, K: 50}
	if !SameSubtree(boot, left1, left2) {
		t.Error("two left-subtree ops should combine")
	}
	if SameSubtree(boot, left1, right) {
		t.Error("opposite subtrees should not combine")
	}
	if !SameSubtree(boot, rootOp, rootOp) {
		t.Error("root-key ops should combine with themselves")
	}
	if SameSubtree(boot, rootOp, left1) {
		t.Error("root-key op should not drag in left subtree")
	}
}

func buildAVLEngines(t *testing.T, env memsim.Env) (map[string]engine.Engine, *Tree) {
	t.Helper()
	tr := New(env.Boot())
	hcf, err := core.New(env, core.Config{Policies: Policies(1)})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() engines.Options { return engines.Options{Combine: CombineOps} }
	return map[string]engine.Engine{
		"Lock":   engines.NewLock(env, mk()),
		"TLE":    engines.NewTLE(env, mk()),
		"FC":     engines.NewFC(env, mk()),
		"SCM":    engines.NewSCM(env, mk()),
		"TLE+FC": engines.NewTLEFC(env, mk()),
		"HCF":    hcf,
	}, tr
}

// TestConcurrentConformanceAllEngines: conservation + invariants under a
// skewed concurrent workload for every engine.
func TestConcurrentConformanceAllEngines(t *testing.T) {
	const threads, perThread = 8, 50
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			engs, tr := buildAVLEngines(t, env)
			eng := engs[name]
			var inserted, removed [threads]int
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 99))
				for i := 0; i < perThread; i++ {
					key := rng.Uint64N(64)
					switch rng.IntN(3) {
					case 0:
						if engine.UnpackBool(eng.Execute(th, InsertOp{T: tr, K: key})) {
							inserted[th.ID()]++
						}
					case 1:
						eng.Execute(th, FindOp{T: tr, K: key})
					case 2:
						if engine.UnpackBool(eng.Execute(th, RemoveOp{T: tr, K: key})) {
							removed[th.ID()]++
						}
					}
				}
			})
			boot := env.Boot()
			if msg := tr.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			ti, trm := 0, 0
			for i := range inserted {
				ti += inserted[i]
				trm += removed[i]
			}
			if got := tr.Len(boot); got != ti-trm {
				t.Fatalf("size = %d, want %d", got, ti-trm)
			}
		})
	}
}

func TestTwoArrayAblationPolicies(t *testing.T) {
	const threads = 6
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	tr := New(env.Boot())
	hcf, err := core.New(env, core.Config{Policies: Policies(2)})
	if err != nil {
		t.Fatal(err)
	}
	const pivot = 32
	var inserted, removed [threads]int
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 5))
		for i := 0; i < 50; i++ {
			key := rng.Uint64N(64)
			arr := 0
			if key >= pivot {
				arr = 1
			}
			if rng.IntN(2) == 0 {
				if engine.UnpackBool(hcf.Execute(th, InsertOp{T: tr, K: key, Arr: arr})) {
					inserted[th.ID()]++
				}
			} else {
				if engine.UnpackBool(hcf.Execute(th, RemoveOp{T: tr, K: key, Arr: arr})) {
					removed[th.ID()]++
				}
			}
		}
	})
	boot := env.Boot()
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	ti, trm := 0, 0
	for i := range inserted {
		ti += inserted[i]
		trm += removed[i]
	}
	if got := tr.Len(boot); got != ti-trm {
		t.Fatalf("size = %d, want %d", got, ti-trm)
	}
}

func TestNoCombinePoliciesConformance(t *testing.T) {
	const threads = 6
	env := memsim.NewDet(memsim.DetConfig{Threads: threads})
	tr := New(env.Boot())
	hcf, err := core.New(env, core.Config{Policies: NoCombinePolicies()})
	if err != nil {
		t.Fatal(err)
	}
	var inserted, removed [threads]int
	env.Run(func(th *memsim.Thread) {
		rng := rand.New(rand.NewPCG(uint64(th.ID()), 6))
		for i := 0; i < 50; i++ {
			key := rng.Uint64N(32)
			if rng.IntN(2) == 0 {
				if engine.UnpackBool(hcf.Execute(th, InsertOp{T: tr, K: key})) {
					inserted[th.ID()]++
				}
			} else {
				if engine.UnpackBool(hcf.Execute(th, RemoveOp{T: tr, K: key})) {
					removed[th.ID()]++
				}
			}
		}
	})
	boot := env.Boot()
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	ti, trm := 0, 0
	for i := range inserted {
		ti += inserted[i]
		trm += removed[i]
	}
	if got := tr.Len(boot); got != ti-trm {
		t.Fatalf("size = %d, want %d", got, ti-trm)
	}
}
