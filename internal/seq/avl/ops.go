package avl

import (
	"sort"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation kinds within a publication array.
const (
	kindFind = iota
	kindInsert
	kindRemove
	numKinds
)

// Op is the common interface of AVL operations; combiners use Key for
// sorting and subtree selection.
type Op interface {
	engine.Op
	Key() uint64
	Tree() *Tree
	kind() int
}

// FindOp tests membership. Result: PackBool(present). Arr selects the
// publication array (0 for the paper's single-array configuration; the
// two-array ablation partitions by key).
type FindOp struct {
	T *Tree
	K uint64
	// Arr selects the publication array for the ablation configurations.
	Arr int
}

// InsertOp adds a key. Result: PackBool(newly inserted).
type InsertOp struct {
	T   *Tree
	K   uint64
	Arr int
}

// RemoveOp deletes a key. Result: PackBool(was present).
type RemoveOp struct {
	T   *Tree
	K   uint64
	Arr int
}

var (
	_ Op = FindOp{}
	_ Op = InsertOp{}
	_ Op = RemoveOp{}
)

// Apply implements engine.Op.
func (o FindOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Contains(ctx, o.K))
}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Insert(ctx, o.K))
}

// Apply implements engine.Op.
func (o RemoveOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Remove(ctx, o.K))
}

// Class implements engine.Op.
func (o FindOp) Class() int { return o.Arr*numKinds + kindFind }

// Class implements engine.Op.
func (o InsertOp) Class() int { return o.Arr*numKinds + kindInsert }

// Class implements engine.Op.
func (o RemoveOp) Class() int { return o.Arr*numKinds + kindRemove }

// Key implements Op.
func (o FindOp) Key() uint64 { return o.K }

// Key implements Op.
func (o InsertOp) Key() uint64 { return o.K }

// Key implements Op.
func (o RemoveOp) Key() uint64 { return o.K }

// Tree implements Op.
func (o FindOp) Tree() *Tree { return o.T }

// Tree implements Op.
func (o InsertOp) Tree() *Tree { return o.T }

// Tree implements Op.
func (o RemoveOp) Tree() *Tree { return o.T }

func (o FindOp) kind() int   { return kindFind }
func (o InsertOp) kind() int { return kindInsert }
func (o RemoveOp) kind() int { return kindRemove }

// SameSubtree is the paper's shouldHelp for the AVL set (§3.4): a combiner
// selects only operations on keys that fall in the same (left or right)
// subtree of the root as its own key, read from the look-aside cell.
func SameSubtree(ctx memsim.Ctx, mine, other engine.Op) bool {
	m, ok := mine.(Op)
	if !ok {
		return true
	}
	o, ok := other.(Op)
	if !ok {
		return false
	}
	rk := ctx.Load(m.Tree().RootKeyAddr())
	side := func(k uint64) int {
		switch {
		case k < rk:
			return -1
		case k > rk:
			return 1
		default:
			return 0
		}
	}
	return side(m.Key()) == side(o.Key())
}

// CombineOps is the paper's runMulti for the AVL set: the selected
// operations are sorted by key and operation type, operations on the same
// key are combined and eliminated according to set semantics (e.g. of two
// Inserts of an absent key, only the first takes effect on the tree; the
// rest just return "already present"), and at most one physical tree
// update per key is applied.
func CombineOps(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	type item struct {
		key  uint64
		kind int
		idx  int
	}
	items := make([]item, 0, len(ops))
	var tree *Tree
	for i, op := range ops {
		if done[i] {
			continue
		}
		ao, ok := op.(Op)
		if !ok {
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		tree = ao.Tree()
		items = append(items, item{key: ao.Key(), kind: ao.kind(), idx: i})
	}
	if tree == nil {
		return
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].key != items[b].key {
			return items[a].key < items[b].key
		}
		if items[a].kind != items[b].kind {
			return items[a].kind < items[b].kind
		}
		return items[a].idx < items[b].idx
	})
	for g := 0; g < len(items); {
		h := g
		for h < len(items) && items[h].key == items[g].key {
			h++
		}
		key := items[g].key
		initial := tree.Contains(ctx, key)
		cur := initial
		for _, it := range items[g:h] {
			switch it.kind {
			case kindFind:
				res[it.idx] = engine.PackBool(cur)
			case kindInsert:
				res[it.idx] = engine.PackBool(!cur)
				cur = true
			case kindRemove:
				res[it.idx] = engine.PackBool(cur)
				cur = false
			}
			done[it.idx] = true
		}
		// At most one physical update per key.
		switch {
		case cur && !initial:
			tree.Insert(ctx, key)
		case !cur && initial:
			tree.Remove(ctx, key)
		}
		g = h
	}
}

// Policies returns the paper's HCF configuration for the AVL set (§3.4):
// one publication array for all operations, subtree-restricted selection,
// and sort/combine/eliminate application. numArrays > 1 builds the
// two-array ablation (operations pre-partitioned by key range set Arr).
func Policies(numArrays int) []core.Policy {
	if numArrays < 1 {
		numArrays = 1
	}
	out := make([]core.Policy, 0, numArrays*numKinds)
	for a := 0; a < numArrays; a++ {
		for k := 0; k < numKinds; k++ {
			name := [...]string{"find", "insert", "remove"}[k]
			out = append(out, core.Policy{
				Name:               name,
				PubArray:           a,
				TryPrivateTrials:   2,
				TryVisibleTrials:   3,
				TryCombiningTrials: 5,
				ShouldHelp:         SameSubtree,
				RunMulti:           CombineOps,
				MaxBatch:           8,
			})
		}
	}
	return out
}

// NoCombinePolicies is the §3.4 ablation in which a combiner applies all
// announced operations one after another without combining or elimination.
func NoCombinePolicies() []core.Policy {
	pols := Policies(1)
	for i := range pols {
		pols[i].ShouldHelp = engine.HelpAll
		pols[i].RunMulti = engine.ApplyEach
	}
	return pols
}
