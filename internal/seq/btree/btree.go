// Package btree implements a sequential B-tree set. Search trees are the
// paper's §3.4 case study family; compared to the AVL tree, a B-tree packs
// several keys per node, so an operation touches fewer cache lines — a
// friendlier footprint for speculative execution — while still exhibiting
// root-area contention under skew that combining absorbs.
package btree

import "hcf/internal/memsim"

// Order parameters: a minimum-degree t=4 B-tree (max 2t-1 = 7 keys, min
// t-1 = 3 for non-root nodes). A node occupies exactly two cache lines:
// line 0 = header + 7 keys, line 1 = up to 8 children.
//
// Node layout:
//
//	word 0:           count (number of keys) | leaf flag (bit 63)
//	words 1..7:       keys
//	words 8..15:      children (count+1 of them; line-aligned at +8)
const (
	maxKeys   = 7
	minKeys   = maxKeys / 2 // = t-1, the non-root fill invariant
	offMeta   = 0
	offKeys   = 1
	offKids   = 8
	nodeWords = 2 * memsim.WordsPerLine
	leafBit   = uint64(1) << 63
)

// Tree is a sequential B-tree set of uint64 keys over simulated memory.
type Tree struct {
	root memsim.Addr // root pointer cell
}

// New builds an empty tree using ctx.
func New(ctx memsim.Ctx) *Tree {
	t := &Tree{root: ctx.Alloc(memsim.WordsPerLine)}
	ctx.Store(t.root, uint64(newNode(ctx, true)))
	return t
}

func newNode(ctx memsim.Ctx, leaf bool) memsim.Addr {
	n := ctx.Alloc(nodeWords)
	meta := uint64(0)
	if leaf {
		meta |= leafBit
	}
	ctx.Store(n+offMeta, meta)
	return n
}

func count(ctx memsim.Ctx, n memsim.Addr) int {
	return int(ctx.Load(n+offMeta) &^ leafBit)
}

func isLeaf(ctx memsim.Ctx, n memsim.Addr) bool {
	return ctx.Load(n+offMeta)&leafBit != 0
}

func setCount(ctx memsim.Ctx, n memsim.Addr, c int, leaf bool) {
	meta := uint64(c)
	if leaf {
		meta |= leafBit
	}
	ctx.Store(n+offMeta, meta)
}

func key(ctx memsim.Ctx, n memsim.Addr, i int) uint64 {
	return ctx.Load(n + offKeys + memsim.Addr(i))
}

func setKey(ctx memsim.Ctx, n memsim.Addr, i int, k uint64) {
	ctx.Store(n+offKeys+memsim.Addr(i), k)
}

func child(ctx memsim.Ctx, n memsim.Addr, i int) memsim.Addr {
	return memsim.Addr(ctx.Load(n + offKids + memsim.Addr(i)))
}

func setChild(ctx memsim.Ctx, n memsim.Addr, i int, c memsim.Addr) {
	ctx.Store(n+offKids+memsim.Addr(i), uint64(c))
}

// findIdx returns the first index with key(n,i) >= k, and whether it hit.
func findIdx(ctx memsim.Ctx, n memsim.Addr, k uint64) (int, bool) {
	c := count(ctx, n)
	for i := 0; i < c; i++ {
		ki := key(ctx, n, i)
		if ki >= k {
			return i, ki == k
		}
	}
	return c, false
}

// Contains reports whether k is in the set.
func (t *Tree) Contains(ctx memsim.Ctx, k uint64) bool {
	n := memsim.Addr(ctx.Load(t.root))
	for {
		i, hit := findIdx(ctx, n, k)
		if hit {
			return true
		}
		if isLeaf(ctx, n) {
			return false
		}
		n = child(ctx, n, i)
	}
}

// Insert adds k, returning true if it was absent.
func (t *Tree) Insert(ctx memsim.Ctx, k uint64) bool {
	root := memsim.Addr(ctx.Load(t.root))
	if count(ctx, root) == maxKeys {
		// Preemptive root split keeps the downward pass single-pass.
		nr := newNode(ctx, false)
		setChild(ctx, nr, 0, root)
		t.splitChild(ctx, nr, 0)
		ctx.Store(t.root, uint64(nr))
		root = nr
	}
	return t.insertNonFull(ctx, root, k)
}

// splitChild splits the full i-th child of parent p (p is not full).
func (t *Tree) splitChild(ctx memsim.Ctx, p memsim.Addr, i int) {
	full := child(ctx, p, i)
	leaf := isLeaf(ctx, full)
	right := newNode(ctx, leaf)
	mid := maxKeys / 2
	midKey := key(ctx, full, mid)
	// Move keys after mid to the new right node.
	rc := maxKeys - mid - 1
	for j := 0; j < rc; j++ {
		setKey(ctx, right, j, key(ctx, full, mid+1+j))
	}
	if !leaf {
		for j := 0; j <= rc; j++ {
			setChild(ctx, right, j, child(ctx, full, mid+1+j))
		}
	}
	setCount(ctx, right, rc, leaf)
	setCount(ctx, full, mid, leaf)
	// Shift parent entries right and insert midKey.
	pc := count(ctx, p)
	for j := pc; j > i; j-- {
		setKey(ctx, p, j, key(ctx, p, j-1))
		setChild(ctx, p, j+1, child(ctx, p, j))
	}
	setKey(ctx, p, i, midKey)
	setChild(ctx, p, i+1, right)
	setCount(ctx, p, pc+1, false)
}

func (t *Tree) insertNonFull(ctx memsim.Ctx, n memsim.Addr, k uint64) bool {
	for {
		i, hit := findIdx(ctx, n, k)
		if hit {
			return false
		}
		if isLeaf(ctx, n) {
			c := count(ctx, n)
			for j := c; j > i; j-- {
				setKey(ctx, n, j, key(ctx, n, j-1))
			}
			setKey(ctx, n, i, k)
			setCount(ctx, n, c+1, true)
			return true
		}
		ch := child(ctx, n, i)
		if count(ctx, ch) == maxKeys {
			t.splitChild(ctx, n, i)
			// The split may have moved k's position.
			continue
		}
		n = ch
	}
}

// Remove deletes k, returning true if it was present. Standard B-tree
// deletion with merge/borrow on the way down.
func (t *Tree) Remove(ctx memsim.Ctx, k uint64) bool {
	root := memsim.Addr(ctx.Load(t.root))
	removed := t.remove(ctx, root, k)
	// Shrink the root if it became an empty internal node.
	if !isLeaf(ctx, root) && count(ctx, root) == 0 {
		ctx.Store(t.root, uint64(child(ctx, root, 0)))
		ctx.Free(root, nodeWords)
	}
	return removed
}

func (t *Tree) remove(ctx memsim.Ctx, n memsim.Addr, k uint64) bool {
	i, hit := findIdx(ctx, n, k)
	if isLeaf(ctx, n) {
		if !hit {
			return false
		}
		c := count(ctx, n)
		for j := i; j < c-1; j++ {
			setKey(ctx, n, j, key(ctx, n, j+1))
		}
		setCount(ctx, n, c-1, true)
		return true
	}
	if hit {
		// Replace with predecessor from the left child's subtree, then
		// delete the predecessor there.
		t.ensureChild(ctx, n, i)
		// ensureChild may have moved things; re-find.
		i2, hit2 := findIdx(ctx, n, k)
		if !hit2 {
			return t.remove(ctx, n, k) // key moved down into a child
		}
		pred := t.maxOf(ctx, child(ctx, n, i2))
		setKey(ctx, n, i2, pred)
		return t.remove(ctx, child(ctx, n, i2), pred)
	}
	t.ensureChild(ctx, n, i)
	i3, hit3 := findIdx(ctx, n, k)
	if hit3 {
		return t.remove(ctx, n, k) // merge pulled the key into n
	}
	return t.remove(ctx, child(ctx, n, i3), k)
}

// maxOf returns the maximum key of subtree n.
func (t *Tree) maxOf(ctx memsim.Ctx, n memsim.Addr) uint64 {
	for !isLeaf(ctx, n) {
		n = child(ctx, n, count(ctx, n))
	}
	return key(ctx, n, count(ctx, n)-1)
}

// ensureChild guarantees child i of n has more than minKeys keys, borrowing
// from a sibling or merging if necessary.
func (t *Tree) ensureChild(ctx memsim.Ctx, n memsim.Addr, i int) {
	ch := child(ctx, n, i)
	if count(ctx, ch) > minKeys {
		return
	}
	pc := count(ctx, n)
	// Borrow from left sibling.
	if i > 0 {
		left := child(ctx, n, i-1)
		if count(ctx, left) > minKeys {
			t.rotateFromLeft(ctx, n, i, left, ch)
			return
		}
	}
	// Borrow from right sibling.
	if i < pc {
		right := child(ctx, n, i+1)
		if count(ctx, right) > minKeys {
			t.rotateFromRight(ctx, n, i, ch, right)
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(ctx, n, i-1)
	} else {
		t.merge(ctx, n, i)
	}
}

func (t *Tree) rotateFromLeft(ctx memsim.Ctx, p memsim.Addr, i int, left, ch memsim.Addr) {
	lc, cc := count(ctx, left), count(ctx, ch)
	leaf := isLeaf(ctx, ch)
	for j := cc; j > 0; j-- {
		setKey(ctx, ch, j, key(ctx, ch, j-1))
	}
	if !leaf {
		for j := cc + 1; j > 0; j-- {
			setChild(ctx, ch, j, child(ctx, ch, j-1))
		}
		setChild(ctx, ch, 0, child(ctx, left, lc))
	}
	setKey(ctx, ch, 0, key(ctx, p, i-1))
	setKey(ctx, p, i-1, key(ctx, left, lc-1))
	setCount(ctx, ch, cc+1, leaf)
	setCount(ctx, left, lc-1, leaf)
}

func (t *Tree) rotateFromRight(ctx memsim.Ctx, p memsim.Addr, i int, ch, right memsim.Addr) {
	rc, cc := count(ctx, right), count(ctx, ch)
	leaf := isLeaf(ctx, ch)
	setKey(ctx, ch, cc, key(ctx, p, i))
	setKey(ctx, p, i, key(ctx, right, 0))
	if !leaf {
		setChild(ctx, ch, cc+1, child(ctx, right, 0))
		for j := 0; j < rc; j++ {
			setChild(ctx, right, j, child(ctx, right, j+1))
		}
	}
	for j := 0; j < rc-1; j++ {
		setKey(ctx, right, j, key(ctx, right, j+1))
	}
	setCount(ctx, ch, cc+1, leaf)
	setCount(ctx, right, rc-1, leaf)
}

// merge folds child i+1 and the separating key into child i.
func (t *Tree) merge(ctx memsim.Ctx, p memsim.Addr, i int) {
	left := child(ctx, p, i)
	right := child(ctx, p, i+1)
	lc, rc := count(ctx, left), count(ctx, right)
	leaf := isLeaf(ctx, left)
	setKey(ctx, left, lc, key(ctx, p, i))
	for j := 0; j < rc; j++ {
		setKey(ctx, left, lc+1+j, key(ctx, right, j))
	}
	if !leaf {
		for j := 0; j <= rc; j++ {
			setChild(ctx, left, lc+1+j, child(ctx, right, j))
		}
	}
	setCount(ctx, left, lc+1+rc, leaf)
	pc := count(ctx, p)
	for j := i; j < pc-1; j++ {
		setKey(ctx, p, j, key(ctx, p, j+1))
		setChild(ctx, p, j+1, child(ctx, p, j+2))
	}
	setCount(ctx, p, pc-1, false)
	ctx.Free(right, nodeWords)
}

// Len returns the number of keys.
func (t *Tree) Len(ctx memsim.Ctx) int {
	var walk func(n memsim.Addr) int
	walk = func(n memsim.Addr) int {
		c := count(ctx, n)
		total := c
		if !isLeaf(ctx, n) {
			for i := 0; i <= c; i++ {
				total += walk(child(ctx, n, i))
			}
		}
		return total
	}
	return walk(memsim.Addr(ctx.Load(t.root)))
}

// Keys appends all keys in ascending order to dst.
func (t *Tree) Keys(ctx memsim.Ctx, dst []uint64) []uint64 {
	var walk func(n memsim.Addr)
	walk = func(n memsim.Addr) {
		c := count(ctx, n)
		leaf := isLeaf(ctx, n)
		for i := 0; i < c; i++ {
			if !leaf {
				walk(child(ctx, n, i))
			}
			dst = append(dst, key(ctx, n, i))
		}
		if !leaf {
			walk(child(ctx, n, c))
		}
	}
	walk(memsim.Addr(ctx.Load(t.root)))
	return dst
}

// CheckInvariants verifies B-tree structure: key ordering within and
// across nodes, fill bounds, and uniform leaf depth. Returns "" when
// consistent.
func (t *Tree) CheckInvariants(ctx memsim.Ctx) string {
	msg := ""
	leafDepth := -1
	var walk func(n memsim.Addr, lo, hi *uint64, depth int, isRoot bool)
	walk = func(n memsim.Addr, lo, hi *uint64, depth int, isRoot bool) {
		if msg != "" {
			return
		}
		c := count(ctx, n)
		leaf := isLeaf(ctx, n)
		if c > maxKeys {
			msg = "node overfull"
			return
		}
		if !isRoot && c < minKeys {
			msg = "node underfull"
			return
		}
		var prev *uint64
		for i := 0; i < c; i++ {
			k := key(ctx, n, i)
			if prev != nil && k <= *prev {
				msg = "keys not strictly ascending in node"
				return
			}
			if lo != nil && k <= *lo {
				msg = "key below subtree bound"
				return
			}
			if hi != nil && k >= *hi {
				msg = "key above subtree bound"
				return
			}
			kc := k
			prev = &kc
		}
		if leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				msg = "leaves at unequal depth"
			}
			return
		}
		for i := 0; i <= c; i++ {
			var l, h *uint64
			l, h = lo, hi
			if i > 0 {
				k := key(ctx, n, i-1)
				l = &k
			}
			if i < c {
				k := key(ctx, n, i)
				h = &k
			}
			walk(child(ctx, n, i), l, h, depth+1, false)
		}
	}
	walk(memsim.Addr(ctx.Load(t.root)), nil, nil, 0, true)
	return msg
}
