package btree

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/engines"
	"hcf/internal/memsim"
)

func newEnvTree() (*memsim.DetEnv, *Tree) {
	env := memsim.NewDet(memsim.DetConfig{Threads: 1})
	return env, New(env.Boot())
}

func TestEmptyTree(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	if tr.Contains(boot, 5) || tr.Remove(boot, 5) || tr.Len(boot) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
}

func TestAscendingFillAndDrain(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	const n = 500
	for k := uint64(0); k < n; k++ {
		if !tr.Insert(boot, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if k%64 == 0 {
			if msg := tr.CheckInvariants(boot); msg != "" {
				t.Fatalf("after Insert(%d): %s", k, msg)
			}
		}
	}
	if got := tr.Len(boot); got != n {
		t.Fatalf("Len = %d", got)
	}
	keys := tr.Keys(boot, nil)
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	for k := uint64(0); k < n; k++ {
		if !tr.Remove(boot, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
		if k%64 == 0 {
			if msg := tr.CheckInvariants(boot); msg != "" {
				t.Fatalf("after Remove(%d): %s", k, msg)
			}
		}
	}
	if tr.Len(boot) != 0 {
		t.Fatal("tree not empty")
	}
}

func TestDescendingAndInterleaved(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	for k := 300; k > 0; k-- {
		tr.Insert(boot, uint64(k))
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	for k := 300; k > 0; k -= 2 {
		if !tr.Remove(boot, uint64(k)) {
			t.Fatalf("Remove(%d)", k)
		}
	}
	if msg := tr.CheckInvariants(boot); msg != "" {
		t.Fatal(msg)
	}
	if got := tr.Len(boot); got != 150 {
		t.Fatalf("Len = %d", got)
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	model := map[uint64]bool{}
	f := func(key uint16, action uint8) bool {
		k := uint64(key % 512)
		switch action % 3 {
		case 0:
			want := !model[k]
			model[k] = true
			if tr.Insert(boot, k) != want {
				return false
			}
		case 1:
			if tr.Contains(boot, k) != model[k] {
				return false
			}
		case 2:
			want := model[k]
			delete(model, k)
			if tr.Remove(boot, k) != want {
				return false
			}
		}
		return tr.CheckInvariants(boot) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6000}); err != nil {
		t.Error(err)
	}
}

func TestCombineOpsEliminates(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	tr.Insert(boot, 10)
	ops := []engine.Op{
		InsertOp{T: tr, K: 10},  // already present -> false
		RemoveOp{T: tr, K: 10},  // -> true
		InsertOp{T: tr, K: 20},  // -> true
		RemoveOp{T: tr, K: 20},  // -> true (eliminated pair)
		ContainsOp{T: tr, K: 5}, // -> false
	}
	res := make([]uint64, len(ops))
	done := make([]bool, len(ops))
	CombineOps(boot, ops, res, done)
	want := []bool{false, true, true, true, false}
	for i := range want {
		if !done[i] || engine.UnpackBool(res[i]) != want[i] {
			t.Fatalf("op %d: done=%v res=%v want %v", i, done[i], engine.UnpackBool(res[i]), want[i])
		}
	}
	if tr.Len(boot) != 0 {
		t.Fatalf("tree should be empty, has %d", tr.Len(boot))
	}
}

func TestConcurrentConformanceAllEngines(t *testing.T) {
	const threads, perThread = 8, 40
	for _, name := range []string{"Lock", "TLE", "FC", "SCM", "TLE+FC", "HCF"} {
		t.Run(name, func(t *testing.T) {
			env := memsim.NewDet(memsim.DetConfig{Threads: threads})
			tr := New(env.Boot())
			hcf, err := core.New(env, core.Config{Policies: Policies()})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() engines.Options { return engines.Options{Combine: CombineOps} }
			engs := map[string]engine.Engine{
				"Lock":   engines.NewLock(env, mk()),
				"TLE":    engines.NewTLE(env, mk()),
				"FC":     engines.NewFC(env, mk()),
				"SCM":    engines.NewSCM(env, mk()),
				"TLE+FC": engines.NewTLEFC(env, mk()),
				"HCF":    hcf,
			}
			eng := engs[name]
			var inserted, removed [threads]int
			env.Run(func(th *memsim.Thread) {
				rng := rand.New(rand.NewPCG(uint64(th.ID()), 55))
				for i := 0; i < perThread; i++ {
					k := rng.Uint64N(96)
					switch rng.IntN(3) {
					case 0:
						if engine.UnpackBool(eng.Execute(th, InsertOp{T: tr, K: k})) {
							inserted[th.ID()]++
						}
					case 1:
						eng.Execute(th, ContainsOp{T: tr, K: k})
					default:
						if engine.UnpackBool(eng.Execute(th, RemoveOp{T: tr, K: k})) {
							removed[th.ID()]++
						}
					}
				}
			})
			boot := env.Boot()
			if msg := tr.CheckInvariants(boot); msg != "" {
				t.Fatal(msg)
			}
			ins, rem := 0, 0
			for i := 0; i < threads; i++ {
				ins += inserted[i]
				rem += removed[i]
			}
			if got := tr.Len(boot); got != ins-rem {
				t.Fatalf("size = %d, want %d", got, ins-rem)
			}
		})
	}
}

// TestNodeFootprintSmallerThanAVL documents the motivation for the B-tree:
// a lookup touches far fewer cache lines than an AVL lookup at the same
// size, which is what makes it HTM-friendlier.
func TestNodeFootprintSmallerThanAVL(t *testing.T) {
	env, tr := newEnvTree()
	boot := env.Boot()
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 4000; i++ {
		tr.Insert(boot, rng.Uint64N(1<<40))
	}
	before := boot.Stats().Loads
	for i := 0; i < 50; i++ {
		tr.Contains(boot, rng.Uint64N(1<<40))
	}
	loadsPerLookup := float64(boot.Stats().Loads-before) / 50
	// A 4000-key order-7 B-tree is ~4-5 levels; each level costs a meta
	// load plus up to 6 key loads -> well under 40 loads. An AVL tree of
	// the same size would take ~12 levels x 2-3 loads.
	if loadsPerLookup > 45 {
		t.Fatalf("B-tree lookup touches %.1f words, expected < 45", loadsPerLookup)
	}
}
