package btree

import (
	"sort"

	"hcf/internal/core"
	"hcf/internal/engine"
	"hcf/internal/memsim"
)

// Operation kinds.
const (
	kindContains = iota
	kindInsert
	kindRemove
)

// Op is the common interface of B-tree operations.
type Op interface {
	engine.Op
	Key() uint64
	Tree() *Tree
	kind() int
}

// ContainsOp tests membership. Result: PackBool(present).
type ContainsOp struct {
	T *Tree
	K uint64
}

// InsertOp adds a key. Result: PackBool(was absent).
type InsertOp struct {
	T *Tree
	K uint64
}

// RemoveOp deletes a key. Result: PackBool(was present).
type RemoveOp struct {
	T *Tree
	K uint64
}

var (
	_ Op = ContainsOp{}
	_ Op = InsertOp{}
	_ Op = RemoveOp{}
)

// Apply implements engine.Op.
func (o ContainsOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Contains(ctx, o.K))
}

// Apply implements engine.Op.
func (o InsertOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Insert(ctx, o.K))
}

// Apply implements engine.Op.
func (o RemoveOp) Apply(ctx memsim.Ctx) uint64 {
	return engine.PackBool(o.T.Remove(ctx, o.K))
}

// Class implements engine.Op (single class).
func (o ContainsOp) Class() int { return 0 }

// Class implements engine.Op.
func (o InsertOp) Class() int { return 0 }

// Class implements engine.Op.
func (o RemoveOp) Class() int { return 0 }

// Key implements Op.
func (o ContainsOp) Key() uint64 { return o.K }

// Key implements Op.
func (o InsertOp) Key() uint64 { return o.K }

// Key implements Op.
func (o RemoveOp) Key() uint64 { return o.K }

// Tree implements Op.
func (o ContainsOp) Tree() *Tree { return o.T }

// Tree implements Op.
func (o InsertOp) Tree() *Tree { return o.T }

// Tree implements Op.
func (o RemoveOp) Tree() *Tree { return o.T }

func (o ContainsOp) kind() int { return kindContains }
func (o InsertOp) kind() int   { return kindInsert }
func (o RemoveOp) kind() int   { return kindRemove }

// CombineOps sorts the batch by key and type, eliminates same-key groups
// under set semantics and applies at most one physical update per key —
// the §3.4 runMulti discipline applied to the B-tree.
func CombineOps(ctx memsim.Ctx, ops []engine.Op, res []uint64, done []bool) {
	type item struct {
		key  uint64
		kind int
		idx  int
	}
	items := make([]item, 0, len(ops))
	var tree *Tree
	for i, op := range ops {
		if done[i] {
			continue
		}
		bo, ok := op.(Op)
		if !ok {
			res[i] = op.Apply(ctx)
			done[i] = true
			continue
		}
		tree = bo.Tree()
		items = append(items, item{key: bo.Key(), kind: bo.kind(), idx: i})
	}
	if tree == nil {
		return
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].key != items[b].key {
			return items[a].key < items[b].key
		}
		if items[a].kind != items[b].kind {
			return items[a].kind < items[b].kind
		}
		return items[a].idx < items[b].idx
	})
	for g := 0; g < len(items); {
		h := g
		for h < len(items) && items[h].key == items[g].key {
			h++
		}
		key := items[g].key
		initial := tree.Contains(ctx, key)
		cur := initial
		for _, it := range items[g:h] {
			switch it.kind {
			case kindContains:
				res[it.idx] = engine.PackBool(cur)
			case kindInsert:
				res[it.idx] = engine.PackBool(!cur)
				cur = true
			case kindRemove:
				res[it.idx] = engine.PackBool(cur)
				cur = false
			}
			done[it.idx] = true
		}
		switch {
		case cur && !initial:
			tree.Insert(ctx, key)
		case !cur && initial:
			tree.Remove(ctx, key)
		}
		g = h
	}
}

// Policies returns the B-tree HCF configuration: one publication array,
// the standard budget split, sort/combine/eliminate application.
func Policies() []core.Policy {
	return []core.Policy{{
		Name:               "btreeop",
		PubArray:           0,
		TryPrivateTrials:   2,
		TryVisibleTrials:   3,
		TryCombiningTrials: 5,
		ShouldHelp:         engine.HelpAll,
		RunMulti:           CombineOps,
		MaxBatch:           8,
	}}
}
