// Package deque implements a sequential double-ended queue, the paper's
// §2.4 example of a structure whose conflict structure is known a priori:
// operations on the same end always conflict, operations on opposite ends
// almost never do. The HCF configuration therefore uses two publication
// arrays — one per end — each with its own combiner, and is a natural fit
// for the specialized framework variant in which a combiner holds the
// selection lock for its whole pass.
package deque

import "hcf/internal/memsim"

// Node layout (padded to a line):
//
//	word 0: value
//	word 1: prev
//	word 2: next
const (
	offVal    = 0
	offPrev   = 1
	offNext   = 2
	nodeWords = memsim.WordsPerLine
)

// Deque is a sequential doubly linked deque with sentinel nodes over
// simulated memory.
type Deque struct {
	left  memsim.Addr // left sentinel
	right memsim.Addr // right sentinel
}

// New builds an empty deque using ctx.
func New(ctx memsim.Ctx) *Deque {
	d := &Deque{
		left:  ctx.Alloc(nodeWords),
		right: ctx.Alloc(nodeWords),
	}
	ctx.Store(d.left+offPrev, 0)
	ctx.Store(d.left+offNext, uint64(d.right))
	ctx.Store(d.right+offPrev, uint64(d.left))
	ctx.Store(d.right+offNext, 0)
	return d
}

// link inserts n between a and b.
func link(ctx memsim.Ctx, a, n, b memsim.Addr) {
	ctx.Store(n+offPrev, uint64(a))
	ctx.Store(n+offNext, uint64(b))
	ctx.Store(a+offNext, uint64(n))
	ctx.Store(b+offPrev, uint64(n))
}

// PushLeft inserts value at the left end.
func (d *Deque) PushLeft(ctx memsim.Ctx, value uint64) {
	n := ctx.Alloc(nodeWords)
	ctx.Store(n+offVal, value)
	link(ctx, d.left, n, memsim.Addr(ctx.Load(d.left+offNext)))
}

// PushRight inserts value at the right end.
func (d *Deque) PushRight(ctx memsim.Ctx, value uint64) {
	n := ctx.Alloc(nodeWords)
	ctx.Store(n+offVal, value)
	link(ctx, memsim.Addr(ctx.Load(d.right+offPrev)), n, d.right)
}

// PopLeft removes and returns the leftmost value.
func (d *Deque) PopLeft(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(d.left + offNext))
	if n == d.right {
		return 0, false
	}
	return d.unlink(ctx, n), true
}

// PopRight removes and returns the rightmost value.
func (d *Deque) PopRight(ctx memsim.Ctx) (uint64, bool) {
	n := memsim.Addr(ctx.Load(d.right + offPrev))
	if n == d.left {
		return 0, false
	}
	return d.unlink(ctx, n), true
}

func (d *Deque) unlink(ctx memsim.Ctx, n memsim.Addr) uint64 {
	v := ctx.Load(n + offVal)
	p := memsim.Addr(ctx.Load(n + offPrev))
	x := memsim.Addr(ctx.Load(n + offNext))
	ctx.Store(p+offNext, uint64(x))
	ctx.Store(x+offPrev, uint64(p))
	ctx.Free(n, nodeWords)
	return v
}

// PushLeftN pushes values[0..] at the left end as one spliced chain, so n
// pushes cost one update of the sentinel's next pointer. The result is
// identical to calling PushLeft(values[0]), PushLeft(values[1]), ...
func (d *Deque) PushLeftN(ctx memsim.Ctx, values []uint64) {
	if len(values) == 0 {
		return
	}
	// Sequential PushLefts leave the last-pushed value leftmost; build the
	// chain so values[len-1] is the chain head.
	var head, tail memsim.Addr
	for _, v := range values {
		n := ctx.Alloc(nodeWords)
		ctx.Store(n+offVal, v)
		if head == 0 {
			head, tail = n, n
			continue
		}
		ctx.Store(n+offNext, uint64(head))
		ctx.Store(head+offPrev, uint64(n))
		head = n
	}
	first := memsim.Addr(ctx.Load(d.left + offNext))
	ctx.Store(head+offPrev, uint64(d.left))
	ctx.Store(tail+offNext, uint64(first))
	ctx.Store(first+offPrev, uint64(tail))
	ctx.Store(d.left+offNext, uint64(head))
}

// PushRightN is the right-end analogue of PushLeftN.
func (d *Deque) PushRightN(ctx memsim.Ctx, values []uint64) {
	if len(values) == 0 {
		return
	}
	var head, tail memsim.Addr
	for _, v := range values {
		n := ctx.Alloc(nodeWords)
		ctx.Store(n+offVal, v)
		if head == 0 {
			head, tail = n, n
			continue
		}
		ctx.Store(tail+offNext, uint64(n))
		ctx.Store(n+offPrev, uint64(tail))
		tail = n
	}
	last := memsim.Addr(ctx.Load(d.right + offPrev))
	ctx.Store(head+offPrev, uint64(last))
	ctx.Store(last+offNext, uint64(head))
	ctx.Store(tail+offNext, uint64(d.right))
	ctx.Store(d.right+offPrev, uint64(tail))
}

// Len returns the number of stored values.
func (d *Deque) Len(ctx memsim.Ctx) int {
	count := 0
	for n := memsim.Addr(ctx.Load(d.left + offNext)); n != d.right; n = memsim.Addr(ctx.Load(n + offNext)) {
		count++
	}
	return count
}

// Items appends the values left-to-right to dst.
func (d *Deque) Items(ctx memsim.Ctx, dst []uint64) []uint64 {
	for n := memsim.Addr(ctx.Load(d.left + offNext)); n != d.right; n = memsim.Addr(ctx.Load(n + offNext)) {
		dst = append(dst, ctx.Load(n+offVal))
	}
	return dst
}

// CheckInvariants verifies the doubly linked structure. Returns "" when
// consistent.
func (d *Deque) CheckInvariants(ctx memsim.Ctx) string {
	seen := map[memsim.Addr]bool{}
	prev := d.left
	for n := memsim.Addr(ctx.Load(d.left + offNext)); ; n = memsim.Addr(ctx.Load(n + offNext)) {
		if n == 0 {
			return "next chain fell off the deque"
		}
		if seen[n] {
			return "cycle in deque"
		}
		seen[n] = true
		if memsim.Addr(ctx.Load(n+offPrev)) != prev {
			return "prev pointer inconsistent"
		}
		if n == d.right {
			return ""
		}
		prev = n
	}
}
